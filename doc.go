// Package repro is a from-scratch Go reproduction of "Demonstration of
// Qurk: A Query Processor for Human Operators" (Marcus, Wu, Karger,
// Madden, Miller — SIGMOD 2011).
//
// Import the public API from repro/qurk; see README.md for a tour,
// DESIGN.md for the architecture, and EXPERIMENTS.md for the reproduced
// evaluation. The benchmarks in bench_test.go regenerate every
// experiment table (go test -bench=. -benchmem).
//
// Queries run through a context-first streaming API in the style of
// database/sql: Engine.Query(ctx, sql, ...QueryOption) returns a Rows
// cursor fed incrementally by the executor, per-query options override
// engine defaults (budget cap, virtual-time deadline, task policies,
// priority, adaptive joins), context cancellation propagates through
// the executor and task manager to the marketplace (open HITs expired,
// unspent budget refunded), and terminal errors are typed
// (ErrBudgetExhausted, ErrCanceled, ErrDeadline, *ParseError). The
// pre-context entry points (Run, QueryAndWait, QueryHandle.Wait) are
// deprecated shims over Query; see README.md § "Querying" for the
// deprecation policy and the qurk/api.txt surface pin.
//
// ORDER BY over a human ranking task runs through the ranking
// subsystem (internal/rank): batched S-way comparison HITs, per-item
// rating HITs, or a cost-chosen hybrid that rates everything and
// comparison-refines only rating-ambiguous windows, with LIMIT pushed
// into the sort (top-k tournament). Sorting is a pipeline barrier:
// no row can stream out of a Rank (or OrderBy) operator before the
// last input tuple has been rated or compared, because any unseen
// tuple could belong first — so first-row latency for sorted queries
// is bounded below by the slowest sort-key HIT. Once the order is
// final the operator streams rows out through the Rows cursor
// immediately, releasing each buffered tuple as it is emitted; only
// the barrier, not the emission, is inherent. README.md § "Human-
// powered sorts" documents the strategies, the Compare:/GroupSize:
// task syntax, and a worked cost example.
//
// Everything the engine learns from the crowd — Task Cache entries,
// per-join-side selectivity and latency observations, Task Model
// training examples, worker reputations — can persist across engine
// restarts through the durable knowledge store (internal/store): an
// embedded, append-only, CRC-framed WAL with snapshot compaction and
// corruption-tolerant replay. Set Config.StorePath (or the -store flag
// on cmd/qurk and cmd/qurk-load) and a fresh engine warm-starts from
// every previous run's paid-for answers; README.md § "Durable knowledge
// store" documents the record kinds, compaction policy and crash-safety
// guarantees.
package repro
