// Package repro is a from-scratch Go reproduction of "Demonstration of
// Qurk: A Query Processor for Human Operators" (Marcus, Wu, Karger,
// Madden, Miller — SIGMOD 2011).
//
// Import the public API from repro/qurk; see README.md for a tour,
// DESIGN.md for the architecture, and EXPERIMENTS.md for the reproduced
// evaluation. The benchmarks in bench_test.go regenerate every
// experiment table (go test -bench=. -benchmem).
package repro
