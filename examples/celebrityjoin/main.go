// Celebrity join: the paper's Query 2 — matching submitted sighting
// photos against a celebrity table via the two-column join interface of
// Figure 3 — followed by a mini cost comparison against the naive
// pairwise interface.
//
//	go run ./examples/celebrityjoin
package main

import (
	"context"
	"fmt"
	"log"

	"repro/qurk"
)

const joinTask = `
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Drag a picture of any Celebrity in the left column to their matching picture in the Spotted Star column to the right."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
`

const query2 = `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`

func run(pairwise bool, seed int64) (rows int, hits int64, spent qurk.Cents) {
	ds := qurk.Celebrities(8, 16, 0.4, seed)
	eng, err := qurk.New(qurk.Config{
		Oracle: ds.Oracle,
		Crowd:  qurk.CrowdConfig{MeanSkill: 0.96, SkillStd: 0.02, SpamFraction: 0.01, AbandonRate: 0.01, BatchPenalty: 0.003},
		Exec:   qurk.ExecConfig{JoinPairwise: pairwise, JoinLeftBlock: 4, JoinRightBlock: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, t := range ds.Tables {
		if err := eng.Register(t); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Define(joinTask); err != nil {
		log.Fatal(err)
	}
	result, err := eng.Query(context.Background(), query2)
	if err != nil {
		log.Fatal(err)
	}
	defer result.Close()
	if !pairwise {
		fmt.Println("matches found by the two-column interface (streamed as grids resolve):")
	}
	for result.Next() {
		row := result.Tuple()
		rows++
		if !pairwise {
			fmt.Printf("  %-24s sighting #%d\n", row.Values[0].Str(), row.Values[1].Int())
		}
	}
	if err := result.Err(); err != nil {
		log.Fatal(err)
	}
	s := eng.Manager().StatsFor("sameperson")
	return rows, s.HITsPosted, s.SpentCents
}

func main() {
	const seed = 7
	nGrid, hitsGrid, spentGrid := run(false, seed)
	nPair, hitsPair, spentPair := run(true, seed)

	fmt.Println("\ninterface comparison on the same 8×16 cross product:")
	fmt.Printf("  two-column 4x4: %3d HITs, %s, %d matches\n", hitsGrid, spentGrid, nGrid)
	fmt.Printf("  pairwise      : %3d HITs, %s, %d matches\n", hitsPair, spentPair, nPair)
	fmt.Printf("  batching the grid cuts HITs by %.0fx\n", float64(hitsPair)/float64(hitsGrid))
}
