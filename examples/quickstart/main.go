// Quickstart: the paper's Query 1 end to end in ~40 lines.
//
// A companies table is extended with CEO names and phone numbers by
// (simulated) human workers, with redundancy and majority voting handled
// by the engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/qurk"
)

func main() {
	// Synthetic data plus the ground truth the simulated crowd answers
	// from. On real MTurk the truth lives in workers' heads; here the
	// workload generator supplies it (see DESIGN.md §2).
	ds := qurk.Companies(10, 42)

	eng, err := qurk.New(qurk.Config{
		Oracle: ds.Oracle,
		Crowd:  qurk.CrowdConfig{MeanSkill: 0.96, SkillStd: 0.02, SpamFraction: 0.01, AbandonRate: 0.01, BatchPenalty: 0.003},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	for _, t := range ds.Tables {
		if err := eng.Register(t); err != nil {
			log.Fatal(err)
		}
	}

	// Task 1 from the paper, verbatim modulo quoting.
	if err := eng.Define(`
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))
`); err != nil {
		log.Fatal(err)
	}

	// Query 1 from the paper, consumed as a stream: each row prints the
	// moment the crowd resolves it, while later HITs are still open.
	rows, err := eng.Query(context.Background(), `
SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone
FROM companies`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()

	n := 0
	for rows.Next() {
		row := rows.Tuple()
		fmt.Printf("%-28s CEO=%-18s Phone=%s\n",
			row.Values[0].Str(), row.Get("findCEO.CEO").Str(), row.Get("findCEO.Phone").Str())
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err) // typed: qurk.ErrBudgetExhausted, qurk.ErrCanceled, ...
	}
	fmt.Printf("\n%d companies, %s spent, %.1f virtual minutes\n",
		n, eng.Manager().Account().Spent(), eng.Clock().Now().Minutes())
}
