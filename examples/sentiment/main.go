// Sentiment triage: the "extracting sentiment from a corpus of text
// snippets" workload the paper's abstract motivates. Humans filter
// reviews to the positive ones and rank a photo-quality table — showing
// filter + order-by over crowd answers, with batching tuned by the
// optimizer.
//
//	go run ./examples/sentiment
package main

import (
	"context"
	"fmt"
	"log"

	"repro/qurk"
)

func main() {
	reviews := qurk.Reviews(40, 0.35, 11)
	items := qurk.RankItems(8, 9, "appeal", 11)
	eng, err := qurk.New(qurk.Config{
		Oracle:   qurk.CombineOracles(reviews.Oracle, items.Oracle),
		Crowd:    qurk.CrowdConfig{MeanSkill: 0.96, SkillStd: 0.02, SpamFraction: 0.01, AbandonRate: 0.01, BatchPenalty: 0.003},
		AutoTune: true, // optimizer picks redundancy and batch sizes
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, ds := range []qurk.Dataset{reviews, items} {
		for _, t := range ds.Tables {
			if err := eng.Register(t); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := eng.Define(`
TASK isPositive(String text)
RETURNS Bool:
  TaskType: Filter
  Text: "Does this review express a positive sentiment? %s", text
  Response: YesNo

TASK appeal(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "How appealing is this photo, 1 (worst) to 9 (best)? %s", pic
  Response: Rating(1, 9)
`); err != nil {
		log.Fatal(err)
	}

	// Stream the positives as the crowd confirms them; a per-query
	// budget shows the typed-error contract (this cap is ample, so the
	// query completes — shrink it to watch ErrBudgetExhausted surface).
	ctx := context.Background()
	positives, err := eng.Query(ctx, `
SELECT id, text FROM reviews WHERE isPositive(text)`,
		qurk.WithBudget(qurk.Cents(500)))
	if err != nil {
		log.Fatal(err)
	}
	defer positives.Close()
	kept := 0
	for positives.Next() {
		if row := positives.Tuple(); kept < 3 {
			fmt.Printf("  #%-3d %s\n", row.Get("id").Int(), row.Get("text").Str())
		}
		kept++
	}
	if err := positives.Err(); err != nil {
		log.Fatal(err) // errors.Is(err, qurk.ErrBudgetExhausted) on a tight cap
	}
	fmt.Printf("crowd kept %d of 40 reviews as positive\n", kept)

	// ORDER BY buffers before emitting, so a plain drained cursor is
	// natural here; QueryAndWait remains as a deprecated one-call shim.
	ranked, err := eng.Query(ctx, `
SELECT img, appeal(img) AS score FROM items ORDER BY score DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	defer ranked.Close()
	fmt.Println("\ntop photos by crowd rating:")
	for ranked.Next() {
		row := ranked.Tuple()
		fmt.Printf("  %-16s %.2f\n", row.Get("img").Str(), row.Get("score").Float())
	}
	if err := ranked.Err(); err != nil {
		log.Fatal(err)
	}

	snap := eng.Snapshot()
	fmt.Printf("\ntotal crowd spend: %s across %d HITs (batching on: filters asked %d questions in %d HITs)\n",
		snap.Budget.Spent, snap.Market.HITsPosted,
		statFor(snap, "ispositive").QuestionsAsked, statFor(snap, "ispositive").HITsPosted)
}

func statFor(snap qurk.Snapshot, task string) taskStat {
	for _, s := range snap.Tasks {
		if s.Task == task {
			return taskStat{QuestionsAsked: s.QuestionsAsked, HITsPosted: s.HITsPosted}
		}
	}
	return taskStat{}
}

type taskStat struct{ QuestionsAsked, HITsPosted int64 }
