// Sentiment triage: the "extracting sentiment from a corpus of text
// snippets" workload the paper's abstract motivates. Humans filter
// reviews to the positive ones and rank a photo-quality table — showing
// filter + order-by over crowd answers, with batching tuned by the
// optimizer.
//
//	go run ./examples/sentiment
package main

import (
	"fmt"
	"log"

	"repro/qurk"
)

func main() {
	reviews := qurk.Reviews(40, 0.35, 11)
	items := qurk.RankItems(8, 9, "appeal", 11)
	eng, err := qurk.New(qurk.Config{
		Oracle:   qurk.CombineOracles(reviews.Oracle, items.Oracle),
		Crowd:    qurk.CrowdConfig{MeanSkill: 0.96, SkillStd: 0.02, SpamFraction: 0.01, AbandonRate: 0.01, BatchPenalty: 0.003},
		AutoTune: true, // optimizer picks redundancy and batch sizes
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, ds := range []qurk.Dataset{reviews, items} {
		for _, t := range ds.Tables {
			if err := eng.Register(t); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := eng.Define(`
TASK isPositive(String text)
RETURNS Bool:
  TaskType: Filter
  Text: "Does this review express a positive sentiment? %s", text
  Response: YesNo

TASK appeal(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "How appealing is this photo, 1 (worst) to 9 (best)? %s", pic
  Response: Rating(1, 9)
`); err != nil {
		log.Fatal(err)
	}

	positives, err := eng.QueryAndWait(`
SELECT id, text FROM reviews WHERE isPositive(text)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crowd kept %d of 40 reviews as positive; first few:\n", len(positives))
	for i, row := range positives {
		if i == 3 {
			break
		}
		fmt.Printf("  #%-3d %s\n", row.Get("id").Int(), row.Get("text").Str())
	}

	ranked, err := eng.QueryAndWait(`
SELECT img, appeal(img) AS score FROM items ORDER BY score DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop photos by crowd rating:")
	for _, row := range ranked {
		fmt.Printf("  %-16s %.2f\n", row.Get("img").Str(), row.Get("score").Float())
	}

	snap := eng.Snapshot()
	fmt.Printf("\ntotal crowd spend: %s across %d HITs (batching on: filters asked %d questions in %d HITs)\n",
		snap.Budget.Spent, snap.Market.HITsPosted,
		statFor(snap, "ispositive").QuestionsAsked, statFor(snap, "ispositive").HITsPosted)
}

func statFor(snap qurk.Snapshot, task string) taskStat {
	for _, s := range snap.Tasks {
		if s.Task == task {
			return taskStat{QuestionsAsked: s.QuestionsAsked, HITsPosted: s.HITsPosted}
		}
	}
	return taskStat{}
}

type taskStat struct{ QuestionsAsked, HITsPosted int64 }
