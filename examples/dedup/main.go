// Entity resolution with classifier hand-off: human workers
// deduplicate a product catalog through the join interface while a task
// model trains on their answers; a second batch of duplicates is then
// resolved largely for free — the paper's "reducing monetary costs
// through automation".
//
//	go run ./examples/dedup
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/relation"
	"repro/qurk"
)

// catalogOracle knows two product listings are duplicates when they
// share a canonical SKU prefix (the latent identity a human recognizes
// from titles and photos).
var catalogOracle = qurk.OracleFunc(func(task string, args []relation.Value) relation.Value {
	if !strings.EqualFold(task, "sameProduct") || len(args) < 2 {
		return relation.Null
	}
	sku := func(s string) string { return strings.SplitN(s, "/", 2)[0] }
	return relation.NewBool(sku(args[0].Str()) == sku(args[1].Str()))
})

func catalogTable(name string, skus []string, variants int) *qurk.Table {
	t := relation.NewTable(name, relation.MustSchema(
		relation.Column{Name: "listing", Kind: relation.KindString}))
	for _, sku := range skus {
		for v := 0; v < variants; v++ {
			_ = t.InsertValues(relation.NewString(fmt.Sprintf("%s/seller%d", sku, v+1)))
		}
	}
	return t
}

func main() {
	eng, err := qurk.New(qurk.Config{
		Oracle:             catalogOracle,
		Crowd:              qurk.CrowdConfig{MeanSkill: 0.96, SkillStd: 0.02, SpamFraction: 0.01, AbandonRate: 0.01, BatchPenalty: 0.003},
		AttachModels:       true, // naive Bayes learns from human answers
		ModelMinExamples:   40,
		ModelMinConfidence: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	skusA := []string{"sku-anchor-101", "sku-bolt-102", "sku-clamp-103", "sku-drill-104"}
	skusB := []string{"sku-easel-201", "sku-file-202", "sku-gasket-203", "sku-hinge-204"}
	if err := eng.Register(catalogTable("batch1a", skusA, 2)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Register(catalogTable("batch1b", skusA, 2)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Register(catalogTable("batch2a", skusB, 2)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Register(catalogTable("batch2b", skusB, 2)); err != nil {
		log.Fatal(err)
	}

	if err := eng.Define(`
TASK sameProduct(String a, String b)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Do these two listings describe the same product? (%s) vs (%s)", a, b
  Response: YesNo
`); err != nil {
		log.Fatal(err)
	}

	dedup := func(left, right string) int {
		rows, err := eng.Query(context.Background(), fmt.Sprintf(`
SELECT %s.listing, %s.listing
FROM %s, %s
WHERE sameProduct(%s.listing, %s.listing)`, left, right, left, right, left, right))
		if err != nil {
			log.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		return n
	}

	n1 := dedup("batch1a", "batch1b")
	spent1 := eng.Manager().Account().Spent()
	fmt.Printf("batch 1: %d duplicate pairs found, %s spent (all human)\n", n1, spent1)

	before := eng.Manager().StatsFor("sameproduct")
	n2 := dedup("batch2a", "batch2b")
	spent2 := eng.Manager().Account().Spent() - spent1
	s := eng.Manager().StatsFor("sameproduct")
	batch2Model := s.ModelAnswers - before.ModelAnswers
	batch2Total := s.Submitted - before.Submitted
	fmt.Printf("batch 2: %d duplicate pairs found, %s spent\n", n2, spent2)
	fmt.Printf("model answered %d of %d batch-2 questions after training on batch 1\n",
		batch2Model, batch2Total)
	if spent2 < spent1 {
		fmt.Printf("classifier hand-off saved %s on the second batch\n", spent1-spent2)
	}
}
