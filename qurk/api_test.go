package qurk_test

// TestExportedAPISurface pins this package's exported surface to
// api.txt, in the spirit of golang.org/x/exp/cmd/apidiff but
// self-contained: CI fails when the surface drifts without (a)
// regenerating api.txt and (b) noting the new fingerprint in
// CHANGES.md. Regenerate with:
//
//	QURK_API_UPDATE=1 go test ./qurk -run TestExportedAPISurface
//
// then add a line containing "api-fingerprint: <new fp>" to the
// CHANGES.md entry describing the change.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"testing"
)

const apiFile = "api.txt"

func apiSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	render := func(node interface{}) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						sig := *d
						sig.Doc, sig.Body = nil, nil
						lines = append(lines, render(&sig))
					}
				case *ast.GenDecl:
					kw := d.Tok.String()
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								c := *s
								c.Doc, c.Comment = nil, nil
								lines = append(lines, kw+" "+render(&c))
							}
						case *ast.ValueSpec:
							exported := false
							for _, n := range s.Names {
								if n.IsExported() {
									exported = true
								}
							}
							if exported {
								c := *s
								c.Doc, c.Comment = nil, nil
								lines = append(lines, kw+" "+render(&c))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func fingerprint(lines []string) string {
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func renderAPIFile(lines []string, fp string) string {
	var b strings.Builder
	b.WriteString("# qurk exported API surface. Regenerate: QURK_API_UPDATE=1 go test ./qurk -run TestExportedAPISurface\n")
	b.WriteString("# Then note the new fingerprint in CHANGES.md.\n")
	fmt.Fprintf(&b, "# api-fingerprint: %s\n", fp)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

func TestExportedAPISurface(t *testing.T) {
	lines := apiSurface(t)
	fp := fingerprint(lines)
	want := renderAPIFile(lines, fp)

	if os.Getenv("QURK_API_UPDATE") != "" {
		if err := os.WriteFile(apiFile, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (fingerprint %s) — remember the CHANGES.md note", apiFile, fp)
	} else {
		got, err := os.ReadFile(apiFile)
		if err != nil {
			t.Fatalf("missing %s: %v (regenerate with QURK_API_UPDATE=1)", apiFile, err)
		}
		if string(got) != want {
			t.Fatalf("qurk exported API surface drifted from %s (new fingerprint %s).\n"+
				"If the change is intentional: QURK_API_UPDATE=1 go test ./qurk -run TestExportedAPISurface\n"+
				"and describe it in CHANGES.md including the line \"api-fingerprint: %s\".", apiFile, fp, fp)
		}
	}

	// The fingerprint must be acknowledged in CHANGES.md: an API change
	// without a changelog note fails even when api.txt was regenerated.
	changes, err := os.ReadFile("../CHANGES.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(changes), "api-fingerprint: "+fp) {
		t.Fatalf("CHANGES.md has no note for the current qurk API surface; add "+
			"\"api-fingerprint: %s\" to the entry describing the change", fp)
	}
}
