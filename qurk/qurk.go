// Package qurk is the public API of this Qurk reproduction: a relational
// query processor whose operators are implemented by human workers on a
// (simulated) Mechanical Turk marketplace, after Marcus, Wu, Karger,
// Madden and Miller, "Demonstration of Qurk: A Query Processor for Human
// Operators", SIGMOD 2011.
//
// A minimal session, in the context-first style of database/sql:
//
//	ds := qurk.Companies(20, 1) // synthetic data + ground truth
//	eng, err := qurk.New(qurk.Config{Oracle: ds.Oracle})
//	if err != nil { ... }
//	defer eng.Close()
//	for _, t := range ds.Tables {
//		_ = eng.Register(t)
//	}
//	_ = eng.Define(`
//	TASK findCEO(String companyName)
//	RETURNS (String CEO, String Phone):
//	  TaskType: Question
//	  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
//	  Response: Form(("CEO", String), ("Phone", String))
//	`)
//	rows, err := eng.Query(ctx, `
//	SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone
//	FROM companies`)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Tuple()) // first rows arrive while later HITs run
//	}
//	if err := rows.Err(); err != nil { ... } // typed: ErrBudgetExhausted, ...
//
// Queries stream: Rows delivers tuples as the executor produces them.
// Canceling ctx (or rows.Close, or a WithDeadline virtual deadline)
// cancels the query end to end — open HITs are expired at the simulated
// marketplace and unspent budget is released. Per-query options
// (WithBudget, WithPolicy, WithPriority, WithAdaptiveJoins) override
// the engine defaults for one query.
//
// # Multi-tenant serving
//
// Concurrent queries over the same tasks can opt into cross-query HIT
// sharing with WithSharedBatching (or a task-level "Share: Yes"
// property): partial batches from different queries with matching
// effective posting policies fill one HIT together, and the HIT cost
// is split across the queries by item count — integer cents with
// deterministic largest-remainder rounding, so per-query budgets,
// refunds and dashboard spend stay exact. Canceling one participant
// detaches its items and refunds its share of the unconsumed cost; the
// HIT keeps running for the others. Config.MaxInflightHITs adds an
// admission gate: excess batches queue and post in priority order
// (WithPriority), then by weighted fair share of admitted HITs
// (WithWeight), so a burst of queries degrades gracefully.
//
// The engine runs HITs against a configurable synthetic crowd under a
// virtual clock, so latency is reported in simulated minutes while
// programs finish in milliseconds. See DESIGN.md for the architecture
// and EXPERIMENTS.md for the reproduced evaluation.
//
// # Deprecation policy
//
// Engine.Run, Engine.QueryAndWait and QueryHandle.Wait predate the
// context API and remain as thin shims over Engine.Query. Deprecated
// entry points keep working for at least two further releases of this
// module and are removed only with a major-version bump; new code
// should use Query. The exported surface of this package is pinned by
// qurk/api.txt (enforced in CI): changing it requires regenerating that
// file and noting the change in CHANGES.md.
package qurk

import (
	"net/http"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// Re-exported core types; see the respective internal packages for the
// full method sets.
type (
	// Engine is a running Qurk instance (internal/core.Engine).
	Engine = core.Engine
	// Config parameterizes an engine.
	Config = core.Config
	// QueryHandle tracks a submitted query.
	QueryHandle = core.QueryHandle
	// Rows is the streaming result cursor returned by Engine.Query.
	Rows = core.Rows
	// QueryOption customizes one Query call (WithBudget, WithDeadline,
	// WithPolicy, WithAdaptiveJoins, WithPriority, WithSharedBatching,
	// WithWeight).
	QueryOption = core.QueryOption
	// ParseError is a query-text error with line/column position.
	ParseError = core.ParseError
	// CrowdConfig tunes the simulated worker population.
	CrowdConfig = crowd.Config
	// Oracle supplies ground truth to the simulated crowd.
	Oracle = crowd.Oracle
	// OracleFunc adapts a function to Oracle.
	OracleFunc = crowd.OracleFunc
	// ExecConfig tunes the executor (join interface, batching mode...).
	ExecConfig = exec.Config
	// Policy tunes per-task HIT generation.
	Policy = taskmgr.Policy
	// Cents is money, in integer US cents.
	Cents = budget.Cents
	// Table is an in-memory relation.
	Table = relation.Table
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is a dynamically typed datum.
	Value = relation.Value
	// Dataset bundles synthetic tables with their ground-truth oracle.
	Dataset = workload.Dataset
	// Snapshot is the dashboard view of the system.
	Snapshot = dashboard.Snapshot
)

// Typed query errors; returned wrapped from Rows.Err / QueryAndWait,
// test with errors.Is.
var (
	// ErrCanceled: the query's context was canceled, its Rows closed
	// early, or the engine shut down under it.
	ErrCanceled = core.ErrCanceled
	// ErrDeadline: the query's WithDeadline virtual-time deadline (or
	// its context deadline) expired first.
	ErrDeadline = core.ErrDeadline
	// ErrBudgetExhausted: a budget — engine-wide or per-query — could
	// not cover a HIT.
	ErrBudgetExhausted = core.ErrBudgetExhausted
)

// Per-query options for Engine.Query; see the core package for details.
var (
	// WithBudget caps one query's total spend (ErrBudgetExhausted past it).
	WithBudget = core.WithBudget
	// WithDeadline cancels the query after d of virtual time (ErrDeadline).
	WithDeadline = core.WithDeadline
	// WithPolicy overrides one task's policy for this query only.
	WithPolicy = core.WithPolicy
	// WithAdaptiveJoins toggles cost-based join pre-filtering per query.
	WithAdaptiveJoins = core.WithAdaptiveJoins
	// WithPriority orders this query's HIT batches relative to others.
	WithPriority = core.WithPriority
	// WithSharedBatching lets this query's items co-fill HITs with
	// other sharing queries, cost split by item count.
	WithSharedBatching = core.WithSharedBatching
	// WithWeight sets the query's fair-share weight under an admission
	// gate (Config.MaxInflightHITs).
	WithWeight = core.WithWeight
	// WithLabel tags the query's scope so its HIT/cost metrics get a
	// per-scope series (only meaningful with Config.Trace).
	WithLabel = core.WithLabel
)

// New starts an engine. Callers must Close it.
func New(cfg Config) (*Engine, error) { return core.New(cfg) }

// DefaultPolicy is the engine-wide starting task policy.
func DefaultPolicy() Policy { return taskmgr.DefaultPolicy() }

// RenderDashboard renders a snapshot as the text dashboard.
func RenderDashboard(s Snapshot) string { return dashboard.Render(s) }

// DashboardHandler serves the HTTP dashboard and the audience
// task-completion interface for an engine.
func DashboardHandler(e *Engine) http.Handler { return dashboard.NewHandler(e) }

// Synthetic workloads (see internal/workload for parameters).
var (
	// Companies generates the Query 1 workload.
	Companies = workload.Companies
	// Celebrities generates the Query 2 workload.
	Celebrities = workload.Celebrities
	// Photos generates a boolean-filter workload.
	Photos = workload.Photos
	// RankItems generates a sort workload with latent scores.
	RankItems = workload.RankItems
	// Reviews generates a sentiment workload.
	Reviews = workload.Reviews
	// CombineOracles merges ground-truth oracles.
	CombineOracles = workload.Combine
)
