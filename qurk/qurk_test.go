package qurk_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/qurk"
)

// TestPublicAPITour exercises the whole facade the way the README does.
func TestPublicAPITour(t *testing.T) {
	ds := qurk.Companies(5, 1)
	eng, err := qurk.New(qurk.Config{
		Oracle: ds.Oracle,
		Crowd:  qurk.CrowdConfig{Seed: 1, MeanSkill: 0.97, SkillStd: 0.01, SpamFraction: 1e-9, AbandonRate: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, tab := range ds.Tables {
		if err := eng.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Define(`
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))
`); err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 the deprecated shim must keep working; this is its test
	rows, err := eng.QueryAndWait(`
SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone
FROM companies`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Policy knobs are reachable through the facade.
	pol := qurk.DefaultPolicy()
	if pol.Assignments != 3 {
		t.Fatalf("default policy = %+v", pol)
	}
	// Dashboard rendering and HTTP handler work through the facade.
	text := qurk.RenderDashboard(eng.Snapshot())
	if !strings.Contains(text, "findceo") {
		t.Fatalf("dashboard missing task:\n%s", text)
	}
	srv := httptest.NewServer(qurk.DashboardHandler(eng))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Qurk") {
		t.Fatal("HTTP dashboard empty")
	}
}

func TestWorkloadsExported(t *testing.T) {
	if ds := qurk.Celebrities(2, 3, 0.5, 1); len(ds.Tables) != 2 {
		t.Error("Celebrities")
	}
	if ds := qurk.Photos(3, 0.5, 0.5, 1); ds.Tables[0].Len() != 3 {
		t.Error("Photos")
	}
	if ds := qurk.RankItems(3, 9, "score", 1); ds.Tables[0].Len() != 3 {
		t.Error("RankItems")
	}
	if ds := qurk.Reviews(3, 0.5, 1); ds.Tables[0].Len() != 3 {
		t.Error("Reviews")
	}
	a := qurk.Photos(1, 1, 1, 1)
	b := qurk.Companies(1, 1)
	combined := qurk.CombineOracles(a.Oracle, b.Oracle)
	if combined.Truth("isCat", []qurk.Value{a.Tables[0].Row(0).Get("img")}).IsNull() {
		t.Error("CombineOracles")
	}
}

// TestContextQueryFacade exercises the context-first surface through
// the facade: streaming Rows, per-query options, and typed errors.
func TestContextQueryFacade(t *testing.T) {
	ds := qurk.Photos(20, 0.5, 0.6, 1)
	eng, err := qurk.New(qurk.Config{
		Oracle: ds.Oracle,
		Crowd:  qurk.CrowdConfig{Seed: 1, MeanSkill: 0.97, SkillStd: 0.01, SpamFraction: 1e-9, AbandonRate: 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, tab := range ds.Tables {
		if err := eng.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Define(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
`); err != nil {
		t.Fatal(err)
	}

	// A tight per-query budget surfaces the typed error mid-stream.
	rows, err := eng.Query(context.Background(), `SELECT img FROM photos WHERE isCat(img)`,
		qurk.WithBudget(qurk.Cents(3)), qurk.WithPriority(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, qurk.ErrBudgetExhausted) {
		t.Fatalf("want qurk.ErrBudgetExhausted, got %v", err)
	}
	if sunk := rows.Handle().SunkCents(); sunk > 3 {
		t.Fatalf("sunk %v past the 3¢ cap", sunk)
	}

	// Parse errors carry positions through the facade.
	_, err = eng.Query(context.Background(), "SELECT WHERE")
	var pe *qurk.ParseError
	if !errors.As(err, &pe) || pe.Line != 1 {
		t.Fatalf("want positioned *qurk.ParseError, got %v", err)
	}
}
