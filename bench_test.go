package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// Each benchmark regenerates one experiment table (EXPERIMENTS.md) and
// reports its headline figures as custom metrics, so `go test -bench=.`
// reproduces the paper's evaluation artifacts end to end. Simulated
// money is reported as cents/op and simulated wall time as vmin/op
// (virtual minutes) — wall-clock ns/op only measures the simulator.

func metric(b *testing.B, tab experiments.Table, row, col int, name string) {
	b.Helper()
	cell := tab.Rows[row][col]
	cell = strings.TrimPrefix(cell, "$")
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		b.ReportMetric(v, name)
	}
}

// BenchmarkE1Pipeline drives both demo queries through every component
// of Figure 1.
func BenchmarkE1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.E1Pipeline(int64(i + 1))
		if len(tab.Rows) != 8 {
			b.Fatalf("components = %d", len(tab.Rows))
		}
	}
}

// BenchmarkE2Cache re-runs Query 1 three times; runs 2-3 must be free.
func BenchmarkE2Cache(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E2Cache(8, int64(i+1))
	}
	metric(b, tab, 0, 4, "run1_dollars")
	metric(b, tab, 1, 4, "run2_dollars")
}

// BenchmarkE3JoinInterfaces sweeps the Figure 3 join interfaces.
func BenchmarkE3JoinInterfaces(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E3JoinInterfaces(8, 16, int64(i+1))
	}
	metric(b, tab, 0, 1, "pairwise_HITs")
	metric(b, tab, 3, 1, "grid5x5_HITs")
	metric(b, tab, 3, 7, "grid5x5_F1")
}

// BenchmarkE4TaskModel measures classifier substitution over batches.
func BenchmarkE4TaskModel(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E4TaskModel(4, 30, int64(i+1))
	}
	metric(b, tab, 0, 1, "batch1_human")
	metric(b, tab, 3, 2, "batch4_model")
}

// BenchmarkE5PreFilter measures cross-product reduction via a cheap
// feature filter.
func BenchmarkE5PreFilter(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E5PreFilter(6, 14, int64(i+1))
	}
	metric(b, tab, 0, 2, "joinQs_plain")
	metric(b, tab, 1, 2, "joinQs_filtered")
	metric(b, tab, 2, 3, "pairwise_plain_dollars")
	metric(b, tab, 3, 3, "pairwise_filtered_dollars")
}

// BenchmarkE6Redundancy sweeps assignments per HIT.
func BenchmarkE6Redundancy(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E6Redundancy(40, int64(i+1))
	}
	metric(b, tab, 0, 3, "acc_1asg")
	metric(b, tab, 2, 3, "acc_5asg")
}

// BenchmarkE7Adaptive compares static and adaptive filter orderings.
func BenchmarkE7Adaptive(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E7Adaptive(40, int64(i+1))
	}
	metric(b, tab, 0, 3, "worstQs")
	metric(b, tab, 1, 3, "bestQs")
	metric(b, tab, 2, 3, "adaptiveQs")
}

// BenchmarkE8Batching sweeps tuples-per-HIT.
func BenchmarkE8Batching(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E8Batching(40, int64(i+1))
	}
	metric(b, tab, 0, 1, "HITs_batch1")
	metric(b, tab, 3, 1, "HITs_batch10")
}

// BenchmarkE9Sort compares rating-based and comparison-based human
// sorting.
func BenchmarkE9Sort(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E9Sort(12, int64(i+1))
	}
	metric(b, tab, 0, 1, "ratingQs")
	metric(b, tab, 1, 1, "compareQs")
	metric(b, tab, 0, 3, "ratingTau")
}

// BenchmarkE10Async compares the async executor against a blocking
// iterator on virtual makespan.
func BenchmarkE10Async(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E10Async(16, int64(i+1))
	}
	metric(b, tab, 0, 2, "async_vmin")
	metric(b, tab, 1, 2, "blocking_vmin")
}

// BenchmarkE11SpamDefense measures the reputation blocklist extension.
func BenchmarkE11SpamDefense(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E11SpamDefense(40, int64(i+1))
	}
	metric(b, tab, 0, 3, "acc_no_defense")
	metric(b, tab, 1, 3, "acc_blocklist")
}
