package repro

import (
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/hit"
	"repro/internal/load"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Each benchmark regenerates one experiment table (EXPERIMENTS.md) and
// reports its headline figures as custom metrics, so `go test -bench=.`
// reproduces the paper's evaluation artifacts end to end. Simulated
// money is reported as cents/op and simulated wall time as vmin/op
// (virtual minutes) — wall-clock ns/op only measures the simulator.

func metric(b *testing.B, tab experiments.Table, row, col int, name string) {
	b.Helper()
	cell := tab.Rows[row][col]
	cell = strings.TrimPrefix(cell, "$")
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		b.ReportMetric(v, name)
	}
}

// BenchmarkE1Pipeline drives both demo queries through every component
// of Figure 1.
func BenchmarkE1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.E1Pipeline(int64(i + 1))
		if len(tab.Rows) != 8 {
			b.Fatalf("components = %d", len(tab.Rows))
		}
	}
}

// BenchmarkE2Cache re-runs Query 1 three times; runs 2-3 must be free.
func BenchmarkE2Cache(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E2Cache(8, int64(i+1))
	}
	metric(b, tab, 0, 4, "run1_dollars")
	metric(b, tab, 1, 4, "run2_dollars")
}

// BenchmarkE3JoinInterfaces sweeps the Figure 3 join interfaces.
func BenchmarkE3JoinInterfaces(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E3JoinInterfaces(8, 16, int64(i+1))
	}
	metric(b, tab, 0, 1, "pairwise_HITs")
	metric(b, tab, 3, 1, "grid5x5_HITs")
	metric(b, tab, 3, 7, "grid5x5_F1")
}

// BenchmarkE4TaskModel measures classifier substitution over batches.
func BenchmarkE4TaskModel(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E4TaskModel(4, 30, int64(i+1))
	}
	metric(b, tab, 0, 1, "batch1_human")
	metric(b, tab, 3, 2, "batch4_model")
}

// BenchmarkE5PreFilter measures cross-product reduction via a cheap
// feature filter.
func BenchmarkE5PreFilter(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E5PreFilter(6, 14, int64(i+1))
	}
	metric(b, tab, 0, 2, "joinQs_plain")
	metric(b, tab, 1, 2, "joinQs_filtered")
	metric(b, tab, 2, 3, "pairwise_plain_dollars")
	metric(b, tab, 3, 3, "pairwise_filtered_dollars")
}

// BenchmarkE6Redundancy sweeps assignments per HIT.
func BenchmarkE6Redundancy(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E6Redundancy(40, int64(i+1))
	}
	metric(b, tab, 0, 3, "acc_1asg")
	metric(b, tab, 2, 3, "acc_5asg")
}

// BenchmarkE7Adaptive compares static and adaptive filter orderings.
func BenchmarkE7Adaptive(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E7Adaptive(40, int64(i+1))
	}
	metric(b, tab, 0, 3, "worstQs")
	metric(b, tab, 1, 3, "bestQs")
	metric(b, tab, 2, 3, "adaptiveQs")
}

// BenchmarkE8Batching sweeps tuples-per-HIT.
func BenchmarkE8Batching(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E8Batching(40, int64(i+1))
	}
	metric(b, tab, 0, 1, "HITs_batch1")
	metric(b, tab, 3, 1, "HITs_batch10")
}

// BenchmarkE9Sort compares rating-based and comparison-based human
// sorting.
func BenchmarkE9Sort(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E9Sort(12, int64(i+1))
	}
	metric(b, tab, 0, 1, "ratingQs")
	metric(b, tab, 1, 1, "compareQs")
	metric(b, tab, 0, 3, "ratingTau")
}

// BenchmarkE10Async compares the async executor against a blocking
// iterator on virtual makespan.
func BenchmarkE10Async(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E10Async(16, int64(i+1))
	}
	metric(b, tab, 0, 2, "async_vmin")
	metric(b, tab, 1, 2, "blocking_vmin")
}

// benchPool is a contention-free worker pool: every claim is answered by
// an anonymous worker after one virtual second, so the benchmark below
// measures marketplace overhead rather than crowd simulation. The claim
// is allocation-free (shared answers, read-only) for the same reason.
type benchPool struct{}

var benchAnswers = hit.Answers{WorkerID: "bench-worker",
	Values: map[string]relation.Value{"k": relation.NewBool(true)}}

func benchAnswer() (hit.Answers, error) { return benchAnswers, nil }

func (benchPool) Claim(h *hit.HIT, now mturk.VirtualTime) (mturk.Claim, bool) {
	return mturk.Claim{WorkerID: "bench-worker", Delay: time.Second, Answer: benchAnswer}, true
}

// BenchmarkMarketplaceThroughput hammers Post/dispatch/complete from all
// cores at once — the paper's thousands-of-async-HITs regime — and
// reports end-to-end completed HITs per wall-clock second.
func BenchmarkMarketplaceThroughput(b *testing.B) {
	clock := mturk.NewClock()
	market := mturk.NewMarketplace(clock, benchPool{})
	// Steady-state regime: completed HITs are disposed (the production
	// configuration), so the benchmark measures marketplace throughput,
	// not GC over an ever-growing history.
	market.SetAutoDispose(true, nil)
	var stop atomic.Bool
	pumpDone := make(chan struct{})
	go func() {
		clock.Run(func() bool { return stop.Load() })
		close(pumpDone)
	}()
	defer func() {
		stop.Store(true)
		clock.Close()
		<-pumpDone
	}()

	// Bound in-flight HITs so the benchmark measures steady-state
	// marketplace throughput rather than GC over an unbounded backlog.
	const maxInflight = 4096
	var posted, completed atomic.Int64
	items := []hit.Item{{Key: "k"}} // HITs never mutate Items; share one
	onDone := func(mturk.AssignmentResult) { completed.Add(1) }
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for posted.Load()-completed.Load() > maxInflight {
				runtime.Gosched()
			}
			h := &hit.HIT{
				ID:          market.NewHITID(),
				Task:        "bench",
				Title:       "bench",
				Question:    "q",
				Response:    qlang.Response{Kind: qlang.ResponseYesNo},
				RewardCents: 1,
				Assignments: 1,
				Items:       items,
			}
			posted.Add(1)
			if err := market.Post(h, onDone); err != nil {
				b.Error(err)
				return
			}
		}
	})
	for completed.Load() < posted.Load() {
		time.Sleep(100 * time.Microsecond)
	}
	b.ReportMetric(float64(completed.Load())/b.Elapsed().Seconds(), "HITs/sec")
}

// BenchmarkLoadHarness runs a small crowd-scale load scenario per
// iteration and reports its headline metrics (see internal/load).
func BenchmarkLoadHarness(b *testing.B) {
	var rep load.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = load.Run(load.Config{
			Workload: load.WorkloadFilter,
			Tuples:   400,
			Workers:  200,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.HITsPerSec, "HITs/sec")
	b.ReportMetric(rep.P99.Minutes(), "p99_vmin")
	b.ReportMetric(rep.DollarsPerQuery, "dollars/query")
}

// BenchmarkE11SpamDefense measures the reputation blocklist extension.
func BenchmarkE11SpamDefense(b *testing.B) {
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E11SpamDefense(40, int64(i+1))
	}
	metric(b, tab, 0, 3, "acc_no_defense")
	metric(b, tab, 1, 3, "acc_blocklist")
}
