// Package workload generates the synthetic datasets and ground-truth
// oracles the experiments run against, replacing the demo's proprietary
// image corpora (celebrity photos, company listings) with controlled
// equivalents — see DESIGN.md §2 for the substitution rationale.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/crowd"
	"repro/internal/relation"
)

// Dataset bundles generated tables with the oracle that knows their
// ground truth. Oracles compose: an engine typically runs with
// Combine(...) over every dataset in play.
type Dataset struct {
	Tables []*relation.Table
	Oracle crowd.Oracle
}

// Combine merges oracles; the first non-NULL answer wins.
func Combine(oracles ...crowd.Oracle) crowd.Oracle {
	return crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		for _, o := range oracles {
			if v := o.Truth(task, args); !v.IsNull() {
				return v
			}
		}
		return relation.Null
	})
}

// Companies generates the Query 1 workload: a companies table whose CEO
// name and phone number are derivable only through the oracle (the
// "information on the web" the turkers look up).
func Companies(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	tab := relation.NewTable("companies", relation.MustSchema(
		relation.Column{Name: "companyName", Kind: relation.KindString}))
	truth := make(map[string]relation.Value, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s %s Inc %03d", adjectives[rng.Intn(len(adjectives))], nouns[rng.Intn(len(nouns))], i)
		_ = tab.InsertValues(relation.NewString(name))
		truth[strings.ToLower(name)] = relation.NewTuple(
			relation.Field{Name: "CEO", Value: relation.NewString(firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))])},
			relation.Field{Name: "Phone", Value: relation.NewString(fmt.Sprintf("555-%04d", rng.Intn(10000)))},
		)
	}
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		if !strings.EqualFold(task, "findCEO") || len(args) == 0 {
			return relation.Null
		}
		if v, ok := truth[strings.ToLower(args[0].Str())]; ok {
			return v
		}
		return relation.Null
	})
	return Dataset{Tables: []*relation.Table{tab}, Oracle: oracle}
}

// Celebrities generates the Query 2 workload: a celebrities table and a
// spottedstars table of submitted sightings. matchFraction of sightings
// depict a celebrity from the table; the rest match nobody. The oracle
// answers samePerson by shared person identity embedded in the image
// reference (the visual identity a human would recognize).
func Celebrities(nCelebs, nSpotted int, matchFraction float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	celebs := relation.NewTable("celebrities", relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "image", Kind: relation.KindImage}))
	spotted := relation.NewTable("spottedstars", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "image", Kind: relation.KindImage}))
	for i := 0; i < nCelebs; i++ {
		name := firstNames[i%len(firstNames)] + " " + lastNames[(i/len(firstNames))%len(lastNames)]
		_ = celebs.InsertValues(relation.NewString(name), relation.NewImage(fmt.Sprintf("person%04d-studio.png", i)))
	}
	for j := 0; j < nSpotted; j++ {
		// Junk sightings carry a "nobody" identity that can never equal a
		// celebrity's, at any table size.
		ref := fmt.Sprintf("nobody%04d-street%04d.png", j, j)
		if rng.Float64() < matchFraction && nCelebs > 0 {
			ref = fmt.Sprintf("person%04d-street%04d.png", rng.Intn(nCelebs), j)
		}
		_ = spotted.InsertValues(relation.NewInt(int64(j+1)), relation.NewImage(ref))
	}
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		switch {
		case strings.EqualFold(task, "samePerson") && len(args) >= 2:
			return relation.NewBool(personOf(args[0].Str()) == personOf(args[1].Str()))
		case strings.EqualFold(task, "isCeleb") && len(args) >= 1:
			// The cheap feature question of the join pre-filter: "could
			// this be one of the listed celebrities at all?" — a human
			// recognizes a public figure much faster than they match two
			// specific photos. Junk sightings embed an offset identity.
			return relation.NewBool(IsCelebRef(args[0].Str()))
		}
		return relation.Null
	})
	return Dataset{Tables: []*relation.Table{celebs, spotted}, Oracle: oracle}
}

// personOf extracts the latent identity from an image reference.
func personOf(ref string) string {
	if i := strings.IndexByte(ref, '-'); i > 0 {
		return ref[:i]
	}
	return ref
}

// IsCelebRef is the ground truth of the isCeleb feature filter: matched
// sightings (and the celebrity photos themselves) carry a "person"
// identity; junk sightings carry a "nobody" identity that matches no
// celebrity at any table size.
func IsCelebRef(ref string) bool {
	return strings.HasPrefix(personOf(ref), "person")
}

// Photos generates a photo table for filter workloads. Each photo is a
// cat with probability catFraction and outdoors with outdoorFraction,
// independently; the oracle answers isCat and isOutdoor.
func Photos(n int, catFraction, outdoorFraction float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	tab := relation.NewTable("photos", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "img", Kind: relation.KindImage}))
	type truth struct{ cat, outdoor bool }
	truths := make(map[string]truth, n)
	for i := 0; i < n; i++ {
		tr := truth{cat: rng.Float64() < catFraction, outdoor: rng.Float64() < outdoorFraction}
		subject, scene := "toaster", "indoor"
		if tr.cat {
			subject = "feline"
		}
		if tr.outdoor {
			scene = "park"
		}
		ref := fmt.Sprintf("photo%05d-%s-%s.png", i, subject, scene)
		truths[ref] = tr
		_ = tab.InsertValues(relation.NewInt(int64(i+1)), relation.NewImage(ref))
	}
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		if len(args) == 0 {
			return relation.Null
		}
		tr, ok := truths[args[0].Str()]
		if !ok {
			return relation.Null
		}
		switch strings.ToLower(task) {
		case "iscat":
			return relation.NewBool(tr.cat)
		case "isoutdoor":
			return relation.NewBool(tr.outdoor)
		default:
			return relation.Null
		}
	})
	return Dataset{Tables: []*relation.Table{tab}, Oracle: oracle}
}

// RankItems generates items with a latent quality score in [1, scale]
// for sort experiments; the oracle answers the named rating task with
// the latent score (workers then add noise).
func RankItems(n, scale int, task string, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	tab := relation.NewTable("items", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "img", Kind: relation.KindImage},
		relation.Column{Name: "truth", Kind: relation.KindFloat}))
	scores := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		score := 1 + rng.Float64()*float64(scale-1)
		ref := fmt.Sprintf("item%05d.png", i)
		scores[ref] = score
		_ = tab.InsertValues(relation.NewInt(int64(i+1)), relation.NewImage(ref), relation.NewFloat(score))
	}
	oracle := crowd.OracleFunc(func(gotTask string, args []relation.Value) relation.Value {
		if !strings.EqualFold(gotTask, task) || len(args) == 0 {
			return relation.Null
		}
		if s, ok := scores[args[0].Str()]; ok {
			return relation.NewInt(int64(s + 0.5))
		}
		return relation.Null
	})
	return Dataset{Tables: []*relation.Table{tab}, Oracle: oracle}
}

// OrderOracle answers an S-way comparison (Order response) task from
// the latent scores of a RankItems table: each shown item's truth is
// its exact latent score, so a perfect worker's ranking is the true
// ascending order — the crowd layer converts noisy scores to ranks.
func OrderOracle(items *relation.Table, task string) crowd.Oracle {
	scores := make(map[string]float64, items.Len())
	for _, row := range items.Snapshot() {
		scores[row.Get("img").Str()] = row.Get("truth").Float()
	}
	return crowd.OracleFunc(func(gotTask string, args []relation.Value) relation.Value {
		if !strings.EqualFold(gotTask, task) || len(args) == 0 {
			return relation.Null
		}
		if s, ok := scores[args[0].Str()]; ok {
			return relation.NewFloat(s)
		}
		return relation.Null
	})
}

// CompareOracle answers a pairwise comparison task ("is A ranked above
// B?") from the same latent scores as RankItems, for comparison-sort
// experiments. truthCol must be the RankItems table.
func CompareOracle(items *relation.Table, task string) crowd.Oracle {
	scores := make(map[string]float64, items.Len())
	for _, row := range items.Snapshot() {
		scores[row.Get("img").Str()] = row.Get("truth").Float()
	}
	return crowd.OracleFunc(func(gotTask string, args []relation.Value) relation.Value {
		if !strings.EqualFold(gotTask, task) || len(args) < 2 {
			return relation.Null
		}
		return relation.NewBool(scores[args[0].Str()] > scores[args[1].Str()])
	})
}

// Reviews generates short text snippets with a latent sentiment for the
// sentiment-analysis workload the paper's introduction motivates.
func Reviews(n int, positiveFraction float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	tab := relation.NewTable("reviews", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "text", Kind: relation.KindString}))
	sentiments := make(map[string]string, n)
	for i := 0; i < n; i++ {
		pos := rng.Float64() < positiveFraction
		var text string
		if pos {
			text = fmt.Sprintf("Review %04d: %s, would recommend.", i, positives[rng.Intn(len(positives))])
		} else {
			text = fmt.Sprintf("Review %04d: %s, avoid.", i, negatives[rng.Intn(len(negatives))])
		}
		if pos {
			sentiments[text] = "positive"
		} else {
			sentiments[text] = "negative"
		}
		_ = tab.InsertValues(relation.NewInt(int64(i+1)), relation.NewString(text))
	}
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		if len(args) == 0 {
			return relation.Null
		}
		switch strings.ToLower(task) {
		case "sentiment":
			if s, ok := sentiments[args[0].Str()]; ok {
				return relation.NewString(s)
			}
		case "ispositive":
			if s, ok := sentiments[args[0].Str()]; ok {
				return relation.NewBool(s == "positive")
			}
		}
		return relation.Null
	})
	return Dataset{Tables: []*relation.Table{tab}, Oracle: oracle}
}

var (
	adjectives = []string{"Global", "United", "Apex", "Quantum", "Stellar", "Pioneer", "Summit", "Vertex", "Crystal", "Atlas"}
	nouns      = []string{"Systems", "Dynamics", "Industries", "Holdings", "Labs", "Networks", "Logistics", "Materials", "Energy", "Robotics"}
	firstNames = []string{"Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "Tony", "Frances", "John"}
	lastNames  = []string{"Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Lamport", "Hoare", "Allen", "Backus"}
	positives  = []string{"absolutely wonderful", "exceeded expectations", "five stars", "fantastic quality", "a delight"}
	negatives  = []string{"utterly disappointing", "fell apart quickly", "one star", "terrible support", "a waste"}
)
