package workload

import (
	"testing"

	"repro/internal/relation"
)

func TestCompaniesDataset(t *testing.T) {
	ds := Companies(20, 1)
	tab := ds.Tables[0]
	if tab.Len() != 20 {
		t.Fatalf("companies = %d", tab.Len())
	}
	name := tab.Row(0).Get("companyName")
	truth := ds.Oracle.Truth("findCEO", []relation.Value{name})
	if truth.Kind() != relation.KindTuple {
		t.Fatalf("truth = %v", truth)
	}
	if truth.Field("CEO").IsNull() || truth.Field("Phone").IsNull() {
		t.Fatalf("truth fields = %v", truth)
	}
	// Stable truth: asking twice gives the same answer.
	again := ds.Oracle.Truth("findCEO", []relation.Value{name})
	if !truth.Equal(again) {
		t.Fatal("oracle not stable")
	}
	// Unknown task/args answer NULL.
	if !ds.Oracle.Truth("isCat", []relation.Value{name}).IsNull() {
		t.Fatal("foreign task answered")
	}
	if !ds.Oracle.Truth("findCEO", []relation.Value{relation.NewString("Nope")}).IsNull() {
		t.Fatal("unknown company answered")
	}
}

func TestCompaniesDeterministic(t *testing.T) {
	a, b := Companies(5, 42), Companies(5, 42)
	for i := 0; i < 5; i++ {
		if !a.Tables[0].Row(i).Values[0].Equal(b.Tables[0].Row(i).Values[0]) {
			t.Fatal("same seed must give same data")
		}
	}
	c := Companies(5, 43)
	diff := false
	for i := 0; i < 5; i++ {
		if !a.Tables[0].Row(i).Values[0].Equal(c.Tables[0].Row(i).Values[0]) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestCelebritiesDataset(t *testing.T) {
	ds := Celebrities(10, 40, 0.5, 7)
	celebs, spotted := ds.Tables[0], ds.Tables[1]
	if celebs.Len() != 10 || spotted.Len() != 40 {
		t.Fatalf("sizes = %d/%d", celebs.Len(), spotted.Len())
	}
	// Count spotted images that match some celebrity, via the oracle.
	matches := 0
	for _, srow := range spotted.Snapshot() {
		for _, crow := range celebs.Snapshot() {
			v := ds.Oracle.Truth("samePerson", []relation.Value{crow.Get("image"), srow.Get("image")})
			if v.Truthy() {
				matches++
			}
		}
	}
	if matches < 10 || matches > 30 {
		t.Fatalf("matches = %d, expected near 20 for matchFraction 0.5", matches)
	}
	// A spotted image matches at most one celebrity.
	for _, srow := range spotted.Snapshot() {
		n := 0
		for _, crow := range celebs.Snapshot() {
			if ds.Oracle.Truth("samePerson", []relation.Value{crow.Get("image"), srow.Get("image")}).Truthy() {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("sighting matches %d celebrities", n)
		}
	}
}

func TestPhotosDataset(t *testing.T) {
	ds := Photos(200, 0.3, 0.6, 5)
	tab := ds.Tables[0]
	cats, outs := 0, 0
	for _, row := range tab.Snapshot() {
		img := []relation.Value{row.Get("img")}
		if ds.Oracle.Truth("isCat", img).Truthy() {
			cats++
		}
		if ds.Oracle.Truth("isOutdoor", img).Truthy() {
			outs++
		}
		if !ds.Oracle.Truth("other", img).IsNull() {
			t.Fatal("foreign task answered")
		}
	}
	if cats < 40 || cats > 80 {
		t.Fatalf("cats = %d of 200 at fraction 0.3", cats)
	}
	if outs < 95 || outs > 145 {
		t.Fatalf("outdoor = %d of 200 at fraction 0.6", outs)
	}
}

func TestRankItemsAndCompareOracle(t *testing.T) {
	ds := RankItems(30, 9, "score", 3)
	tab := ds.Tables[0]
	if tab.Len() != 30 {
		t.Fatalf("items = %d", tab.Len())
	}
	for _, row := range tab.Snapshot() {
		truth := row.Get("truth").Float()
		if truth < 1 || truth > 9 {
			t.Fatalf("latent score %v out of range", truth)
		}
		got := ds.Oracle.Truth("score", []relation.Value{row.Get("img")})
		if got.IsNull() {
			t.Fatal("oracle missing item")
		}
	}
	cmp := CompareOracle(tab, "better")
	a, b := tab.Row(0), tab.Row(1)
	got := cmp.Truth("better", []relation.Value{a.Get("img"), b.Get("img")})
	want := a.Get("truth").Float() > b.Get("truth").Float()
	if got.Truthy() != want {
		t.Fatalf("compare oracle = %v, want %v", got, want)
	}
}

func TestReviewsDataset(t *testing.T) {
	ds := Reviews(100, 0.7, 9)
	tab := ds.Tables[0]
	pos := 0
	for _, row := range tab.Snapshot() {
		txt := []relation.Value{row.Get("text")}
		s := ds.Oracle.Truth("sentiment", txt)
		if s.Str() != "positive" && s.Str() != "negative" {
			t.Fatalf("sentiment = %v", s)
		}
		b := ds.Oracle.Truth("isPositive", txt)
		if b.Truthy() != (s.Str() == "positive") {
			t.Fatal("isPositive disagrees with sentiment")
		}
		if b.Truthy() {
			pos++
		}
	}
	if pos < 55 || pos > 85 {
		t.Fatalf("positive = %d of 100 at fraction 0.7", pos)
	}
}

func TestCombineOracles(t *testing.T) {
	a := Photos(10, 0.5, 0.5, 1)
	b := Companies(10, 1)
	combined := Combine(a.Oracle, b.Oracle)
	img := a.Tables[0].Row(0).Get("img")
	if combined.Truth("isCat", []relation.Value{img}).IsNull() {
		t.Fatal("first oracle unreachable")
	}
	name := b.Tables[0].Row(0).Get("companyName")
	if combined.Truth("findCEO", []relation.Value{name}).IsNull() {
		t.Fatal("second oracle unreachable")
	}
	if !combined.Truth("zz", []relation.Value{img}).IsNull() {
		t.Fatal("unknown task answered")
	}
}

func TestPersonOf(t *testing.T) {
	if personOf("person0001-studio.png") != "person0001" {
		t.Fatal("personOf parse")
	}
	if personOf("noseparator") != "noseparator" {
		t.Fatal("personOf fallback")
	}
}
