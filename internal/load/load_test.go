package load

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownWorkload(t *testing.T) {
	_, err := Run(Config{Workload: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v", err)
	}
}

func TestFilterCascadeAccounting(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadFilter, Tuples: 120, Workers: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	// Stage 1 resolves every tuple; stage 2 only survivors.
	if rep.Outcomes < 120 || rep.Outcomes > 240 {
		t.Fatalf("outcomes = %d, want within [120, 240]", rep.Outcomes)
	}
	if rep.HITs == 0 || rep.Assignments != 3*rep.HITs {
		t.Fatalf("HITs = %d assignments = %d", rep.HITs, rep.Assignments)
	}
	if rep.Spent == 0 || rep.DollarsPerQuery != float64(rep.Spent)/100 {
		t.Fatalf("spent = %v dollars = %v", rep.Spent, rep.DollarsPerQuery)
	}
	if rep.P50 > rep.P99 || rep.P99.Nanoseconds() > int64(rep.Makespan) {
		t.Fatalf("latency ordering broken: p50=%v p99=%v makespan=%v", rep.P50, rep.P99, rep.Makespan)
	}
	if rep.Passed == 0 || rep.Passed > rep.Outcomes {
		t.Fatalf("passed = %d of %d", rep.Passed, rep.Outcomes)
	}
}

func TestJoinGridCoversEveryPair(t *testing.T) {
	// 100 sightings → 10 celebrities; every celeb×sighting pair resolves.
	rep, err := Run(Config{Workload: WorkloadJoin, Tuples: 100, Workers: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes != 10*100 {
		t.Fatalf("outcomes = %d, want 1000 pair resolutions", rep.Outcomes)
	}
	if rep.Errors != 0 || rep.HITs == 0 {
		t.Fatalf("errors = %d HITs = %d", rep.Errors, rep.HITs)
	}
}

func TestOrderByResolvesEveryItem(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadOrderBy, Tuples: 90, Workers: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes != 90 || rep.Passed != 90 || rep.Errors != 0 {
		t.Fatalf("outcomes=%d passed=%d errors=%d", rep.Outcomes, rep.Passed, rep.Errors)
	}
}

func TestReportStringMentionsHeadlines(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadFilter, Tuples: 40, Workers: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"HITs/sec", "p50=", "p99=", "$", "workload=filter"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}
