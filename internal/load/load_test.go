package load

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownWorkload(t *testing.T) {
	_, err := Run(Config{Workload: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v", err)
	}
}

func TestFilterCascadeAccounting(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadFilter, Tuples: 120, Workers: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	// Stage 1 resolves every tuple; stage 2 only survivors.
	if rep.Outcomes < 120 || rep.Outcomes > 240 {
		t.Fatalf("outcomes = %d, want within [120, 240]", rep.Outcomes)
	}
	if rep.HITs == 0 || rep.Assignments != 3*rep.HITs {
		t.Fatalf("HITs = %d assignments = %d", rep.HITs, rep.Assignments)
	}
	if rep.Spent == 0 || rep.DollarsPerQuery != float64(rep.Spent)/100 {
		t.Fatalf("spent = %v dollars = %v", rep.Spent, rep.DollarsPerQuery)
	}
	if rep.P50 > rep.P99 || rep.P99.Nanoseconds() > int64(rep.Makespan) {
		t.Fatalf("latency ordering broken: p50=%v p99=%v makespan=%v", rep.P50, rep.P99, rep.Makespan)
	}
	if rep.Passed == 0 || rep.Passed > rep.Outcomes {
		t.Fatalf("passed = %d of %d", rep.Passed, rep.Outcomes)
	}
}

func TestJoinGridCoversEveryPair(t *testing.T) {
	// 100 sightings → 10 celebrities; every celeb×sighting pair resolves.
	rep, err := Run(Config{Workload: WorkloadJoin, Tuples: 100, Workers: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes != 10*100 {
		t.Fatalf("outcomes = %d, want 1000 pair resolutions", rep.Outcomes)
	}
	if rep.Errors != 0 || rep.HITs == 0 {
		t.Fatalf("errors = %d HITs = %d", rep.Errors, rep.HITs)
	}
}

// TestJoinPreFilterBeatsBaseline is the adaptive-join acceptance bar:
// on the same dataset, seed and (near-perfect) crowd profile, the
// pre-filtered join pays for measurably fewer pairs than the plain grid
// join while producing identical final result rows.
func TestJoinPreFilterBeatsBaseline(t *testing.T) {
	// Seed-pinned: runs are rerun-identical per seed, and at this seed
	// the single-assignment feature filter makes no mistakes, so the
	// result-row fingerprints match exactly. (At an unlucky seed the
	// 1-assignment POSSIBLY filter can drop a true match with ~1%
	// per-question probability — the documented cost of not paying for
	// redundancy on an approximation the join re-checks.)
	cfg := Config{Tuples: 100, Workers: 80, Seed: 2,
		Skill: 0.999, SkillStd: 1e-9, Spam: 1e-12, Abandon: 1e-12, BatchPenalty: 1e-9}

	cfg.Workload = WorkloadJoin
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = WorkloadJoinPreFilter
	pre, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if base.JoinPairs != 10*100 {
		t.Fatalf("baseline pairs = %d, want the full cross product", base.JoinPairs)
	}
	if pre.JoinPairs >= base.JoinPairs/2 {
		t.Fatalf("pre-filtered pairs = %d, want well under baseline %d", pre.JoinPairs, base.JoinPairs)
	}
	if pre.Passed != base.Passed || pre.PassedKeysFNV != base.PassedKeysFNV {
		t.Fatalf("result rows differ: passed %d vs %d, fingerprint %016x vs %016x",
			pre.Passed, base.Passed, pre.PassedKeysFNV, base.PassedKeysFNV)
	}
	if pre.Spent >= base.Spent {
		t.Fatalf("pre-filtered spend %v not under baseline %v", pre.Spent, base.Spent)
	}
	if pre.Errors != 0 || base.Errors != 0 {
		t.Fatalf("errors: pre=%d base=%d", pre.Errors, base.Errors)
	}
}

// TestJoinPreFilterDeclinesWhenUseless drives the decline branch: with
// Batch=1 the unbatched filter costs more than the whole 5×30 grid join
// (35 single-question filter HITs vs 18¢ of grids, at any measured
// selectivity), so DecidePreFilter must refuse and the scenario must
// fall back to joining the full cross product — probe spend sunk,
// every pair paid for.
func TestJoinPreFilterDeclinesWhenUseless(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadJoinPreFilter, Tuples: 30, Workers: 30, Seed: 2, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.JoinPairs != 5*30 {
		t.Fatalf("join pairs = %d, want the full 150-pair cross product after declining", rep.JoinPairs)
	}
	// The probe still ran: outcomes = 150 pairs + probe filter answers.
	if rep.Outcomes <= 150 {
		t.Fatalf("outcomes = %d, want pairs plus probe filter outcomes", rep.Outcomes)
	}
}

// TestWarmstartPaysOnceAnswersTwice is the durable-store acceptance
// bar: run 2 over run 1's store must answer at least half its questions
// from replayed state (here: all of them), pay strictly fewer HITs, and
// produce a byte-identical result fingerprint.
func TestWarmstartPaysOnceAnswersTwice(t *testing.T) {
	cfg := Config{Workload: WorkloadWarmstart, Tuples: 150, Workers: 60, Seed: 4,
		StorePath: t.TempDir()}

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.HITs == 0 || cold.Errors != 0 {
		t.Fatalf("cold run: HITs=%d errors=%d", cold.HITs, cold.Errors)
	}
	if cold.ReplayedAnswers != 0 {
		t.Fatalf("cold run replayed %d answers from an empty store", cold.ReplayedAnswers)
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm run errors = %d", warm.Errors)
	}
	if warm.HITs >= cold.HITs {
		t.Fatalf("warm run paid %d HITs, cold paid %d — store bought nothing", warm.HITs, cold.HITs)
	}
	if warm.ReplayedAnswers == 0 || warm.ReplayedObservations == 0 {
		t.Fatalf("warm run replayed answers=%d observations=%d", warm.ReplayedAnswers, warm.ReplayedObservations)
	}
	if 2*warm.CacheServed < warm.Outcomes {
		t.Fatalf("cache served %d of %d questions, want ≥ half", warm.CacheServed, warm.Outcomes)
	}
	if warm.PassedKeysFNV != cold.PassedKeysFNV || warm.Passed != cold.Passed {
		t.Fatalf("result drift: passed %d vs %d, fingerprint %016x vs %016x",
			warm.Passed, cold.Passed, warm.PassedKeysFNV, cold.PassedKeysFNV)
	}
	// Same-config reruns of the warm run are themselves deterministic in
	// virtual time (the -verify contract).
	warm2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm2.PassedKeysFNV != warm.PassedKeysFNV || warm2.Passed != warm.Passed {
		t.Fatalf("warm reruns disagree: %016x vs %016x", warm2.PassedKeysFNV, warm.PassedKeysFNV)
	}
}

func TestWarmstartNeedsStorePath(t *testing.T) {
	if _, err := Run(Config{Workload: WorkloadWarmstart}); err == nil {
		t.Fatal("warmstart without StorePath must error")
	}
}

func TestOrderByResolvesEveryItem(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadOrderBy, Tuples: 90, Workers: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes != 90 || rep.Passed != 90 || rep.Errors != 0 {
		t.Fatalf("outcomes=%d passed=%d errors=%d", rep.Outcomes, rep.Passed, rep.Errors)
	}
}

func TestReportStringMentionsHeadlines(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadFilter, Tuples: 40, Workers: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"HITs/sec", "p50=", "p99=", "$", "workload=filter"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}
