package load

import (
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// hybridPhase is one side of the hybridcrowd comparison: its own clock,
// crowd, marketplace and task manager over the shared dataset, so HIT
// counts, spend and the result fingerprint are directly comparable and
// every phase is deterministic.
type hybridPhase struct {
	HITs        int64
	Assignments int64
	Questions   int64
	Spent       budget.Cents
	Makespan    mturk.VirtualTime
	FNV         uint64
	Outcomes    int64
	Errors      int64
	Passed      int64

	// Routed-phase extras (zero on the sim-only side).
	SimHITs    int64
	LLMHITs    int64
	SavedCents budget.Cents
}

// runHybridPhase drives the two-stage filter cascade once. With routed
// set, the task manager serves through a backend router that pins the
// first-stage filter to an LLM worker crowd whose model answers from the
// dataset's ground truth; the second stage stays on the simulated human
// marketplace, so one run mixes both crowds.
func runHybridPhase(cfg Config, ds workload.Dataset, routed bool, sink *traceSink) (hybridPhase, error) {
	var ph hybridPhase
	clock := mturk.NewClock()
	defer clock.Close()
	pool := crowd.NewPool(crowd.Config{
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		Seed:         cfg.Seed,
		MeanSkill:    cfg.Skill,
		SkillStd:     cfg.SkillStd,
		SpamFraction: cfg.Spam,
		AbandonRate:  cfg.Abandon,
		BatchPenalty: cfg.BatchPenalty,
	}, ds.Oracle)
	market := mturk.NewMarketplace(clock, pool)
	market.SetAutoDispose(true, nil)

	var be backend.Backend = backend.NewSim(market)
	var router *backend.Router
	if routed {
		// The model reads the same ground truth the oracle does, at the
		// cheaper per-assignment quote.
		model := func(task string, tt qlang.TaskType, args []relation.Value) relation.Value {
			return ds.Oracle.Truth(task, args)
		}
		llm := backend.NewLLM(clock, backend.LLMConfig{Model: model, PriceCents: hybridLLMPrice(cfg)})
		var err error
		router, err = backend.NewRouter("sim", backend.NewSim(market), llm)
		if err != nil {
			return ph, fmt.Errorf("load: %v", err)
		}
		if err := router.Pin("isCat", "llm"); err != nil {
			return ph, fmt.Errorf("load: %v", err)
		}
		be = router
	}

	mgr := taskmgr.NewWithBackend(be, nil, nil, nil)
	tr := sink.tracer(clock.Now)
	if tr != nil {
		mgr.SetObs(tr)
	}
	mgr.SetBasePolicy(taskmgr.Policy{
		Assignments: cfg.Assignments,
		BatchSize:   cfg.Batch,
		PriceCents:  cfg.PriceCents,
		Linger:      time.Minute,
		UseCache:    false,
		UseModel:    false,
	})

	sc := cascadeScenario(ds, true)
	var ctr counters
	sc.drive(mgr, &ctr)
	mgr.FlushAll()
	for ctr.outstanding.Load() > 0 {
		if !clock.Step() {
			mgr.FlushAll()
			if !clock.Step() {
				return ph, fmt.Errorf("load: hybridcrowd stalled with %d outcomes outstanding", ctr.outstanding.Load())
			}
		}
	}

	st := be.Stats()
	ph.HITs = int64(st.HITsPosted)
	ph.Assignments = int64(st.AssignmentsCompleted)
	ph.Questions = int64(st.QuestionsAnswered)
	ph.Spent = st.SpentCents
	ph.Makespan = clock.Now()
	ph.Outcomes = ctr.outcomes.Load()
	ph.Errors = ctr.errors.Load()
	ph.Passed = ctr.passed.Load()
	var tmp Report
	sc.finish(&tmp)
	ph.FNV = tmp.PassedKeysFNV
	if router != nil {
		counts, saved := router.Counts()
		ph.SimHITs = counts["sim"]
		ph.LLMHITs = counts["llm"]
		ph.SavedCents = saved
	}
	sink.collect(tr)
	return ph, nil
}

// hybridLLMPrice is the LLM crowd's per-assignment quote: half the human
// reward, at least a cent below it so routing has something to save.
func hybridLLMPrice(cfg Config) int64 {
	p := cfg.PriceCents / 2
	if p < 1 {
		p = 1
	}
	if p >= cfg.PriceCents {
		p = cfg.PriceCents - 1
	}
	return p
}

// runHybridCrowd drives the hybridcrowd workload: the same filter
// cascade twice over one dataset — first entirely on the simulated human
// marketplace, then through a backend router that serves the first-stage
// filter from a deterministic LLM worker crowd at a cheaper quote while
// the second stage stays human. The report carries both phases' spend,
// the routed phase's per-backend HIT counts and routing savings, and
// both result fingerprints, so the -verify harness (and CI) can assert
// the routed run costs strictly less at an identical result set and that
// reruns are byte-identical.
//
// Determinism posture: the default crowd is exactly perfect (Skill 1.0
// with vanishing spread/spam/abandonment) and the model function reads
// the dataset's ground truth, so both phases' answers equal the oracle
// and the fingerprints are pure functions of the dataset. Everything is
// pumped from one goroutine, so HIT counts and spend are deterministic
// too.
func runHybridCrowd(cfg Config) (Report, error) {
	rep := Report{Config: cfg}
	ds := workload.Photos(cfg.Tuples, 0.5, 0.6, cfg.Seed)

	sink := newTraceSink(cfg)
	start := time.Now()
	simPh, err := runHybridPhase(cfg, ds, false, sink)
	if err != nil {
		return rep, err
	}
	routedPh, err := runHybridPhase(cfg, ds, true, sink)
	if err != nil {
		return rep, err
	}
	rep.Wall = time.Since(start)
	if err := sink.flush(); err != nil {
		return rep, err
	}

	// The routed phase is the headline; the sim-only baseline rides in
	// the Hybrid* fields.
	rep.HITs = routedPh.HITs
	rep.Assignments = routedPh.Assignments
	rep.Questions = routedPh.Questions
	rep.Spent = routedPh.Spent
	rep.Makespan = routedPh.Makespan
	rep.Outcomes = routedPh.Outcomes
	rep.Errors = routedPh.Errors
	rep.Passed = routedPh.Passed
	rep.PassedKeysFNV = routedPh.FNV
	rep.DollarsPerQuery = float64(rep.Spent) / 100
	if secs := rep.Wall.Seconds(); secs > 0 {
		rep.HITsPerSec = float64(simPh.HITs+routedPh.HITs) / secs
	}

	rep.HybridSimHITs = simPh.HITs
	rep.HybridSimSpent = simPh.Spent
	rep.HybridSimFNV = simPh.FNV
	rep.BackendSimHITs = routedPh.SimHITs
	rep.BackendLLMHITs = routedPh.LLMHITs
	rep.RoutedSavedCents = routedPh.SavedCents
	return rep, nil
}
