package load

import (
	"strings"
	"testing"
)

// TestInferenceSavesAssignments is the acceptance comparison inside one
// run: the adaptive EM phase reproduces the majority baseline's result
// set exactly while buying strictly fewer assignments — with the perfect
// default crowd, exactly MinAssignments per HIT and no extensions.
func TestInferenceSavesAssignments(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadInference, Tuples: 200, Workers: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PassedKeysFNV != rep.InferBaseFNV || rep.InferBaseFNV == 0 {
		t.Fatalf("adaptive fingerprint %016x differs from baseline %016x", rep.PassedKeysFNV, rep.InferBaseFNV)
	}
	if rep.Assignments >= rep.InferBaseAssignments {
		t.Fatalf("adaptive bought %d assignments, baseline %d", rep.Assignments, rep.InferBaseAssignments)
	}
	if rep.Spent >= rep.InferBaseSpent {
		t.Fatalf("adaptive spent %v, baseline %v", rep.Spent, rep.InferBaseSpent)
	}
	// HIT counts may differ by a partial batch — completion timing at 2
	// vs 3 assignments packs the second-stage batches differently — but
	// never by much.
	if rep.HITs < rep.InferBaseHITs-2 || rep.HITs > rep.InferBaseHITs+2 {
		t.Fatalf("phases posted very different HIT counts: %d vs %d", rep.HITs, rep.InferBaseHITs)
	}
	// A perfect crowd clears the posterior target at the floor every
	// time: exactly 2 assignments per HIT, never a third.
	if rep.Assignments != 2*rep.HITs || rep.InferExtensions != 0 || rep.InferExtendFailures != 0 {
		t.Fatalf("perfect crowd should stop at the floor: %d assignments over %d HITs, %d extensions, %d failures",
			rep.Assignments, rep.HITs, rep.InferExtensions, rep.InferExtendFailures)
	}
	if rep.InferAdaptiveHITs != rep.HITs {
		t.Fatalf("adaptive HITs = %d of %d posted", rep.InferAdaptiveHITs, rep.HITs)
	}
	if rep.InferSavedCents <= 0 {
		t.Fatalf("no savings booked: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if !strings.Contains(rep.String(), "inference") {
		t.Fatal("report lacks the inference line")
	}
}

// TestInferenceRerunIdentical pins the workload's determinism: both
// phases pump from one goroutine over a seed-pinned perfect crowd, so
// every virtual-time metric must reproduce.
func TestInferenceRerunIdentical(t *testing.T) {
	cfg := Config{Workload: WorkloadInference, Tuples: 150, Workers: 40, Seed: 7}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.HITs != again.HITs || first.Assignments != again.Assignments ||
		first.Spent != again.Spent || first.Makespan != again.Makespan ||
		first.PassedKeysFNV != again.PassedKeysFNV || first.InferBaseFNV != again.InferBaseFNV ||
		first.InferBaseHITs != again.InferBaseHITs || first.InferBaseAssignments != again.InferBaseAssignments ||
		first.InferBaseSpent != again.InferBaseSpent || first.InferExtensions != again.InferExtensions ||
		first.InferSavedCents != again.InferSavedCents {
		t.Fatalf("rerun drifted:\nfirst:  %+v\nsecond: %+v", first, again)
	}
}
