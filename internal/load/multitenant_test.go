package load

import (
	"strings"
	"testing"
)

// TestMultiTenantSharingSavesHITs is the acceptance comparison: the
// same tenant fleet with sharing on posts strictly fewer HITs than
// with sharing off, at identical per-query result fingerprints.
func TestMultiTenantSharingSavesHITs(t *testing.T) {
	cfg := Config{Workload: WorkloadMultiTenant, Queries: 20, Tuples: 130, Workers: 50, Seed: 3}
	shared, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cfg
	base.NoShare = true
	unshared, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if shared.HITs >= unshared.HITs {
		t.Fatalf("sharing saved nothing: %d HITs shared vs %d unshared", shared.HITs, unshared.HITs)
	}
	if shared.SharedHITs == 0 || shared.CoBatchedItems == 0 {
		t.Fatalf("no co-batching recorded: %+v", shared)
	}
	if unshared.SharedHITs != 0 {
		t.Fatalf("baseline run co-batched %d HITs", unshared.SharedHITs)
	}
	for i := range shared.PerQueryFNV {
		if shared.PerQueryFNV[i] != unshared.PerQueryFNV[i] {
			t.Fatalf("query %d result drifted under sharing: %016x vs %016x",
				i, shared.PerQueryFNV[i], unshared.PerQueryFNV[i])
		}
	}
	if shared.Spent >= unshared.Spent {
		t.Fatalf("sharing spent %v, baseline %v", shared.Spent, unshared.Spent)
	}
	if !strings.Contains(shared.String(), "multitenant") {
		t.Fatal("report lacks the multitenant line")
	}
}

// TestMultiTenantFingerprintsRerunIdentical reruns the same config and
// asserts the per-query and combined fingerprints are identical — the
// scheduler may interleave hundreds of queries differently, but with
// the workload's exactly-perfect default crowd the results cannot
// move. (The ledger audit — per-query sunk costs summing exactly to
// the account — runs inside Run and fails the run on drift.)
func TestMultiTenantFingerprintsRerunIdentical(t *testing.T) {
	cfg := Config{Workload: WorkloadMultiTenant, Queries: 15, Tuples: 100, Workers: 40, Seed: 7}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.PassedKeysFNV != again.PassedKeysFNV {
		t.Fatalf("combined fingerprint drifted across reruns: %016x vs %016x",
			first.PassedKeysFNV, again.PassedKeysFNV)
	}
	for i := range first.PerQueryFNV {
		if first.PerQueryFNV[i] != again.PerQueryFNV[i] {
			t.Fatalf("query %d fingerprint drifted across reruns", i)
		}
	}
}
