package load

import (
	"strings"
	"testing"
)

// TestHybridCrowdRoutingSavesMoney is the acceptance comparison inside
// one run: the routed phase reproduces the sim-only phase's result set
// exactly, splits its HITs across both backends, and spends strictly
// less than the all-human baseline.
func TestHybridCrowdRoutingSavesMoney(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadHybridCrowd, Tuples: 200, Workers: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PassedKeysFNV != rep.HybridSimFNV || rep.HybridSimFNV == 0 {
		t.Fatalf("routed fingerprint %016x differs from sim-only %016x", rep.PassedKeysFNV, rep.HybridSimFNV)
	}
	if rep.BackendLLMHITs == 0 || rep.BackendSimHITs == 0 {
		t.Fatalf("not a hybrid: %d sim HITs, %d llm HITs", rep.BackendSimHITs, rep.BackendLLMHITs)
	}
	if rep.Spent >= rep.HybridSimSpent {
		t.Fatalf("routing spent %v, sim-only %v", rep.Spent, rep.HybridSimSpent)
	}
	if rep.RoutedSavedCents <= 0 {
		t.Fatalf("router booked no savings: %+v", rep)
	}
	if !strings.Contains(rep.String(), "hybridcrowd") {
		t.Fatal("report lacks the hybridcrowd line")
	}
}

// TestHybridCrowdRerunIdentical pins the workload's determinism: both
// phases pump from one goroutine over a seed-pinned perfect crowd and a
// ground-truth model, so every virtual-time metric must reproduce.
func TestHybridCrowdRerunIdentical(t *testing.T) {
	cfg := Config{Workload: WorkloadHybridCrowd, Tuples: 150, Workers: 40, Seed: 7}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.HITs != again.HITs || first.Spent != again.Spent || first.Makespan != again.Makespan ||
		first.PassedKeysFNV != again.PassedKeysFNV || first.HybridSimFNV != again.HybridSimFNV ||
		first.HybridSimHITs != again.HybridSimHITs || first.HybridSimSpent != again.HybridSimSpent ||
		first.BackendSimHITs != again.BackendSimHITs || first.BackendLLMHITs != again.BackendLLMHITs ||
		first.RoutedSavedCents != again.RoutedSavedCents {
		t.Fatalf("rerun drifted:\nfirst:  %+v\nsecond: %+v", first, again)
	}
}
