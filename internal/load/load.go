// Package load is a deterministic crowd-scale load harness for the
// marketplace + task-manager stack: it drives tens of thousands of
// tuples through representative Qurk workloads (filter cascades, 5×5
// join grids, order-by ratings) against thousands of simulated workers
// and reports throughput, virtual-time HIT latency percentiles and cost.
//
// Determinism: the harness never runs the clock concurrently with
// submission. All root tasks are submitted first, then the event queue
// is pumped from a single goroutine (cascade submissions happen inside
// Done callbacks on that same goroutine), so every virtual-time metric
// in the Report is a pure function of the Config — identical seeds give
// byte-identical reports, modulo the real-time Wall/HITsPerSec fields.
package load

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// Workload names a load scenario.
type Workload string

// Supported workloads.
const (
	// WorkloadFilter runs a two-stage filter cascade (isCat → isOutdoor)
	// over a photo corpus; the second filter only sees survivors.
	WorkloadFilter Workload = "filter"
	// WorkloadJoin evaluates a celebrity join through 5×5 two-column
	// grid HITs (the paper's Figure 3 batching winner).
	WorkloadJoin Workload = "join"
	// WorkloadOrderBy rates every item on a 1–7 scale and sorts by the
	// mean rating (the paper's rating-based ORDER BY).
	WorkloadOrderBy Workload = "orderby"
)

// Config parameterizes one load run. Zero values take the documented
// defaults.
type Config struct {
	// Workload selects the scenario (default WorkloadFilter).
	Workload Workload
	// Tuples is the input cardinality (default 1000). For the join
	// workload it is the number of spotted sightings; celebrities are
	// Tuples/10 (min 5).
	Tuples int
	// Workers is the simulated crowd size (default 500).
	Workers int
	// Shards overrides the worker pool's claim shards (default: one
	// shard per 64 workers, see crowd.Config.Shards).
	Shards int
	// Batch is tuples per HIT for filter/rating HITs (default 5).
	Batch int
	// Assignments is the redundancy per HIT (default 3).
	Assignments int
	// PriceCents is the reward per HIT (default 1).
	PriceCents int64
	// Seed makes the run reproducible (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = WorkloadFilter
	}
	if c.Tuples <= 0 {
		c.Tuples = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 500
	}
	if c.Batch <= 0 {
		c.Batch = 5
	}
	if c.Assignments <= 0 {
		c.Assignments = 3
	}
	if c.PriceCents <= 0 {
		c.PriceCents = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = (c.Workers + 63) / 64
	}
	return c
}

// Report is one load run's results. All virtual-time fields are
// deterministic for a given Config; Wall and HITsPerSec measure the
// real hardware.
type Report struct {
	Config Config

	// Marketplace totals.
	HITs        int64
	Assignments int64
	Questions   int64
	Spent       budget.Cents

	// Outcomes resolved (one per logical task application); Errors are
	// outcomes that carried an error; Passed is workload-specific
	// (filter survivors / join matches / rated items).
	Outcomes int64
	Errors   int64
	Passed   int64

	// Wall is real elapsed time for the pump; HITsPerSec is completed
	// HITs per real second (simulator throughput).
	Wall       time.Duration
	HITsPerSec float64

	// Makespan is the virtual time at which the last outcome resolved;
	// P50/P99 are virtual post-to-done HIT latencies.
	Makespan mturk.VirtualTime
	P50, P99 time.Duration

	// DollarsPerQuery is total spend for the whole run in dollars.
	DollarsPerQuery float64
}

// String renders the report the way qurk-load prints it.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s tuples=%d workers=%d batch=%d assignments=%d seed=%d\n",
		r.Config.Workload, r.Config.Tuples, r.Config.Workers, r.Config.Batch, r.Config.Assignments, r.Config.Seed)
	fmt.Fprintf(&b, "  HITs          %d (%d assignments, %d questions)\n", r.HITs, r.Assignments, r.Questions)
	fmt.Fprintf(&b, "  outcomes      %d (%d passed, %d errors)\n", r.Outcomes, r.Passed, r.Errors)
	fmt.Fprintf(&b, "  throughput    %.0f HITs/sec over %v wall\n", r.HITsPerSec, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  HIT latency   p50=%.1f vmin  p99=%.1f vmin  makespan=%.1f vmin\n",
		r.P50.Minutes(), r.P99.Minutes(), r.Makespan.Minutes())
	fmt.Fprintf(&b, "  cost          $%.2f/query\n", r.DollarsPerQuery)
	return b.String()
}

func mustTask(src string) *qlang.TaskDef {
	def, err := qlang.ParseTaskDef(src)
	if err != nil {
		panic(err)
	}
	return def
}

// Run executes one load scenario and reports its metrics.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Config: cfg}

	clock := mturk.NewClock()
	defer clock.Close()

	var drive func(mgr *taskmgr.Manager, counters *counters)
	var oracle crowd.Oracle
	switch cfg.Workload {
	case WorkloadFilter:
		ds := workload.Photos(cfg.Tuples, 0.5, 0.6, cfg.Seed)
		oracle = ds.Oracle
		drive = filterCascade(ds, cfg)
	case WorkloadJoin:
		nCelebs := cfg.Tuples / 10
		if nCelebs < 5 {
			nCelebs = 5
		}
		ds := workload.Celebrities(nCelebs, cfg.Tuples, 0.3, cfg.Seed)
		oracle = ds.Oracle
		drive = joinGrids(ds)
	case WorkloadOrderBy:
		ds := workload.RankItems(cfg.Tuples, 7, "rateItem", cfg.Seed)
		oracle = ds.Oracle
		drive = orderByRatings(ds)
	default:
		return rep, fmt.Errorf("load: unknown workload %q", cfg.Workload)
	}

	pool := crowd.NewPool(crowd.Config{
		Workers: cfg.Workers,
		Shards:  cfg.Shards,
		Seed:    cfg.Seed,
	}, oracle)
	market := mturk.NewMarketplace(clock, pool)
	// Collect per-HIT latencies streamingly and let the marketplace drop
	// completed-HIT state, so runs with tens of thousands of tuples stay
	// flat in memory. The observer runs on the pump goroutine only.
	var latencies []time.Duration
	market.SetAutoDispose(true, func(hs mturk.HITStatus) {
		latencies = append(latencies, (hs.DoneAt - hs.PostedAt).Duration())
	})
	mgr := taskmgr.New(market, nil, nil, nil)
	mgr.SetBasePolicy(taskmgr.Policy{
		Assignments: cfg.Assignments,
		BatchSize:   cfg.Batch,
		PriceCents:  cfg.PriceCents,
		Linger:      time.Minute,
		// The cache and model never hit on this synthetic data; skip
		// their bookkeeping so the harness measures the posting path.
		UseCache: false,
		UseModel: false,
	})

	var ctr counters
	start := time.Now()
	drive(mgr, &ctr)
	mgr.FlushAll()
	// Pump everything on this goroutine. Cascade submissions happen in
	// Done callbacks, which run on this goroutine too; their partial
	// batches are flushed by linger timers (scheduled clock events), so
	// an empty queue with outstanding work means a genuine stall.
	for ctr.outstanding.Load() > 0 {
		if !clock.Step() {
			mgr.FlushAll()
			if !clock.Step() {
				return rep, fmt.Errorf("load: stalled with %d outcomes outstanding", ctr.outstanding.Load())
			}
		}
	}
	rep.Wall = time.Since(start)
	rep.Makespan = clock.Now()

	st := market.Stats()
	rep.HITs = int64(st.HITsPosted)
	rep.Assignments = int64(st.AssignmentsCompleted)
	rep.Questions = int64(st.QuestionsAnswered)
	rep.Spent = st.SpentCents
	rep.Outcomes = ctr.outcomes.Load()
	rep.Errors = ctr.errors.Load()
	rep.Passed = ctr.passed.Load()
	rep.DollarsPerQuery = float64(rep.Spent) / 100

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.P50 = latencies[n/2]
		rep.P99 = latencies[min(n-1, n*99/100)]
		if secs := rep.Wall.Seconds(); secs > 0 {
			rep.HITsPerSec = float64(n) / secs
		}
	}
	return rep, nil
}

// counters tracks outcome resolution across the run. outstanding gates
// the pump; the rest feed the report.
type counters struct {
	outstanding atomic.Int64
	outcomes    atomic.Int64
	errors      atomic.Int64
	passed      atomic.Int64
}

// resolve records one finished outcome (pass marks workload-specific
// success).
func (c *counters) resolve(out taskmgr.Outcome, pass bool) {
	c.outcomes.Add(1)
	if out.Err != nil {
		c.errors.Add(1)
	} else if pass {
		c.passed.Add(1)
	}
	c.outstanding.Add(-1)
}

// filterCascade submits isCat over every photo and isOutdoor over the
// survivors, mirroring a two-predicate WHERE clause.
func filterCascade(ds workload.Dataset, cfg Config) func(*taskmgr.Manager, *counters) {
	isCat := mustTask(`
TASK isCat(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this photo of a cat? %s", img
  Response: YesNo
`)
	isOutdoor := mustTask(`
TASK isOutdoor(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Was this photo taken outdoors? %s", img
  Response: YesNo
`)
	return func(mgr *taskmgr.Manager, ctr *counters) {
		for _, row := range ds.Tables[0].Snapshot() {
			img := row.Get("img")
			ctr.outstanding.Add(1)
			mgr.Submit(taskmgr.Request{Def: isCat, Args: []relation.Value{img}, Done: func(out taskmgr.Outcome) {
				if out.Err == nil && out.Value.Truthy() {
					ctr.outstanding.Add(1)
					mgr.Submit(taskmgr.Request{Def: isOutdoor, Args: []relation.Value{img}, Done: func(out2 taskmgr.Outcome) {
						ctr.resolve(out2, out2.Err == nil && out2.Value.Truthy())
					}})
				}
				ctr.resolve(out, false)
			}})
		}
	}
}

// joinGrids partitions celebrities × sightings into 5×5 two-column grid
// HITs, the interface the paper found cheapest per pair.
func joinGrids(ds workload.Dataset) func(*taskmgr.Manager, *counters) {
	samePerson := mustTask(`
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures showing the same person."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
`)
	const grid = 5
	return func(mgr *taskmgr.Manager, ctr *counters) {
		var left, right []taskmgr.JoinItem
		for _, row := range ds.Tables[0].Snapshot() {
			left = append(left, taskmgr.JoinItem{
				Key:  row.Get("image").Str(),
				Args: []relation.Value{row.Get("image")},
			})
		}
		for _, row := range ds.Tables[1].Snapshot() {
			right = append(right, taskmgr.JoinItem{
				Key:  row.Get("image").Str(),
				Args: []relation.Value{row.Get("image")},
			})
		}
		for li := 0; li < len(left); li += grid {
			lb := left[li:min(li+grid, len(left))]
			for ri := 0; ri < len(right); ri += grid {
				rb := right[ri:min(ri+grid, len(right))]
				ctr.outstanding.Add(int64(len(lb) * len(rb)))
				mgr.JoinBlock(samePerson, lb, rb, func(pairKey string, out taskmgr.Outcome) {
					ctr.resolve(out, out.Err == nil && out.Value.Truthy())
				})
			}
		}
	}
}

// orderByRatings collects a 1–7 rating per item, then sorts by mean
// rating once every outcome is in (the sort itself is engine-free).
func orderByRatings(ds workload.Dataset) func(*taskmgr.Manager, *counters) {
	rateItem := mustTask(`
TASK rateItem(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate this item from 1 to 7. %s", img
  Response: Rating(1, 7)
`)
	return func(mgr *taskmgr.Manager, ctr *counters) {
		for _, row := range ds.Tables[0].Snapshot() {
			img := row.Get("img")
			ctr.outstanding.Add(1)
			mgr.Submit(taskmgr.Request{Def: rateItem, Args: []relation.Value{img}, Done: func(out taskmgr.Outcome) {
				ctr.resolve(out, out.Err == nil)
			}})
		}
	}
}
