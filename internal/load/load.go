// Package load is a deterministic crowd-scale load harness for the
// marketplace + task-manager stack: it drives tens of thousands of
// tuples through representative Qurk workloads (filter cascades, 5×5
// join grids, order-by ratings) against thousands of simulated workers
// and reports throughput, virtual-time HIT latency percentiles and cost.
//
// Determinism: the harness never runs the clock concurrently with
// submission. All root tasks are submitted first, then the event queue
// is pumped from a single goroutine (cascade submissions happen inside
// Done callbacks on that same goroutine), so every virtual-time metric
// in the Report is a pure function of the Config — identical seeds give
// byte-identical reports, modulo the real-time Wall/HITsPerSec fields.
package load

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/optimizer"
	"repro/internal/qlang"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// Workload names a load scenario.
type Workload string

// Supported workloads.
const (
	// WorkloadFilter runs a two-stage filter cascade (isCat → isOutdoor)
	// over a photo corpus; the second filter only sees survivors.
	WorkloadFilter Workload = "filter"
	// WorkloadJoin evaluates a celebrity join through 5×5 two-column
	// grid HITs (the paper's Figure 3 batching winner).
	WorkloadJoin Workload = "join"
	// WorkloadJoinPreFilter is the same celebrity join behind the
	// cost-based pre-filter: a probe measures the isCeleb feature
	// filter's selectivity, optimizer.DecidePreFilter compares the
	// filtered and unfiltered join costs, and (when it pays) only
	// filter survivors enter the grids. Compare against WorkloadJoin at
	// the same Tuples/Seed: fewer paid join pairs, same matches.
	WorkloadJoinPreFilter Workload = "joinprefilter"
	// WorkloadOrderBy rates every item on a 1–7 scale and sorts by the
	// mean rating (the paper's rating-based ORDER BY).
	WorkloadOrderBy Workload = "orderby"
	// WorkloadSort drives the human-powered ranking subsystem
	// (internal/rank) four ways over one dataset — rating sort,
	// all-pairs S-way comparison sort, comparison with top-k pushdown,
	// and the rate-then-refine hybrid — each in an isolated
	// deterministic phase, reporting per-strategy HIT counts and order
	// fingerprints. Defaults to a near-perfect crowd so strategy
	// economics, not answer noise, dominate the comparison.
	WorkloadSort Workload = "sort"
	// WorkloadStreaming drives the context-first query API end to end:
	// a filter query consumed through a streaming Rows cursor against a
	// single saturated worker, so the first tuple provably arrives while
	// later HITs are still in flight, and (with CancelAfter) context
	// cancellation mid-stream provably stops HIT posting with a
	// deterministic completed-prefix fingerprint.
	WorkloadStreaming Workload = "streaming"
	// WorkloadMultiTenant drives Config.Queries concurrent streaming
	// queries through one engine — each filtering its own disjoint
	// table with the same task — with cross-query HIT sharing on
	// (unless NoShare) behind a MaxInflight admission gate. The default
	// crowd is exactly perfect, so per-query result fingerprints are
	// rerun-identical with sharing on or off; compare two runs at the
	// same Tuples/Queries/Seed with NoShare flipped: same fingerprints,
	// strictly fewer HITs with sharing.
	WorkloadMultiTenant Workload = "multitenant"
	// WorkloadHybridCrowd runs the filter cascade twice over one
	// dataset: a sim-only baseline, then through a worker-backend
	// router that serves the first-stage filter from a deterministic
	// LLM crowd at a cheaper per-assignment quote while the second
	// stage stays on the simulated human marketplace. Compare inside
	// one report: identical result fingerprints, strictly lower routed
	// spend, HITs split across both backends.
	WorkloadHybridCrowd Workload = "hybridcrowd"
	// WorkloadInference runs the filter cascade twice over one dataset:
	// a fixed-redundancy majority-vote baseline, then with EM answer
	// inference and adaptive redundancy — HITs post at MinAssignments
	// and extend one assignment at a time while any item's posterior
	// stays below the stopping target. The default crowd is exactly
	// perfect, so both phases reproduce the oracle and the adaptive
	// phase provably stops every HIT at the floor: strictly fewer
	// assignments and strictly lower spend at an identical result
	// fingerprint, rerun-identical.
	WorkloadInference Workload = "inference"
	// WorkloadWarmstart is the filter cascade with the Task Cache armed
	// and backed by the durable knowledge store (Config.StorePath
	// required): the first run over a given store pays for every
	// question, a second run replays the store and answers from it.
	// Compare two runs at the same Tuples/Seed/StorePath: fewer HITs,
	// identical result fingerprint.
	WorkloadWarmstart Workload = "warmstart"
)

// Config parameterizes one load run. Zero values take the documented
// defaults.
type Config struct {
	// Workload selects the scenario (default WorkloadFilter).
	Workload Workload
	// Tuples is the input cardinality (default 1000). For the join
	// workload it is the number of spotted sightings; celebrities are
	// Tuples/10 (min 5).
	Tuples int
	// Workers is the simulated crowd size (default 500).
	Workers int
	// Shards overrides the worker pool's claim shards (default: one
	// shard per 64 workers, see crowd.Config.Shards).
	Shards int
	// Batch is tuples per HIT for filter/rating HITs (default 5).
	Batch int
	// Assignments is the redundancy per HIT (default 3).
	Assignments int
	// PriceCents is the reward per HIT (default 1).
	PriceCents int64
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Skill / SkillStd / Spam / Abandon / BatchPenalty override the
	// crowd's accuracy profile (zero = the crowd package's defaults:
	// 0.85 ± 0.08 skill, 5% spammers, 2% abandonment, 0.015 per-question
	// batch decay). The joinprefilter-vs-join comparison wants a
	// near-perfect crowd (e.g. Skill 0.999, Spam 1e-12, BatchPenalty
	// 1e-9) so paid-pair counts, not answer noise, dominate.
	Skill, SkillStd, Spam, Abandon, BatchPenalty float64
	// StorePath opens the durable knowledge store at this directory:
	// replayed state warms the cache and estimators before the run, and
	// everything learned streams back. Required by WorkloadWarmstart,
	// optional for the others.
	StorePath string
	// TopK (sort workload) is the LIMIT pushed into the top-k
	// comparison phase (default 3, clamped below the comparison group
	// size — the tournament cannot shrink groups otherwise — and to
	// the input size).
	TopK int
	// CancelAfter (streaming workload) cancels the query's context once
	// that many rows have streamed out; 0 runs to completion.
	CancelAfter int
	// StreamWindow (streaming workload) bounds concurrently in-flight
	// filter cascades (exec.Config.FilterWindow; default 8), throttling
	// HIT posting so cancellation has unposted work to save.
	StreamWindow int
	// Queries (multitenant workload) is how many concurrent streaming
	// queries share the engine (default 150); each gets Tuples/Queries
	// input rows (min 1).
	Queries int
	// NoShare (multitenant workload) turns cross-query HIT sharing off,
	// for the baseline side of the comparison.
	NoShare bool
	// MaxInflight (multitenant workload) is the admission gate on
	// concurrently posted HITs (core.Config.MaxInflightHITs; default 32).
	MaxInflight int
	// NoPlanCache disables the engine's normalized-SQL plan cache for
	// the run, for A/B-verifying that cached and uncached plans produce
	// identical result fingerprints.
	NoPlanCache bool
	// MinAssignments (inference workload) is the adaptive posting floor
	// (default 2); the EM phase extends HITs toward Assignments while
	// any item's posterior stays unsure.
	MinAssignments int
	// TracePath, when set, arms the observability layer for the run and
	// writes every span tree (batches, HITs, assignments, extensions)
	// to this path as JSONL when the run completes. Tracing never
	// schedules clock events or consumes randomness, so all virtual-time
	// metrics and result fingerprints are identical with it on or off —
	// the -verify rerun drops it to prove exactly that.
	TracePath string
}

// planCacheSize translates the A/B switch into core's config knob.
func (c Config) planCacheSize() int {
	if c.NoPlanCache {
		return -1
	}
	return 0
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = WorkloadFilter
	}
	if c.Workload == WorkloadSort && c.Assignments <= 0 {
		// The sort workload asserts hybrid reproduces compare's exact
		// order across independently-noised phases; 5-way redundancy
		// (instead of the generic 3) makes a flipped pair majority
		// cubically unlikely at the crowd's 0.99 skill ceiling while
		// leaving HIT counts — what the phases compare — untouched.
		c.Assignments = 5
	}
	if c.Workload == WorkloadMultiTenant && c.Assignments <= 0 {
		// Single-assignment HITs: with the workload's exactly-perfect
		// default crowd, redundancy buys nothing and would only scale
		// the HIT volume the sharing comparison counts.
		c.Assignments = 1
	}
	if c.Tuples <= 0 {
		c.Tuples = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 500
	}
	if c.Batch <= 0 {
		c.Batch = 5
	}
	if c.Assignments <= 0 {
		c.Assignments = 3
	}
	if c.PriceCents <= 0 {
		c.PriceCents = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = (c.Workers + 63) / 64
	}
	if c.StreamWindow <= 0 {
		c.StreamWindow = 8
	}
	if c.Workload == WorkloadMultiTenant {
		if c.Queries <= 0 {
			c.Queries = 150
		}
		if c.MaxInflight <= 0 {
			c.MaxInflight = 32
		}
		// The -verify harness asserts rerun-identical per-query result
		// fingerprints however the scheduler interleaves hundreds of
		// concurrent queries, so the default crowd is exactly perfect:
		// Skill 1.0 makes every answer equal ground truth regardless of
		// which worker drew it in what order. Explicit knobs still win.
		if c.Skill == 0 {
			c.Skill = 1.0
		}
		if c.SkillStd == 0 {
			c.SkillStd = 1e-12
		}
		if c.Spam == 0 {
			c.Spam = 1e-12
		}
		if c.Abandon == 0 {
			c.Abandon = 1e-12
		}
		if c.BatchPenalty == 0 {
			c.BatchPenalty = 1e-12
		}
	}
	if c.Workload == WorkloadHybridCrowd {
		// Routing needs a price gap to exploit: the LLM crowd quotes
		// half the human reward, so the default reward is 2¢ rather
		// than the generic 1¢.
		if c.PriceCents <= 1 {
			c.PriceCents = 2
		}
		// Both phases must reproduce the oracle exactly for their
		// fingerprints to be comparable, so the default crowd is
		// exactly perfect, like the multitenant workload's.
		if c.Skill == 0 {
			c.Skill = 1.0
		}
		if c.SkillStd == 0 {
			c.SkillStd = 1e-12
		}
		if c.Spam == 0 {
			c.Spam = 1e-12
		}
		if c.Abandon == 0 {
			c.Abandon = 1e-12
		}
		if c.BatchPenalty == 0 {
			c.BatchPenalty = 1e-12
		}
	}
	if c.Workload == WorkloadInference {
		if c.MinAssignments <= 0 {
			c.MinAssignments = 2
		}
		// Both phases must reproduce the oracle exactly for their
		// fingerprints to be comparable, and the adaptive phase's
		// assignment count should measure the stopping rule rather than
		// answer noise, so the default crowd is exactly perfect — two
		// agreeing strangers clear the posterior target and every HIT
		// stops at the floor. Explicit knobs still win.
		if c.Skill == 0 {
			c.Skill = 1.0
		}
		if c.SkillStd == 0 {
			c.SkillStd = 1e-12
		}
		if c.Spam == 0 {
			c.Spam = 1e-12
		}
		if c.Abandon == 0 {
			c.Abandon = 1e-12
		}
		if c.BatchPenalty == 0 {
			c.BatchPenalty = 1e-12
		}
	}
	if c.Workload == WorkloadSort {
		// Top-k must sit below the comparison group size or the
		// selection tournament cannot shrink its groups and top-k
		// degenerates to full ordering — which would also fail the
		// workload's topk<compare acceptance check, so oversized
		// requests are clamped rather than honored.
		sortGroupSize := rank.GroupSizeFor(sortTasks())
		if c.TopK <= 0 {
			c.TopK = 3
		}
		if c.TopK >= sortGroupSize {
			c.TopK = sortGroupSize - 1
		}
		if c.TopK > c.Tuples {
			c.TopK = c.Tuples
		}
		// The sort workload compares strategy economics and asserts
		// hybrid reproduces compare's exact order, so its default crowd
		// is near-perfect (explicit knobs still win) — the same posture
		// the joinprefilter-vs-join comparison documents.
		if c.Skill == 0 {
			c.Skill = 0.9999
		}
		if c.SkillStd == 0 {
			// The crowd draws worker skill from N(Skill, SkillStd); the
			// default 0.08 spread would reintroduce exactly the noise
			// this workload pins down.
			c.SkillStd = 1e-9
		}
		if c.Spam == 0 {
			c.Spam = 1e-12
		}
		if c.Abandon == 0 {
			c.Abandon = 1e-12
		}
		if c.BatchPenalty == 0 {
			c.BatchPenalty = 1e-9
		}
	}
	return c
}

// Report is one load run's results. All virtual-time fields are
// deterministic for a given Config; Wall and HITsPerSec measure the
// real hardware.
type Report struct {
	Config Config

	// Marketplace totals.
	HITs        int64
	Assignments int64
	Questions   int64
	Spent       budget.Cents

	// Outcomes resolved (one per logical task application); Errors are
	// outcomes that carried an error; Passed is workload-specific
	// (filter survivors / join matches / rated items).
	Outcomes int64
	Errors   int64
	Passed   int64

	// Wall is real elapsed time for the pump; HITsPerSec is completed
	// HITs per real second (simulator throughput).
	Wall       time.Duration
	HITsPerSec float64

	// Makespan is the virtual time at which the last outcome resolved;
	// P50/P99 are virtual post-to-done HIT latencies.
	Makespan mturk.VirtualTime
	P50, P99 time.Duration

	// JoinPairs counts pairs submitted to the join interface (the paid
	// cross product); PassedKeysFNV fingerprints the sorted passing
	// pair keys (or, for the warmstart workload, the keys passing the
	// whole cascade), so two runs over the same dataset can be compared
	// for identical final result rows. Both are 0 for workloads that
	// define no fingerprint.
	JoinPairs     int64
	PassedKeysFNV uint64

	// Store metrics, populated when Config.StorePath is set: CacheServed
	// counts task applications answered by the (replayed or live) cache;
	// ReplayedAnswers / ReplayedObservations are the warm-start summary;
	// Replay is the wall time Open + restore took (nondeterministic,
	// like Wall).
	CacheServed          int64
	ReplayedAnswers      int64
	ReplayedObservations int64
	Replay               time.Duration

	// DollarsPerQuery is total spend for the whole run in dollars.
	DollarsPerQuery float64

	// Sort-workload metrics: per-strategy HIT counts and order
	// fingerprints (each phase runs isolated on identical seeds).
	// SortOrderFNV fingerprints the compare phase's full order,
	// SortHybridFNV the hybrid's (equal when refinement converges to
	// the same order), SortTopKFNV the top-k phase's first K keys and
	// SortTopKBaseFNV the compare phase's first K (equal when the
	// tournament found the true top window).
	SortRateHITs    int64
	SortCompareHITs int64
	SortTopKHITs    int64
	SortHybridHITs  int64
	SortOrderFNV    uint64
	SortHybridFNV   uint64
	SortTopKFNV     uint64
	SortTopKBaseFNV uint64

	// Streaming-workload metrics: FirstRow is the virtual time the first
	// result tuple streamed out of the cursor (strictly before Makespan
	// on a streaming run); Delivered counts the rows of the canceled
	// prefix (all rows when CancelAfter is 0); HITsAfterCancel counts
	// HITs posted after cancellation took effect — 0 in practice, with
	// at most an already-in-flight post racing the cancel (expired and
	// refunded either way).
	FirstRow        mturk.VirtualTime
	Delivered       int64
	HITsAfterCancel int64

	// Multitenant-workload metrics: PerQueryFNV fingerprints each
	// query's passed keys (index = query number; rerun-identical);
	// FairSpreadCents is max−min per-query sunk cost; the sharing
	// counters mirror taskmgr.SharingStats for this run.
	PerQueryFNV      []uint64
	FairSpreadCents  budget.Cents
	SharedHITs       int64
	CoBatchedItems   int64
	HITsSaved        int64
	SharedSavedCents budget.Cents

	// Inference-workload metrics: the headline HITs/Assignments/Spent/
	// fingerprint fields describe the adaptive (EM) phase; InferBase*
	// carry the fixed-redundancy majority baseline, and the remaining
	// fields mirror taskmgr.InferenceStats for the adaptive phase.
	InferBaseHITs        int64
	InferBaseAssignments int64
	InferBaseSpent       budget.Cents
	InferBaseFNV         uint64
	InferAdaptiveHITs    int64
	InferExtensions      int64
	InferExtendFailures  int64
	InferSavedCents      budget.Cents

	// Hybridcrowd-workload metrics: the headline HITs/Spent/fingerprint
	// fields describe the routed phase; HybridSim* carry the sim-only
	// baseline, BackendSimHITs/BackendLLMHITs split the routed phase's
	// HITs per backend, and RoutedSavedCents is the router's booked
	// saving versus the task policy price.
	HybridSimHITs    int64
	HybridSimSpent   budget.Cents
	HybridSimFNV     uint64
	BackendSimHITs   int64
	BackendLLMHITs   int64
	RoutedSavedCents budget.Cents
}

// String renders the report the way qurk-load prints it.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s tuples=%d workers=%d batch=%d assignments=%d seed=%d\n",
		r.Config.Workload, r.Config.Tuples, r.Config.Workers, r.Config.Batch, r.Config.Assignments, r.Config.Seed)
	fmt.Fprintf(&b, "  HITs          %d (%d assignments, %d questions)\n", r.HITs, r.Assignments, r.Questions)
	fmt.Fprintf(&b, "  outcomes      %d (%d passed, %d errors)\n", r.Outcomes, r.Passed, r.Errors)
	fmt.Fprintf(&b, "  throughput    %.0f HITs/sec over %v wall\n", r.HITsPerSec, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  HIT latency   p50=%.1f vmin  p99=%.1f vmin  makespan=%.1f vmin\n",
		r.P50.Minutes(), r.P99.Minutes(), r.Makespan.Minutes())
	fmt.Fprintf(&b, "  cost          $%.2f/query\n", r.DollarsPerQuery)
	if r.JoinPairs > 0 {
		fmt.Fprintf(&b, "  join pairs    %d paid (result fingerprint %016x)\n", r.JoinPairs, r.PassedKeysFNV)
	}
	if r.Config.StorePath != "" {
		fmt.Fprintf(&b, "  warm start    %d answers, %d observations replayed in %v; %d questions served from store\n",
			r.ReplayedAnswers, r.ReplayedObservations, r.Replay.Round(time.Millisecond), r.CacheServed)
	}
	if r.Config.Workload == WorkloadSort {
		fmt.Fprintf(&b, "  sort          rate=%d HITs  compare=%d  topk(%d)=%d  hybrid=%d\n",
			r.SortRateHITs, r.SortCompareHITs, r.Config.TopK, r.SortTopKHITs, r.SortHybridHITs)
		fmt.Fprintf(&b, "  sort orders   compare=%016x hybrid=%016x topk=%016x (want %016x)\n",
			r.SortOrderFNV, r.SortHybridFNV, r.SortTopKFNV, r.SortTopKBaseFNV)
	}
	if r.Config.Workload == WorkloadMultiTenant {
		sharing := "on"
		if r.Config.NoShare {
			sharing = "off"
		}
		fmt.Fprintf(&b, "  multitenant   %d queries (sharing %s, gate %d): %d shared HITs co-batched %d items, %d HITs saved (~%v)\n",
			r.Config.Queries, sharing, r.Config.MaxInflight, r.SharedHITs, r.CoBatchedItems, r.HITsSaved, r.SharedSavedCents)
		fmt.Fprintf(&b, "  fairness      per-query spend spread %v; combined fingerprint %016x\n",
			r.FairSpreadCents, r.PassedKeysFNV)
	}
	if r.Config.Workload == WorkloadHybridCrowd {
		fmt.Fprintf(&b, "  hybridcrowd   sim-only spent %v over %d HITs; routed spent %v over %d (%d sim / %d llm, ~%v saved by routing)\n",
			r.HybridSimSpent, r.HybridSimHITs, r.Spent, r.HITs, r.BackendSimHITs, r.BackendLLMHITs, r.RoutedSavedCents)
		fmt.Fprintf(&b, "  fingerprints  sim=%016x routed=%016x\n", r.HybridSimFNV, r.PassedKeysFNV)
	}
	if r.Config.Workload == WorkloadInference {
		avg := 0.0
		if r.InferAdaptiveHITs > 0 {
			avg = float64(r.Assignments) / float64(r.InferAdaptiveHITs)
		}
		fmt.Fprintf(&b, "  inference     baseline %d assignments over %d HITs (%v); adaptive %d over %d (avg %.1f/HIT, floor %d, %d extensions, ~%v saved)\n",
			r.InferBaseAssignments, r.InferBaseHITs, r.InferBaseSpent,
			r.Assignments, r.HITs, avg, r.Config.MinAssignments, r.InferExtensions, r.InferSavedCents)
		fmt.Fprintf(&b, "  fingerprints  baseline=%016x adaptive=%016x\n", r.InferBaseFNV, r.PassedKeysFNV)
	}
	if r.Config.Workload == WorkloadStreaming {
		fmt.Fprintf(&b, "  streaming     first row at %.1f vmin (makespan %.1f); %d rows delivered (fingerprint %016x)\n",
			r.FirstRow.Minutes(), r.Makespan.Minutes(), r.Delivered, r.PassedKeysFNV)
		if r.Config.CancelAfter > 0 {
			fmt.Fprintf(&b, "  cancellation  after %d rows: %d HITs posted post-cancel, sunk cost %v\n",
				r.Config.CancelAfter, r.HITsAfterCancel, r.Spent)
		}
	}
	return b.String()
}

func mustTask(src string) *qlang.TaskDef {
	def, err := qlang.ParseTaskDef(src)
	if err != nil {
		panic(err)
	}
	return def
}

// Run executes one load scenario and reports its metrics.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload == WorkloadStreaming {
		// The streaming scenario exercises the whole engine (context
		// API, Rows cursor, cancellation) rather than the bare
		// marketplace + task-manager stack.
		return runStreaming(cfg)
	}
	if cfg.Workload == WorkloadSort {
		// The sort scenario runs four isolated strategy phases; it has
		// its own driver (sort.go).
		return runSort(cfg)
	}
	if cfg.Workload == WorkloadMultiTenant {
		// The multitenant scenario runs concurrent queries through one
		// engine; it has its own driver (multitenant.go).
		return runMultiTenant(cfg)
	}
	if cfg.Workload == WorkloadHybridCrowd {
		// The hybridcrowd scenario runs two isolated phases (sim-only
		// vs routed); it has its own driver (hybridcrowd.go).
		return runHybridCrowd(cfg)
	}
	if cfg.Workload == WorkloadInference {
		// The inference scenario runs two isolated phases (majority
		// baseline vs adaptive EM); it has its own driver (inference.go).
		return runInference(cfg)
	}
	rep := Report{Config: cfg}

	clock := mturk.NewClock()
	defer clock.Close()

	var sc scenario
	var oracle crowd.Oracle
	switch cfg.Workload {
	case WorkloadFilter:
		ds := workload.Photos(cfg.Tuples, 0.5, 0.6, cfg.Seed)
		oracle = ds.Oracle
		sc = filterCascade(ds)
	case WorkloadJoin:
		ds := celebrityDataset(cfg)
		oracle = ds.Oracle
		sc = joinGrids(ds)
	case WorkloadJoinPreFilter:
		ds := celebrityDataset(cfg)
		oracle = ds.Oracle
		sc = joinPreFilter(ds, cfg)
	case WorkloadOrderBy:
		ds := workload.RankItems(cfg.Tuples, 7, "rateItem", cfg.Seed)
		oracle = ds.Oracle
		sc = orderByRatings(ds)
	case WorkloadWarmstart:
		if cfg.StorePath == "" {
			return rep, fmt.Errorf("load: workload %q needs Config.StorePath", cfg.Workload)
		}
		ds := workload.Photos(cfg.Tuples, 0.5, 0.6, cfg.Seed)
		oracle = ds.Oracle
		sc = warmstartCascade(ds)
	default:
		return rep, fmt.Errorf("load: unknown workload %q", cfg.Workload)
	}
	drive := sc.drive

	pool := crowd.NewPool(crowd.Config{
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		Seed:         cfg.Seed,
		MeanSkill:    cfg.Skill,
		SkillStd:     cfg.SkillStd,
		SpamFraction: cfg.Spam,
		AbandonRate:  cfg.Abandon,
		BatchPenalty: cfg.BatchPenalty,
	}, oracle)
	market := mturk.NewMarketplace(clock, pool)
	// Collect per-HIT latencies streamingly and let the marketplace drop
	// completed-HIT state, so runs with tens of thousands of tuples stay
	// flat in memory. The observer runs on the pump goroutine only.
	var latencies []time.Duration
	market.SetAutoDispose(true, func(hs mturk.HITStatus) {
		latencies = append(latencies, (hs.DoneAt - hs.PostedAt).Duration())
	})
	mgr := taskmgr.New(market, nil, nil, nil)
	sink := newTraceSink(cfg)
	tr := sink.tracer(clock.Now)
	if tr != nil {
		mgr.SetObs(tr)
	}
	if cfg.StorePath != "" {
		replayStart := time.Now()
		st, err := store.Open(cfg.StorePath)
		if err != nil {
			return rep, fmt.Errorf("load: %v", err)
		}
		defer st.Close()
		var warm taskmgr.RestoreSummary
		st.View(func(s *store.State) { warm = mgr.Restore(s) })
		mgr.SetJournal(st)
		rep.Replay = time.Since(replayStart)
		rep.ReplayedAnswers = warm.CacheAnswers
		rep.ReplayedObservations = warm.Observations
	}
	mgr.SetBasePolicy(taskmgr.Policy{
		Assignments: cfg.Assignments,
		BatchSize:   cfg.Batch,
		PriceCents:  cfg.PriceCents,
		Linger:      time.Minute,
		// Without a cache-driven scenario the cache and model never hit
		// on this synthetic data; skip their bookkeeping so the harness
		// measures the posting path. The warmstart scenario arms the
		// cache — that is the point of it.
		UseCache: sc.useCache,
		UseModel: false,
	})

	var ctr counters
	start := time.Now()
	drive(mgr, &ctr)
	mgr.FlushAll()
	// Pump everything on this goroutine. Cascade submissions happen in
	// Done callbacks, which run on this goroutine too; their partial
	// batches are flushed by linger timers (scheduled clock events), so
	// an empty queue with outstanding work means a genuine stall.
	for ctr.outstanding.Load() > 0 {
		if !clock.Step() {
			mgr.FlushAll()
			if !clock.Step() {
				return rep, fmt.Errorf("load: stalled with %d outcomes outstanding", ctr.outstanding.Load())
			}
		}
	}
	rep.Wall = time.Since(start)
	rep.Makespan = clock.Now()

	st := market.Stats()
	rep.HITs = int64(st.HITsPosted)
	rep.Assignments = int64(st.AssignmentsCompleted)
	rep.Questions = int64(st.QuestionsAnswered)
	rep.Spent = st.SpentCents
	rep.Outcomes = ctr.outcomes.Load()
	rep.Errors = ctr.errors.Load()
	rep.Passed = ctr.passed.Load()
	rep.DollarsPerQuery = float64(rep.Spent) / 100

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.P50 = latencies[n/2]
		rep.P99 = latencies[min(n-1, n*99/100)]
		if secs := rep.Wall.Seconds(); secs > 0 {
			rep.HITsPerSec = float64(n) / secs
		}
	}
	rep.JoinPairs = ctr.pairs.Load()
	rep.CacheServed = mgr.Cache().Stats().Hits
	if sc.finish != nil {
		sc.finish(&rep)
	}
	sink.collect(tr)
	if err := sink.flush(); err != nil {
		return rep, err
	}
	return rep, nil
}

// celebrityDataset builds the shared dataset of the two join workloads:
// identical Tuples+Seed give identical tables and oracle, so their
// reports are directly comparable.
func celebrityDataset(cfg Config) workload.Dataset {
	nCelebs := cfg.Tuples / 10
	if nCelebs < 5 {
		nCelebs = 5
	}
	return workload.Celebrities(nCelebs, cfg.Tuples, 0.3, cfg.Seed)
}

// scenario bundles a workload's submission driver with an optional
// post-run report hook (e.g. the join workloads' result fingerprint)
// and whether the Task Cache is armed.
type scenario struct {
	drive    func(*taskmgr.Manager, *counters)
	finish   func(*Report)
	useCache bool
}

// fingerprint hashes the sorted passing pair keys: identical result
// rows give identical fingerprints, whatever order they resolved in.
func fingerprint(passed []string) uint64 {
	sort.Strings(passed)
	h := fnv.New64a()
	for _, key := range passed {
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// counters tracks outcome resolution across the run. outstanding gates
// the pump; the rest feed the report.
type counters struct {
	outstanding atomic.Int64
	outcomes    atomic.Int64
	errors      atomic.Int64
	passed      atomic.Int64
	pairs       atomic.Int64 // join pairs submitted to the grid interface
}

// resolve records one finished outcome (pass marks workload-specific
// success).
func (c *counters) resolve(out taskmgr.Outcome, pass bool) {
	c.outcomes.Add(1)
	if out.Err != nil {
		c.errors.Add(1)
	} else if pass {
		c.passed.Add(1)
	}
	c.outstanding.Add(-1)
}

// filterCascade submits isCat over every photo and isOutdoor over the
// survivors, mirroring a two-predicate WHERE clause.
func filterCascade(ds workload.Dataset) scenario {
	return cascadeScenario(ds, false)
}

// warmstartCascade is the cascade with the Task Cache armed and the
// result set fingerprinted: against a fresh store every question is
// paid for; against a store warmed by a previous identical run the
// cascade answers from replayed state, pays fewer (typically zero)
// HITs, and must reproduce the same fingerprint — cached answers are
// the first run's answers, so the majority votes cannot drift.
func warmstartCascade(ds workload.Dataset) scenario {
	sc := cascadeScenario(ds, true)
	sc.useCache = true
	return sc
}

// cascadeScenario drives the two-stage filter cascade; withFingerprint
// additionally records the keys passing both stages into the report's
// PassedKeysFNV.
func cascadeScenario(ds workload.Dataset, withFingerprint bool) scenario {
	isCat := mustTask(`
TASK isCat(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this photo of a cat? %s", img
  Response: YesNo
`)
	isOutdoor := mustTask(`
TASK isOutdoor(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Was this photo taken outdoors? %s", img
  Response: YesNo
`)
	var passed []string
	sc := scenario{drive: func(mgr *taskmgr.Manager, ctr *counters) {
		for _, row := range ds.Tables[0].Snapshot() {
			img := row.Get("img")
			ctr.outstanding.Add(1)
			mgr.Submit(taskmgr.Request{Def: isCat, Args: []relation.Value{img}, Done: func(out taskmgr.Outcome) {
				if out.Err == nil && out.Value.Truthy() {
					ctr.outstanding.Add(1)
					mgr.Submit(taskmgr.Request{Def: isOutdoor, Args: []relation.Value{img}, Done: func(out2 taskmgr.Outcome) {
						pass := out2.Err == nil && out2.Value.Truthy()
						if pass && withFingerprint {
							passed = append(passed, img.Str())
						}
						ctr.resolve(out2, pass)
					}})
				}
				ctr.resolve(out, false)
			}})
		}
	}}
	if withFingerprint {
		sc.finish = func(rep *Report) { rep.PassedKeysFNV = fingerprint(passed) }
	}
	return sc
}

// joinTasks parses the join workloads' task pair: the samePerson grid
// predicate (declaring its feature filter) and the isCeleb filter.
func joinTasks() (samePerson, isCeleb *qlang.TaskDef) {
	samePerson = mustTask(`
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures showing the same person."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
  PreFilter: isCeleb
`)
	isCeleb = mustTask(`
TASK isCeleb(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a photo of a public figure? %s", img
  Response: YesNo
`)
	return samePerson, isCeleb
}

// joinItems extracts one table's grid column.
func joinItems(tab *relation.Table) []taskmgr.JoinItem {
	rows := tab.Snapshot()
	out := make([]taskmgr.JoinItem, 0, len(rows))
	for _, row := range rows {
		out = append(out, taskmgr.JoinItem{
			Key:  row.Get("image").Str(),
			Args: []relation.Value{row.Get("image")},
		})
	}
	return out
}

// gridJoin walks left×right in 5×5 blocks, accounting every submitted
// pair and recording the keys of passing pairs.
func gridJoin(mgr *taskmgr.Manager, ctr *counters, def *qlang.TaskDef,
	left, right []taskmgr.JoinItem, passed *[]string) {
	const grid = 5
	for li := 0; li < len(left); li += grid {
		lb := left[li:min(li+grid, len(left))]
		for ri := 0; ri < len(right); ri += grid {
			rb := right[ri:min(ri+grid, len(right))]
			ctr.outstanding.Add(int64(len(lb) * len(rb)))
			ctr.pairs.Add(int64(len(lb) * len(rb)))
			mgr.JoinBlock(def, lb, rb, func(pairKey string, out taskmgr.Outcome) {
				pass := out.Err == nil && out.Value.Truthy()
				if pass {
					*passed = append(*passed, pairKey)
				}
				ctr.resolve(out, pass)
			})
		}
	}
}

// joinGrids partitions celebrities × sightings into 5×5 two-column grid
// HITs, the interface the paper found cheapest per pair.
func joinGrids(ds workload.Dataset) scenario {
	samePerson, _ := joinTasks()
	var passed []string
	return scenario{
		drive: func(mgr *taskmgr.Manager, ctr *counters) {
			gridJoin(mgr, ctr, samePerson, joinItems(ds.Tables[0]), joinItems(ds.Tables[1]), &passed)
		},
		finish: func(rep *Report) { rep.PassedKeysFNV = fingerprint(passed) },
	}
}

// joinPreFilter is the cost-based pre-filtered join, end to end in load
// form: probe the feature filter's selectivity on a prefix of each
// side (observations tagged per join side), let
// optimizer.ChoosePreFilter price the four plans — no filter, left
// only, right only, both — with the live per-side estimates, then
// filter only the chosen side(s) (single-assignment POSSIBLY
// semantics) and join the survivors against the untouched side. All
// submissions happen on the pump goroutine (inside Done callbacks), so
// runs stay rerun-identical.
func joinPreFilter(ds workload.Dataset, cfg Config) scenario {
	samePerson, isCeleb := joinTasks()
	const probeN = 25
	var passed []string
	drive := func(mgr *taskmgr.Manager, ctr *counters) {
		left := joinItems(ds.Tables[0])
		right := joinItems(ds.Tables[1])
		keepL := make([]bool, len(left))
		keepR := make([]bool, len(right))

		// filterStage submits isCeleb for items[from:to) with a single
		// assignment, marking survivors; when every outcome of this
		// stage is in, next runs (on the pump goroutine).
		filterStage := func(items []taskmgr.JoinItem, keep []bool, side string, from, to int, next func()) {
			pending := to - from
			if pending == 0 {
				next()
				return
			}
			for i := from; i < to; i++ {
				i := i
				ctr.outstanding.Add(1)
				mgr.Submit(taskmgr.Request{
					Def:         isCeleb,
					Args:        items[i].Args,
					Assignments: 1,
					StatSide:    side,
					Done: func(out taskmgr.Outcome) {
						keep[i] = out.Err != nil || out.Value.Truthy() // fail open
						ctr.resolve(out, false)
						pending--
						if pending == 0 {
							next()
						}
					},
				})
			}
		}

		survivors := func(items []taskmgr.JoinItem, keep []bool) []taskmgr.JoinItem {
			out := make([]taskmgr.JoinItem, 0, len(items))
			for i, it := range items {
				if keep[i] {
					out = append(out, it)
				}
			}
			return out
		}

		pl, pr := min(probeN, len(left)), min(probeN, len(right))
		filterStage(left, keepL, taskmgr.SideLeft, 0, pl, func() {
			filterStage(right, keepR, taskmgr.SideRight, 0, pr, func() {
				// Probe done: price the four plans with the live
				// per-side selectivity estimates.
				selL, _ := mgr.SideSelectivity(isCeleb.Name, taskmgr.SideLeft)
				selR, _ := mgr.SideSelectivity(isCeleb.Name, taskmgr.SideRight)
				fpol := taskmgr.Policy{Assignments: 1, BatchSize: cfg.Batch, PriceCents: cfg.PriceCents}
				jpol := taskmgr.Policy{Assignments: cfg.Assignments, PriceCents: cfg.PriceCents}
				choice := optimizer.ChoosePreFilter(len(left), len(right), selL, selR, 5, 5, fpol, jpol)
				if !choice.Left && !choice.Right {
					// Not worth it: the whole cross product joins, probe
					// answers discarded (their cost is sunk).
					gridJoin(mgr, ctr, samePerson, left, right, &passed)
					return
				}
				// Complete only the chosen stages; an unchosen side joins
				// whole — including its probe rejects, which the join
				// predicate re-checks anyway.
				joinL, joinR := left, right
				finish := func() {
					if choice.Left {
						joinL = survivors(left, keepL)
					}
					if choice.Right {
						joinR = survivors(right, keepR)
					}
					gridJoin(mgr, ctr, samePerson, joinL, joinR, &passed)
				}
				stageR := func() {
					if !choice.Right {
						finish()
						return
					}
					filterStage(right, keepR, taskmgr.SideRight, pr, len(right), finish)
				}
				if choice.Left {
					filterStage(left, keepL, taskmgr.SideLeft, pl, len(left), stageR)
				} else {
					stageR()
				}
			})
		})
	}
	return scenario{
		drive:  drive,
		finish: func(rep *Report) { rep.PassedKeysFNV = fingerprint(passed) },
	}
}

// orderByRatings collects a 1–7 rating per item, then sorts by mean
// rating once every outcome is in (the sort itself is engine-free).
func orderByRatings(ds workload.Dataset) scenario {
	rateItem := mustTask(`
TASK rateItem(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate this item from 1 to 7. %s", img
  Response: Rating(1, 7)
`)
	return scenario{drive: func(mgr *taskmgr.Manager, ctr *counters) {
		for _, row := range ds.Tables[0].Snapshot() {
			img := row.Get("img")
			ctr.outstanding.Add(1)
			mgr.Submit(taskmgr.Request{Def: rateItem, Args: []relation.Value{img}, Done: func(out taskmgr.Outcome) {
				ctr.resolve(out, out.Err == nil)
			}})
		}
	}}
}
