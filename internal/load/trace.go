package load

// Tracing for the load harness. Config.TracePath arms an obs.Tracer on
// every phase of the selected workload and, when the run completes,
// streams all collected span trees to that path as JSONL (the
// "qurk-trace/v1" schema, one span per line, replay-friendly). A nil
// sink — TracePath unset — never installs a tracer, so the traced code
// keeps its zero-overhead disabled shape; and because spans neither
// schedule clock events nor consume randomness, arming the sink cannot
// change any virtual-time metric or result fingerprint. qurk-load
// -verify leans on exactly that: the rerun drops the trace path, so its
// fingerprint comparisons double as a tracing on/off A/B.

import (
	"fmt"
	"os"

	"repro/internal/mturk"
	"repro/internal/obs"
)

// traceSink accumulates span trees across a run's phases (each phase
// owns its own clock, and therefore its own tracer) and writes them out
// once at the end.
type traceSink struct {
	path  string
	roots []*obs.Span
}

// newTraceSink returns the run's sink, nil when tracing is off.
func newTraceSink(cfg Config) *traceSink {
	if cfg.TracePath == "" {
		return nil
	}
	return &traceSink{path: cfg.TracePath}
}

// tracer builds one phase's tracer on that phase's clock. A nil sink
// yields a nil tracer, which every consumer treats as tracing-off.
func (t *traceSink) tracer(now func() mturk.VirtualTime) *obs.Tracer {
	if t == nil {
		return nil
	}
	return obs.New(now, obs.NewRegistry())
}

// collect harvests a finished phase's span trees (nil-safe both sides).
func (t *traceSink) collect(tr *obs.Tracer) {
	if t == nil || tr == nil {
		return
	}
	t.roots = append(t.roots, tr.Roots()...)
}

// flush writes everything collected to TracePath; no-op on a nil sink.
func (t *traceSink) flush() error {
	if t == nil {
		return nil
	}
	f, err := os.Create(t.path)
	if err != nil {
		return fmt.Errorf("load: trace: %v", err)
	}
	if err := obs.WriteJSONL(f, t.roots); err != nil {
		f.Close()
		return fmt.Errorf("load: trace: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("load: trace: %v", err)
	}
	return nil
}
