package load

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/exec"
	"repro/internal/qerr"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// streamingTask is the boolean filter the streaming workload runs
// through the full engine (parser → planner → executor → Rows cursor).
const streamingTask = `
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a photo of a cat? %s", photo
  Response: YesNo
`

// runStreaming drives the context-first query API end to end: a filter
// query over the photo corpus consumed through a streaming Rows cursor,
// with a single saturated worker so HITs complete strictly in input
// order. That serialization is what makes the scenario deterministic:
// the set of the first CancelAfter delivered rows — and therefore the
// canceled-prefix fingerprint — is a pure function of Tuples and Seed,
// even though cancellation itself lands at a racy real-time moment.
//
// With CancelAfter > 0 the query's context is canceled as soon as that
// many rows have streamed out; the report then shows the HITs the
// cancellation kept unposted and asserts-friendly counters (posting
// stops, open HITs drain, budget refunds land in Spent).
func runStreaming(cfg Config) (Report, error) {
	rep := Report{Config: cfg}
	ds := workload.Photos(cfg.Tuples, 0.5, 0.6, cfg.Seed)

	skill := cfg.Skill
	if skill == 0 {
		skill = 0.999 // near-perfect: outcomes equal ground truth
	}
	eng, err := core.New(core.Config{
		Oracle: ds.Oracle,
		Crowd: crowd.Config{
			Workers:      1, // single worker ⇒ completions in claim order
			Shards:       1,
			Seed:         cfg.Seed,
			MeanSkill:    skill,
			SkillStd:     nonZero(cfg.SkillStd, 1e-9),
			SpamFraction: nonZero(cfg.Spam, 1e-12),
			AbandonRate:  nonZero(cfg.Abandon, 1e-12),
			BatchPenalty: nonZero(cfg.BatchPenalty, 1e-9),
		},
		// The window throttles posting so cancellation has something to
		// save: at most StreamWindow HITs are in flight at once.
		Exec:          exec.Config{FilterWindow: cfg.StreamWindow},
		PlanCacheSize: cfg.planCacheSize(),
		Trace:         cfg.TracePath != "",
	})
	if err != nil {
		return rep, fmt.Errorf("load: %v", err)
	}
	defer eng.Close()
	for _, t := range ds.Tables {
		if err := eng.Register(t); err != nil {
			return rep, err
		}
	}
	if err := eng.Define(streamingTask); err != nil {
		return rep, err
	}
	eng.Manager().SetBasePolicy(taskmgr.Policy{
		Assignments: 1, BatchSize: 1, PriceCents: cfg.PriceCents,
		Linger: time.Minute, UseCache: true,
	})

	// Pace the clock (~1ms real per HIT) so the consumer goroutine truly
	// interleaves with in-flight HITs; at full simulator speed the pump
	// can finish the whole virtual run before the cursor is scheduled
	// once, which would make "first row before last HIT" unobservable.
	// The prefix fingerprint does not depend on the pacing: a single
	// saturated worker completes HITs in input order regardless.
	eng.Clock().SetPace(2e-5)
	defer eng.Clock().SetPace(0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	rows, err := eng.Query(ctx, `SELECT img FROM photos WHERE isCat(img)`)
	if err != nil {
		return rep, err
	}
	defer rows.Close()
	var delivered []string
	for rows.Next() {
		delivered = append(delivered, rows.Tuple().Values[0].String())
		if cfg.CancelAfter > 0 && len(delivered) == cfg.CancelAfter {
			cancel()
		}
	}
	eng.Clock().SetPace(0) // stream observed; drain the rest at full speed

	// The cursor only ends after Cancel closed the operator queues,
	// which happens strictly after the scope was canceled — so from this
	// point every newly posted HIT would be money spent on a dead query.
	postedAtCancel := eng.Marketplace().Stats().HITsPosted

	if err := rows.Err(); err != nil {
		expectCancel := cfg.CancelAfter > 0 && cfg.CancelAfter <= len(delivered)
		if !expectCancel || !errors.Is(err, qerr.ErrCanceled) {
			return rep, fmt.Errorf("load: streaming query: %w", err)
		}
	}
	rep.Wall = time.Since(start)

	// Let the simulation quiesce (claims for expired HITs drain) and
	// compare against the at-cancellation snapshot: the difference is
	// HITs posted after the cancellation took effect.
	if err := waitStreamingQuiesce(eng); err != nil {
		return rep, err
	}
	time.Sleep(10 * time.Millisecond)
	rep.HITsAfterCancel = int64(eng.Marketplace().Stats().HITsPosted - postedAtCancel)

	st := eng.Marketplace().Stats()
	rep.HITs = int64(st.HITsPosted)
	rep.Assignments = int64(st.AssignmentsCompleted)
	rep.Questions = int64(st.QuestionsAnswered)
	rep.Spent = eng.Manager().Account().Spent() // refund-adjusted sunk cost
	rep.DollarsPerQuery = float64(rep.Spent) / 100
	rep.Makespan = eng.Clock().Now()
	rep.Outcomes = int64(len(delivered))
	rep.Passed = int64(len(delivered))
	if at, ok := rows.Handle().Exec.FirstRowAt(); ok {
		rep.FirstRow = at
	}
	prefix := delivered
	if cfg.CancelAfter > 0 && len(prefix) > cfg.CancelAfter {
		prefix = prefix[:cfg.CancelAfter]
	}
	rep.Delivered = int64(len(prefix))
	rep.PassedKeysFNV = fingerprint(append([]string(nil), prefix...))
	sink := newTraceSink(cfg)
	sink.collect(eng.Tracer())
	if err := sink.flush(); err != nil {
		return rep, err
	}
	return rep, nil
}

func nonZero(v, fallback float64) float64 {
	if v != 0 {
		return v
	}
	return fallback
}

// waitStreamingQuiesce blocks until no assignments are in flight and no
// clock events are pending (the engine pumps its own clock, so this is
// a real-time wait on simulated progress).
func waitStreamingQuiesce(eng *core.Engine) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if eng.Manager().Inflight() == 0 && eng.Clock().Pending() == 0 {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("load: streaming run did not quiesce (inflight=%d pending=%d)",
		eng.Manager().Inflight(), eng.Clock().Pending())
}
