package load

import (
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// inferPhase is one side of the inference comparison: its own clock,
// crowd, marketplace and task manager over the shared dataset, so HIT
// and assignment counts, spend and the result fingerprint are directly
// comparable and every phase is deterministic.
type inferPhase struct {
	HITs        int64
	Assignments int64
	Questions   int64
	Spent       budget.Cents
	Makespan    mturk.VirtualTime
	FNV         uint64
	Outcomes    int64
	Errors      int64
	Passed      int64
	Stats       taskmgr.InferenceStats
}

// runInferencePhase drives the two-stage filter cascade once. With
// adaptive set, the task manager runs EM answer inference with adaptive
// redundancy: HITs post at cfg.MinAssignments and extend one assignment
// at a time — up to cfg.Assignments — while any item's posterior stays
// below the stopping target. Otherwise it is the seed majority path at
// fixed cfg.Assignments redundancy.
func runInferencePhase(cfg Config, ds workload.Dataset, adaptive bool, sink *traceSink) (inferPhase, error) {
	var ph inferPhase
	clock := mturk.NewClock()
	defer clock.Close()
	pool := crowd.NewPool(crowd.Config{
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		Seed:         cfg.Seed,
		MeanSkill:    cfg.Skill,
		SkillStd:     cfg.SkillStd,
		SpamFraction: cfg.Spam,
		AbandonRate:  cfg.Abandon,
		BatchPenalty: cfg.BatchPenalty,
	}, ds.Oracle)
	market := mturk.NewMarketplace(clock, pool)
	// No auto-dispose: the adaptive loop decides to extend a HIT at the
	// instant its last posted assignment completes, and the marketplace
	// can only extend HIT state it still holds. The baseline phase keeps
	// the same posture so the two phases differ in exactly one variable.

	mgr := taskmgr.New(market, nil, nil, nil)
	tr := sink.tracer(clock.Now)
	if tr != nil {
		mgr.SetObs(tr)
	}
	if adaptive {
		mgr.SetInference("em", cfg.MinAssignments, 0)
	}
	mgr.SetBasePolicy(taskmgr.Policy{
		Assignments: cfg.Assignments,
		BatchSize:   cfg.Batch,
		PriceCents:  cfg.PriceCents,
		Linger:      time.Minute,
		UseCache:    false,
		UseModel:    false,
	})

	sc := cascadeScenario(ds, true)
	var ctr counters
	sc.drive(mgr, &ctr)
	mgr.FlushAll()
	for ctr.outstanding.Load() > 0 {
		if !clock.Step() {
			mgr.FlushAll()
			if !clock.Step() {
				return ph, fmt.Errorf("load: inference stalled with %d outcomes outstanding", ctr.outstanding.Load())
			}
		}
	}

	st := market.Stats()
	ph.HITs = int64(st.HITsPosted)
	ph.Assignments = int64(st.AssignmentsCompleted)
	ph.Questions = int64(st.QuestionsAnswered)
	ph.Spent = st.SpentCents
	ph.Makespan = clock.Now()
	ph.Outcomes = ctr.outcomes.Load()
	ph.Errors = ctr.errors.Load()
	ph.Passed = ctr.passed.Load()
	var tmp Report
	sc.finish(&tmp)
	ph.FNV = tmp.PassedKeysFNV
	ph.Stats = mgr.InferenceStats()
	sink.collect(tr)
	return ph, nil
}

// runInference drives the inference workload: the same filter cascade
// twice over one dataset — first under fixed-redundancy majority voting,
// then under EM answer inference with adaptive redundancy. The report
// carries both phases' HIT/assignment counts, spend and result
// fingerprints, so the -verify harness (and CI) can assert the adaptive
// run buys strictly fewer assignments at an identical result set and
// that reruns are byte-identical.
//
// Determinism posture: the default crowd is exactly perfect (Skill 1.0
// with vanishing spread/spam/abandonment), so both phases' answers equal
// the oracle, the fingerprints are pure functions of the dataset, and
// the adaptive phase stops every HIT at the posting floor — no
// extensions, MinAssignments/Assignments of the baseline's spend.
// Everything is pumped from one goroutine, so counts are deterministic
// with noisy crowds too.
func runInference(cfg Config) (Report, error) {
	rep := Report{Config: cfg}
	ds := workload.Photos(cfg.Tuples, 0.5, 0.6, cfg.Seed)

	sink := newTraceSink(cfg)
	start := time.Now()
	basePh, err := runInferencePhase(cfg, ds, false, sink)
	if err != nil {
		return rep, err
	}
	adaptPh, err := runInferencePhase(cfg, ds, true, sink)
	if err != nil {
		return rep, err
	}
	rep.Wall = time.Since(start)
	if err := sink.flush(); err != nil {
		return rep, err
	}

	// The adaptive phase is the headline; the majority baseline rides in
	// the InferBase* fields.
	rep.HITs = adaptPh.HITs
	rep.Assignments = adaptPh.Assignments
	rep.Questions = adaptPh.Questions
	rep.Spent = adaptPh.Spent
	rep.Makespan = adaptPh.Makespan
	rep.Outcomes = adaptPh.Outcomes
	rep.Errors = adaptPh.Errors
	rep.Passed = adaptPh.Passed
	rep.PassedKeysFNV = adaptPh.FNV
	rep.DollarsPerQuery = float64(rep.Spent) / 100
	if secs := rep.Wall.Seconds(); secs > 0 {
		rep.HITsPerSec = float64(basePh.HITs+adaptPh.HITs) / secs
	}

	rep.InferBaseHITs = basePh.HITs
	rep.InferBaseAssignments = basePh.Assignments
	rep.InferBaseSpent = basePh.Spent
	rep.InferBaseFNV = basePh.FNV
	rep.InferAdaptiveHITs = adaptPh.Stats.AdaptiveHITs
	rep.InferExtensions = adaptPh.Stats.Extensions
	rep.InferExtendFailures = adaptPh.Stats.ExtendFailures
	rep.InferSavedCents = adaptPh.Stats.SavedCents
	return rep, nil
}
