package load

import "testing"

// sortCfg is the acceptance shape CI runs (smaller here for speed).
func sortCfg() Config {
	return Config{Workload: WorkloadSort, Tuples: 80, Workers: 200}
}

// TestSortWorkloadEconomics asserts the issue's acceptance criteria on
// the seed-pinned harness: LIMIT-k pays measurably fewer comparison
// HITs than full ordering, hybrid pays fewer HITs than compare-only at
// an identical final-order fingerprint, and the tournament's top k
// matches the full ordering's first k.
func TestSortWorkloadEconomics(t *testing.T) {
	rep, err := Run(sortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SortCompareHITs == 0 || rep.SortRateHITs == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.SortTopKHITs >= rep.SortCompareHITs {
		t.Fatalf("top-k paid %d comparison HITs, full ordering paid %d", rep.SortTopKHITs, rep.SortCompareHITs)
	}
	if rep.SortHybridHITs >= rep.SortCompareHITs {
		t.Fatalf("hybrid paid %d HITs, compare paid %d", rep.SortHybridHITs, rep.SortCompareHITs)
	}
	if rep.SortHybridFNV != rep.SortOrderFNV {
		t.Fatalf("hybrid order %016x != compare order %016x", rep.SortHybridFNV, rep.SortOrderFNV)
	}
	if rep.SortTopKFNV != rep.SortTopKBaseFNV {
		t.Fatalf("top-k order %016x != compare's first k %016x", rep.SortTopKFNV, rep.SortTopKBaseFNV)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
}

// TestSortTopKClampedBelowGroupSize: a top-k at or above the
// comparison group size cannot engage the tournament, so oversized
// requests clamp to groupSize-1 instead of degenerating to full
// ordering (which would also fail the topk<compare acceptance check).
func TestSortTopKClampedBelowGroupSize(t *testing.T) {
	cfg := sortCfg()
	cfg.TopK = 50
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.TopK != 4 { // the sort tasks pin GroupSize 5
		t.Fatalf("TopK = %d, want clamp to group size − 1", rep.Config.TopK)
	}
	if rep.SortTopKHITs >= rep.SortCompareHITs {
		t.Fatalf("clamped top-k paid %d HITs, compare paid %d", rep.SortTopKHITs, rep.SortCompareHITs)
	}
}

// TestSortWorkloadDeterministic: identical configs give byte-identical
// virtual-time metrics and fingerprints across reruns.
func TestSortWorkloadDeterministic(t *testing.T) {
	first, err := Run(sortCfg())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(sortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if first.HITs != second.HITs || first.Spent != second.Spent || first.Makespan != second.Makespan ||
		first.SortRateHITs != second.SortRateHITs || first.SortCompareHITs != second.SortCompareHITs ||
		first.SortTopKHITs != second.SortTopKHITs || first.SortHybridHITs != second.SortHybridHITs ||
		first.SortOrderFNV != second.SortOrderFNV || first.SortHybridFNV != second.SortHybridFNV ||
		first.SortTopKFNV != second.SortTopKFNV {
		t.Fatalf("nondeterministic sort workload:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
