package load

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// sortTasks parses the sort workload's task pair: the rating surface
// and its comparison companion (the `Compare:`/`GroupSize:` syntax the
// engine's ORDER BY path consumes).
func sortTasks() (rateItem, orderItems *qlang.TaskDef) {
	rateItem = mustTask(`
TASK rateItem(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate this item from 1 to 9. %s", img
  Response: Rating(1, 9)
  Compare: orderItems
`)
	orderItems = mustTask(`
TASK orderItems(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order these items from least to most appealing."
  Response: Order
  GroupSize: 5
`)
	return rateItem, orderItems
}

// sortPhase is one strategy's isolated run: its own clock, crowd,
// marketplace and task manager (same seed), so per-strategy HIT counts
// and spend are directly comparable and every phase is deterministic.
type sortPhase struct {
	HITs      int64
	Spent     budget.Cents
	Makespan  mturk.VirtualTime
	Latencies []time.Duration
	Keys      []string // item keys in final order
	Stats     rank.Stats
}

// runSortPhase executes one strategy over the shared dataset.
func runSortPhase(cfg Config, d rank.Decision, sink *traceSink) (sortPhase, error) {
	var ph sortPhase
	rateDef, cmpDef := sortTasks()

	ds := workload.RankItems(cfg.Tuples, 9, "rateItem", cfg.Seed)
	oracle := workload.Combine(ds.Oracle, workload.OrderOracle(ds.Tables[0], "orderItems"))

	clock := mturk.NewClock()
	defer clock.Close()
	pool := crowd.NewPool(crowd.Config{
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		Seed:         cfg.Seed,
		MeanSkill:    cfg.Skill,
		SkillStd:     cfg.SkillStd,
		SpamFraction: cfg.Spam,
		AbandonRate:  cfg.Abandon,
		BatchPenalty: cfg.BatchPenalty,
	}, oracle)
	market := mturk.NewMarketplace(clock, pool)
	market.SetAutoDispose(true, func(hs mturk.HITStatus) {
		ph.Latencies = append(ph.Latencies, (hs.DoneAt - hs.PostedAt).Duration())
	})
	mgr := taskmgr.New(market, nil, nil, nil)
	tr := sink.tracer(clock.Now)
	if tr != nil {
		mgr.SetObs(tr)
	}
	mgr.SetBasePolicy(taskmgr.Policy{
		Assignments: cfg.Assignments,
		BatchSize:   cfg.Batch,
		PriceCents:  cfg.PriceCents,
		Linger:      time.Minute,
		UseCache:    false,
		UseModel:    false,
	})

	rows := ds.Tables[0].Snapshot()
	items := make([]rank.Item, len(rows))
	for i, row := range rows {
		items[i] = rank.Item{Key: row.Get("img").Str(), Args: []relation.Value{row.Get("img")}}
	}

	finished := false
	rank.Run(items, rateDef, cmpDef, d, rank.Config{
		Mgr: mgr,
	}, func(perm []int, st rank.Stats) {
		ph.Stats = st
		ph.Keys = make([]string, len(perm))
		for i, p := range perm {
			ph.Keys[i] = items[p].Key
		}
		finished = true
	})
	// Pump on this goroutine; every follow-up round is submitted inside
	// Done callbacks, which run here too, so the run is deterministic.
	for !finished {
		if !clock.Step() {
			mgr.FlushAll()
			if !clock.Step() {
				return ph, fmt.Errorf("load: sort phase %s stalled", d.Strategy)
			}
		}
	}
	st := market.Stats()
	ph.HITs = int64(st.HITsPosted)
	ph.Spent = st.SpentCents
	ph.Makespan = clock.Now()
	sink.collect(tr)
	return ph, nil
}

// orderFingerprint hashes a key sequence in order (unlike fingerprint,
// which sorts): two runs agree iff they produced the same total order.
func orderFingerprint(keys []string) uint64 {
	h := fnv.New64a()
	for _, key := range keys {
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// runSort drives the sort workload: the same dataset ordered four
// ways — rate, all-pairs compare, compare with top-k pushdown, and the
// rate-then-refine hybrid — each in an isolated deterministic phase.
// The report carries per-strategy HIT counts and order fingerprints so
// the -verify harness (and CI) can assert that top-k pays fewer
// comparison HITs than full ordering, that hybrid pays fewer HITs than
// compare-only at an identical final order, and that reruns are
// byte-identical.
func runSort(cfg Config) (Report, error) {
	rep := Report{Config: cfg}
	groupSize := rank.GroupSizeFor(sortTasks())

	sink := newTraceSink(cfg)
	start := time.Now()
	ratePh, err := runSortPhase(cfg, rank.Decision{Strategy: rank.StrategyRate, GroupSize: groupSize}, sink)
	if err != nil {
		return rep, err
	}
	comparePh, err := runSortPhase(cfg, rank.Decision{Strategy: rank.StrategyCompare, GroupSize: groupSize}, sink)
	if err != nil {
		return rep, err
	}
	topkPh, err := runSortPhase(cfg, rank.Decision{Strategy: rank.StrategyCompare, GroupSize: groupSize, TopK: cfg.TopK}, sink)
	if err != nil {
		return rep, err
	}
	hybridPh, err := runSortPhase(cfg, rank.Decision{Strategy: rank.StrategyHybrid, GroupSize: groupSize}, sink)
	if err != nil {
		return rep, err
	}
	rep.Wall = time.Since(start)
	if err := sink.flush(); err != nil {
		return rep, err
	}

	phases := []sortPhase{ratePh, comparePh, topkPh, hybridPh}
	var latencies []time.Duration
	for _, ph := range phases {
		rep.HITs += ph.HITs
		rep.Spent += ph.Spent
		rep.Errors += int64(ph.Stats.Errors)
		rep.Outcomes++
		if ph.Makespan > rep.Makespan {
			rep.Makespan = ph.Makespan
		}
		latencies = append(latencies, ph.Latencies...)
	}
	rep.Passed = int64(len(comparePh.Keys))
	rep.DollarsPerQuery = float64(rep.Spent) / 100
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.P50 = latencies[n/2]
		rep.P99 = latencies[min(n-1, n*99/100)]
		if secs := rep.Wall.Seconds(); secs > 0 {
			rep.HITsPerSec = float64(n) / secs
		}
	}

	rep.SortRateHITs = ratePh.HITs
	rep.SortCompareHITs = comparePh.HITs
	rep.SortTopKHITs = topkPh.HITs
	rep.SortHybridHITs = hybridPh.HITs
	rep.SortOrderFNV = orderFingerprint(comparePh.Keys)
	rep.SortHybridFNV = orderFingerprint(hybridPh.Keys)
	k := cfg.TopK
	if k > len(topkPh.Keys) {
		k = len(topkPh.Keys)
	}
	rep.SortTopKFNV = orderFingerprint(topkPh.Keys[:k])
	rep.SortTopKBaseFNV = orderFingerprint(comparePh.Keys[:k])
	return rep, nil
}
