package load

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// multitenantTask is the one filter task every tenant query applies;
// cross-query co-batching only ever merges items of the same task.
const multitenantTask = `
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a photo of a cat? %s", photo
  Response: YesNo
`

// tenantTable names query i's private input relation.
func tenantTable(i int) string { return fmt.Sprintf("tenant%03d", i) }

// tenantTables builds one disjoint photo table per query (keys never
// collide across tenants, so neither the Task Cache nor a shared HIT
// can conflate two queries' items) plus a single oracle that reads the
// ground truth back out of the key itself.
func tenantTables(queries, perQuery int, seed int64) ([]*relation.Table, crowd.Oracle) {
	rng := rand.New(rand.NewSource(seed))
	schema := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindImage})
	tables := make([]*relation.Table, queries)
	for q := range tables {
		tab := relation.NewTable(tenantTable(q), schema)
		for j := 0; j < perQuery; j++ {
			subject := "toaster"
			if rng.Float64() < 0.5 {
				subject = "feline"
			}
			_ = tab.InsertValues(relation.NewImage(fmt.Sprintf("t%03d-photo%03d-%s.png", q, j, subject)))
		}
		tables[q] = tab
	}
	oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
		if len(args) == 0 {
			return relation.Null
		}
		return relation.NewBool(strings.Contains(args[0].Str(), "feline"))
	})
	return tables, oracle
}

// runMultiTenant drives Config.Queries concurrent streaming queries
// through ONE engine: every query filters its own disjoint table with
// the same task, opting into cross-query HIT sharing (unless NoShare)
// behind a MaxInflight admission gate.
//
// Determinism posture: the default crowd is exactly perfect (Skill 1.0
// with vanishing spread/spam/abandonment), so every answer equals
// ground truth and each query's passed-keys fingerprint is a pure
// function of its table — identical across reruns, with sharing on or
// off, whatever order the scheduler interleaves the queries in. HIT
// counts and latencies remain timing-dependent; the fingerprints and
// the ledger are what the -verify harness pins down.
//
// The run also audits the money end to end: per-query sunk cost
// (posted cost minus refunds, including shared-HIT split attribution)
// must sum exactly to the account's total spend, or the run errors.
func runMultiTenant(cfg Config) (Report, error) {
	rep := Report{Config: cfg}
	perQuery := cfg.Tuples / cfg.Queries
	if perQuery < 1 {
		perQuery = 1
	}
	tables, oracle := tenantTables(cfg.Queries, perQuery, cfg.Seed)

	eng, err := core.New(core.Config{
		Oracle: oracle,
		Crowd: crowd.Config{
			Workers:      cfg.Workers,
			Shards:       cfg.Shards,
			Seed:         cfg.Seed,
			MeanSkill:    cfg.Skill,
			SkillStd:     cfg.SkillStd,
			SpamFraction: cfg.Spam,
			AbandonRate:  cfg.Abandon,
			BatchPenalty: cfg.BatchPenalty,
		},
		MaxInflightHITs: cfg.MaxInflight,
		PlanCacheSize:   cfg.planCacheSize(),
		Trace:           cfg.TracePath != "",
	})
	if err != nil {
		return rep, fmt.Errorf("load: %v", err)
	}
	defer eng.Close()
	for _, t := range tables {
		if err := eng.Register(t); err != nil {
			return rep, err
		}
	}
	if err := eng.Define(multitenantTask); err != nil {
		return rep, err
	}
	eng.Manager().SetBasePolicy(taskmgr.Policy{
		Assignments: cfg.Assignments, BatchSize: cfg.Batch, PriceCents: cfg.PriceCents,
		Linger: time.Minute, UseCache: true,
	})

	// Pace the clock (as the streaming workload does) so the tenant
	// goroutines truly overlap in virtual time: at full simulator speed
	// the pump can fire one query's linger flush before the next
	// tenant's partial even reaches the pool, and nothing would ever
	// co-batch. The result fingerprints do not depend on the pacing —
	// only the HIT counts (how well sharing packed) do.
	eng.Clock().SetPace(2e-5)
	defer eng.Clock().SetPace(0)

	type result struct {
		fnv    uint64
		passed int64
		spent  budget.Cents
		err    error
	}
	results := make([]result, cfg.Queries)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := eng.Query(context.Background(),
				fmt.Sprintf("SELECT img FROM %s WHERE isCat(img)", tenantTable(i)),
				core.WithSharedBatching(!cfg.NoShare))
			if err != nil {
				results[i].err = err
				return
			}
			defer rows.Close()
			var passed []string
			for rows.Next() {
				passed = append(passed, rows.Tuple().Values[0].Str())
			}
			results[i].err = rows.Err()
			results[i].fnv = fingerprint(passed)
			results[i].passed = int64(len(passed))
			results[i].spent = rows.Handle().SunkCents()
		}()
	}
	wg.Wait()
	eng.Clock().SetPace(0) // queries done; drain the tail at full speed
	rep.Wall = time.Since(start)
	if err := waitStreamingQuiesce(eng); err != nil {
		return rep, err
	}

	var all []string // per-query FNVs re-hashed into one combined print
	var sum budget.Cents
	minSpent, maxSpent := budget.Cents(-1), budget.Cents(0)
	rep.PerQueryFNV = make([]uint64, cfg.Queries)
	for i, r := range results {
		if r.err != nil {
			return rep, fmt.Errorf("load: tenant query %d: %w", i, r.err)
		}
		rep.PerQueryFNV[i] = r.fnv
		all = append(all, fmt.Sprintf("%016x", r.fnv))
		rep.Outcomes += int64(perQuery)
		rep.Passed += r.passed
		sum += r.spent
		if minSpent < 0 || r.spent < minSpent {
			minSpent = r.spent
		}
		if r.spent > maxSpent {
			maxSpent = r.spent
		}
	}
	rep.PassedKeysFNV = fingerprint(all)
	rep.FairSpreadCents = maxSpent - minSpent

	st := eng.Marketplace().Stats()
	rep.HITs = int64(st.HITsPosted)
	rep.Assignments = int64(st.AssignmentsCompleted)
	rep.Questions = int64(st.QuestionsAnswered)
	rep.Spent = eng.Manager().Account().Spent()
	rep.DollarsPerQuery = float64(rep.Spent) / 100
	rep.Makespan = eng.Clock().Now()
	if secs := rep.Wall.Seconds(); secs > 0 {
		rep.HITsPerSec = float64(rep.HITs) / secs
	}
	sh := eng.Manager().Sharing()
	rep.SharedHITs = sh.SharedHITs
	rep.CoBatchedItems = sh.CoBatchedItems
	rep.HITsSaved = sh.HITsSaved
	rep.SharedSavedCents = sh.SavedCents

	// Split-attribution audit: every cent the account spent must be
	// owned by exactly one query, through shared splits, detach refunds
	// and post-failure rollbacks alike.
	if sum != rep.Spent {
		return rep, fmt.Errorf("load: ledger drift: per-query sunk costs sum to %v, account spent %v", sum, rep.Spent)
	}
	sink := newTraceSink(cfg)
	sink.collect(eng.Tracer())
	if err := sink.flush(); err != nil {
		return rep, err
	}
	return rep, nil
}
