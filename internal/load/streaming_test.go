package load

import (
	"strings"
	"testing"
)

// TestStreamingFirstRowBeforeLastHIT is the acceptance demo: the Rows
// cursor delivers its first tuple while later HITs are still in flight.
func TestStreamingFirstRowBeforeLastHIT(t *testing.T) {
	rep, err := Run(Config{Workload: WorkloadStreaming, Tuples: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if rep.FirstRow >= rep.Makespan {
		t.Fatalf("first row at %.2f vmin did not precede makespan %.2f vmin",
			rep.FirstRow.Minutes(), rep.Makespan.Minutes())
	}
	if rep.HITsAfterCancel != 0 {
		t.Fatalf("HITs posted after quiesce: %d", rep.HITsAfterCancel)
	}
	if !strings.Contains(rep.String(), "streaming") {
		t.Fatal("report lacks the streaming line")
	}
}

// TestStreamingCancelPrefixDeterministic cancels after a fixed number
// of delivered rows and asserts no HITs post after cancellation, that
// cancellation saved real money, and that the completed prefix's
// fingerprint is rerun-identical.
func TestStreamingCancelPrefixDeterministic(t *testing.T) {
	cfg := Config{Workload: WorkloadStreaming, Tuples: 120, Seed: 2, CancelAfter: 10}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.HITsAfterCancel != 0 {
		t.Fatalf("HITs posted after cancel: %d", first.HITsAfterCancel)
	}
	if first.Delivered != 10 {
		t.Fatalf("want the 10-row prefix, got %d", first.Delivered)
	}
	// 120 tuples at 1¢ single-assignment would cost ≥ 120¢ uncanceled;
	// the canceled run must have kept well clear of that.
	if first.Spent >= 120 {
		t.Fatalf("cancellation saved nothing: spent %v", first.Spent)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.PassedKeysFNV != first.PassedKeysFNV || again.Delivered != first.Delivered {
		t.Fatalf("completed prefix not rerun-identical:\nfirst:  %d rows %016x\nsecond: %d rows %016x",
			first.Delivered, first.PassedKeysFNV, again.Delivered, again.PassedKeysFNV)
	}
}
