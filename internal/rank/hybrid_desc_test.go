package rank

import (
	"reflect"
	"testing"
)

func TestHybridDescTopK(t *testing.T) {
	items, mgr, want := makeItems(20)
	rate, cmp := testDefs(t)
	mgr.rateAnswers = make(map[string][]float64)
	for key, s := range mgr.scores {
		b := float64(int(s / 25))
		mgr.rateAnswers[key] = []float64{b, b, b}
	}
	perm, st := runSync(t, items, rate, cmp,
		Decision{Strategy: StrategyHybrid, GroupSize: 5, Desc: true, TopK: 3}, mgr)
	rev := make([]int, len(want))
	for i, v := range want {
		rev[len(want)-1-i] = v
	}
	if !reflect.DeepEqual(perm[:3], rev[:3]) {
		t.Fatalf("desc top-3 = %v, want %v (windows=%d refined=%d)", perm[:3], rev[:3], st.Windows, st.Refined)
	}
}
