package rank

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// fakeMgr answers ratings and comparisons synchronously from latent
// scores, with no noise: ratings return the rounded score, comparisons
// rank a group by exact score. It counts what each strategy paid.
type fakeMgr struct {
	scores      map[string]float64 // key (= first arg string) → latent score
	rateAsks    int
	compareHITs int
	// rateAnswers overrides per-item rating answer lists (to simulate
	// disagreement / confidence intervals); nil uses the exact score.
	rateAnswers map[string][]float64
	failRate    bool // resolve every rating with an error
	failCompare bool // resolve every comparison with an error
}

func (f *fakeMgr) Submit(req taskmgr.Request) {
	f.rateAsks++
	key := req.Args[0].Str()
	if f.failRate {
		req.Done(taskmgr.Outcome{Err: fmt.Errorf("fake: rating down")})
		return
	}
	if ans, ok := f.rateAnswers[key]; ok {
		vals := make([]relation.Value, len(ans))
		sum := 0.0
		for i, a := range ans {
			vals[i] = relation.NewFloat(a)
			sum += a
		}
		req.Done(taskmgr.Outcome{Value: relation.NewFloat(sum / float64(len(ans))), Answers: vals})
		return
	}
	s := f.scores[key]
	req.Done(taskmgr.Outcome{
		Value:   relation.NewFloat(s),
		Answers: []relation.Value{relation.NewFloat(s), relation.NewFloat(s), relation.NewFloat(s)},
	})
}

func (f *fakeMgr) Flush(string) {}

func (f *fakeMgr) FlushScope(string, *taskmgr.Scope) {}

func (f *fakeMgr) RankBlockIn(_ *taskmgr.Scope, def *qlang.TaskDef, items []taskmgr.RankItem, done func([]taskmgr.Ranking, error)) {
	f.compareHITs++
	if f.failCompare {
		done(nil, fmt.Errorf("fake: comparison down"))
		return
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	// Stable sort by latent score: ties keep HIT order, like the crowd.
	sort.SliceStable(idx, func(a, b int) bool {
		return f.scores[items[idx[a]].Key] < f.scores[items[idx[b]].Key]
	})
	rank := make(map[string]int, len(items))
	for pos, i := range idx {
		rank[items[i].Key] = pos
	}
	done([]taskmgr.Ranking{{WorkerID: "w1", Rank: rank}}, nil)
}

func (f *fakeMgr) PolicyFor(*qlang.TaskDef) taskmgr.Policy {
	return taskmgr.DefaultPolicy()
}

func testDefs(t *testing.T) (rate, cmp *qlang.TaskDef) {
	t.Helper()
	script, err := qlang.Parse(`
TASK rateIt(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate. %s", img
  Response: Rating(1, 9)
  Compare: orderIt

TASK orderIt(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order the items."
  Response: Order
`)
	if err != nil {
		t.Fatal(err)
	}
	rate, _ = script.Task("rateIt")
	cmp, _ = script.Task("orderIt")
	return rate, cmp
}

// makeItems builds n items whose latent score follows a fixed
// pseudo-random permutation (deterministic, no two equal).
func makeItems(n int) ([]Item, *fakeMgr, []int) {
	items := make([]Item, n)
	mgr := &fakeMgr{scores: make(map[string]float64, n)}
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("item%03d", i)
		score := float64((i*7919)%104729) / 1000 // deterministic shuffle
		items[i] = Item{Key: key, Args: []relation.Value{relation.NewString(key)}}
		mgr.scores[key] = score
		ss[i] = scored{idx: i, score: score}
	}
	sort.SliceStable(ss, func(a, b int) bool { return ss[a].score < ss[b].score })
	want := make([]int, n)
	for pos, s := range ss {
		want[pos] = s.idx
	}
	return items, mgr, want
}

func runSync(t *testing.T, items []Item, rate, cmp *qlang.TaskDef, d Decision, mgr Manager) ([]int, Stats) {
	t.Helper()
	var perm []int
	var st Stats
	fired := 0
	Run(items, rate, cmp, d, Config{Mgr: mgr}, func(p []int, s Stats) {
		perm, st = p, s
		fired++
	})
	if fired != 1 {
		t.Fatalf("done fired %d times", fired)
	}
	if len(perm) != len(items) {
		t.Fatalf("perm length %d, want %d", len(perm), len(items))
	}
	seen := make(map[int]bool)
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("perm not a permutation: %v", perm)
		}
		seen[p] = true
	}
	return perm, st
}

func TestCompareGroupsCoverAllPairs(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{2, 5}, {5, 5}, {6, 5}, {17, 5}, {30, 6}, {9, 2}} {
		groups := CompareGroups(tc.n, tc.s)
		covered := make(map[[2]int]bool)
		for _, g := range groups {
			if len(g) > tc.s {
				t.Errorf("n=%d S=%d: group of %d exceeds S", tc.n, tc.s, len(g))
			}
			for a := 0; a < len(g); a++ {
				for b := a + 1; b < len(g); b++ {
					covered[[2]int{g[a], g[b]}] = true
				}
			}
		}
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				if !covered[[2]int{i, j}] {
					t.Errorf("n=%d S=%d: pair (%d,%d) uncovered", tc.n, tc.s, i, j)
				}
			}
		}
	}
}

func TestCompareOrdersExactly(t *testing.T) {
	items, mgr, want := makeItems(23)
	rate, cmp := testDefs(t)
	perm, st := runSync(t, items, rate, cmp, Decision{Strategy: StrategyCompare, GroupSize: 5}, mgr)
	if !reflect.DeepEqual(perm, want) {
		t.Fatalf("compare order:\n got %v\nwant %v", perm, want)
	}
	if st.CompareHITs != CompareHITCount(23, 5, 0) || st.CompareHITs != mgr.compareHITs {
		t.Fatalf("CompareHITs=%d predicted=%d posted=%d", st.CompareHITs, CompareHITCount(23, 5, 0), mgr.compareHITs)
	}
}

func TestCompareDesc(t *testing.T) {
	items, mgr, want := makeItems(14)
	rate, cmp := testDefs(t)
	perm, _ := runSync(t, items, rate, cmp, Decision{Strategy: StrategyCompare, GroupSize: 5, Desc: true}, mgr)
	rev := make([]int, len(want))
	for i, v := range want {
		rev[len(want)-1-i] = v
	}
	if !reflect.DeepEqual(perm, rev) {
		t.Fatalf("desc compare:\n got %v\nwant %v", perm, rev)
	}
}

func TestRateOrders(t *testing.T) {
	items, mgr, want := makeItems(31)
	rate, cmp := testDefs(t)
	perm, st := runSync(t, items, rate, cmp, Decision{Strategy: StrategyRate}, mgr)
	if !reflect.DeepEqual(perm, want) {
		t.Fatalf("rate order:\n got %v\nwant %v", perm, want)
	}
	if st.RateAsks != 31 || mgr.compareHITs != 0 {
		t.Fatalf("RateAsks=%d compareHITs=%d", st.RateAsks, mgr.compareHITs)
	}
}

func TestTopKTournamentPaysFewerHITs(t *testing.T) {
	items, mgr, want := makeItems(60)
	rate, cmp := testDefs(t)
	perm, st := runSync(t, items, rate, cmp,
		Decision{Strategy: StrategyCompare, GroupSize: 5, TopK: 3}, mgr)
	full := CompareHITCount(60, 5, 0)
	if st.CompareHITs >= full {
		t.Fatalf("top-k paid %d HITs, full ordering pays %d", st.CompareHITs, full)
	}
	if st.CompareHITs != CompareHITCount(60, 5, 3) {
		t.Fatalf("top-k paid %d HITs, predicted %d", st.CompareHITs, CompareHITCount(60, 5, 3))
	}
	if !reflect.DeepEqual(perm[:3], want[:3]) {
		t.Fatalf("top-3 = %v, want %v", perm[:3], want[:3])
	}
}

// TestHybridMatchesCompare is the subsystem's core contract: with
// disagreeing ratings forcing windows, hybrid must reproduce the exact
// order all-pairs comparison produces, at fewer comparison HITs.
func TestHybridMatchesCompare(t *testing.T) {
	items, mgr, want := makeItems(40)
	rate, cmp := testDefs(t)
	// Bucket the ratings (many ties) so hybrid has windows to refine:
	// unanimous votes per bucket give zero-width intervals that overlap
	// exactly on ties, so the windows are the buckets themselves.
	mgr.rateAnswers = make(map[string][]float64)
	for key, s := range mgr.scores {
		b := float64(int(s / 25)) // 5 buckets over the score range
		mgr.rateAnswers[key] = []float64{b, b, b}
	}
	perm, st := runSync(t, items, rate, cmp, Decision{Strategy: StrategyHybrid, GroupSize: 5}, mgr)
	if !reflect.DeepEqual(perm, want) {
		t.Fatalf("hybrid order:\n got %v\nwant %v", perm, want)
	}
	if st.Windows == 0 || st.Refined == 0 {
		t.Fatalf("hybrid refined nothing (windows=%d refined=%d)", st.Windows, st.Refined)
	}
	if full := CompareHITCount(40, 5, 0); st.CompareHITs >= full {
		t.Fatalf("hybrid paid %d comparison HITs, full compare pays %d", st.CompareHITs, full)
	}
}

func TestHybridRefineCap(t *testing.T) {
	items, mgr, _ := makeItems(40)
	rate, cmp := testDefs(t)
	mgr.rateAnswers = make(map[string][]float64)
	for key, s := range mgr.scores {
		b := float64(int(s / 25))
		mgr.rateAnswers[key] = []float64{b, b, b}
	}
	_, unlimited := runSync(t, items, rate, cmp, Decision{Strategy: StrategyHybrid, GroupSize: 5}, mgr)
	mgr2 := &fakeMgr{scores: mgr.scores, rateAnswers: mgr.rateAnswers}
	_, capped := runSync(t, items, rate, cmp,
		Decision{Strategy: StrategyHybrid, GroupSize: 5, MaxRefineHITs: 2}, mgr2)
	if capped.CompareHITs > 2 {
		t.Fatalf("refine cap 2 exceeded: %d comparison HITs", capped.CompareHITs)
	}
	if capped.CompareHITs >= unlimited.CompareHITs {
		t.Fatalf("cap did not reduce refinement: %d vs %d", capped.CompareHITs, unlimited.CompareHITs)
	}
}

func TestErrorsDegradeToInputOrder(t *testing.T) {
	items, mgr, _ := makeItems(12)
	rate, cmp := testDefs(t)
	mgr.failCompare = true
	perm, st := runSync(t, items, rate, cmp, Decision{Strategy: StrategyCompare, GroupSize: 5}, mgr)
	if st.Errors == 0 {
		t.Fatal("expected errors")
	}
	want := identity(12)
	if !reflect.DeepEqual(perm, want) {
		t.Fatalf("failed compare should keep input order, got %v", perm)
	}

	mgr2 := &fakeMgr{scores: mgr.scores, failRate: true}
	perm, st = runSync(t, items, rate, cmp, Decision{Strategy: StrategyRate}, mgr2)
	if st.Errors != 12 {
		t.Fatalf("Errors=%d, want 12", st.Errors)
	}
	if !reflect.DeepEqual(perm, want) {
		t.Fatalf("failed rate should keep input order, got %v", perm)
	}
}

func TestCompareHITCountTable(t *testing.T) {
	for _, tc := range []struct{ n, s, k, want int }{
		{0, 5, 0, 0},
		{1, 5, 0, 0},
		{2, 5, 0, 1},
		{5, 5, 0, 1},
		{6, 5, 0, 3},      // half=2 → m=3 → C(3,2)
		{120, 5, 0, 1770}, // m=60
		{5, 5, 3, 1},      // n ≤ S: single HIT regardless of k
		{120, 5, 5, 1770}, // k ≥ S: tournament cannot shrink, full order
	} {
		if got := CompareHITCount(tc.n, tc.s, tc.k); got != tc.want {
			t.Errorf("CompareHITCount(%d,%d,%d) = %d, want %d", tc.n, tc.s, tc.k, got, tc.want)
		}
	}
	if got := CompareHITCount(120, 5, 3); got >= 1770 || got <= 0 {
		t.Errorf("top-3 tournament over 120 = %d HITs, want far under 1770", got)
	}
}

func TestGroupSizeFor(t *testing.T) {
	rate, cmp := testDefs(t)
	if got := GroupSizeFor(rate, cmp); got != DefaultGroupSize {
		t.Fatalf("GroupSizeFor without overrides = %d", got)
	}
	cmp.GroupSize = 7
	if got := GroupSizeFor(rate, cmp); got != 7 {
		t.Fatalf("GroupSizeFor with cmp override = %d", got)
	}
	rate.GroupSize = 4
	cmp.GroupSize = 0
	if got := GroupSizeFor(rate, cmp); got != 4 {
		t.Fatalf("GroupSizeFor with rate override = %d", got)
	}
}
