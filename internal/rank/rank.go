// Package rank is the human-powered ranking subsystem: it turns a set
// of items plus an ORDER BY task into a total order using crowd
// comparisons, crowd ratings, or a cost-chosen hybrid of the two — the
// paper's second pillar alongside human joins.
//
// Three strategies:
//
//   - Compare packs items into S-way comparison HITs (the Order
//     response): items are split into consecutive half-groups of ⌊S/2⌋
//     and every pair of half-groups shares one HIT, so every item pair
//     is ranked together at least once in C(⌈n/⌊S/2⌋⌉, 2) = O(n²/S²)
//     HITs (n ≤ S collapses to a single HIT). Votes
//     aggregate into a pairwise win matrix; cycles are broken
//     deterministically by win ratio, then input order.
//   - Rate asks a numeric rating per item (batched under the task
//     policy) and sorts by mean rating, ties broken by input order —
//     the executor's historical ORDER BY behavior, relocated here.
//   - Hybrid rates everything, then runs comparison refinement only on
//     windows of adjacent items whose rating confidence intervals
//     overlap, sized by the remaining per-query budget.
//
// With LIMIT k (Decision.TopK), Compare runs a selection tournament
// that fully orders only the top window instead of paying the all-pairs
// cost, and Hybrid refines only windows that intersect the top k.
//
// The subsystem deliberately has a narrow interface (Run plus the pure
// cost helpers) so future strategies plug in without touching the
// executor.
package rank

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// Strategy names one ordering algorithm.
type Strategy string

// The three strategies.
const (
	StrategyCompare Strategy = "compare"
	StrategyRate    Strategy = "rate"
	StrategyHybrid  Strategy = "hybrid"
)

// DefaultGroupSize is the comparison batch size S when neither the
// task definition (GroupSize:) nor the decision specifies one.
const DefaultGroupSize = 5

// Item is one tuple to order: Key routes results (unique, in input
// order), Args are the values the ranking task is applied to.
type Item struct {
	Key  string
	Args []relation.Value
}

// Decision says how to order one input, typically produced by
// optimizer.ChooseRankStrategy.
type Decision struct {
	Strategy  Strategy
	GroupSize int // S; DefaultGroupSize when 0
	// TopK > 0 means only the first TopK positions of the output must
	// be exact (LIMIT pushdown); the remainder is filled in input order.
	TopK int
	// Desc orders descending; ties still break by input order.
	Desc bool
	// MaxRefineHITs caps hybrid comparison refinement. 0 derives the
	// cap from the scope's remaining budget (unlimited when uncapped).
	MaxRefineHITs int
}

func (d Decision) withDefaults() Decision {
	if d.GroupSize < 2 {
		d.GroupSize = DefaultGroupSize
	}
	if d.Strategy == "" {
		d.Strategy = StrategyRate
	}
	return d
}

// GroupSizeFor resolves the comparison batch size S for a sort over
// rateDef (the ORDER BY task) and cmpDef (its comparison companion):
// the comparison task's GroupSize wins, then the rating task's, then
// DefaultGroupSize.
func GroupSizeFor(rateDef, cmpDef *qlang.TaskDef) int {
	if cmpDef != nil && cmpDef.GroupSize >= 2 {
		return cmpDef.GroupSize
	}
	if rateDef != nil && rateDef.GroupSize >= 2 {
		return rateDef.GroupSize
	}
	return DefaultGroupSize
}

// Manager is the slice of the task manager the subsystem needs;
// *taskmgr.Manager implements it.
type Manager interface {
	Submit(req taskmgr.Request)
	Flush(task string)
	FlushScope(task string, scope *taskmgr.Scope)
	RankBlockIn(scope *taskmgr.Scope, def *qlang.TaskDef, items []taskmgr.RankItem, done func(rankings []taskmgr.Ranking, err error))
	PolicyFor(def *qlang.TaskDef) taskmgr.Policy
}

// Config carries the run's collaborators.
type Config struct {
	Mgr   Manager
	Scope *taskmgr.Scope
	// OnError receives per-item and per-HIT errors (nil discards them);
	// errors degrade the order rather than aborting it.
	OnError func(error)
}

func (c Config) reportError(err error) {
	if c.OnError != nil && err != nil {
		c.OnError(err)
	}
}

// Stats reports what one Run paid and did.
type Stats struct {
	Strategy    Strategy
	Items       int
	CompareHITs int // comparison (Order) HITs completed (failed posts count as Errors)
	RateAsks    int // rating questions submitted
	Windows     int // hybrid: comparison-refined windows
	Refined     int // hybrid: items inside refined windows
	Errors      int
}

// Run orders items with the decided strategy and calls done exactly
// once with the permutation of input indices (first = first output
// row) and the run's stats. Submissions happen on the caller's
// goroutine and inside task-manager Done callbacks; done may therefore
// fire on either. Errors are reported through cfg.OnError and counted;
// the permutation is always a valid total order (errored items keep
// their input order).
func Run(items []Item, rateDef, cmpDef *qlang.TaskDef, d Decision, cfg Config, done func(perm []int, st Stats)) {
	d = d.withDefaults()
	r := &runner{items: items, rateDef: rateDef, cmpDef: cmpDef, d: d, cfg: cfg, done: done}
	r.st.Strategy = d.Strategy
	r.st.Items = len(items)
	if len(items) <= 1 {
		done(identity(len(items)), r.st)
		return
	}
	switch d.Strategy {
	case StrategyCompare:
		if cmpDef == nil {
			r.fail(fmt.Errorf("rank: compare strategy without a comparison task"))
			return
		}
		r.runCompare()
	case StrategyHybrid:
		if cmpDef == nil || rateDef == nil {
			r.fail(fmt.Errorf("rank: hybrid strategy needs both a rating and a comparison task"))
			return
		}
		r.runHybrid()
	default:
		if rateDef == nil {
			r.fail(fmt.Errorf("rank: rate strategy without a rating task"))
			return
		}
		r.runRate(func(scores []float64, errored []bool, _ [][]relation.Value) {
			r.finish(orderByScore(scores, errored, r.d.Desc))
		})
	}
}

// runner is one Run's mutable state. mu guards everything below it:
// task-manager callbacks fire on the clock goroutine while the caller's
// goroutine may still be submitting.
type runner struct {
	items   []Item
	rateDef *qlang.TaskDef
	cmpDef  *qlang.TaskDef
	d       Decision
	cfg     Config
	done    func([]int, Stats)

	mu sync.Mutex
	st Stats
}

func (r *runner) fail(err error) {
	r.cfg.reportError(err)
	r.mu.Lock()
	r.st.Errors++
	st := r.st
	r.mu.Unlock()
	r.done(identity(len(r.items)), st)
}

func (r *runner) finish(perm []int) {
	r.mu.Lock()
	st := r.st
	r.mu.Unlock()
	r.done(perm, st)
}

func identity(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// --- rate ------------------------------------------------------------------

// runRate submits one rating question per item (the task policy batches
// them) and hands the mean scores to then once every outcome is in.
func (r *runner) runRate(then func(scores []float64, errored []bool, answers [][]relation.Value)) {
	n := len(r.items)
	scores := make([]float64, n)
	errored := make([]bool, n)
	answers := make([][]relation.Value, n)
	// The sentinel (+1) keeps then from firing mid-loop when every
	// outcome resolves synchronously from the cache.
	remaining := n + 1
	settle := func() {
		r.mu.Lock()
		remaining--
		fire := remaining == 0
		r.mu.Unlock()
		if fire {
			then(scores, errored, answers)
		}
	}
	for i, it := range r.items {
		i := i
		r.mu.Lock()
		r.st.RateAsks++
		r.mu.Unlock()
		r.cfg.Mgr.Submit(taskmgr.Request{
			Def:   r.rateDef,
			Args:  it.Args,
			Scope: r.cfg.Scope,
			Done: func(out taskmgr.Outcome) {
				if out.Err != nil {
					r.cfg.reportError(out.Err)
					r.mu.Lock()
					r.st.Errors++
					r.mu.Unlock()
					errored[i] = true
				} else {
					scores[i] = out.Value.Float()
					answers[i] = out.Answers
				}
				settle()
			},
		})
	}
	r.cfg.Mgr.FlushScope(r.rateDef.Name, r.cfg.Scope)
	settle()
}

// orderByScore is the rating sort: ascending score (descending when
// desc), errored items treated as smallest, ties by input order.
func orderByScore(scores []float64, errored []bool, desc bool) []int {
	perm := identity(len(scores))
	sort.SliceStable(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		c := compareScored(scores[i], errored[i], scores[j], errored[j])
		if desc {
			c = -c
		}
		return c < 0
	})
	return perm
}

func compareScored(si float64, ei bool, sj float64, ej bool) int {
	switch {
	case ei && ej:
		return 0
	case ei:
		return -1
	case ej:
		return 1
	case si < sj:
		return -1
	case si > sj:
		return 1
	default:
		return 0
	}
}

// --- compare ---------------------------------------------------------------

// CompareGroups partitions n item indices into the comparison batches
// of the all-pairs strategy: consecutive half-groups of ⌊S/2⌋ items,
// one group per pair of half-groups, so every item pair shares at least
// one S-way HIT (odd S leaves one slot unused per HIT). n ≤ S
// collapses to a single group.
func CompareGroups(n, groupSize int) [][]int {
	if n <= 1 {
		return nil
	}
	if groupSize < 2 {
		groupSize = 2
	}
	if n <= groupSize {
		return [][]int{identity(n)}
	}
	half := groupSize / 2
	m := (n + half - 1) / half
	subset := func(i int) (lo, hi int) {
		lo = i * half
		hi = lo + half
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	var groups [][]int
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			ilo, ihi := subset(i)
			jlo, jhi := subset(j)
			g := make([]int, 0, (ihi-ilo)+(jhi-jlo))
			for x := ilo; x < ihi; x++ {
				g = append(g, x)
			}
			for x := jlo; x < jhi; x++ {
				g = append(g, x)
			}
			groups = append(groups, g)
		}
	}
	return groups
}

// CompareHITCount predicts how many comparison HITs the compare
// strategy pays for n items at batch size S, with the top-k tournament
// when 0 < topK < S. It mirrors the execution exactly, so the
// optimizer's prices and the dashboard's baselines match what runs.
func CompareHITCount(n, groupSize, topK int) int {
	if n <= 1 {
		return 0
	}
	if groupSize < 2 {
		groupSize = 2
	}
	if topK > 0 && topK < groupSize && n > groupSize {
		hits := 0
		c := n
		for c > groupSize {
			g := (c + groupSize - 1) / groupSize
			hits += g
			kept := 0
			for i := 0; i < g; i++ {
				size := groupSize
				if i == g-1 {
					size = c - groupSize*(g-1)
				}
				if size < topK {
					kept += size
				} else {
					kept += topK
				}
			}
			c = kept
		}
		return hits + 1 // the final full ordering of the survivors
	}
	return len(CompareGroups(n, groupSize))
}

// RateHITCount predicts how many rating HITs n items cost at the given
// policy batch size.
func RateHITCount(n, batchSize int) int {
	if n <= 0 {
		return 0
	}
	if batchSize < 1 {
		batchSize = 1
	}
	return (n + batchSize - 1) / batchSize
}

// winTable accumulates pairwise before-votes over the full item set;
// votes[i][j] counts rankings that placed i before j.
type winTable struct {
	votes map[[2]int]int
}

func newWinTable() *winTable { return &winTable{votes: make(map[[2]int]int)} }

// fold records every pairwise ordering implied by one HIT's rankings.
// group holds the global indices in HIT order; keys their routing keys.
func (w *winTable) fold(group []int, keys []string, rankings []taskmgr.Ranking) {
	for _, r := range rankings {
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				if r.Rank[keys[a]] < r.Rank[keys[b]] {
					w.votes[[2]int{group[a], group[b]}]++
				} else {
					w.votes[[2]int{group[b], group[a]}]++
				}
			}
		}
	}
}

// order ranks the given indices by win ratio — the fraction of decided
// pairs whose majority puts the item earlier (Copeland scoring; a split
// vote counts half) — breaking cycles and ties deterministically: win
// ratio first, input order second. The convention: an "i before j" vote
// means i belongs earlier in the ascending output, so a higher win
// ratio sorts earlier (later under desc).
//
// Majority-per-pair, not raw vote counting, keeps the score a pure
// function of the pairwise relation: items compared in more HITs (the
// half-group layout repeats intra-subset pairs) gain no extra weight,
// which is what lets hybrid window refinement reproduce the all-pairs
// order exactly when the majorities agree.
func (w *winTable) order(indices []int, desc bool) []int {
	ratio := make(map[int]float64, len(indices))
	for _, i := range indices {
		wins, decided := 0.0, 0
		for _, j := range indices {
			if i == j {
				continue
			}
			a := w.votes[[2]int{i, j}]
			b := w.votes[[2]int{j, i}]
			if a+b == 0 {
				continue
			}
			decided++
			switch {
			case a > b:
				wins++
			case a == b:
				wins += 0.5
			}
		}
		if decided > 0 {
			ratio[i] = wins / float64(decided)
		} else {
			ratio[i] = 0.5 // never compared: neutral, input order decides
		}
	}
	out := append([]int(nil), indices...)
	sort.SliceStable(out, func(a, b int) bool {
		ri, rj := ratio[out[a]], ratio[out[b]]
		if desc {
			ri, rj = rj, ri
		}
		return ri > rj
	})
	return out
}

// rankItemsFor renders a group of global indices as the task manager's
// HIT rows.
func (r *runner) rankItemsFor(group []int) ([]taskmgr.RankItem, []string) {
	rows := make([]taskmgr.RankItem, len(group))
	keys := make([]string, len(group))
	for i, gi := range group {
		rows[i] = taskmgr.RankItem{Key: r.items[gi].Key, Args: r.items[gi].Args}
		keys[i] = r.items[gi].Key
	}
	return rows, keys
}

// allPairs orders the given indices by comparison HITs covering every
// pair, then hands the ordered indices to then. Submissions happen on
// the calling goroutine; then fires once the last HIT resolves.
func (r *runner) allPairs(indices []int, then func(ordered []int)) {
	if len(indices) <= 1 {
		then(append([]int(nil), indices...))
		return
	}
	groups := CompareGroups(len(indices), r.d.GroupSize)
	wt := newWinTable()
	remaining := len(groups) + 1
	settle := func() {
		r.mu.Lock()
		remaining--
		fire := remaining == 0
		r.mu.Unlock()
		if fire {
			then(wt.order(indices, r.d.Desc))
		}
	}
	for _, local := range groups {
		group := make([]int, len(local))
		for i, li := range local {
			group[i] = indices[li]
		}
		rows, keys := r.rankItemsFor(group)
		r.cfg.Mgr.RankBlockIn(r.cfg.Scope, r.cmpDef, rows, func(rankings []taskmgr.Ranking, err error) {
			if err != nil {
				// Synchronous failures (canceled scope, exhausted
				// budget, post error) never became a HIT: count the
				// error, not the spend.
				r.cfg.reportError(err)
				r.mu.Lock()
				r.st.Errors++
				r.mu.Unlock()
			} else {
				r.mu.Lock()
				r.st.CompareHITs++
				wt.fold(group, keys, rankings)
				r.mu.Unlock()
			}
			settle()
		})
	}
	settle()
}

// runCompare is the compare strategy: all-pairs coverage, or — with
// top-k pushdown — a selection tournament that only fully orders the
// top window. Eliminated items follow the ordered survivors in input
// order (they are past the LIMIT anyway).
func (r *runner) runCompare() {
	n := len(r.items)
	k := r.d.TopK
	if k > 0 && k < r.d.GroupSize && n > r.d.GroupSize {
		r.tournament(identity(n), func(ordered []int) {
			r.finish(fillEliminated(ordered, n))
		})
		return
	}
	r.allPairs(identity(n), r.finish)
}

// tournament runs S-way elimination rounds, keeping the top k of every
// group, until one group remains; that final group is ordered exactly.
func (r *runner) tournament(candidates []int, then func(ordered []int)) {
	S := r.d.GroupSize
	if len(candidates) <= S {
		r.allPairs(candidates, then)
		return
	}
	type groupResult struct {
		kept []int
	}
	var groups [][]int
	for lo := 0; lo < len(candidates); lo += S {
		hi := lo + S
		if hi > len(candidates) {
			hi = len(candidates)
		}
		groups = append(groups, candidates[lo:hi])
	}
	results := make([]groupResult, len(groups))
	remaining := len(groups) + 1
	settle := func() {
		r.mu.Lock()
		remaining--
		fire := remaining == 0
		r.mu.Unlock()
		if !fire {
			return
		}
		var next []int
		for _, res := range results {
			next = append(next, res.kept...)
		}
		r.tournament(next, then)
	}
	for gi, group := range groups {
		gi, group := gi, group
		rows, keys := r.rankItemsFor(group)
		r.cfg.Mgr.RankBlockIn(r.cfg.Scope, r.cmpDef, rows, func(rankings []taskmgr.Ranking, err error) {
			keep := r.d.TopK
			if keep > len(group) {
				keep = len(group)
			}
			if err != nil {
				// Never became a HIT (see allPairs): count the error,
				// not the spend.
				r.cfg.reportError(err)
				r.mu.Lock()
				r.st.Errors++
				r.mu.Unlock()
				// No evidence: keep the group's prefix in input order.
				results[gi] = groupResult{kept: append([]int(nil), group[:keep]...)}
				settle()
				return
			}
			wt := newWinTable()
			r.mu.Lock()
			r.st.CompareHITs++
			wt.fold(group, keys, rankings)
			r.mu.Unlock()
			ordered := wt.order(group, r.d.Desc)
			results[gi] = groupResult{kept: ordered[:keep]}
			settle()
		})
	}
	settle()
}

// fillEliminated appends every index missing from ordered, in input
// order, producing a full permutation.
func fillEliminated(ordered []int, n int) []int {
	seen := make([]bool, n)
	for _, i := range ordered {
		seen[i] = true
	}
	out := append([]int(nil), ordered...)
	for i := 0; i < n; i++ {
		if !seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// --- hybrid ----------------------------------------------------------------

// window is a run of adjacent positions in the rating order whose
// confidence intervals overlap: ratings cannot distinguish the members,
// so comparison HITs resolve them.
type window struct{ lo, hi int } // positions [lo, hi) in the rating order

// ratingWindows scans the rating order and groups maximal runs of
// adjacent items whose intervals [mean−e, mean+e] overlap.
func ratingWindows(perm []int, scores []float64, half []float64, errored []bool) []window {
	var out []window
	lo := 0
	for p := 1; p <= len(perm); p++ {
		joined := false
		if p < len(perm) {
			i, j := perm[p-1], perm[p]
			if !errored[i] && !errored[j] {
				joined = scores[i]+half[i] >= scores[j]-half[j]
			}
		}
		if joined {
			continue
		}
		if p-lo >= 2 {
			out = append(out, window{lo: lo, hi: p})
		}
		lo = p
	}
	return out
}

// ciHalfWidth is the ~95% half-width of a rating's mean from its
// per-assignment answers. A single vote carries half a scale step of
// uncertainty; unanimous votes carry none.
func ciHalfWidth(answers []relation.Value) float64 {
	n := len(answers)
	if n <= 1 {
		return 0.5
	}
	mean := 0.0
	for _, v := range answers {
		mean += v.Float()
	}
	mean /= float64(n)
	variance := 0.0
	for _, v := range answers {
		d := v.Float() - mean
		variance += d * d
	}
	variance /= float64(n - 1)
	return 1.96 * math.Sqrt(variance/float64(n))
}

// runHybrid rates everything, finds the uncertain windows, and
// comparison-refines them — top-k-relevant windows only under LIMIT
// pushdown, and never past the remaining budget.
func (r *runner) runHybrid() {
	r.runRate(func(scores []float64, errored []bool, answers [][]relation.Value) {
		perm := orderByScore(scores, errored, r.d.Desc)
		half := make([]float64, len(r.items))
		for i := range half {
			half[i] = ciHalfWidth(answers[i])
		}
		// Windows are runs in rating order; under desc the scan must
		// still walk ascending means, so reuse the ascending order.
		asc := perm
		if r.d.Desc {
			asc = reversed(perm)
		}
		windows := ratingWindows(asc, scores, half, errored)
		if r.d.Desc {
			// Translate ascending positions to the desc output's frame.
			n := len(perm)
			flipped := make([]window, len(windows))
			for i, w := range windows {
				flipped[len(windows)-1-i] = window{lo: n - w.hi, hi: n - w.lo}
			}
			windows = flipped
		}
		if r.d.TopK > 0 {
			kept := windows[:0]
			for _, w := range windows {
				if w.lo < r.d.TopK {
					kept = append(kept, w)
				}
			}
			windows = kept
		}
		windows = r.capWindows(windows)
		if len(windows) == 0 {
			r.finish(perm)
			return
		}
		remaining := len(windows) + 1
		settle := func() {
			r.mu.Lock()
			remaining--
			fire := remaining == 0
			r.mu.Unlock()
			if fire {
				r.finish(perm)
			}
		}
		for _, w := range windows {
			w := w
			members := append([]int(nil), perm[w.lo:w.hi]...)
			r.mu.Lock()
			r.st.Windows++
			r.st.Refined += len(members)
			r.mu.Unlock()
			r.allPairs(members, func(ordered []int) {
				r.mu.Lock()
				copy(perm[w.lo:w.hi], ordered)
				r.mu.Unlock()
				settle()
			})
		}
		settle()
	})
}

// capWindows trims the refinement worklist to the HIT budget: windows
// are taken in output order (the top of the result first — the most
// valuable positions) until the predicted comparison cost exceeds the
// cap. The cap is Decision.MaxRefineHITs, or the scope's remaining
// budget at the comparison task's policy when unset.
func (r *runner) capWindows(windows []window) []window {
	capHITs := r.d.MaxRefineHITs
	if capHITs <= 0 {
		remaining, ok := r.cfg.Scope.RemainingBudget()
		if !ok {
			return windows
		}
		pol := r.cfg.Mgr.PolicyFor(r.cmpDef).Clamped()
		perHIT := pol.PriceCents * int64(pol.Assignments)
		capHITs = int(int64(remaining) / perHIT)
	}
	spent := 0
	for i, w := range windows {
		cost := CompareHITCount(w.hi-w.lo, r.d.GroupSize, 0)
		if spent+cost > capHITs {
			return windows[:i]
		}
		spent += cost
	}
	return windows
}

func reversed(perm []int) []int {
	out := make([]int, len(perm))
	for i, v := range perm {
		out[len(perm)-1-i] = v
	}
	return out
}
