package queue

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

var oneCol = relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt})

func tup(i int64) relation.Tuple {
	return relation.MustTuple(oneCol, relation.NewInt(i))
}

func TestFIFOOrder(t *testing.T) {
	q := New(4)
	for i := int64(0); i < 4; i++ {
		if err := q.Push(tup(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 4; i++ {
		got, ok := q.Pop()
		if !ok || got.Values[0].Int() != i {
			t.Fatalf("pop %d = %v ok=%v", i, got, ok)
		}
	}
}

func TestWrapAround(t *testing.T) {
	q := New(2)
	for round := int64(0); round < 10; round++ {
		if err := q.Push(tup(round)); err != nil {
			t.Fatal(err)
		}
		got, ok := q.Pop()
		if !ok || got.Values[0].Int() != round {
			t.Fatalf("round %d: %v", round, got)
		}
	}
}

func TestCloseSemantics(t *testing.T) {
	q := New(4)
	_ = q.Push(tup(1))
	q.Close()
	q.Close() // idempotent
	if !q.Closed() {
		t.Fatal("Closed() = false")
	}
	if err := q.Push(tup(2)); err != ErrClosed {
		t.Fatalf("push after close = %v", err)
	}
	// Pending item still poppable.
	if got, ok := q.Pop(); !ok || got.Values[0].Int() != 1 {
		t.Fatalf("pending pop = %v ok=%v", got, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained+closed pop must report !ok")
	}
}

func TestPushBlocksUntilPop(t *testing.T) {
	q := New(1)
	if err := q.Push(tup(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- q.Push(tup(2)) }()
	if got, ok := q.Pop(); !ok || got.Values[0].Int() != 1 {
		t.Fatalf("pop = %v", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got, ok := q.Pop(); !ok || got.Values[0].Int() != 2 {
		t.Fatalf("second pop = %v", got)
	}
}

func TestPushBlockedWokenByClose(t *testing.T) {
	q := New(1)
	_ = q.Push(tup(1))
	done := make(chan error)
	go func() { done <- q.Push(tup(2)) }()
	q.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked push after close = %v", err)
	}
}

func TestPopBlockedWokenByClose(t *testing.T) {
	q := New(1)
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("pop on closed empty queue must report !ok")
	}
}

func TestTryPushTryPop(t *testing.T) {
	q := New(1)
	if !q.TryPush(tup(1)) {
		t.Fatal("TryPush on empty failed")
	}
	if q.TryPush(tup(2)) {
		t.Fatal("TryPush on full succeeded")
	}
	got, ok, done := q.TryPop()
	if !ok || done || got.Values[0].Int() != 1 {
		t.Fatalf("TryPop = %v ok=%v done=%v", got, ok, done)
	}
	_, ok, done = q.TryPop()
	if ok || done {
		t.Fatalf("TryPop empty open = ok=%v done=%v", ok, done)
	}
	q.Close()
	_, ok, done = q.TryPop()
	if ok || !done {
		t.Fatalf("TryPop empty closed = ok=%v done=%v", ok, done)
	}
	if q.TryPush(tup(3)) {
		t.Fatal("TryPush after close succeeded")
	}
}

func TestStats(t *testing.T) {
	q := New(8)
	for i := int64(0); i < 5; i++ {
		_ = q.Push(tup(i))
	}
	_, _ = q.Pop()
	pushed, popped, hwm := q.Stats()
	if pushed != 5 || popped != 1 || hwm != 5 {
		t.Fatalf("stats = %d %d %d", pushed, popped, hwm)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestDrain(t *testing.T) {
	q := New(4)
	go func() {
		for i := int64(0); i < 10; i++ {
			_ = q.Push(tup(i))
		}
		q.Close()
	}()
	got := q.Drain()
	if len(got) != 10 {
		t.Fatalf("drain = %d tuples", len(got))
	}
	for i, tu := range got {
		if tu.Values[0].Int() != int64(i) {
			t.Fatalf("drain order broken at %d: %v", i, tu)
		}
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(3)
	const producers, per = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := q.Push(tup(int64(p*per + i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	seen := make(map[int64]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				tu, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				seen[tu.Values[0].Int()] = true
				mu.Unlock()
			}
		}()
	}
	cg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("saw %d distinct tuples, want %d", len(seen), producers*per)
	}
}

// Property: after any sequence of pushes then pops, FIFO order holds and
// counts balance.
func TestFIFOProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		q := New(4)
		var want []int64
		go func() {
			for i, s := range sizes {
				_ = s
				_ = q.Push(tup(int64(i)))
			}
			q.Close()
		}()
		for i := range sizes {
			want = append(want, int64(i))
		}
		got := q.Drain()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Values[0].Int() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewMinimumCapacity(t *testing.T) {
	q := New(0)
	if !q.TryPush(tup(1)) {
		t.Fatal("capacity must be at least 1")
	}
}
