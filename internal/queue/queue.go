// Package queue provides the bounded, closable tuple queues that Qurk's
// operators use to communicate asynchronously, in the style of the
// Volcano exchange operator the paper cites: each operator consumes from
// input queues and pushes to its parent's queue, so slow HITs in one part
// of the plan never block unrelated progress.
package queue

import (
	"errors"
	"sync"

	"repro/internal/relation"
)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded FIFO of tuples, safe for many producers and many
// consumers. Close signals end-of-stream: pending items remain poppable,
// Pop returns ok=false once drained.
type Queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []relation.Tuple
	head     int
	count    int
	closed   bool

	// hwm tracks the high-water mark for dashboard reporting.
	hwm    int
	pushed int64
	popped int64
}

// New creates a queue with the given capacity (minimum 1).
func New(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{buf: make([]relation.Tuple, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Push enqueues t, blocking while the queue is full. It returns ErrClosed
// if the queue is (or becomes, while blocked) closed.
func (q *Queue) Push(t relation.Tuple) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[(q.head+q.count)%len(q.buf)] = t
	q.count++
	q.pushed++
	if q.count > q.hwm {
		q.hwm = q.count
	}
	q.notEmpty.Signal()
	return nil
}

// TryPush enqueues without blocking; it reports false when full or closed.
func (q *Queue) TryPush(t relation.Tuple) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.count == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = t
	q.count++
	q.pushed++
	if q.count > q.hwm {
		q.hwm = q.count
	}
	q.notEmpty.Signal()
	return true
}

// Pop dequeues the oldest tuple, blocking while the queue is empty and
// open. ok is false only when the queue is closed and drained.
func (q *Queue) Pop() (t relation.Tuple, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.count == 0 {
		return relation.Tuple{}, false
	}
	t = q.buf[q.head]
	q.buf[q.head] = relation.Tuple{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.popped++
	q.notFull.Signal()
	return t, true
}

// TryPop dequeues without blocking. done reports the closed-and-drained
// state; ok reports whether a tuple was returned.
func (q *Queue) TryPop() (t relation.Tuple, ok, done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return relation.Tuple{}, false, q.closed
	}
	t = q.buf[q.head]
	q.buf[q.head] = relation.Tuple{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.popped++
	q.notFull.Signal()
	return t, true, false
}

// Close marks end-of-stream and wakes all waiters. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Len returns the number of buffered tuples.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Stats reports lifetime counters for the dashboard.
func (q *Queue) Stats() (pushed, popped int64, highWater int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed, q.popped, q.hwm
}

// Drain pops every remaining tuple until closed-and-empty, returning them.
// It blocks until the producer closes the queue.
func (q *Queue) Drain() []relation.Tuple {
	var out []relation.Tuple
	for {
		t, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}
