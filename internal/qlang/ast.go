package qlang

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Expr is a query expression node.
type Expr interface {
	exprNode()
	String() string
}

// ColumnRef names a column, optionally qualified ("celebrities.name").
type ColumnRef struct {
	Table string // may be ""
	Name  string
}

func (*ColumnRef) exprNode() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// QualifiedName returns the full dotted name.
func (c *ColumnRef) QualifiedName() string { return c.String() }

// Literal is a constant value.
type Literal struct {
	Value relation.Value
}

func (*Literal) exprNode() {}

func (l *Literal) String() string {
	if l.Value.Kind() == relation.KindString {
		// Re-escape embedded quotes ('' is the literal quote in the
		// surface syntax), so String() output always reparses.
		return "'" + strings.ReplaceAll(l.Value.Str(), "'", "''") + "'"
	}
	return l.Value.String()
}

// Call invokes a UDF/task, e.g. findCEO(companyName).CEO — Field holds
// the optional tuple-field projection after the call.
type Call struct {
	Name  string
	Args  []Expr
	Field string // "" when no .Field suffix
}

func (*Call) exprNode() {}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	s := c.Name + "(" + strings.Join(args, ", ") + ")"
	if c.Field != "" {
		s += "." + c.Field
	}
	return s
}

// Binary is an infix operation. Op is one of
// = != < <= > >= AND OR + - * /.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) exprNode() {}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Unary is a prefix operation; Op is NOT or -.
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) exprNode() {}

func (u *Unary) String() string { return u.Op + " " + u.X.String() }

// Star is the * select item.
type Star struct{}

func (*Star) exprNode()      {}
func (*Star) String() string { return "*" }

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Expr  Expr
	Alias string // "" when unaliased
}

// OutputName returns the column name this item produces.
func (s SelectItem) OutputName(pos int) string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.Expr.(*ColumnRef); ok {
		return c.QualifiedName()
	}
	if c, ok := s.Expr.(*Call); ok {
		if c.Field != "" {
			return c.Name + "." + c.Field
		}
		return c.Name
	}
	return fmt.Sprintf("col%d", pos+1)
}

// TableRef names a FROM table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveAlias returns the alias, defaulting to the table name.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// String re-renders the statement, normalized.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		b.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return b.String()
}

// TaskType classifies how a task is rendered and executed as a HIT,
// following the paper's TaskType field plus the operator types the
// companion paper describes.
type TaskType int

// Task types.
const (
	// TaskQuestion is a free-form question answered with a form
	// (Task 1: findCEO).
	TaskQuestion TaskType = iota
	// TaskJoinPredicate compares items from two tables
	// (Task 2: samePerson).
	TaskJoinPredicate
	// TaskFilter is a yes/no predicate on one tuple.
	TaskFilter
	// TaskRank asks workers to order items (comparison-based sort).
	TaskRank
	// TaskRating asks for a numeric score per item (rating-based sort).
	TaskRating
	// TaskGenerative asks workers to produce a value per tuple
	// (schema extension like Query 1 when RETURNS is scalar).
	TaskGenerative
)

var taskTypeNames = map[string]TaskType{
	"question":      TaskQuestion,
	"joinpredicate": TaskJoinPredicate,
	"filter":        TaskFilter,
	"rank":          TaskRank,
	"rating":        TaskRating,
	"generative":    TaskGenerative,
}

// ParseTaskType resolves a TaskType name, case-insensitively.
func ParseTaskType(s string) (TaskType, error) {
	if t, ok := taskTypeNames[strings.ToLower(strings.TrimSpace(s))]; ok {
		return t, nil
	}
	return 0, fmt.Errorf("qlang: unknown TaskType %q", s)
}

func (t TaskType) String() string {
	switch t {
	case TaskQuestion:
		return "Question"
	case TaskJoinPredicate:
		return "JoinPredicate"
	case TaskFilter:
		return "Filter"
	case TaskRank:
		return "Rank"
	case TaskRating:
		return "Rating"
	case TaskGenerative:
		return "Generative"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// Param is one parameter of a TASK.
type Param struct {
	Name   string
	Kind   relation.Kind
	IsList bool // declared with a [] suffix, e.g. Image[]
}

// ReturnField is one component of a tuple-valued RETURNS clause.
type ReturnField struct {
	Name string
	Kind relation.Kind
}

// ResponseKind classifies the Response clause of a task.
type ResponseKind int

// Response kinds.
const (
	// ResponseForm collects free-text fields (Task 1).
	ResponseForm ResponseKind = iota
	// ResponseJoinColumns shows two columns of items to match (Task 2).
	ResponseJoinColumns
	// ResponseYesNo is a boolean radio choice.
	ResponseYesNo
	// ResponseRating is a numeric scale.
	ResponseRating
	// ResponseOrder asks the worker to order the shown items.
	ResponseOrder
	// ResponseChoice is a single selection among fixed options.
	ResponseChoice
)

func (r ResponseKind) String() string {
	switch r {
	case ResponseForm:
		return "Form"
	case ResponseJoinColumns:
		return "JoinColumns"
	case ResponseYesNo:
		return "YesNo"
	case ResponseRating:
		return "Rating"
	case ResponseOrder:
		return "Order"
	case ResponseChoice:
		return "Choice"
	default:
		return fmt.Sprintf("ResponseKind(%d)", int(r))
	}
}

// FormField is one input of a ResponseForm.
type FormField struct {
	Label string
	Kind  relation.Kind
}

// Response describes how worker input is collected.
type Response struct {
	Kind ResponseKind
	// Form fields (ResponseForm).
	Fields []FormField
	// JoinColumns labels and the parameter names bound to each column.
	LeftLabel, RightLabel string
	LeftParam, RightParam string
	// Rating scale bounds (ResponseRating); default 1..7.
	ScaleMin, ScaleMax int
	// Choice options (ResponseChoice).
	Options []string
}

// TaskDef is a parsed TASK definition (paper Task 1 / Task 2).
type TaskDef struct {
	Name    string
	Params  []Param
	Returns []ReturnField // single anonymous field uses Name ""
	Type    TaskType
	// Text is the instruction template; %s placeholders are substituted
	// with TextArgs (parameter names) in order.
	Text     string
	TextArgs []string
	Response Response

	// Optional tuning overrides; zero means "let the optimizer decide".
	PriceCents  int64
	Assignments int
	BatchSize   int

	// MinAssignments opts this task's HITs into adaptive redundancy
	// ("MinAssignments: 2"): they post with this many assignments and
	// the answer-inference aggregator extends one at a time, up to the
	// effective Assignments cap, while the posterior stays unsure. Zero
	// posts at the cap directly (the fixed-redundancy default).
	MinAssignments int

	// Infer selects the answer-inference aggregator for this task
	// ("Infer: em"): "majority" for seed-compatible majority voting,
	// "em" for joint worker-quality/answer EM. Empty defers to the
	// engine-wide inference configuration.
	Infer string

	// PreFilterTask names a cheap boolean feature-filter task the
	// optimizer may run over both inputs of a JoinPredicate task to
	// shrink the human-evaluated cross product ("PreFilter: isPerson").
	// Empty means no pre-filter is available for this join.
	PreFilterTask string

	// CompareTask names a companion Rank task (Order response) the sort
	// subsystem may use to comparison-sort items rated by this task
	// ("Compare: orderItems"). Only meaningful on Rating tasks; empty
	// means ORDER BY over this task can only rate.
	CompareTask string
	// GroupSize is the number of items shown together in one S-way
	// comparison (Order) HIT ("GroupSize: 5"). Zero lets the sort
	// subsystem use its default. Meaningful on Rank tasks (their own
	// batches) and Rating tasks (the companion's batches).
	GroupSize int

	// Share opts every application of this task into cross-query HIT
	// co-batching ("Share: Yes"), regardless of the submitting query's
	// own WithSharedBatching choice: queries whose effective posting
	// policy for the task matches may fill one HIT together.
	Share bool

	// Backend pins every HIT of this task to one named worker backend
	// ("Backend: llm"). Empty lets the engine's backend router (or its
	// optimizer-installed chooser) decide; without a router configured
	// the property is rejected at engine start.
	Backend string
}

// ReturnsTuple reports whether the task returns a multi-field tuple.
func (t *TaskDef) ReturnsTuple() bool {
	return len(t.Returns) > 1 || (len(t.Returns) == 1 && t.Returns[0].Name != "")
}

// ReturnKind returns the kind produced when the task returns a scalar.
func (t *TaskDef) ReturnKind() relation.Kind {
	if len(t.Returns) == 1 {
		return t.Returns[0].Kind
	}
	return relation.KindTuple
}

// Param returns the named parameter and whether it exists.
func (t *TaskDef) Param(name string) (Param, bool) {
	for _, p := range t.Params {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Param{}, false
}

// Script is a parsed source file: task definitions plus queries, in order.
type Script struct {
	Tasks   []*TaskDef
	Queries []*SelectStmt
}

// Task returns the named task definition, case-insensitively.
func (s *Script) Task(name string) (*TaskDef, bool) {
	for _, t := range s.Tasks {
		if strings.EqualFold(t.Name, name) {
			return t, true
		}
	}
	return nil, false
}
