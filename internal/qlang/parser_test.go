package qlang

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// The paper's Query 1 and Query 2, verbatim modulo quoting.
const query1 = `
SELECT companyName, findCEO(companyName).CEO,
       findCEO(companyName).Phone
FROM companies
`

const query2 = `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)
`

const task1 = `
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))
`

const task2 = `
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Drag a picture of any Celebrity in the left column to their matching picture."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
`

func TestParsePaperQuery1(t *testing.T) {
	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 3 {
		t.Fatalf("items = %d", len(q.Items))
	}
	if _, ok := q.Items[0].Expr.(*ColumnRef); !ok {
		t.Errorf("item 0 should be a column ref: %T", q.Items[0].Expr)
	}
	call, ok := q.Items[1].Expr.(*Call)
	if !ok {
		t.Fatalf("item 1 should be a call: %T", q.Items[1].Expr)
	}
	if call.Name != "findCEO" || call.Field != "CEO" || len(call.Args) != 1 {
		t.Errorf("call = %v", call)
	}
	call2 := q.Items[2].Expr.(*Call)
	if call2.Field != "Phone" {
		t.Errorf("item 2 field = %q", call2.Field)
	}
	if len(q.From) != 1 || q.From[0].Name != "companies" {
		t.Errorf("from = %v", q.From)
	}
	if q.Where != nil || q.Limit != -1 {
		t.Error("query 1 has no WHERE or LIMIT")
	}
}

func TestParsePaperQuery2(t *testing.T) {
	q, err := ParseQuery(query2)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 2 {
		t.Fatalf("from = %v", q.From)
	}
	call, ok := q.Where.(*Call)
	if !ok {
		t.Fatalf("where should be a call: %T", q.Where)
	}
	if call.Name != "samePerson" || len(call.Args) != 2 {
		t.Errorf("where call = %v", call)
	}
	arg0 := call.Args[0].(*ColumnRef)
	if arg0.Table != "celebrities" || arg0.Name != "image" {
		t.Errorf("arg0 = %v", arg0)
	}
}

func TestParsePaperTask1(t *testing.T) {
	task, err := ParseTaskDef(task1)
	if err != nil {
		t.Fatal(err)
	}
	if task.Name != "findCEO" || task.Type != TaskQuestion {
		t.Errorf("task = %v %v", task.Name, task.Type)
	}
	if len(task.Params) != 1 || task.Params[0].Name != "companyName" || task.Params[0].Kind != relation.KindString || task.Params[0].IsList {
		t.Errorf("params = %v", task.Params)
	}
	if !task.ReturnsTuple() || len(task.Returns) != 2 {
		t.Errorf("returns = %v", task.Returns)
	}
	if task.Returns[0].Name != "CEO" || task.Returns[1].Name != "Phone" {
		t.Errorf("return names = %v", task.Returns)
	}
	if !strings.Contains(task.Text, "%s") || len(task.TextArgs) != 1 || task.TextArgs[0] != "companyName" {
		t.Errorf("text = %q args=%v", task.Text, task.TextArgs)
	}
	if task.Response.Kind != ResponseForm || len(task.Response.Fields) != 2 {
		t.Errorf("response = %v", task.Response)
	}
	if task.Response.Fields[0].Label != "CEO" || task.Response.Fields[0].Kind != relation.KindString {
		t.Errorf("field 0 = %v", task.Response.Fields[0])
	}
}

func TestParsePaperTask2(t *testing.T) {
	task, err := ParseTaskDef(task2)
	if err != nil {
		t.Fatal(err)
	}
	if task.Type != TaskJoinPredicate {
		t.Errorf("type = %v", task.Type)
	}
	if len(task.Params) != 2 || !task.Params[0].IsList || task.Params[0].Kind != relation.KindImage {
		t.Errorf("params = %v", task.Params)
	}
	if task.ReturnsTuple() || task.ReturnKind() != relation.KindBool {
		t.Errorf("returns = %v", task.Returns)
	}
	r := task.Response
	if r.Kind != ResponseJoinColumns || r.LeftLabel != "Celebrity" || r.RightParam != "spotted" {
		t.Errorf("response = %+v", r)
	}
}

func TestParseScriptMixed(t *testing.T) {
	src := task1 + "\n" + task2 + "\n" + query1 + ";\n" + query2
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Tasks) != 2 || len(script.Queries) != 2 {
		t.Fatalf("script = %d tasks %d queries", len(script.Tasks), len(script.Queries))
	}
	if _, ok := script.Task("FINDCEO"); !ok {
		t.Error("case-insensitive task lookup failed")
	}
	if _, ok := script.Task("nope"); ok {
		t.Error("missing task lookup should fail")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q, err := ParseQuery("SELECT a FROM t WHERE a = 1 OR b = 2 AND NOT c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", q.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %v", or.R)
	}
	if _, ok := and.R.(*Unary); !ok {
		t.Fatalf("right of AND should be NOT: %v", and.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q, err := ParseQuery("SELECT a FROM t WHERE a + 2 * 3 = 7")
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(*Binary)
	add := cmp.L.(*Binary)
	if add.Op != "+" {
		t.Fatalf("left = %v", cmp.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("mul should bind tighter: %v", add.R)
	}
}

func TestParseSelectFeatures(t *testing.T) {
	q, err := ParseQuery(`SELECT DISTINCT t.a AS x, rate(t.b) score FROM items t WHERE rate(t.b) > 3 GROUP BY t.a ORDER BY score DESC, t.a LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT lost")
	}
	if q.Items[0].Alias != "x" || q.Items[1].Alias != "score" {
		t.Errorf("aliases = %v %v", q.Items[0].Alias, q.Items[1].Alias)
	}
	if q.From[0].EffectiveAlias() != "t" {
		t.Errorf("alias = %q", q.From[0].EffectiveAlias())
	}
	if len(q.GroupBy) != 1 || len(q.OrderBy) != 2 {
		t.Errorf("groupby=%d orderby=%d", len(q.GroupBy), len(q.OrderBy))
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Error("DESC flags wrong")
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseStar(t *testing.T) {
	q, err := ParseQuery("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Items[0].Expr.(*Star); !ok {
		t.Fatalf("item = %T", q.Items[0].Expr)
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := ParseQuery("SELECT a FROM t WHERE a = 'x' AND b = 2.5 AND c = TRUE AND d = FALSE AND e = NULL AND f = -3")
	if err != nil {
		t.Fatal(err)
	}
	var lits []relation.Value
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Unary:
			walk(v.X)
		case *Literal:
			lits = append(lits, v.Value)
		}
	}
	walk(q.Where)
	kinds := make([]relation.Kind, len(lits))
	for i, l := range lits {
		kinds[i] = l.Kind()
	}
	want := []relation.Kind{relation.KindString, relation.KindFloat, relation.KindBool, relation.KindBool, relation.KindNull, relation.KindInt}
	if len(kinds) != len(want) {
		t.Fatalf("lits = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("lit %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestStringEscapes(t *testing.T) {
	q, err := ParseQuery(`SELECT a FROM t WHERE a = 'it''s' AND b = "q\"q" AND c = 'n\nn'`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	// The printer must re-escape the embedded quote ('' form) so its
	// output reparses; a bare it's inside '...' would not.
	if !strings.Contains(s, "it''s") {
		t.Errorf("embedded quote not re-escaped: %s", s)
	}
	again, err := ParseQuery(s)
	if err != nil {
		t.Fatalf("String() output does not reparse: %s: %v", s, err)
	}
	if again.String() != s {
		t.Errorf("round-trip not stable:\n  %s\n  %s", s, again.String())
	}
}

func TestTaskTuningFields(t *testing.T) {
	src := `
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Price: 2
  Assignments: 5
  Batch: 10
`
	task, err := ParseTaskDef(src)
	if err != nil {
		t.Fatal(err)
	}
	if task.PriceCents != 2 || task.Assignments != 5 || task.BatchSize != 10 {
		t.Errorf("tuning = %d %d %d", task.PriceCents, task.Assignments, task.BatchSize)
	}
	if task.Response.Kind != ResponseYesNo {
		t.Errorf("response = %v", task.Response.Kind)
	}
}

func TestTaskShareField(t *testing.T) {
	mk := func(val string) (*TaskDef, error) {
		return ParseTaskDef(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Share: ` + val + `
`)
	}
	for val, want := range map[string]bool{"Yes": true, "true": true, "On": true, "No": false, "false": false, "Off": false} {
		task, err := mk(val)
		if err != nil {
			t.Fatalf("Share: %s: %v", val, err)
		}
		if task.Share != want {
			t.Errorf("Share: %s parsed as %v", val, task.Share)
		}
	}
	if _, err := mk("Sometimes"); err == nil {
		t.Error("bad Share value accepted")
	}
}

func TestTaskCompareGroupSizeFields(t *testing.T) {
	task, err := ParseTaskDef(`
TASK rateIt(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate. %s", img
  Response: Rating(1, 9)
  Compare: orderIt
  GroupSize: 6
`)
	if err != nil {
		t.Fatal(err)
	}
	if task.CompareTask != "orderIt" {
		t.Errorf("CompareTask = %q", task.CompareTask)
	}
	if task.GroupSize != 6 {
		t.Errorf("GroupSize = %d", task.GroupSize)
	}

	// A Rank task with the Order response (note: ORDER lexes as a
	// keyword and must still parse as a response kind).
	task, err = ParseTaskDef(`
TASK orderIt(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order the items."
  Response: Order
  GroupSize: 5
`)
	if err != nil {
		t.Fatal(err)
	}
	if task.Response.Kind != ResponseOrder || task.GroupSize != 5 {
		t.Errorf("task = %+v", task)
	}

	// Compare is rating-only.
	if _, err := ParseTaskDef(`
TASK isCat(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Cat? %s", img
  Response: YesNo
  Compare: orderIt
`); err == nil {
		t.Error("Compare on a Filter task should be rejected")
	}

	// GroupSize needs a ranking surface and at least two items.
	if _, err := ParseTaskDef(`
TASK isCat(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Cat? %s", img
  Response: YesNo
  GroupSize: 5
`); err == nil {
		t.Error("GroupSize on a Filter task should be rejected")
	}
	if _, err := ParseTaskDef(`
TASK orderIt(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order."
  Response: Order
  GroupSize: 1
`); err == nil {
		t.Error("GroupSize 1 should be rejected")
	}

	// Rank tasks must collect through the Order response and return
	// the Int position.
	if _, err := ParseTaskDef(`
TASK orderIt(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order."
  Response: YesNo
`); err == nil {
		t.Error("Rank task without an Order response should be rejected")
	}
	if _, err := ParseTaskDef(`
TASK orderIt(Image img)
RETURNS Bool:
  TaskType: Rank
  Text: "Order."
  Response: Order
`); err == nil {
		t.Error("Rank task returning Bool should be rejected")
	}
}

func TestTaskPreFilterField(t *testing.T) {
	src := `
TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
  PreFilter: isPerson
`
	task, err := ParseTaskDef(src)
	if err != nil {
		t.Fatal(err)
	}
	if task.PreFilterTask != "isPerson" {
		t.Errorf("PreFilterTask = %q", task.PreFilterTask)
	}
	// PreFilter is join-only: a Filter task declaring one is rejected.
	bad := `
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  PreFilter: isPhoto
`
	if _, err := ParseTaskDef(bad); err == nil {
		t.Error("PreFilter on a Filter task should be rejected")
	}
}

func TestTaskRatingAndChoice(t *testing.T) {
	src := `
TASK squareScore(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "Rate how square this is: %s", pic
  Response: Rating(1, 5)

TASK sentiment(String text)
RETURNS String:
  TaskType: Question
  Text: "What is the sentiment of: %s", text
  Response: Choice("positive", "negative", "neutral")
`
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := script.Task("squareScore")
	if rt.Response.ScaleMin != 1 || rt.Response.ScaleMax != 5 {
		t.Errorf("scale = %d..%d", rt.Response.ScaleMin, rt.Response.ScaleMax)
	}
	ct, _ := script.Task("sentiment")
	if len(ct.Response.Options) != 3 {
		t.Errorf("options = %v", ct.Response.Options)
	}
}

func TestTaskDefaultRatingScale(t *testing.T) {
	src := `
TASK score(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "Rate %s", pic
  Response: Rating
`
	task, err := ParseTaskDef(src)
	if err != nil {
		t.Fatal(err)
	}
	if task.Response.ScaleMin != 1 || task.Response.ScaleMax != 7 {
		t.Errorf("default scale = %d..%d", task.Response.ScaleMin, task.Response.ScaleMax)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                          // no statement
		"SELECT",                    // missing items
		"SELECT a",                  // missing FROM
		"SELECT a FROM",             // missing table
		"SELECT a FROM t WHERE",     // missing expr
		"SELECT a FROM t LIMIT x",   // bad limit
		"SELECT a FROM t GROUP a",   // missing BY
		"SELECT a FROM t ORDER a",   // missing BY
		"SELECT a FROM t; SELECT",   // trailing garbage via ParseQuery
		"SELECT f(a FROM t",         // unclosed call
		"SELECT a FROM t WHERE a >", // dangling operator
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE @",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q): expected error", src)
		}
	}
	badTasks := []string{
		"TASK t() RETURNS Bool:",                                                                                          // missing TaskType
		"TASK t(String x) RETURNS Bool:\nTaskType: Widget",                                                                // bad type
		"TASK t(Widget x) RETURNS Bool:\nTaskType: Filter",                                                                // bad param type
		"TASK t(String x) RETURNS Widget:\nTaskType: Question",                                                            // bad return
		"TASK t(String x) RETURNS Bool:\nTaskType: Filter\nText: \"%s %s\", x",                                            // placeholder arity
		"TASK t(String x) RETURNS Bool:\nTaskType: Filter\nText: \"a\", y",                                                // unknown text arg
		"TASK t(String x) RETURNS String:\nTaskType: Filter\nText: \"a\"",                                                 // filter must return bool
		"TASK t(String x) RETURNS Bool:\nTaskType: JoinPredicate\nResponse: Form((\"a\", String))",                        // join needs joincolumns
		"TASK t(String x) RETURNS Bool:\nTaskType: Filter\nResponse: Choice(\"only\")",                                    // one-option choice
		"TASK t(String x) RETURNS Int:\nTaskType: Rating\nResponse: Rating(5, 5)",                                         // empty scale
		"TASK t(String x) RETURNS Bool:\nTaskType: Filter\nBogus: 3",                                                      // unknown field
		"TASK t(Image[] a, Image[] b) RETURNS Bool:\nTaskType: JoinPredicate\nResponse: JoinColumns(\"L\", a, \"R\", zz)", // unknown param
	}
	for _, src := range badTasks {
		if _, err := ParseTaskDef(src); err == nil {
			t.Errorf("ParseTaskDef(%q): expected error", src)
		}
	}
}

func TestSelectStringRoundTrip(t *testing.T) {
	srcs := []string{
		query1, query2,
		"SELECT DISTINCT a, b AS c FROM t, u WHERE a = 1 GROUP BY a ORDER BY b DESC LIMIT 3",
	}
	for _, src := range srcs {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", q.String(), q2.String())
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := ParseQuery("SELECT a FROM t WHERE\n  a = @")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

func TestCommentsSkipped(t *testing.T) {
	q, err := ParseQuery("-- leading comment\nSELECT a -- trailing\nFROM t # hash comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 1 {
		t.Fatalf("items = %d", len(q.Items))
	}
}

func TestTaskBackendField(t *testing.T) {
	task, err := ParseTaskDef(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Backend: llm
`)
	if err != nil {
		t.Fatal(err)
	}
	if task.Backend != "llm" {
		t.Errorf("Backend = %q", task.Backend)
	}
	if _, err := ParseTaskDef(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Backend: 7
`); err == nil {
		t.Error("non-identifier Backend accepted")
	}
}
