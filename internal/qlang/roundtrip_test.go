package qlang

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// randExpr builds a random well-formed expression of bounded depth.
// logical controls whether NOT/AND/OR may appear at this position: the
// grammar only admits them above the comparison level, so arithmetic
// and call-argument operands are generated non-logical (matching what
// the surface syntax can express without extra parentheses).
func randExpr(r *rand.Rand, depth int, cols []string, logical bool) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &Literal{Value: relation.NewInt(int64(r.Intn(100)))}
		case 1:
			return &Literal{Value: relation.NewString(randIdent(r))}
		case 2:
			return &Literal{Value: relation.NewBool(r.Intn(2) == 0)}
		default:
			return &ColumnRef{Name: cols[r.Intn(len(cols))]}
		}
	}
	top := 6
	if !logical {
		top = 4 // exclude the logical cases below
	}
	switch r.Intn(top) {
	case 0:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return &Binary{Op: ops[r.Intn(len(ops))],
			L: randExpr(r, depth-1, cols, false), R: randExpr(r, depth-1, cols, false)}
	case 1:
		ops := []string{"+", "-", "*", "/"}
		return &Binary{Op: ops[r.Intn(len(ops))],
			L: randExpr(r, depth-1, cols, false), R: randExpr(r, depth-1, cols, false)}
	case 2:
		nArgs := r.Intn(3)
		call := &Call{Name: "udf" + randIdent(r)}
		for i := 0; i < nArgs; i++ {
			call.Args = append(call.Args, randExpr(r, depth-1, cols, false))
		}
		if r.Intn(3) == 0 {
			call.Field = "F" + randIdent(r)
		}
		return call
	case 3:
		return &ColumnRef{Table: "t", Name: cols[r.Intn(len(cols))]}
	case 4:
		ops := []string{"AND", "OR"}
		return &Binary{Op: ops[r.Intn(len(ops))],
			L: randExpr(r, depth-1, cols, true), R: randExpr(r, depth-1, cols, true)}
	default:
		return &Unary{Op: "NOT", X: randExpr(r, depth-1, cols, true)}
	}
}

func randIdent(r *rand.Rand) string {
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// randStmt builds a random well-formed SELECT.
func randStmt(r *rand.Rand) *SelectStmt {
	cols := []string{"a", "b", "c"}
	s := &SelectStmt{Limit: -1, Distinct: r.Intn(3) == 0}
	nItems := 1 + r.Intn(3)
	for i := 0; i < nItems; i++ {
		item := SelectItem{Expr: randExpr(r, 2, cols, true)}
		if r.Intn(3) == 0 {
			item.Alias = "x" + randIdent(r)
		}
		s.Items = append(s.Items, item)
	}
	s.From = []TableRef{{Name: "t"}}
	if r.Intn(2) == 0 {
		s.From = append(s.From, TableRef{Name: "u", Alias: "uu"})
	}
	if r.Intn(2) == 0 {
		s.Where = randExpr(r, 3, cols, true)
	}
	if r.Intn(4) == 0 {
		s.GroupBy = []Expr{randExpr(r, 1, cols, false)}
	}
	if r.Intn(3) == 0 {
		s.OrderBy = []OrderItem{{Expr: randExpr(r, 1, cols, false), Desc: r.Intn(2) == 0}}
	}
	if r.Intn(4) == 0 {
		s.Limit = r.Intn(50)
	}
	return s
}

// Property: rendering any well-formed statement and re-parsing it gives
// a statement that renders identically (parse∘print is a fixpoint).
func TestParserRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stmt := randStmt(r)
		text := stmt.String()
		parsed, err := ParseQuery(text)
		if err != nil {
			t.Logf("seed %d: %q failed to parse: %v", seed, text, err)
			return false
		}
		if parsed.String() != text {
			t.Logf("seed %d: fixpoint broken:\n  %s\n  %s", seed, text, parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the lexer never panics and always terminates on arbitrary
// byte strings.
func TestLexerTotalProperty(t *testing.T) {
	f := func(input string) bool {
		toks, err := Tokenize(input)
		if err != nil {
			return true // rejecting is fine; crashing is not
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}
