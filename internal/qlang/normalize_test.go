package qlang

import (
	"testing"

	"repro/internal/relation"
)

func TestNormalizeQueryStripsLiterals(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{`SELECT v FROM t WHERE v < 10`, `SELECT v FROM t WHERE v < 999`, true},
		{`SELECT v FROM t WHERE name = 'alice'`, `SELECT v FROM t WHERE name = "bob"`, true},
		{`SELECT v FROM t WHERE v < 1.5`, `SELECT v FROM t WHERE v < 2.75`, true},
		// Int vs float literals are distinct placeholder classes.
		{`SELECT v FROM t WHERE v < 10`, `SELECT v FROM t WHERE v < 1.5`, false},
		// LIMIT operand is part of the key, not a placeholder.
		{`SELECT v FROM t LIMIT 5`, `SELECT v FROM t LIMIT 6`, false},
		{`SELECT v FROM t LIMIT 5`, `SELECT v FROM t LIMIT 5`, true},
		// Boolean keywords are not stripped.
		{`SELECT v FROM t WHERE ok = TRUE`, `SELECT v FROM t WHERE ok = FALSE`, false},
		// Case and whitespace don't matter; structure does.
		{`select V  from T where V<3`, `SELECT V FROM T WHERE V < 7`, true},
		{`SELECT v FROM t WHERE v < 3`, `SELECT v FROM t WHERE v > 3`, false},
	}
	for _, c := range cases {
		na, err := NormalizeQuery(c.a)
		if err != nil {
			t.Fatalf("%q: %v", c.a, err)
		}
		nb, err := NormalizeQuery(c.b)
		if err != nil {
			t.Fatalf("%q: %v", c.b, err)
		}
		if (na == nb) != c.same {
			t.Errorf("NormalizeQuery(%q)=%q vs NormalizeQuery(%q)=%q; want same=%v", c.a, na, c.b, nb, c.same)
		}
	}
}

func TestNormalizeQueryShape(t *testing.T) {
	got, err := NormalizeQuery(`SELECT name FROM t WHERE age > 21 AND city = 'nyc' ORDER BY name LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT name FROM t WHERE age > ?i AND city = ?s ORDER BY name LIMIT 3`
	if got != want {
		t.Errorf("normalized = %q, want %q", got, want)
	}
}

func TestCollectStmtLiteralsLockstep(t *testing.T) {
	const a = `SELECT v, 7 FROM t WHERE v < 10 AND name = 'x' ORDER BY v LIMIT 2`
	const b = `SELECT v, 9 FROM t WHERE v < 42 AND name = 'y' ORDER BY v LIMIT 2`
	sa, err := ParseQuery(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseQuery(b)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := CollectStmtLiterals(sa), CollectStmtLiterals(sb)
	if len(la) != 3 || len(lb) != 3 {
		t.Fatalf("literal counts = %d, %d; want 3, 3", len(la), len(lb))
	}
	// Same fingerprint implies positional alignment: slot i in one maps
	// to slot i in the other.
	wantA := []string{"7", "10", "x"}
	wantB := []string{"9", "42", "y"}
	for i := range la {
		if got := la[i].Value.String(); got != wantA[i] {
			t.Errorf("a literal[%d] = %s, want %s", i, got, wantA[i])
		}
		if got := lb[i].Value.String(); got != wantB[i] {
			t.Errorf("b literal[%d] = %s, want %s", i, got, wantB[i])
		}
	}
}

func TestCloneExprSubstituteAndRecord(t *testing.T) {
	stmt, err := ParseQuery(`SELECT v FROM t WHERE v < 10`)
	if err != nil {
		t.Fatal(err)
	}
	lits := CollectStmtLiterals(stmt)
	if len(lits) != 1 {
		t.Fatalf("literals = %d, want 1", len(lits))
	}

	// Recording clone: the copy is a distinct node with the same value.
	rec := map[*Literal]*Literal{}
	clone := CloneExpr(stmt.Where, nil, rec)
	cl, ok := rec[lits[0]]
	if !ok {
		t.Fatal("clone did not record the literal slot")
	}
	if cl == lits[0] {
		t.Fatal("recorded literal aliases the original")
	}
	if cl.Value.String() != "10" {
		t.Errorf("cloned literal = %s, want 10", cl.Value.String())
	}
	if clone.String() != stmt.Where.String() {
		t.Errorf("clone renders %q, want %q", clone.String(), stmt.Where.String())
	}

	// Substituting clone: the slot is replaced by a new expression.
	repl := &Literal{Value: relation.NewInt(99)}
	sub := CloneExpr(stmt.Where, map[*Literal]Expr{lits[0]: repl}, nil)
	if want := "(v < 99)"; sub.String() != want {
		t.Errorf("substituted clone renders %q, want %q", sub.String(), want)
	}
	// Original untouched.
	if stmt.Where.String() != "(v < 10)" {
		t.Errorf("original mutated to %q", stmt.Where.String())
	}
}
