package qlang

import "strings"

// NormalizeQuery strips literal values from a query's token stream,
// producing a fingerprint under which queries differing only in
// constants collide. Integer literals become "?i", float literals "?f",
// and string literals "?s"; everything else — identifiers, keywords,
// punctuation — is kept verbatim (keywords upper-cased by the lexer) and
// joined with single spaces.
//
// Two exceptions keep the fingerprint honest as a plan-cache key:
//
//   - The number following LIMIT stays verbatim. SelectStmt carries the
//     limit as a plain int, not a Literal expression, so a cached plan
//     cannot be re-parameterized over it; different limits must map to
//     different cache entries.
//   - TRUE/FALSE/NULL are keywords, not literal tokens, and are kept —
//     boolean constants routinely flip which plan shape is sensible.
func NormalizeQuery(src string) (string, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	prevLimit := false
	for i, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch {
		case tok.Kind == TokNumber && !prevLimit:
			if strings.ContainsRune(tok.Text, '.') {
				sb.WriteString("?f")
			} else {
				sb.WriteString("?i")
			}
		case tok.Kind == TokString:
			sb.WriteString("?s")
		default:
			sb.WriteString(tok.Text)
		}
		prevLimit = tok.Kind == TokKeyword && tok.Text == "LIMIT"
	}
	return sb.String(), nil
}

// CollectStmtLiterals walks a parsed statement in a fixed order — select
// items, WHERE, GROUP BY, ORDER BY — and returns every *Literal it
// contains. Two statements with the same NormalizeQuery fingerprint have
// isomorphic ASTs, so their literal lists align index-for-index; the
// plan cache relies on that to pair a cached template's literal slots
// with a fresh statement's values.
func CollectStmtLiterals(stmt *SelectStmt) []*Literal {
	var out []*Literal
	for _, it := range stmt.Items {
		out = collectExprLiterals(it.Expr, out)
	}
	out = collectExprLiterals(stmt.Where, out)
	for _, e := range stmt.GroupBy {
		out = collectExprLiterals(e, out)
	}
	for _, o := range stmt.OrderBy {
		out = collectExprLiterals(o.Expr, out)
	}
	return out
}

func collectExprLiterals(e Expr, out []*Literal) []*Literal {
	switch v := e.(type) {
	case nil:
		return out
	case *Literal:
		return append(out, v)
	case *Binary:
		out = collectExprLiterals(v.L, out)
		return collectExprLiterals(v.R, out)
	case *Unary:
		return collectExprLiterals(v.X, out)
	case *Call:
		for _, a := range v.Args {
			out = collectExprLiterals(a, out)
		}
		return out
	default: // *ColumnRef, *Star carry no literals
		return out
	}
}

// CloneExpr deep-copies an expression tree. When sub maps a source
// *Literal to a replacement expression, the replacement is used in place
// of a copy. When rec is non-nil, every copied literal is recorded as
// rec[original] = copy so callers can locate a clone's literal slots.
func CloneExpr(e Expr, sub map[*Literal]Expr, rec map[*Literal]*Literal) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *Literal:
		if r, ok := sub[v]; ok {
			return r
		}
		c := &Literal{Value: v.Value}
		if rec != nil {
			rec[v] = c
		}
		return c
	case *ColumnRef:
		c := *v
		return &c
	case *Star:
		return &Star{}
	case *Binary:
		return &Binary{Op: v.Op, L: CloneExpr(v.L, sub, rec), R: CloneExpr(v.R, sub, rec)}
	case *Unary:
		return &Unary{Op: v.Op, X: CloneExpr(v.X, sub, rec)}
	case *Call:
		c := &Call{Name: v.Name, Field: v.Field}
		if v.Args != nil {
			c.Args = make([]Expr, len(v.Args))
			for i, a := range v.Args {
				c.Args[i] = CloneExpr(a, sub, rec)
			}
		}
		return c
	default:
		return e
	}
}
