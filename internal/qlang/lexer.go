// Package qlang implements Qurk's query language: a SQL dialect with
// human-powered UDFs (paper §3, Query 1 and Query 2) and the TASK
// definition language that describes how a UDF is rendered as a HIT
// (Task 1 and Task 2).
package qlang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokPunct
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokPunct:
		return "punctuation"
	default:
		return "token"
	}
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; strings are unquoted
	Line int
	Col  int
}

// keywords recognized case-insensitively in query and task bodies.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "ORDER": true, "GROUP": true, "BY": true, "LIMIT": true,
	"ASC": true, "DESC": true, "AS": true, "TASK": true, "RETURNS": true,
	"TRUE": true, "FALSE": true, "NULL": true, "POSSIBLY": true,
	"DISTINCT": true, "ON": true, "JOIN": true, "IS": true,
}

// Lexer tokenizes qlang source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a lexing or parsing error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("qlang: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(format string, args ...interface{}) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		// Allow [] suffix for list types like Image[].
		if l.peek() == '[' && l.peekAt(1) == ']' {
			l.advance()
			l.advance()
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			tok.Kind, tok.Text = TokKeyword, upper
		} else {
			tok.Kind, tok.Text = TokIdent, text
		}
		return tok, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (l.peek() >= '0' && l.peek() <= '9' || l.peek() == '.') {
			l.advance()
		}
		tok.Kind, tok.Text = TokNumber, l.src[start:l.pos]
		return tok, nil
	case c == '\'' || c == '"':
		quote := c
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, l.errf("unterminated string")
			}
			ch := l.advance()
			if ch == quote {
				// Doubled quote is an escaped quote, SQL style.
				if l.peek() == quote {
					l.advance()
					b.WriteByte(quote)
					continue
				}
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '\'', '"':
					b.WriteByte(esc)
				default:
					b.WriteByte('\\')
					b.WriteByte(esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		tok.Kind, tok.Text = TokString, b.String()
		return tok, nil
	default:
		// Multi-byte punctuation first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "!=", "<=", ">=", "<>":
			l.advance()
			l.advance()
			if two == "<>" {
				two = "!="
			}
			tok.Kind, tok.Text = TokPunct, two
			return tok, nil
		}
		switch c {
		case ',', '.', '(', ')', '*', '=', '<', '>', ':', ';', '%', '+', '-', '/':
			l.advance()
			tok.Kind, tok.Text = TokPunct, string(c)
			return tok, nil
		}
		return tok, l.errf("unexpected character %q", string(rune(c)))
	}
}

// Tokenize lexes the entire input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
