package qlang

import (
	"strings"
	"testing"
)

// fuzzSeeds mixes the valid statements the parser tests exercise with
// the malformed ones they expect to fail, so the fuzzer starts from both
// sides of the grammar.
var fuzzSeeds = []string{
	"SELECT * FROM t",
	"SELECT a FROM t WHERE a = 1 OR b = 2 AND NOT c = 3",
	"SELECT a FROM t WHERE a + 2 * 3 = 7",
	"SELECT DISTINCT t.a AS x, rate(t.b) score FROM items t WHERE rate(t.b) > 3 GROUP BY t.a ORDER BY score DESC, t.a LIMIT 10",
	"SELECT a FROM t WHERE a = 'x' AND b = 2.5 AND c = TRUE AND d = FALSE AND e = NULL AND f = -3",
	"SELECT a FROM t WHERE a = 'it''s'",
	"SELECT companyName, findCEO(companyName).CEO FROM companies",
	"SELECT celebrities.name, spottedstars.id FROM celebrities JOIN spottedstars ON samePerson(celebrities.image, spottedstars.image)",
	"SELECT a FROM t WHERE POSSIBLY isCat(img) AND isCat(img)",
	"SELECT a FROM t ORDER BY rank(img)",
	// Task definitions (full-script path).
	"TASK isCat(Image photo)\nRETURNS Bool:\n  TaskType: Filter\n  Text: \"Is this a cat? %s\", photo\n  Response: YesNo\n",
	"TASK samePerson(Image[] celebs, Image[] spotted)\nRETURNS Bool:\n  TaskType: JoinPredicate\n  Text: \"Match the pictures.\"\n  Response: JoinColumns(\"Celebrity\", celebs, \"Spotted Star\", spotted)\n",
	"TASK rateSquare(Image pic)\nRETURNS Int:\n  TaskType: Rating\n  Text: \"Rate %s\", pic\n  Response: Rating(1, 5)\n",
	// Malformed inputs the parser must reject without panicking.
	"SELECT a FROM",
	"SELECT f(a FROM t",
	"SELECT 'unterminated FROM t",
	"SELECT a FROM t WHERE @",
	"TASK (",
	"",
	";;",
}

// FuzzParse asserts two parser invariants over arbitrary input:
//
//  1. Parse never panics, whatever the bytes.
//  2. For accepted scripts, every query statement round-trips through
//     String(): parse → String → reparse is a fixed point (the same
//     property roundtrip_test.go checks over generated ASTs).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		for _, stmt := range script.Queries {
			text := stmt.String()
			again, err := ParseQuery(text)
			if err != nil {
				t.Fatalf("String() of accepted query does not reparse:\n  src: %q\n  str: %q\n  err: %v", src, text, err)
			}
			if got := again.String(); got != text {
				t.Fatalf("String() not a fixed point:\n  first:  %q\n  second: %q", text, got)
			}
		}
		// Accepted task definitions must at least be internally
		// consistent enough to re-register.
		for _, def := range script.Tasks {
			if strings.TrimSpace(def.Name) == "" {
				t.Fatalf("accepted task with empty name from %q", src)
			}
		}
	})
}
