package qlang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// NewParser tokenizes src and returns a parser.
func NewParser(src string) (*Parser, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// Parse parses a whole script of TASK definitions and SELECT queries.
func Parse(src string) (*Script, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	script := &Script{}
	for {
		for p.acceptPunct(";") {
		}
		t := p.peek()
		switch {
		case t.Kind == TokEOF:
			return script, nil
		case t.Kind == TokKeyword && t.Text == "TASK":
			task, err := p.parseTask()
			if err != nil {
				return nil, err
			}
			script.Tasks = append(script.Tasks, task)
		case t.Kind == TokKeyword && t.Text == "SELECT":
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			script.Queries = append(script.Queries, q)
		default:
			return nil, p.errf("expected TASK or SELECT, got %s %q", t.Kind, t.Text)
		}
	}
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(src string) (*SelectStmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if t := p.peek(); t.Kind != TokEOF {
		return nil, p.errf("trailing input after query: %q", t.Text)
	}
	return q, nil
}

// ParseTaskDef parses a single TASK definition.
func ParseTaskDef(src string) (*TaskDef, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	task, err := p.parseTask()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, p.errf("trailing input after task: %q", t.Text)
	}
	return task, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) peekAt(off int) Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) acceptPunct(s string) bool {
	if t := p.peek(); t.Kind == TokPunct && t.Text == s {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, got %s %q", t.Kind, t.Text)
	}
	p.next()
	return t.Text, nil
}

func (p *Parser) expectString() (string, error) {
	t := p.peek()
	if t.Kind != TokString {
		return "", p.errf("expected string literal, got %s %q", t.Kind, t.Text)
	}
	p.next()
	return t.Text, nil
}

func (p *Parser) expectNumber() (string, error) {
	t := p.peek()
	neg := false
	if t.Kind == TokPunct && t.Text == "-" {
		p.next()
		neg = true
		t = p.peek()
	}
	if t.Kind != TokNumber {
		return "", p.errf("expected number, got %s %q", t.Kind, t.Text)
	}
	p.next()
	if neg {
		return "-" + t.Text, nil
	}
	return t.Text, nil
}

// --- SELECT parsing ---

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &SelectStmt{Limit: -1}
	q.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		if t := p.peek(); t.Kind == TokIdent {
			ref.Alias = t.Text
			p.next()
		} else if p.acceptKeyword("AS") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		}
		q.From = append(q.From, ref)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		numText, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(numText)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", numText)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptPunct("*") {
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent {
		item.Alias = t.Text
		p.next()
	}
	return item, nil
}

// --- expression parsing (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	// POSSIBLY marks an approximate predicate (CIDR companion paper):
	// the engine evaluates it with a single assignment instead of full
	// redundancy, trading accuracy for cost — useful as a cheap screen
	// before expensive operators.
	if p.acceptKeyword("POSSIBLY") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "POSSIBLY", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.acceptPunct(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case p.acceptPunct("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.acceptPunct("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Value: relation.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Literal{Value: relation.NewInt(i)}, nil
	case t.Kind == TokString:
		p.next()
		return &Literal{Value: relation.NewString(t.Text)}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.next()
		return &Literal{Value: relation.NewBool(true)}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.next()
		return &Literal{Value: relation.NewBool(false)}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &Literal{Value: relation.Null}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}

// parseIdentExpr handles column references, qualified references, and
// UDF calls with optional .Field projection.
func (p *Parser) parseIdentExpr() (Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("(") {
		call := &Call{Name: name}
		if !p.acceptPunct(")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		if p.acceptPunct(".") {
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			call.Field = field
		}
		return call, nil
	}
	if p.acceptPunct(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

// --- TASK parsing ---

func (p *Parser) parseTask() (*TaskDef, error) {
	if err := p.expectKeyword("TASK"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	task := &TaskDef{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.acceptPunct(")") {
		for {
			param, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			task.Params = append(task.Params, param)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("RETURNS"); err != nil {
		return nil, err
	}
	if p.acceptPunct("(") {
		for {
			typeName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := relation.ParseKind(typeName)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			fieldName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			task.Returns = append(task.Returns, ReturnField{Name: fieldName, Kind: kind})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	} else {
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := relation.ParseKind(typeName)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		task.Returns = []ReturnField{{Kind: kind}}
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	seenType := false
	for {
		t := p.peek()
		if t.Kind != TokIdent || p.peekAt(1).Text != ":" {
			break
		}
		field := t.Text
		p.next() // field name
		p.next() // colon
		switch strings.ToLower(field) {
		case "tasktype":
			typeName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			tt, err := ParseTaskType(typeName)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			task.Type = tt
			seenType = true
		case "text":
			text, err := p.expectString()
			if err != nil {
				return nil, err
			}
			task.Text = text
			for p.acceptPunct(",") {
				arg, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if _, ok := task.Param(arg); !ok {
					return nil, p.errf("Text argument %q is not a task parameter", arg)
				}
				task.TextArgs = append(task.TextArgs, arg)
			}
		case "response":
			resp, err := p.parseResponse(task)
			if err != nil {
				return nil, err
			}
			task.Response = resp
		case "price":
			numText, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			cents, err := strconv.ParseInt(numText, 10, 64)
			if err != nil || cents < 0 {
				return nil, p.errf("bad Price %q (cents)", numText)
			}
			task.PriceCents = cents
		case "assignments":
			numText, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(numText)
			if err != nil || n < 1 {
				return nil, p.errf("bad Assignments %q", numText)
			}
			task.Assignments = n
		case "batch":
			numText, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(numText)
			if err != nil || n < 1 {
				return nil, p.errf("bad Batch %q", numText)
			}
			task.BatchSize = n
		case "prefilter":
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			task.PreFilterTask = name
		case "compare":
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			task.CompareTask = name
		case "backend":
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			task.Backend = name
		case "minassignments":
			numText, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(numText)
			if err != nil || n < 1 {
				return nil, p.errf("bad MinAssignments %q", numText)
			}
			task.MinAssignments = n
		case "infer":
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			task.Infer = strings.ToLower(name)
		case "groupsize":
			numText, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(numText)
			if err != nil || n < 2 {
				return nil, p.errf("bad GroupSize %q (need ≥ 2)", numText)
			}
			task.GroupSize = n
		case "share":
			// Yes/No read as identifiers, but true/false/on are SQL
			// keywords to the lexer — accept either token kind here.
			var name string
			if t := p.peek(); t.Kind == TokKeyword {
				p.next()
				name = t.Text
			} else {
				var err error
				name, err = p.expectIdent()
				if err != nil {
					return nil, err
				}
			}
			switch strings.ToLower(name) {
			case "yes", "true", "on":
				task.Share = true
			case "no", "false", "off":
				task.Share = false
			default:
				return nil, p.errf("bad Share %q (want Yes or No)", name)
			}
		default:
			return nil, p.errf("unknown task field %q", field)
		}
	}
	if !seenType {
		return nil, p.errf("task %s is missing TaskType", task.Name)
	}
	if err := validateTask(task); err != nil {
		return nil, p.errf("%v", err)
	}
	return task, nil
}

func (p *Parser) parseParam() (Param, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return Param{}, p.errf("expected parameter type, got %q", t.Text)
	}
	p.next()
	kind, err := relation.ParseKind(t.Text)
	if err != nil {
		return Param{}, p.errf("%v", err)
	}
	param := Param{Kind: kind, IsList: strings.HasSuffix(t.Text, "[]")}
	if param.IsList {
		// Remember the element kind, not KindList, for list params:
		// Image[] means "list of images".
		elem, err := relation.ParseKind(strings.TrimSuffix(t.Text, "[]"))
		if err != nil {
			return Param{}, p.errf("%v", err)
		}
		param.Kind = elem
	}
	name, err := p.expectIdent()
	if err != nil {
		return Param{}, err
	}
	param.Name = name
	return param, nil
}

func (p *Parser) parseResponse(task *TaskDef) (Response, error) {
	// "Order" lexes as the ORDER keyword (of ORDER BY); accept it here
	// as the response kind name it also is.
	if p.acceptKeyword("ORDER") {
		return Response{Kind: ResponseOrder}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return Response{}, err
	}
	switch strings.ToLower(name) {
	case "form":
		resp := Response{Kind: ResponseForm}
		if err := p.expectPunct("("); err != nil {
			return Response{}, err
		}
		for {
			if err := p.expectPunct("("); err != nil {
				return Response{}, err
			}
			label, err := p.expectString()
			if err != nil {
				return Response{}, err
			}
			if err := p.expectPunct(","); err != nil {
				return Response{}, err
			}
			typeName, err := p.expectIdent()
			if err != nil {
				return Response{}, err
			}
			kind, err := relation.ParseKind(typeName)
			if err != nil {
				return Response{}, p.errf("%v", err)
			}
			if err := p.expectPunct(")"); err != nil {
				return Response{}, err
			}
			resp.Fields = append(resp.Fields, FormField{Label: label, Kind: kind})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return Response{}, err
		}
		return resp, nil
	case "joincolumns":
		resp := Response{Kind: ResponseJoinColumns}
		if err := p.expectPunct("("); err != nil {
			return Response{}, err
		}
		var parts [4]string
		for i := 0; i < 4; i++ {
			if i%2 == 0 {
				s, err := p.expectString()
				if err != nil {
					return Response{}, err
				}
				parts[i] = s
			} else {
				id, err := p.expectIdent()
				if err != nil {
					return Response{}, err
				}
				if _, ok := task.Param(id); !ok {
					return Response{}, p.errf("JoinColumns argument %q is not a task parameter", id)
				}
				parts[i] = id
			}
			if i < 3 {
				if err := p.expectPunct(","); err != nil {
					return Response{}, err
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return Response{}, err
		}
		resp.LeftLabel, resp.LeftParam = parts[0], parts[1]
		resp.RightLabel, resp.RightParam = parts[2], parts[3]
		return resp, nil
	case "yesno":
		return Response{Kind: ResponseYesNo}, nil
	case "rating":
		resp := Response{Kind: ResponseRating, ScaleMin: 1, ScaleMax: 7}
		if p.acceptPunct("(") {
			lo, err := p.expectNumber()
			if err != nil {
				return Response{}, err
			}
			if err := p.expectPunct(","); err != nil {
				return Response{}, err
			}
			hi, err := p.expectNumber()
			if err != nil {
				return Response{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return Response{}, err
			}
			resp.ScaleMin, _ = strconv.Atoi(lo)
			resp.ScaleMax, _ = strconv.Atoi(hi)
			if resp.ScaleMin >= resp.ScaleMax {
				return Response{}, p.errf("Rating scale %d..%d is empty", resp.ScaleMin, resp.ScaleMax)
			}
		}
		return resp, nil
	case "order":
		return Response{Kind: ResponseOrder}, nil
	case "choice":
		resp := Response{Kind: ResponseChoice}
		if err := p.expectPunct("("); err != nil {
			return Response{}, err
		}
		for {
			s, err := p.expectString()
			if err != nil {
				return Response{}, err
			}
			resp.Options = append(resp.Options, s)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return Response{}, err
		}
		if len(resp.Options) < 2 {
			return Response{}, p.errf("Choice needs at least two options")
		}
		return resp, nil
	default:
		return Response{}, p.errf("unknown Response kind %q", name)
	}
}

// validateTask enforces cross-field consistency rules.
func validateTask(t *TaskDef) error {
	nPlaceholders := strings.Count(t.Text, "%s")
	if t.Text != "" && nPlaceholders != len(t.TextArgs) {
		return fmt.Errorf("task %s: Text has %d %%s placeholders but %d arguments", t.Name, nPlaceholders, len(t.TextArgs))
	}
	if t.PreFilterTask != "" && t.Type != TaskJoinPredicate {
		return fmt.Errorf("task %s: PreFilter only applies to JoinPredicate tasks", t.Name)
	}
	if t.CompareTask != "" && t.Type != TaskRating {
		return fmt.Errorf("task %s: Compare only applies to Rating tasks", t.Name)
	}
	if t.GroupSize != 0 && t.Type != TaskRank && t.Type != TaskRating {
		return fmt.Errorf("task %s: GroupSize only applies to Rank and Rating tasks", t.Name)
	}
	if t.Infer != "" && t.Infer != "majority" && t.Infer != "em" {
		return fmt.Errorf("task %s: bad Infer %q (want majority or em)", t.Name, t.Infer)
	}
	if t.MinAssignments != 0 && t.Assignments != 0 && t.MinAssignments > t.Assignments {
		return fmt.Errorf("task %s: MinAssignments %d exceeds Assignments %d", t.Name, t.MinAssignments, t.Assignments)
	}
	switch t.Type {
	case TaskJoinPredicate:
		if t.Response.Kind != ResponseJoinColumns && t.Response.Kind != ResponseYesNo {
			return fmt.Errorf("task %s: JoinPredicate requires a JoinColumns or YesNo response", t.Name)
		}
		if len(t.Returns) != 1 || t.Returns[0].Kind != relation.KindBool {
			return fmt.Errorf("task %s: JoinPredicate must RETURN Bool", t.Name)
		}
	case TaskFilter:
		if len(t.Returns) != 1 || t.Returns[0].Kind != relation.KindBool {
			return fmt.Errorf("task %s: Filter must RETURN Bool", t.Name)
		}
	case TaskRating:
		if t.Response.Kind != ResponseRating {
			return fmt.Errorf("task %s: Rating task requires a Rating response", t.Name)
		}
	case TaskRank:
		if t.Response.Kind != ResponseOrder {
			return fmt.Errorf("task %s: Rank task requires an Order response", t.Name)
		}
		if len(t.Returns) != 1 || t.Returns[0].Kind != relation.KindInt {
			return fmt.Errorf("task %s: Rank must RETURN Int (the position)", t.Name)
		}
	case TaskQuestion, TaskGenerative:
		if t.ReturnsTuple() && t.Response.Kind == ResponseForm {
			if len(t.Response.Fields) != len(t.Returns) {
				return fmt.Errorf("task %s: Form has %d fields but RETURNS %d", t.Name, len(t.Response.Fields), len(t.Returns))
			}
		}
	}
	return nil
}
