package budget

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCentsString(t *testing.T) {
	cases := map[Cents]string{
		0:     "$0.00",
		5:     "$0.05",
		123:   "$1.23",
		10000: "$100.00",
		-42:   "-$0.42",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(c), got, want)
		}
	}
}

func TestSpendWithinLimit(t *testing.T) {
	a := NewAccount(100)
	if a.Limit() != 100 {
		t.Fatalf("limit = %v", a.Limit())
	}
	if err := a.Spend(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(41); err != ErrExhausted {
		t.Fatalf("overspend err = %v", err)
	}
	if err := a.Spend(40); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 100 || a.Remaining() != 0 {
		t.Fatalf("spent=%v remaining=%v", a.Spent(), a.Remaining())
	}
}

func TestUnlimitedAccount(t *testing.T) {
	a := NewAccount(0)
	if err := a.Spend(1 << 40); err != nil {
		t.Fatal(err)
	}
	if a.Remaining() <= 0 {
		t.Fatal("unlimited account must always have remaining budget")
	}
}

func TestReserveCommitRelease(t *testing.T) {
	a := NewAccount(100)
	if err := a.Reserve(70); err != nil {
		t.Fatal(err)
	}
	if a.Reserved() != 70 || a.Remaining() != 30 {
		t.Fatalf("reserved=%v remaining=%v", a.Reserved(), a.Remaining())
	}
	if err := a.Reserve(31); err != ErrExhausted {
		t.Fatalf("over-reserve err = %v", err)
	}
	a.Commit(50)
	if a.Spent() != 50 || a.Reserved() != 20 {
		t.Fatalf("after commit: spent=%v reserved=%v", a.Spent(), a.Reserved())
	}
	a.Release(20)
	if a.Reserved() != 0 || a.Remaining() != 50 {
		t.Fatalf("after release: reserved=%v remaining=%v", a.Reserved(), a.Remaining())
	}
}

func TestNegativeAmounts(t *testing.T) {
	a := NewAccount(10)
	if err := a.Spend(-1); err == nil {
		t.Error("negative spend accepted")
	}
	if err := a.Reserve(-1); err == nil {
		t.Error("negative reserve accepted")
	}
	a.Release(-5) // no-op
	a.Commit(-5)  // no-op
	if a.Spent() != 0 || a.Reserved() != 0 {
		t.Error("negative release/commit mutated account")
	}
}

func TestOverReleaseClamps(t *testing.T) {
	a := NewAccount(100)
	_ = a.Reserve(10)
	a.Release(50)
	if a.Reserved() != 0 {
		t.Fatalf("reserved = %v", a.Reserved())
	}
}

func TestConcurrentSpendNeverExceedsLimit(t *testing.T) {
	a := NewAccount(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = a.Spend(1)
			}
		}()
	}
	wg.Wait()
	if a.Spent() != 1000 {
		t.Fatalf("spent = %v, want exactly the limit", a.Spent())
	}
}

// Property: spent + remaining + reserved == limit for limited accounts,
// under any interleaving of successful operations.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewAccount(500)
		for _, op := range ops {
			amt := Cents(op % 97)
			switch op % 4 {
			case 0:
				_ = a.Spend(amt)
			case 1:
				_ = a.Reserve(amt)
			case 2:
				a.Commit(amt)
			case 3:
				a.Release(amt)
			}
			if a.Spent()+a.Reserved() > 500+amt {
				// Commit without reserve can push spent past limit by
				// design (it trusts the earlier Reserve); but spend and
				// reserve alone must never exceed.
				continue
			}
			if a.Remaining() < 0 && a.Spent() <= 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
