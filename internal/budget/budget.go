// Package budget tracks monetary spend for Qurk queries. All amounts are
// integer cents — never floats — matching MTurk's $0.01 granularity.
package budget

import (
	"errors"
	"fmt"
	"sync"
)

// Cents is an amount of money in US cents.
type Cents int64

// String renders "$1.23".
func (c Cents) String() string {
	sign := ""
	if c < 0 {
		sign = "-"
		c = -c
	}
	return fmt.Sprintf("%s$%d.%02d", sign, c/100, c%100)
}

// ErrExhausted is returned by Spend when the budget cannot cover a charge.
var ErrExhausted = errors.New("budget: exhausted")

// Account is a concurrency-safe budget with a hard limit.
// Limit 0 means unlimited.
type Account struct {
	mu    sync.Mutex
	limit Cents
	spent Cents
	// reservations hold money for posted-but-uncompleted HITs so the
	// optimizer cannot overcommit the remaining budget.
	reserved Cents
}

// NewAccount creates an account with the given limit (0 = unlimited).
func NewAccount(limit Cents) *Account {
	return &Account{limit: limit}
}

// Limit returns the account limit (0 = unlimited).
func (a *Account) Limit() Cents {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// Spent returns the total charged so far.
func (a *Account) Spent() Cents {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Reserved returns the amount currently held for in-flight HITs.
func (a *Account) Reserved() Cents {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserved
}

// Remaining returns limit - spent - reserved, or a very large value when
// unlimited.
func (a *Account) Remaining() Cents {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.remainingLocked()
}

func (a *Account) remainingLocked() Cents {
	if a.limit == 0 {
		return Cents(1<<62 - 1)
	}
	return a.limit - a.spent - a.reserved
}

// Reserve holds amount for an in-flight HIT. It fails without side
// effects when the remaining budget cannot cover it.
func (a *Account) Reserve(amount Cents) error {
	if amount < 0 {
		return fmt.Errorf("budget: negative reserve %d", amount)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit != 0 && a.remainingLocked() < amount {
		return ErrExhausted
	}
	a.reserved += amount
	return nil
}

// Release returns an unused reservation.
func (a *Account) Release(amount Cents) {
	if amount < 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserved -= amount
	if a.reserved < 0 {
		a.reserved = 0
	}
}

// Commit converts a previously reserved amount into real spend.
func (a *Account) Commit(amount Cents) {
	if amount < 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserved -= amount
	if a.reserved < 0 {
		a.reserved = 0
	}
	a.spent += amount
}

// Refund returns previously spent money (e.g. the uncompleted
// assignments of a HIT disposed by query cancellation). Spend never
// goes negative.
func (a *Account) Refund(amount Cents) {
	if amount <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent -= amount
	if a.spent < 0 {
		a.spent = 0
	}
}

// Spend charges without a prior reservation, failing when over limit.
func (a *Account) Spend(amount Cents) error {
	if amount < 0 {
		return fmt.Errorf("budget: negative spend %d", amount)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit != 0 && a.remainingLocked() < amount {
		return ErrExhausted
	}
	a.spent += amount
	return nil
}
