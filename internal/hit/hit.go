// Package hit models Human Intelligence Tasks: the unit of work Qurk
// posts to the (simulated) MTurk marketplace. It mirrors the paper's HIT
// Compiler: a task (or a batch of tasks) is compiled into an HTML form a
// turker fills out, and the submitted form is decoded back into typed
// answer values keyed by the task that asked the question.
package hit

import (
	"fmt"
	"strings"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// Item is one batched sub-question inside a HIT. Key routes the answer
// back to the originating task; Args are the values rendered for the
// worker (e.g. the company name, or the two images of a join pair).
//
// Task and Prompt are set when several *different* operators share one
// HIT (the paper's operator-grouping optimization: "generate HITs from a
// set of operators, e.g. grouping multiple filter operations over the
// same tuple"); empty values inherit the HIT-level Task and Question.
type Item struct {
	Key    string
	Args   []relation.Value
	Task   string
	Prompt string
}

// EffectiveTask returns the item's task, defaulting to the HIT's.
func (h *HIT) EffectiveTask(it Item) string {
	if it.Task != "" {
		return it.Task
	}
	return h.Task
}

// HIT is a compiled human task, possibly batching several Items.
//
// For JoinColumns HITs the Left and Right columns are rendered instead of
// Items; the implied sub-questions are all Left×Right pairs, keyed by
// PairKey.
type HIT struct {
	ID          string
	Task        string // task (UDF) name
	Type        qlang.TaskType
	Title       string
	Question    string // rendered instruction text
	Response    qlang.Response
	Items       []Item
	Left, Right []Item // JoinColumns layout
	RewardCents int64
	Assignments int
	// GroupKeys lists the task keys of *grouped* operators sharing this
	// HIT (several predicates asked about one tuple); empty otherwise.
	GroupKeys []string
}

// PairKey builds the routing key for one cell of a JoinColumns grid.
func PairKey(leftKey, rightKey string) string {
	return leftKey + "\x1f" + rightKey
}

// SplitPairKey is the inverse of PairKey.
func SplitPairKey(key string) (left, right string, ok bool) {
	i := strings.IndexByte(key, '\x1f')
	if i < 0 {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}

// Keys returns every routing key this HIT will answer: item keys, or all
// pair keys for a JoinColumns HIT.
func (h *HIT) Keys() []string {
	if h.Response.Kind == qlang.ResponseJoinColumns {
		keys := make([]string, 0, len(h.Left)*len(h.Right))
		for _, l := range h.Left {
			for _, r := range h.Right {
				keys = append(keys, PairKey(l.Key, r.Key))
			}
		}
		return keys
	}
	keys := make([]string, len(h.Items))
	for i, it := range h.Items {
		keys[i] = it.Key
	}
	return keys
}

// QuestionCount returns how many logical questions the HIT answers —
// the batching leverage the Task Manager gets from one worker payment.
// It is called per completed assignment, so unlike Keys it allocates
// nothing.
func (h *HIT) QuestionCount() int {
	if h.Response.Kind == qlang.ResponseJoinColumns {
		return len(h.Left) * len(h.Right)
	}
	return len(h.Items)
}

// Answers maps routing keys to the typed value a worker produced.
// For form/tuple tasks the value is a KindTuple; for filters and join
// pairs a KindBool; for ratings a KindInt; for order responses a KindInt
// rank (0 = first).
type Answers struct {
	WorkerID string
	Values   map[string]relation.Value
}

// RenderText substitutes a task's %s placeholders with the item's
// argument values, mirroring the paper's "simple substitution language".
func RenderText(template string, textArgs []string, params []qlang.Param, args []relation.Value) string {
	if !strings.Contains(template, "%s") {
		return template
	}
	// Map parameter name -> argument position.
	pos := make(map[string]int, len(params))
	for i, p := range params {
		pos[strings.ToLower(p.Name)] = i
	}
	subs := make([]interface{}, 0, len(textArgs))
	for _, name := range textArgs {
		i, ok := pos[strings.ToLower(name)]
		if !ok || i >= len(args) {
			subs = append(subs, "?")
			continue
		}
		subs = append(subs, displayValue(args[i]))
	}
	return fmt.Sprintf(strings.ReplaceAll(template, "%s", "%v"), subs...)
}

func displayValue(v relation.Value) string {
	switch v.Kind() {
	case relation.KindImage:
		return v.Str()
	case relation.KindList:
		parts := make([]string, v.Len())
		for i, e := range v.List() {
			parts[i] = displayValue(e)
		}
		return strings.Join(parts, ", ")
	default:
		return v.String()
	}
}

// Validate checks structural invariants before posting.
func (h *HIT) Validate() error {
	if h.ID == "" {
		return fmt.Errorf("hit: missing ID")
	}
	if h.Task == "" {
		return fmt.Errorf("hit %s: missing task name", h.ID)
	}
	if h.Assignments < 1 {
		return fmt.Errorf("hit %s: assignments %d < 1", h.ID, h.Assignments)
	}
	if h.RewardCents < 0 {
		return fmt.Errorf("hit %s: negative reward", h.ID)
	}
	if h.Response.Kind == qlang.ResponseJoinColumns {
		if len(h.Left) == 0 || len(h.Right) == 0 {
			return fmt.Errorf("hit %s: JoinColumns needs both columns populated", h.ID)
		}
		if len(h.Items) != 0 {
			return fmt.Errorf("hit %s: JoinColumns must not also carry Items", h.ID)
		}
		return nil
	}
	if len(h.Items) == 0 {
		return fmt.Errorf("hit %s: no items", h.ID)
	}
	seen := make(map[string]bool, len(h.Items))
	for _, it := range h.Items {
		if it.Key == "" {
			return fmt.Errorf("hit %s: item with empty key", h.ID)
		}
		if seen[it.Key] {
			return fmt.Errorf("hit %s: duplicate item key %q", h.ID, it.Key)
		}
		seen[it.Key] = true
	}
	return nil
}
