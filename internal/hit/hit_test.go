package hit

import (
	"net/url"
	"strings"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

func questionHIT() *HIT {
	return &HIT{
		ID:       "HIT1",
		Task:     "findCEO",
		Type:     qlang.TaskQuestion,
		Title:    "Find the CEO",
		Question: "Find the CEO and phone for each company below.",
		Response: qlang.Response{
			Kind: qlang.ResponseForm,
			Fields: []qlang.FormField{
				{Label: "CEO", Kind: relation.KindString},
				{Label: "Phone", Kind: relation.KindString},
			},
		},
		Items: []Item{
			{Key: "t1", Args: []relation.Value{relation.NewString("Acme")}},
			{Key: "t2", Args: []relation.Value{relation.NewString("Globex")}},
		},
		RewardCents: 3,
		Assignments: 2,
	}
}

func joinHIT() *HIT {
	return &HIT{
		ID:       "HIT2",
		Task:     "samePerson",
		Type:     qlang.TaskJoinPredicate,
		Title:    "Match celebrities",
		Question: "Match pictures.",
		Response: qlang.Response{
			Kind:      qlang.ResponseJoinColumns,
			LeftLabel: "Celebrity", RightLabel: "Spotted Star",
			LeftParam: "celebs", RightParam: "spotted",
		},
		Left: []Item{
			{Key: "c1", Args: []relation.Value{relation.NewImage("c1.png")}},
			{Key: "c2", Args: []relation.Value{relation.NewImage("c2.png")}},
		},
		Right: []Item{
			{Key: "s1", Args: []relation.Value{relation.NewImage("s1.png")}},
		},
		RewardCents: 2,
		Assignments: 3,
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	k := PairKey("a", "b")
	l, r, ok := SplitPairKey(k)
	if !ok || l != "a" || r != "b" {
		t.Fatalf("split = %q %q %v", l, r, ok)
	}
	if _, _, ok := SplitPairKey("nosep"); ok {
		t.Error("split without separator should fail")
	}
}

func TestKeysAndQuestionCount(t *testing.T) {
	q := questionHIT()
	if got := q.Keys(); len(got) != 2 || got[0] != "t1" {
		t.Fatalf("keys = %v", got)
	}
	j := joinHIT()
	keys := j.Keys()
	if len(keys) != 2 {
		t.Fatalf("join keys = %v", keys)
	}
	if j.QuestionCount() != 2 || questionHIT().QuestionCount() != 2 {
		t.Error("question counts wrong")
	}
}

func TestValidate(t *testing.T) {
	good := questionHIT()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := joinHIT().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*HIT){
		func(h *HIT) { h.ID = "" },
		func(h *HIT) { h.Task = "" },
		func(h *HIT) { h.Assignments = 0 },
		func(h *HIT) { h.RewardCents = -1 },
		func(h *HIT) { h.Items = nil },
		func(h *HIT) { h.Items[1].Key = "t1" },
		func(h *HIT) { h.Items[0].Key = "" },
	}
	for i, mutate := range cases {
		h := questionHIT()
		mutate(h)
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	j := joinHIT()
	j.Right = nil
	if err := j.Validate(); err == nil {
		t.Error("join without right column must fail")
	}
	j2 := joinHIT()
	j2.Items = []Item{{Key: "x"}}
	if err := j2.Validate(); err == nil {
		t.Error("join with stray items must fail")
	}
}

func TestRenderText(t *testing.T) {
	params := []qlang.Param{{Name: "companyName", Kind: relation.KindString}}
	got := RenderText("Find the CEO of %s.", []string{"companyName"}, params, []relation.Value{relation.NewString("Acme")})
	if got != "Find the CEO of Acme." {
		t.Errorf("RenderText = %q", got)
	}
	// Image args render their reference, not the img: prefix.
	params2 := []qlang.Param{{Name: "pic", Kind: relation.KindImage}}
	got2 := RenderText("Look at %s.", []string{"pic"}, params2, []relation.Value{relation.NewImage("x.png")})
	if got2 != "Look at x.png." {
		t.Errorf("RenderText image = %q", got2)
	}
	// Unknown args degrade to "?" rather than panicking.
	got3 := RenderText("%s!", []string{"missing"}, params, []relation.Value{relation.NewString("Acme")})
	if got3 != "?!" {
		t.Errorf("RenderText missing = %q", got3)
	}
	// No placeholders: template returned untouched.
	if RenderText("static", nil, nil, nil) != "static" {
		t.Error("static template changed")
	}
	// List args join with commas.
	params4 := []qlang.Param{{Name: "pics", Kind: relation.KindImage, IsList: true}}
	got4 := RenderText("%s", []string{"pics"}, params4,
		[]relation.Value{relation.NewList(relation.NewImage("a.png"), relation.NewImage("b.png"))})
	if got4 != "a.png, b.png" {
		t.Errorf("RenderText list = %q", got4)
	}
}

func TestCompileFormHTML(t *testing.T) {
	htmlStr := Compile(questionHIT())
	for _, want := range []string{
		"Find the CEO and phone",
		"Acme", "Globex",
		"CEO", "Phone",
		"type=\"text\"",
		"Reward: $0.03",
		"2 assignment(s)",
		"data-hit=\"HIT1\"",
	} {
		if !strings.Contains(htmlStr, want) {
			t.Errorf("compiled HTML missing %q", want)
		}
	}
}

func TestCompileJoinHTML(t *testing.T) {
	htmlStr := Compile(joinHIT())
	for _, want := range []string{
		"Celebrity", "Spotted Star",
		"<img src=\"c1.png\"", "<img src=\"s1.png\"",
		"type=\"checkbox\"",
	} {
		if !strings.Contains(htmlStr, want) {
			t.Errorf("join HTML missing %q", want)
		}
	}
}

func TestCompileEscapesHTML(t *testing.T) {
	h := questionHIT()
	h.Question = `<script>alert("x")</script>`
	h.Items[0].Args[0] = relation.NewString("<b>bold</b>")
	htmlStr := Compile(h)
	if strings.Contains(htmlStr, "<script>") || strings.Contains(htmlStr, "<b>bold</b>") {
		t.Error("user data must be HTML-escaped")
	}
}

func TestFormRoundTripForm(t *testing.T) {
	h := questionHIT()
	want := Answers{WorkerID: "w1", Values: map[string]relation.Value{
		"t1": relation.NewTuple(
			relation.Field{Name: "CEO", Value: relation.NewString("Ada Lovelace")},
			relation.Field{Name: "Phone", Value: relation.NewString("555-0100")},
		),
		"t2": relation.NewTuple(
			relation.Field{Name: "CEO", Value: relation.NewString("Grace Hopper")},
			relation.Field{Name: "Phone", Value: relation.NewString("555-0101")},
		),
	}}
	form := EncodeAnswers(h, want)
	got, err := ParseForm(h, form, "w1")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want.Values {
		if !got.Values[k].Equal(v) {
			t.Errorf("key %s: %v != %v", k, got.Values[k], v)
		}
	}
}

func TestFormRoundTripJoin(t *testing.T) {
	h := joinHIT()
	want := Answers{Values: map[string]relation.Value{
		PairKey("c1", "s1"): relation.NewBool(true),
		PairKey("c2", "s1"): relation.NewBool(false),
	}}
	form := EncodeAnswers(h, want)
	got, err := ParseForm(h, form, "w")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Values[PairKey("c1", "s1")].Bool() {
		t.Error("matched pair lost")
	}
	if got.Values[PairKey("c2", "s1")].Bool() {
		t.Error("unmatched pair must decode false")
	}
}

func ratingHIT() *HIT {
	return &HIT{
		ID: "HR", Task: "score", Type: qlang.TaskRating,
		Question: "Rate each.",
		Response: qlang.Response{Kind: qlang.ResponseRating, ScaleMin: 1, ScaleMax: 5},
		Items: []Item{
			{Key: "a", Args: []relation.Value{relation.NewImage("a.png")}},
			{Key: "b", Args: []relation.Value{relation.NewImage("b.png")}},
		},
		RewardCents: 1, Assignments: 1,
	}
}

func TestFormRoundTripRating(t *testing.T) {
	h := ratingHIT()
	want := Answers{Values: map[string]relation.Value{
		"a": relation.NewInt(4), "b": relation.NewInt(1),
	}}
	got, err := ParseForm(h, EncodeAnswers(h, want), "w")
	if err != nil {
		t.Fatal(err)
	}
	if got.Values["a"].Int() != 4 || got.Values["b"].Int() != 1 {
		t.Errorf("ratings = %v", got.Values)
	}
}

func TestParseFormRatingOutOfScale(t *testing.T) {
	h := ratingHIT()
	form := url.Values{}
	form.Set("r_a", "9")
	form.Set("r_b", "1")
	if _, err := ParseForm(h, form, "w"); err == nil {
		t.Error("out-of-scale rating must error")
	}
}

func orderHIT(n int) *HIT {
	h := &HIT{
		ID: "HO", Task: "rank", Type: qlang.TaskRank,
		Question:    "Order these.",
		Response:    qlang.Response{Kind: qlang.ResponseOrder},
		RewardCents: 1, Assignments: 1,
	}
	for i := 0; i < n; i++ {
		h.Items = append(h.Items, Item{Key: string(rune('a' + i)), Args: []relation.Value{relation.NewInt(int64(i))}})
	}
	return h
}

func TestFormRoundTripOrder(t *testing.T) {
	h := orderHIT(3)
	want := Answers{Values: map[string]relation.Value{
		"a": relation.NewInt(2), "b": relation.NewInt(0), "c": relation.NewInt(1),
	}}
	got, err := ParseForm(h, EncodeAnswers(h, want), "w")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want.Values {
		if got.Values[k].Int() != v.Int() {
			t.Errorf("order %s = %v, want %v", k, got.Values[k], v)
		}
	}
}

func TestParseFormOrderDuplicate(t *testing.T) {
	h := orderHIT(2)
	form := url.Values{}
	form.Set("o_a", "1")
	form.Set("o_b", "1")
	if _, err := ParseForm(h, form, "w"); err == nil {
		t.Error("duplicate order positions must error")
	}
}

func TestFormRoundTripYesNoAndChoice(t *testing.T) {
	yn := &HIT{
		ID: "HY", Task: "isCat", Type: qlang.TaskFilter,
		Question: "Cat?", Response: qlang.Response{Kind: qlang.ResponseYesNo},
		Items:       []Item{{Key: "x", Args: []relation.Value{relation.NewImage("x.png")}}},
		RewardCents: 1, Assignments: 1,
	}
	want := Answers{Values: map[string]relation.Value{"x": relation.NewBool(true)}}
	got, err := ParseForm(yn, EncodeAnswers(yn, want), "w")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Values["x"].Bool() {
		t.Error("yes lost")
	}
	// Unanswered yes/no is an error, not a default.
	if _, err := ParseForm(yn, url.Values{}, "w"); err == nil {
		t.Error("unanswered yes/no must error")
	}

	ch := &HIT{
		ID: "HC", Task: "sentiment", Type: qlang.TaskQuestion,
		Question:    "Sentiment?",
		Response:    qlang.Response{Kind: qlang.ResponseChoice, Options: []string{"pos", "neg"}},
		Items:       []Item{{Key: "s", Args: []relation.Value{relation.NewString("great!")}}},
		RewardCents: 1, Assignments: 1,
	}
	wantC := Answers{Values: map[string]relation.Value{"s": relation.NewString("pos")}}
	gotC, err := ParseForm(ch, EncodeAnswers(ch, wantC), "w")
	if err != nil {
		t.Fatal(err)
	}
	if gotC.Values["s"].Str() != "pos" {
		t.Errorf("choice = %v", gotC.Values["s"])
	}
	bad := url.Values{}
	bad.Set("c_s", "meh")
	if _, err := ParseForm(ch, bad, "w"); err == nil {
		t.Error("invalid choice must error")
	}
}

func TestSingleFieldFormDecodesScalar(t *testing.T) {
	h := &HIT{
		ID: "HS", Task: "caption", Type: qlang.TaskGenerative,
		Question: "Caption this.",
		Response: qlang.Response{Kind: qlang.ResponseForm,
			Fields: []qlang.FormField{{Label: "Caption", Kind: relation.KindString}}},
		Items:       []Item{{Key: "k", Args: []relation.Value{relation.NewImage("k.png")}}},
		RewardCents: 1, Assignments: 1,
	}
	want := Answers{Values: map[string]relation.Value{"k": relation.NewString("a cat")}}
	got, err := ParseForm(h, EncodeAnswers(h, want), "w")
	if err != nil {
		t.Fatal(err)
	}
	if got.Values["k"].Kind() != relation.KindString || got.Values["k"].Str() != "a cat" {
		t.Errorf("scalar form = %v", got.Values["k"])
	}
}

func TestEmptyFormFieldDecodesNull(t *testing.T) {
	h := questionHIT()
	form := url.Values{}
	got, err := ParseForm(h, form, "w")
	if err != nil {
		t.Fatal(err)
	}
	v := got.Values["t1"]
	if !v.Field("CEO").IsNull() {
		t.Errorf("empty input should be NULL, got %v", v)
	}
}
