package hit

import (
	"net/url"
	"strings"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// compileOrderHIT builds a three-item Order HIT, the shape the ranking
// subsystem's comparison batches post.
func compileOrderHIT() *HIT {
	return &HIT{
		ID:          "HIT0001",
		Task:        "orderItems",
		Type:        qlang.TaskRank,
		Title:       "orderItems",
		Question:    "Order the items.",
		Response:    qlang.Response{Kind: qlang.ResponseOrder},
		Assignments: 1,
		Items: []Item{
			{Key: "a", Args: []relation.Value{relation.NewString("alpha")}},
			{Key: "b", Args: []relation.Value{relation.NewString("beta")}},
			{Key: "c", Args: []relation.Value{relation.NewString("gamma")}},
		},
	}
}

func TestOrderCompileRendersSelects(t *testing.T) {
	h := compileOrderHIT()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	html := Compile(h)
	// One position selector per item, each offering positions 1..n.
	if got := strings.Count(html, "<select"); got != 3 {
		t.Fatalf("selects = %d, want 3", got)
	}
	if !strings.Contains(html, `<option value="3">3</option>`) {
		t.Fatal("missing position option 3")
	}
	if strings.Contains(html, `<option value="4">`) {
		t.Fatal("option beyond item count")
	}
}

func TestOrderParseFormRejectsMalformedPermutations(t *testing.T) {
	h := compileOrderHIT()
	set := func(vals map[string]string) url.Values {
		form := url.Values{}
		form.Set("hit", h.ID)
		for key, v := range vals {
			form.Set(itemName("o", key), v)
		}
		return form
	}
	cases := []struct {
		name string
		form url.Values
	}{
		{"duplicate position", set(map[string]string{"a": "1", "b": "1", "c": "2"})},
		{"position zero", set(map[string]string{"a": "0", "b": "1", "c": "2"})},
		{"position beyond n", set(map[string]string{"a": "1", "b": "2", "c": "4"})},
		{"partial order", set(map[string]string{"a": "1", "b": "2"})},
		{"not a number", set(map[string]string{"a": "first", "b": "2", "c": "3"})},
		{"empty submission", set(nil)},
	}
	for _, tc := range cases {
		if _, err := ParseForm(h, tc.form, "w1"); err == nil {
			t.Errorf("%s: ParseForm accepted an invalid permutation", tc.name)
		}
	}
}

func TestOrderHITValidateDuplicateKeys(t *testing.T) {
	h := compileOrderHIT()
	h.Items[2].Key = "a"
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate item keys")
	}
	h = compileOrderHIT()
	h.Items = nil
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted an Order HIT with no items")
	}
	h = compileOrderHIT()
	h.Items[0].Key = ""
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted an empty item key")
	}
}
