package hit

import (
	"fmt"
	"html"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// Compile renders the HIT as the HTML form a turker fills out, the same
// artifact Qurk's HIT Compiler ships to MTurk. The form round-trips:
// ParseForm decodes a submission of the generated inputs.
func Compile(h *HIT) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>%s</title></head>\n<body>\n", html.EscapeString(h.Title))
	fmt.Fprintf(&b, "<form method=\"post\" action=\"/submit\" class=\"qurk-hit\" data-hit=\"%s\">\n", html.EscapeString(h.ID))
	fmt.Fprintf(&b, "<input type=\"hidden\" name=\"hit\" value=\"%s\">\n", html.EscapeString(h.ID))
	fmt.Fprintf(&b, "<p class=\"instructions\">%s</p>\n", html.EscapeString(h.Question))

	switch h.Response.Kind {
	case qlang.ResponseJoinColumns:
		compileJoinColumns(&b, h)
	case qlang.ResponseForm:
		compileForm(&b, h)
	case qlang.ResponseYesNo:
		compileYesNo(&b, h)
	case qlang.ResponseRating:
		compileRating(&b, h)
	case qlang.ResponseOrder:
		compileOrder(&b, h)
	case qlang.ResponseChoice:
		compileChoice(&b, h)
	}

	fmt.Fprintf(&b, "<p class=\"reward\">Reward: $%d.%02d · %d assignment(s)</p>\n",
		h.RewardCents/100, h.RewardCents%100, h.Assignments)
	b.WriteString("<button type=\"submit\">Submit</button>\n</form>\n</body></html>\n")
	return b.String()
}

func renderArgs(b *strings.Builder, args []relation.Value) {
	for _, a := range args {
		switch a.Kind() {
		case relation.KindImage:
			fmt.Fprintf(b, "<img src=\"%s\" alt=\"%s\">", html.EscapeString(a.Str()), html.EscapeString(a.Str()))
		case relation.KindList:
			renderArgs(b, a.List())
		default:
			fmt.Fprintf(b, "<span class=\"datum\">%s</span>", html.EscapeString(a.String()))
		}
	}
}

// itemName namespaces a form input by item key; keys are URL-escaped so
// the \x1f pair separator survives HTML transport.
func itemName(prefix, key string) string {
	return prefix + "_" + url.QueryEscape(key)
}

func compileForm(b *strings.Builder, h *HIT) {
	for _, it := range h.Items {
		fmt.Fprintf(b, "<fieldset class=\"item\" data-key=\"%s\">", html.EscapeString(it.Key))
		renderArgs(b, it.Args)
		for _, f := range h.Response.Fields {
			fmt.Fprintf(b, "<label>%s <input type=\"text\" name=\"%s\"></label>",
				html.EscapeString(f.Label), itemName("f", it.Key+"\x1e"+f.Label))
		}
		b.WriteString("</fieldset>\n")
	}
}

func compileYesNo(b *strings.Builder, h *HIT) {
	for _, it := range h.Items {
		fmt.Fprintf(b, "<fieldset class=\"item\" data-key=\"%s\">", html.EscapeString(it.Key))
		if it.Prompt != "" {
			fmt.Fprintf(b, "<p class=\"prompt\">%s</p>", html.EscapeString(it.Prompt))
		}
		renderArgs(b, it.Args)
		name := itemName("yn", it.Key)
		fmt.Fprintf(b, "<label><input type=\"radio\" name=\"%s\" value=\"yes\"> Yes</label>", name)
		fmt.Fprintf(b, "<label><input type=\"radio\" name=\"%s\" value=\"no\"> No</label>", name)
		b.WriteString("</fieldset>\n")
	}
}

func compileRating(b *strings.Builder, h *HIT) {
	lo, hi := h.Response.ScaleMin, h.Response.ScaleMax
	for _, it := range h.Items {
		fmt.Fprintf(b, "<fieldset class=\"item\" data-key=\"%s\">", html.EscapeString(it.Key))
		renderArgs(b, it.Args)
		name := itemName("r", it.Key)
		for v := lo; v <= hi; v++ {
			fmt.Fprintf(b, "<label><input type=\"radio\" name=\"%s\" value=\"%d\"> %d</label>", name, v, v)
		}
		b.WriteString("</fieldset>\n")
	}
}

func compileOrder(b *strings.Builder, h *HIT) {
	n := len(h.Items)
	for _, it := range h.Items {
		fmt.Fprintf(b, "<fieldset class=\"item\" data-key=\"%s\">", html.EscapeString(it.Key))
		renderArgs(b, it.Args)
		name := itemName("o", it.Key)
		fmt.Fprintf(b, "<select name=\"%s\">", name)
		for v := 1; v <= n; v++ {
			fmt.Fprintf(b, "<option value=\"%d\">%d</option>", v, v)
		}
		b.WriteString("</select></fieldset>\n")
	}
}

func compileChoice(b *strings.Builder, h *HIT) {
	for _, it := range h.Items {
		fmt.Fprintf(b, "<fieldset class=\"item\" data-key=\"%s\">", html.EscapeString(it.Key))
		renderArgs(b, it.Args)
		name := itemName("c", it.Key)
		for _, opt := range h.Response.Options {
			fmt.Fprintf(b, "<label><input type=\"radio\" name=\"%s\" value=\"%s\"> %s</label>",
				name, html.EscapeString(opt), html.EscapeString(opt))
		}
		b.WriteString("</fieldset>\n")
	}
}

// compileJoinColumns renders the two-column matching interface of
// Figure 3: each left item paired with each right item is one checkbox.
func compileJoinColumns(b *strings.Builder, h *HIT) {
	fmt.Fprintf(b, "<table class=\"join\"><tr><th>%s</th><th>%s</th></tr>\n",
		html.EscapeString(h.Response.LeftLabel), html.EscapeString(h.Response.RightLabel))
	b.WriteString("<tr><td>")
	for _, l := range h.Left {
		fmt.Fprintf(b, "<div class=\"cell\" data-key=\"%s\">", html.EscapeString(l.Key))
		renderArgs(b, l.Args)
		b.WriteString("</div>")
	}
	b.WriteString("</td><td>")
	for _, r := range h.Right {
		fmt.Fprintf(b, "<div class=\"cell\" data-key=\"%s\">", html.EscapeString(r.Key))
		renderArgs(b, r.Args)
		b.WriteString("</div>")
	}
	b.WriteString("</td></tr></table>\n<div class=\"matches\">\n")
	for _, l := range h.Left {
		for _, r := range h.Right {
			name := itemName("m", PairKey(l.Key, r.Key))
			fmt.Fprintf(b, "<label><input type=\"checkbox\" name=\"%s\" value=\"match\"> %s ↔ %s</label>\n",
				name, html.EscapeString(displayValue(firstArg(l))), html.EscapeString(displayValue(firstArg(r))))
		}
	}
	b.WriteString("</div>\n")
}

func firstArg(it Item) relation.Value {
	if len(it.Args) > 0 {
		return it.Args[0]
	}
	return relation.NewString(it.Key)
}

// ParseForm decodes a submitted form (as url.Values) into typed Answers
// for this HIT. Missing radio/checkbox inputs decode to their negative or
// NULL values, matching browser semantics.
func ParseForm(h *HIT, form url.Values, workerID string) (Answers, error) {
	ans := Answers{WorkerID: workerID, Values: make(map[string]relation.Value)}
	switch h.Response.Kind {
	case qlang.ResponseJoinColumns:
		for _, l := range h.Left {
			for _, r := range h.Right {
				key := PairKey(l.Key, r.Key)
				ans.Values[key] = relation.NewBool(form.Get(itemName("m", key)) == "match")
			}
		}
	case qlang.ResponseForm:
		for _, it := range h.Items {
			fields := make([]relation.Field, 0, len(h.Response.Fields))
			for _, f := range h.Response.Fields {
				raw := form.Get(itemName("f", it.Key+"\x1e"+f.Label))
				v, err := parseFieldValue(f.Kind, raw)
				if err != nil {
					return Answers{}, fmt.Errorf("hit %s item %s field %s: %v", h.ID, it.Key, f.Label, err)
				}
				fields = append(fields, relation.Field{Name: f.Label, Value: v})
			}
			if len(fields) == 1 && len(h.Response.Fields) == 1 {
				ans.Values[it.Key] = fields[0].Value
			} else {
				ans.Values[it.Key] = relation.NewTuple(fields...)
			}
		}
	case qlang.ResponseYesNo:
		for _, it := range h.Items {
			switch form.Get(itemName("yn", it.Key)) {
			case "yes":
				ans.Values[it.Key] = relation.NewBool(true)
			case "no":
				ans.Values[it.Key] = relation.NewBool(false)
			default:
				return Answers{}, fmt.Errorf("hit %s item %s: yes/no not answered", h.ID, it.Key)
			}
		}
	case qlang.ResponseRating:
		for _, it := range h.Items {
			raw := form.Get(itemName("r", it.Key))
			n, err := strconv.Atoi(raw)
			if err != nil || n < h.Response.ScaleMin || n > h.Response.ScaleMax {
				return Answers{}, fmt.Errorf("hit %s item %s: rating %q out of scale", h.ID, it.Key, raw)
			}
			ans.Values[it.Key] = relation.NewInt(int64(n))
		}
	case qlang.ResponseOrder:
		seen := make(map[int]bool, len(h.Items))
		for _, it := range h.Items {
			raw := form.Get(itemName("o", it.Key))
			n, err := strconv.Atoi(raw)
			if err != nil || n < 1 || n > len(h.Items) {
				return Answers{}, fmt.Errorf("hit %s item %s: position %q invalid", h.ID, it.Key, raw)
			}
			if seen[n] {
				return Answers{}, fmt.Errorf("hit %s: duplicate position %d", h.ID, n)
			}
			seen[n] = true
			ans.Values[it.Key] = relation.NewInt(int64(n - 1))
		}
	case qlang.ResponseChoice:
		valid := make(map[string]bool, len(h.Response.Options))
		for _, o := range h.Response.Options {
			valid[o] = true
		}
		for _, it := range h.Items {
			raw := form.Get(itemName("c", it.Key))
			if !valid[raw] {
				return Answers{}, fmt.Errorf("hit %s item %s: choice %q invalid", h.ID, it.Key, raw)
			}
			ans.Values[it.Key] = relation.NewString(raw)
		}
	default:
		return Answers{}, fmt.Errorf("hit %s: unsupported response kind %v", h.ID, h.Response.Kind)
	}
	return ans, nil
}

func parseFieldValue(kind relation.Kind, raw string) (relation.Value, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return relation.Null, nil
	}
	return relation.ParseValue(kind, raw)
}

// EncodeAnswers is the inverse of ParseForm for the simulated crowd and
// the HTTP task UI: it renders typed Answers as the url.Values a browser
// would submit for this HIT's form.
func EncodeAnswers(h *HIT, ans Answers) url.Values {
	form := url.Values{}
	form.Set("hit", h.ID)
	switch h.Response.Kind {
	case qlang.ResponseJoinColumns:
		for key, v := range ans.Values {
			if v.Truthy() {
				form.Set(itemName("m", key), "match")
			}
		}
	case qlang.ResponseForm:
		for _, it := range h.Items {
			v := ans.Values[it.Key]
			if len(h.Response.Fields) == 1 {
				form.Set(itemName("f", it.Key+"\x1e"+h.Response.Fields[0].Label), rawText(v))
				continue
			}
			for _, f := range h.Response.Fields {
				form.Set(itemName("f", it.Key+"\x1e"+f.Label), rawText(v.Field(f.Label)))
			}
		}
	case qlang.ResponseYesNo:
		for _, it := range h.Items {
			if ans.Values[it.Key].Truthy() {
				form.Set(itemName("yn", it.Key), "yes")
			} else {
				form.Set(itemName("yn", it.Key), "no")
			}
		}
	case qlang.ResponseRating:
		for _, it := range h.Items {
			form.Set(itemName("r", it.Key), strconv.FormatInt(ans.Values[it.Key].Int(), 10))
		}
	case qlang.ResponseOrder:
		for _, it := range h.Items {
			form.Set(itemName("o", it.Key), strconv.FormatInt(ans.Values[it.Key].Int()+1, 10))
		}
	case qlang.ResponseChoice:
		for _, it := range h.Items {
			form.Set(itemName("c", it.Key), ans.Values[it.Key].Str())
		}
	}
	return form
}

func rawText(v relation.Value) string {
	if v.IsNull() {
		return ""
	}
	if v.Kind() == relation.KindImage {
		return v.Str()
	}
	return v.String()
}
