// Package plan builds logical query plans from parsed SELECT statements.
// Plans are trees of Nodes; the executor (internal/exec) fuses call-free
// nodes into pull-iterator chains and bridges human-task nodes with
// queued producer goroutines, and the optimizer (internal/optimizer)
// tunes operator parameters. Pushdown applies cheap always-safe
// rewrites; Clone supports the engine's normalized-SQL plan cache.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// Node is one logical operator.
type Node interface {
	// Schema is the node's output schema.
	Schema() *relation.Schema
	// Children returns input nodes, left to right.
	Children() []Node
	// Label names the node for EXPLAIN and the dashboard.
	Label() string
}

// Scan reads a base table.
type Scan struct {
	Table  *relation.Table
	Alias  string
	schema *relation.Schema
}

// Schema implements Node.
func (s *Scan) Schema() *relation.Schema { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Label implements Node.
func (s *Scan) Label() string {
	if s.Alias != s.Table.Name() {
		return fmt.Sprintf("Scan(%s AS %s)", s.Table.Name(), s.Alias)
	}
	return fmt.Sprintf("Scan(%s)", s.Table.Name())
}

// Filter keeps tuples satisfying every conjunct. Conjuncts are kept
// separate so the adaptive optimizer can reorder human predicates by
// estimated cost×selectivity and short-circuit HITs.
type Filter struct {
	Input     Node
	Conjuncts []qlang.Expr
}

// Schema implements Node.
func (f *Filter) Schema() *relation.Schema { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Label implements Node.
func (f *Filter) Label() string {
	parts := make([]string, len(f.Conjuncts))
	for i, c := range f.Conjuncts {
		parts[i] = c.String()
	}
	return "Filter(" + strings.Join(parts, " AND ") + ")"
}

// Join matches left and right tuples. Pred is the join predicate; when
// HumanTask is non-nil the predicate is a crowd task (Query 2) evaluated
// through the join interface, with LeftArg/RightArg the per-side
// expressions feeding it. Residual holds extra local conjuncts.
type Join struct {
	Left, Right Node
	HumanTask   *qlang.TaskDef
	LeftArg     qlang.Expr
	RightArg    qlang.Expr
	Residual    []qlang.Expr
	schema      *relation.Schema
}

// Schema implements Node.
func (j *Join) Schema() *relation.Schema { return j.schema }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *Join) Label() string {
	if j.HumanTask != nil {
		return fmt.Sprintf("HumanJoin(%s(%s, %s))", j.HumanTask.Name, j.LeftArg, j.RightArg)
	}
	parts := make([]string, len(j.Residual))
	for i, c := range j.Residual {
		parts[i] = c.String()
	}
	if len(parts) == 0 {
		return "CrossJoin"
	}
	return "Join(" + strings.Join(parts, " AND ") + ")"
}

// Project computes the SELECT items (including human UDF calls).
type Project struct {
	Input  Node
	Items  []qlang.SelectItem
	schema *relation.Schema
}

// Schema implements Node.
func (p *Project) Schema() *relation.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Label implements Node.
func (p *Project) Label() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.Expr.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Aggregate groups rows and computes aggregate functions.
type Aggregate struct {
	Input  Node
	Keys   []qlang.Expr
	Items  []qlang.SelectItem // mixture of keys and aggregate calls
	schema *relation.Schema
}

// Schema implements Node.
func (a *Aggregate) Schema() *relation.Schema { return a.schema }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Label implements Node.
func (a *Aggregate) Label() string {
	keys := make([]string, len(a.Keys))
	for i, k := range a.Keys {
		keys[i] = k.String()
	}
	return "Aggregate(by " + strings.Join(keys, ", ") + ")"
}

// OrderBy sorts; human keys (rating/rank tasks) resolve through HITs.
type OrderBy struct {
	Input Node
	Keys  []qlang.OrderItem
}

// Schema implements Node.
func (o *OrderBy) Schema() *relation.Schema { return o.Input.Schema() }

// Children implements Node.
func (o *OrderBy) Children() []Node { return []Node{o.Input} }

// Label implements Node.
func (o *OrderBy) Label() string {
	parts := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "OrderBy(" + strings.Join(parts, ", ") + ")"
}

// Rank orders its input by a single human ranking task — the
// human-powered sort. The executor hands the buffered input to the
// rank subsystem (internal/rank), which picks between batched S-way
// comparison HITs, per-item rating HITs, or the rate-then-refine
// hybrid, as priced by optimizer.ChooseRankStrategy.
type Rank struct {
	Input Node
	// Task is the ORDER BY key task (Rating or Rank type).
	Task *qlang.TaskDef
	// Compare is the comparison task used for Order HITs: Task itself
	// for Rank-type tasks, the task named by `Compare:` for Rating
	// tasks, nil when comparisons are unavailable (rate-only).
	Compare *qlang.TaskDef
	// Args are the call's argument expressions, evaluated per tuple.
	Args []qlang.Expr
	Desc bool
	// TopK > 0 is the LIMIT pushed down into the sort: only the first
	// TopK output positions must be exactly ordered, letting the
	// comparison strategies skip the full O(n²/S) pair coverage.
	TopK int
}

// Schema implements Node.
func (r *Rank) Schema() *relation.Schema { return r.Input.Schema() }

// Children implements Node.
func (r *Rank) Children() []Node { return []Node{r.Input} }

// Label implements Node.
func (r *Rank) Label() string {
	args := make([]string, len(r.Args))
	for i, a := range r.Args {
		args[i] = a.String()
	}
	s := fmt.Sprintf("Rank(%s(%s)", r.Task.Name, strings.Join(args, ", "))
	if r.Desc {
		s += " DESC"
	}
	if r.TopK > 0 {
		s += fmt.Sprintf(", top %d", r.TopK)
	}
	return s + ")"
}

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// Schema implements Node.
func (d *Distinct) Schema() *relation.Schema { return d.Input.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Label implements Node.
func (d *Distinct) Label() string { return "Distinct" }

// Limit passes through the first N rows.
type Limit struct {
	Input Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() *relation.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Explain renders the plan tree, one node per line, children indented.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Walk visits every node pre-order.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}
