package plan

import (
	"strings"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// preFilterScript declares a join whose task names a feature filter.
const preFilterScript = `
TASK isPerson(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Does this photo show a person? %s", img
  Response: YesNo

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
  PreFilter: isPerson
`

func preFilterEnv(t *testing.T, nCelebs, nSpotted int) (*qlang.Script, *relation.Catalog) {
	t.Helper()
	script, err := qlang.Parse(preFilterScript)
	if err != nil {
		t.Fatal(err)
	}
	celebs := relation.NewTable("celebrities", relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "image", Kind: relation.KindImage}))
	spotted := relation.NewTable("spottedstars", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "image", Kind: relation.KindImage}))
	for i := 0; i < nCelebs; i++ {
		_ = celebs.InsertValues(relation.NewString("c"), relation.NewImage("c.png"))
	}
	for i := 0; i < nSpotted; i++ {
		_ = spotted.InsertValues(relation.NewInt(int64(i)), relation.NewImage("s.png"))
	}
	cat := relation.NewCatalog()
	for _, tab := range []*relation.Table{celebs, spotted} {
		if err := cat.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	return script, cat
}

func buildJoinPlan(t *testing.T, script *qlang.Script, cat *relation.Catalog) Node {
	t.Helper()
	stmt, err := qlang.ParseQuery(`SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(stmt, script, cat)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestApplyPreFiltersFires(t *testing.T) {
	script, cat := preFilterEnv(t, 4, 20)
	root := buildJoinPlan(t, script, cat)
	var sawJoin, sawFilter *qlang.TaskDef
	var sawL, sawR int
	root = ApplyPreFilters(root, script, func(join, filter *qlang.TaskDef, l, r int) PreFilterDecision {
		sawJoin, sawFilter, sawL, sawR = join, filter, l, r
		return PreFilterDecision{Left: true, Right: true}
	})
	if sawJoin == nil || sawJoin.Name != "samePerson" || sawFilter.Name != "isPerson" {
		t.Fatalf("decider saw join=%v filter=%v", sawJoin, sawFilter)
	}
	if sawL != 4 || sawR != 20 {
		t.Fatalf("decider cardinalities = %d×%d, want 4×20", sawL, sawR)
	}
	join := findJoin(root)
	lp, lok := join.Left.(*PreFilter)
	rp, rok := join.Right.(*PreFilter)
	if !lok || !rok {
		t.Fatalf("join inputs = %T, %T; want both wrapped", join.Left, join.Right)
	}
	if !lp.Left || rp.Left {
		t.Fatal("side markers wrong")
	}
	if lp.Arg.String() != "celebrities.image" || rp.Arg.String() != "spottedstars.image" {
		t.Fatalf("args = %v, %v", lp.Arg, rp.Arg)
	}
	if lp.Join != join || rp.Join != join {
		t.Fatal("back-references must point at the rewritten join")
	}
	if !strings.Contains(Explain(root), "PreFilter(isPerson(celebrities.image))") {
		t.Fatalf("explain missing pre-filter:\n%s", Explain(root))
	}
	// The schema is untouched: a pre-filter only drops tuples.
	if lp.Schema() != lp.Input.Schema() {
		t.Fatal("pre-filter must pass its input schema through")
	}
}

func TestApplyPreFiltersDeclines(t *testing.T) {
	script, cat := preFilterEnv(t, 4, 20)
	root := buildJoinPlan(t, script, cat)
	root = ApplyPreFilters(root, script, func(join, filter *qlang.TaskDef, l, r int) PreFilterDecision {
		return PreFilterDecision{} // non-selective filter: not worth it
	})
	join := findJoin(root)
	if _, ok := join.Left.(*PreFilter); ok {
		t.Fatal("declined rewrite must leave the join unwrapped")
	}
	if _, ok := join.Right.(*PreFilter); ok {
		t.Fatal("declined rewrite must leave the join unwrapped")
	}
}

func TestApplyPreFiltersOneSide(t *testing.T) {
	script, cat := preFilterEnv(t, 4, 20)
	root := buildJoinPlan(t, script, cat)
	root = ApplyPreFilters(root, script, func(join, filter *qlang.TaskDef, l, r int) PreFilterDecision {
		return PreFilterDecision{Right: true} // left side all passes: skip it
	})
	join := findJoin(root)
	if _, ok := join.Left.(*PreFilter); ok {
		t.Fatal("left side must stay unwrapped")
	}
	if _, ok := join.Right.(*PreFilter); !ok {
		t.Fatal("right side must be wrapped")
	}
}

func TestApplyPreFiltersIgnoresUndeclaredJoins(t *testing.T) {
	script, cat := preFilterEnv(t, 4, 20)
	// Strip the declaration: the rewrite must not invent filters.
	def, _ := script.Task("samePerson")
	def.PreFilterTask = ""
	root := buildJoinPlan(t, script, cat)
	called := false
	root = ApplyPreFilters(root, script, func(join, filter *qlang.TaskDef, l, r int) PreFilterDecision {
		called = true
		return PreFilterDecision{Left: true, Right: true}
	})
	if called {
		t.Fatal("decider must not run without a declared pre-filter")
	}
	if _, ok := findJoin(root).Left.(*PreFilter); ok {
		t.Fatal("join must stay unwrapped")
	}
	// An unresolvable filter name is equally ignored.
	def.PreFilterTask = "noSuchTask"
	root2 := buildJoinPlan(t, script, cat)
	root2 = ApplyPreFilters(root2, script, func(join, filter *qlang.TaskDef, l, r int) PreFilterDecision {
		t.Fatal("decider must not run for an unknown filter task")
		return PreFilterDecision{}
	})
	if _, ok := findJoin(root2).Left.(*PreFilter); ok {
		t.Fatal("join must stay unwrapped")
	}
}

func TestEstimateRows(t *testing.T) {
	script, cat := preFilterEnv(t, 4, 20)
	root := buildJoinPlan(t, script, cat)
	join := findJoin(root)
	if got := EstimateRows(join); got != 80 {
		t.Fatalf("join estimate = %d, want 4×20", got)
	}
	lim := &Limit{Input: join, N: 7}
	if got := EstimateRows(lim); got != 7 {
		t.Fatalf("limit estimate = %d", got)
	}
	_ = script
}

// findJoin returns the first Join in the plan.
func findJoin(n Node) *Join {
	var out *Join
	Walk(n, func(node Node) {
		if j, ok := node.(*Join); ok && out == nil {
			out = j
		}
	})
	return out
}
