package plan

import (
	"fmt"
	"strings"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// AggregateFuncs are the built-in aggregate call names the planner
// recognizes in SELECT items.
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// Build compiles a SELECT statement into a logical plan. script supplies
// TASK definitions for UDF calls; catalog supplies base tables.
func Build(stmt *qlang.SelectStmt, script *qlang.Script, catalog *relation.Catalog) (Node, error) {
	b := &builder{script: script, catalog: catalog}
	return b.build(stmt)
}

type builder struct {
	script  *qlang.Script
	catalog *relation.Catalog
}

// build assembles scan → filter → join → project/aggregate → distinct →
// orderby → limit.
func (b *builder) build(stmt *qlang.SelectStmt) (Node, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("plan: query has no FROM tables")
	}

	// One scan per FROM table, schemas qualified by alias.
	var scans []scanEntry
	seen := map[string]bool{}
	for _, ref := range stmt.From {
		tab, ok := b.catalog.Table(ref.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %q", ref.Name)
		}
		alias := strings.ToLower(ref.EffectiveAlias())
		if seen[alias] {
			return nil, fmt.Errorf("plan: duplicate table alias %q", alias)
		}
		seen[alias] = true
		scans = append(scans, scanEntry{
			node:  &Scan{Table: tab, Alias: alias, schema: tab.Schema().Qualify(alias)},
			alias: alias,
		})
	}

	// Split WHERE into conjuncts and classify by referenced aliases.
	conjuncts := splitConjuncts(stmt.Where)
	aliasOf := func(e qlang.Expr) (map[string]bool, error) {
		return b.referencedAliases(e, scans)
	}
	perAlias := make(map[string][]qlang.Expr)
	var joinConjuncts []qlang.Expr
	for _, c := range conjuncts {
		refs, err := aliasOf(c)
		if err != nil {
			return nil, err
		}
		switch len(refs) {
		case 0, 1:
			target := scans[0].alias
			for a := range refs {
				target = a
			}
			perAlias[target] = append(perAlias[target], c)
		default:
			joinConjuncts = append(joinConjuncts, c)
		}
	}

	// Filter above each scan, then a left-deep join tree.
	var root Node
	for i, sc := range scans {
		n := sc.node
		if cs := perAlias[sc.alias]; len(cs) > 0 {
			n = &Filter{Input: n, Conjuncts: cs}
		}
		if i == 0 {
			root = n
			continue
		}
		joined, usedIdx, err := b.makeJoin(root, n, joinConjuncts)
		if err != nil {
			return nil, err
		}
		joinConjuncts = removeIndices(joinConjuncts, usedIdx)
		root = joined
	}
	if len(joinConjuncts) > 0 {
		// Conjuncts that still span multiple aliases become a filter on
		// top (e.g. three-way conditions).
		root = &Filter{Input: root, Conjuncts: joinConjuncts}
	}

	// Aggregate or Project.
	hasAgg := false
	for _, it := range stmt.Items {
		if call, ok := it.Expr.(*qlang.Call); ok && AggregateFuncs[strings.ToLower(call.Name)] {
			hasAgg = true
		}
	}
	if hasAgg || len(stmt.GroupBy) > 0 {
		schema, err := b.itemsSchema(stmt.Items, root.Schema())
		if err != nil {
			return nil, err
		}
		root = &Aggregate{Input: root, Keys: stmt.GroupBy, Items: stmt.Items, schema: schema}
	} else if !isStarOnly(stmt.Items) {
		schema, err := b.itemsSchema(stmt.Items, root.Schema())
		if err != nil {
			return nil, err
		}
		root = &Project{Input: root, Items: stmt.Items, schema: schema}
	}

	if stmt.Distinct {
		root = &Distinct{Input: root}
	}
	if len(stmt.OrderBy) > 0 {
		// Validate order keys resolve against the (possibly projected)
		// schema or the tasks.
		for _, k := range stmt.OrderBy {
			if _, err := b.typeOf(k.Expr, root.Schema()); err != nil {
				return nil, err
			}
		}
		if rk, ok := b.rankNode(stmt, root); ok {
			root = rk
		} else {
			root = &OrderBy{Input: root, Keys: stmt.OrderBy}
		}
	}
	if stmt.Limit >= 0 {
		root = &Limit{Input: root, N: stmt.Limit}
	}
	return root, nil
}

// rankNode recognizes the human-powered sort shape: a single ORDER BY
// key that is a bare call to a Rating or Rank task. It builds the
// plan.Rank node — resolving the comparison companion (`Compare:` on a
// Rating task, the task itself for Rank) and pushing LIMIT down as
// TopK. Anything else (multiple keys, mixed expressions, field
// projections) keeps the generic OrderBy.
func (b *builder) rankNode(stmt *qlang.SelectStmt, input Node) (*Rank, bool) {
	if len(stmt.OrderBy) != 1 {
		return nil, false
	}
	key := stmt.OrderBy[0]
	call, ok := key.Expr.(*qlang.Call)
	if !ok || call.Field != "" {
		return nil, false
	}
	def, ok := b.script.Task(call.Name)
	if !ok {
		return nil, false
	}
	rk := &Rank{Input: input, Args: call.Args, Desc: key.Desc}
	if stmt.Limit > 0 {
		rk.TopK = stmt.Limit
	}
	switch def.Type {
	case qlang.TaskRating:
		rk.Task = def
		if def.CompareTask != "" {
			if cmp, ok := b.script.Task(def.CompareTask); ok && cmp.Type == qlang.TaskRank {
				rk.Compare = cmp
			}
		}
	case qlang.TaskRank:
		rk.Task = def
		rk.Compare = def
	default:
		return nil, false
	}
	return rk, true
}

// makeJoin combines left and right, pulling the applicable join
// conjuncts. A conjunct that is a bare call to a JoinPredicate task with
// one argument per side becomes a HumanJoin.
func (b *builder) makeJoin(left, right Node, conjuncts []qlang.Expr) (Node, []int, error) {
	schema, err := left.Schema().Concat(right.Schema())
	if err != nil {
		return nil, nil, fmt.Errorf("plan: join schemas: %v", err)
	}
	j := &Join{Left: left, Right: right, schema: schema}
	var used []int
	for i, c := range conjuncts {
		if !b.resolvable(c, schema) {
			continue
		}
		if j.HumanTask == nil {
			if call, ok := c.(*qlang.Call); ok && len(call.Args) == 2 && call.Field == "" {
				if def, ok := b.script.Task(call.Name); ok && def.Type == qlang.TaskJoinPredicate {
					lOK := b.resolvable(call.Args[0], left.Schema())
					rOK := b.resolvable(call.Args[1], right.Schema())
					if lOK && rOK {
						j.HumanTask = def
						j.LeftArg = call.Args[0]
						j.RightArg = call.Args[1]
						used = append(used, i)
						continue
					}
					// Arguments swapped relative to table order.
					if b.resolvable(call.Args[1], left.Schema()) && b.resolvable(call.Args[0], right.Schema()) {
						j.HumanTask = def
						j.LeftArg = call.Args[1]
						j.RightArg = call.Args[0]
						used = append(used, i)
						continue
					}
				}
			}
		}
		j.Residual = append(j.Residual, c)
		used = append(used, i)
	}
	return j, used, nil
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e qlang.Expr) []qlang.Expr {
	if e == nil {
		return nil
	}
	if bin, ok := e.(*qlang.Binary); ok && bin.Op == "AND" {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []qlang.Expr{e}
}

func removeIndices(xs []qlang.Expr, idx []int) []qlang.Expr {
	if len(idx) == 0 {
		return xs
	}
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	out := xs[:0:0]
	for i, x := range xs {
		if !drop[i] {
			out = append(out, x)
		}
	}
	return out
}

func isStarOnly(items []qlang.SelectItem) bool {
	if len(items) != 1 {
		return false
	}
	_, ok := items[0].Expr.(*qlang.Star)
	return ok
}

// scanEntry pairs a FROM table's scan node with its alias.
type scanEntry struct {
	node  Node
	alias string
}

// referencedAliases finds which FROM aliases an expression touches, and
// validates that column references resolve somewhere.
func (b *builder) referencedAliases(e qlang.Expr, scans []scanEntry) (map[string]bool, error) {
	refs := make(map[string]bool)
	var err error
	var walk func(qlang.Expr)
	walk = func(e qlang.Expr) {
		if err != nil {
			return
		}
		switch v := e.(type) {
		case *qlang.ColumnRef:
			if v.Table != "" {
				a := strings.ToLower(v.Table)
				found := false
				for _, sc := range scans {
					if sc.alias == a {
						found = true
						if _, ok := sc.node.Schema().Lookup(v.QualifiedName()); !ok {
							err = fmt.Errorf("plan: column %q not in table %q", v.Name, v.Table)
							return
						}
					}
				}
				if !found {
					err = fmt.Errorf("plan: unknown table alias %q", v.Table)
					return
				}
				refs[a] = true
				return
			}
			// Bare column: find its unique home.
			var homes []string
			for _, sc := range scans {
				if _, ok := sc.node.Schema().Lookup(v.Name); ok {
					homes = append(homes, sc.alias)
				}
			}
			switch len(homes) {
			case 0:
				err = fmt.Errorf("plan: unknown column %q", v.Name)
			case 1:
				refs[homes[0]] = true
			default:
				err = fmt.Errorf("plan: ambiguous column %q (in %s)", v.Name, strings.Join(homes, ", "))
			}
		case *qlang.Call:
			if _, ok := b.script.Task(v.Name); !ok && !AggregateFuncs[strings.ToLower(v.Name)] {
				err = fmt.Errorf("plan: unknown task or function %q", v.Name)
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		case *qlang.Binary:
			walk(v.L)
			walk(v.R)
		case *qlang.Unary:
			walk(v.X)
		}
	}
	walk(e)
	if err != nil {
		return nil, err
	}
	return refs, nil
}

// resolvable reports whether every column the expression references
// exists in the schema.
func (b *builder) resolvable(e qlang.Expr, schema *relation.Schema) bool {
	ok := true
	var walk func(qlang.Expr)
	walk = func(e qlang.Expr) {
		switch v := e.(type) {
		case *qlang.ColumnRef:
			if _, found := schema.Lookup(v.QualifiedName()); !found {
				ok = false
			}
		case *qlang.Call:
			for _, a := range v.Args {
				walk(a)
			}
		case *qlang.Binary:
			walk(v.L)
			walk(v.R)
		case *qlang.Unary:
			walk(v.X)
		}
	}
	walk(e)
	return ok
}

// itemsSchema infers the output schema of SELECT items.
func (b *builder) itemsSchema(items []qlang.SelectItem, in *relation.Schema) (*relation.Schema, error) {
	var cols []relation.Column
	for i, it := range items {
		if _, ok := it.Expr.(*qlang.Star); ok {
			cols = append(cols, in.Columns()...)
			continue
		}
		kind, err := b.typeOf(it.Expr, in)
		if err != nil {
			return nil, err
		}
		cols = append(cols, relation.Column{Name: it.OutputName(i), Kind: kind})
	}
	return relation.NewSchema(cols...)
}

// typeOf infers an expression's kind against a schema.
func (b *builder) typeOf(e qlang.Expr, schema *relation.Schema) (relation.Kind, error) {
	switch v := e.(type) {
	case *qlang.Literal:
		return v.Value.Kind(), nil
	case *qlang.ColumnRef:
		if i, ok := schema.Lookup(v.QualifiedName()); ok {
			return schema.Column(i).Kind, nil
		}
		return relation.KindNull, fmt.Errorf("plan: unknown column %q", v.QualifiedName())
	case *qlang.Call:
		name := strings.ToLower(v.Name)
		if AggregateFuncs[name] {
			for _, a := range v.Args {
				if _, err := b.typeOf(a, schema); err != nil {
					return relation.KindNull, err
				}
			}
			switch name {
			case "count":
				return relation.KindInt, nil
			case "sum", "avg":
				return relation.KindFloat, nil
			default: // min, max
				if len(v.Args) != 1 {
					return relation.KindNull, fmt.Errorf("plan: %s takes one argument", name)
				}
				return b.typeOf(v.Args[0], schema)
			}
		}
		def, ok := b.script.Task(v.Name)
		if !ok {
			return relation.KindNull, fmt.Errorf("plan: unknown task %q", v.Name)
		}
		if len(v.Args) != len(def.Params) {
			return relation.KindNull, fmt.Errorf("plan: %s takes %d arguments, got %d", def.Name, len(def.Params), len(v.Args))
		}
		for _, a := range v.Args {
			if _, err := b.typeOf(a, schema); err != nil {
				return relation.KindNull, err
			}
		}
		if v.Field != "" {
			for _, ret := range def.Returns {
				if strings.EqualFold(ret.Name, v.Field) {
					return ret.Kind, nil
				}
			}
			return relation.KindNull, fmt.Errorf("plan: task %s has no return field %q", def.Name, v.Field)
		}
		if def.ReturnsTuple() {
			return relation.KindTuple, nil
		}
		if def.Type == qlang.TaskRating {
			// Redundancy reduces ratings to a mean.
			return relation.KindFloat, nil
		}
		return def.ReturnKind(), nil
	case *qlang.Binary:
		lk, err := b.typeOf(v.L, schema)
		if err != nil {
			return relation.KindNull, err
		}
		rk, err := b.typeOf(v.R, schema)
		if err != nil {
			return relation.KindNull, err
		}
		switch v.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=":
			return relation.KindBool, nil
		default: // + - * /
			if lk == relation.KindInt && rk == relation.KindInt && v.Op != "/" {
				return relation.KindInt, nil
			}
			return relation.KindFloat, nil
		}
	case *qlang.Unary:
		k, err := b.typeOf(v.X, schema)
		if err != nil {
			return relation.KindNull, err
		}
		if v.Op == "NOT" || v.Op == "POSSIBLY" {
			return relation.KindBool, nil
		}
		return k, nil
	case *qlang.Star:
		return relation.KindNull, fmt.Errorf("plan: * not allowed here")
	default:
		return relation.KindNull, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// TypeOf exposes expression typing for the executor.
func TypeOf(e qlang.Expr, schema *relation.Schema, script *qlang.Script) (relation.Kind, error) {
	b := &builder{script: script}
	return b.typeOf(e, schema)
}
