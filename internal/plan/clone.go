package plan

import "repro/internal/qlang"

// Clone deep-copies a plan tree. Expression trees are copied via
// qlang.CloneExpr; schemas and base tables are shared (both are
// immutable from the plan's point of view — INSERTs mutate table
// contents, never the *Table identity the Scan holds).
//
// sub optionally maps source literals to replacement expressions,
// letting the plan cache re-parameterize a cached template with a fresh
// query's constants. The returned map records every literal copied
// without substitution as original → copy, so a caller cloning a plan
// for caching can translate the source statement's literal slots into
// slots inside the clone.
func Clone(n Node, sub map[*qlang.Literal]qlang.Expr) (Node, map[*qlang.Literal]*qlang.Literal) {
	c := &cloner{sub: sub, rec: map[*qlang.Literal]*qlang.Literal{}, joins: map[*Join]*Join{}}
	return c.node(n), c.rec
}

type cloner struct {
	sub   map[*qlang.Literal]qlang.Expr
	rec   map[*qlang.Literal]*qlang.Literal
	joins map[*Join]*Join // original → clone, for PreFilter backpointers
}

func (c *cloner) expr(e qlang.Expr) qlang.Expr {
	return qlang.CloneExpr(e, c.sub, c.rec)
}

func (c *cloner) exprs(es []qlang.Expr) []qlang.Expr {
	if es == nil {
		return nil
	}
	out := make([]qlang.Expr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *cloner) items(items []qlang.SelectItem) []qlang.SelectItem {
	if items == nil {
		return nil
	}
	out := make([]qlang.SelectItem, len(items))
	for i, it := range items {
		out[i] = qlang.SelectItem{Expr: c.expr(it.Expr), Alias: it.Alias}
	}
	return out
}

func (c *cloner) node(n Node) Node {
	switch v := n.(type) {
	case *Scan:
		cp := *v
		return &cp
	case *Filter:
		return &Filter{Input: c.node(v.Input), Conjuncts: c.exprs(v.Conjuncts)}
	case *Join:
		cp := &Join{HumanTask: v.HumanTask, schema: v.schema}
		c.joins[v] = cp
		cp.Left = c.node(v.Left)
		cp.Right = c.node(v.Right)
		cp.LeftArg = c.expr(v.LeftArg)
		cp.RightArg = c.expr(v.RightArg)
		cp.Residual = c.exprs(v.Residual)
		return cp
	case *Project:
		return &Project{Input: c.node(v.Input), Items: c.items(v.Items), schema: v.schema}
	case *Aggregate:
		return &Aggregate{Input: c.node(v.Input), Keys: c.exprs(v.Keys), Items: c.items(v.Items), schema: v.schema}
	case *OrderBy:
		keys := make([]qlang.OrderItem, len(v.Keys))
		for i, k := range v.Keys {
			keys[i] = qlang.OrderItem{Expr: c.expr(k.Expr), Desc: k.Desc}
		}
		return &OrderBy{Input: c.node(v.Input), Keys: keys}
	case *Rank:
		return &Rank{Input: c.node(v.Input), Task: v.Task, Compare: v.Compare,
			Args: c.exprs(v.Args), Desc: v.Desc, TopK: v.TopK}
	case *Distinct:
		return &Distinct{Input: c.node(v.Input)}
	case *Limit:
		return &Limit{Input: c.node(v.Input), N: v.N}
	case *PreFilter:
		return &PreFilter{Input: c.node(v.Input), Task: v.Task,
			Arg: c.expr(v.Arg), Join: c.joins[v.Join], Left: v.Left}
	default:
		return n
	}
}
