package plan

import (
	"fmt"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// PreFilter runs a cheap boolean feature-filter task over one input of a
// human join, discarding tuples the filter rejects so the join's
// human-evaluated cross product shrinks (the paper's filtering-based
// reduction in cross-product size). The executor resolves the filter
// with single-assignment POSSIBLY-style semantics: it is an
// approximation the join predicate would re-check anyway, so redundancy
// is not worth paying for.
type PreFilter struct {
	Input Node
	// Task is the boolean feature-filter task applied to each tuple.
	Task *qlang.TaskDef
	// Arg is this side's join argument, fed to Task.
	Arg qlang.Expr
	// Join is the human join this node protects; Left tells which input.
	Join *Join
	Left bool
}

// Schema implements Node.
func (p *PreFilter) Schema() *relation.Schema { return p.Input.Schema() }

// Children implements Node.
func (p *PreFilter) Children() []Node { return []Node{p.Input} }

// Label implements Node.
func (p *PreFilter) Label() string {
	return fmt.Sprintf("PreFilter(%s(%s))", p.Task.Name, p.Arg)
}

// PreFilterDecision says which inputs of one join to wrap.
type PreFilterDecision struct {
	Left, Right bool
}

// PreFilterDecider is the optimizer's cost hook: given the join task,
// its declared feature filter and the estimated input cardinalities, it
// decides which sides (if any) are worth pre-filtering. The engine
// plugs in a decider backed by optimizer.DecidePreFilter and the
// Statistics Manager's live selectivity estimates.
type PreFilterDecider func(join, filter *qlang.TaskDef, leftRows, rightRows int) PreFilterDecision

// ApplyPreFilters rewrites the plan, wrapping the inputs of every human
// join whose task declares a PreFilter in feature-filter nodes when
// decide predicts the filter pays for itself. A missing or ineligible
// filter task (not boolean, not unary) leaves the join untouched: the
// rewrite is an optimization, never a requirement.
func ApplyPreFilters(n Node, script *qlang.Script, decide PreFilterDecider) Node {
	switch v := n.(type) {
	case *Filter:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *Project:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *Aggregate:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *OrderBy:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *Rank:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *Distinct:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *Limit:
		v.Input = ApplyPreFilters(v.Input, script, decide)
	case *Join:
		v.Left = ApplyPreFilters(v.Left, script, decide)
		v.Right = ApplyPreFilters(v.Right, script, decide)
		fdef, ok := eligiblePreFilter(v, script)
		if !ok || decide == nil {
			return v
		}
		d := decide(v.HumanTask, fdef, EstimateRows(v.Left), EstimateRows(v.Right))
		if d.Left {
			v.Left = &PreFilter{Input: v.Left, Task: fdef, Arg: v.LeftArg, Join: v, Left: true}
		}
		if d.Right {
			v.Right = &PreFilter{Input: v.Right, Task: fdef, Arg: v.RightArg, Join: v, Left: false}
		}
	}
	return n
}

// eligiblePreFilter resolves a join's declared feature filter: a unary
// boolean task the planner can apply to each side's join argument.
func eligiblePreFilter(j *Join, script *qlang.Script) (*qlang.TaskDef, bool) {
	if j.HumanTask == nil || j.HumanTask.PreFilterTask == "" {
		return nil, false
	}
	fdef, ok := script.Task(j.HumanTask.PreFilterTask)
	if !ok || len(fdef.Params) != 1 {
		return nil, false
	}
	if len(fdef.Returns) != 1 || fdef.Returns[0].Kind != relation.KindBool {
		return nil, false
	}
	return fdef, true
}

// EstimateRows gives a plan-time cardinality estimate for cost
// decisions. Base tables report their current size; filters are assumed
// non-reducing (conservative: overestimating inputs only makes a
// pre-filter look more attractive on the side it protects and is
// corrected by the executor's mid-query re-check); joins multiply.
func EstimateRows(n Node) int {
	switch v := n.(type) {
	case *Scan:
		return v.Table.Len()
	case *Join:
		return EstimateRows(v.Left) * EstimateRows(v.Right)
	case *Limit:
		est := EstimateRows(v.Input)
		if v.N < est {
			return v.N
		}
		return est
	default:
		children := n.Children()
		if len(children) == 0 {
			return 0
		}
		return EstimateRows(children[0])
	}
}
