package plan

import (
	"strings"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

const testScript = `
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO of %s", companyName
  Response: Form(("CEO", String), ("Phone", String))

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)

TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo

TASK squareScore(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "Rate %s", pic
  Response: Rating(1, 5)
`

func testEnv(t *testing.T) (*qlang.Script, *relation.Catalog) {
	t.Helper()
	script, err := qlang.Parse(testScript)
	if err != nil {
		t.Fatal(err)
	}
	cat := relation.NewCatalog()
	companies := relation.NewTable("companies", relation.MustSchema(
		relation.Column{Name: "companyName", Kind: relation.KindString}))
	celebrities := relation.NewTable("celebrities", relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "image", Kind: relation.KindImage}))
	spotted := relation.NewTable("spottedstars", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "image", Kind: relation.KindImage}))
	photos := relation.NewTable("photos", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "img", Kind: relation.KindImage}))
	for _, tab := range []*relation.Table{companies, celebrities, spotted, photos} {
		if err := cat.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	return script, cat
}

func mustBuild(t *testing.T, src string) Node {
	t.Helper()
	script, cat := testEnv(t)
	stmt, err := qlang.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(stmt, script, cat)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildQuery1(t *testing.T) {
	n := mustBuild(t, `SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies`)
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	if _, ok := proj.Input.(*Scan); !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	s := proj.Schema()
	if s.Len() != 3 {
		t.Fatalf("schema = %v", s)
	}
	if s.Column(1).Kind != relation.KindString || s.Column(1).Name != "findCEO.CEO" {
		t.Fatalf("col1 = %+v", s.Column(1))
	}
}

func TestBuildQuery2HumanJoin(t *testing.T) {
	n := mustBuild(t, `SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`)
	proj := n.(*Project)
	join, ok := proj.Input.(*Join)
	if !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	if join.HumanTask == nil || join.HumanTask.Name != "samePerson" {
		t.Fatal("human join not detected")
	}
	if join.LeftArg.String() != "celebrities.image" || join.RightArg.String() != "spottedstars.image" {
		t.Fatalf("args = %v, %v", join.LeftArg, join.RightArg)
	}
	if len(join.Residual) != 0 {
		t.Fatalf("residual = %v", join.Residual)
	}
}

func TestBuildSwappedJoinArgs(t *testing.T) {
	n := mustBuild(t, `SELECT celebrities.name FROM celebrities, spottedstars WHERE samePerson(spottedstars.image, celebrities.image)`)
	join := n.(*Project).Input.(*Join)
	if join.HumanTask == nil {
		t.Fatal("human join not detected with swapped args")
	}
	if join.LeftArg.String() != "celebrities.image" {
		t.Fatalf("left arg = %v", join.LeftArg)
	}
}

func TestFilterPushdown(t *testing.T) {
	n := mustBuild(t, `SELECT celebrities.name FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image) AND spottedstars.id > 5 AND isCat(celebrities.image)`)
	join := n.(*Project).Input.(*Join)
	// spottedstars.id > 5 should be under the right side of the join,
	// isCat(celebrities.image) under the left.
	leftFilter, ok := join.Left.(*Filter)
	if !ok {
		t.Fatalf("left = %T; want filter pushdown", join.Left)
	}
	if !strings.Contains(leftFilter.Label(), "isCat") {
		t.Fatalf("left filter = %s", leftFilter.Label())
	}
	rightFilter, ok := join.Right.(*Filter)
	if !ok {
		t.Fatalf("right = %T", join.Right)
	}
	if !strings.Contains(rightFilter.Label(), "id") {
		t.Fatalf("right filter = %s", rightFilter.Label())
	}
}

func TestMultipleConjunctsStaySeparate(t *testing.T) {
	n := mustBuild(t, `SELECT img FROM photos WHERE isCat(img) AND id > 3 AND isCat(img)`)
	f := n.(*Project).Input.(*Filter)
	if len(f.Conjuncts) != 3 {
		t.Fatalf("conjuncts = %d; adaptive ordering needs them separate", len(f.Conjuncts))
	}
}

func TestOrderLimitDistinct(t *testing.T) {
	// A single bare ranking-task key builds the human-powered sort
	// node, with the LIMIT pushed down as TopK (the Limit node above
	// still enforces the row count).
	n := mustBuild(t, `SELECT DISTINCT img FROM photos ORDER BY squareScore(img) DESC LIMIT 5`)
	lim, ok := n.(*Limit)
	if !ok || lim.N != 5 {
		t.Fatalf("root = %T", n)
	}
	rk, ok := lim.Input.(*Rank)
	if !ok || !rk.Desc {
		t.Fatalf("under limit = %T", lim.Input)
	}
	if rk.TopK != 5 {
		t.Fatalf("TopK = %d, want the LIMIT pushed down", rk.TopK)
	}
	if rk.Task == nil || rk.Task.Name != "squareScore" {
		t.Fatalf("rank task = %v", rk.Task)
	}
	if rk.Compare != nil {
		t.Fatalf("squareScore declares no Compare companion, got %v", rk.Compare)
	}
	if _, ok := rk.Input.(*Distinct); !ok {
		t.Fatalf("under rank = %T", rk.Input)
	}
}

func TestOrderByMultiKeyKeepsGenericSort(t *testing.T) {
	n := mustBuild(t, `SELECT img FROM photos ORDER BY squareScore(img), img`)
	ob, ok := n.(*OrderBy)
	if !ok || len(ob.Keys) != 2 {
		t.Fatalf("root = %T; multi-key ORDER BY must stay generic", n)
	}
}

func TestAggregatePlan(t *testing.T) {
	n := mustBuild(t, `SELECT count() AS n, avg(id) FROM photos GROUP BY img`)
	agg, ok := n.(*Aggregate)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	s := agg.Schema()
	if s.Column(0).Name != "n" || s.Column(0).Kind != relation.KindInt {
		t.Fatalf("count col = %+v", s.Column(0))
	}
	if s.Column(1).Kind != relation.KindFloat {
		t.Fatalf("avg col = %+v", s.Column(1))
	}
}

func TestSelectStarPlan(t *testing.T) {
	n := mustBuild(t, `SELECT * FROM photos`)
	if _, ok := n.(*Scan); !ok {
		t.Fatalf("SELECT * should plan to a bare scan, got %T", n)
	}
}

func TestRatingCallTypesAsFloat(t *testing.T) {
	n := mustBuild(t, `SELECT squareScore(img) FROM photos`)
	if k := n.Schema().Column(0).Kind; k != relation.KindFloat {
		t.Fatalf("rating call kind = %v (mean over assignments)", k)
	}
}

func TestBuildErrors(t *testing.T) {
	script, cat := testEnv(t)
	bad := []string{
		`SELECT x FROM nosuch`,                          // unknown table
		`SELECT nosuchcol FROM photos`,                  // unknown column
		`SELECT img FROM photos WHERE nosuchtask(img)`,  // unknown task
		`SELECT image FROM celebrities, spottedstars`,   // ambiguous column
		`SELECT img FROM photos p, photos p`,            // duplicate alias
		`SELECT findCEO(img, img) FROM photos`,          // arity
		`SELECT findCEO(img).Nope FROM photos`,          // unknown field
		`SELECT photos.img FROM photos ORDER BY nosuch`, // bad order key
		`SELECT zz.img FROM photos`,                     // unknown alias
		`SELECT min(id, img) FROM photos`,               // min arity
	}
	for _, src := range bad {
		stmt, err := qlang.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(stmt, script, cat); err == nil {
			t.Errorf("Build(%q): expected error", src)
		}
	}
}

func TestExplainShape(t *testing.T) {
	n := mustBuild(t, `SELECT celebrities.name FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image) LIMIT 3`)
	out := Explain(n)
	wantOrder := []string{"Limit(3)", "Project", "HumanJoin", "Scan(celebrities)", "Scan(spottedstars)"}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("explain missing %q:\n%s", w, out)
		}
		if i < pos {
			t.Fatalf("explain order wrong at %q:\n%s", w, out)
		}
		pos = i
	}
}

func TestWalkVisitsAll(t *testing.T) {
	n := mustBuild(t, `SELECT celebrities.name FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`)
	count := 0
	Walk(n, func(Node) { count++ })
	if count != 4 { // project, join, scan, scan
		t.Fatalf("walk visited %d nodes", count)
	}
}

func TestTypeOfExported(t *testing.T) {
	script, _ := testEnv(t)
	schema := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindImage})
	k, err := TypeOf(&qlang.Call{Name: "isCat", Args: []qlang.Expr{&qlang.ColumnRef{Name: "img"}}}, schema, script)
	if err != nil || k != relation.KindBool {
		t.Fatalf("TypeOf = %v err=%v", k, err)
	}
}
