package plan

import (
	"strings"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

func buildPlan(t *testing.T, query string) (Node, *qlang.SelectStmt) {
	t.Helper()
	script, cat := testEnv(t)
	stmt, err := qlang.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(stmt, script, cat)
	if err != nil {
		t.Fatal(err)
	}
	return n, stmt
}

func TestCloneIsDeepAndRecordsLiterals(t *testing.T) {
	n, stmt := buildPlan(t, `SELECT id FROM spottedstars WHERE id < 10 ORDER BY id LIMIT 3`)
	clone, rec := Clone(n, nil)
	if Explain(clone) != Explain(n) {
		t.Fatalf("clone explain differs:\n%s\nvs\n%s", Explain(clone), Explain(n))
	}
	// The statement's literal appears in the plan's Filter; it must be
	// recorded with a distinct copy.
	lits := qlang.CollectStmtLiterals(stmt)
	if len(lits) != 1 {
		t.Fatalf("statement literals = %d, want 1", len(lits))
	}
	cl, ok := rec[lits[0]]
	if !ok {
		t.Fatal("plan clone did not record the statement's literal (Build must share literal pointers with the stmt)")
	}
	if cl == lits[0] {
		t.Fatal("recorded clone aliases the source literal")
	}

	// Mutating the clone's literal must not leak into the original plan.
	cl.Value = relation.NewInt(99)
	if strings.Contains(Explain(n), "99") {
		t.Fatalf("original plan saw the clone's mutation:\n%s", Explain(n))
	}
	if !strings.Contains(Explain(clone), "99") {
		t.Fatalf("clone does not reflect its own literal:\n%s", Explain(clone))
	}
}

func TestCloneSubstitutesLiterals(t *testing.T) {
	n, stmt := buildPlan(t, `SELECT id FROM spottedstars WHERE id < 10`)
	lits := qlang.CollectStmtLiterals(stmt)
	sub := map[*qlang.Literal]qlang.Expr{
		lits[0]: &qlang.Literal{Value: relation.NewInt(42)},
	}
	clone, _ := Clone(n, sub)
	if !strings.Contains(Explain(clone), "42") {
		t.Fatalf("substituted clone:\n%s", Explain(clone))
	}
	if !strings.Contains(Explain(n), "10") {
		t.Fatalf("original plan mutated:\n%s", Explain(n))
	}
}

func TestClonePreFilterBackpointer(t *testing.T) {
	script, cat := preFilterEnv(t, 3, 3)
	n := buildJoinPlan(t, script, cat)
	// Force-wrap both sides regardless of cost.
	n = ApplyPreFilters(n, script, func(_, _ *qlang.TaskDef, _, _ int) PreFilterDecision {
		return PreFilterDecision{Left: true, Right: true}
	})
	var pfs []*PreFilter
	Walk(n, func(m Node) {
		if pf, ok := m.(*PreFilter); ok {
			pfs = append(pfs, pf)
		}
	})
	if len(pfs) != 2 {
		t.Fatalf("pre-filters applied = %d, want 2:\n%s", len(pfs), Explain(n))
	}

	clone, _ := Clone(n, nil)
	var cj *Join
	var cpfs []*PreFilter
	Walk(clone, func(m Node) {
		switch v := m.(type) {
		case *Join:
			cj = v
		case *PreFilter:
			cpfs = append(cpfs, v)
		}
	})
	for _, pf := range cpfs {
		if pf.Join != cj {
			t.Fatalf("cloned PreFilter.Join points outside the clone (got %p, want %p)", pf.Join, cj)
		}
	}
}

func TestPushdownLimitThroughProject(t *testing.T) {
	n, _ := buildPlan(t, `SELECT id FROM spottedstars LIMIT 3`)
	out := Pushdown(n)
	p, ok := out.(*Project)
	if !ok {
		t.Fatalf("root after pushdown = %T, want *Project:\n%s", out, Explain(out))
	}
	l, ok := p.Input.(*Limit)
	if !ok || l.N != 3 {
		t.Fatalf("limit not pushed below projection:\n%s", Explain(out))
	}
}

func TestPushdownKeepsLimitAboveCallProject(t *testing.T) {
	n, _ := buildPlan(t, `SELECT findCEO(companyName).CEO FROM companies LIMIT 2`)
	out := Pushdown(n)
	if _, ok := out.(*Limit); !ok {
		t.Fatalf("call-bearing projection must stay below the limit:\n%s", Explain(out))
	}
}

func TestPushdownSplitsSingleSideResiduals(t *testing.T) {
	n, _ := buildPlan(t, `SELECT celebrities.name FROM celebrities, spottedstars WHERE celebrities.name = 'x' AND spottedstars.id < 5 AND samePerson(celebrities.image, spottedstars.image)`)
	before := Explain(n)
	out := Pushdown(n)
	var join *Join
	Walk(out, func(m Node) {
		if j, ok := m.(*Join); ok {
			join = j
		}
	})
	if join == nil {
		t.Fatalf("no join in plan:\n%s", before)
	}
	lf, lok := join.Left.(*Filter)
	rf, rok := join.Right.(*Filter)
	if !lok || !rok {
		t.Fatalf("single-side conjuncts not pushed into both inputs:\n%s", Explain(out))
	}
	if got := lf.Conjuncts[0].String(); !strings.Contains(got, "celebrities.name") {
		t.Errorf("left pushed conjunct = %s", got)
	}
	if got := rf.Conjuncts[0].String(); !strings.Contains(got, "spottedstars.id") {
		t.Errorf("right pushed conjunct = %s", got)
	}
}
