package plan

import (
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Pushdown rewrites a freshly built plan in place with two cheap,
// always-safe transformations:
//
//   - LIMIT through Project: Project emits exactly one row per input
//     row, so Limit(Project(X)) ≡ Project(Limit(X)). Pulling the limit
//     below the projection stops upstream work — including human-task
//     calls in the select list — after N input rows instead of
//     projecting the whole input.
//
//   - Single-side residual conjuncts into join inputs: a call-free join
//     residual whose columns resolve against exactly one input schema
//     filters that input before the cross product instead of after it,
//     shrinking the pair space the join materializes.
//
// Human-task predicates are never moved: their placement is the adaptive
// optimizer's job and reordering them would change HIT accounting.
func Pushdown(n Node) Node {
	switch v := n.(type) {
	case *Limit:
		v.Input = Pushdown(v.Input)
		if p, ok := v.Input.(*Project); ok && !projectHasCalls(p) {
			v.Input = p.Input
			p.Input = v
			return p
		}
	case *Filter:
		v.Input = Pushdown(v.Input)
	case *Project:
		v.Input = Pushdown(v.Input)
	case *Aggregate:
		v.Input = Pushdown(v.Input)
	case *OrderBy:
		v.Input = Pushdown(v.Input)
	case *Rank:
		v.Input = Pushdown(v.Input)
	case *Distinct:
		v.Input = Pushdown(v.Input)
	case *PreFilter:
		v.Input = Pushdown(v.Input)
	case *Join:
		v.Left = Pushdown(v.Left)
		v.Right = Pushdown(v.Right)
		pushResiduals(v)
	}
	return n
}

// projectHasCalls reports whether any select item contains a Call node.
// LIMIT commutes with any projection, but hoisting the projection above
// the limit when it carries human-task calls would also be the *point*
// of the rewrite (fewer HITs) — the executor's fused limitIter already
// stops the projection's pull chain, so the swap only matters for
// call-free projections where it lets Limit close the scan early.
// Call-bearing projections stay put so HIT batching order is untouched.
func projectHasCalls(p *Project) bool {
	for _, it := range p.Items {
		if exprHasCall(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasCall(e qlang.Expr) bool {
	switch v := e.(type) {
	case *qlang.Call:
		return true
	case *qlang.Binary:
		return exprHasCall(v.L) || exprHasCall(v.R)
	case *qlang.Unary:
		return exprHasCall(v.X)
	default:
		return false
	}
}

// pushResiduals moves call-free residual conjuncts that resolve against
// exactly one join input into a Filter on that input.
func pushResiduals(j *Join) {
	if len(j.Residual) == 0 {
		return
	}
	var keep, left, right []qlang.Expr
	ls, rs := j.Left.Schema(), j.Right.Schema()
	for _, c := range j.Residual {
		if exprHasCall(c) {
			keep = append(keep, c)
			continue
		}
		onLeft := exprResolves(c, ls)
		onRight := exprResolves(c, rs)
		switch {
		case onLeft && !onRight:
			left = append(left, c)
		case onRight && !onLeft:
			right = append(right, c)
		default:
			// Cross-side (the join predicate itself) or ambiguous bare
			// names: leave it where semantics are unambiguous.
			keep = append(keep, c)
		}
	}
	if len(left) > 0 {
		j.Left = &Filter{Input: j.Left, Conjuncts: left}
	}
	if len(right) > 0 {
		j.Right = &Filter{Input: j.Right, Conjuncts: right}
	}
	j.Residual = keep
}

// exprResolves reports whether every column reference in e is present in
// the schema.
func exprResolves(e qlang.Expr, s *relation.Schema) bool {
	ok := true
	var walk func(qlang.Expr)
	walk = func(e qlang.Expr) {
		switch v := e.(type) {
		case *qlang.ColumnRef:
			if _, found := s.Lookup(v.QualifiedName()); !found {
				ok = false
			}
		case *qlang.Binary:
			walk(v.L)
			walk(v.R)
		case *qlang.Unary:
			walk(v.X)
		case *qlang.Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}
