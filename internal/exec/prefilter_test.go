package exec

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// preFilterScript declares the join + feature-filter pair the adaptive
// join optimization works on.
const preFilterScript = `
TASK isPerson(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Does this photo show a person? %s", img
  Response: YesNo

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
  PreFilter: isPerson
`

// preFilterOracle: images named "pN-..." are people (person N); "junk-*"
// are not. samePerson matches equal person prefixes.
var preFilterOracle = crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
	switch strings.ToLower(task) {
	case "isperson":
		return relation.NewBool(strings.HasPrefix(args[0].Str(), "p"))
	case "sameperson":
		a := strings.SplitN(args[0].Str(), "-", 2)[0]
		b := strings.SplitN(args[1].Str(), "-", 2)[0]
		return relation.NewBool(strings.HasPrefix(a, "p") && a == b)
	default:
		return relation.Null
	}
})

func newPreFilterRig(t *testing.T) *rig {
	t.Helper()
	script, err := qlang.Parse(preFilterScript)
	if err != nil {
		t.Fatal(err)
	}
	clock := mturk.NewClock()
	pool := crowd.NewPool(crowd.Config{
		Seed: 7, Workers: 200, MeanSkill: 0.99, SkillStd: 1e-9,
		SpamFraction: 1e-12, AbandonRate: 1e-12, BatchPenalty: 1e-9,
	}, preFilterOracle)
	market := mturk.NewMarketplace(clock, pool)
	mgr := taskmgr.New(market, cache.New(), model.NewRegistry(), budget.NewAccount(0))
	r := &rig{script: script, catalog: relation.NewCatalog(), mgr: mgr, clock: clock, pool: pool,
		stop: make(chan struct{})}
	go clock.Run(func() bool {
		select {
		case <-r.stop:
			return true
		default:
			return false
		}
	})
	t.Cleanup(func() { close(r.stop); clock.Close() })
	return r
}

func (r *rig) celebTables(t *testing.T, celebs, junkCelebs, spotted, junkSpotted int) {
	t.Helper()
	var crows, srows [][]relation.Value
	for i := 0; i < celebs; i++ {
		crows = append(crows, []relation.Value{
			relation.NewString(fmt.Sprintf("celeb%d", i)),
			relation.NewImage(fmt.Sprintf("p%d-studio.png", i))})
	}
	for i := 0; i < junkCelebs; i++ {
		crows = append(crows, []relation.Value{
			relation.NewString(fmt.Sprintf("blur%d", i)),
			relation.NewImage(fmt.Sprintf("junk-c%d.png", i))})
	}
	for i := 0; i < spotted; i++ {
		srows = append(srows, []relation.Value{
			relation.NewInt(int64(i)),
			relation.NewImage(fmt.Sprintf("p%d-street.png", i))})
	}
	for i := 0; i < junkSpotted; i++ {
		srows = append(srows, []relation.Value{
			relation.NewInt(int64(1000 + i)),
			relation.NewImage(fmt.Sprintf("junk-s%d.png", i))})
	}
	r.addTable(t, "celebrities",
		[]relation.Column{{Name: "name", Kind: relation.KindString}, {Name: "image", Kind: relation.KindImage}},
		crows...)
	r.addTable(t, "spottedstars",
		[]relation.Column{{Name: "id", Kind: relation.KindInt}, {Name: "image", Kind: relation.KindImage}},
		srows...)
}

const celebJoinQuery = `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`

// runPlan is rig.run with a plan-rewrite step in between.
func (r *rig) runPlan(t *testing.T, query string, rewrite func(plan.Node) plan.Node, cfg Config) (*Query, []relation.Tuple) {
	t.Helper()
	stmt, err := qlang.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	if rewrite != nil {
		node = rewrite(node)
	}
	cfg.Mgr = r.mgr
	cfg.Script = r.script
	q, err := Start(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []relation.Tuple)
	go func() { done <- q.Wait() }()
	select {
	case rows := <-done:
		return q, rows
	case <-time.After(15 * time.Second):
		t.Fatalf("query stuck; opstats=%v pending=%d inflight=%d",
			q.OpStats(), r.mgr.Pending(), r.mgr.Inflight())
		return nil, nil
	}
}

// TestPreFilterJoinEndToEnd: the pre-filter stage drops junk tuples, so
// the join buys fewer pairs but still finds every true match.
func TestPreFilterJoinEndToEnd(t *testing.T) {
	r := newPreFilterRig(t)
	r.celebTables(t, 3, 2, 4, 6) // 5×10 inputs, 3×4 clean
	rewrite := func(n plan.Node) plan.Node {
		return plan.ApplyPreFilters(n, r.script, func(join, filter *qlang.TaskDef, l, r int) plan.PreFilterDecision {
			return plan.PreFilterDecision{Left: true, Right: true}
		})
	}
	q, rows := r.runPlan(t, celebJoinQuery, rewrite, Config{})
	if errs := q.Errors(); len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	got := map[string]bool{}
	for _, row := range rows {
		got[fmt.Sprintf("%s/%d", row.Values[0].Str(), row.Values[1].Int())] = true
	}
	want := map[string]bool{"celeb0/0": true, "celeb1/1": true, "celeb2/2": true}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing match %s in %v", k, got)
		}
	}
	// The join only saw the survivors: 3×4 pairs, not 5×10.
	if s := r.mgr.StatsFor("sameperson"); s.Submitted != 12 {
		t.Errorf("join pairs bought = %d, want 12 (pre-filtered)", s.Submitted)
	}
	if s := r.mgr.StatsFor("isperson"); s.Submitted != 15 {
		t.Errorf("filter questions = %d, want 15 (5 left + 10 right)", s.Submitted)
	}
	reds := q.JoinReductions()
	if len(reds) != 1 {
		t.Fatalf("reductions = %+v", reds)
	}
	red := reds[0]
	if red.LeftIn != 5 || red.LeftKept != 3 || red.RightIn != 10 || red.RightKept != 4 {
		t.Errorf("reduction counts = %+v", red)
	}
	if red.PairsAvoided != 5*10-3*4 {
		t.Errorf("pairs avoided = %d, want 38", red.PairsAvoided)
	}
	if red.Task != "samePerson" {
		t.Errorf("task = %q", red.Task)
	}
}

// TestPreFilterReplansMidQuery: when the keep-hook withdraws approval
// after the first block, the rest of the input flows through unfiltered
// — the re-plan of the remaining, un-submitted blocks.
func TestPreFilterReplansMidQuery(t *testing.T) {
	r := newPreFilterRig(t)
	// Left: p0 junk p1 junk p2 junk p3 junk (interleaved by plan order:
	// celebTables appends people first, junk after).
	r.celebTables(t, 4, 4, 2, 0) // left 8 (4 clean), right 2 clean
	var mu sync.Mutex
	var remainings []int
	rewrite := func(n plan.Node) plan.Node {
		return plan.ApplyPreFilters(n, r.script, func(join, filter *qlang.TaskDef, l, r int) plan.PreFilterDecision {
			return plan.PreFilterDecision{Left: true} // only the left side
		})
	}
	cfg := Config{
		PreFilterBlock: 4,
		PreFilterKeep: func(pf *plan.PreFilter, remaining int) bool {
			mu.Lock()
			remainings = append(remainings, remaining)
			mu.Unlock()
			return false // live stats say: stop filtering
		},
	}
	q, rows := r.runPlan(t, celebJoinQuery, rewrite, cfg)
	if errs := q.Errors(); len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	// Matches p0, p1 exist either way; the re-plan shows in the counts.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	mu.Lock()
	calls := append([]int(nil), remainings...)
	mu.Unlock()
	if len(calls) != 1 || calls[0] != 4 {
		t.Fatalf("keep-hook calls = %v, want one call with 4 uncached remaining", calls)
	}
	reds := q.JoinReductions()
	if len(reds) != 1 {
		t.Fatalf("reductions = %+v", reds)
	}
	red := reds[0]
	// Block one (p0 p1 p2 p3) was filtered — all four are people, all
	// survive; the junk block passed through unfiltered after the hook
	// said stop. Everything is kept, nothing more is spent on filtering.
	if red.LeftIn != 8 || red.LeftKept != 8 {
		t.Errorf("reduction = %+v; pass-through must keep the rest", red)
	}
	if s := r.mgr.StatsFor("isperson"); s.Submitted != 4 {
		t.Errorf("filter questions = %d, want 4 (one block, then re-plan)", s.Submitted)
	}
	// The junk rows reached the join: 8×2 pairs were bought.
	if s := r.mgr.StatsFor("sameperson"); s.Submitted != 16 {
		t.Errorf("join pairs = %d, want 16", s.Submitted)
	}
}

// TestPreFilterCachedAnswersAreFree: cached filter answers resolve
// without HITs and don't count as "remaining" work in the re-check.
func TestPreFilterCachedAnswersAreFree(t *testing.T) {
	r := newPreFilterRig(t)
	r.celebTables(t, 2, 2, 2, 2)
	// Pre-seed the cache with every left-side answer.
	fdef, _ := r.script.Task("isPerson")
	for _, img := range []string{"p0-studio.png", "p1-studio.png", "junk-c0.png", "junk-c1.png"} {
		val := relation.NewBool(strings.HasPrefix(img, "p"))
		r.mgr.Cache().Put(cache.NewKey(fdef.Name, []relation.Value{relation.NewImage(img)}),
			cache.Entry{Answers: []relation.Value{val}})
	}
	var remainings []int
	var mu sync.Mutex
	rewrite := func(n plan.Node) plan.Node {
		return plan.ApplyPreFilters(n, r.script, func(join, filter *qlang.TaskDef, l, r int) plan.PreFilterDecision {
			return plan.PreFilterDecision{Left: true}
		})
	}
	cfg := Config{
		PreFilterBlock: 2,
		PreFilterKeep: func(pf *plan.PreFilter, remaining int) bool {
			mu.Lock()
			remainings = append(remainings, remaining)
			mu.Unlock()
			return true
		},
	}
	q, _ := r.runPlan(t, celebJoinQuery, rewrite, cfg)
	if errs := q.Errors(); len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(remainings) != 1 || remainings[0] != 0 {
		t.Fatalf("keep-hook saw remaining=%v, want [0]: cached answers are free", remainings)
	}
	if s := r.mgr.StatsFor("isperson"); s.HITsPosted != 0 {
		t.Errorf("filter HITs = %d, want 0 (all cached)", s.HITsPosted)
	}
}

// TestOrderByErrorPathEmitsRows: when sort-key resolution fails
// outright, every key slot is filled with relation.Null (not zero
// values), the sort stays well-defined, and all rows still come out.
func TestOrderByErrorPathEmitsRows(t *testing.T) {
	r := newExecRig(t, 0.97)
	r.addTable(t, "photos",
		[]relation.Column{{Name: "id", Kind: relation.KindInt}, {Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewInt(1), relation.NewImage("a.png")},
		[]relation.Value{relation.NewInt(2), relation.NewImage("b.png")},
		[]relation.Value{relation.NewInt(3), relation.NewImage("c.png")},
	)
	// The trailing local key keeps this a generic OrderBy plan (a bare
	// single ranking key would build plan.Rank, which fails fast at
	// Start without a task manager — see TestRankNeedsManager).
	stmt, err := qlang.ParseQuery(`SELECT * FROM photos ORDER BY squareScore(img) DESC, id`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	// No task manager: resolveCalls fails for every tuple, driving the
	// outer error path of runOrderBy.
	q, err := Start(node, Config{Script: r.script})
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Wait()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want all 3 despite key errors", len(rows))
	}
	if errs := q.Errors(); len(errs) != 3 {
		t.Fatalf("errors = %v, want one per tuple", errs)
	}
	// With every key Null the stable sort preserves input order.
	for i, row := range rows {
		if got := row.Values[0].Int(); got != int64(i+1) {
			t.Fatalf("row %d = %d; Null keys must keep input order", i, got)
		}
	}
}
