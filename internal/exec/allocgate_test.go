package exec

import (
	"encoding/json"
	"os"
	"testing"
)

// TestAllocRegressionGate is the CI bench-smoke gate: it measures
// allocs/op for every suite pipeline and fails if any exceeds 2× the
// committed baseline in testdata/alloc_baseline.json. The baseline was
// captured from the iterator executor on the reference container; the 2×
// headroom absorbs runtime and platform jitter while still catching a
// reintroduced per-tuple allocation (which shows up as 5–30×).
func TestAllocRegressionGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts; gate runs in the non-race CI step")
	}
	if testing.Short() {
		t.Skip("alloc gate needs steady-state measurements; skipped in -short")
	}
	raw, err := os.ReadFile("testdata/alloc_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	for _, c := range BenchSuite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			base, ok := baseline[c.Name]
			if !ok {
				t.Fatalf("no committed baseline for %s; add it to testdata/alloc_baseline.json", c.Name)
			}
			node, err := c.Plan()
			if err != nil {
				t.Fatal(err)
			}
			// Warm the tuple pool and the scheduler before measuring.
			if _, err := c.Run(node); err != nil {
				t.Fatal(err)
			}
			got := testing.AllocsPerRun(5, func() {
				if _, err := c.Run(node); err != nil {
					t.Fatal(err)
				}
			})
			limit := 2 * base
			if got > limit {
				t.Errorf("%s allocs/op = %.0f, over the 2x gate (baseline %.0f, limit %.0f); if the growth is intentional, refresh testdata/alloc_baseline.json", c.Name, got, base, limit)
			}
			t.Logf("%s: %.0f allocs/op (baseline %.0f)", c.Name, got, base)
		})
	}
}
