package exec

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

const execScript = `
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO of %s", companyName
  Response: Form(("CEO", String), ("Phone", String))

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)

TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo

TASK isOutdoor(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Was this taken outdoors? %s", photo
  Response: YesNo

TASK squareScore(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "Rate %s", pic
  Response: Rating(1, 9)
`

// rig bundles a full execution environment over a simulated crowd.
type rig struct {
	script  *qlang.Script
	catalog *relation.Catalog
	mgr     *taskmgr.Manager
	clock   *mturk.Clock
	pool    *crowd.Pool
	stop    chan struct{}
}

// oracle implements ground truth for the test tasks.
var testOracle = crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
	switch strings.ToLower(task) {
	case "iscat":
		return relation.NewBool(strings.Contains(args[0].Str(), "cat"))
	case "isoutdoor":
		return relation.NewBool(strings.Contains(args[0].Str(), "out"))
	case "sameperson":
		a := strings.SplitN(args[0].Str(), "-", 2)[0]
		b := strings.SplitN(args[1].Str(), "-", 2)[0]
		return relation.NewBool(a == b)
	case "findceo":
		return relation.NewTuple(
			relation.Field{Name: "CEO", Value: relation.NewString("CEO of " + args[0].Str())},
			relation.Field{Name: "Phone", Value: relation.NewString("555-" + args[0].Str())},
		)
	case "squarescore":
		return relation.NewInt(int64(len(args[0].Str()) % 10))
	default:
		return relation.Null
	}
})

func newExecRig(t *testing.T, skill float64) *rig {
	t.Helper()
	script, err := qlang.Parse(execScript)
	if err != nil {
		t.Fatal(err)
	}
	clock := mturk.NewClock()
	pool := crowd.NewPool(crowd.Config{
		Seed: 11, Workers: 200, MeanSkill: skill,
		SpamFraction: 1e-12, AbandonRate: 1e-12,
	}, testOracle)
	market := mturk.NewMarketplace(clock, pool)
	mgr := taskmgr.New(market, cache.New(), model.NewRegistry(), budget.NewAccount(0))
	r := &rig{script: script, catalog: relation.NewCatalog(), mgr: mgr, clock: clock, pool: pool,
		stop: make(chan struct{})}
	go clock.Run(func() bool {
		select {
		case <-r.stop:
			return true
		default:
			return false
		}
	})
	t.Cleanup(func() { close(r.stop); clock.Close() })
	return r
}

func (r *rig) addTable(t *testing.T, name string, cols []relation.Column, rows ...[]relation.Value) *relation.Table {
	t.Helper()
	tab := relation.NewTable(name, relation.MustSchema(cols...))
	for _, row := range rows {
		if err := tab.InsertValues(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.catalog.Register(tab); err != nil {
		t.Fatal(err)
	}
	return tab
}

func (r *rig) run(t *testing.T, query string, cfg Config) []relation.Tuple {
	t.Helper()
	stmt, err := qlang.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mgr = r.mgr
	cfg.Script = r.script
	q, err := Start(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []relation.Tuple)
	go func() { done <- q.Wait() }()
	select {
	case rows := <-done:
		if errs := q.Errors(); len(errs) > 0 {
			t.Fatalf("query errors: %v", errs)
		}
		return rows
	case <-time.After(15 * time.Second):
		t.Fatalf("query stuck; opstats=%v pending=%d inflight=%d",
			q.OpStats(), r.mgr.Pending(), r.mgr.Inflight())
		return nil
	}
}

func (r *rig) companies(t *testing.T, names ...string) {
	rows := make([][]relation.Value, len(names))
	for i, n := range names {
		rows[i] = []relation.Value{relation.NewString(n)}
	}
	r.addTable(t, "companies", []relation.Column{{Name: "companyName", Kind: relation.KindString}}, rows...)
}

// TestPaperQuery1 runs the paper's Query 1 end to end: schema extension
// via the findCEO task, one invocation per company despite two mentions.
func TestPaperQuery1(t *testing.T) {
	r := newExecRig(t, 0.97)
	r.companies(t, "Acme", "Globex", "Initech")
	rows := r.run(t, `
SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone
FROM companies`, Config{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]relation.Tuple{}
	for _, row := range rows {
		byName[row.Values[0].Str()] = row
	}
	acme := byName["Acme"]
	if got := acme.Get("findCEO.CEO").Str(); got != "CEO of Acme" {
		t.Errorf("CEO = %q", got)
	}
	if got := acme.Get("findCEO.Phone").Str(); got != "555-Acme" {
		t.Errorf("Phone = %q", got)
	}
	// findCEO used twice per row must run once per company.
	s := r.mgr.StatsFor("findceo")
	if s.QuestionsAsked != 3 {
		t.Errorf("questions = %d, want 3 (shared invocation)", s.QuestionsAsked)
	}
}

// TestPaperQuery2 runs the paper's Query 2: the human-powered image join.
func TestPaperQuery2(t *testing.T) {
	r := newExecRig(t, 0.97)
	r.addTable(t, "celebrities",
		[]relation.Column{{Name: "name", Kind: relation.KindString}, {Name: "image", Kind: relation.KindImage}},
		[]relation.Value{relation.NewString("Ann"), relation.NewImage("ann-celeb.png")},
		[]relation.Value{relation.NewString("Bob"), relation.NewImage("bob-celeb.png")},
		[]relation.Value{relation.NewString("Cat"), relation.NewImage("cat-celeb.png")},
	)
	r.addTable(t, "spottedstars",
		[]relation.Column{{Name: "id", Kind: relation.KindInt}, {Name: "image", Kind: relation.KindImage}},
		[]relation.Value{relation.NewInt(1), relation.NewImage("ann-spot.png")},
		[]relation.Value{relation.NewInt(2), relation.NewImage("cat-spot.png")},
		[]relation.Value{relation.NewInt(3), relation.NewImage("dee-spot.png")},
	)
	rows := r.run(t, `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`, Config{})
	got := map[string]bool{}
	for _, row := range rows {
		got[fmt.Sprintf("%s/%d", row.Values[0].Str(), row.Values[1].Int())] = true
	}
	if len(rows) != 2 || !got["Ann/1"] || !got["Cat/2"] {
		t.Fatalf("join result = %v", got)
	}
}

func TestLocalOnlyQuery(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "nums",
		[]relation.Column{{Name: "x", Kind: relation.KindInt}, {Name: "y", Kind: relation.KindInt}},
		[]relation.Value{relation.NewInt(1), relation.NewInt(10)},
		[]relation.Value{relation.NewInt(2), relation.NewInt(20)},
		[]relation.Value{relation.NewInt(3), relation.NewInt(30)},
	)
	rows := r.run(t, `SELECT x, x + y AS s FROM nums WHERE x > 1 ORDER BY x DESC`, Config{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Get("x").Int() != 3 || rows[0].Get("s").Int() != 33 {
		t.Fatalf("row0 = %v", rows[0])
	}
	if r.mgr.Account().Spent() != 0 {
		t.Fatal("local query spent money")
	}
}

func TestHumanFilterQuery(t *testing.T) {
	r := newExecRig(t, 0.97)
	var rows [][]relation.Value
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("cat-%d.png", i)
		if i%2 == 0 {
			name = fmt.Sprintf("dog-%d.png", i)
		}
		rows = append(rows, []relation.Value{relation.NewImage(name)})
	}
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}}, rows...)
	got := r.run(t, `SELECT img FROM photos WHERE isCat(img)`, Config{})
	if len(got) != 3 {
		t.Fatalf("filtered rows = %d, want 3", len(got))
	}
	for _, row := range got {
		if !strings.Contains(row.Values[0].Str(), "cat") {
			t.Errorf("non-cat passed: %v", row)
		}
	}
}

func TestFilterCascadeShortCircuits(t *testing.T) {
	r := newExecRig(t, 0.99)
	var rows [][]relation.Value
	// 8 photos: 4 cats (2 outdoor), 4 dogs (2 outdoor).
	for i := 0; i < 8; i++ {
		name := "dog"
		if i < 4 {
			name = "cat"
		}
		if i%2 == 0 {
			name += "-out"
		}
		rows = append(rows, []relation.Value{relation.NewImage(fmt.Sprintf("%s-%d.png", name, i))})
	}
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}}, rows...)
	got := r.run(t, `SELECT img FROM photos WHERE isCat(img) AND isOutdoor(img)`, Config{})
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
	// Short-circuit: isOutdoor asked only for tuples passing isCat.
	sCat := r.mgr.StatsFor("iscat")
	sOut := r.mgr.StatsFor("isoutdoor")
	if sCat.QuestionsAsked != 8 {
		t.Errorf("isCat questions = %d", sCat.QuestionsAsked)
	}
	if sOut.QuestionsAsked >= sCat.QuestionsAsked {
		t.Errorf("cascade did not short-circuit: isOutdoor=%d isCat=%d",
			sOut.QuestionsAsked, sCat.QuestionsAsked)
	}
}

func TestGroupedFilters(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("cat-out-1.png")},
		[]relation.Value{relation.NewImage("dog-in-2.png")},
	)
	got := r.run(t, `SELECT img FROM photos WHERE isCat(img) AND isOutdoor(img)`,
		Config{GroupFilters: true})
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	// Grouping: both questions about a tuple share one HIT, so each task
	// saw one question per tuple but HITs were shared.
	sCat := r.mgr.StatsFor("iscat")
	sOut := r.mgr.StatsFor("isoutdoor")
	if sCat.QuestionsAsked != 2 || sOut.QuestionsAsked != 2 {
		t.Errorf("questions = %d/%d", sCat.QuestionsAsked, sOut.QuestionsAsked)
	}
	totalHITs := sCat.HITsPosted + sOut.HITsPosted
	if totalHITs != 2 { // one grouped HIT per tuple
		t.Errorf("grouped HITs = %d, want 2", totalHITs)
	}
}

func TestHumanOrderByRating(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("aaaaaaa")}, // score 7
		[]relation.Value{relation.NewImage("aaa")},     // score 3
		[]relation.Value{relation.NewImage("aaaaa")},   // score 5
	)
	got := r.run(t, `SELECT img FROM photos ORDER BY squareScore(img) DESC`, Config{})
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Values[0].Str() != "aaaaaaa" || got[2].Values[0].Str() != "aaa" {
		t.Fatalf("order = %v %v %v", got[0].Values[0], got[1].Values[0], got[2].Values[0])
	}
}

func TestAggregateQuery(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "obs",
		[]relation.Column{{Name: "grp", Kind: relation.KindString}, {Name: "v", Kind: relation.KindInt}},
		[]relation.Value{relation.NewString("a"), relation.NewInt(1)},
		[]relation.Value{relation.NewString("a"), relation.NewInt(3)},
		[]relation.Value{relation.NewString("b"), relation.NewInt(10)},
	)
	rows := r.run(t, `SELECT grp, count() AS n, avg(v) AS m, min(v) AS lo, max(v) AS hi FROM obs GROUP BY grp`, Config{})
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	var a relation.Tuple
	for _, row := range rows {
		if row.Get("grp").Str() == "a" {
			a = row
		}
	}
	if a.Get("n").Int() != 2 || a.Get("m").Float() != 2 || a.Get("lo").Int() != 1 || a.Get("hi").Int() != 3 {
		t.Fatalf("group a = %v", a)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "vals", []relation.Column{{Name: "v", Kind: relation.KindInt}},
		[]relation.Value{relation.NewInt(1)},
		[]relation.Value{relation.NewInt(1)},
		[]relation.Value{relation.NewInt(2)},
		[]relation.Value{relation.NewInt(3)},
	)
	rows := r.run(t, `SELECT DISTINCT v FROM vals ORDER BY v LIMIT 2`, Config{})
	if len(rows) != 2 || rows[0].Values[0].Int() != 1 || rows[1].Values[0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinPairwiseMatchesTwoColumn(t *testing.T) {
	for _, pairwise := range []bool{false, true} {
		r := newExecRig(t, 0.99)
		r.addTable(t, "celebrities",
			[]relation.Column{{Name: "name", Kind: relation.KindString}, {Name: "image", Kind: relation.KindImage}},
			[]relation.Value{relation.NewString("Ann"), relation.NewImage("ann-c.png")},
			[]relation.Value{relation.NewString("Bob"), relation.NewImage("bob-c.png")},
		)
		r.addTable(t, "spottedstars",
			[]relation.Column{{Name: "id", Kind: relation.KindInt}, {Name: "image", Kind: relation.KindImage}},
			[]relation.Value{relation.NewInt(1), relation.NewImage("ann-s.png")},
			[]relation.Value{relation.NewInt(2), relation.NewImage("bob-s.png")},
		)
		rows := r.run(t, `SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`,
			Config{JoinPairwise: pairwise})
		if len(rows) != 2 {
			t.Fatalf("pairwise=%v rows = %d", pairwise, len(rows))
		}
	}
}

func TestResultTablePolling(t *testing.T) {
	r := newExecRig(t, 0.97)
	r.companies(t, "Acme", "Globex")
	stmt, _ := qlang.ParseQuery(`SELECT companyName, findCEO(companyName).CEO FROM companies`)
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Start(node, Config{Mgr: r.mgr, Script: r.script})
	if err != nil {
		t.Fatal(err)
	}
	// Poll incrementally, the paper's client model.
	var cursor int64
	var seen int
	deadline := time.After(15 * time.Second)
	for !q.Result().Closed() || cursor < q.Result().Version() {
		select {
		case <-deadline:
			t.Fatal("polling stuck")
		default:
		}
		var fresh []relation.Tuple
		fresh, cursor = q.Result().Wait(cursor)
		seen += len(fresh)
	}
	if seen != 2 {
		t.Fatalf("polled %d rows", seen)
	}
}

func TestQueryOpStats(t *testing.T) {
	r := newExecRig(t, 0.97)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("cat-1.png")},
		[]relation.Value{relation.NewImage("dog-1.png")},
	)
	stmt, _ := qlang.ParseQuery(`SELECT img FROM photos WHERE isCat(img)`)
	node, _ := plan.Build(stmt, r.script, r.catalog)
	q, err := Start(node, Config{Mgr: r.mgr, Script: r.script})
	if err != nil {
		t.Fatal(err)
	}
	q.Wait()
	stats := q.OpStats()
	if len(stats) != 3 { // project, filter, scan
		t.Fatalf("ops = %v", stats)
	}
	for _, s := range stats {
		if !s.Done {
			t.Errorf("op %s not done", s.Label)
		}
	}
	var scan, filter OpStats
	for _, s := range stats {
		if strings.HasPrefix(s.Label, "Scan") {
			scan = s
		}
		if strings.HasPrefix(s.Label, "Filter") {
			filter = s
		}
	}
	if scan.Out != 2 || filter.In != 2 || filter.Out != 1 {
		t.Fatalf("stats scan=%+v filter=%+v", scan, filter)
	}
}

func TestStartErrors(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "celebrities",
		[]relation.Column{{Name: "name", Kind: relation.KindString}, {Name: "image", Kind: relation.KindImage}},
	)
	r.addTable(t, "spottedstars",
		[]relation.Column{{Name: "id", Kind: relation.KindInt}, {Name: "image", Kind: relation.KindImage}},
	)
	stmt, _ := qlang.ParseQuery(`SELECT celebrities.name FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`)
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(node, Config{Script: r.script}); err == nil {
		t.Fatal("human plan without manager must fail to start")
	}
}

func TestBudgetErrorSurfaces(t *testing.T) {
	script, _ := qlang.Parse(execScript)
	clock := mturk.NewClock()
	pool := crowd.NewPool(crowd.Config{Seed: 3, AbandonRate: 1e-12, SpamFraction: 1e-12}, testOracle)
	market := mturk.NewMarketplace(clock, pool)
	mgr := taskmgr.New(market, cache.New(), model.NewRegistry(), budget.NewAccount(1)) // 1 cent
	cat := relation.NewCatalog()
	tab := relation.NewTable("photos", relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindImage}))
	_ = tab.InsertValues(relation.NewImage("cat-1.png"))
	_ = cat.Register(tab)
	stop := make(chan struct{})
	go clock.Run(func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	})
	defer close(stop)

	stmt, _ := qlang.ParseQuery(`SELECT img FROM photos WHERE isCat(img)`)
	node, err := plan.Build(stmt, script, cat)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Start(node, Config{Mgr: mgr, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Wait()
	if len(rows) != 0 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(q.Errors()) == 0 {
		t.Fatal("budget exhaustion must surface as a query error")
	}
}

// mustPlan builds a plan against the rig's script and catalog.
func mustPlan(t *testing.T, r *rig, query string) plan.Node {
	t.Helper()
	stmt, err := qlang.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	return node
}
