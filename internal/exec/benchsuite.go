package exec

import (
	"fmt"
	"math/rand"

	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// BenchCase is one local-only operator pipeline measured by the EXEC
// benchmark suite. The same cases back the Benchmark* functions in
// bench_test.go, the alloc-regression gate, and `qurk-bench -only EXEC`,
// so every consumer measures identical plans.
type BenchCase struct {
	Name     string
	SQL      string
	WantRows int
	// BaselineNsOp / BaselineAllocs are the pre-refactor (goroutine-per-
	// node, queue-bridged) executor's measurements, committed so
	// BENCH_exec.json can report the rewrite's gains against a fixed
	// reference.
	BaselineNsOp   float64
	BaselineAllocs int64
	Tables         func() []*relation.Table
}

// Plan builds the case's plan over fresh tables.
func (c BenchCase) Plan() (plan.Node, error) {
	catalog := relation.NewCatalog()
	for _, t := range c.Tables() {
		if err := catalog.Register(t); err != nil {
			return nil, err
		}
	}
	stmt, err := qlang.ParseQuery(c.SQL)
	if err != nil {
		return nil, err
	}
	return plan.Build(stmt, &qlang.Script{}, catalog)
}

// Run executes the plan once and checks the row count.
func (c BenchCase) Run(node plan.Node) (*Query, error) {
	q, err := Start(node, Config{Script: &qlang.Script{}})
	if err != nil {
		return nil, err
	}
	rows := q.Wait()
	if len(rows) != c.WantRows {
		return nil, fmt.Errorf("exec bench %s: rows = %d, want %d", c.Name, len(rows), c.WantRows)
	}
	return q, nil
}

func benchIntTable(name, col string, vals []int64) *relation.Table {
	tab := relation.NewTable(name, relation.MustSchema(relation.Column{Name: col, Kind: relation.KindInt}))
	for _, v := range vals {
		if err := tab.InsertValues(relation.NewInt(v)); err != nil {
			panic(err)
		}
	}
	return tab
}

func benchSeq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// BenchSuite enumerates the per-operator pipelines: a half-selective
// local filter, a local equi-join via the residual path, duplicate
// elimination, and a full sort — each over in-memory tables so the
// numbers isolate executor overhead from crowd simulation.
func BenchSuite() []BenchCase {
	return []BenchCase{
		{Name: "FilterPipeline", SQL: `SELECT v FROM vals WHERE v < 2048`, WantRows: 2048,
			BaselineNsOp: 2053415, BaselineAllocs: 4217,
			Tables: func() []*relation.Table {
				return []*relation.Table{benchIntTable("vals", "v", benchSeq(4096))}
			}},
		{Name: "JoinGrid", SQL: `SELECT a.x, b.y FROM a, b WHERE a.x = b.y`, WantRows: 64,
			BaselineNsOp: 1578326, BaselineAllocs: 4305,
			Tables: func() []*relation.Table {
				return []*relation.Table{benchIntTable("a", "x", benchSeq(64)), benchIntTable("b", "y", benchSeq(64))}
			}},
		{Name: "Distinct", SQL: `SELECT DISTINCT v FROM vals`, WantRows: 256,
			BaselineNsOp: 2230091, BaselineAllocs: 16452,
			Tables: func() []*relation.Table {
				vals := make([]int64, 4096)
				for i := range vals {
					vals[i] = int64(i % 256)
				}
				return []*relation.Table{benchIntTable("vals", "v", vals)}
			}},
		{Name: "OrderBy", SQL: `SELECT v FROM vals ORDER BY v DESC`, WantRows: 4096,
			BaselineNsOp: 6472494, BaselineAllocs: 16589,
			Tables: func() []*relation.Table {
				vals := benchSeq(4096)
				rng := rand.New(rand.NewSource(42))
				rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
				return []*relation.Table{benchIntTable("vals", "v", vals)}
			}},
	}
}
