package exec

import (
	"testing"

	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/qlang"
)

// TestTraceAllocGate is the observability twin of TestAllocRegressionGate:
// it measures allocs/op for the two acceptance pipelines with tracing
// disabled and enabled in the same process. The disabled path must cost
// exactly what the plain executor costs — Config.Trace nil IS the plain
// path (every hook is a nil check), which TestAllocRegressionGate pins
// against the committed baseline — and the enabled path may add only a
// constant number of allocations per query (one pooled span per plan
// node plus end-of-run stamping), never O(rows).
func TestTraceAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts; gate runs in the non-race CI step")
	}
	if testing.Short() {
		t.Skip("alloc gate needs steady-state measurements; skipped in -short")
	}
	for _, name := range []string{"FilterPipeline", "JoinGrid"} {
		t.Run(name, func(t *testing.T) {
			var bc BenchCase
			for _, c := range BenchSuite() {
				if c.Name == name {
					bc = c
				}
			}
			node, err := bc.Plan()
			if err != nil {
				t.Fatal(err)
			}
			// Warm the tuple pool and the scheduler before measuring.
			if _, err := bc.Run(node); err != nil {
				t.Fatal(err)
			}
			off := testing.AllocsPerRun(5, func() {
				if _, err := bc.Run(node); err != nil {
					t.Fatal(err)
				}
			})

			tr := obs.New(func() mturk.VirtualTime { return 0 }, obs.NewRegistry())
			runTraced := func() {
				root := tr.StartRoot(obs.KindQuery, bc.SQL)
				q, err := Start(node, Config{Script: &qlang.Script{}, Trace: root})
				if err != nil {
					t.Fatal(err)
				}
				if rows := q.Wait(); len(rows) != bc.WantRows {
					t.Fatalf("traced: rows = %d, want %d", len(rows), bc.WantRows)
				}
				tr.Release(root)
			}
			runTraced() // warm the span pool too
			on := testing.AllocsPerRun(5, func() { runTraced() })

			// The pipelines run thousands of rows; a per-tuple tracing
			// allocation would blow past this constant budget immediately.
			const spanBudget = 64
			if on > off+spanBudget {
				t.Errorf("%s: tracing added %.0f allocs/op (off %.0f, on %.0f) — over the constant budget of %d, so something traces per tuple", name, on-off, off, on, spanBudget)
			}
			t.Logf("%s: allocs/op off=%.0f on=%.0f (+%.0f)", name, off, on, on-off)
		})
	}
}
