package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/hit"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// runFilter evaluates local conjuncts immediately and human conjuncts as
// a short-circuiting cascade (or one grouped HIT when GroupFilters is
// set). Tuples flow out as soon as their last predicate passes.
func (q *Query) runFilter(op *operator, v *plan.Filter, in Iterator) {
	defer op.finish()
	var local, human []qlang.Expr
	taskNames := map[string]bool{}
	for _, c := range v.Conjuncts {
		if HasCalls(c, q.cfg.Script) {
			human = append(human, c)
			for _, call := range CollectCalls(c, q.cfg.Script) {
				taskNames[call.Name] = true
			}
		} else {
			local = append(local, c)
		}
	}

	var wg sync.WaitGroup
	var sem chan struct{}
	if q.cfg.FilterWindow > 0 && len(human) > 0 && !q.cfg.GroupFilters {
		sem = make(chan struct{}, q.cfg.FilterWindow)
	}
	finish := func() {
		if sem != nil {
			<-sem
		}
		wg.Done()
	}
	process := func(t relation.Tuple) {
		for _, c := range local {
			pass, err := Eval(c, t, nil)
			if err != nil {
				q.reportError(err)
				return
			}
			if !pass.Truthy() {
				return
			}
		}
		if len(human) == 0 {
			op.push(t)
			return
		}
		wg.Add(1)
		if q.cfg.GroupFilters && len(human) > 1 {
			q.groupFilter(op, t, human, &wg)
			return
		}
		if sem != nil {
			sem <- struct{}{}
			// The window is open: flush whatever the previous tuples
			// queued so their results (and selectivity updates) arrive
			// while later tuples wait here.
			q.flushTasks(taskNames)
		}
		// Order is chosen when the tuple enters its cascade, so the
		// optimizer's live selectivity estimates steer later tuples.
		order := q.filterOrder(human)
		var step func(k int)
		step = func(k int) {
			if k == len(order) {
				op.push(t)
				finish()
				return
			}
			c := human[order[k]]
			asg := 0
			if u, ok := c.(*qlang.Unary); ok && u.Op == "POSSIBLY" {
				asg = 1 // approximate predicate: no redundancy
			}
			q.resolveCallsN(op, t, []qlang.Expr{c}, asg, func(calls map[string]relation.Value, err error) {
				if err != nil {
					q.reportError(err)
					finish()
					return
				}
				pass, err := Eval(c, t, calls)
				if err != nil {
					q.reportError(err)
					finish()
					return
				}
				if !pass.Truthy() {
					finish()
					return
				}
				step(k + 1)
			})
		}
		step(0)
	}

	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&op.in, 1)
		process(t)
	}
	q.flushTasks(taskNames)
	wg.Wait()
}

func (q *Query) filterOrder(human []qlang.Expr) []int {
	if q.cfg.FilterOrder != nil {
		order := q.cfg.FilterOrder(human)
		if len(order) == len(human) {
			return order
		}
	}
	order := make([]int, len(human))
	for i := range order {
		order[i] = i
	}
	return order
}

// groupFilter asks all human conjuncts about one tuple in a single HIT.
func (q *Query) groupFilter(op *operator, t relation.Tuple, human []qlang.Expr, wg *sync.WaitGroup) {
	// Each conjunct must be a bare boolean task call to group.
	var reqs []taskmgr.Request
	calls := make(map[string]relation.Value)
	var mu sync.Mutex
	remaining := 0
	var firstErr error
	finish := func() {
		defer wg.Done()
		if firstErr != nil {
			q.reportError(firstErr)
			return
		}
		for _, c := range human {
			pass, err := Eval(c, t, calls)
			if err != nil {
				q.reportError(err)
				return
			}
			if !pass.Truthy() {
				return
			}
		}
		op.push(t)
	}
	for _, c := range human {
		for _, call := range CollectCalls(c, q.cfg.Script) {
			def, ok := q.cfg.Script.Task(call.Name)
			if !ok {
				q.reportError(fmt.Errorf("exec: unknown task %q", call.Name))
				wg.Done()
				return
			}
			key, err := CallKey(call, t)
			if err != nil {
				q.reportError(err)
				wg.Done()
				return
			}
			args, err := evalArgs(call, t, nil)
			if err != nil {
				q.reportError(err)
				wg.Done()
				return
			}
			mu.Lock()
			if _, dup := calls[key]; dup {
				mu.Unlock()
				continue
			}
			calls[key] = relation.Null // placeholder marks membership
			remaining++
			mu.Unlock()
			reqs = append(reqs, taskmgr.Request{
				Def:   def,
				Args:  args,
				Scope: q.cfg.Scope,
				Trace: op.span,
				Done: func(out taskmgr.Outcome) {
					mu.Lock()
					if out.Err != nil && firstErr == nil {
						firstErr = out.Err
					}
					calls[key] = out.Value
					remaining--
					done := remaining == 0
					mu.Unlock()
					if done {
						finish()
					}
				},
			})
		}
	}
	if len(reqs) == 0 {
		finish()
		return
	}
	if err := q.cfg.Mgr.SubmitGroup(reqs); err != nil {
		q.reportError(err)
		wg.Done()
	}
}

// runProject resolves each tuple's human calls, then computes outputs.
func (q *Query) runProject(op *operator, v *plan.Project, in Iterator) {
	defer op.finish()
	exprs := make([]qlang.Expr, 0, len(v.Items))
	taskNames := map[string]bool{}
	for _, it := range v.Items {
		exprs = append(exprs, it.Expr)
		for _, call := range CollectCalls(it.Expr, q.cfg.Script) {
			taskNames[call.Name] = true
		}
	}
	var wg sync.WaitGroup
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&op.in, 1)
		wg.Add(1)
		q.resolveCalls(op, t, exprs, func(calls map[string]relation.Value, err error) {
			defer wg.Done()
			if err != nil {
				q.reportError(err)
				return
			}
			vals := make([]relation.Value, 0, v.Schema().Len())
			for _, it := range v.Items {
				if _, isStar := it.Expr.(*qlang.Star); isStar {
					vals = append(vals, t.Values...)
					continue
				}
				val, err := Eval(it.Expr, t, calls)
				if err != nil {
					q.reportError(err)
					return
				}
				vals = append(vals, val)
			}
			op.push(relation.Tuple{Schema: v.Schema(), Values: vals})
		})
	}
	q.flushTasks(taskNames)
	wg.Wait()
}

// joinSide is one buffered input of a join with its evaluated argument.
type joinSide struct {
	tuple relation.Tuple
	arg   relation.Value
}

// runJoin drives the human join interface: both inputs drain
// concurrently (each side's iterator chain runs in its drain
// goroutine), then block pairs walk through the join HITs. Call-free
// joins never reach here — they fuse into localJoinIter, which streams
// the probe side.
func (q *Query) runJoin(op *operator, v *plan.Join, left, right Iterator) {
	defer op.finish()
	var lbuf, rbuf []relation.Tuple
	var dw sync.WaitGroup
	dw.Add(2)
	go func() {
		defer dw.Done()
		for {
			t, ok := left.Next()
			if !ok {
				return
			}
			atomic.AddInt64(&op.in, 1)
			lbuf = append(lbuf, t)
		}
	}()
	go func() {
		defer dw.Done()
		for {
			t, ok := right.Next()
			if !ok {
				return
			}
			atomic.AddInt64(&op.in, 1)
			rbuf = append(rbuf, t)
		}
	}()
	dw.Wait()
	q.noteResident(int64(len(lbuf) + len(rbuf)))

	ls := q.evalSide(lbuf, v.LeftArg)
	rs := q.evalSide(rbuf, v.RightArg)
	if q.cfg.JoinPairwise {
		q.joinPairwise(op, v, ls, rs)
		return
	}
	q.joinTwoColumn(op, v, ls, rs)
}

func (q *Query) evalSide(buf []relation.Tuple, arg qlang.Expr) []joinSide {
	out := make([]joinSide, 0, len(buf))
	for _, t := range buf {
		val, err := Eval(arg, t, nil)
		if err != nil {
			q.reportError(err)
			continue
		}
		out = append(out, joinSide{tuple: t, arg: val})
	}
	return out
}

func concatValues(l, r relation.Tuple) []relation.Value {
	vals := make([]relation.Value, 0, len(l.Values)+len(r.Values))
	vals = append(vals, l.Values...)
	return append(vals, r.Values...)
}

func (q *Query) passesAll(conjuncts []qlang.Expr, t relation.Tuple) bool {
	for _, c := range conjuncts {
		pass, err := Eval(c, t, nil)
		if err != nil {
			q.reportError(err)
			return false
		}
		if !pass.Truthy() {
			return false
		}
	}
	return true
}

// joinTwoColumn walks L×R blocks through the JoinColumns interface
// (Figure 3): each block pair is one HIT answering blockL×blockR pairs.
func (q *Query) joinTwoColumn(op *operator, v *plan.Join, ls, rs []joinSide) {
	lb, rb := q.cfg.JoinLeftBlock, q.cfg.JoinRightBlock
	var wg sync.WaitGroup
	for li := 0; li < len(ls); li += lb {
		if q.Canceled() {
			break
		}
		lhi := li + lb
		if lhi > len(ls) {
			lhi = len(ls)
		}
		for ri := 0; ri < len(rs); ri += rb {
			rhi := ri + rb
			if rhi > len(rs) {
				rhi = len(rs)
			}
			lblock, rblock := ls[li:lhi], rs[ri:rhi]
			items := func(sides []joinSide, prefix string, base int) []taskmgr.JoinItem {
				out := make([]taskmgr.JoinItem, len(sides))
				for i, s := range sides {
					out[i] = taskmgr.JoinItem{
						Key:  fmt.Sprintf("%s%06d", prefix, base+i),
						Args: []relation.Value{s.arg},
					}
				}
				return out
			}
			leftItems := items(lblock, "L", li)
			rightItems := items(rblock, "R", ri)
			byKey := make(map[string]relation.Tuple, len(lblock)+len(rblock))
			for i, it := range leftItems {
				byKey[it.Key] = lblock[i].tuple
			}
			for i, it := range rightItems {
				byKey[it.Key] = rblock[i].tuple
			}
			wg.Add(len(lblock) * len(rblock))
			q.cfg.Mgr.JoinBlockIn(q.cfg.Scope, v.HumanTask, leftItems, rightItems, func(pairKey string, out taskmgr.Outcome) {
				defer wg.Done()
				if out.Err != nil {
					q.reportError(out.Err)
					return
				}
				if !out.Value.Truthy() {
					return
				}
				lk, rk, ok := hit.SplitPairKey(pairKey)
				if !ok {
					q.reportError(fmt.Errorf("exec: bad pair key %q", pairKey))
					return
				}
				joined := relation.Tuple{Schema: v.Schema(), Values: concatValues(byKey[lk], byKey[rk])}
				if q.passesAll(v.Residual, joined) {
					op.push(joined)
				}
			})
		}
	}
	wg.Wait()
}

// joinPairwise submits one boolean question per pair — the naive join
// interface the two-column layout is compared against.
func (q *Query) joinPairwise(op *operator, v *plan.Join, ls, rs []joinSide) {
	var wg sync.WaitGroup
	for _, l := range ls {
		if q.Canceled() {
			break
		}
		for _, r := range rs {
			l, r := l, r
			wg.Add(1)
			q.cfg.Mgr.Submit(taskmgr.Request{
				Def:   v.HumanTask,
				Args:  []relation.Value{l.arg, r.arg},
				Scope: q.cfg.Scope,
				Trace: op.span,
				Done: func(out taskmgr.Outcome) {
					defer wg.Done()
					if out.Err != nil {
						q.reportError(out.Err)
						return
					}
					if !out.Value.Truthy() {
						return
					}
					joined := relation.Tuple{Schema: v.Schema(), Values: concatValues(l.tuple, r.tuple)}
					if q.passesAll(v.Residual, joined) {
						op.push(joined)
					}
				},
			})
		}
	}
	q.cfg.Mgr.FlushScope(v.HumanTask.Name, q.cfg.Scope)
	wg.Wait()
}

// runPreFilter runs a join's feature filter over one input with
// single-assignment POSSIBLY-style semantics: each tuple's filter task
// is submitted with redundancy 1 (the join predicate re-checks the
// surviving pairs anyway), survivors flow to the join, rejects are
// dropped. The input is pulled in blocks; between blocks the stage
// waits for outcomes — so live selectivity accumulates in the
// Statistics Manager — and re-asks Config.PreFilterKeep whether
// filtering the remaining (uncached, counted via counter-free cache
// probes) tuples is still predicted to pay. A "no" re-plans the rest of
// the input as an unfiltered pass-through that streams tuple-by-tuple,
// never buffering. While filtering, the block size starts at
// Config.PreFilterBlock and doubles after every block that submitted
// fresh (uncached) work, up to Config.PreFilterMaxBlock: early blocks
// probe cheaply while the selectivity estimate is noisy, later blocks
// amortize the per-block outcome barrier once confidence has grown.
//
// A tuple whose filter errors passes through unfiltered: the pre-filter
// is an optimization, and correctness stays with the join predicate.
func (q *Query) runPreFilter(op *operator, v *plan.PreFilter, in Iterator) {
	defer op.finish()
	c := q.cfg.Mgr.Cache()
	block := q.cfg.PreFilterBlock
	maxBlock := q.cfg.PreFilterMaxBlock
	if maxBlock <= 0 {
		maxBlock = 8 * q.cfg.PreFilterBlock
	}
	estimate := plan.EstimateRows(v.Input)
	pulled := 0
	first := true
	rows := make([]relation.Tuple, 0, block)
	args := make([]relation.Value, 0, block)
	argErr := make([]error, 0, block)
	for {
		if q.Canceled() {
			// The rest of the input is moot: the join downstream is dead
			// too, so neither fail-open pass-through nor more filter HITs
			// would buy anything.
			return
		}
		// Pull one block, evaluating each tuple's filter argument once
		// and probing the task cache (a cheap Contains probe, no
		// counters, no copies) to count the uncached work it holds.
		rows, args, argErr = rows[:0], args[:0], argErr[:0]
		uncached := 0
		for len(rows) < block {
			t, ok := in.Next()
			if !ok {
				break
			}
			atomic.AddInt64(&op.in, 1)
			rows = append(rows, t)
			a, err := Eval(v.Arg, t, nil)
			args, argErr = append(args, a), append(argErr, err)
			if err == nil && !c.Contains(cache.NewKey(v.Task.Name, []relation.Value{a})) {
				uncached++
			}
		}
		if len(rows) == 0 {
			return
		}
		pulled += len(rows)
		// Between blocks, re-ask whether filtering the remaining work is
		// still predicted to pay: this block's uncached tuples plus the
		// not-yet-pulled remainder of the input (estimated, and
		// conservatively assumed uncached — cached answers are free, so
		// overestimating remaining work only keeps a profitable filter
		// running).
		if !first && q.cfg.PreFilterKeep != nil {
			remaining := uncached
			if rest := estimate - pulled; rest > 0 {
				remaining += rest
			}
			if !q.cfg.PreFilterKeep(v, remaining) {
				// Re-plan: pass this block and the rest of the input
				// through unfiltered, tuple by tuple — the declined path
				// streams, it does not buffer.
				for _, t := range rows {
					op.push(t)
				}
				atomic.AddInt64(&op.decided, int64(len(rows)))
				for {
					t, ok := in.Next()
					if !ok {
						return
					}
					atomic.AddInt64(&op.in, 1)
					op.push(t)
					atomic.AddInt64(&op.decided, 1)
				}
			}
		}
		first = false
		q.preFilterBlock(op, v, rows, args, argErr)
		atomic.AddInt64(&op.decided, int64(len(rows)))
		// Cost-aware schedule: each filtered block that bought fresh
		// evidence sharpens the selectivity estimate, so later re-checks
		// need less frequent confirmation — grow the block geometrically
		// up to the cap. All-cached blocks buy no evidence and keep the
		// current cadence.
		if uncached > 0 && block < maxBlock {
			block *= 2
			if block > maxBlock {
				block = maxBlock
			}
		}
	}
}

// preFilterBlock submits one block's filter questions and waits for
// their outcomes, pushing survivors downstream in input order.
func (q *Query) preFilterBlock(op *operator, v *plan.PreFilter, rows []relation.Tuple,
	args []relation.Value, argErr []error) {
	keep := make([]bool, len(rows))
	// Tag each observation with the join side this stage protects, so
	// the Statistics Manager learns per-side selectivity and the
	// mid-query re-check judges this side by its own evidence.
	side := taskmgr.SideRight
	if v.Left {
		side = taskmgr.SideLeft
	}
	var wg sync.WaitGroup
	for i := range rows {
		if argErr[i] != nil {
			q.reportError(argErr[i])
			keep[i] = true // fail open
			continue
		}
		i := i
		wg.Add(1)
		q.cfg.Mgr.Submit(taskmgr.Request{
			Def:         v.Task,
			Args:        []relation.Value{args[i]},
			Assignments: 1,
			StatSide:    side,
			Scope:       q.cfg.Scope,
			Trace:       op.span,
			Done: func(out taskmgr.Outcome) {
				defer wg.Done()
				if out.Err != nil {
					q.reportError(out.Err)
					keep[i] = true // fail open
					return
				}
				keep[i] = out.Value.Truthy()
			},
		})
	}
	q.cfg.Mgr.FlushScope(v.Task.Name, q.cfg.Scope)
	wg.Wait()
	for i, t := range rows {
		if keep[i] {
			op.push(t)
		}
	}
}

// runRank is the human-powered sort: it buffers the input (ORDER BY is
// a barrier — no tuple can be emitted before the last input tuple has
// been compared or rated; see doc.go), evaluates the ranking task's
// arguments per tuple, hands the set to the rank subsystem under the
// strategy the optimizer chose (compare / rate / hybrid, with top-k
// pushdown), and streams the ordered rows out as soon as the order is
// final, releasing buffered tuples as they are emitted.
//
// Tuples whose arguments fail to evaluate are reported, excluded from
// ranking, and emitted where a NULL sort key would land — before the
// ranked rows ascending, after them descending — in input order.
func (q *Query) runRank(op *operator, v *plan.Rank, in Iterator) {
	defer op.finish()
	var rows []relation.Tuple
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&op.in, 1)
		rows = append(rows, t)
	}
	q.noteResident(int64(len(rows)))
	if q.cfg.Mgr == nil {
		q.reportError(fmt.Errorf("exec: human sort without task manager"))
		for i := range rows {
			op.push(rows[i])
		}
		return
	}

	items := make([]rank.Item, 0, len(rows))
	itemRow := make([]int, 0, len(rows)) // item index → row index
	var failed []int
	for i, t := range rows {
		args := make([]relation.Value, len(v.Args))
		ok := true
		for j, e := range v.Args {
			val, err := Eval(e, t, nil)
			if err != nil {
				q.reportError(err)
				ok = false
				break
			}
			args[j] = val
		}
		if !ok {
			failed = append(failed, i)
			continue
		}
		items = append(items, rank.Item{Key: fmt.Sprintf("r%06d", i), Args: args})
		itemRow = append(itemRow, i)
	}

	decide := q.cfg.RankStrategy
	if decide == nil {
		decide = defaultRankStrategy
	}
	d := decide(v, len(items))

	done := make(chan struct{})
	var perm []int
	var rst rank.Stats
	rank.Run(items, rateSurface(v), v.Compare, d, rank.Config{
		Mgr:     q.cfg.Mgr,
		Scope:   q.cfg.Scope,
		OnError: q.reportError,
	}, func(p []int, st rank.Stats) {
		perm, rst = p, st
		close(done)
	})
	<-done
	q.noteRankStat(RankStat{
		Op:          v.Label(),
		Strategy:    string(rst.Strategy),
		Items:       rst.Items,
		GroupSize:   d.GroupSize,
		CompareHITs: rst.CompareHITs,
		RateAsks:    rst.RateAsks,
		Windows:     rst.Windows,
		Refined:     rst.Refined,
	})

	emit := func(i int) {
		op.push(rows[i])
		rows[i] = relation.Tuple{} // release as emitted; the barrier is over
	}
	if !v.Desc {
		for _, i := range failed {
			emit(i)
		}
	}
	for _, pi := range perm {
		emit(itemRow[pi])
	}
	if v.Desc {
		for _, i := range failed {
			emit(i)
		}
	}
}

// rateSurface returns the rating task of a Rank node, or nil when the
// ORDER BY task can only compare.
func rateSurface(v *plan.Rank) *qlang.TaskDef {
	if v.Task != nil && v.Task.Type == qlang.TaskRating {
		return v.Task
	}
	return nil
}

// defaultRankStrategy is the static fallback when no optimizer is
// wired: rate when the task rates, compare otherwise.
func defaultRankStrategy(v *plan.Rank, n int) rank.Decision {
	d := rank.Decision{
		Strategy:  rank.StrategyCompare,
		GroupSize: rank.GroupSizeFor(rateSurface(v), v.Compare),
		TopK:      v.TopK,
		Desc:      v.Desc,
	}
	if rateSurface(v) != nil {
		d.Strategy = rank.StrategyRate
	}
	return d
}

// runOrderBy is the generic sort for multi-key or mixed-expression
// ORDER BY clauses: it buffers the input (a barrier, like runRank),
// resolves human sort keys (e.g. rating tasks) per tuple, sorts, and
// emits in order — releasing each buffered tuple as it streams out.
func (q *Query) runOrderBy(op *operator, v *plan.OrderBy, in Iterator) {
	defer op.finish()
	var rows []relation.Tuple
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&op.in, 1)
		rows = append(rows, t)
	}
	q.noteResident(int64(len(rows)))
	keyExprs := make([]qlang.Expr, len(v.Keys))
	taskNames := map[string]bool{}
	for i, k := range v.Keys {
		keyExprs[i] = k.Expr
		for _, call := range CollectCalls(k.Expr, q.cfg.Script) {
			taskNames[call.Name] = true
		}
	}
	keys := make([][]relation.Value, len(rows))
	var wg sync.WaitGroup
	for i, t := range rows {
		i, t := i, t
		wg.Add(1)
		q.resolveCalls(op, t, keyExprs, func(calls map[string]relation.Value, err error) {
			defer wg.Done()
			if err != nil {
				q.reportError(err)
				// Fill with Null like the per-key error path below, so
				// Compare during the sort sees a well-defined value.
				ks := make([]relation.Value, len(keyExprs))
				for j := range ks {
					ks[j] = relation.Null
				}
				keys[i] = ks
				return
			}
			ks := make([]relation.Value, len(keyExprs))
			for j, e := range keyExprs {
				val, err := Eval(e, t, calls)
				if err != nil {
					q.reportError(err)
					val = relation.Null
				}
				ks[j] = val
			}
			keys[i] = ks
		})
	}
	q.flushTasks(taskNames)
	wg.Wait()

	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range v.Keys {
			c := ka[j].Compare(kb[j])
			if v.Keys[j].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, i := range idx {
		op.push(rows[i])
		// The barrier is over once the order is final: drop each
		// tuple's buffered reference as it streams out, so a slow
		// consumer doesn't pin the whole input twice (queue + buffer).
		rows[i] = relation.Tuple{}
		keys[i] = nil
	}
}

// runAggregate groups rows and computes aggregates, resolving human
// calls per tuple; the call-free case fuses into aggregateIter instead.
func (q *Query) runAggregate(op *operator, v *plan.Aggregate, in Iterator) {
	defer op.finish()
	type group struct {
		first      relation.Tuple
		firstCalls map[string]relation.Value
		count      int64
		sums       map[int]float64
		mins       map[int]relation.Value
		maxs       map[int]relation.Value
	}
	groups := make(map[string]*group)
	var order []string

	exprs := make([]qlang.Expr, 0, len(v.Items)+len(v.Keys))
	taskNames := map[string]bool{}
	collect := func(e qlang.Expr) {
		exprs = append(exprs, e)
		for _, call := range CollectCalls(e, q.cfg.Script) {
			taskNames[call.Name] = true
		}
	}
	for _, k := range v.Keys {
		collect(k)
	}
	for _, it := range v.Items {
		if call, isAgg := aggCall(it.Expr); isAgg {
			for _, a := range call.Args {
				collect(a)
			}
		} else {
			collect(it.Expr)
		}
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&op.in, 1)
		wg.Add(1)
		q.resolveCalls(op, t, exprs, func(calls map[string]relation.Value, err error) {
			defer wg.Done()
			if err != nil {
				q.reportError(err)
				return
			}
			var keyEnc []byte
			for _, k := range v.Keys {
				kv, err := Eval(k, t, calls)
				if err != nil {
					q.reportError(err)
					return
				}
				keyEnc = kv.Encode(keyEnc)
			}
			mu.Lock()
			defer mu.Unlock()
			g, ok := groups[string(keyEnc)]
			if !ok {
				g = &group{first: t, firstCalls: calls,
					sums: map[int]float64{}, mins: map[int]relation.Value{}, maxs: map[int]relation.Value{}}
				groups[string(keyEnc)] = g
				order = append(order, string(keyEnc))
			}
			g.count++
			for i, it := range v.Items {
				call, isAgg := aggCall(it.Expr)
				if !isAgg || len(call.Args) == 0 {
					continue
				}
				val, err := Eval(call.Args[0], t, calls)
				if err != nil {
					q.reportError(err)
					continue
				}
				g.sums[i] += val.Float()
				if cur, ok := g.mins[i]; !ok || val.Compare(cur) < 0 {
					g.mins[i] = val
				}
				if cur, ok := g.maxs[i]; !ok || val.Compare(cur) > 0 {
					g.maxs[i] = val
				}
			}
		})
	}
	q.flushTasks(taskNames)
	wg.Wait()

	sort.Strings(order)
	for _, key := range order {
		g := groups[key]
		vals := make([]relation.Value, 0, len(v.Items))
		for i, it := range v.Items {
			if call, isAgg := aggCall(it.Expr); isAgg {
				switch strings.ToLower(call.Name) {
				case "count":
					vals = append(vals, relation.NewInt(g.count))
				case "sum":
					vals = append(vals, relation.NewFloat(g.sums[i]))
				case "avg":
					vals = append(vals, relation.NewFloat(g.sums[i]/float64(g.count)))
				case "min":
					vals = append(vals, g.mins[i])
				case "max":
					vals = append(vals, g.maxs[i])
				}
				continue
			}
			val, err := Eval(it.Expr, g.first, g.firstCalls)
			if err != nil {
				q.reportError(err)
				val = relation.Null
			}
			vals = append(vals, val)
		}
		op.push(relation.Tuple{Schema: v.Schema(), Values: vals})
	}
}

func aggCall(e qlang.Expr) (*qlang.Call, bool) {
	call, ok := e.(*qlang.Call)
	if !ok {
		return nil, false
	}
	if plan.AggregateFuncs[strings.ToLower(call.Name)] {
		return call, true
	}
	return nil, false
}

func (q *Query) flushTasks(names map[string]bool) {
	if q.cfg.Mgr == nil {
		return
	}
	for name := range names {
		q.cfg.Mgr.FlushScope(name, q.cfg.Scope)
	}
}
