// Package exec runs logical plans from internal/plan against the crowd
// through a hybrid Volcano executor.
//
// # Iterator composition
//
// Every operator implements Iterator (Next/Close/Stable). Call-free
// operators — Scan, Filter and Project without human tasks, local joins,
// Distinct, Limit, OrderBy and Aggregate over local keys — fuse into a
// single pull chain that runs in the consumer's goroutine: a call to the
// root's Next pulls exactly one tuple through the whole local pipeline
// with no channels, goroutines or per-operator buffering. Operators that
// wait on humans (filters/projections whose expressions call script
// tasks, human joins, PreFilter, Rank) keep a producer goroutine and are
// bridged into the chain through a bounded queue (queueIter), so HIT
// batching and asynchrony are preserved where they pay and avoided where
// they don't. Steady-state allocation is O(pipeline depth), not O(rows).
//
// # Tuple ownership
//
// A tuple returned by Next is transient unless the iterator's Stable()
// reports true: it remains valid only until the next Next or Close on
// that iterator, because pull-chain operators reuse scratch buffers and
// sorting operators recycle emitted rows through a sync.Pool
// (release-on-emit). A consumer that retains tuples past the next pull
// must clone them; ensureStable wraps any iterator with a cloning
// adapter, and the sink clones transient roots before publishing to the
// results table. Buffers travel through bufPool: getBuf hands out pooled
// value slices, putBuf zeroes and returns them.
//
// Closing the root propagates Close upstream, so LIMIT and cancellation
// stop scans and upstream producers early instead of draining them.
//
// # Plan caching
//
// The executor itself is stateless across queries; plan reuse lives in
// internal/core's normalized-SQL plan cache (literal-stripped
// fingerprints from qlang.NormalizeQuery, re-validated against the live
// pre-filter cost decisions on every hit). See internal/core/plancache.go.
package exec
