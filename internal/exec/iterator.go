package exec

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Iterator is the pull-based operator interface. Local (call-free)
// operators fuse into iterator chains that run in the consumer's
// goroutine; human-powered operators keep a producer goroutine and are
// bridged back into the pull chain through their output queue.
//
// Ownership contract: a tuple returned by Next from a non-Stable
// iterator is valid only until the next Next or Close call on that
// iterator — the producer may reuse its backing value buffer. Consumers
// that retain tuples past one step (sort barriers, join builds, the
// result sink, async operators with outstanding HIT callbacks) must
// clone transient tuples first; ensureStable wraps that rule.
type Iterator interface {
	// Next returns the next tuple; ok is false at end-of-stream.
	Next() (relation.Tuple, bool)
	// Close releases resources and propagates upstream, stopping
	// producers early (e.g. under a satisfied LIMIT). Idempotent.
	Close()
	// Stable reports whether emitted tuples stay valid after the next
	// Next call.
	Stable() bool
}

// bufPool recycles tuple value buffers across operators and queries so
// steady-state allocation tracks pipeline depth, not relation size.
var bufPool = sync.Pool{New: func() interface{} { return new([]relation.Value) }}

func getBuf(n int) *[]relation.Value {
	p := bufPool.Get().(*[]relation.Value)
	if cap(*p) < n {
		*p = make([]relation.Value, n)
	}
	*p = (*p)[:n]
	return p
}

func putBuf(p *[]relation.Value) {
	var zero relation.Value
	for i := range *p {
		(*p)[i] = zero
	}
	bufPool.Put(p)
}

// cloneTuple copies a tuple into a fresh (unpooled) buffer, for
// consumers that retain it indefinitely.
func cloneTuple(t relation.Tuple) relation.Tuple {
	vals := make([]relation.Value, len(t.Values))
	copy(vals, t.Values)
	return relation.Tuple{Schema: t.Schema, Values: vals}
}

// ensureStable wraps a transient iterator so every emitted tuple owns
// its values. Async operators wrap their inputs with it: their HIT
// callbacks hold tuples for arbitrarily long.
func ensureStable(it Iterator) Iterator {
	if it.Stable() {
		return it
	}
	return &stableIter{child: it}
}

type stableIter struct{ child Iterator }

func (s *stableIter) Next() (relation.Tuple, bool) {
	t, ok := s.child.Next()
	if !ok {
		return relation.Tuple{}, false
	}
	return cloneTuple(t), true
}

func (s *stableIter) Close()       { s.child.Close() }
func (s *stableIter) Stable() bool { return true }

// queueIter bridges an async operator's output queue into the pull
// chain. Closing it closes the queue, so the producer's pushes fail
// fast instead of blocking.
type queueIter struct{ op *operator }

func (qi *queueIter) Next() (relation.Tuple, bool) { return qi.op.out.Pop() }
func (qi *queueIter) Close()                       { qi.op.out.Close() }
func (qi *queueIter) Stable() bool                 { return true }

// scanIter streams the table snapshot, re-labelling tuples with the
// alias-qualified schema. The snapshot slice shares value storage with
// the table, so emitted tuples are stable.
type scanIter struct {
	q       *Query
	op      *operator
	v       *plan.Scan
	rows    []relation.Tuple
	started bool
	i       int
}

func (s *scanIter) Next() (relation.Tuple, bool) {
	if !s.started {
		s.started = true
		s.rows = s.v.Table.Snapshot()
	}
	if s.q.stopped() || s.i >= len(s.rows) {
		s.op.markDone()
		return relation.Tuple{}, false
	}
	row := s.rows[s.i]
	s.i++
	atomic.AddInt64(&s.op.in, 1)
	atomic.AddInt64(&s.op.emit, 1)
	return relation.Tuple{Schema: s.v.Schema(), Values: row.Values}, true
}

func (s *scanIter) Close() {
	s.rows = nil
	s.op.markDone()
}

func (s *scanIter) Stable() bool { return true }

// filterIter evaluates call-free conjuncts inline. A tuple whose
// conjunct errors is reported and dropped, as in the async cascade.
type filterIter struct {
	q         *Query
	op        *operator
	child     Iterator
	conjuncts []qlang.Expr
}

func (f *filterIter) Next() (relation.Tuple, bool) {
	for {
		if f.q.stopped() {
			f.op.markDone()
			return relation.Tuple{}, false
		}
		t, ok := f.child.Next()
		if !ok {
			f.op.markDone()
			return relation.Tuple{}, false
		}
		atomic.AddInt64(&f.op.in, 1)
		pass := true
		for _, c := range f.conjuncts {
			val, err := Eval(c, t, nil)
			if err != nil {
				f.q.reportError(err)
				pass = false
				break
			}
			if !val.Truthy() {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		atomic.AddInt64(&f.op.emit, 1)
		return t, true
	}
}

func (f *filterIter) Close() {
	f.child.Close()
	f.op.markDone()
}

func (f *filterIter) Stable() bool { return f.child.Stable() }

// projectIter computes call-free SELECT items into one reused scratch
// buffer; its output is transient.
type projectIter struct {
	q       *Query
	op      *operator
	v       *plan.Project
	child   Iterator
	scratch []relation.Value
}

func (p *projectIter) Next() (relation.Tuple, bool) {
	for {
		if p.q.stopped() {
			p.op.markDone()
			return relation.Tuple{}, false
		}
		t, ok := p.child.Next()
		if !ok {
			p.op.markDone()
			return relation.Tuple{}, false
		}
		atomic.AddInt64(&p.op.in, 1)
		vals := p.scratch[:0]
		ok = true
		for _, it := range p.v.Items {
			if _, isStar := it.Expr.(*qlang.Star); isStar {
				vals = append(vals, t.Values...)
				continue
			}
			val, err := Eval(it.Expr, t, nil)
			if err != nil {
				p.q.reportError(err)
				ok = false
				break
			}
			vals = append(vals, val)
		}
		if !ok {
			continue
		}
		p.scratch = vals
		atomic.AddInt64(&p.op.emit, 1)
		return relation.Tuple{Schema: p.v.Schema(), Values: vals}, true
	}
}

func (p *projectIter) Close() {
	p.child.Close()
	p.op.markDone()
}

func (p *projectIter) Stable() bool { return false }

// localJoinIter nested-loops a call-free join: the right side is built
// once (stable copies), the left side streams — the current probe tuple
// stays valid between our Next calls even from a transient child,
// because we only advance the child after its right scan completes.
type localJoinIter struct {
	q           *Query
	op          *operator
	v           *plan.Join
	left, right Iterator
	started     bool
	build       []relation.Tuple
	lt          relation.Tuple
	haveLeft    bool
	ri          int
	scratch     []relation.Value
}

func (j *localJoinIter) Next() (relation.Tuple, bool) {
	if !j.started {
		j.started = true
		for {
			t, ok := j.right.Next()
			if !ok {
				break
			}
			atomic.AddInt64(&j.op.in, 1)
			j.build = append(j.build, t)
		}
		j.q.noteResident(int64(len(j.build)))
	}
	for {
		if j.q.stopped() {
			j.op.markDone()
			return relation.Tuple{}, false
		}
		if !j.haveLeft {
			lt, ok := j.left.Next()
			if !ok {
				j.op.markDone()
				return relation.Tuple{}, false
			}
			atomic.AddInt64(&j.op.in, 1)
			j.lt, j.haveLeft, j.ri = lt, true, 0
		}
		for j.ri < len(j.build) {
			rt := j.build[j.ri]
			j.ri++
			vals := j.scratch[:0]
			vals = append(vals, j.lt.Values...)
			vals = append(vals, rt.Values...)
			j.scratch = vals
			joined := relation.Tuple{Schema: j.v.Schema(), Values: vals}
			if j.q.passesAll(j.v.Residual, joined) {
				atomic.AddInt64(&j.op.emit, 1)
				return joined, true
			}
		}
		j.haveLeft = false
	}
}

func (j *localJoinIter) Close() {
	j.left.Close()
	j.right.Close()
	j.build = nil
	j.op.markDone()
}

func (j *localJoinIter) Stable() bool { return false }

// distinctIter streams unique tuples by canonical encoding, reusing one
// encode buffer across tuples.
type distinctIter struct {
	q     *Query
	op    *operator
	child Iterator
	seen  map[string]struct{}
	enc   []byte
}

func (d *distinctIter) Next() (relation.Tuple, bool) {
	for {
		if d.q.stopped() {
			d.op.markDone()
			return relation.Tuple{}, false
		}
		t, ok := d.child.Next()
		if !ok {
			d.op.markDone()
			return relation.Tuple{}, false
		}
		atomic.AddInt64(&d.op.in, 1)
		d.enc = d.enc[:0]
		for _, val := range t.Values {
			d.enc = val.Encode(d.enc)
		}
		if _, dup := d.seen[string(d.enc)]; dup {
			continue
		}
		d.seen[string(d.enc)] = struct{}{}
		atomic.AddInt64(&d.op.emit, 1)
		return t, true
	}
}

func (d *distinctIter) Close() {
	d.child.Close()
	d.op.markDone()
}

func (d *distinctIter) Stable() bool { return d.child.Stable() }

// limitIter forwards the first N tuples, then closes its child so
// upstream producers stop early instead of draining to exhaustion.
type limitIter struct {
	q      *Query
	op     *operator
	child  Iterator
	n      int
	sent   int
	closed bool
}

func (l *limitIter) Next() (relation.Tuple, bool) {
	if l.sent >= l.n || l.q.stopped() {
		l.Close()
		return relation.Tuple{}, false
	}
	t, ok := l.child.Next()
	if !ok {
		l.Close()
		return relation.Tuple{}, false
	}
	atomic.AddInt64(&l.op.in, 1)
	l.sent++
	atomic.AddInt64(&l.op.emit, 1)
	return t, true
}

func (l *limitIter) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.child.Close()
	l.op.markDone()
}

func (l *limitIter) Stable() bool { return l.child.Stable() }

// orderByIter is the local sort barrier: it buffers its input at first
// Next — cloning transient tuples into pooled buffers — sorts, and
// releases each pooled buffer as the following row is pulled
// (release-on-emit, generalized from runRank).
type orderByIter struct {
	q       *Query
	op      *operator
	v       *plan.OrderBy
	child   Iterator
	started bool
	stable  bool
	rows    []relation.Tuple
	bufs    []*[]relation.Value
	keys    []relation.Value // len(rows) × len(v.Keys), row-major
	idx     []int
	pos     int
	lastBuf *[]relation.Value
}

func (o *orderByIter) Next() (relation.Tuple, bool) {
	if !o.started {
		o.started = true
		o.stable = o.child.Stable()
		o.consume()
	}
	if o.lastBuf != nil {
		putBuf(o.lastBuf)
		o.lastBuf = nil
	}
	if o.q.stopped() || o.pos >= len(o.idx) {
		o.op.markDone()
		return relation.Tuple{}, false
	}
	i := o.idx[o.pos]
	o.pos++
	t := o.rows[i]
	o.rows[i] = relation.Tuple{}
	if !o.stable {
		o.lastBuf = o.bufs[i]
		o.bufs[i] = nil
	}
	atomic.AddInt64(&o.op.emit, 1)
	return t, true
}

func (o *orderByIter) consume() {
	nk := len(o.v.Keys)
	for {
		t, ok := o.child.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&o.op.in, 1)
		if !o.stable {
			buf := getBuf(len(t.Values))
			copy(*buf, t.Values)
			o.bufs = append(o.bufs, buf)
			t = relation.Tuple{Schema: t.Schema, Values: *buf}
		}
		o.rows = append(o.rows, t)
		for _, k := range o.v.Keys {
			val, err := Eval(k.Expr, t, nil)
			if err != nil {
				o.q.reportError(err)
				val = relation.Null
			}
			o.keys = append(o.keys, val)
		}
	}
	o.q.noteResident(int64(len(o.rows)))
	o.idx = make([]int, len(o.rows))
	for i := range o.idx {
		o.idx[i] = i
	}
	sort.SliceStable(o.idx, func(a, b int) bool {
		ka, kb := o.keys[o.idx[a]*nk:], o.keys[o.idx[b]*nk:]
		for j := range o.v.Keys {
			c := ka[j].Compare(kb[j])
			if o.v.Keys[j].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func (o *orderByIter) Close() {
	if o.lastBuf != nil {
		putBuf(o.lastBuf)
		o.lastBuf = nil
	}
	for i, b := range o.bufs {
		if b != nil {
			putBuf(b)
			o.bufs[i] = nil
		}
	}
	o.rows = nil
	o.child.Close()
	o.op.markDone()
}

func (o *orderByIter) Stable() bool { return o.stable }

// aggregateIter is the local grouping barrier: it consumes its input at
// first Next, groups, and emits freshly built (stable) result tuples in
// sorted key order, mirroring runAggregate.
type aggregateIter struct {
	q       *Query
	op      *operator
	v       *plan.Aggregate
	child   Iterator
	started bool
	out     []relation.Tuple
	pos     int
}

func (a *aggregateIter) Next() (relation.Tuple, bool) {
	if !a.started {
		a.started = true
		a.consume()
	}
	if a.q.stopped() || a.pos >= len(a.out) {
		a.op.markDone()
		return relation.Tuple{}, false
	}
	t := a.out[a.pos]
	a.out[a.pos] = relation.Tuple{}
	a.pos++
	atomic.AddInt64(&a.op.emit, 1)
	return t, true
}

func (a *aggregateIter) consume() {
	type group struct {
		first relation.Tuple
		count int64
		sums  map[int]float64
		mins  map[int]relation.Value
		maxs  map[int]relation.Value
	}
	groups := make(map[string]*group)
	var order []string
	childStable := a.child.Stable()
	var keyEnc []byte
	n := int64(0)
	for {
		t, ok := a.child.Next()
		if !ok {
			break
		}
		atomic.AddInt64(&a.op.in, 1)
		n++
		keyEnc = keyEnc[:0]
		evalOK := true
		for _, k := range a.v.Keys {
			kv, err := Eval(k, t, nil)
			if err != nil {
				a.q.reportError(err)
				evalOK = false
				break
			}
			keyEnc = kv.Encode(keyEnc)
		}
		if !evalOK {
			continue
		}
		g, ok := groups[string(keyEnc)]
		if !ok {
			first := t
			if !childStable {
				first = cloneTuple(t)
			}
			g = &group{first: first,
				sums: map[int]float64{}, mins: map[int]relation.Value{}, maxs: map[int]relation.Value{}}
			groups[string(keyEnc)] = g
			order = append(order, string(keyEnc))
		}
		g.count++
		for i, it := range a.v.Items {
			call, isAgg := aggCall(it.Expr)
			if !isAgg || len(call.Args) == 0 {
				continue
			}
			val, err := Eval(call.Args[0], t, nil)
			if err != nil {
				a.q.reportError(err)
				continue
			}
			g.sums[i] += val.Float()
			if cur, ok := g.mins[i]; !ok || val.Compare(cur) < 0 {
				g.mins[i] = val
			}
			if cur, ok := g.maxs[i]; !ok || val.Compare(cur) > 0 {
				g.maxs[i] = val
			}
		}
	}
	a.q.noteResident(n)
	sort.Strings(order)
	for _, key := range order {
		g := groups[key]
		vals := make([]relation.Value, 0, len(a.v.Items))
		for i, it := range a.v.Items {
			if call, isAgg := aggCall(it.Expr); isAgg {
				switch strings.ToLower(call.Name) {
				case "count":
					vals = append(vals, relation.NewInt(g.count))
				case "sum":
					vals = append(vals, relation.NewFloat(g.sums[i]))
				case "avg":
					vals = append(vals, relation.NewFloat(g.sums[i]/float64(g.count)))
				case "min":
					vals = append(vals, g.mins[i])
				case "max":
					vals = append(vals, g.maxs[i])
				}
				continue
			}
			val, err := Eval(it.Expr, g.first, nil)
			if err != nil {
				a.q.reportError(err)
				val = relation.Null
			}
			vals = append(vals, val)
		}
		a.out = append(a.out, relation.Tuple{Schema: a.v.Schema(), Values: vals})
	}
}

func (a *aggregateIter) Close() {
	a.out = nil
	a.child.Close()
	a.op.markDone()
}

func (a *aggregateIter) Stable() bool { return true }
