package exec

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// TestRankNeedsManager: a Rank plan is a human operator; Start must
// fail fast without a task manager instead of erroring per tuple.
func TestRankNeedsManager(t *testing.T) {
	r := newExecRig(t, 0.97)
	r.addTable(t, "photos",
		[]relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("a.png")},
	)
	stmt, err := qlang.ParseQuery(`SELECT img FROM photos ORDER BY squareScore(img)`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := node.(*plan.Rank); !ok {
		t.Fatalf("plan = %T, want Rank", node)
	}
	if _, err := Start(node, Config{Script: r.script}); err == nil {
		t.Fatal("Start accepted a Rank plan without a task manager")
	}
}

// TestRunRankDescFailedTuplesLast: a tuple whose sort-key arguments
// fail to evaluate lands where a NULL key would — last under DESC,
// first ascending — instead of displacing real top results past a
// LIMIT.
func TestRunRankDescFailedTuplesLast(t *testing.T) {
	r := newExecRig(t, 0.9999)
	r.addTable(t, "photos",
		[]relation.Column{
			{Name: "id", Kind: relation.KindInt},
			{Name: "img", Kind: relation.KindImage},
		},
		[]relation.Value{relation.NewInt(1), relation.NewImage("ccccc.png")}, // score 9
		[]relation.Value{relation.NewInt(0), relation.NewImage("x.png")},     // 1/id errors
		[]relation.Value{relation.NewInt(2), relation.NewImage("c.png")},     // score 5
	)
	build := func(desc bool) *plan.Rank {
		sql := `SELECT id, img FROM photos ORDER BY squareScore(img)`
		if desc {
			sql += ` DESC`
		}
		stmt, err := qlang.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		node, err := plan.Build(stmt, r.script, r.catalog)
		if err != nil {
			t.Fatal(err)
		}
		rk := node.(*plan.Rank)
		// An extra sort-key argument that divides by zero for the id=0
		// row makes exactly one tuple's key evaluation fail.
		rk.Args = append(rk.Args, &qlang.Binary{Op: "/",
			L: &qlang.Literal{Value: relation.NewInt(1)}, R: &qlang.ColumnRef{Name: "id"}})
		return rk
	}
	order := func(rk *plan.Rank) []string {
		q, err := Start(rk, Config{Script: r.script, Mgr: r.mgr})
		if err != nil {
			t.Fatal(err)
		}
		rows := q.Wait()
		if len(rows) != 3 {
			t.Fatalf("rows = %d, want all 3 despite a key error", len(rows))
		}
		if q.ErrorCount() != 1 {
			t.Fatalf("errors = %d, want 1", q.ErrorCount())
		}
		out := make([]string, len(rows))
		for i, row := range rows {
			out[i] = row.Get("img").Str()
		}
		return out
	}
	if got := order(build(false)); got[0] != "x.png" {
		t.Fatalf("ascending: failed tuple must come first (NULL-key position), got %v", got)
	}
	if got := order(build(true)); got[2] != "x.png" || got[0] != "ccccc.png" {
		t.Fatalf("descending: failed tuple must come last, got %v", got)
	}
}

// TestRunRankRateStrategy drives the Rank operator end to end through
// the default (rate) strategy and checks order, stats, and the eval-
// error path (a failed tuple is reported and emitted first).
func TestRunRankRateStrategy(t *testing.T) {
	r := newExecRig(t, 0.9999)
	r.addTable(t, "photos",
		[]relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("ccccc.png")}, // score 9
		[]relation.Value{relation.NewImage("c.png")},     // score 5
		[]relation.Value{relation.NewImage("ccc.png")},   // score 7
	)
	stmt, err := qlang.ParseQuery(`SELECT img FROM photos ORDER BY squareScore(img)`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Start(node, Config{Script: r.script, Mgr: r.mgr})
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Wait()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []string{"c.png", "ccc.png", "ccccc.png"}
	for i, row := range rows {
		if got := row.Get("img").Str(); got != want[i] {
			t.Fatalf("row %d = %s, want %s", i, got, want[i])
		}
	}
	stats := q.RankStats()
	if len(stats) != 1 || stats[0].Strategy != "rate" || stats[0].RateAsks != 3 {
		t.Fatalf("RankStats = %+v", stats)
	}
}
