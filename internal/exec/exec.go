package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/qerr"
	"repro/internal/qlang"
	"repro/internal/queue"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// Config parameterizes a query execution.
type Config struct {
	// Mgr routes human tasks; required when the plan has any.
	Mgr *taskmgr.Manager
	// Script supplies task definitions for calls in expressions.
	Script *qlang.Script
	// QueueSize is the operator queue capacity (default 64).
	QueueSize int
	// JoinLeftBlock × JoinRightBlock is the two-column join grid size
	// per HIT (defaults 5×5, the shape of Figure 3).
	JoinLeftBlock, JoinRightBlock int
	// JoinPairwise uses the one-pair-per-question interface instead of
	// the two-column grid (the baseline in the join-interface sweep).
	JoinPairwise bool
	// GroupFilters merges the human predicates of one Filter node over
	// the same tuple into a single HIT (operator grouping) instead of
	// cascading them with short-circuit.
	GroupFilters bool
	// FilterOrder optionally reorders a Filter node's human conjuncts
	// per tuple; it receives the conjuncts and returns an evaluation
	// order (indices). The adaptive optimizer plugs in here. Nil keeps
	// query order.
	FilterOrder func(conjuncts []qlang.Expr) []int
	// FilterWindow bounds how many tuples run a human-filter cascade
	// concurrently (0 = unbounded). A small window lets selectivity
	// statistics from early tuples steer the ordering of later ones —
	// the adaptivity §2 calls for — at some latency cost.
	FilterWindow int
	// PreFilterKeep re-checks, between blocks of a join pre-filter
	// stage, whether filtering the remaining tuples is still predicted
	// to pay. remaining counts the tuples not yet submitted whose
	// filter answer is not already cached (the stage probes the task
	// cache with a counter-free Contains probe). Returning false makes the stage pass the rest
	// of its input through unfiltered — the mid-query re-plan of the
	// adaptive join optimization. Nil keeps filtering to the end.
	PreFilterKeep func(pf *plan.PreFilter, remaining int) bool
	// PreFilterBlock is how many tuples the first pre-filter round
	// submits before waiting for outcomes and re-checking the decision
	// (default 25). Smaller blocks adapt faster at a latency cost.
	PreFilterBlock int
	// PreFilterMaxBlock caps the cost-aware re-plan schedule: after each
	// block that bought new evidence the stage doubles its block size —
	// selectivity confidence rises with evidence, so re-checks get
	// cheaper-per-tuple as the stage proceeds — up to this bound.
	// 0 means 8× PreFilterBlock.
	PreFilterMaxBlock int
	// RankStrategy decides, per Rank node and runtime cardinality, how
	// the human-powered sort runs (compare / rate / hybrid, batch size,
	// top-k). The optimizer's RankChooser plugs in here; nil falls back
	// to a static heuristic (rate when a rating surface exists,
	// compare otherwise).
	RankStrategy func(v *plan.Rank, n int) rank.Decision
	// OnError receives per-tuple execution errors (default: collected
	// in Query.Errors).
	OnError func(error)
	// Scope binds every human-task submission of this query to one
	// taskmgr cancellation scope, so Cancel can expire the query's open
	// HITs and release its unspent budget. Nil runs unscoped (HITs
	// outlive the query, matching the pre-context behavior).
	Scope *taskmgr.Scope
	// Now reports current virtual time; when set, the query records the
	// virtual moment its first result tuple streamed out (FirstRowAt).
	Now func() mturk.VirtualTime
	// Trace is the query's root span; when set, every operator gets a
	// child span and threads it into its task submissions. Nil (the
	// default) disables tracing with zero overhead.
	Trace *obs.Span
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.JoinLeftBlock <= 0 {
		c.JoinLeftBlock = 5
	}
	if c.JoinRightBlock <= 0 {
		c.JoinRightBlock = 5
	}
	if c.PreFilterBlock <= 0 {
		c.PreFilterBlock = 25
	}
	if c.Script == nil {
		c.Script = &qlang.Script{}
	}
	return c
}

// OpStats describe one operator's progress for the dashboard.
type OpStats struct {
	Label   string
	In, Out int64
	Done    bool
}

// operator is one plan node's progress record. Async (human-powered)
// operators run a producer goroutine and own an output queue; local
// operators fuse into their consumer's pull chain and leave out nil.
type operator struct {
	label string
	out   *queue.Queue // nil for fused local operators
	in    int64        // atomic
	emit  int64        // atomic
	done  int32        // atomic
	// decided counts input tuples whose fate is settled; only
	// pre-filter stages maintain it (block submission lags input
	// arrival, so `in` alone would make undecided tuples look
	// processed).
	decided int64 // atomic
	// span is this operator's trace span (nil = tracing off); it rides
	// into every task submission the operator makes.
	span *obs.Span
}

func (o *operator) stats() OpStats {
	return OpStats{
		Label: o.label,
		In:    atomic.LoadInt64(&o.in),
		Out:   atomic.LoadInt64(&o.emit),
		Done:  atomic.LoadInt32(&o.done) == 1,
	}
}

func (o *operator) push(t relation.Tuple) {
	if err := o.out.Push(t); err == nil {
		atomic.AddInt64(&o.emit, 1)
	}
}

func (o *operator) markDone() { atomic.StoreInt32(&o.done, 1) }

func (o *operator) finish() {
	o.markDone()
	o.out.Close()
}

// Query is a running (or finished) query execution.
type Query struct {
	Root   plan.Node
	result *relation.Table

	cfg  Config
	ops  []*operator
	done chan struct{} // closed when the result stream has fully drained
	stop int32         // atomic; set by Cancel so fused iterators bail out

	trackers []*joinTracker

	// residentSum accumulates the buffer sizes of barrier operators
	// (sorts, joins, aggregates); with queue high-water marks it bounds
	// how many tuples the query ever held at once (PeakTuplesResident).
	residentSum int64 // atomic

	mu          sync.Mutex
	errors      []error
	errTotal    int64
	cause       error // cancellation cause; nil while live
	firstRowAt  mturk.VirtualTime
	hasFirstRow bool
	rankStats   []RankStat
}

// RankStat reports one Rank operator's chosen strategy and spend, for
// the dashboard's sort panel.
type RankStat struct {
	Op        string // operator label
	Strategy  string
	Items     int
	GroupSize int
	// CompareHITs counts comparison (Order) HITs the strategy posted;
	// RateAsks the rating questions it submitted (batched into
	// ⌈RateAsks/batch⌉ HITs by the task policy).
	CompareHITs int
	RateAsks    int
	// Windows / Refined describe hybrid comparison refinement.
	Windows, Refined int
}

// RankStats snapshots every completed Rank operator's report.
func (q *Query) RankStats() []RankStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]RankStat(nil), q.rankStats...)
}

func (q *Query) noteRankStat(rs RankStat) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.rankStats = append(q.rankStats, rs)
}

// maxRecordedErrors bounds Query.Errors so a canceled or failing query
// over a large input cannot hoard memory; ErrorCount keeps the total.
const maxRecordedErrors = 1000

// joinTracker pairs a human join with its input operators so the
// dashboard can report how much of the cross product the pre-filter
// stages avoided.
type joinTracker struct {
	label             string
	task              string
	left, right       *operator
	leftPre, rightPre bool
}

// JoinReduction quantifies one pre-filtered join's cross-product
// shrinkage: In counts tuples entering each side's pre-filter stage,
// Kept the survivors it forwarded, and PairsAvoided the join pairs
// already-rejected tuples will never buy (the paper's "filtering-based
// reduction in cross-product size"). Mid-query, tuples the filter has
// not decided yet count as neither kept nor avoided, so a dashboard
// snapshot never reports savings that have not happened; on a finished
// query PairsAvoided equals LeftIn×RightIn − LeftKept×RightKept.
type JoinReduction struct {
	Join               string // join operator label
	Task               string // join task name
	LeftIn, LeftKept   int64
	RightIn, RightKept int64
	PairsAvoided       int64
}

// JoinReductions snapshots the cross-product reduction of every human
// join that has at least one pre-filter stage.
func (q *Query) JoinReductions() []JoinReduction {
	out := make([]JoinReduction, 0, len(q.trackers))
	for _, tr := range q.trackers {
		ls, rs := tr.left.stats(), tr.right.stats()
		jr := JoinReduction{Join: tr.label, Task: tr.task,
			LeftIn: ls.Out, LeftKept: ls.Out, RightIn: rs.Out, RightKept: rs.Out}
		var droppedL, droppedR int64
		if tr.leftPre {
			jr.LeftIn, jr.LeftKept = ls.In, ls.Out
			droppedL = atomic.LoadInt64(&tr.left.decided) - jr.LeftKept
		}
		if tr.rightPre {
			jr.RightIn, jr.RightKept = rs.In, rs.Out
			droppedR = atomic.LoadInt64(&tr.right.decided) - jr.RightKept
		}
		// Every dropped-left tuple avoids the full right input and vice
		// versa; dropped×dropped pairs would be double-counted.
		jr.PairsAvoided = droppedL*jr.RightIn + droppedR*jr.LeftIn - droppedL*droppedR
		out = append(out, jr)
	}
	return out
}

// Result returns the results table; it is closed when the query
// completes. Poll or Wait on it, per the paper's push-based model.
func (q *Query) Result() *relation.Table { return q.result }

// Wait blocks until the query finishes and returns all result tuples.
func (q *Query) Wait() []relation.Tuple { return q.result.WaitClosed() }

// Errors returns per-tuple errors recorded during execution (capped at
// maxRecordedErrors; see ErrorCount for the uncapped total).
func (q *Query) Errors() []error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]error(nil), q.errors...)
}

// ErrorCount reports how many per-tuple errors occurred in total.
func (q *Query) ErrorCount() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.errTotal
}

// Err reports the query's terminal error through the typed taxonomy:
// the cancellation cause when the query was canceled (ErrCanceled /
// ErrDeadline), otherwise the first operator error classified
// (ErrBudgetExhausted for budget failures), or nil for a clean run.
// Like database/sql's Rows.Err, it is meaningful once the result
// stream has ended but may be called at any time.
func (q *Query) Err() error {
	q.mu.Lock()
	cause := q.cause
	var first error
	if len(q.errors) > 0 {
		first = q.errors[0]
	}
	q.mu.Unlock()
	if cause != nil {
		return qerr.Classify(cause)
	}
	return qerr.Classify(first)
}

// Done returns a channel closed when the query's result stream has
// fully drained (normally or after cancellation).
func (q *Query) Done() <-chan struct{} { return q.done }

// Canceled reports whether Cancel has been called.
func (q *Query) Canceled() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cause != nil
}

// FirstRowAt reports the virtual time the first result tuple streamed
// out of the root operator (requires Config.Now; ok=false before the
// first row or without it).
func (q *Query) FirstRowAt() (mturk.VirtualTime, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.firstRowAt, q.hasFirstRow
}

// Cancel stops the query with the given cause (ErrCanceled when nil):
// the query's scope is canceled — expiring its open HITs at the
// marketplace and releasing unspent budget — operator queues are closed
// so every stage drains, and the result table closes once in-flight
// tuples settle. Cancel after completion is a no-op; the first cause
// wins. Safe from any goroutine.
func (q *Query) Cancel(cause error) {
	select {
	case <-q.done:
		return
	default:
	}
	// The result table closes strictly before q.done does; between the
	// two a completed query must not be relabeled as canceled (the usual
	// defer rows.Close() after a full iteration lands exactly there).
	if q.result.Closed() {
		return
	}
	if cause == nil {
		cause = qerr.ErrCanceled
	}
	q.mu.Lock()
	if q.cause != nil {
		q.mu.Unlock()
		return
	}
	q.cause = cause
	q.mu.Unlock()
	atomic.StoreInt32(&q.stop, 1)
	// Resolve blocked operator waits first (outcome callbacks fire with
	// the cause), then close the queues so blocked Pops observe
	// end-of-stream; fused local operators have no queue and observe the
	// stop flag instead.
	if q.cfg.Scope != nil {
		q.cfg.Scope.Cancel(cause)
	}
	for _, op := range q.ops {
		if op.out != nil {
			op.out.Close()
		}
	}
}

// stopped reports whether Cancel has run; fused iterators poll it once
// per tuple so cancellation does not wait on queue closure.
func (q *Query) stopped() bool { return atomic.LoadInt32(&q.stop) == 1 }

func (q *Query) noteResident(n int64) { atomic.AddInt64(&q.residentSum, n) }

// PeakTuplesResident upper-bounds how many tuples the query ever held
// buffered at once: the summed high-water marks of the async operator
// queues plus every barrier buffer (sort, rank, aggregate, join build)
// at its fullest. Pipelined tuples in flight between fused operators
// are O(pipeline depth) and not counted.
func (q *Query) PeakTuplesResident() int64 {
	total := atomic.LoadInt64(&q.residentSum)
	for _, op := range q.ops {
		if op.out != nil {
			_, _, hwm := op.out.Stats()
			total += int64(hwm)
		}
	}
	return total
}

func (q *Query) noteFirstRow() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.hasFirstRow {
		q.firstRowAt = q.cfg.Now()
		q.hasFirstRow = true
	}
}

// OpStats snapshots every operator's progress, leaves first.
func (q *Query) OpStats() []OpStats {
	out := make([]OpStats, len(q.ops))
	for i, op := range q.ops {
		out[i] = op.stats()
	}
	return out
}

func (q *Query) reportError(err error) {
	if q.cfg.OnError != nil {
		q.cfg.OnError(err)
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// After cancellation every outstanding item resolves with the cause;
	// neither recording nor counting that flood — the dashboard's error
	// column means genuine tuple errors, and the cause is the headline.
	if q.cause != nil {
		return
	}
	q.errTotal++
	if len(q.errors) >= maxRecordedErrors {
		return
	}
	q.errors = append(q.errors, err)
}

// Start launches the plan as a composed pull-iterator chain: local
// (call-free) operators fuse into the sink's pull loop, human-powered
// operators get a producer goroutine bridged through a queue. It
// returns immediately; results stream into Query.Result().
func Start(root plan.Node, cfg Config) (*Query, error) {
	cfg = cfg.withDefaults()
	if needsHumans(root) && cfg.Mgr == nil {
		return nil, fmt.Errorf("exec: plan has human operators but no task manager")
	}
	q := &Query{Root: root, cfg: cfg, done: make(chan struct{})}
	q.result = relation.NewTable("result", root.Schema())
	top, _, err := q.build(root, cfg.Trace)
	if err != nil {
		close(q.done)
		return nil, err
	}
	go func() {
		stable := top.Stable()
		for {
			t, ok := top.Next()
			if !ok {
				break
			}
			if q.cfg.Now != nil {
				q.noteFirstRow()
			}
			if !stable {
				// The result table retains inserted tuples; transient
				// roots reuse their buffers, so copy out.
				t = cloneTuple(t)
			}
			if err := q.result.Insert(t); err != nil {
				q.reportError(err)
			}
		}
		top.Close()
		q.endSpans()
		q.result.Close()
		close(q.done)
	}()
	return q, nil
}

// endSpans stamps each operator's final row counts onto its span, ends
// it, and closes the query root. A canceled query's scope already
// closed the tree; End is idempotent, and counters land harmlessly on
// ended spans.
func (q *Query) endSpans() {
	for _, op := range q.ops {
		if op.span == nil {
			continue
		}
		st := op.stats()
		op.span.AddRowsIn(st.In)
		op.span.AddRowsOut(st.Out)
		op.span.End()
	}
	if q.cfg.Trace != nil {
		q.cfg.Trace.End()
	}
}

// StartContext is Start bound to a context: when ctx is canceled (or
// its deadline expires) the query is canceled with the matching typed
// cause, which propagates through the task manager to the marketplace —
// open HITs for the dead query are expired and unspent budget released.
// The watcher goroutine exits when the query finishes on its own.
func StartContext(ctx context.Context, root plan.Node, cfg Config) (*Query, error) {
	q, err := Start(root, cfg)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				q.Cancel(qerr.FromContext(ctx.Err()))
			case <-q.done:
			}
		}()
	}
	return q, nil
}

// Run executes the plan to completion and returns the result rows.
// The caller must be pumping the marketplace clock concurrently.
func Run(root plan.Node, cfg Config) ([]relation.Tuple, error) {
	q, err := Start(root, cfg)
	if err != nil {
		return nil, err
	}
	rows := q.Wait()
	if errs := q.Errors(); len(errs) > 0 {
		return rows, fmt.Errorf("exec: %d tuple errors, first: %v", len(errs), errs[0])
	}
	return rows, nil
}

func needsHumans(n plan.Node) bool {
	found := false
	plan.Walk(n, func(node plan.Node) {
		switch v := node.(type) {
		case *plan.Join:
			if v.HumanTask != nil {
				found = true
			}
		case *plan.PreFilter:
			found = true
		case *plan.Rank:
			found = true
		}
	})
	// Calls inside filters/projections are checked at runtime against
	// the script; a conservative true when any Call exists would need
	// the script here, so operators also error helpfully at runtime.
	return found
}

// exprsHaveCalls reports whether any expression invokes a human task.
func (q *Query) exprsHaveCalls(exprs ...qlang.Expr) bool {
	for _, e := range exprs {
		if HasCalls(e, q.cfg.Script) {
			return true
		}
	}
	return false
}

// async sets up the queue bridge for a human-powered operator: the
// caller launches a producer goroutine that pushes into op.out, and
// downstream pulls through the returned queueIter.
func (q *Query) async(op *operator) *queueIter {
	op.out = queue.New(q.cfg.QueueSize)
	return &queueIter{op: op}
}

// build composes the iterator chain for a node, appending one operator
// record per plan node pre-order (top-down) so OpStats keeps plan
// order. Call-free operators fuse into the consumer's pull chain;
// human-powered ones keep a producer goroutine. Async operators wrap
// their inputs in ensureStable: HIT callbacks retain tuples
// indefinitely, which transient iterators do not allow.
func (q *Query) build(n plan.Node, parent *obs.Span) (Iterator, *operator, error) {
	op := &operator{label: n.Label()}
	if parent != nil {
		op.span = parent.Child(obs.KindOperator, n.Label())
	}
	q.ops = append(q.ops, op)
	switch v := n.(type) {
	case *plan.Scan:
		return &scanIter{q: q, op: op, v: v}, op, nil
	case *plan.Filter:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		if !q.exprsHaveCalls(v.Conjuncts...) {
			return &filterIter{q: q, op: op, child: in, conjuncts: v.Conjuncts}, op, nil
		}
		it := q.async(op)
		go q.runFilter(op, v, ensureStable(in))
		return it, op, nil
	case *plan.Project:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		exprs := make([]qlang.Expr, len(v.Items))
		for i, item := range v.Items {
			exprs[i] = item.Expr
		}
		if !q.exprsHaveCalls(exprs...) {
			return &projectIter{q: q, op: op, v: v, child: in}, op, nil
		}
		it := q.async(op)
		go q.runProject(op, v, ensureStable(in))
		return it, op, nil
	case *plan.PreFilter:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		it := q.async(op)
		go q.runPreFilter(op, v, ensureStable(in))
		return it, op, nil
	case *plan.Join:
		left, lop, err := q.build(v.Left, op.span)
		if err != nil {
			return nil, nil, err
		}
		right, rop, err := q.build(v.Right, op.span)
		if err != nil {
			return nil, nil, err
		}
		_, lpre := v.Left.(*plan.PreFilter)
		_, rpre := v.Right.(*plan.PreFilter)
		if lpre || rpre {
			task := ""
			if v.HumanTask != nil {
				task = v.HumanTask.Name
			}
			q.trackers = append(q.trackers, &joinTracker{
				label: v.Label(), task: task,
				left: lop, right: rop, leftPre: lpre, rightPre: rpre,
			})
		}
		if v.HumanTask == nil {
			return &localJoinIter{q: q, op: op, v: v, left: left, right: ensureStable(right)}, op, nil
		}
		it := q.async(op)
		go q.runJoin(op, v, ensureStable(left), ensureStable(right))
		return it, op, nil
	case *plan.OrderBy:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		exprs := make([]qlang.Expr, len(v.Keys))
		for i, k := range v.Keys {
			exprs[i] = k.Expr
		}
		if !q.exprsHaveCalls(exprs...) {
			return &orderByIter{q: q, op: op, v: v, child: in}, op, nil
		}
		it := q.async(op)
		go q.runOrderBy(op, v, ensureStable(in))
		return it, op, nil
	case *plan.Rank:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		it := q.async(op)
		go q.runRank(op, v, ensureStable(in))
		return it, op, nil
	case *plan.Aggregate:
		exprs := append([]qlang.Expr(nil), v.Keys...)
		for _, item := range v.Items {
			exprs = append(exprs, item.Expr)
			if call, isAgg := aggCall(item.Expr); isAgg {
				exprs = append(exprs, call.Args...)
			}
		}
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		if !q.exprsHaveCalls(exprs...) {
			return &aggregateIter{q: q, op: op, v: v, child: in}, op, nil
		}
		it := q.async(op)
		go q.runAggregate(op, v, ensureStable(in))
		return it, op, nil
	case *plan.Distinct:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		return &distinctIter{q: q, op: op, child: in, seen: make(map[string]struct{})}, op, nil
	case *plan.Limit:
		in, _, err := q.build(v.Input, op.span)
		if err != nil {
			return nil, nil, err
		}
		return &limitIter{q: q, op: op, child: in, n: v.N}, op, nil
	default:
		return nil, nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// resolveCalls submits every human call of exprs for tuple t and invokes
// then with the resolved values (or an error). then runs synchronously
// when there are no calls or all are cached. assignments > 0 overrides
// the per-task redundancy (POSSIBLY predicates pass 1).
func (q *Query) resolveCalls(op *operator, t relation.Tuple, exprs []qlang.Expr, then func(map[string]relation.Value, error)) {
	q.resolveCallsN(op, t, exprs, 0, then)
}

func (q *Query) resolveCallsN(op *operator, t relation.Tuple, exprs []qlang.Expr, assignments int, then func(map[string]relation.Value, error)) {
	var calls []*qlang.Call
	seen := map[string]bool{}
	for _, e := range exprs {
		for _, c := range CollectCalls(e, q.cfg.Script) {
			base := (&qlang.Call{Name: c.Name, Args: c.Args}).String()
			if !seen[base] {
				seen[base] = true
				calls = append(calls, c)
			}
		}
	}
	if len(calls) == 0 {
		then(nil, nil)
		return
	}
	if q.cfg.Mgr == nil {
		then(nil, fmt.Errorf("exec: human call without task manager"))
		return
	}
	results := make(map[string]relation.Value, len(calls))
	var mu sync.Mutex
	var firstErr error
	remaining := len(calls)
	for _, c := range calls {
		def, ok := q.cfg.Script.Task(c.Name)
		if !ok {
			then(nil, fmt.Errorf("exec: unknown task %q", c.Name))
			return
		}
		key, err := CallKey(c, t)
		if err != nil {
			then(nil, err)
			return
		}
		args, err := evalArgs(c, t, nil)
		if err != nil {
			then(nil, err)
			return
		}
		q.cfg.Mgr.Submit(taskmgr.Request{
			Def:         def,
			Args:        args,
			Assignments: assignments,
			Scope:       q.cfg.Scope,
			Trace:       op.span,
			Done: func(out taskmgr.Outcome) {
				mu.Lock()
				if out.Err != nil && firstErr == nil {
					firstErr = out.Err
				} else {
					results[key] = out.Value
				}
				remaining--
				finished := remaining == 0
				err := firstErr
				mu.Unlock()
				if finished {
					then(results, err)
				}
			},
		})
	}
}
