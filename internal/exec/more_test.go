package exec

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// TestGroupByHumanCall groups photos by a crowd-answered predicate.
func TestGroupByHumanCall(t *testing.T) {
	r := newExecRig(t, 0.99)
	var rows [][]relation.Value
	for i := 0; i < 9; i++ {
		name := "dog"
		if i < 3 {
			name = "cat"
		}
		rows = append(rows, []relation.Value{relation.NewImage(fmt.Sprintf("%s-%d.png", name, i))})
	}
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}}, rows...)
	got := r.run(t, `SELECT isCat(img) AS cat, count() AS n FROM photos GROUP BY isCat(img)`, Config{})
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	byCat := map[bool]int64{}
	for _, row := range got {
		byCat[row.Get("cat").Bool()] = row.Get("n").Int()
	}
	if byCat[true] != 3 || byCat[false] != 6 {
		t.Fatalf("group sizes = %v", byCat)
	}
}

// TestOrderByMixedKeys sorts by a human rating first, then a local
// column as tiebreak.
func TestOrderByMixedKeys(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "photos",
		[]relation.Column{{Name: "img", Kind: relation.KindImage}, {Name: "id", Kind: relation.KindInt}},
		// squareScore truth = len(ref) % 10; all three share length 5
		// ("aaaaa"), so id breaks the tie; "aaaaaaa" (7) sorts last asc.
		[]relation.Value{relation.NewImage("aaaaa"), relation.NewInt(2)},
		[]relation.Value{relation.NewImage("bbbbb"), relation.NewInt(1)},
		[]relation.Value{relation.NewImage("aaaaaaa"), relation.NewInt(3)},
	)
	got := r.run(t, `SELECT img, id FROM photos ORDER BY squareScore(img), id`, Config{})
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Get("id").Int() != 1 || got[1].Get("id").Int() != 2 {
		t.Fatalf("tiebreak order = %v %v %v", got[0], got[1], got[2])
	}
	if got[2].Get("img").Str() != "aaaaaaa" {
		t.Fatalf("highest score should sort last: %v", got[2])
	}
}

// TestJoinWithLocalResidual combines the human join predicate with a
// local condition that prunes some matches.
func TestJoinWithLocalResidual(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "celebrities",
		[]relation.Column{{Name: "name", Kind: relation.KindString}, {Name: "image", Kind: relation.KindImage}},
		[]relation.Value{relation.NewString("Ann"), relation.NewImage("ann-c.png")},
		[]relation.Value{relation.NewString("Bob"), relation.NewImage("bob-c.png")},
	)
	r.addTable(t, "spottedstars",
		[]relation.Column{{Name: "id", Kind: relation.KindInt}, {Name: "image", Kind: relation.KindImage}},
		[]relation.Value{relation.NewInt(1), relation.NewImage("ann-s.png")},
		[]relation.Value{relation.NewInt(2), relation.NewImage("bob-s.png")},
	)
	got := r.run(t, `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image) AND spottedstars.id > 1`, Config{})
	if len(got) != 1 || got[0].Get("celebrities.name").Str() != "Bob" {
		t.Fatalf("residual join = %v", got)
	}
}

// TestFilterWithORAcrossHumanCalls evaluates a disjunction of two crowd
// predicates in one conjunct (both calls resolve, then OR locally).
func TestFilterWithORAcrossHumanCalls(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("cat-in.png")},  // cat, indoor
		[]relation.Value{relation.NewImage("dog-out.png")}, // dog, outdoor
		[]relation.Value{relation.NewImage("dog-in.png")},  // neither
		[]relation.Value{relation.NewImage("cat-out.png")}, // both
	)
	got := r.run(t, `SELECT img FROM photos WHERE isCat(img) OR isOutdoor(img)`, Config{})
	if len(got) != 3 {
		t.Fatalf("OR filter rows = %d, want 3", len(got))
	}
	for _, row := range got {
		if row.Values[0].Str() == "dog-in.png" {
			t.Fatal("neither-predicate photo passed")
		}
	}
}

// TestProjectArithmeticOverHumanCall mixes a crowd answer into a local
// expression.
func TestProjectArithmeticOverHumanCall(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("aaaa")}, // squareScore truth 4
	)
	got := r.run(t, `SELECT squareScore(img) * 10 AS scaled FROM photos`, Config{})
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	if v := got[0].Get("scaled").Float(); v < 25 || v > 55 {
		t.Fatalf("scaled score = %v, want ≈40", v)
	}
}

// TestSelectStarThroughJoin checks schema propagation for * over a join.
func TestSelectStarThroughJoin(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "a", []relation.Column{{Name: "x", Kind: relation.KindInt}},
		[]relation.Value{relation.NewInt(1)},
		[]relation.Value{relation.NewInt(2)})
	r.addTable(t, "b", []relation.Column{{Name: "y", Kind: relation.KindInt}},
		[]relation.Value{relation.NewInt(10)})
	got := r.run(t, `SELECT * FROM a, b WHERE a.x > 1`, Config{})
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Get("a.x").Int() != 2 || got[0].Get("b.y").Int() != 10 {
		t.Fatalf("star join row = %v", got[0])
	}
}

// TestEmptyInputsProduceEmptyResults covers the zero-row paths of every
// operator.
func TestEmptyInputsProduceEmptyResults(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}})
	r.addTable(t, "other", []relation.Column{{Name: "img2", Kind: relation.KindImage}})
	queries := []string{
		`SELECT img FROM photos WHERE isCat(img)`,
		`SELECT img FROM photos ORDER BY squareScore(img) LIMIT 3`,
		`SELECT count() AS n FROM photos GROUP BY img`,
		`SELECT DISTINCT img FROM photos`,
		`SELECT photos.img FROM photos, other WHERE samePerson(photos.img, other.img2)`,
	}
	for _, q := range queries {
		got := r.run(t, q, Config{})
		if len(got) != 0 {
			t.Errorf("%s: rows = %d", q, len(got))
		}
	}
	if r.mgr.Account().Spent() != 0 {
		t.Fatal("empty inputs spent money")
	}
}

// TestCountWithoutGroupBy aggregates the whole input as one group.
func TestCountWithoutGroupBy(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "vals", []relation.Column{{Name: "v", Kind: relation.KindInt}},
		[]relation.Value{relation.NewInt(5)},
		[]relation.Value{relation.NewInt(7)},
	)
	got := r.run(t, `SELECT count() AS n, sum(v) AS s FROM vals`, Config{})
	if len(got) != 1 || got[0].Get("n").Int() != 2 || got[0].Get("s").Float() != 12 {
		t.Fatalf("aggregate = %v", got)
	}
}

// TestRunHelper covers the blocking Run convenience wrapper.
func TestRunHelper(t *testing.T) {
	r := newExecRig(t, 0.95)
	r.addTable(t, "vals", []relation.Column{{Name: "v", Kind: relation.KindInt}},
		[]relation.Value{relation.NewInt(1)})
	node := mustPlan(t, r, `SELECT v FROM vals`)
	rows, err := Run(node, Config{Mgr: r.mgr, Script: r.script})
	if err != nil || len(rows) != 1 {
		t.Fatalf("Run = %v rows, err %v", len(rows), err)
	}
}
