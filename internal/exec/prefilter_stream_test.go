package exec

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// TestPreFilterDeclinedPathStreams is the regression test for the old
// executor's flaw: runPreFilter buffered its whole input before the
// first block even when the decider withdrew approval. The pull-based
// stage must (a) have consumed only the pulled blocks — not the whole
// input — at the moment the keep-hook decides, and (b) grow its block
// geometrically while filtering stays approved.
func TestPreFilterDeclinedPathStreams(t *testing.T) {
	r := newPreFilterRig(t)
	const n = 24
	r.celebTables(t, n, 0, 1, 0)
	fdef, ok := r.script.Task("isPerson")
	if !ok {
		t.Fatal("isPerson task missing")
	}

	// Build Project(Scan) for the schema plumbing, then run the
	// pre-filter stage as the plan root over the bare scan: the join it
	// would protect is irrelevant to the streaming contract under test.
	stmt, err := qlang.ParseQuery(`SELECT celebrities.image FROM celebrities`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	scan := node.(*plan.Project).Input
	pf := &plan.PreFilter{Input: scan, Task: fdef,
		Arg: &qlang.ColumnRef{Table: "celebrities", Name: "image"}, Left: true}

	ready := make(chan *Query, 1)
	var mu sync.Mutex
	var remainings []int
	var scanInAtHook []int64
	cfg := Config{
		Mgr:            r.mgr,
		Script:         r.script,
		PreFilterBlock: 4,
		PreFilterKeep: func(_ *plan.PreFilter, remaining int) bool {
			q := <-ready
			ready <- q
			var scanIn int64
			for _, os := range q.OpStats() {
				if strings.HasPrefix(os.Label, "Scan") {
					scanIn = os.In
				}
			}
			mu.Lock()
			remainings = append(remainings, remaining)
			scanInAtHook = append(scanInAtHook, scanIn)
			mu.Unlock()
			return false
		},
	}
	q, err := Start(pf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ready <- q
	done := make(chan []relation.Tuple)
	go func() { done <- q.Wait() }()
	var rows []relation.Tuple
	select {
	case rows = <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("query stuck; opstats=%v", q.OpStats())
	}
	if errs := q.Errors(); len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	// Declined pass-through forwards everything.
	if len(rows) != n {
		t.Fatalf("rows = %d, want %d", len(rows), n)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(remainings) != 1 {
		t.Fatalf("keep-hook calls = %v, want exactly one", remainings)
	}
	// Geometric schedule: block one submits 4, block two doubles to 8,
	// so the hook decides with 12 pulled and 8 uncached in hand plus the
	// 12 not yet pulled.
	if remainings[0] != 20 {
		t.Errorf("remaining = %d, want 20 (8 pulled-uncached + 12 unpulled)", remainings[0])
	}
	if s := r.mgr.StatsFor("isperson"); s.Submitted != 4 {
		t.Errorf("filter questions = %d, want 4 (only the first block was filtered)", s.Submitted)
	}
	// The streaming contract itself: when the hook fired, the stage had
	// pulled only its two probe blocks — the old executor had already
	// drained all 24 rows from the scan by this point.
	if got := scanInAtHook[0]; got != 12 {
		t.Errorf("scan rows consumed at decision time = %d, want 12 (first-block streaming, not whole-input buffering)", got)
	}
}

// TestPreFilterMaxBlockCapsGrowth pins the geometric schedule's cap:
// with PreFilterMaxBlock set, block sizes double only up to the cap.
func TestPreFilterMaxBlockCapsGrowth(t *testing.T) {
	r := newPreFilterRig(t)
	const n = 22
	r.celebTables(t, n, 0, 1, 0)
	fdef, _ := r.script.Task("isPerson")
	stmt, err := qlang.ParseQuery(`SELECT celebrities.image FROM celebrities`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, r.script, r.catalog)
	if err != nil {
		t.Fatal(err)
	}
	pf := &plan.PreFilter{Input: node.(*plan.Project).Input, Task: fdef,
		Arg: &qlang.ColumnRef{Table: "celebrities", Name: "image"}, Left: true}

	var mu sync.Mutex
	var remainings []int
	cfg := Config{
		Mgr:               r.mgr,
		Script:            r.script,
		PreFilterBlock:    2,
		PreFilterMaxBlock: 4,
		PreFilterKeep: func(_ *plan.PreFilter, remaining int) bool {
			mu.Lock()
			remainings = append(remainings, remaining)
			mu.Unlock()
			return true
		},
	}
	q, err := Start(pf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []relation.Tuple)
	go func() { done <- q.Wait() }()
	var rows []relation.Tuple
	select {
	case rows = <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("query stuck; opstats=%v", q.OpStats())
	}
	if len(rows) != n {
		t.Fatalf("rows = %d, want %d (everything is a person)", len(rows), n)
	}
	// Blocks: 2, 4, 4, 4, 4, 4 (capped at 4 after one doubling). The
	// hook runs before every block after the first; remaining = uncached
	// in block + unpulled rest = total − already-submitted.
	want := []int{20, 16, 12, 8, 4}
	mu.Lock()
	defer mu.Unlock()
	if len(remainings) != len(want) {
		t.Fatalf("keep-hook calls = %v, want %d calls %v", remainings, len(want), want)
	}
	for i, w := range want {
		if remainings[i] != w {
			t.Errorf("remaining[%d] = %d, want %d", i, remainings[i], w)
		}
	}
}
