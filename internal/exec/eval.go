// Package exec is Qurk's Query Executor (paper §2): every plan node runs
// as a goroutine, operators communicate asynchronously through input
// queues (as in Volcano), and results are pushed from the top-most
// operator into a results table the user polls. Human-powered operators
// route their questions through the Task Manager.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// CallKey canonically identifies a call site for result substitution;
// field projections share the underlying invocation (the paper runs
// findCEO once per company even though Query 1 mentions it twice).
func CallKey(c *qlang.Call, t relation.Tuple) (string, error) {
	args, err := evalArgs(c, t, nil)
	if err != nil {
		return "", err
	}
	var b []byte
	b = append(b, strings.ToLower(c.Name)...)
	b = append(b, '(')
	for _, a := range args {
		b = a.Encode(b)
	}
	b = append(b, ')')
	return string(b), nil
}

// evalArgs evaluates a call's arguments locally (call arguments may not
// themselves contain human calls).
func evalArgs(c *qlang.Call, t relation.Tuple, calls map[string]relation.Value) ([]relation.Value, error) {
	args := make([]relation.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := Eval(a, t, calls)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

// CollectCalls returns the distinct human task calls in an expression,
// in first-appearance order. Aggregate functions are not tasks.
func CollectCalls(e qlang.Expr, script *qlang.Script) []*qlang.Call {
	var out []*qlang.Call
	seen := map[string]bool{}
	var walk func(qlang.Expr)
	walk = func(e qlang.Expr) {
		switch v := e.(type) {
		case *qlang.Call:
			if _, ok := script.Task(v.Name); ok {
				sig := v.String()
				// Field projections share one invocation; key by the
				// call without the field.
				base := (&qlang.Call{Name: v.Name, Args: v.Args}).String()
				_ = sig
				if !seen[base] {
					seen[base] = true
					out = append(out, v)
				}
			}
			for _, a := range v.Args {
				walk(a)
			}
		case *qlang.Binary:
			walk(v.L)
			walk(v.R)
		case *qlang.Unary:
			walk(v.X)
		}
	}
	walk(e)
	return out
}

// HasCalls reports whether an expression contains any human task call.
func HasCalls(e qlang.Expr, script *qlang.Script) bool {
	return len(CollectCalls(e, script)) > 0
}

// Eval evaluates an expression over a tuple. calls maps resolved human
// invocations (keyed by CallKey) to their reduced values; a call missing
// from the map is an error — the operator must resolve calls first.
func Eval(e qlang.Expr, t relation.Tuple, calls map[string]relation.Value) (relation.Value, error) {
	switch v := e.(type) {
	case *qlang.Literal:
		return v.Value, nil
	case *qlang.ColumnRef:
		if !t.Has(v.QualifiedName()) {
			return relation.Null, fmt.Errorf("exec: unknown column %q in %v", v.QualifiedName(), t.Schema)
		}
		return t.Get(v.QualifiedName()), nil
	case *qlang.Call:
		key, err := CallKey(v, t)
		if err != nil {
			return relation.Null, err
		}
		val, ok := calls[key]
		if !ok {
			return relation.Null, fmt.Errorf("exec: unresolved call %s", v)
		}
		if v.Field != "" {
			return val.Field(v.Field), nil
		}
		return val, nil
	case *qlang.Binary:
		return evalBinary(v, t, calls)
	case *qlang.Unary:
		x, err := Eval(v.X, t, calls)
		if err != nil {
			return relation.Null, err
		}
		switch v.Op {
		case "NOT":
			return relation.NewBool(!x.Truthy()), nil
		case "POSSIBLY":
			return relation.NewBool(x.Truthy()), nil
		case "-":
			if x.Kind() == relation.KindInt {
				return relation.NewInt(-x.Int()), nil
			}
			return relation.NewFloat(-x.Float()), nil
		default:
			return relation.Null, fmt.Errorf("exec: unknown unary op %q", v.Op)
		}
	case *qlang.Star:
		return relation.Null, fmt.Errorf("exec: * cannot be evaluated")
	default:
		return relation.Null, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func evalBinary(v *qlang.Binary, t relation.Tuple, calls map[string]relation.Value) (relation.Value, error) {
	// AND/OR short-circuit on the left operand.
	if v.Op == "AND" || v.Op == "OR" {
		l, err := Eval(v.L, t, calls)
		if err != nil {
			return relation.Null, err
		}
		lt := l.Truthy()
		if v.Op == "AND" && !lt {
			return relation.NewBool(false), nil
		}
		if v.Op == "OR" && lt {
			return relation.NewBool(true), nil
		}
		r, err := Eval(v.R, t, calls)
		if err != nil {
			return relation.Null, err
		}
		return relation.NewBool(r.Truthy()), nil
	}
	l, err := Eval(v.L, t, calls)
	if err != nil {
		return relation.Null, err
	}
	r, err := Eval(v.R, t, calls)
	if err != nil {
		return relation.Null, err
	}
	switch v.Op {
	case "=":
		return relation.NewBool(l.Compare(r) == 0), nil
	case "!=":
		return relation.NewBool(l.Compare(r) != 0), nil
	case "<":
		return relation.NewBool(l.Compare(r) < 0), nil
	case "<=":
		return relation.NewBool(l.Compare(r) <= 0), nil
	case ">":
		return relation.NewBool(l.Compare(r) > 0), nil
	case ">=":
		return relation.NewBool(l.Compare(r) >= 0), nil
	case "+", "-", "*", "/":
		return evalArith(v.Op, l, r)
	default:
		return relation.Null, fmt.Errorf("exec: unknown operator %q", v.Op)
	}
}

func evalArith(op string, l, r relation.Value) (relation.Value, error) {
	bothInt := l.Kind() == relation.KindInt && r.Kind() == relation.KindInt
	if bothInt && op != "/" {
		a, b := l.Int(), r.Int()
		switch op {
		case "+":
			return relation.NewInt(a + b), nil
		case "-":
			return relation.NewInt(a - b), nil
		case "*":
			return relation.NewInt(a * b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case "+":
		return relation.NewFloat(a + b), nil
	case "-":
		return relation.NewFloat(a - b), nil
	case "*":
		return relation.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return relation.Null, fmt.Errorf("exec: division by zero")
		}
		return relation.NewFloat(a / b), nil
	}
	return relation.Null, fmt.Errorf("exec: unknown arithmetic op %q", op)
}
