package exec

import (
	"fmt"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

// TestPossiblyParsesAndPlans checks the POSSIBLY modifier survives the
// whole front end.
func TestPossiblyParsesAndPlans(t *testing.T) {
	q, err := qlang.ParseQuery(`SELECT img FROM photos WHERE POSSIBLY isCat(img) AND isOutdoor(img)`)
	if err != nil {
		t.Fatal(err)
	}
	and := q.Where.(*qlang.Binary)
	u, ok := and.L.(*qlang.Unary)
	if !ok || u.Op != "POSSIBLY" {
		t.Fatalf("left conjunct = %v", and.L)
	}
}

// TestPossiblyUsesSingleAssignment runs a query where the POSSIBLY
// predicate must be asked with one assignment and the plain predicate
// with the default three.
func TestPossiblyUsesSingleAssignment(t *testing.T) {
	r := newExecRig(t, 0.99)
	var rows [][]relation.Value
	for i := 0; i < 6; i++ {
		rows = append(rows, []relation.Value{relation.NewImage(fmt.Sprintf("cat-out-%d.png", i))})
	}
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}}, rows...)
	got := r.run(t, `SELECT img FROM photos WHERE POSSIBLY isCat(img) AND isOutdoor(img)`, Config{})
	if len(got) != 6 {
		t.Fatalf("rows = %d", len(got))
	}
	// isCat: 6 questions × 1 assignment = 6 paid answers.
	// isOutdoor: 6 questions × 3 assignments = 18 paid answers.
	cat := r.mgr.StatsFor("iscat")
	out := r.mgr.StatsFor("isoutdoor")
	if cat.SpentCents != 6 {
		t.Errorf("POSSIBLY predicate spent %v, want $0.06 (1 assignment each)", cat.SpentCents)
	}
	if out.SpentCents != 18 {
		t.Errorf("full predicate spent %v, want $0.18 (3 assignments each)", out.SpentCents)
	}
}

// TestPossiblyEvaluatesAsOperand checks evaluation semantics.
func TestPossiblyEvaluatesAsOperand(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "b", Kind: relation.KindBool})
	tup := relation.MustTuple(schema, relation.NewBool(true))
	e := &qlang.Unary{Op: "POSSIBLY", X: &qlang.ColumnRef{Name: "b"}}
	v, err := Eval(e, tup, nil)
	if err != nil || !v.Bool() {
		t.Fatalf("POSSIBLY true = %v err=%v", v, err)
	}
}

// TestFilterWindowLimitsConcurrency verifies windowed cascades still
// produce correct results.
func TestFilterWindowLimitsConcurrency(t *testing.T) {
	r := newExecRig(t, 0.99)
	var rows [][]relation.Value
	for i := 0; i < 12; i++ {
		name := "dog"
		if i%3 == 0 {
			name = "cat"
		}
		rows = append(rows, []relation.Value{relation.NewImage(fmt.Sprintf("%s-%d.png", name, i))})
	}
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}}, rows...)
	got := r.run(t, `SELECT img FROM photos WHERE isCat(img)`, Config{FilterWindow: 2})
	if len(got) != 4 {
		t.Fatalf("windowed filter rows = %d, want 4", len(got))
	}
}

// TestMixedAssignmentsNeverShareHIT: POSSIBLY and plain applications of
// the same task in one query batch separately.
func TestMixedAssignmentsNeverShareHIT(t *testing.T) {
	r := newExecRig(t, 0.99)
	r.addTable(t, "photos", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("cat-1.png")},
		[]relation.Value{relation.NewImage("cat-2.png")},
	)
	r.addTable(t, "photos2", []relation.Column{{Name: "img", Kind: relation.KindImage}},
		[]relation.Value{relation.NewImage("cat-3.png")},
		[]relation.Value{relation.NewImage("cat-4.png")},
	)
	// Run both flavors concurrently against one manager.
	q1, err := Start(mustPlan(t, r, `SELECT img FROM photos WHERE POSSIBLY isCat(img)`),
		Config{Mgr: r.mgr, Script: r.script})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Start(mustPlan(t, r, `SELECT img FROM photos2 WHERE isCat(img)`),
		Config{Mgr: r.mgr, Script: r.script})
	if err != nil {
		t.Fatal(err)
	}
	q1.Wait()
	q2.Wait()
	s := r.mgr.StatsFor("iscat")
	// 2 tuples × 1 assignment + 2 tuples × 3 assignments = 8 cents.
	if s.SpentCents != 8 {
		t.Fatalf("spent = %v, want $0.08", s.SpentCents)
	}
}
