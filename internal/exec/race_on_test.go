//go:build race

package exec

// raceEnabled reports whether the race detector is compiled in; the
// alloc-regression gate skips itself under -race because instrumentation
// inflates allocation counts far past the committed baseline.
const raceEnabled = true
