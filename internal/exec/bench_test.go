package exec

import (
	"testing"

	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/qlang"
)

// The benchmark pipelines live in benchsuite.go (non-test) so the
// alloc-regression gate and `qurk-bench -only EXEC` measure the exact
// plans benchmarked here. Each Benchmark* below drives one suite case.
func benchCase(b *testing.B, name string) {
	b.Helper()
	for _, c := range BenchSuite() {
		if c.Name != name {
			continue
		}
		node, err := c.Plan()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Run(node); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("no bench case named %q", name)
}

// BenchmarkFilterPipeline: Project(Filter(Scan)) with a local predicate
// over 4096 rows, half passing.
func BenchmarkFilterPipeline(b *testing.B) { benchCase(b, "FilterPipeline") }

// BenchmarkJoinGrid: a local equi-join evaluated through the join
// operator's residual path (64×64 pairs, 64 matches).
func BenchmarkJoinGrid(b *testing.B) { benchCase(b, "JoinGrid") }

// benchCaseTraced is benchCase with tracing armed: each iteration runs
// under a fresh query root span (released after the run, so the tracer's
// pool recycles the tree). Compare against the untraced Benchmark* twin
// to measure the tracing overhead — the acceptance bar is <5% ns/op.
func benchCaseTraced(b *testing.B, name string) {
	b.Helper()
	for _, c := range BenchSuite() {
		if c.Name != name {
			continue
		}
		node, err := c.Plan()
		if err != nil {
			b.Fatal(err)
		}
		tr := obs.New(func() mturk.VirtualTime { return 0 }, obs.NewRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.StartRoot(obs.KindQuery, c.SQL)
			q, err := Start(node, Config{Script: &qlang.Script{}, Trace: root})
			if err != nil {
				b.Fatal(err)
			}
			if rows := q.Wait(); len(rows) != c.WantRows {
				b.Fatalf("%s traced: rows = %d, want %d", c.Name, len(rows), c.WantRows)
			}
			tr.Release(root)
		}
		return
	}
	b.Fatalf("no bench case named %q", name)
}

// BenchmarkFilterPipelineTraced / BenchmarkJoinGridTraced: the two
// acceptance pipelines with a live span tree per run.
func BenchmarkFilterPipelineTraced(b *testing.B) { benchCaseTraced(b, "FilterPipeline") }
func BenchmarkJoinGridTraced(b *testing.B)      { benchCaseTraced(b, "JoinGrid") }

// BenchmarkDistinct: 4096 rows hashing down to 256 distinct values.
func BenchmarkDistinct(b *testing.B) { benchCase(b, "Distinct") }

// BenchmarkOrderBy: a local sort of 4096 shuffled rows.
func BenchmarkOrderBy(b *testing.B) { benchCase(b, "OrderBy") }

// TestBenchSuitePlans sanity-checks that every suite case plans and runs
// with the expected cardinality, so the gate and qurk-bench never chase
// a broken pipeline definition.
func TestBenchSuitePlans(t *testing.T) {
	for _, c := range BenchSuite() {
		node, err := c.Plan()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if _, err := c.Run(node); err != nil {
			t.Fatal(err)
		}
		_ = plan.Explain(node)
	}
}
