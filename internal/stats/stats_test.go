package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func bools(bs ...bool) []relation.Value {
	out := make([]relation.Value, len(bs))
	for i, b := range bs {
		out[i] = relation.NewBool(b)
	}
	return out
}

func ints(xs ...int64) []relation.Value {
	out := make([]relation.Value, len(xs))
	for i, x := range xs {
		out[i] = relation.NewInt(x)
	}
	return out
}

func TestMajorityBool(t *testing.T) {
	cases := []struct {
		votes []relation.Value
		want  bool
		conf  float64
	}{
		{bools(true, true, false), true, 2.0 / 3},
		{bools(false, false, true), false, 2.0 / 3},
		{bools(true, false), false, 0.5}, // tie -> false
		{bools(true), true, 1},
		{nil, false, 0},
	}
	for i, c := range cases {
		got, conf := MajorityBool(c.votes)
		if got != c.want || math.Abs(conf-c.conf) > 1e-9 {
			t.Errorf("case %d: = %v %.3f, want %v %.3f", i, got, conf, c.want, c.conf)
		}
	}
}

func TestMajorityValue(t *testing.T) {
	v, share := MajorityValue([]relation.Value{
		relation.NewString("ada"), relation.NewString("ada"), relation.NewString("bob"),
	})
	if v.Str() != "ada" || math.Abs(share-2.0/3) > 1e-9 {
		t.Fatalf("= %v %.3f", v, share)
	}
	// Deterministic tie-break.
	v1, _ := MajorityValue([]relation.Value{relation.NewString("a"), relation.NewString("b")})
	v2, _ := MajorityValue([]relation.Value{relation.NewString("b"), relation.NewString("a")})
	if !v1.Equal(v2) {
		t.Fatal("tie-break not deterministic")
	}
	if v, _ := MajorityValue(nil); !v.IsNull() {
		t.Fatal("empty votes should be NULL")
	}
}

func TestMeanMedian(t *testing.T) {
	if got := MeanRating(ints(1, 2, 6)); got != 3 {
		t.Errorf("mean = %v", got)
	}
	if got := MedianRating(ints(1, 2, 6)); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := MedianRating(ints(1, 2, 4, 6)); got != 3 {
		t.Errorf("median even = %v", got)
	}
	if MeanRating(nil) != 0 || MedianRating(nil) != 0 {
		t.Error("empty ratings should be 0")
	}
}

func TestReducers(t *testing.T) {
	maj, err := LookupReducer("majority")
	if err != nil {
		t.Fatal(err)
	}
	if got := maj(bools(true, true, false)); !got.Bool() {
		t.Errorf("majority = %v", got)
	}
	mb, _ := LookupReducer("majoritybool")
	if got := mb(bools(true, false)); got.Bool() {
		t.Errorf("majoritybool tie = %v", got)
	}
	mean, _ := LookupReducer("mean")
	if got := mean(ints(2, 4)); got.Float() != 3 {
		t.Errorf("mean = %v", got)
	}
	med, _ := LookupReducer("median")
	if got := med(ints(1, 9, 2)); got.Float() != 2 {
		t.Errorf("median = %v", got)
	}
	first, _ := LookupReducer("first")
	if got := first(ints(7, 8)); got.Int() != 7 {
		t.Errorf("first = %v", got)
	}
	if got := first(nil); !got.IsNull() {
		t.Errorf("first(empty) = %v", got)
	}
	all, _ := LookupReducer("all")
	if got := all(ints(1, 2)); got.Kind() != relation.KindList || got.Len() != 2 {
		t.Errorf("all = %v", got)
	}
	if _, err := LookupReducer("nope"); err == nil {
		t.Error("unknown reducer must error")
	}
}

func TestAgreement(t *testing.T) {
	if got := Agreement(bools(true, true, true)); got != 1 {
		t.Errorf("unanimous = %v", got)
	}
	if got := Agreement(bools(true, true, false)); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("2/3 = %v", got)
	}
	if Agreement(nil) != 0 {
		t.Error("empty agreement should be 0")
	}
}

func TestSelectivityPrior(t *testing.T) {
	var s Selectivity
	if got := s.Estimate(); got != 0.5 {
		t.Fatalf("prior = %v", got)
	}
	for i := 0; i < 8; i++ {
		s.Observe(true)
	}
	for i := 0; i < 2; i++ {
		s.Observe(false)
	}
	if got := s.Estimate(); math.Abs(got-0.75) > 1e-9 { // (8+1)/(10+2)
		t.Fatalf("estimate = %v", got)
	}
	if s.Trials() != 10 {
		t.Fatalf("trials = %d", s.Trials())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("zero state wrong")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first obs = %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("second obs = %v", e.Value())
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}
	// Bad alpha falls back to default rather than exploding.
	e2 := NewEWMA(-1)
	e2.Observe(5)
	if e2.Value() != 5 {
		t.Fatal("default alpha broken")
	}
}

func TestKendallTau(t *testing.T) {
	perfect, err := KendallTau([]int{0, 1, 2, 3}, []int{0, 1, 2, 3})
	if err != nil || perfect != 1 {
		t.Fatalf("identical = %v err=%v", perfect, err)
	}
	reversed, _ := KendallTau([]int{0, 1, 2, 3}, []int{3, 2, 1, 0})
	if reversed != -1 {
		t.Fatalf("reversed = %v", reversed)
	}
	single, _ := KendallTau([]int{0}, []int{0})
	if single != 1 {
		t.Fatalf("single = %v", single)
	}
	if _, err := KendallTau([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	oneSwap, _ := KendallTau([]int{0, 1, 2}, []int{1, 0, 2})
	if math.Abs(oneSwap-1.0/3) > 1e-9 {
		t.Fatalf("one swap = %v", oneSwap)
	}
}

func TestRanksFromScores(t *testing.T) {
	got := RanksFromScores([]float64{3.0, 1.0, 2.0})
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v", got)
		}
	}
	// Ties break by index, deterministically.
	tied := RanksFromScores([]float64{1, 1, 1})
	if tied[0] != 0 || tied[1] != 1 || tied[2] != 2 {
		t.Fatalf("tied ranks = %v", tied)
	}
}

// Property: KendallTau is symmetric and bounded.
func TestKendallTauProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a, b := r.Perm(n), r.Perm(n)
		t1, err1 := KendallTau(a, b)
		t2, err2 := KendallTau(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t1-t2) < 1e-9 && t1 >= -1-1e-9 && t1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MajorityBool respects a strict majority under permutation.
func TestMajorityBoolProperty(t *testing.T) {
	f := func(yes, no uint8) bool {
		y, n := int(yes%20), int(no%20)
		votes := append(bools(), make([]relation.Value, 0, y+n)...)
		for i := 0; i < y; i++ {
			votes = append(votes, relation.NewBool(true))
		}
		for i := 0; i < n; i++ {
			votes = append(votes, relation.NewBool(false))
		}
		got, _ := MajorityBool(votes)
		return got == (y > n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]bool{true, false, true}, []bool{true, true, true})
	if err != nil || math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v err=%v", acc, err)
	}
	if _, err := Accuracy([]bool{true}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	empty, _ := Accuracy(nil, nil)
	if empty != 1 {
		t.Fatalf("empty accuracy = %v", empty)
	}
}

func TestPrecisionRecall(t *testing.T) {
	pred := map[string]bool{"a": true, "b": true}
	truth := map[string]bool{"a": true, "c": true}
	p, r, f1 := PrecisionRecall(pred, truth)
	if p != 0.5 || r != 0.5 || math.Abs(f1-0.5) > 1e-9 {
		t.Fatalf("p=%v r=%v f1=%v", p, r, f1)
	}
	p2, r2, f2 := PrecisionRecall(nil, nil)
	if p2 != 0 || r2 != 1 || f2 != 0 {
		t.Fatalf("empty = %v %v %v", p2, r2, f2)
	}
}

func TestBinomialConfidence(t *testing.T) {
	if got := BinomialConfidence(0.5, 0); got != 1 {
		t.Fatalf("n=0 should be maximally uncertain: %v", got)
	}
	wide := BinomialConfidence(0.5, 10)
	narrow := BinomialConfidence(0.5, 1000)
	if narrow >= wide {
		t.Fatalf("confidence should narrow with n: %v vs %v", narrow, wide)
	}
}
