package stats

import (
	"sort"
	"sync"
)

// BackendObsState is one (backend, task kind) cell's exportable state:
// three EWMAs observed together, so their counts always match.
type BackendObsState struct {
	Price   EWMAState // per-assignment reward in cents
	Latency EWMAState // HIT post-to-done latency in virtual minutes
	Quality EWMAState // mean majority-agreement share in [0,1]
}

// backendCell is the live estimator behind one BackendObsState.
type backendCell struct {
	price, latency, quality *EWMA
}

func newBackendCell() *backendCell {
	return &backendCell{
		price:   NewEWMA(TaskEWMAAlpha),
		latency: NewEWMA(TaskEWMAAlpha),
		quality: NewEWMA(TaskEWMAAlpha),
	}
}

// BackendBook aggregates what each worker backend has demonstrated per
// task kind: how much it charges, how long it takes, and how well its
// workers agree. The Task Manager feeds it from finalized HITs; the
// optimizer's ChooseBackend reads it to route where the evidence says
// the policy's confidence is met most cheaply. Safe for concurrent use.
type BackendBook struct {
	mu    sync.RWMutex
	cells map[string]map[string]*backendCell // backend → task kind
}

// NewBackendBook returns an empty book.
func NewBackendBook() *BackendBook {
	return &BackendBook{cells: make(map[string]map[string]*backendCell)}
}

func (b *BackendBook) cell(backend, kind string) *backendCell {
	kinds := b.cells[backend]
	if kinds == nil {
		kinds = make(map[string]*backendCell)
		b.cells[backend] = kinds
	}
	c := kinds[kind]
	if c == nil {
		c = newBackendCell()
		kinds[kind] = c
	}
	return c
}

// Observe folds one finalized HIT into the (backend, kind) cell.
func (b *BackendBook) Observe(backend, kind string, priceCents, latencyMin, quality float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cell(backend, kind)
	c.price.Observe(priceCents)
	c.latency.Observe(latencyMin)
	c.quality.Observe(quality)
}

// SetState seeds one cell from replayed store state.
func (b *BackendBook) SetState(backend, kind string, st BackendObsState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cell(backend, kind)
	c.price.SetState(st.Price)
	c.latency.SetState(st.Latency)
	c.quality.SetState(st.Quality)
}

// Quality returns the observed quality for the cell and how many HITs
// back it; n == 0 means nothing observed (value is prior's business).
func (b *BackendBook) Quality(backend, kind string) (value float64, n int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if c := b.cells[backend][kind]; c != nil {
		return c.quality.Value(), c.quality.Count()
	}
	return 0, 0
}

// PriceCents returns the observed per-assignment price for the cell and
// how many HITs back it.
func (b *BackendBook) PriceCents(backend, kind string) (value float64, n int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if c := b.cells[backend][kind]; c != nil {
		return c.price.Value(), c.price.Count()
	}
	return 0, 0
}

// State exports one cell's full state.
func (b *BackendBook) State(backend, kind string) BackendObsState {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if c := b.cells[backend][kind]; c != nil {
		return BackendObsState{
			Price:   c.price.State(),
			Latency: c.latency.State(),
			Quality: c.quality.State(),
		}
	}
	return BackendObsState{}
}

// Cells lists every populated (backend, kind) pair, sorted, for
// deterministic export and reporting.
func (b *BackendBook) Cells() [][2]string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out [][2]string
	for backend, kinds := range b.cells {
		for kind := range kinds {
			out = append(out, [2]string{backend, kind})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
