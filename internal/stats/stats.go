// Package stats implements Qurk's Statistics Manager: answer aggregation
// across redundant assignments (the paper's multi-answer lists reduced by
// user-defined aggregates), selectivity and latency estimation for the
// adaptive optimizer, and rank-agreement metrics for the experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/relation"
)

// --- answer aggregation -------------------------------------------------

// MajorityBool reduces redundant boolean answers by majority vote,
// returning the winner and its vote share. Ties break to false
// (conservative: a filter keeps a tuple only on a strict majority).
func MajorityBool(votes []relation.Value) (value bool, confidence float64) {
	if len(votes) == 0 {
		return false, 0
	}
	yes := 0
	for _, v := range votes {
		if v.Truthy() {
			yes++
		}
	}
	if yes*2 > len(votes) {
		return true, float64(yes) / float64(len(votes))
	}
	return false, float64(len(votes)-yes) / float64(len(votes))
}

// MajorityValue returns the modal answer (by canonical encoding) and its
// share. Ties break to the smallest encoding for determinism.
func MajorityValue(votes []relation.Value) (relation.Value, float64) {
	if len(votes) == 0 {
		return relation.Null, 0
	}
	counts := make(map[string]int, len(votes))
	rep := make(map[string]relation.Value, len(votes))
	for _, v := range votes {
		k := v.EncodeKey()
		counts[k]++
		rep[k] = v
	}
	bestKey := ""
	for k := range counts {
		if bestKey == "" || counts[k] > counts[bestKey] || (counts[k] == counts[bestKey] && k < bestKey) {
			bestKey = k
		}
	}
	return rep[bestKey], float64(counts[bestKey]) / float64(len(votes))
}

// MeanRating averages numeric answers.
func MeanRating(votes []relation.Value) float64 {
	if len(votes) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range votes {
		sum += v.Float()
	}
	return sum / float64(len(votes))
}

// MedianRating returns the median numeric answer.
func MedianRating(votes []relation.Value) float64 {
	if len(votes) == 0 {
		return 0
	}
	xs := make([]float64, len(votes))
	for i, v := range votes {
		xs[i] = v.Float()
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Reducer collapses the multiple answers of one HIT into a single value,
// per the paper's §3 ("reduced using user-defined aggregates").
type Reducer func(votes []relation.Value) relation.Value

// Built-in reducers addressable by name in queries and the engine.
var builtinReducers = map[string]Reducer{
	"majority": func(v []relation.Value) relation.Value {
		val, _ := MajorityValue(v)
		return val
	},
	"majoritybool": func(v []relation.Value) relation.Value {
		b, _ := MajorityBool(v)
		return relation.NewBool(b)
	},
	"mean": func(v []relation.Value) relation.Value {
		return relation.NewFloat(MeanRating(v))
	},
	"median": func(v []relation.Value) relation.Value {
		return relation.NewFloat(MedianRating(v))
	},
	"first": func(v []relation.Value) relation.Value {
		if len(v) == 0 {
			return relation.Null
		}
		return v[0]
	},
	"all": func(v []relation.Value) relation.Value {
		return relation.NewList(v...)
	},
}

// LookupReducer resolves a reducer by name.
func LookupReducer(name string) (Reducer, error) {
	if r, ok := builtinReducers[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("stats: unknown reducer %q", name)
}

// Agreement reports the fraction of votes agreeing with the majority
// answer — a cheap quality signal the dashboard shows per operator.
func Agreement(votes []relation.Value) float64 {
	if len(votes) == 0 {
		return 0
	}
	_, share := MajorityValue(votes)
	return share
}

// --- estimators ----------------------------------------------------------

// Selectivity estimates a predicate's pass rate from observed outcomes,
// with a Beta(1,1) prior so early decisions are not degenerate.
type Selectivity struct {
	mu     sync.Mutex
	passes float64
	trials float64
}

// Observe records one predicate outcome.
func (s *Selectivity) Observe(pass bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trials++
	if pass {
		s.passes++
	}
}

// Estimate returns the posterior-mean pass rate.
func (s *Selectivity) Estimate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return (s.passes + 1) / (s.trials + 2)
}

// Trials returns the number of observations.
func (s *Selectivity) Trials() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.trials)
}

// SelectivityState is the estimator's exportable sufficient statistic,
// used by the durable knowledge store to persist estimates across engine
// restarts.
type SelectivityState struct {
	Passes, Trials float64
}

// State exports the estimator's counts.
func (s *Selectivity) State() SelectivityState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SelectivityState{Passes: s.passes, Trials: s.trials}
}

// SetState replaces the estimator's counts (restore after replay).
func (s *Selectivity) SetState(st SelectivityState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.passes, s.trials = st.Passes, st.Trials
}

// TaskEWMAAlpha is the smoothing factor the task manager uses for its
// per-task latency and agreement estimators. The knowledge store folds
// replayed observations with the same factor so a restored estimator
// matches one that lived through the observations.
const TaskEWMAAlpha = 0.3

// EWMA is an exponentially weighted moving average, used for per-task
// latency estimates.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	n     int
}

// NewEWMA creates an estimator with the given smoothing factor in (0,1];
// the first observation seeds the value.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds in a sample.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.value = x
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Count returns the number of observations.
func (e *EWMA) Count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// EWMAState is the estimator's exportable state (value and observation
// count; the smoothing factor stays with the live estimator).
type EWMAState struct {
	Value float64
	N     int
}

// State exports the current value and count.
func (e *EWMA) State() EWMAState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EWMAState{Value: e.value, N: e.n}
}

// SetState replaces the value and count (restore after replay).
func (e *EWMA) SetState(st EWMAState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.value, e.n = st.Value, st.N
}

// --- rank metrics ----------------------------------------------------------

// KendallTau computes the rank correlation between two orderings of the
// same n items; a and b map item index -> rank. Returns a value in
// [-1, 1]; 1 means identical order.
func KendallTau(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: rank vectors differ in length: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 1, nil
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := sign(a[i] - a[j])
			y := sign(b[i] - b[j])
			switch {
			case x == y && x != 0:
				concordant++
			case x != 0 && y != 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// RanksFromScores converts scores into ranks (0 = smallest score),
// breaking ties by index for determinism.
func RanksFromScores(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return scores[idx[i]] < scores[idx[j]] })
	ranks := make([]int, len(scores))
	for rank, i := range idx {
		ranks[i] = rank
	}
	return ranks
}

// --- quality accounting ----------------------------------------------------

// Accuracy compares produced booleans against truth and returns the
// fraction correct; used by experiment harnesses.
func Accuracy(got, want []bool) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("stats: accuracy vectors differ in length: %d vs %d", len(got), len(want))
	}
	if len(got) == 0 {
		return 1, nil
	}
	ok := 0
	for i := range got {
		if got[i] == want[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(got)), nil
}

// PrecisionRecall scores a predicted set against a truth set of keys.
func PrecisionRecall(predicted, truth map[string]bool) (precision, recall, f1 float64) {
	tp := 0
	for k := range predicted {
		if truth[k] {
			tp++
		}
	}
	if len(predicted) > 0 {
		precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	} else {
		recall = 1
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// BinomialConfidence returns the two-sided Wald interval half-width for a
// proportion p over n trials at ~95% confidence. The dashboard uses it to
// annotate selectivity estimates.
func BinomialConfidence(p float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(n))
}
