package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// E1Pipeline reproduces Figure 1: both demo queries flow through every
// component — parser, planner, executor queues, task manager,
// marketplace, crowd, cache, statistics — and the table reports each
// component's observable activity.
func E1Pipeline(seed int64) Table {
	companies := workload.Companies(6, seed)
	celebs := workload.Celebrities(4, 8, 0.5, seed+1)
	e := mustEngine(core.Config{}, defaultCrowd(seed), companies, celebs)
	defer e.Close()
	defineAll(e)

	r1, err := queryAndWait(e, query1)
	if err != nil {
		panic(err)
	}
	r2, err := queryAndWait(e, query2)
	if err != nil {
		panic(err)
	}

	market := e.Marketplace().Stats()
	cacheStats := e.Manager().Cache().Stats()
	t := Table{
		ID:      "E1",
		Title:   "Figure 1 — both demo queries through every component",
		Columns: []string{"component", "activity"},
		Notes:   "one row per architectural component of the paper's Figure 1",
	}
	add := func(c, a string) { t.Rows = append(t.Rows, []string{c, a}) }
	add("Query Optimizer", fmt.Sprintf("planned 2 queries (%d operators total)", countOps(e)))
	add("Query Executor", fmt.Sprintf("emitted %d + %d result tuples via async queues", len(r1), len(r2)))
	add("Task Manager", fmt.Sprintf("%d HITs posted from %d task applications", market.HITsPosted, submittedTotal(e)))
	add("HIT Compiler", fmt.Sprintf("%d questions compiled into forms", market.QuestionsAnswered))
	add("MTurk (simulated)", fmt.Sprintf("%d assignments completed, %s spent", market.AssignmentsCompleted, market.SpentCents))
	add("Statistics Manager", fmt.Sprintf("selectivity tracked for %d tasks", len(e.Manager().Stats())))
	add("Task Cache", fmt.Sprintf("%d entries, %d hits", cacheStats.Entries, cacheStats.Hits))
	add("Storage Engine", fmt.Sprintf("results tables closed at %.1f virtual min", e.Clock().Now().Minutes()))
	return t
}

func countOps(e *core.Engine) int {
	n := 0
	for _, h := range e.Queries() {
		n += len(h.Exec.OpStats())
	}
	return n
}

func submittedTotal(e *core.Engine) int64 {
	var n int64
	for _, s := range e.Manager().Stats() {
		n += s.Submitted
	}
	return n
}

// E2Cache reproduces the dashboard's "caching of previously executed
// UDFs on a tuple": Query 1 runs three times; runs 2-3 must be free.
func E2Cache(nCompanies int, seed int64) Table {
	ds := workload.Companies(nCompanies, seed)
	e := mustEngine(core.Config{}, defaultCrowd(seed), ds)
	defer e.Close()
	defineAll(e)

	t := Table{
		ID:      "E2",
		Title:   "Query 1 re-runs — Task Cache benefit (dashboard panel)",
		Columns: []string{"run", "HITs", "questions", "cacheHits", "spent", "latency(min)"},
		Notes:   "paper: \"We cache a given result to be used in several places (even possibly in different queries).\"",
	}
	var prevHITs, prevQ, prevHits int64
	var prevSpent int64
	for run := 1; run <= 3; run++ {
		before := e.Clock().Now()
		if _, err := queryAndWait(e, query1); err != nil {
			panic(err)
		}
		s := e.Manager().StatsFor("findceo")
		t.Rows = append(t.Rows, []string{
			Cell(run),
			Cell(s.HITsPosted - prevHITs),
			Cell(s.QuestionsAsked - prevQ),
			Cell(s.CacheHits - prevHits),
			centsVal(int64(s.SpentCents) - prevSpent).String(),
			fmt.Sprintf("%.1f", (e.Clock().Now() - before).Minutes()),
		})
		prevHITs, prevQ, prevHits = s.HITsPosted, s.QuestionsAsked, s.CacheHits
		prevSpent = int64(s.SpentCents)
	}
	return t
}

type centsVal int64

func (c centsVal) String() string {
	return fmt.Sprintf("$%d.%02d", int64(c)/100, int64(c)%100)
}

// E3JoinInterfaces reproduces Figure 3's design space: the same Query 2
// cross product evaluated through different join interfaces and batch
// shapes, reporting cost, latency and accuracy versus ground truth.
func E3JoinInterfaces(nCelebs, nSpotted int, seed int64) Table {
	type variant struct {
		name     string
		cfg      exec.Config
		pairwise bool
	}
	variants := []variant{
		{name: "pairwise (1 pair/HIT)", cfg: exec.Config{JoinPairwise: true}},
		{name: "pairwise batch 5", cfg: exec.Config{JoinPairwise: true}, pairwise: true},
		{name: "two-column 3x3", cfg: exec.Config{JoinLeftBlock: 3, JoinRightBlock: 3}},
		{name: "two-column 5x5", cfg: exec.Config{JoinLeftBlock: 5, JoinRightBlock: 5}},
		{name: "two-column 8x8", cfg: exec.Config{JoinLeftBlock: 8, JoinRightBlock: 8}},
	}
	t := Table{
		ID:      "E3",
		Title:   "Figure 3 — join interface & batching sweep (Query 2)",
		Columns: []string{"interface", "HITs", "questions", "spent", "latency(min)", "precision", "recall", "F1"},
		Notes:   fmt.Sprintf("%d celebrities × %d sightings; same crowd seed per variant", nCelebs, nSpotted),
	}
	for _, v := range variants {
		ds := workload.Celebrities(nCelebs, nSpotted, 0.4, seed)
		e := mustEngine(core.Config{Exec: v.cfg}, defaultCrowd(seed), ds)
		defineAll(e)
		if v.pairwise {
			// Batch 5 pair questions per HIT.
			pol := taskmgr.DefaultPolicy()
			pol.BatchSize = 5
			e.Manager().SetPolicy("samePerson", pol)
		}
		start := e.Clock().Now()
		rows, err := queryAndWait(e, query2)
		if err != nil {
			panic(err)
		}
		latency := (e.Clock().Now() - start).Minutes()
		precision, recall, f1 := joinQuality(ds, rows)
		s := e.Manager().StatsFor("sameperson")
		t.Rows = append(t.Rows, []string{
			v.name,
			Cell(s.HITsPosted),
			Cell(s.QuestionsAsked),
			s.SpentCents.String(),
			fmt.Sprintf("%.1f", latency),
			Cell(precision), Cell(recall), Cell(f1),
		})
		e.Close()
	}
	return t
}

// joinQuality scores join output rows against the dataset's oracle.
func joinQuality(ds workload.Dataset, rows []relation.Tuple) (p, r, f1 float64) {
	celebs, spotted := ds.Tables[0], ds.Tables[1]
	truth := map[string]bool{}
	for _, crow := range celebs.Snapshot() {
		for _, srow := range spotted.Snapshot() {
			if ds.Oracle.Truth("samePerson", []relation.Value{crow.Get("image"), srow.Get("image")}).Truthy() {
				truth[crow.Get("name").Str()+"/"+fmt.Sprint(srow.Get("id").Int())] = true
			}
		}
	}
	predicted := map[string]bool{}
	for _, row := range rows {
		predicted[row.Values[0].Str()+"/"+fmt.Sprint(row.Values[1].Int())] = true
	}
	return precisionRecallF1(predicted, truth)
}

func precisionRecallF1(predicted, truth map[string]bool) (p, r, f1 float64) {
	tp := 0
	for k := range predicted {
		if truth[k] {
			tp++
		}
	}
	if len(predicted) > 0 {
		p = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		r = float64(tp) / float64(len(truth))
	} else {
		r = 1
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return
}

// E4TaskModel reproduces the dashboard's "use of classifiers in place of
// humans for various HITs": a filter query streams batches of photos;
// as the naive Bayes task model trains on HIT results, later batches are
// increasingly answered for free.
func E4TaskModel(batches, perBatch int, seed int64) Table {
	ds := workload.Photos(batches*perBatch, 0.5, 0.5, seed)
	photos := ds.Tables[0].Snapshot()
	e := mustEngine(core.Config{
		AttachModels:       true,
		ModelMinExamples:   perBatch, // eligible after the first batch
		ModelMinConfidence: 0.85,
	}, defaultCrowd(seed), ds)
	defer e.Close()
	defineAll(e)

	t := Table{
		ID:      "E4",
		Title:   "Task Model substitution over time (dashboard panel)",
		Columns: []string{"batch", "human", "model", "spent", "accuracy"},
		Notes:   "paper §2: \"it trains this model with HIT results with the hope of eventually reducing monetary costs through automation\"",
	}
	var prevQ, prevModel int64
	prevSpentCents := int64(0)
	for b := 0; b < batches; b++ {
		// Register this batch as its own table.
		batchTab := relation.NewTable(fmt.Sprintf("photos_b%d", b), ds.Tables[0].Schema())
		correctTruth := map[string]bool{}
		for _, row := range photos[b*perBatch : (b+1)*perBatch] {
			_ = batchTab.InsertValues(row.Values...)
			img := row.Get("img")
			correctTruth[img.Str()] = ds.Oracle.Truth("isCat", []relation.Value{img}).Truthy()
		}
		if err := e.Register(batchTab); err != nil {
			panic(err)
		}
		rows, err := queryAndWait(e, fmt.Sprintf(`SELECT img FROM photos_b%d WHERE isCat(img)`, b))
		if err != nil {
			panic(err)
		}
		predicted := map[string]bool{}
		for _, row := range rows {
			predicted[row.Values[0].Str()] = true
		}
		correct := 0
		for img, isCat := range correctTruth {
			if predicted[img] == isCat {
				correct++
			}
		}
		s := e.Manager().StatsFor("iscat")
		t.Rows = append(t.Rows, []string{
			Cell(b + 1),
			Cell(s.QuestionsAsked - prevQ),
			Cell(s.ModelAnswers - prevModel),
			centsVal(int64(s.SpentCents) - prevSpentCents).String(),
			Cell(float64(correct) / float64(perBatch)),
		})
		prevQ, prevModel = s.QuestionsAsked, s.ModelAnswers
		prevSpentCents = int64(s.SpentCents)
	}
	return t
}

// E5PreFilter reproduces the dashboard's "filtering-based reduction in
// cross-product size": a cheap isClear filter over sightings shrinks the
// join's right input, trading a few cheap filter HITs for many join
// questions.
func E5PreFilter(nCelebs, nSpotted int, seed int64) Table {
	t := Table{
		ID:      "E5",
		Title:   "Pre-filtering the join cross product (dashboard panel)",
		Columns: []string{"plan", "filterQs", "joinQs", "totalSpent", "recall(clear)"},
		Notes:   "isClear drops ~50% of sightings; pre-filtering pays in dollars when join questions are expensive (pairwise), and always shrinks the cross product",
	}
	type variantCfg struct {
		withFilter bool
		pairwise   bool
		label      string
	}
	variants := []variantCfg{
		{false, false, "grid join only"},
		{true, false, "isClear → grid join"},
		{false, true, "pairwise join only"},
		{true, true, "isClear → pairwise join"},
	}
	for _, vc := range variants {
		withFilter := vc.withFilter
		ds := workload.Celebrities(nCelebs, nSpotted, 0.4, seed)
		clearOracle := clearOracleFor()
		e := mustEngine(core.Config{Oracle: clearOracle,
			Exec: exec.Config{JoinPairwise: vc.pairwise}}, defaultCrowd(seed), ds)
		defineAll(e)
		query := query2
		if withFilter {
			query = `SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars WHERE isClear(spottedstars.image) AND samePerson(celebrities.image, spottedstars.image)`
		}
		rows, err := queryAndWait(e, query)
		if err != nil {
			panic(err)
		}
		// Recall over clear sightings.
		truth := map[string]bool{}
		for _, crow := range ds.Tables[0].Snapshot() {
			for _, srow := range ds.Tables[1].Snapshot() {
				img := srow.Get("image")
				if !clearOracle.Truth("isClear", []relation.Value{img}).Truthy() {
					continue
				}
				if ds.Oracle.Truth("samePerson", []relation.Value{crow.Get("image"), img}).Truthy() {
					truth[crow.Get("name").Str()+"/"+fmt.Sprint(srow.Get("id").Int())] = true
				}
			}
		}
		predicted := map[string]bool{}
		for _, row := range rows {
			predicted[row.Values[0].Str()+"/"+fmt.Sprint(row.Values[1].Int())] = true
		}
		_, recall, _ := precisionRecallF1(predicted, truth)
		sJoin := e.Manager().StatsFor("sameperson")
		sFilter := e.Manager().StatsFor("isclear")
		t.Rows = append(t.Rows, []string{
			vc.label,
			Cell(sFilter.QuestionsAsked),
			Cell(sJoin.QuestionsAsked),
			(sJoin.SpentCents + sFilter.SpentCents).String(),
			Cell(recall),
		})
		e.Close()
	}
	return t
}

// clearOracleFor answers isClear from the street-photo number embedded
// in the sighting's image reference: even hundreds are "clear".
func clearOracleFor() crowdOracle {
	return crowdOracle{}
}

type crowdOracle struct{}

// Truth implements crowd.Oracle for the isClear feature filter.
func (crowdOracle) Truth(task string, args []relation.Value) relation.Value {
	if task != "isClear" && task != "isclear" {
		return relation.Null
	}
	ref := args[0].Str()
	// street%04d.png — use the parity of the digit before ".png".
	if len(ref) < 5 {
		return relation.NewBool(false)
	}
	d := ref[len(ref)-5]
	return relation.NewBool(d%2 == 0)
}
