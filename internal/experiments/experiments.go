// Package experiments regenerates the paper's evaluation artifacts.
// The demo paper has no numbered result tables; its artifacts are the
// dashboard metrics of Figure 2, the join-interface design space of
// Figure 3, the two demo queries, and the optimizations §2 and §4 name.
// Each Ex function reproduces one of them as a printable table;
// EXPERIMENTS.md records the expected shapes next to measured output.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Table is one experiment's result, printable as the paper would report
// it.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// String renders an aligned text table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Cell formats a value for a table cell.
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", x)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// defaultCrowd is the baseline synthetic population used across
// experiments: competent but imperfect workers with realistic batching
// decay, occasional spam and abandonment.
func defaultCrowd(seed int64) crowd.Config {
	return crowd.Config{
		Workers:      150,
		Seed:         seed,
		MeanSkill:    0.92,
		SkillStd:     0.05,
		SpamFraction: 0.03,
		AbandonRate:  0.01,
		BatchPenalty: 0.012,
	}
}

// mustEngine builds an engine over datasets or panics (experiments are
// driver code; configuration errors are programming errors).
func mustEngine(cfg core.Config, crowdCfg crowd.Config, datasets ...workload.Dataset) *core.Engine {
	var oracles []crowd.Oracle
	for _, ds := range datasets {
		oracles = append(oracles, ds.Oracle)
	}
	if cfg.Oracle == nil {
		cfg.Oracle = workload.Combine(oracles...)
	} else {
		oracles = append(oracles, cfg.Oracle)
		cfg.Oracle = workload.Combine(oracles...)
	}
	cfg.Crowd = crowdCfg
	e, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	for _, ds := range datasets {
		for _, tab := range ds.Tables {
			if err := e.Register(tab); err != nil {
				panic(err)
			}
		}
	}
	return e
}

const taskDefs = `
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Drag a picture of any Celebrity in the left column to their matching picture in the Spotted Star column to the right."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)

TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this photo of a cat? %s", photo
  Response: YesNo

TASK isOutdoor(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Was this photo taken outdoors? %s", photo
  Response: YesNo

TASK isClear(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is the person in this photo clearly visible? %s", photo
  Response: YesNo

TASK squareScore(Image pic)
RETURNS Int:
  TaskType: Rating
  Text: "How visually appealing is %s, on a scale of 1 to 9?", pic
  Response: Rating(1, 9)

TASK better(Image a, Image b)
RETURNS Bool:
  TaskType: Filter
  Text: "Is the first image (%s) more appealing than the second (%s)?", a, b
  Response: YesNo
`

// defineAll installs the shared task definitions.
func defineAll(e *core.Engine) {
	if err := e.Define(taskDefs); err != nil {
		panic(err)
	}
}

// query1 and query2 are the paper's demo queries, verbatim modulo
// quoting.
const (
	query1 = `SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies`
	query2 = `SELECT celebrities.name, spottedstars.id FROM celebrities, spottedstars WHERE samePerson(celebrities.image, spottedstars.image)`
)

// queryAndWait drains one query through the context API, returning the
// rows and the typed terminal error (the experiments' one-call idiom,
// kept off the deprecated Engine.QueryAndWait shim).
func queryAndWait(e *core.Engine, sql string) ([]relation.Tuple, error) {
	rows, err := e.Query(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []relation.Tuple
	for rows.Next() {
		out = append(out, rows.Tuple())
	}
	return out, rows.Err()
}
