//go:build !race

package experiments

import "testing"

// TestExperimentsDeterministic reruns representative experiments with
// the same seed and requires byte-identical result tables: workload
// generation, crowd noise, batching, the sharded marketplace and the
// sharded virtual clock are all pure functions of the seed.
//
// Excluded under -race: the race detector slows goroutines enough to
// shift when the *streaming executor* submits tuples relative to
// virtual-time progress, which legitimately moves linger-flush
// boundaries (and thus latency cells) — scheduling sensitivity of the
// async engine, not hidden shared-state. The single-goroutine load
// harness keeps its determinism assertion under -race in
// determinism_test.go.
func TestExperimentsDeterministic(t *testing.T) {
	runs := []struct {
		name string
		gen  func() Table
	}{
		{"E8Batching", func() Table { return E8Batching(40, 7) }},
		{"E2Cache", func() Table { return E2Cache(8, 7) }},
		{"E6Redundancy", func() Table { return E6Redundancy(30, 7) }},
	}
	for _, run := range runs {
		t.Run(run.name, func(t *testing.T) {
			first := run.gen().String()
			for i := 2; i <= 3; i++ {
				if again := run.gen().String(); again != first {
					t.Fatalf("run %d differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s",
						i, first, i, again)
				}
			}
		})
	}
}
