package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// E11SpamDefense is an extension experiment: the agreement-based worker
// reputation the CIDR companion paper proposes, turned into an MTurk-
// style qualification. A heavily spammed crowd answers a filter
// workload; phase 1 builds reputations (and suffers), then the
// blocklist activates and phase 2 re-runs fresh tuples without the
// spammers.
func E11SpamDefense(nPerPhase int, seed int64) Table {
	t := Table{
		ID:      "E11",
		Title:   "Worker reputation & blocklist (extension) — spam resistance",
		Columns: []string{"phase", "questions", "spent", "accuracy", "blockedWorkers"},
		Notes:   "crowd has 30% spammers; phase 1 uses 5-way majorities to learn reputations, phase 2 blocks agreement < 0.75 and drops to 3-way redundancy",
	}
	ds := workload.Photos(2*nPerPhase, 0.5, 0.5, seed)
	cfg := defaultCrowd(seed)
	cfg.Workers = 20
	cfg.SpamFraction = 0.3
	cfg.MeanSkill = 0.95
	e := mustEngine(core.Config{}, cfg, ds)
	defer e.Close()
	defineAll(e)
	def := taskOf(e, "isCat")
	setAssignments := func(n int) {
		p := taskmgr.DefaultPolicy()
		p.Assignments = n
		e.Manager().SetPolicy(def.Name, p)
	}
	// Phase 1 invests in redundancy: 5-way majorities both resist the
	// spam and give crisp reputation evidence.
	setAssignments(5)

	photos := ds.Tables[0].Snapshot()
	runPhase := func(phase int) (questions int64, spent string, acc float64) {
		var mu sync.Mutex
		done := 0
		results := map[string]bool{}
		before := e.Manager().StatsFor("iscat")
		lo, hi := (phase-1)*nPerPhase, phase*nPerPhase
		for _, row := range photos[lo:hi] {
			img := row.Get("img")
			e.Manager().Submit(taskmgr.Request{
				Def:  def,
				Args: []relation.Value{img},
				Done: func(out taskmgr.Outcome) {
					mu.Lock()
					results[img.Str()] = out.Value.Truthy()
					done++
					mu.Unlock()
				},
			})
		}
		e.Manager().Flush(def.Name)
		waitFor(e, func() bool { mu.Lock(); defer mu.Unlock(); return done == nPerPhase })
		correct := 0
		for img, keep := range results {
			if keep == ds.Oracle.Truth("isCat", []relation.Value{relation.NewImage(img)}).Truthy() {
				correct++
			}
		}
		after := e.Manager().StatsFor("iscat")
		return after.QuestionsAsked - before.QuestionsAsked,
			centsVal(int64(after.SpentCents - before.SpentCents)).String(),
			float64(correct) / float64(nPerPhase)
	}

	q1, s1, a1 := runPhase(1)
	t.Rows = append(t.Rows, []string{"1 (no defense)", Cell(q1), s1, Cell(a1), "0"})

	// Phase 2 blocks low-agreement workers and, with a clean crowd,
	// drops back to cheap 3-way redundancy.
	e.Manager().EnableBlocklist(5, 0.75)
	blocked := e.Manager().BlockedWorkers(5, 0.75)
	setAssignments(3)
	q2, s2, a2 := runPhase(2)
	t.Rows = append(t.Rows, []string{"2 (blocklist on)", Cell(q2), s2, Cell(a2),
		fmt.Sprintf("%d", len(blocked))})
	return t
}

// waitFor blocks until cond holds; the engine's clock pump goroutine is
// advancing virtual time concurrently, so a short real-time poll is all
// that is needed.
func waitFor(e *core.Engine, cond func() bool) {
	for !cond() {
		time.Sleep(200 * time.Microsecond)
	}
}
