package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/load"
	"repro/internal/workload"
)

// TestLoadHarnessDeterministic asserts the crowd-scale load harness
// reports identical virtual-time metrics across reruns for every
// workload it supports.
func TestLoadHarnessDeterministic(t *testing.T) {
	for _, wl := range []load.Workload{load.WorkloadFilter, load.WorkloadJoin,
		load.WorkloadJoinPreFilter, load.WorkloadOrderBy} {
		t.Run(string(wl), func(t *testing.T) {
			cfg := load.Config{Workload: wl, Tuples: 200, Workers: 120, Seed: 11}
			a, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.HITs != b.HITs || a.Assignments != b.Assignments || a.Questions != b.Questions ||
				a.Spent != b.Spent || a.Outcomes != b.Outcomes || a.Passed != b.Passed ||
				a.Makespan != b.Makespan || a.P50 != b.P50 || a.P99 != b.P99 ||
				a.JoinPairs != b.JoinPairs || a.PassedKeysFNV != b.PassedKeysFNV {
				t.Fatalf("virtual-time metrics differ across reruns:\n%s\n---\n%s", a, b)
			}
		})
	}
}

// TestConcurrentQueriesRaceClean drives several queries through one
// engine at once — executor goroutines, the clock pump, the sharded
// marketplace and the task manager's striped state all running
// concurrently. Its value multiplies under `go test -race`, which CI
// runs; without -race it still asserts the results are correct.
func TestConcurrentQueriesRaceClean(t *testing.T) {
	photos := workload.Photos(30, 0.5, 0.5, 9)
	cfg := core.Config{
		Crowd: crowd.Config{Seed: 9, Workers: 150, MeanSkill: 0.97, SkillStd: 0.01,
			SpamFraction: 1e-12, AbandonRate: 1e-12, Shards: 4},
		Oracle: photos.Oracle,
	}
	e, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, tab := range photos.Tables {
		if err := e.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Define(`
TASK isCat(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", img
  Response: YesNo

TASK isOutdoor(Image img)
RETURNS Bool:
  TaskType: Filter
  Text: "Outdoors? %s", img
  Response: YesNo
`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT id FROM photos WHERE isCat(img)",
		"SELECT id FROM photos WHERE isOutdoor(img)",
		"SELECT id FROM photos WHERE isCat(img) AND isOutdoor(img)",
		"SELECT id, img FROM photos",
	}
	var wg sync.WaitGroup
	rows := make([]int, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			n, err := queryAndWait(e, q)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = len(n)
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if rows[3] != 30 {
		t.Errorf("full scan returned %d rows, want 30", rows[3])
	}
	for i, n := range rows[:3] {
		if n == 0 || n > 30 {
			t.Errorf("query %d returned %d rows", i, n)
		}
	}
}
