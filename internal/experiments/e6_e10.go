package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// E6Redundancy reproduces §1's "operator implementations must have
// redundancy built-in": assignments-per-HIT swept against majority-vote
// accuracy and cost, on a mediocre crowd where redundancy matters.
func E6Redundancy(nPhotos int, seed int64) Table {
	t := Table{
		ID:      "E6",
		Title:   "Redundancy sweep — assignments per HIT vs accuracy and cost",
		Columns: []string{"assignments", "questions", "spent", "accuracy"},
		Notes:   "crowd mean skill 0.8 with 8% spammers; majority vote per tuple",
	}
	for _, n := range []int{1, 3, 5, 7, 9} {
		ds := workload.Photos(nPhotos, 0.5, 0.5, seed)
		cfg := defaultCrowd(seed)
		cfg.MeanSkill = 0.8
		cfg.SpamFraction = 0.08
		e := mustEngine(core.Config{}, cfg, ds)
		defineAll(e)
		pol := taskmgr.DefaultPolicy()
		pol.Assignments = n
		e.Manager().SetPolicy("isCat", pol)
		rows, err := queryAndWait(e, `SELECT img FROM photos WHERE isCat(img)`)
		if err != nil {
			panic(err)
		}
		acc := filterAccuracy(ds, rows, "isCat")
		s := e.Manager().StatsFor("iscat")
		t.Rows = append(t.Rows, []string{
			Cell(n), Cell(s.QuestionsAsked), s.SpentCents.String(), Cell(acc),
		})
		e.Close()
	}
	return t
}

// filterAccuracy scores a filter query's keep/drop decisions against
// ground truth.
func filterAccuracy(ds workload.Dataset, rows []relation.Tuple, task string) float64 {
	kept := map[string]bool{}
	for _, row := range rows {
		kept[row.Values[0].Str()] = true
	}
	correct, total := 0, 0
	for _, row := range ds.Tables[0].Snapshot() {
		img := row.Get("img")
		want := ds.Oracle.Truth(task, []relation.Value{img}).Truthy()
		if kept[img.Str()] == want {
			correct++
		}
		total++
	}
	if total == 0 {
		return 1
	}
	return float64(correct) / float64(total)
}

// E7Adaptive reproduces §2's "the difficulty and selectivity of tasks
// can not be predicted a priori, requiring an adaptive approach": two
// chained human filters whose selectivities are unknown; the adaptive
// ordering converges to the cheap plan without being told.
func E7Adaptive(nPhotos int, seed int64) Table {
	t := Table{
		ID:      "E7",
		Title:   "Adaptive filter ordering under unknown selectivities",
		Columns: []string{"ordering", "isCatQs", "isOutdoorQs", "totalQs", "spent"},
		Notes:   "isCat keeps ~15% of photos, isOutdoor ~90%: running isCat first is far cheaper",
	}
	run := func(name string, cfg core.Config) {
		ds := workload.Photos(nPhotos, 0.15, 0.9, seed)
		e := mustEngine(cfg, defaultCrowd(seed), ds)
		defineAll(e)
		if _, err := queryAndWait(e, `SELECT img FROM photos WHERE isOutdoor(img) AND isCat(img)`); err != nil {
			panic(err)
		}
		cat := e.Manager().StatsFor("iscat")
		out := e.Manager().StatsFor("isoutdoor")
		t.Rows = append(t.Rows, []string{
			name,
			Cell(cat.QuestionsAsked),
			Cell(out.QuestionsAsked),
			Cell(cat.QuestionsAsked + out.QuestionsAsked),
			(cat.SpentCents + out.SpentCents).String(),
		})
		e.Close()
	}
	// Static worst: query order (isOutdoor first, keeps 90%).
	run("static worst (isOutdoor first)", core.Config{
		Exec: exec.Config{FilterOrder: func(cs []qlang.Expr) []int { return identity(len(cs)) }}})
	// Static best: oracle knowledge (isCat first).
	run("static best (isCat first)", core.Config{
		Exec: exec.Config{FilterOrder: func(cs []qlang.Expr) []int { return reversed(len(cs)) }}})
	// Adaptive: optimizer reorders from live selectivity estimates; a
	// small admission window lets early results steer later tuples.
	run("adaptive (optimizer)", core.Config{AdaptiveFilters: true,
		Exec: exec.Config{FilterWindow: 6}})
	return t
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// E8Batching reproduces §2's "the manager can batch several tasks into a
// single HIT": tuple-batch size swept against HIT count, cost, accuracy
// and latency, plus one operator-grouping row.
func E8Batching(nPhotos int, seed int64) Table {
	t := Table{
		ID:      "E8",
		Title:   "Batching sweep — tuples per HIT vs cost, accuracy, latency",
		Columns: []string{"variant", "HITs", "questions", "spent", "accuracy", "latency(min)"},
		Notes:   "accuracy decays with batch size (crowd penalty 0.012/question); grouping merges two filters into one HIT",
	}
	for _, b := range []int{1, 2, 5, 10} {
		ds := workload.Photos(nPhotos, 0.5, 0.5, seed)
		e := mustEngine(core.Config{}, defaultCrowd(seed), ds)
		defineAll(e)
		pol := taskmgr.DefaultPolicy()
		pol.BatchSize = b
		e.Manager().SetPolicy("isCat", pol)
		start := e.Clock().Now()
		rows, err := queryAndWait(e, `SELECT img FROM photos WHERE isCat(img)`)
		if err != nil {
			panic(err)
		}
		latency := (e.Clock().Now() - start).Minutes()
		s := e.Manager().StatsFor("iscat")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("batch %d", b),
			Cell(s.HITsPosted), Cell(s.QuestionsAsked), s.SpentCents.String(),
			Cell(filterAccuracy(ds, rows, "isCat")),
			fmt.Sprintf("%.1f", latency),
		})
		e.Close()
	}
	// Operator grouping: isCat AND isOutdoor share each tuple's HIT.
	ds := workload.Photos(nPhotos, 0.5, 0.5, seed)
	e := mustEngine(core.Config{Exec: exec.Config{GroupFilters: true}}, defaultCrowd(seed), ds)
	defineAll(e)
	start := e.Clock().Now()
	if _, err := queryAndWait(e, `SELECT img FROM photos WHERE isCat(img) AND isOutdoor(img)`); err != nil {
		panic(err)
	}
	latency := (e.Clock().Now() - start).Minutes()
	cat := e.Manager().StatsFor("iscat")
	out := e.Manager().StatsFor("isoutdoor")
	t.Rows = append(t.Rows, []string{
		"grouped 2 filters",
		Cell(cat.HITsPosted + out.HITsPosted),
		Cell(cat.QuestionsAsked + out.QuestionsAsked),
		(cat.SpentCents + out.SpentCents).String(),
		"-",
		fmt.Sprintf("%.1f", latency),
	})
	e.Close()
	return t
}

// E9Sort reproduces the rank operator's two implementations from the
// companion paper: rating-based sort (O(n) HITs) versus comparison-based
// sort (O(n²) pair questions), scored by Kendall tau against the latent
// order.
func E9Sort(nItems int, seed int64) Table {
	t := Table{
		ID:      "E9",
		Title:   "Human sort — rating-based vs comparison-based",
		Columns: []string{"algorithm", "questions", "spent", "kendallTau"},
		Notes:   fmt.Sprintf("%d items with latent 1..9 quality; tau=1 is a perfect order", nItems),
	}

	// Rating-based: ORDER BY squareScore(img).
	ds := workload.RankItems(nItems, 9, "squareScore", seed)
	e := mustEngine(core.Config{}, defaultCrowd(seed), ds)
	defineAll(e)
	rows, err := queryAndWait(e, `SELECT img, truth FROM items ORDER BY squareScore(img)`)
	if err != nil {
		panic(err)
	}
	tau := tauAgainstTruth(rows)
	s := e.Manager().StatsFor("squarescore")
	t.Rows = append(t.Rows, []string{"rating (1 HIT/item)",
		Cell(s.QuestionsAsked), s.SpentCents.String(), Cell(tau)})
	e.Close()

	// Comparison-based: all-pairs "better" questions, Copeland count.
	ds = workload.RankItems(nItems, 9, "squareScore", seed)
	cmpOracle := workload.CompareOracle(ds.Tables[0], "better")
	e = mustEngine(core.Config{Oracle: cmpOracle}, defaultCrowd(seed), ds)
	defineAll(e)
	items := ds.Tables[0].Snapshot()
	betterDef := taskOf(e, "better")
	wins := make([]int, len(items))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range items {
		for j := range items {
			if i == j {
				continue
			}
			i, j := i, j
			wg.Add(1)
			e.Manager().Submit(taskmgr.Request{
				Def:  betterDef,
				Args: []relation.Value{items[i].Get("img"), items[j].Get("img")},
				Done: func(out taskmgr.Outcome) {
					defer wg.Done()
					if out.Err == nil && out.Value.Truthy() {
						mu.Lock()
						wins[i]++
						mu.Unlock()
					}
				},
			})
		}
	}
	e.Manager().Flush("better")
	wg.Wait()
	// Rank by wins ascending = quality ascending.
	measured := make([]float64, len(items))
	truthScores := make([]float64, len(items))
	for i, row := range items {
		measured[i] = float64(wins[i])
		truthScores[i] = row.Get("truth").Float()
	}
	tau2, err := stats.KendallTau(stats.RanksFromScores(measured), stats.RanksFromScores(truthScores))
	if err != nil {
		panic(err)
	}
	s = e.Manager().StatsFor("better")
	t.Rows = append(t.Rows, []string{"comparison (n² pairs)",
		Cell(s.QuestionsAsked), s.SpentCents.String(), Cell(tau2)})
	e.Close()
	return t
}

// tauAgainstTruth compares a sorted result's order against the latent
// truth column it carries.
func tauAgainstTruth(rows []relation.Tuple) float64 {
	measuredRank := make([]int, len(rows))
	truth := make([]float64, len(rows))
	for i, row := range rows {
		measuredRank[i] = i
		truth[i] = row.Get("truth").Float()
	}
	tau, err := stats.KendallTau(measuredRank, stats.RanksFromScores(truth))
	if err != nil {
		panic(err)
	}
	return tau
}

func taskOf(e *core.Engine, name string) *qlang.TaskDef {
	for _, d := range e.Tasks() {
		if d.Name == name {
			return d
		}
	}
	panic("unknown task " + name)
}

// E10Async reproduces §2's motivation for asynchronous execution: with
// minutes-scale HIT latency, Qurk's queue-connected operators overlap
// work across the plan, while a blocking iterator pays latencies in
// sequence. Both run the same two-filter query.
func E10Async(nPhotos int, seed int64) Table {
	t := Table{
		ID:      "E10",
		Title:   "Asynchronous queues vs blocking iterator (makespan)",
		Columns: []string{"executor", "questions", "makespan(min)"},
		Notes:   "same plan, same crowd; async overlaps the two filters' HIT latencies across tuples",
	}

	// Async: the real executor.
	ds := workload.Photos(nPhotos, 0.6, 0.6, seed)
	e := mustEngine(core.Config{}, defaultCrowd(seed), ds)
	defineAll(e)
	start := e.Clock().Now()
	if _, err := queryAndWait(e, `SELECT img FROM photos WHERE isCat(img) AND isOutdoor(img)`); err != nil {
		panic(err)
	}
	asyncMin := (e.Clock().Now() - start).Minutes()
	q1 := e.Manager().StatsFor("iscat").QuestionsAsked + e.Manager().StatsFor("isoutdoor").QuestionsAsked
	t.Rows = append(t.Rows, []string{"async queues (Qurk)", Cell(q1), fmt.Sprintf("%.1f", asyncMin)})
	e.Close()

	// Blocking iterator baseline: one tuple at a time, one predicate at
	// a time, waiting for each HIT before continuing.
	ds = workload.Photos(nPhotos, 0.6, 0.6, seed)
	e = mustEngine(core.Config{}, defaultCrowd(seed), ds)
	defineAll(e)
	catDef := taskOf(e, "isCat")
	outDef := taskOf(e, "isOutdoor")
	start = e.Clock().Now()
	blockingSubmit := func(def *qlang.TaskDef, img relation.Value) bool {
		res := make(chan bool, 1)
		e.Manager().Submit(taskmgr.Request{
			Def:  def,
			Args: []relation.Value{img},
			Done: func(out taskmgr.Outcome) { res <- out.Err == nil && out.Value.Truthy() },
		})
		e.Manager().Flush(def.Name)
		return <-res
	}
	kept := 0
	for _, row := range ds.Tables[0].Snapshot() {
		img := row.Get("img")
		if !blockingSubmit(catDef, img) {
			continue
		}
		if blockingSubmit(outDef, img) {
			kept++
		}
	}
	blockingMin := (e.Clock().Now() - start).Minutes()
	q2 := e.Manager().StatsFor("iscat").QuestionsAsked + e.Manager().StatsFor("isoutdoor").QuestionsAsked
	t.Rows = append(t.Rows, []string{"blocking iterator", Cell(q2), fmt.Sprintf("%.1f", blockingMin)})
	e.Close()
	return t
}

// All runs every experiment at demo-scale parameters, in order.
func All(seed int64) []Table {
	return []Table{
		E1Pipeline(seed),
		E2Cache(8, seed),
		E3JoinInterfaces(8, 16, seed),
		E4TaskModel(5, 30, seed),
		E5PreFilter(6, 14, seed),
		E6Redundancy(40, seed),
		E7Adaptive(40, seed),
		E8Batching(40, seed),
		E9Sort(12, seed),
		E10Async(20, seed),
		E11SpamDefense(40, seed),
	}
}
