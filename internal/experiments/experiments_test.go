package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cellInt parses an integer table cell.
func cellInt(t *testing.T, tab Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(tab.Rows[row][col], 10, 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

// cellFloat parses a float table cell.
func cellFloat(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

// cellCents parses a "$x.yz" cell into cents.
func cellCents(t *testing.T, tab Table, row, col int) int64 {
	t.Helper()
	s := strings.TrimPrefix(tab.Rows[row][col], "$")
	parts := strings.SplitN(s, ".", 2)
	d, err1 := strconv.ParseInt(parts[0], 10, 64)
	c, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s bad cents cell %q", tab.ID, tab.Rows[row][col])
	}
	return d*100 + c
}

func TestE1PipelineTouchesEveryComponent(t *testing.T) {
	tab := E1Pipeline(1)
	if len(tab.Rows) != 8 {
		t.Fatalf("components = %d", len(tab.Rows))
	}
	text := tab.String()
	for _, comp := range []string{"Query Optimizer", "Query Executor", "Task Manager",
		"HIT Compiler", "MTurk", "Statistics Manager", "Task Cache", "Storage Engine"} {
		if !strings.Contains(text, comp) {
			t.Errorf("E1 missing %q", comp)
		}
	}
}

func TestE2CacheMakesRerunsFree(t *testing.T) {
	tab := E2Cache(6, 2)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	run1HITs := cellInt(t, tab, 0, 1)
	if run1HITs == 0 {
		t.Fatal("first run posted no HITs")
	}
	for run := 1; run < 3; run++ {
		if hits := cellInt(t, tab, run, 1); hits != 0 {
			t.Errorf("run %d posted %d HITs; cache should serve it", run+1, hits)
		}
		if spent := cellCents(t, tab, run, 4); spent != 0 {
			t.Errorf("run %d spent %d cents", run+1, spent)
		}
		if hits := cellInt(t, tab, run, 3); hits == 0 {
			t.Errorf("run %d recorded no cache hits", run+1)
		}
	}
}

func TestE3TwoColumnBeatsPairwiseOnCost(t *testing.T) {
	tab := E3JoinInterfaces(6, 10, 3)
	if len(tab.Rows) != 5 {
		t.Fatalf("variants = %d", len(tab.Rows))
	}
	pairwiseHITs := cellInt(t, tab, 0, 1)
	col5HITs := cellInt(t, tab, 3, 1)
	if col5HITs >= pairwiseHITs {
		t.Errorf("5x5 grid (%d HITs) should post far fewer than pairwise (%d)", col5HITs, pairwiseHITs)
	}
	pairwiseSpent := cellCents(t, tab, 0, 3)
	col5Spent := cellCents(t, tab, 3, 3)
	if col5Spent >= pairwiseSpent {
		t.Errorf("5x5 grid (%d c) should cost less than pairwise (%d c)", col5Spent, pairwiseSpent)
	}
	// Small interfaces retain usable recall; very large grids are
	// allowed to degrade — that degradation is the experiment's point.
	for i := 0; i < 4; i++ {
		if recall := cellFloat(t, tab, i, 6); recall < 0.5 {
			t.Errorf("variant %q recall = %.2f", tab.Rows[i][0], recall)
		}
	}
	recall3 := cellFloat(t, tab, 2, 6)
	recall8 := cellFloat(t, tab, 4, 6)
	if recall8 > recall3+0.05 {
		t.Errorf("8x8 recall (%.2f) should not beat 3x3 (%.2f)", recall8, recall3)
	}
}

func TestE4ModelTakesOverAndStaysAccurate(t *testing.T) {
	tab := E4TaskModel(4, 30, 4)
	if len(tab.Rows) != 4 {
		t.Fatalf("batches = %d", len(tab.Rows))
	}
	if m := cellInt(t, tab, 0, 2); m != 0 {
		t.Errorf("batch 1 already automated %d answers", m)
	}
	lastModel := cellInt(t, tab, len(tab.Rows)-1, 2)
	if lastModel == 0 {
		t.Error("model never substituted in the final batch")
	}
	firstHuman := cellInt(t, tab, 0, 1)
	lastHuman := cellInt(t, tab, len(tab.Rows)-1, 1)
	if lastHuman >= firstHuman {
		t.Errorf("human questions should fall: first=%d last=%d", firstHuman, lastHuman)
	}
	for i := range tab.Rows {
		if acc := cellFloat(t, tab, i, 4); acc < 0.7 {
			t.Errorf("batch %d accuracy %.2f too low", i+1, acc)
		}
	}
}

func TestE5PreFilterShrinksJoin(t *testing.T) {
	tab := E5PreFilter(5, 12, 5)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The cross product shrinks under both join interfaces...
	if filtered, plain := cellInt(t, tab, 1, 2), cellInt(t, tab, 0, 2); filtered >= plain {
		t.Errorf("grid: pre-filter did not shrink join questions: %d vs %d", filtered, plain)
	}
	if filtered, plain := cellInt(t, tab, 3, 2), cellInt(t, tab, 2, 2); filtered >= plain {
		t.Errorf("pairwise: pre-filter did not shrink join questions: %d vs %d", filtered, plain)
	}
	// ...and pays for itself in dollars when join questions are
	// expensive (pairwise interface).
	if with, without := cellCents(t, tab, 3, 3), cellCents(t, tab, 2, 3); with >= without {
		t.Errorf("pairwise pre-filter should save money: %d vs %d cents", with, without)
	}
	if recall := cellFloat(t, tab, 1, 4); recall < 0.5 {
		t.Errorf("filtered plan recall = %.2f", recall)
	}
}

func TestE6RedundancyImprovesAccuracy(t *testing.T) {
	tab := E6Redundancy(30, 6)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	acc1 := cellFloat(t, tab, 0, 3)
	acc5 := cellFloat(t, tab, 2, 3)
	if acc5 <= acc1 {
		t.Errorf("5 assignments (%.2f) should beat 1 (%.2f)", acc5, acc1)
	}
	// Cost grows with redundancy.
	if cellCents(t, tab, 4, 2) <= cellCents(t, tab, 0, 2) {
		t.Error("cost should grow with assignments")
	}
}

func TestE7AdaptiveBeatsWorstOrder(t *testing.T) {
	tab := E7Adaptive(30, 7)
	worst := cellInt(t, tab, 0, 3)
	best := cellInt(t, tab, 1, 3)
	adaptive := cellInt(t, tab, 2, 3)
	if best >= worst {
		t.Fatalf("experiment setup broken: best order (%d) not cheaper than worst (%d)", best, worst)
	}
	if adaptive >= worst {
		t.Errorf("adaptive (%d questions) should beat the worst static order (%d)", adaptive, worst)
	}
	// Adaptive should land close to the best static order.
	slack := (worst - best) / 2
	if adaptive > best+slack {
		t.Errorf("adaptive (%d) should approach best (%d, worst %d)", adaptive, best, worst)
	}
}

func TestE8BatchingCutsCost(t *testing.T) {
	tab := E8Batching(30, 8)
	if len(tab.Rows) != 5 { // 4 batch sizes + grouped row
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	spent1 := cellCents(t, tab, 0, 3)
	spent10 := cellCents(t, tab, 3, 3)
	if spent10 >= spent1 {
		t.Errorf("batch 10 (%d c) should cost less than batch 1 (%d c)", spent10, spent1)
	}
	hits1 := cellInt(t, tab, 0, 1)
	hits10 := cellInt(t, tab, 3, 1)
	if hits10*5 > hits1 {
		t.Errorf("batch 10 HITs (%d) should be ~1/10 of batch 1 (%d)", hits10, hits1)
	}
	// Accuracy should not collapse.
	if acc := cellFloat(t, tab, 3, 4); acc < 0.6 {
		t.Errorf("batch 10 accuracy %.2f", acc)
	}
}

func TestE9RatingSortCheaperComparisonCompetitive(t *testing.T) {
	tab := E9Sort(10, 9)
	ratingQs := cellInt(t, tab, 0, 1)
	cmpQs := cellInt(t, tab, 1, 1)
	if ratingQs >= cmpQs {
		t.Errorf("rating sort (%d questions) should be cheaper than all-pairs (%d)", ratingQs, cmpQs)
	}
	tauRating := cellFloat(t, tab, 0, 3)
	tauCmp := cellFloat(t, tab, 1, 3)
	if tauRating < 0.5 || tauCmp < 0.5 {
		t.Errorf("taus too low: rating=%.2f cmp=%.2f", tauRating, tauCmp)
	}
}

func TestE10AsyncBeatsBlocking(t *testing.T) {
	tab := E10Async(12, 10)
	asyncMin := cellFloat(t, tab, 0, 2)
	blockingMin := cellFloat(t, tab, 1, 2)
	if asyncMin >= blockingMin {
		t.Errorf("async (%.1f min) should finish before blocking iterator (%.1f min)", asyncMin, blockingMin)
	}
	if blockingMin < 2*asyncMin {
		t.Errorf("expected a large async win: async=%.1f blocking=%.1f", asyncMin, blockingMin)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Columns: []string{"a", "longcol"},
		Rows:  [][]string{{"1", "2"}, {"333", "4"}},
		Notes: "a note",
	}
	out := tab.String()
	for _, want := range []string{"EX — demo", "a    longcol", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE11BlocklistRestoresAccuracy(t *testing.T) {
	tab := E11SpamDefense(40, 12)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	acc1 := cellFloat(t, tab, 0, 3)
	acc2 := cellFloat(t, tab, 1, 3)
	blocked := cellInt(t, tab, 1, 4)
	if blocked == 0 {
		t.Fatal("no spammers blocked")
	}
	if acc2 < acc1 {
		t.Errorf("blocklist should not hurt accuracy: %.2f -> %.2f", acc1, acc2)
	}
	if acc2 < 0.9 {
		t.Errorf("phase 2 accuracy %.2f still spam-damaged", acc2)
	}
}
