package dashboard

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/mturk"
	"repro/internal/obs"
)

// obsSource is a Source that also implements Observable, with the same
// nil-when-off contract core.Engine has.
type obsSource struct {
	liveSource
	tracer *obs.Tracer
	root   *obs.Span
}

func (s *obsSource) Metrics() *obs.Registry { return s.tracer.Registry() }
func (s *obsSource) QueryTrace(id int) *obs.Span {
	if s.tracer == nil || id != 7 {
		return nil
	}
	return s.root
}

func newObsSource(t *testing.T, traced bool) *obsSource {
	live, _ := newLiveSource(t)
	src := &obsSource{liveSource: live}
	if traced {
		var now mturk.VirtualTime
		src.tracer = obs.New(func() mturk.VirtualTime { return now }, obs.NewRegistry())
		src.tracer.Registry().Counter(obs.MetricQueries).Add(3)
		src.root = src.tracer.StartRoot(obs.KindQuery, "SELECT 1")
		now = mturk.VirtualTime(60_000)
		op := src.root.Child(obs.KindOperator, "Filter(isCat)")
		op.AddHITs(2)
		op.End()
		src.root.End()
	}
	return src
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(newObsSource(t, true)))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "qurk_queries_total 3") {
		t.Fatalf("/metrics missing the queries counter:\n%s", body)
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(newObsSource(t, true)))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace/7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/trace/7 status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/trace/7 content-type = %q", ct)
	}
	var tree struct {
		Kind     string `json:"kind"`
		Name     string `json:"name"`
		Children []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
			HITs int64  `json:"hits"`
		} `json:"children"`
	}
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatalf("/trace/7 is not JSON: %v\n%s", err, body)
	}
	if tree.Kind != string(obs.KindQuery) || tree.Name != "SELECT 1" {
		t.Fatalf("root = %+v", tree)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "Filter(isCat)" || tree.Children[0].HITs != 2 {
		t.Fatalf("children = %+v", tree.Children)
	}

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/trace/999"); code != 404 {
		t.Errorf("/trace/999 = %d", code)
	}
	if code := get("/trace/xyz"); code != 400 {
		t.Errorf("/trace/xyz = %d", code)
	}
}

// TestHTTPObsDisabled pins the tracing-off posture: a Source that
// implements Observable but runs untraced (nil registry, nil spans)
// exposes nothing — both endpoints answer 404, like core.Engine
// without Config.Trace.
func TestHTTPObsDisabled(t *testing.T) {
	srv := httptest.NewServer(NewHandler(newObsSource(t, false)))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/trace/7"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s with tracing off = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHTTPObsNotImplemented pins that a plain Source (no Observable)
// grows no endpoints at all.
func TestHTTPObsNotImplemented(t *testing.T) {
	src, _ := newLiveSource(t)
	srv := httptest.NewServer(NewHandler(src))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/metrics on plain Source = %d, want 404", resp.StatusCode)
	}
}
