package dashboard

import (
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/obs"
)

// Source supplies live data to the HTTP dashboard.
type Source interface {
	// Snapshot returns the current system view.
	Snapshot() Snapshot
	// Marketplace exposes open HITs and accepts audience submissions.
	Marketplace() *mturk.Marketplace
}

// Observable is the optional Source extension behind the observability
// endpoints (core.Engine implements it). Metrics returns nil when the
// engine runs without Config.Trace; the endpoints then answer 404.
type Observable interface {
	// Metrics is the engine's metrics registry, nil when tracing is off.
	Metrics() *obs.Registry
	// QueryTrace is the root span of the query with that dashboard ID,
	// nil when tracing is off or the ID is unknown.
	QueryTrace(id int) *obs.Span
}

// NewHandler serves the demo's two interfaces:
//
//	GET  /            — the Query Status Dashboard (Figure 2)
//	GET  /tasks       — the Task Completion Interface: open HITs
//	GET  /hit?id=X    — one compiled HIT form (Figure 3 for joins)
//	POST /submit      — submit a HIT form as an audience worker
//
// and, when src also implements Observable (and the engine traces):
//
//	GET  /metrics     — the metrics registry in Prometheus text format
//	GET  /trace/{id}  — one query's span tree as JSON
func NewHandler(src Source) http.Handler {
	mux := http.NewServeMux()
	if o, ok := src.(Observable); ok {
		registerObs(mux, o)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>Qurk Dashboard</title>"+
			"<meta http-equiv=\"refresh\" content=\"2\"></head><body>")
		fmt.Fprintf(w, "<pre>%s</pre>", html.EscapeString(Render(src.Snapshot())))
		fmt.Fprintf(w, `<p><a href="/tasks">Task Completion Interface →</a></p></body></html>`)
	})

	mux.HandleFunc("/tasks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		open := src.Marketplace().OpenHITs()
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>Qurk Tasks</title></head><body>")
		fmt.Fprintf(w, "<h1>Open HITs (%d)</h1><p>Help the running queries by answering a task below.</p><ul>", len(open))
		for _, st := range open {
			fmt.Fprintf(w, `<li><a href="/hit?id=%s">%s</a> — %s, %d question(s), %d of %d assignments done</li>`,
				html.EscapeString(st.HIT.ID), html.EscapeString(st.HIT.ID),
				html.EscapeString(st.HIT.Task), st.HIT.QuestionCount(), st.Completed, st.HIT.Assignments)
		}
		fmt.Fprintf(w, `</ul><p><a href="/">← Dashboard</a></p></body></html>`)
	})

	mux.HandleFunc("/hit", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		st, ok := src.Marketplace().Status(id)
		if !ok {
			http.Error(w, "unknown HIT", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, hit.Compile(st.HIT))
	})

	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id := r.PostForm.Get("hit")
		st, ok := src.Marketplace().Status(id)
		if !ok {
			http.Error(w, "unknown HIT", http.StatusNotFound)
			return
		}
		worker := r.PostForm.Get("worker")
		if worker == "" {
			worker = "audience"
		}
		ans, err := hit.ParseForm(st.HIT, r.PostForm, worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := src.Marketplace().SubmitExternal(id, ans); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<!DOCTYPE html><html><body><p>Thanks! Your answers were recorded.</p>`+
			`<p><a href="/tasks">Answer another task →</a></p></body></html>`)
	})
	return withoutDirectoryListing(mux)
}

// registerObs wires the observability endpoints. Both answer 404 when
// the engine runs without Config.Trace, so a tracing-off deployment
// exposes nothing extra.
func registerObs(mux *http.ServeMux, o Observable) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := o.Metrics()
		if reg == nil {
			http.Error(w, "tracing disabled (run the engine with Config.Trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/trace/"))
		if err != nil {
			http.Error(w, "want /trace/{query-id}", http.StatusBadRequest)
			return
		}
		root := o.QueryTrace(id)
		if root == nil {
			http.Error(w, "no trace for that query (tracing off or unknown id)", http.StatusNotFound)
			return
		}
		buf, err := obs.MarshalTree(root)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf)
	})
}

func withoutDirectoryListing(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "..") {
			http.Error(w, "bad path", http.StatusBadRequest)
			return
		}
		h.ServeHTTP(w, r)
	})
}
