package dashboard

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"repro/internal/hit"
	"repro/internal/mturk"
)

// Source supplies live data to the HTTP dashboard.
type Source interface {
	// Snapshot returns the current system view.
	Snapshot() Snapshot
	// Marketplace exposes open HITs and accepts audience submissions.
	Marketplace() *mturk.Marketplace
}

// NewHandler serves the demo's two interfaces:
//
//	GET  /            — the Query Status Dashboard (Figure 2)
//	GET  /tasks       — the Task Completion Interface: open HITs
//	GET  /hit?id=X    — one compiled HIT form (Figure 3 for joins)
//	POST /submit      — submit a HIT form as an audience worker
func NewHandler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>Qurk Dashboard</title>"+
			"<meta http-equiv=\"refresh\" content=\"2\"></head><body>")
		fmt.Fprintf(w, "<pre>%s</pre>", html.EscapeString(Render(src.Snapshot())))
		fmt.Fprintf(w, `<p><a href="/tasks">Task Completion Interface →</a></p></body></html>`)
	})

	mux.HandleFunc("/tasks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		open := src.Marketplace().OpenHITs()
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>Qurk Tasks</title></head><body>")
		fmt.Fprintf(w, "<h1>Open HITs (%d)</h1><p>Help the running queries by answering a task below.</p><ul>", len(open))
		for _, st := range open {
			fmt.Fprintf(w, `<li><a href="/hit?id=%s">%s</a> — %s, %d question(s), %d of %d assignments done</li>`,
				html.EscapeString(st.HIT.ID), html.EscapeString(st.HIT.ID),
				html.EscapeString(st.HIT.Task), st.HIT.QuestionCount(), st.Completed, st.HIT.Assignments)
		}
		fmt.Fprintf(w, `</ul><p><a href="/">← Dashboard</a></p></body></html>`)
	})

	mux.HandleFunc("/hit", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		st, ok := src.Marketplace().Status(id)
		if !ok {
			http.Error(w, "unknown HIT", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, hit.Compile(st.HIT))
	})

	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id := r.PostForm.Get("hit")
		st, ok := src.Marketplace().Status(id)
		if !ok {
			http.Error(w, "unknown HIT", http.StatusNotFound)
			return
		}
		worker := r.PostForm.Get("worker")
		if worker == "" {
			worker = "audience"
		}
		ans, err := hit.ParseForm(st.HIT, r.PostForm, worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := src.Marketplace().SubmitExternal(id, ans); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<!DOCTYPE html><html><body><p>Thanks! Your answers were recorded.</p>`+
			`<p><a href="/tasks">Answer another task →</a></p></body></html>`)
	})
	return withoutDirectoryListing(mux)
}

func withoutDirectoryListing(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "..") {
			http.Error(w, "bad path", http.StatusBadRequest)
			return
		}
		h.ServeHTTP(w, r)
	})
}
