package dashboard

import (
	"io"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/exec"
	"repro/internal/hit"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		NowMinutes: 12.5,
		Budget:     BudgetInfo{Limit: 1000, Spent: 250, Remaining: 750},
		Market: mturk.Stats{HITsPosted: 10, AssignmentsCompleted: 30,
			QuestionsAnswered: 50, ExternalSubmissions: 2},
		Tasks: []taskmgr.TaskStats{{
			Task: "iscat", QuestionsAsked: 50, HITsPosted: 10, CacheHits: 5,
			ModelAnswers: 3, SpentCents: 250, Selectivity: 0.4, SelTrials: 50,
			MeanLatencyMin: 2.5, MeanAgreement: 0.9,
		}},
		Cache:  cache.Stats{Entries: 55, Hits: 5, Misses: 50, SavedQuestions: 15},
		Models: []model.Stats{{Task: "iscat", Examples: 50, Automated: 3, Declined: 47}},
		Queries: []QueryInfo{{
			ID: 1, SQL: "SELECT img FROM photos WHERE isCat(img)",
			PlanExplain: "Filter(isCat(img))\n  Scan(photos)\n",
			Ops: []exec.OpStats{
				{Label: "Filter(isCat(img))", In: 100, Out: 40, Done: true},
				{Label: "Scan(photos)", In: 100, Out: 100, Done: true},
			},
			Done: true, Results: 40, ElapsedMin: 12.5,
		}},
		Savings: Savings{CacheSavedCents: 15, ModelSavedCents: 9, CacheHits: 5, ModelAnswers: 3,
			JoinPairsAvoided: 3000, JoinSavedCents: 360},
		EstimatedRemainingCents: 7,
	}
}

func TestRenderContainsAllPanels(t *testing.T) {
	out := Render(sampleSnapshot())
	for _, want := range []string{
		"t=12.5 virtual min",
		"spent $2.50 of $10.00 (remaining $7.50)",
		"10 HITs posted, 30 assignments done, 50 questions answered, 2 from the audience",
		// One lookup hit serves the whole stored answer list, so the
		// caching-benefit panel reports answers served, not lookups.
		"cache saved ~$0.15 (5 hits, 15 answers served)",
		"classifiers saved ~$0.09 (3 answers)",
		"Adaptive joins: avoided 3000 cross-product pairs (~$3.60 of join HITs)",
		"iscat",
		"Query 1 [done, 12.5 min, 40 results, 0 errors]",
		"Scan(photos)",
		"in=100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestRenderUnlimitedBudget(t *testing.T) {
	s := sampleSnapshot()
	s.Budget.Limit = 0
	out := Render(s)
	if !strings.Contains(out, "(no limit)") {
		t.Error("unlimited budget not shown")
	}
}

func TestComputeSavings(t *testing.T) {
	tasks := []taskmgr.TaskStats{
		{Task: "a", CacheHits: 10, ModelAnswers: 4},
		{Task: "b", CacheHits: 2, ModelAnswers: 0},
	}
	s := ComputeSavings(tasks, func(task string) taskmgr.Policy {
		return taskmgr.Policy{PriceCents: 2, Assignments: 3, BatchSize: 2}
	})
	// per question = 2*3/2 = 3 cents
	if s.CacheSavedCents != 36 || s.ModelSavedCents != 12 {
		t.Fatalf("savings = %+v", s)
	}
	if s.CacheHits != 12 || s.ModelAnswers != 4 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestSortTasksBySpend(t *testing.T) {
	tasks := []taskmgr.TaskStats{
		{Task: "cheap", SpentCents: 1},
		{Task: "dear", SpentCents: 100},
	}
	SortTasksBySpend(tasks)
	if tasks[0].Task != "dear" {
		t.Fatalf("order = %v", tasks)
	}
}

// liveSource is a minimal Source over a real marketplace for HTTP tests.
type liveSource struct {
	market *mturk.Marketplace
}

func (s liveSource) Snapshot() Snapshot              { return sampleSnapshot() }
func (s liveSource) Marketplace() *mturk.Marketplace { return s.market }

func newLiveSource(t *testing.T) (liveSource, *hit.HIT) {
	t.Helper()
	clock := mturk.NewClock()
	// A pool that never supplies workers keeps HITs open for the
	// audience.
	pool := crowd.NewPool(crowd.Config{Workers: 1, Seed: 1,
		Overhead: 1 << 40}, crowd.OracleFunc(
		func(task string, args []relation.Value) relation.Value { return relation.NewBool(true) }))
	market := mturk.NewMarketplace(clock, pool)
	h := &hit.HIT{
		ID: market.NewHITID(), Task: "isCat", Type: qlang.TaskFilter,
		Title: "Cat?", Question: "Is this a cat?",
		Response:    qlang.Response{Kind: qlang.ResponseYesNo},
		Items:       []hit.Item{{Key: "k1", Args: []relation.Value{relation.NewImage("x.png")}}},
		RewardCents: 1, Assignments: 1,
	}
	if err := market.Post(h, nil); err != nil {
		t.Fatal(err)
	}
	return liveSource{market: market}, h
}

func TestHTTPTaskFlow(t *testing.T) {
	src, h := newLiveSource(t)
	srv := httptest.NewServer(NewHandler(src))
	defer srv.Close()

	// The task list shows the open HIT.
	resp, err := srv.Client().Get(srv.URL + "/tasks")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), h.ID) {
		t.Fatalf("/tasks missing %s:\n%s", h.ID, body)
	}

	// The HIT form renders.
	resp, err = srv.Client().Get(srv.URL + "/hit?id=" + h.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Is this a cat?") {
		t.Fatalf("/hit missing question:\n%s", body)
	}

	// Submitting the form completes the assignment.
	form := url.Values{}
	form.Set("hit", h.ID)
	form.Set("yn_k1", "yes")
	resp, err = srv.Client().PostForm(srv.URL+"/submit", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	st, _ := src.market.Status(h.ID)
	if st.Completed != 1 {
		t.Fatalf("assignment not recorded: %+v", st)
	}
	stats := src.market.Stats()
	if stats.ExternalSubmissions != 1 {
		t.Fatalf("external submissions = %d", stats.ExternalSubmissions)
	}

	// Second submission is rejected: no open assignments remain.
	resp, err = srv.Client().PostForm(srv.URL+"/submit", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("second submit should be rejected")
	}
}

func TestHTTPErrors(t *testing.T) {
	src, _ := newLiveSource(t)
	srv := httptest.NewServer(NewHandler(src))
	defer srv.Close()

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/hit?id=nope"); code != 404 {
		t.Errorf("/hit unknown = %d", code)
	}
	if code := get("/submit"); code != 405 {
		t.Errorf("GET /submit = %d", code)
	}
	if code := get("/nope"); code != 404 {
		t.Errorf("/nope = %d", code)
	}
	form := url.Values{}
	form.Set("hit", "nope")
	resp, err := srv.Client().PostForm(srv.URL+"/submit", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("submit unknown hit = %d", resp.StatusCode)
	}
	// Malformed form input (missing yes/no answer) is a 400.
	src2, h := newLiveSource(t)
	srv2 := httptest.NewServer(NewHandler(src2))
	defer srv2.Close()
	form2 := url.Values{}
	form2.Set("hit", h.ID)
	resp, err = srv2.Client().PostForm(srv2.URL+"/submit", form2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad form = %d", resp.StatusCode)
	}
}
