// Package dashboard implements the Query Status Dashboard of Figure 2:
// a window into the system internals showing budget, total-cost
// estimates, per-operator progress, and the benefit gained from the two
// optimizations the demo highlights — caching of previously executed
// UDFs and classifiers in place of humans — plus the Task Completion
// Interface that lets a live audience answer HITs.
package dashboard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/taskmgr"
)

// QueryInfo describes one (running, finished or canceled) query.
type QueryInfo struct {
	ID          int
	SQL         string
	PlanExplain string
	Ops         []exec.OpStats
	Done        bool
	// Canceled marks a query terminated by context / deadline / Close;
	// SunkCents is the money it consumed before its open HITs were
	// expired (posted cost minus expiry refunds).
	Canceled   bool
	SunkCents  budget.Cents
	Results    int
	ElapsedMin float64 // virtual minutes since submission
	Errors     int
}

// BudgetInfo is the money panel.
type BudgetInfo struct {
	Limit     budget.Cents
	Spent     budget.Cents
	Remaining budget.Cents
}

// Savings quantifies the dashboard optimizations: caching, classifier
// substitution, and the cross-product reduction of adaptive joins.
type Savings struct {
	// CacheSavedCents estimates money not spent thanks to cache hits.
	CacheSavedCents budget.Cents
	// ModelSavedCents estimates money not spent thanks to the task
	// models answering instead of humans.
	ModelSavedCents budget.Cents
	CacheHits       int64
	ModelAnswers    int64
	// JoinPairsAvoided counts cross-product pairs the pre-filter stages
	// of adaptive joins kept away from workers; JoinSavedCents prices
	// them at the join task's per-pair grid cost.
	JoinPairsAvoided int64
	JoinSavedCents   budget.Cents
	// SortCompareHITs / SortRateHITs count what the cost-chosen sort
	// strategies actually posted across queries; SortSavedCents prices
	// the comparison HITs the chosen strategies avoided against the
	// all-pairs compare baseline.
	SortCompareHITs int64
	SortRateHITs    int64
	SortSavedCents  budget.Cents
	// SharedHITs counts HITs co-batched across query scopes
	// (multi-tenant sharing), SharedItems the items inside them, and
	// SharedSavedCents prices the per-query partial-batch HITs sharing
	// avoided.
	SharedHITs       int64
	SharedItems      int64
	SharedSavedCents budget.Cents
}

// WarmstartInfo reports what the durable knowledge store replayed at
// engine start: paid-for answers and statistics evidence that this run
// did not have to buy again.
type WarmstartInfo struct {
	// Answers counts replayed per-assignment answers (across Entries
	// cache entries); Observations the replayed statistics evidence.
	Answers      int64
	Entries      int64
	Observations int64
	// SavedCents prices the replayed cache entries at each task's
	// current policy — what re-asking them would have cost.
	SavedCents budget.Cents
}

// PlanCacheInfo reports the engine's normalized-SQL plan cache: queries
// whose shape (literals stripped) matched a cached template skip
// planning; entries invalidate when live statistics flip an optimizer
// decision the cached plan baked in.
type PlanCacheInfo struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	// SavedMs totals the measured planning time hits skipped.
	SavedMs float64
}

// BackendCount is one worker backend's share of the posted HITs.
type BackendCount struct {
	Name string
	HITs int64
}

// BackendsInfo summarizes per-task backend routing (zero when the
// engine runs on the plain simulated crowd without a router).
type BackendsInfo struct {
	// Counts lists HITs posted per backend, default backend first.
	Counts []BackendCount
	// SavedCents is what routing saved versus each task's policy price.
	SavedCents budget.Cents
}

// InferenceInfo summarizes the answer-inference layer: which aggregator
// the engine runs and what the adaptive redundancy loop bought — or,
// more to the point, did not buy (zero under plain majority voting).
type InferenceInfo struct {
	Method string
	// AdaptiveHITs counts HITs posted below their redundancy cap;
	// Extensions the single assignments bought afterward while the
	// posterior stayed unsure; ExtendFailures the extensions a backend
	// rejected.
	AdaptiveHITs   int64
	Extensions     int64
	ExtendFailures int64
	// AssignmentsUsed / AssignmentsCap sum actual versus fixed-redundancy
	// assignment counts over those HITs; SavedCents prices the gap.
	AssignmentsUsed int64
	AssignmentsCap  int64
	SavedCents      budget.Cents
}

// Snapshot is a point-in-time view of the whole system.
type Snapshot struct {
	NowMinutes float64
	Budget     BudgetInfo
	Market     mturk.Stats
	Tasks      []taskmgr.TaskStats
	Cache      cache.Stats
	Models     []model.Stats
	Queries    []QueryInfo
	Savings    Savings
	// Workers lists agreement-based reputations, suspects first
	// (capped by the snapshot builder).
	Workers []taskmgr.WorkerQuality
	// EstimatedRemainingCents projects completing all pending and
	// in-flight work at current policies.
	EstimatedRemainingCents budget.Cents
	// Warmstart is what the knowledge store replayed at engine start
	// (zero when no store is configured).
	Warmstart WarmstartInfo
	// PlanCache reports plan-cache activity (zero when disabled).
	PlanCache PlanCacheInfo
	// Backends reports worker-backend routing (zero without a router).
	Backends BackendsInfo
	// Inference reports answer-inference activity (zero under the
	// default majority voting).
	Inference InferenceInfo
}

// ComputeSavings derives the optimization-benefit panel from task stats:
// every cache hit or model answer avoided (price × assignments /
// batch) of human spend under that task's policy.
func ComputeSavings(tasks []taskmgr.TaskStats, policyFor func(task string) taskmgr.Policy) Savings {
	var s Savings
	for _, ts := range tasks {
		pol := policyFor(ts.Task)
		perQuestion := float64(pol.PriceCents) * float64(pol.Assignments) / float64(pol.BatchSize)
		s.CacheSavedCents += budget.Cents(float64(ts.CacheHits) * perQuestion)
		s.ModelSavedCents += budget.Cents(float64(ts.ModelAnswers) * perQuestion)
		s.CacheHits += ts.CacheHits
		s.ModelAnswers += ts.ModelAnswers
	}
	return s
}

// Render produces the text dashboard (the terminal twin of Figure 2).
func Render(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Qurk Query Status Dashboard (t=%.1f virtual min) ===\n", s.NowMinutes)

	fmt.Fprintf(&b, "\nBudget: spent %v", s.Budget.Spent)
	if s.Budget.Limit > 0 {
		fmt.Fprintf(&b, " of %v (remaining %v)", s.Budget.Limit, s.Budget.Remaining)
	} else {
		b.WriteString(" (no limit)")
	}
	fmt.Fprintf(&b, "; estimated remaining work %v\n", s.EstimatedRemainingCents)

	fmt.Fprintf(&b, "MTurk: %d HITs posted, %d assignments done, %d questions answered, %d from the audience\n",
		s.Market.HITsPosted, s.Market.AssignmentsCompleted, s.Market.QuestionsAnswered, s.Market.ExternalSubmissions)

	fmt.Fprintf(&b, "Optimizations: cache saved ~%v (%d hits, %d answers served); classifiers saved ~%v (%d answers)\n",
		s.Savings.CacheSavedCents, s.Savings.CacheHits, s.Cache.SavedQuestions,
		s.Savings.ModelSavedCents, s.Savings.ModelAnswers)
	if s.Savings.JoinPairsAvoided > 0 {
		fmt.Fprintf(&b, "Adaptive joins: avoided %d cross-product pairs (~%v of join HITs)\n",
			s.Savings.JoinPairsAvoided, s.Savings.JoinSavedCents)
	}
	if s.Savings.SortCompareHITs > 0 || s.Savings.SortRateHITs > 0 {
		fmt.Fprintf(&b, "Sort: %d comparison HITs vs %d rating HITs, ~%v saved\n",
			s.Savings.SortCompareHITs, s.Savings.SortRateHITs, s.Savings.SortSavedCents)
	}
	if s.Savings.SharedHITs > 0 {
		fmt.Fprintf(&b, "Multi-tenant sharing: %d HITs co-batched %d cross-query items (~%v saved)\n",
			s.Savings.SharedHITs, s.Savings.SharedItems, s.Savings.SharedSavedCents)
	}
	if len(s.Backends.Counts) > 0 {
		parts := make([]string, len(s.Backends.Counts))
		for i, bc := range s.Backends.Counts {
			parts[i] = fmt.Sprintf("%d %s", bc.HITs, bc.Name)
		}
		fmt.Fprintf(&b, "Backends: %s HITs, ~%v saved by routing\n",
			strings.Join(parts, " / "), s.Backends.SavedCents)
	}
	if s.Inference.AdaptiveHITs > 0 {
		avg := float64(s.Inference.AssignmentsUsed) / float64(s.Inference.AdaptiveHITs)
		was := float64(s.Inference.AssignmentsCap) / float64(s.Inference.AdaptiveHITs)
		fmt.Fprintf(&b, "Inference: avg %.1f assignments/HIT (was %.1f), ~%v saved, %d extensions",
			avg, was, s.Inference.SavedCents, s.Inference.Extensions)
		if s.Inference.ExtendFailures > 0 {
			fmt.Fprintf(&b, ", %d extend failures", s.Inference.ExtendFailures)
		}
		b.WriteString("\n")
	} else if s.Inference.Method != "" && s.Inference.Method != "majority" {
		fmt.Fprintf(&b, "Inference: %s enabled, no adaptive HITs finalized yet\n", s.Inference.Method)
	}
	if s.PlanCache.Hits > 0 || s.PlanCache.Invalidations > 0 {
		fmt.Fprintf(&b, "Plan cache: %d hits, %d invalidations (~%.1f ms planning saved)\n",
			s.PlanCache.Hits, s.PlanCache.Invalidations, s.PlanCache.SavedMs)
	}
	if s.Warmstart.Answers > 0 || s.Warmstart.Observations > 0 {
		fmt.Fprintf(&b, "Warm start: %d answers, %d observations replayed (~%v saved)\n",
			s.Warmstart.Answers, s.Warmstart.Observations, s.Warmstart.SavedCents)
	}

	if len(s.Tasks) > 0 {
		b.WriteString("\nTasks:\n")
		fmt.Fprintf(&b, "  %-16s %8s %6s %6s %6s %6s %9s %7s %7s\n",
			"task", "questions", "HITs", "cache", "model", "spent", "selectvty", "agree", "lat(m)")
		for _, t := range s.Tasks {
			fmt.Fprintf(&b, "  %-16s %8d %6d %6d %6d %6s %6.2f/%-2d %7.2f %7.1f\n",
				t.Task, t.QuestionsAsked, t.HITsPosted, t.CacheHits, t.ModelAnswers,
				t.SpentCents, t.Selectivity, t.SelTrials, t.MeanAgreement, t.MeanLatencyMin)
		}
	}

	if len(s.Workers) > 0 {
		b.WriteString("\nWorker quality (majority agreement, suspects first):\n")
		for _, w := range s.Workers {
			fmt.Fprintf(&b, "  %-16s %5.2f over %d votes\n", w.ID, w.Agreement, w.Votes)
		}
	}

	for _, q := range s.Queries {
		status := "running"
		switch {
		case q.Canceled:
			status = fmt.Sprintf("CANCELED, sunk %v", q.SunkCents)
		case q.Done:
			status = "done"
		}
		fmt.Fprintf(&b, "\nQuery %d [%s, %.1f min, %d results, %d errors]\n  %s\n",
			q.ID, status, q.ElapsedMin, q.Results, q.Errors, strings.TrimSpace(q.SQL))
		for _, line := range strings.Split(strings.TrimRight(q.PlanExplain, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		for _, op := range q.Ops {
			mark := " "
			if op.Done {
				mark = "✓"
			}
			fmt.Fprintf(&b, "    %s %-40s in=%-6d out=%-6d\n", mark, op.Label, op.In, op.Out)
		}
	}
	return b.String()
}

// SortTasksBySpend orders the task panel by money spent, descending, for
// the "where is my budget going" view.
func SortTasksBySpend(tasks []taskmgr.TaskStats) {
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].SpentCents > tasks[j].SpentCents })
}
