package core

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/workload"
)

// catModel reads the ground truth the Photos workload encodes in each
// image ref — a deterministic stand-in for a model call.
func catModel(task string, tt qlang.TaskType, args []relation.Value) relation.Value {
	return relation.NewBool(len(args) > 0 && strings.Contains(args[0].Str(), "feline"))
}

func TestEnginePinsTaskToLLMBackend(t *testing.T) {
	ds := workload.Photos(12, 0.5, 0.5, 3)
	e := newEngine(t, Config{Backends: &BackendsConfig{
		LLM: backend.LLMConfig{Model: catModel, PriceCents: 1},
	}}, ds)
	// A separate task pinned to the LLM crowd at a premium human price:
	// the router quotes the model price instead, and the delta shows up
	// as routing savings.
	if err := e.Define(`
TASK llmIsCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Price: 3
  Backend: llm
`); err != nil {
		t.Fatal(err)
	}
	rows, err := e.QueryAndWait(`SELECT img FROM photos WHERE llmIsCat(img)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !strings.Contains(row.Values[0].Str(), "feline") {
			t.Errorf("non-cat passed the LLM filter: %v", row.Values[0])
		}
	}
	var wantCats int
	for _, row := range allRows(t, e, "photos") {
		if strings.Contains(row.Values[1].Str(), "feline") {
			wantCats++
		}
	}
	if len(rows) != wantCats {
		t.Fatalf("rows = %d, want %d cats", len(rows), wantCats)
	}
	snap := e.Snapshot()
	var simHITs, llmHITs int64
	for _, bc := range snap.Backends.Counts {
		switch bc.Name {
		case "sim":
			simHITs = bc.HITs
		case "llm":
			llmHITs = bc.HITs
		}
	}
	if llmHITs == 0 || simHITs != 0 {
		t.Fatalf("backend counts = %+v, want all HITs on llm", snap.Backends.Counts)
	}
	// Policy price 3¢, model price 1¢, default 3 assignments per HIT.
	if want := llmHITs * 2 * 3; int64(snap.Backends.SavedCents) != want {
		t.Fatalf("saved = %v, want %d", snap.Backends.SavedCents, want)
	}
	// The simulated marketplace never saw the work.
	if e.Marketplace().Stats().HITsPosted != 0 {
		t.Fatalf("marketplace posted %d HITs", e.Marketplace().Stats().HITsPosted)
	}
}

func allRows(t *testing.T, e *Engine, table string) []relation.Tuple {
	t.Helper()
	tab, ok := e.Catalog().Table(table)
	if !ok {
		t.Fatalf("no table %s", table)
	}
	return tab.Snapshot()
}

func TestEngineRouteChoosesLLMForFilters(t *testing.T) {
	ds := workload.Photos(10, 0.5, 0.5, 7)
	e := newEngine(t, Config{Backends: &BackendsConfig{
		LLM: backend.LLMConfig{
			Model:      catModel,
			PriceCents: 1,
			Quality:    map[qlang.TaskType]float64{qlang.TaskFilter: 0.95},
		},
		Route: true,
	}}, ds)
	// isCat is unpinned; the optimizer's chooser routes filters to the
	// cheap high-prior LLM crowd.
	rows, err := e.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !strings.Contains(row.Values[0].Str(), "feline") {
			t.Errorf("non-cat passed: %v", row.Values[0])
		}
	}
	snap := e.Snapshot()
	var llmHITs int64
	for _, bc := range snap.Backends.Counts {
		if bc.Name == "llm" {
			llmHITs = bc.HITs
		}
	}
	if llmHITs == 0 {
		t.Fatalf("chooser routed nothing to llm: %+v", snap.Backends.Counts)
	}
}

func TestEngineRejectsBackendPinWithoutRouter(t *testing.T) {
	ds := workload.Photos(4, 0.5, 0.5, 3)
	e := newEngine(t, Config{}, ds)
	err := e.Define(`
TASK llmIsCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Backend: llm
`)
	if err == nil || !strings.Contains(err.Error(), "no backend router") {
		t.Fatalf("err = %v, want router-missing rejection", err)
	}
	// An unknown backend name is rejected even with a router.
	e2 := newEngine(t, Config{Backends: &BackendsConfig{
		LLM: backend.LLMConfig{Model: catModel},
	}}, ds)
	err = e2.Define(`
TASK httpIsCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
  Backend: http
`)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown-backend rejection", err)
	}
}
