package core

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/workload"
)

const taskSrc = `
TASK findCEO(String companyName)
RETURNS (String CEO, String Phone):
  TaskType: Question
  Text: "Find the CEO and the CEO's phone number for the company %s", companyName
  Response: Form(("CEO", String), ("Phone", String))

TASK isCeleb(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a photo of a public figure? %s", photo
  Response: YesNo

TASK samePerson(Image[] celebs, Image[] spotted)
RETURNS Bool:
  TaskType: JoinPredicate
  Text: "Match the pictures."
  Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)
  PreFilter: isCeleb

TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
`

func newEngine(t *testing.T, cfg Config, datasets ...workload.Dataset) *Engine {
	t.Helper()
	var oracles []crowd.Oracle
	for _, ds := range datasets {
		oracles = append(oracles, ds.Oracle)
	}
	cfg.Oracle = workload.Combine(oracles...)
	if cfg.Crowd.Seed == 0 {
		cfg.Crowd = crowd.Config{Seed: 5, Workers: 200, MeanSkill: 0.97,
			SkillStd: 0.01, BatchPenalty: 1e-6,
			SpamFraction: 1e-12, AbandonRate: 1e-12}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for _, ds := range datasets {
		for _, tab := range ds.Tables {
			if err := e.Register(tab); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Define(taskSrc); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineQuery1EndToEnd(t *testing.T) {
	ds := workload.Companies(8, 3)
	e := newEngine(t, Config{}, ds)
	rows, err := e.QueryAndWait(`
SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone
FROM companies`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Majority answers should match ground truth for most companies.
	correct := 0
	for _, row := range rows {
		truth := ds.Oracle.Truth("findCEO", []relation.Value{row.Values[0]})
		if row.Get("findCEO.CEO").Equal(truth.Field("CEO")) {
			correct++
		}
	}
	if correct < 6 {
		t.Fatalf("only %d/8 CEOs correct", correct)
	}
}

func TestEngineQuery2EndToEnd(t *testing.T) {
	ds := workload.Celebrities(6, 12, 0.5, 4)
	e := newEngine(t, Config{}, ds)
	rows, err := e.QueryAndWait(`
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against ground truth matches.
	truthMatches := 0
	for _, crow := range ds.Tables[0].Snapshot() {
		for _, srow := range ds.Tables[1].Snapshot() {
			if ds.Oracle.Truth("samePerson", []relation.Value{crow.Get("image"), srow.Get("image")}).Truthy() {
				truthMatches++
			}
		}
	}
	if len(rows) < truthMatches-2 || len(rows) > truthMatches+2 {
		t.Fatalf("join produced %d rows, truth %d", len(rows), truthMatches)
	}
}

// TestEngineAdaptiveJoins runs the celebrity join with and without
// cost-based pre-filtering: the adaptive engine must buy far fewer join
// pairs while finding (essentially) the same matches, and the dashboard
// must report the cross-product reduction.
func TestEngineAdaptiveJoins(t *testing.T) {
	const (
		nCelebs  = 20
		nSpotted = 200
	)
	ds := workload.Celebrities(nCelebs, nSpotted, 0.05, 6)
	truthMatches := 0
	for _, crow := range ds.Tables[0].Snapshot() {
		for _, srow := range ds.Tables[1].Snapshot() {
			if ds.Oracle.Truth("samePerson", []relation.Value{crow.Get("image"), srow.Get("image")}).Truthy() {
				truthMatches++
			}
		}
	}
	joinQuery := `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`

	// A near-perfect crowd keeps answer noise out of the cost
	// comparison (the crowd clamp caps skill at 0.99); the zero-vs-cheap
	// tradeoff being measured is pairs bought, not vote quality.
	accurate := crowd.Config{Seed: 5, Workers: 200, MeanSkill: 0.999,
		SkillStd: 1e-9, BatchPenalty: 1e-9, SpamFraction: 1e-12, AbandonRate: 1e-12}

	base := newEngine(t, Config{Crowd: accurate}, ds)
	baseRows, err := base.QueryAndWait(joinQuery)
	if err != nil {
		t.Fatal(err)
	}

	adaptive := newEngine(t, Config{Crowd: accurate, AdaptiveJoins: true}, ds)
	// Give the mid-query re-check a solid evidence floor: the left
	// (all-celebrity) side inflates the shared selectivity estimate
	// until enough junk sightings have been observed.
	adaptive.Optimizer().MinPreFilterTrials = 60
	h, err := adaptive.Run(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(h.Plan), "PreFilter(isCeleb") {
		t.Fatalf("rewrite did not fire:\n%s", plan.Explain(h.Plan))
	}
	adaptiveRows := h.Wait()
	if errs := h.Exec.Errors(); len(errs) > 0 {
		t.Fatalf("adaptive errors: %v", errs)
	}

	for name, rows := range map[string][]relation.Tuple{"baseline": baseRows, "adaptive": adaptiveRows} {
		// Workers cap at 99% accuracy, so allow a little answer noise;
		// the strict rerun-identical comparison lives in the
		// deterministic load harness (internal/load).
		if len(rows) < truthMatches-3 || len(rows) > truthMatches+6 {
			t.Fatalf("%s rows = %d, truth %d", name, len(rows), truthMatches)
		}
	}

	basePairs := base.Manager().StatsFor("sameperson").Submitted
	adaptivePairs := adaptive.Manager().StatsFor("sameperson").Submitted
	if basePairs != int64(nCelebs*nSpotted) {
		t.Fatalf("baseline pairs = %d, want the full cross product", basePairs)
	}
	if adaptivePairs > basePairs/2 {
		t.Fatalf("adaptive pairs = %d, want well under baseline %d", adaptivePairs, basePairs)
	}
	if f := adaptive.Manager().StatsFor("isceleb"); f.Submitted == 0 {
		t.Fatal("feature filter never ran")
	}

	snap := adaptive.Snapshot()
	if snap.Savings.JoinPairsAvoided == 0 || snap.Savings.JoinSavedCents == 0 {
		t.Fatalf("join savings = %+v", snap.Savings)
	}
	text := dashboard.Render(snap)
	if !strings.Contains(text, "Adaptive joins: avoided") {
		t.Fatalf("dashboard missing cross-product reduction:\n%s", text)
	}
	// The baseline engine's dashboard must not show the panel.
	if strings.Contains(dashboard.Render(base.Snapshot()), "Adaptive joins:") {
		t.Fatal("baseline dashboard shows a join reduction")
	}
}

func TestEngineRunScript(t *testing.T) {
	ds := workload.Photos(10, 0.5, 0.5, 2)
	e := newEngine(t, Config{}, ds)
	handles, err := e.RunScript(`
SELECT img FROM photos WHERE isCat(img);
SELECT count() AS n FROM photos
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 2 {
		t.Fatalf("handles = %d", len(handles))
	}
	handles[0].Wait()
	rows := handles[1].Wait()
	if len(rows) != 1 || rows[0].Get("n").Int() != 10 {
		t.Fatalf("count = %v", rows)
	}
	if len(e.Queries()) != 2 {
		t.Fatalf("queries = %d", len(e.Queries()))
	}
}

func TestEngineErrors(t *testing.T) {
	ds := workload.Photos(2, 0.5, 0.5, 2)
	e := newEngine(t, Config{}, ds)
	if _, err := e.Run(`SELECT nope FROM photos`); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := e.Run(`SELEC x`); err == nil {
		t.Error("parse error accepted")
	}
	if err := e.Define(taskSrc); err == nil {
		t.Error("duplicate task definitions accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("engine without oracle accepted")
	}
	e.Close()
	if _, err := e.Run(`SELECT img FROM photos`); err == nil {
		t.Error("closed engine accepted a query")
	}
}

func TestEngineAutoTune(t *testing.T) {
	ds := workload.Photos(2, 0.5, 0.5, 2)
	e := newEngine(t, Config{AutoTune: true}, ds)
	def, _ := findTask(e, "isCat")
	pol := e.Manager().PolicyFor(def)
	if pol.Assignments < 3 || pol.BatchSize <= 1 {
		t.Fatalf("auto-tuned policy = %+v", pol)
	}
	ceoDef, _ := findTask(e, "findCEO")
	if e.Manager().PolicyFor(ceoDef).BatchSize != 1 {
		t.Fatal("question tasks must not batch")
	}
}

func findTask(e *Engine, name string) (def *qlang.TaskDef, ok bool) {
	for _, d := range e.Tasks() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return nil, false
}

func TestEngineAttachModels(t *testing.T) {
	ds := workload.Photos(2, 0.5, 0.5, 2)
	e := newEngine(t, Config{AttachModels: true}, ds)
	if _, ok := e.Manager().Models().For("isCat"); !ok {
		t.Fatal("boolean task has no model")
	}
	if _, ok := e.Manager().Models().For("findCEO"); ok {
		t.Fatal("tuple task should not get a model")
	}
	// JoinPredicate returns Bool → gets a model too.
	if _, ok := e.Manager().Models().For("samePerson"); !ok {
		t.Fatal("join predicate has no model")
	}
}

func TestEngineSnapshotAndDashboard(t *testing.T) {
	ds := workload.Photos(6, 0.5, 0.5, 2)
	e := newEngine(t, Config{}, ds)
	if _, err := e.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Market.HITsPosted == 0 {
		t.Fatal("snapshot missing market stats")
	}
	if len(snap.Queries) != 1 || !snap.Queries[0].Done {
		t.Fatalf("snapshot queries = %+v", snap.Queries)
	}
	if snap.Budget.Spent <= 0 {
		t.Fatal("snapshot missing spend")
	}
	text := dashboard.Render(snap)
	for _, want := range []string{"Qurk Query Status Dashboard", "iscat", "Query 1", "Scan(photos)"} {
		if !strings.Contains(text, want) {
			t.Errorf("dashboard missing %q:\n%s", want, text)
		}
	}
}

func TestEngineHTTPDashboard(t *testing.T) {
	ds := workload.Photos(4, 0.5, 0.5, 2)
	e := newEngine(t, Config{}, ds)
	if _, err := e.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dashboard.NewHandler(e))
	defer srv.Close()
	for _, path := range []string{"/", "/tasks"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := srv.Client().Get(srv.URL + "/hit?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("unknown hit status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestEngineCacheAcrossQueries(t *testing.T) {
	ds := workload.Companies(5, 9)
	e := newEngine(t, Config{}, ds)
	q := `SELECT companyName, findCEO(companyName).CEO FROM companies`
	if _, err := e.QueryAndWait(q); err != nil {
		t.Fatal(err)
	}
	spent := e.Manager().Account().Spent()
	if _, err := e.QueryAndWait(q); err != nil {
		t.Fatal(err)
	}
	if e.Manager().Account().Spent() != spent {
		t.Fatal("second identical query should be fully cached (paper: results cached across queries)")
	}
	snap := e.Snapshot()
	if snap.Savings.CacheHits == 0 || snap.Savings.CacheSavedCents == 0 {
		t.Fatalf("savings = %+v", snap.Savings)
	}
}

func TestEngineLoadCSV(t *testing.T) {
	ds := workload.Photos(1, 1, 1, 1)
	e := newEngine(t, Config{}, ds)
	tab, err := e.LoadCSV("pets", strings.NewReader("name:String,age:Int\nrex,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatal("csv load failed")
	}
	rows, err := e.QueryAndWait(`SELECT name FROM pets WHERE age > 2`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if _, err := e.LoadCSV("pets", strings.NewReader("a\nb\n")); err == nil {
		t.Error("duplicate table name accepted")
	}
	if _, err := e.LoadCSV("bad", strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
}

func TestEngineCachePersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/taskcache.gob"
	ds := workload.Companies(4, 21)
	e := newEngine(t, Config{}, ds)
	q := `SELECT companyName, findCEO(companyName).CEO FROM companies`
	if _, err := e.QueryAndWait(q); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// A brand-new engine loads the cache and answers the same query for
	// free — paid answers survive process restarts.
	ds2 := workload.Companies(4, 21) // same seed: same companies
	e2 := newEngine(t, Config{}, ds2)
	if err := e2.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.QueryAndWait(q); err != nil {
		t.Fatal(err)
	}
	if spent := e2.Manager().Account().Spent(); spent != 0 {
		t.Fatalf("warm-cache engine spent %v", spent)
	}
}
