package core

import (
	"strings"
	"testing"

	"repro/internal/dashboard"
	"repro/internal/workload"
)

// TestEngineInferenceAdaptiveRedundancy drives Config.Inference through
// the whole engine: a filter query under EM answer inference must post
// at the adaptive floor, return the same cats a majority run would, and
// surface the assignment savings on the dashboard.
func TestEngineInferenceAdaptiveRedundancy(t *testing.T) {
	ds := workload.Photos(30, 0.5, 0.5, 11)
	e := newEngine(t, Config{Inference: &InferenceConfig{Method: "em"}}, ds)
	rows, err := e.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !strings.Contains(row.Values[0].Str(), "feline") {
			t.Errorf("non-cat passed the filter: %v", row.Values[0])
		}
	}
	var wantCats int
	for _, row := range allRows(t, e, "photos") {
		if strings.Contains(row.Values[1].Str(), "feline") {
			wantCats++
		}
	}
	if len(rows) != wantCats {
		t.Fatalf("rows = %d, want %d cats", len(rows), wantCats)
	}

	snap := e.Snapshot()
	inf := snap.Inference
	if inf.Method != "em" {
		t.Fatalf("method = %q, want em", inf.Method)
	}
	if inf.AdaptiveHITs == 0 {
		t.Fatal("no HITs went through the adaptive loop")
	}
	// The near-perfect test crowd clears the posterior target at the
	// floor on (at least) most HITs, so the adaptive run must have
	// bought strictly fewer assignments than the policy cap and booked
	// the difference as savings.
	if inf.AssignmentsUsed >= inf.AssignmentsCap {
		t.Fatalf("used %d assignments of a %d cap — nothing saved", inf.AssignmentsUsed, inf.AssignmentsCap)
	}
	if inf.SavedCents <= 0 {
		t.Fatalf("saved = %v", inf.SavedCents)
	}
	if inf.ExtendFailures != 0 {
		t.Fatalf("extend failures = %d (sim backend supports extension)", inf.ExtendFailures)
	}
	out := dashboard.Render(snap)
	if !strings.Contains(out, "Inference: avg") {
		t.Fatalf("dashboard lacks the inference panel:\n%s", out)
	}
}
