package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// slowCrowd is a single near-perfect worker: HITs complete one at a
// time in post order, so results stream out over a long virtual span.
func slowCrowd() crowd.Config {
	return crowd.Config{Seed: 7, Workers: 1, MeanSkill: 0.99,
		SkillStd: 1e-9, BatchPenalty: 1e-9,
		SpamFraction: 1e-12, AbandonRate: 1e-12}
}

func TestRowsStreamBeforeCompletion(t *testing.T) {
	ds := workload.Photos(40, 0.5, 0.6, 3)
	e := newEngine(t, Config{Crowd: slowCrowd()}, ds)
	// Pace the simulation (~5ms real per HIT) so the consumer genuinely
	// interleaves with in-flight HITs instead of reading a finished run.
	e.Clock().SetPace(1e-4)
	defer e.Clock().SetPace(0)
	rows, err := e.Query(context.Background(), `SELECT img FROM photos WHERE isCat(img)`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row; err=%v", rows.Err())
	}
	// One worker, forty sequential HITs: when the first survivor streams
	// out, later HITs must still be in flight.
	if rows.Handle().Exec.Result().Closed() {
		t.Fatal("query already complete at first row; nothing streamed")
	}
	firstAt, ok := rows.Handle().Exec.FirstRowAt()
	if !ok {
		t.Fatal("FirstRowAt not recorded")
	}
	e.Clock().SetPace(0) // first row seen streaming; finish at full speed
	n := 1
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("clean run, got %v", err)
	}
	if n < 10 {
		t.Fatalf("suspiciously few survivors: %d", n)
	}
	if end := e.Clock().Now(); firstAt >= end {
		t.Fatalf("first row at %v, not before completion at %v", firstAt, end)
	}
}

func TestQueryCancelMidStream(t *testing.T) {
	ds := workload.Photos(60, 0.5, 0.6, 3)
	e := newEngine(t, Config{Crowd: slowCrowd()}, ds)
	e.Clock().SetPace(1e-4)
	defer e.Clock().SetPace(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := e.Query(ctx, `SELECT img FROM photos WHERE isCat(img)`)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for rows.Next() {
		got++
		if got == 3 {
			cancel()
		}
	}
	e.Clock().SetPace(0) // drain the remains at full speed
	if err := rows.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !rows.Handle().Canceled() {
		t.Fatal("handle not marked canceled")
	}
	// Cancellation propagated to the marketplace: posting stops and the
	// open-HIT count drains (claims for disposed HITs are discarded).
	waitQuiesce(t, e)
	posted := e.Marketplace().Stats().HITsPosted
	time.Sleep(20 * time.Millisecond)
	if again := e.Marketplace().Stats().HITsPosted; again != posted {
		t.Fatalf("HITs posted after cancel: %d -> %d", posted, again)
	}
	if open := len(e.Marketplace().OpenHITs()); open != 0 {
		t.Fatalf("open HITs did not drain: %d", open)
	}
	if sunk := rows.Handle().SunkCents(); sunk <= 0 {
		t.Fatalf("canceled query should have sunk cost, got %v", sunk)
	}
	// The dashboard reports the cancellation with its sunk cost.
	snap := e.Snapshot()
	if len(snap.Queries) != 1 || !snap.Queries[0].Canceled {
		t.Fatalf("snapshot does not mark query canceled: %+v", snap.Queries)
	}
	if !strings.Contains(dashboard.Render(snap), "CANCELED, sunk") {
		t.Fatal("render lacks canceled status")
	}
}

// waitQuiesce waits until no assignments remain in flight anywhere.
func waitQuiesce(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Manager().Inflight() == 0 && e.Clock().Pending() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("engine did not quiesce: inflight=%d pending=%d",
		e.Manager().Inflight(), e.Clock().Pending())
}

func TestQueryCancelMidJoin(t *testing.T) {
	ds := workload.Celebrities(8, 40, 0.3, 3)
	e := newEngine(t, Config{Crowd: slowCrowd()}, ds)
	e.Clock().SetPace(1e-4)
	defer e.Clock().SetPace(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := e.Query(ctx, `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as the first join match streams out: grid HITs for
	// later blocks are still open or unposted.
	if rows.Next() {
		cancel()
	}
	for rows.Next() {
	}
	e.Clock().SetPace(0) // drain the remains at full speed
	if err := rows.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	waitQuiesce(t, e)
	posted := e.Marketplace().Stats().HITsPosted
	time.Sleep(20 * time.Millisecond)
	if again := e.Marketplace().Stats().HITsPosted; again != posted {
		t.Fatalf("HITs posted after cancel: %d -> %d", posted, again)
	}
	if open := len(e.Marketplace().OpenHITs()); open != 0 {
		t.Fatalf("open HITs did not drain after join cancel: %d", open)
	}
	// The expired HITs refunded their uncompleted assignments: sunk cost
	// must stay below what the full grid sweep would have charged.
	full := int64(0)
	for _, ts := range e.Manager().Stats() {
		full += int64(ts.HITsPosted)
	}
	if sunk := rows.Handle().SunkCents(); sunk < 0 {
		t.Fatalf("negative sunk cost %v", sunk)
	}
}

func TestEngineCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		ds := workload.Photos(50, 0.5, 0.6, 3)
		e := newEngine(t, Config{Crowd: slowCrowd()}, ds)
		e.Clock().SetPace(1e-4)
		rows, err := e.Query(context.Background(), `SELECT img FROM photos WHERE isCat(img)`)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no first row; err=%v", rows.Err())
		}
		// Close with the query mid-flight: operators, sink and context
		// watcher must all exit.
		e.Close()
		for rows.Next() {
		}
		if err := rows.Err(); !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled after engine close, got %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestWithBudgetExhausted(t *testing.T) {
	ds := workload.Photos(30, 0.5, 0.6, 3)
	e := newEngine(t, Config{}, ds)
	// Default policy is 3 assignments × 1¢ per HIT: a 5¢ cap pays for at
	// most one HIT and dies mid-query with the typed error.
	rows, err := e.Query(context.Background(), `SELECT img FROM photos WHERE isCat(img)`,
		WithBudget(5))
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if spent := rows.Handle().SunkCents(); spent > 5 {
		t.Fatalf("per-query budget overrun: spent %v of 5¢", spent)
	}
	// The engine-wide account only paid what the scope did.
	if got := e.Manager().Account().Spent(); got > 5 {
		t.Fatalf("engine account charged %v despite 5¢ query cap", got)
	}
}

func TestWithDeadlineVirtualTime(t *testing.T) {
	ds := workload.Photos(60, 0.5, 0.6, 3)
	e := newEngine(t, Config{Crowd: slowCrowd()}, ds)
	// One worker needs ~45 virtual seconds per HIT; 60 HITs ≫ 10 minutes.
	rows, err := e.Query(context.Background(), `SELECT img FROM photos WHERE isCat(img)`,
		WithDeadline(10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if now := e.Clock().Now().Minutes(); now < 10 {
		t.Fatalf("deadline fired early: virtual now %.1f min", now)
	}
}

func TestWithPolicyPerQuery(t *testing.T) {
	ds := workload.Photos(12, 0.5, 0.6, 3)
	e := newEngine(t, Config{}, ds)
	// Single-assignment policy for this query only: every isCat HIT
	// posts with redundancy 1.
	rows, err := e.Query(context.Background(), `SELECT img FROM photos WHERE isCat(img)`,
		WithPolicy("isCat", taskmgr.Policy{Assignments: 1, BatchSize: 1, PriceCents: 1,
			Linger: time.Minute, UseCache: true}))
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	st := e.Manager().StatsFor("iscat")
	if st.HITsPosted == 0 {
		t.Fatal("no HITs posted")
	}
	mkt := e.Marketplace().Stats()
	if int64(mkt.AssignmentsCompleted) != st.HITsPosted {
		t.Fatalf("want 1 assignment per HIT under the per-query policy, got %d for %d HITs",
			mkt.AssignmentsCompleted, st.HITsPosted)
	}
}

func TestParseErrorPosition(t *testing.T) {
	ds := workload.Photos(4, 0.5, 0.6, 3)
	e := newEngine(t, Config{}, ds)
	_, err := e.Query(context.Background(), "SELECT img FROM")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 1 || pe.Col == 0 {
		t.Fatalf("missing position: %+v", pe)
	}
}

// TestQueryAndWaitSurfacesOperatorError is the regression test for the
// old silent-partial-rows behavior: when the engine budget dies
// mid-query, QueryAndWait must return the completed prefix AND the
// first operator error, typed.
func TestQueryAndWaitSurfacesOperatorError(t *testing.T) {
	ds := workload.Photos(30, 0.5, 0.6, 3)
	e := newEngine(t, Config{BudgetCents: budget.Cents(9)}, ds)
	rows, err := e.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`)
	if err == nil {
		t.Fatalf("want a budget error, got %d rows and no error", len(rows))
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// And the handle-level path agrees.
	h := e.Queries()[len(e.Queries())-1]
	if err := h.Err(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("handle Err: want ErrBudgetExhausted, got %v", err)
	}
}

func TestWithAdaptiveJoinsOverride(t *testing.T) {
	// Big enough that DecidePreFilter's prior predicts the filter pays.
	ds := workload.Celebrities(20, 200, 0.3, 3)
	// Engine-wide adaptive joins OFF; the per-query option turns the
	// pre-filter rewrite on for this query alone.
	e := newEngine(t, Config{}, ds)
	rows, err := e.Query(context.Background(), `
SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`,
		WithAdaptiveJoins(true))
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dashboard.Render(e.Snapshot()), "PreFilter") {
		t.Fatal("per-query WithAdaptiveJoins(true) did not apply the rewrite")
	}
}
