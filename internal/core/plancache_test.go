package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dashboard"
	"repro/internal/plan"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/workload"
)

// localTable builds a plain int table the crowd never touches, so plan
// cache tests run without HIT nondeterminism.
func localTable(t *testing.T, e *Engine) {
	t.Helper()
	tab := relation.NewTable("nums", relation.MustSchema(
		relation.Column{Name: "v", Kind: relation.KindInt}))
	for i := int64(0); i < 20; i++ {
		if err := tab.InsertValues(relation.NewInt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Register(tab); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T, e *Engine, sql string, opts ...QueryOption) []relation.Tuple {
	t.Helper()
	rows, err := e.Query(context.Background(), sql, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out []relation.Tuple
	for rows.Next() {
		out = append(out, rows.Tuple())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPlanCacheHitWithDifferentLiterals is the core correctness claim:
// queries that differ only in constants share a cached template, and
// each still runs with its own constants.
func TestPlanCacheHitWithDifferentLiterals(t *testing.T) {
	e := newEngine(t, Config{}, workload.Companies(4, 3))
	localTable(t, e)

	a := collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	b := collect(t, e, `SELECT v FROM nums WHERE v < 11`)
	c := collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	if len(a) != 5 || len(c) != 5 {
		t.Fatalf("v<5 rows = %d then %d, want 5 and 5", len(a), len(c))
	}
	if len(b) != 11 {
		t.Fatalf("v<11 rows = %d, want 11 (cached template must re-bind the literal)", len(b))
	}
	st := e.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss then 2 hits", st)
	}
	if st.Invalidations != 0 {
		t.Fatalf("unexpected invalidations: %+v", st)
	}
}

// TestPlanCacheKeySeparatesShapes: different LIMITs and different
// operators must not share entries.
func TestPlanCacheKeySeparatesShapes(t *testing.T) {
	e := newEngine(t, Config{}, workload.Companies(4, 3))
	localTable(t, e)

	if got := collect(t, e, `SELECT v FROM nums LIMIT 3`); len(got) != 3 {
		t.Fatalf("limit 3 rows = %d", len(got))
	}
	if got := collect(t, e, `SELECT v FROM nums LIMIT 7`); len(got) != 7 {
		t.Fatalf("limit 7 rows = %d", len(got))
	}
	st := e.PlanCacheStats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want two misses (LIMIT operand is part of the key)", st)
	}
}

// TestPlanCacheOptOut: WithPlanCache(false) plans from scratch and
// leaves the counters untouched.
func TestPlanCacheOptOut(t *testing.T) {
	e := newEngine(t, Config{}, workload.Companies(4, 3))
	localTable(t, e)

	collect(t, e, `SELECT v FROM nums WHERE v < 5`, WithPlanCache(false))
	collect(t, e, `SELECT v FROM nums WHERE v < 5`, WithPlanCache(false))
	st := e.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want untouched cache under WithPlanCache(false)", st)
	}
}

// TestPlanCacheDisabledByConfig: PlanCacheSize < 0 turns the cache off
// engine-wide.
func TestPlanCacheDisabledByConfig(t *testing.T) {
	e := newEngine(t, Config{PlanCacheSize: -1}, workload.Companies(4, 3))
	localTable(t, e)
	collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	if st := e.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("stats = %+v, want all-zero with the cache disabled", st)
	}
}

// TestPlanCacheEpochInvalidation: registering a table orphans old
// entries — the same SQL replans under the new epoch.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	e := newEngine(t, Config{}, workload.Companies(4, 3))
	localTable(t, e)

	collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	extra := relation.NewTable("extra", relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.KindInt}))
	if err := e.Register(extra); err != nil {
		t.Fatal(err)
	}
	collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	st := e.PlanCacheStats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses across an epoch bump", st)
	}
}

// TestPlanCacheDecisionFlipInvalidates drives buildPlan directly with a
// controllable pre-filter decider standing in for the optimizer: when
// live statistics flip the decision vector a cached plan baked in, the
// hit becomes an invalidation and the fresh plan follows the new
// decisions.
func TestPlanCacheDecisionFlipInvalidates(t *testing.T) {
	ds := workload.Celebrities(6, 6, 0.5, 3)
	e := newEngine(t, Config{}, ds)

	const sql = `SELECT celebrities.name, spottedstars.id
FROM celebrities, spottedstars
WHERE samePerson(celebrities.image, spottedstars.image)`
	stmt, err := qlang.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	script := e.script
	e.mu.Unlock()

	wrap := true
	decide := func(_, _ *qlang.TaskDef, _, _ int) plan.PreFilterDecision {
		return plan.PreFilterDecision{Left: wrap, Right: wrap}
	}

	countPreFilters := func(n plan.Node) int {
		count := 0
		plan.Walk(n, func(m plan.Node) {
			if _, ok := m.(*plan.PreFilter); ok {
				count++
			}
		})
		return count
	}

	first, _, err := e.buildPlan(sql, stmt, script, true, decide, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := countPreFilters(first); got != 2 {
		t.Fatalf("miss-path pre-filters = %d, want 2:\n%s", got, plan.Explain(first))
	}

	// Same stats regime: a clean hit with the same decisions.
	second, _, err := e.buildPlan(sql, stmt, script, true, decide, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := countPreFilters(second); got != 2 {
		t.Fatalf("hit-path pre-filters = %d, want 2", got)
	}

	// Statistics crossed the optimizer threshold: decisions flip, the
	// entry invalidates, and the plan follows the live decider.
	wrap = false
	third, _, err := e.buildPlan(sql, stmt, script, true, decide, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := countPreFilters(third); got != 0 {
		t.Fatalf("post-flip pre-filters = %d, want 0:\n%s", got, plan.Explain(third))
	}
	st := e.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 invalidation", st)
	}

	// The refreshed decision vector makes the next query a hit again.
	if _, _, err := e.buildPlan(sql, stmt, script, true, decide, true); err != nil {
		t.Fatal(err)
	}
	if st := e.PlanCacheStats(); st.Hits != 2 || st.Invalidations != 1 {
		t.Fatalf("stats after refresh = %+v, want 2 hits, 1 invalidation", st)
	}
}

// TestPlanCacheDashboardLine: the snapshot carries the counters and the
// rendered dashboard reports them.
func TestPlanCacheDashboardLine(t *testing.T) {
	e := newEngine(t, Config{}, workload.Companies(4, 3))
	localTable(t, e)
	collect(t, e, `SELECT v FROM nums WHERE v < 5`)
	collect(t, e, `SELECT v FROM nums WHERE v < 9`)

	snap := e.Snapshot()
	if snap.PlanCache.Hits != 1 || snap.PlanCache.Misses != 1 {
		t.Fatalf("snapshot plan cache = %+v, want 1 hit, 1 miss", snap.PlanCache)
	}
	rendered := dashboard.Render(snap)
	if !strings.Contains(rendered, "Plan cache: 1 hits, 0 invalidations") {
		t.Fatalf("dashboard missing plan-cache line:\n%s", rendered)
	}
}
