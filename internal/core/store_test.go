package core

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/dashboard"
	"repro/internal/relation"
	"repro/internal/taskmgr"
	"repro/internal/workload"
)

// rowKeys extracts a sorted, comparable view of a one-column result.
func rowKeys(rows []relation.Tuple) []string {
	keys := make([]string, 0, len(rows))
	for _, row := range rows {
		keys = append(keys, row.Values[0].Str())
	}
	sort.Strings(keys)
	return keys
}

// TestEngineWarmStart is the tentpole end to end: a second engine over
// the first one's store answers the same query without paying, starts
// with informed estimators, and shows the warm-start dashboard panel.
func TestEngineWarmStart(t *testing.T) {
	dir := t.TempDir()
	ds := workload.Photos(60, 0.5, 0.6, 9)
	query := `SELECT img FROM photos WHERE isCat(img)`

	run1 := newEngine(t, Config{StorePath: dir}, ds)
	rows1, err := run1.QueryAndWait(query)
	if err != nil {
		t.Fatal(err)
	}
	paid1 := run1.Marketplace().Stats().HITsPosted
	if paid1 == 0 {
		t.Fatal("cold run posted no HITs")
	}
	if run1.WarmStart().CacheEntries != 0 {
		t.Fatalf("cold run warm-start summary = %+v", run1.WarmStart())
	}
	run1.Close() // drains and syncs the store

	run2 := newEngine(t, Config{StorePath: dir}, ds)
	// Replayed statistics are live before any question is asked.
	if st := run2.Manager().StatsFor("iscat"); st.SelTrials == 0 {
		t.Fatalf("run 2 starts with no selectivity evidence: %+v", st)
	}
	if run2.WarmStart().CacheEntries == 0 || run2.WarmStart().Observations == 0 {
		t.Fatalf("run 2 replayed nothing: %+v", run2.WarmStart())
	}
	rows2, err := run2.QueryAndWait(query)
	if err != nil {
		t.Fatal(err)
	}
	if paid2 := run2.Marketplace().Stats().HITsPosted; paid2 != 0 {
		t.Fatalf("warm run posted %d HITs, want 0 (everything cached)", paid2)
	}
	got1, got2 := rowKeys(rows1), rowKeys(rows2)
	if len(got1) != len(got2) {
		t.Fatalf("row counts differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("row %d differs: %q vs %q", i, got1[i], got2[i])
		}
	}

	snap := run2.Snapshot()
	if snap.Warmstart.Answers == 0 || snap.Warmstart.SavedCents == 0 {
		t.Fatalf("warm-start panel empty: %+v", snap.Warmstart)
	}
	if text := dashboard.Render(snap); !strings.Contains(text, "Warm start:") {
		t.Fatalf("dashboard missing warm-start panel:\n%s", text)
	}
	// The cold engine's dashboard must not show the panel.
	if strings.Contains(dashboard.Render(run1.Snapshot()), "Warm start:") {
		t.Fatal("cold dashboard shows a warm-start panel")
	}
}

// TestReputationDurability: a spammer blocked in run 1 receives no
// assignments in run 2 after replay — reputation evidence, not just
// answers, survives the restart.
func TestReputationDurability(t *testing.T) {
	dir := t.TempDir()
	ds := workload.Photos(80, 0.5, 0.6, 3)
	// A small crowd with a heavy spammer fraction: spammers answer
	// uniformly at random, so their majority agreement collapses.
	spammy := Config{StorePath: dir}
	newSpammyEngine := func() *Engine {
		e := newEngine(t, withCrowd(spammy, 12, 0.4), ds)
		return e
	}

	run1 := newSpammyEngine()
	if _, err := run1.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`); err != nil {
		t.Fatal(err)
	}
	quals := run1.Manager().WorkerQualities()
	if len(quals) == 0 {
		t.Fatal("no reputations accumulated")
	}
	worst := quals[0] // sorted suspects first
	if worst.Agreement >= 0.75 || worst.Votes < 10 {
		t.Skipf("no convincing spammer emerged (worst %+v)", worst)
	}
	run1.Close()

	run2 := newSpammyEngine()
	restored := findQuality(run2.Manager().WorkerQualities(), worst.ID)
	if restored.Votes != worst.Votes || restored.Agreed != worst.Agreed {
		t.Fatalf("reputation not replayed: run1 %+v, run2 %+v", worst, restored)
	}
	if blocked := run2.Manager().BlockedWorkers(10, 0.75); len(blocked) == 0 {
		t.Fatal("replayed reputation blocks nobody")
	}
	run2.Manager().EnableBlocklist(10, 0.75)
	// New work the cache cannot answer: a different filter over the same
	// photos (the Photos oracle also answers isOutdoor).
	if err := run2.Define(`
TASK isOutdoor(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Was this taken outdoors? %s", photo
  Response: YesNo
`); err != nil {
		t.Fatal(err)
	}
	if _, err := run2.QueryAndWait(`SELECT img FROM photos WHERE isOutdoor(img)`); err != nil {
		t.Fatal(err)
	}
	after := findQuality(run2.Manager().WorkerQualities(), worst.ID)
	if after.Votes != restored.Votes {
		t.Fatalf("blocked spammer %s still answered: votes %d → %d",
			worst.ID, restored.Votes, after.Votes)
	}
	// The run still completed: someone else did the work.
	if run2.Marketplace().Stats().HITsPosted == 0 {
		t.Fatal("run 2 posted no HITs")
	}
}

func findQuality(quals []taskmgr.WorkerQuality, id string) taskmgr.WorkerQuality {
	for _, q := range quals {
		if q.ID == id {
			return q
		}
	}
	return taskmgr.WorkerQuality{}
}

// withCrowd pins a small spam-heavy crowd onto cfg.
func withCrowd(cfg Config, workers int, spam float64) Config {
	cfg.Crowd.Seed = 7
	cfg.Crowd.Workers = workers
	cfg.Crowd.MeanSkill = 0.95
	cfg.Crowd.SkillStd = 0.01
	cfg.Crowd.SpamFraction = spam
	cfg.Crowd.AbandonRate = 1e-12
	cfg.Crowd.BatchPenalty = 1e-6
	return cfg
}

// TestSaveLoadCacheMerge is the regression test for routing
// SaveCache/LoadCache through the store's record format: loading over a
// non-empty cache overwrites saved keys and keeps the rest.
func TestSaveLoadCacheMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.qks")
	ds := workload.Photos(20, 0.5, 0.6, 2)

	e1 := newEngine(t, Config{}, ds)
	if _, err := e1.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`); err != nil {
		t.Fatal(err)
	}
	if e1.Manager().Cache().Len() == 0 {
		t.Fatal("nothing cached to save")
	}
	if err := e1.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(t, Config{}, ds)
	// Pre-populate e2's cache: one key the file will overwrite, one
	// unrelated key that must survive the merge.
	img := ds.Tables[0].Snapshot()[0].Get("img")
	overlap := cache.NewKey("isCat", []relation.Value{img})
	e2.Manager().Cache().Put(overlap, cache.Entry{Answers: []relation.Value{relation.NewBool(false)}})
	unrelated := cache.NewKey("isCat", []relation.Value{relation.NewString("not-in-file")})
	e2.Manager().Cache().Put(unrelated, cache.Entry{Answers: []relation.Value{relation.NewBool(true)}})

	if err := e2.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if got, want := e2.Manager().Cache().Len(), e1.Manager().Cache().Len()+1; got != want {
		t.Fatalf("merged cache has %d entries, want %d", got, want)
	}
	saved, _ := e1.Manager().Cache().Peek(overlap)
	merged, ok := e2.Manager().Cache().Peek(overlap)
	if !ok || len(merged.Answers) != len(saved.Answers) {
		t.Fatalf("overlapping key not overwritten: %+v vs %+v", merged, saved)
	}
	if _, ok := e2.Manager().Cache().Peek(unrelated); !ok {
		t.Fatal("unrelated key lost in merge")
	}
	// A warm e2 answers the isCat query without posting HITs.
	if _, err := e2.QueryAndWait(`SELECT img FROM photos WHERE isCat(img)`); err != nil {
		t.Fatal(err)
	}
	if paid := e2.Marketplace().Stats().HITsPosted; paid != 0 {
		t.Fatalf("warm cache still posted %d HITs", paid)
	}
	// Missing file stays a cold start, not an error.
	if err := e2.LoadCache(filepath.Join(t.TempDir(), "missing.qks")); err != nil {
		t.Fatal(err)
	}
}
