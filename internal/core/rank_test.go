package core

import (
	"strings"
	"testing"

	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/rank"
	"repro/internal/workload"
)

const rankTaskSrc = `
TASK rateSq(Image img)
RETURNS Int:
  TaskType: Rating
  Text: "Rate this item from 1 to 9. %s", img
  Response: Rating(1, 9)
  Compare: orderSq

TASK orderSq(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order these items from worst to best."
  Response: Order
  GroupSize: 5
`

// newRankEngine builds an engine over a RankItems dataset with both the
// rating surface and its comparison companion, under a near-perfect
// crowd so order assertions are exact.
func newRankEngine(t *testing.T, n int) *Engine {
	t.Helper()
	ds := workload.RankItems(n, 9, "rateSq", 3)
	cfg := Config{
		Oracle: workload.Combine(ds.Oracle, workload.OrderOracle(ds.Tables[0], "orderSq")),
		Crowd: crowd.Config{Seed: 5, Workers: 200, MeanSkill: 0.9999,
			SkillStd: 1e-9, BatchPenalty: 1e-9,
			SpamFraction: 1e-12, AbandonRate: 1e-12},
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for _, tab := range ds.Tables {
		if err := e.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Define(rankTaskSrc); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineRankOrderBy drives the human-powered sort end to end: the
// optimizer chooses a strategy (hybrid here — fresh engines cannot
// certify rating agreement, and hybrid undercuts all-pairs compare),
// comparison HITs flow through the query's scope, and the rows stream
// out in the latent order.
func TestEngineRankOrderBy(t *testing.T) {
	e := newRankEngine(t, 24)
	rows, err := e.QueryAndWait(`SELECT img, truth FROM items ORDER BY rateSq(img)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Get("truth").Float() < rows[i-1].Get("truth").Float() {
			t.Fatalf("row %d out of order: %v after %v", i, rows[i].Get("truth"), rows[i-1].Get("truth"))
		}
	}
	queries := e.Queries()
	stats := queries[len(queries)-1].Exec.RankStats()
	if len(stats) != 1 {
		t.Fatalf("RankStats = %v", stats)
	}
	rs := stats[0]
	if rs.Strategy != string(rank.StrategyHybrid) {
		t.Fatalf("strategy = %s, want hybrid on a fresh engine with a Compare companion", rs.Strategy)
	}
	if rs.RateAsks != 24 || rs.CompareHITs == 0 {
		t.Fatalf("stats = %+v, want a rating pass plus comparison refinement", rs)
	}
	if full := rank.CompareHITCount(24, 5, 0); rs.CompareHITs >= full {
		t.Fatalf("hybrid paid %d comparison HITs, all-pairs costs %d", rs.CompareHITs, full)
	}

	// The dashboard's sort panel prices the avoided comparisons.
	snap := e.Snapshot()
	if snap.Savings.SortCompareHITs != int64(rs.CompareHITs) || snap.Savings.SortRateHITs == 0 {
		t.Fatalf("savings = %+v", snap.Savings)
	}
	if snap.Savings.SortSavedCents <= 0 {
		t.Fatalf("SortSavedCents = %v", snap.Savings.SortSavedCents)
	}
	if !strings.Contains(dashboard.Render(snap), "Sort: ") {
		t.Fatal("dashboard render lacks the sort panel")
	}
}

// TestEngineRankTopKPushdown: with LIMIT k the comparison work shrinks
// to the tournament, and the first k rows are still exactly right.
func TestEngineRankTopKPushdown(t *testing.T) {
	e := newRankEngine(t, 30)
	// Force the compare strategy so the test pins tournament economics
	// (the default chooser would pick hybrid).
	e.cfg.Exec.RankStrategy = nil // engine default installs the chooser at query start
	rows, err := e.QueryAndWait(`SELECT img, truth FROM items ORDER BY rateSq(img) DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Get("truth").Float() > rows[i-1].Get("truth").Float() {
			t.Fatalf("row %d out of order under DESC", i)
		}
	}
	queries := e.Queries()
	rs := queries[len(queries)-1].Exec.RankStats()[0]
	if full := rank.CompareHITCount(30, 5, 0); rs.CompareHITs >= full {
		t.Fatalf("top-k paid %d comparison HITs, full ordering costs %d", rs.CompareHITs, full)
	}
}

// TestRankAgreementSurvivesRestart: comparison agreement journaled
// through the knowledge store seeds a fresh engine's ChooseRankStrategy
// evidence before it posts a single HIT.
func TestRankAgreementSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ds := workload.RankItems(20, 9, "rateSq", 3)
	mkCfg := func() Config {
		return Config{
			Oracle: workload.Combine(ds.Oracle, workload.OrderOracle(ds.Tables[0], "orderSq")),
			Crowd: crowd.Config{Seed: 5, Workers: 200, MeanSkill: 0.9999,
				SkillStd: 1e-9, BatchPenalty: 1e-9,
				SpamFraction: 1e-12, AbandonRate: 1e-12},
			StorePath: dir,
		}
	}
	e1, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range ds.Tables {
		if err := e1.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Define(rankTaskSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.QueryAndWait(`SELECT img FROM items ORDER BY rateSq(img)`); err != nil {
		t.Fatal(err)
	}
	want, n1 := e1.Manager().RankAgreement("orderSq")
	if n1 == 0 {
		t.Fatal("run 1 accumulated no comparison evidence")
	}
	e1.Close()

	e2, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, n2 := e2.Manager().RankAgreement("orderSq")
	if n2 != n1 || got != want {
		t.Fatalf("warm start replayed (%.3f, %d), run 1 ended with (%.3f, %d)", got, n2, want, n1)
	}
}

// TestRankAgreementWarmsChooser: comparison HITs feed the pairwise
// agreement estimator the optimizer's hybrid window model reads.
func TestRankAgreementWarmsChooser(t *testing.T) {
	e := newRankEngine(t, 20)
	if _, err := e.QueryAndWait(`SELECT img FROM items ORDER BY rateSq(img)`); err != nil {
		t.Fatal(err)
	}
	est, n := e.Manager().RankAgreement("orderSq")
	if n == 0 {
		t.Fatal("no comparison-agreement evidence accumulated")
	}
	if est < 0.9 {
		t.Fatalf("agreement estimate %.2f under a near-perfect crowd", est)
	}
}
