package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/qlang"
)

// planCache memoizes logical plans keyed by their normalized SQL
// fingerprint (qlang.NormalizeQuery — literals stripped), so repeated
// query shapes skip parsing-independent planning work: plan construction,
// pushdown and the pre-filter cost walk.
//
// Correctness invariants:
//
//   - Literals are re-bound on every hit. The cached template records
//     where each stripped literal lives in the plan; a hit deep-clones
//     the template with the fresh statement's constants substituted, so
//     two queries differing only in literals share a template yet each
//     executes with its own values.
//
//   - The key embeds a config epoch, bumped whenever the engine's
//     environment changes in ways planning observes — new task
//     definitions, new tables. Old entries die wholesale.
//
//   - Adaptive pre-filter decisions are never trusted across queries.
//     A hit re-runs plan.ApplyPreFilters over the fresh clone with the
//     live cost decider (fed by the Statistics Manager); if the decision
//     vector differs from the one recorded at miss time, the Statistics
//     Manager's evidence has crossed an optimizer threshold and the
//     entry is counted as invalidated (and refreshed), not hit.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // key → element whose Value is *planEntry
	lru     list.List                // front = most recently used

	hits          int64
	misses        int64
	invalidations int64
	savedNs       int64
}

type planEntry struct {
	key string
	// template is the pre-ApplyPreFilters plan clone; hits clone it
	// again (with substitution), so the cached tree is never executed
	// or mutated directly.
	template plan.Node
	// stmt is the statement the template was planned from; its literal
	// list (qlang.CollectStmtLiterals order) aligns index-for-index
	// with slots.
	stmt *qlang.SelectStmt
	// slots are the template plan's literal nodes, one per statement
	// literal, targeted by substitution on a hit.
	slots []*qlang.Literal
	// decisions is the pre-filter decision vector recorded when the
	// entry was (re)planned, in ApplyPreFilters walk order.
	decisions []plan.PreFilterDecision
	// planNs is the measured planning cost this entry saves per hit.
	planNs int64
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = 256
	}
	return &planCache{max: max, entries: make(map[string]*list.Element)}
}

// planCacheKey builds the cache key for a query under the given epoch
// and adaptive-join setting. ok is false when the text cannot be
// fingerprinted (never for a statement that already parsed).
func planCacheKey(sql string, epoch int64, adaptive bool) (string, bool) {
	norm, err := qlang.NormalizeQuery(sql)
	if err != nil {
		return "", false
	}
	return fmt.Sprintf("%d|%t|%s", epoch, adaptive, norm), true
}

// lookup returns the entry for key, refreshing its LRU position.
func (c *planCache) lookup(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry)
}

// store inserts or replaces the entry, evicting the least recently used
// entry past capacity.
func (c *planCache) store(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		delete(c.entries, oldest.Value.(*planEntry).key)
		c.lru.Remove(oldest)
	}
}

func (c *planCache) noteHit(savedNs int64) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.savedNs, savedNs)
}
func (c *planCache) noteMiss()       { atomic.AddInt64(&c.misses, 1) }
func (c *planCache) noteInvalidate() { atomic.AddInt64(&c.invalidations, 1) }

// PlanCacheStats is the observable counter set (dashboard, tests).
type PlanCacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	SavedMs       float64
}

func (c *planCache) stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          atomic.LoadInt64(&c.hits),
		Misses:        atomic.LoadInt64(&c.misses),
		Invalidations: atomic.LoadInt64(&c.invalidations),
		SavedMs:       float64(atomic.LoadInt64(&c.savedNs)) / 1e6,
	}
}

// Plan-cache outcomes, annotated onto plan spans by startQuery.
const (
	planOutcomeHit         = "hit"
	planOutcomeMiss        = "miss"
	planOutcomeInvalidated = "invalidated"
	planOutcomeUncached    = "uncached"
)

// buildPlan produces the executable plan for one query, through the
// cache when it is enabled and the caller did not opt out. The decider
// (nil when adaptive joins are off) is invoked live on both misses and
// hits; on a hit its decision vector is compared against the entry's.
// outcome reports how the plan cache participated (planOutcome*).
func (e *Engine) buildPlan(sql string, stmt *qlang.SelectStmt, script *qlang.Script, adaptive bool, decide plan.PreFilterDecider, useCache bool) (node plan.Node, outcome string, err error) {
	var recorded []plan.PreFilterDecision
	var recording plan.PreFilterDecider
	if decide != nil {
		recording = func(join, filter *qlang.TaskDef, l, r int) plan.PreFilterDecision {
			d := decide(join, filter, l, r)
			recorded = append(recorded, d)
			return d
		}
	}

	cache := e.plans
	key, keyOK := "", false
	if cache != nil && useCache {
		key, keyOK = planCacheKey(sql, atomic.LoadInt64(&e.planEpoch), adaptive)
	}

	if keyOK {
		if entry := cache.lookup(key); entry != nil {
			if node, outcome, ok := e.replanFromEntry(entry, stmt, script, adaptive, recording, &recorded); ok {
				return node, outcome, nil
			}
		}
	}

	// Miss (or cache bypassed): full planning pass.
	start := time.Now()
	node, err = plan.Build(stmt, script, e.catalog)
	if err != nil {
		return nil, "", err
	}
	node = plan.Pushdown(node)

	var entry *planEntry
	if keyOK {
		// Snapshot the template before ApplyPreFilters mutates the tree.
		entry = newPlanEntry(key, node, stmt)
	}
	if adaptive {
		node = plan.ApplyPreFilters(node, script, recording)
	}
	planNs := time.Since(start).Nanoseconds()
	if entry != nil {
		entry.decisions = recorded
		entry.planNs = planNs
		cache.noteMiss()
		cache.store(entry)
		return node, planOutcomeMiss, nil
	}
	return node, planOutcomeUncached, nil
}

// newPlanEntry clones the pre-ApplyPreFilters plan into a cache template
// and maps the statement's literal order onto the clone's literal nodes.
// It returns nil when the plan's literals cannot be tracked back to the
// statement (planning rewrote them), making the query uncacheable.
func newPlanEntry(key string, node plan.Node, stmt *qlang.SelectStmt) *planEntry {
	template, rec := plan.Clone(node, nil)
	lits := qlang.CollectStmtLiterals(stmt)
	slots := make([]*qlang.Literal, len(lits))
	for i, l := range lits {
		cl, ok := rec[l]
		if !ok {
			return nil
		}
		slots[i] = cl
	}
	return &planEntry{key: key, template: template, stmt: stmt, slots: slots}
}

// replanFromEntry instantiates a cached template for a fresh statement:
// substitute the fresh literals into a deep clone, then re-run the live
// pre-filter decider over it. A decision vector differing from the
// recorded one means the Statistics Manager's evidence moved an
// optimizer decision across its threshold — the entry is refreshed and
// counted as an invalidation rather than a hit.
func (e *Engine) replanFromEntry(entry *planEntry, stmt *qlang.SelectStmt, script *qlang.Script, adaptive bool, recording plan.PreFilterDecider, recorded *[]plan.PreFilterDecision) (plan.Node, string, bool) {
	fresh := qlang.CollectStmtLiterals(stmt)
	if len(fresh) != len(entry.slots) {
		// Same fingerprint must mean isomorphic literal lists; a mismatch
		// means the normalizer and the collector disagree — fall back to
		// full planning rather than risk binding the wrong constant.
		return nil, "", false
	}
	sub := make(map[*qlang.Literal]qlang.Expr, len(fresh))
	for i, slot := range entry.slots {
		sub[slot] = &qlang.Literal{Value: fresh[i].Value}
	}
	node, _ := plan.Clone(entry.template, sub)
	if adaptive {
		node = plan.ApplyPreFilters(node, script, recording)
		if !decisionsEqual(*recorded, entry.decisions) {
			e.plans.noteInvalidate()
			// Refresh the recorded vector so the next identical query hits
			// under the new stats regime.
			c := e.plans
			c.mu.Lock()
			entry.decisions = append([]plan.PreFilterDecision(nil), *recorded...)
			c.mu.Unlock()
			return node, planOutcomeInvalidated, true
		}
	}
	e.plans.noteHit(entry.planNs)
	return node, planOutcomeHit, true
}

func decisionsEqual(a, b []plan.PreFilterDecision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
