package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/crowd"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// TestConcurrentSharedQueriesRace drives 110 concurrent streaming
// queries — all opted into cross-query HIT sharing behind an admission
// gate — through one engine, under -race in CI. It asserts that every
// query's result set equals its own table's ground truth (sharing
// must never leak another tenant's rows or flip an answer), that
// per-query sunk costs sum exactly to the account's spend (no
// cross-scope budget leakage), and that Close leaks no goroutines.
func TestConcurrentSharedQueriesRace(t *testing.T) {
	const (
		queries  = 110
		perQuery = 4
	)
	before := runtime.NumGoroutine()
	func() {
		schema := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindImage})
		want := make([][]string, queries) // per-query ground truth
		oracle := crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
			if len(args) == 0 {
				return relation.Null
			}
			return relation.NewBool(strings.Contains(args[0].Str(), "feline"))
		})
		e, err := New(Config{
			Oracle: oracle,
			Crowd: crowd.Config{
				// Exactly-perfect crowd: answers equal ground truth no
				// matter which worker drew which question in what order,
				// so the per-query assertions hold under any race.
				Seed: 9, Workers: 50, MeanSkill: 1.0, SkillStd: 1e-12,
				SpamFraction: 1e-12, AbandonRate: 1e-12, BatchPenalty: 1e-12,
			},
			MaxInflightHITs: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for q := 0; q < queries; q++ {
			tab := relation.NewTable(fmt.Sprintf("mtq%03d", q), schema)
			for j := 0; j < perQuery; j++ {
				subject := "toaster"
				if (q+j)%2 == 0 {
					subject = "feline"
				}
				key := fmt.Sprintf("q%03d-%d-%s", q, j, subject)
				if subject == "feline" {
					want[q] = append(want[q], key)
				}
				if err := tab.InsertValues(relation.NewImage(key)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Register(tab); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Define(`
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a photo of a cat? %s", photo
  Response: YesNo
`); err != nil {
			t.Fatal(err)
		}
		e.Manager().SetBasePolicy(taskmgr.Policy{
			Assignments: 1, BatchSize: 5, PriceCents: 1,
			Linger: time.Minute, UseCache: false,
		})
		// Mild pacing so the tenants overlap in virtual time and the
		// shared-batch path is actually exercised, not just available.
		e.Clock().SetPace(1e-5)
		defer e.Clock().SetPace(0)

		got := make([][]string, queries)
		spent := make([]budget.Cents, queries)
		errs := make([]error, queries)
		var wg sync.WaitGroup
		for q := 0; q < queries; q++ {
			q := q
			wg.Add(1)
			go func() {
				defer wg.Done()
				rows, err := e.Query(context.Background(),
					fmt.Sprintf("SELECT img FROM mtq%03d WHERE isCat(img)", q),
					WithSharedBatching(true))
				if err != nil {
					errs[q] = err
					return
				}
				defer rows.Close()
				for rows.Next() {
					got[q] = append(got[q], rows.Tuple().Values[0].Str())
				}
				errs[q] = rows.Err()
				spent[q] = rows.Handle().SunkCents()
			}()
		}
		wg.Wait()
		e.Clock().SetPace(0)
		waitQuiesce(t, e)

		var sum budget.Cents
		for q := 0; q < queries; q++ {
			if errs[q] != nil {
				t.Fatalf("query %d: %v", q, errs[q])
			}
			sort.Strings(got[q])
			sort.Strings(want[q])
			if strings.Join(got[q], ",") != strings.Join(want[q], ",") {
				t.Fatalf("query %d results drifted under sharing:\n got %v\nwant %v", q, got[q], want[q])
			}
			sum += spent[q]
		}
		if acct := e.Manager().Account().Spent(); sum != acct {
			t.Fatalf("budget leaked across scopes: per-query sunk costs sum to %v, account spent %v", sum, acct)
		}
		if sh := e.Manager().Sharing(); sh.SharedHITs == 0 {
			t.Fatalf("no HIT was ever co-batched across %d paced concurrent queries", queries)
		}
		e.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
