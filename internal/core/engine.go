// Package core wires Qurk's components — storage, language, planner,
// executor, task manager, marketplace, crowd, optimizer, cache, models,
// dashboard — into the engine depicted in Figure 1 of the paper.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/dashboard"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/qerr"
	"repro/internal/qlang"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/taskmgr"
)

// Config parameterizes an engine instance.
type Config struct {
	// Crowd configures the simulated worker population.
	Crowd crowd.Config
	// Oracle supplies ground truth for the simulated crowd; required
	// unless Pool is set.
	Oracle crowd.Oracle
	// Pool overrides the simulated crowd with a custom worker pool.
	Pool mturk.WorkerPool
	// BudgetCents caps total spend (0 = unlimited).
	BudgetCents budget.Cents
	// Exec carries executor knobs (join blocks, pairwise mode,
	// grouped filters, queue sizes). Mgr/Script/FilterOrder fields are
	// managed by the engine.
	Exec exec.Config
	// AutoTune runs the optimizer over every defined task (assignments
	// from the redundancy model, batch size from accuracy decay).
	AutoTune bool
	// AdaptiveFilters installs the optimizer's live filter reordering.
	AdaptiveFilters bool
	// AdaptiveJoins enables cost-based join pre-filtering: the planner
	// wraps a human join's inputs in feature-filter stages when
	// optimizer.DecidePreFilter — fed live selectivity — predicts the
	// filter pays for itself by shrinking the cross product, and the
	// executor re-checks that decision between filter blocks.
	AdaptiveJoins bool
	// AttachModels creates a confidence-gated naive Bayes task model
	// for every boolean task, enabling classifier substitution.
	AttachModels bool
	// ModelMinExamples / ModelMinConfidence tune attached models
	// (defaults 30 and 0.85).
	ModelMinExamples   int
	ModelMinConfidence float64
	// StorePath opens (creating if needed) the durable knowledge store
	// at this directory. Everything the engine learns from the crowd —
	// cache entries, selectivity/latency observations, model training
	// examples, worker reputations — streams to its WAL; at start the
	// store is replayed so a fresh engine begins with a warm cache,
	// informed estimators, trained models and already-blocked spammers.
	// Empty means no persistence (seed behavior).
	StorePath string
	// MaxInflightHITs gates batch posting: at most this many
	// scheduler-admitted HITs are in flight at once; further batches
	// queue in priority / weighted-fair-share order (see WithPriority
	// and WithWeight) so a burst of concurrent queries degrades
	// gracefully instead of flooding the marketplace. 0 = unlimited.
	MaxInflightHITs int
	// PlanCacheSize bounds the normalized-SQL plan cache (LRU entries).
	// 0 means the default (256); negative disables plan caching
	// entirely. Individual queries can opt out with WithPlanCache.
	PlanCacheSize int
	// Backends enables pluggable worker backends: the simulated crowd
	// is joined by an LLM worker crowd and/or an MTurk-shaped HTTP
	// service behind a per-task router. Nil runs on the plain simulated
	// marketplace (seed behavior, byte-identical verify fingerprints).
	Backends *BackendsConfig
	// Inference selects the answer-inference method and adaptive
	// redundancy parameters. Nil keeps seed-identical majority voting.
	Inference *InferenceConfig
	// Trace turns on the observability layer: every query gets a span
	// tree (query → plan → operator → batch → HIT → assignment) on the
	// virtual clock, and the engine keeps a metrics registry
	// (Engine.Metrics) covering HIT round-trips, admission waits, batch
	// fill, cache hit rates and spend. Off (the default) costs nothing:
	// no spans, no counters, no allocations on any hot path.
	Trace bool
}

// InferenceConfig turns on joint worker-quality/answer inference.
type InferenceConfig struct {
	// Method is "majority" (the default) or "em". Under "em", eligible
	// HITs post at MinAssignments and extend one assignment at a time —
	// up to each task's Assignments cap — until every item's posterior
	// reaches TargetConfidence. A task's Infer: property overrides the
	// method per task.
	Method string
	// MinAssignments is the adaptive posting floor (0 = the manager
	// default, 2). A task's MinAssignments: property overrides it.
	MinAssignments int
	// TargetConfidence is the posterior stopping threshold
	// (0 = the manager default, 0.85).
	TargetConfidence float64
}

// BackendsConfig wires additional worker backends into the engine. The
// simulated crowd is always a member (named "sim"); tasks reach the
// others via a qlang `Backend:` pin or, with Route set, the optimizer's
// cost/quality chooser.
type BackendsConfig struct {
	// LLM enables an LLM worker crowd when LLM.Model is set. The
	// crowd shares the engine clock, so runs stay deterministic.
	LLM backend.LLMConfig
	// HTTP enables the MTurk-shaped HTTP driver when HTTP.BaseURL is
	// set. Its Clock field is managed by the engine. HITs routed here
	// complete on wall time — exclude it from deterministic verifies.
	HTTP backend.HTTPConfig
	// Default names the backend unrouted tasks use ("" = "sim").
	Default string
	// Route installs the optimizer's ChooseBackend as the router's
	// chooser for unpinned tasks, fed by each backend's advertised
	// price and quality priors and the live backend book.
	Route bool
}

// QueryHandle tracks one submitted query.
type QueryHandle struct {
	ID        int
	SQL       string
	Plan      plan.Node
	Exec      *exec.Query
	StartedAt mturk.VirtualTime
	engine    *Engine
	scope     *taskmgr.Scope
	span      *obs.Span // query root span; nil when tracing is off
}

// Wait blocks until the query finishes and returns its rows.
//
// Deprecated: Wait cannot report errors — failures hide in
// Exec.Errors(). Iterate Rows (or call Err after Wait) instead.
func (h *QueryHandle) Wait() []relation.Tuple { return h.Exec.Wait() }

// Result returns the pollable results table.
func (h *QueryHandle) Result() *relation.Table { return h.Exec.Result() }

// Rows returns a fresh streaming cursor over the query's results from
// the beginning.
func (h *QueryHandle) Rows() *Rows { return &Rows{h: h} }

// Err reports the query's terminal error through the typed taxonomy
// (nil / ErrCanceled / ErrDeadline / ErrBudgetExhausted / first
// operator error). See Rows.Err.
func (h *QueryHandle) Err() error { return h.Exec.Err() }

// Cancel terminates the query: outstanding HITs are expired at the
// marketplace and unspent budget released. Idempotent; a no-op once
// the query has finished.
func (h *QueryHandle) Cancel() { h.Exec.Cancel(qerr.ErrCanceled) }

// Canceled reports whether the query was canceled before completing.
func (h *QueryHandle) Canceled() bool { return h.Exec.Canceled() }

// SunkCents reports the money this query actually consumed: HITs
// posted minus refunds for assignments expired by cancellation.
func (h *QueryHandle) SunkCents() budget.Cents { return h.scope.Spent() }

// Trace returns the query's root span, or nil when the engine runs
// without Config.Trace.
func (h *QueryHandle) Trace() *obs.Span { return h.span }

// Explain renders the per-operator EXPLAIN ANALYZE table (rows, HITs,
// assignments, cost, virtual latency) from the query's trace. It is
// most useful once the query has finished; a live query shows the
// progress so far. Empty when tracing is off.
func (h *QueryHandle) Explain() string {
	if h.span == nil {
		return ""
	}
	return obs.ExplainAnalyze(h.span)
}

// Engine is a running Qurk instance.
type Engine struct {
	cfg     Config
	catalog *relation.Catalog
	clock   *mturk.Clock
	market  *mturk.Marketplace
	pool    *crowd.Pool     // nil when Config.Pool was supplied
	router  *backend.Router // nil without Config.Backends
	httpBE  *backend.HTTP   // nil unless Backends.HTTP was enabled
	mgr     *taskmgr.Manager
	opt     *optimizer.Optimizer
	store   *store.Store // nil unless Config.StorePath was set
	obs     *obs.Tracer  // nil unless Config.Trace was set
	warm    taskmgr.RestoreSummary
	plans   *planCache // nil when Config.PlanCacheSize < 0
	// planEpoch versions the planning environment (tasks, tables);
	// bumping it orphans every cached plan keyed under the old epoch.
	planEpoch int64

	mu      sync.Mutex
	script  *qlang.Script
	queries []*QueryHandle
	nextID  int
	closed  bool
}

// New builds and starts an engine; callers must Close it.
func New(cfg Config) (*Engine, error) {
	var pool mturk.WorkerPool
	var simPool *crowd.Pool
	if cfg.Pool != nil {
		pool = cfg.Pool
	} else {
		if cfg.Oracle == nil {
			return nil, fmt.Errorf("core: config needs an Oracle (or a custom Pool)")
		}
		simPool = crowd.NewPool(cfg.Crowd, cfg.Oracle)
		pool = simPool
	}
	clock := mturk.NewClock()
	market := mturk.NewMarketplace(clock, pool)
	var be backend.Backend = backend.NewSim(market)
	var router *backend.Router
	var httpBE *backend.HTTP
	if bc := cfg.Backends; bc != nil {
		members := []backend.Backend{be}
		if bc.LLM.Model != nil {
			members = append(members, backend.NewLLM(clock, bc.LLM))
		}
		if bc.HTTP.BaseURL != "" {
			hcfg := bc.HTTP
			hcfg.Clock = clock
			h, err := backend.NewHTTP(hcfg)
			if err != nil {
				return nil, fmt.Errorf("core: http backend: %v", err)
			}
			httpBE = h
			members = append(members, h)
		}
		dflt := bc.Default
		if dflt == "" {
			dflt = "sim"
		}
		r, err := backend.NewRouter(dflt, members...)
		if err != nil {
			if httpBE != nil {
				httpBE.Close()
			}
			return nil, fmt.Errorf("core: %v", err)
		}
		router = r
		be = r
	}
	mgr := taskmgr.NewWithBackend(be, cache.New(), model.NewRegistry(), budget.NewAccount(cfg.BudgetCents))
	if cfg.MaxInflightHITs > 0 {
		mgr.SetAdmission(cfg.MaxInflightHITs)
	}
	if cfg.Inference != nil {
		mgr.SetInference(cfg.Inference.Method, cfg.Inference.MinAssignments, cfg.Inference.TargetConfidence)
	}
	e := &Engine{
		cfg:     cfg,
		catalog: relation.NewCatalog(),
		clock:   clock,
		market:  market,
		pool:    simPool,
		router:  router,
		httpBE:  httpBE,
		mgr:     mgr,
		opt:     optimizer.New(mgr),
		script:  &qlang.Script{},
	}
	if router != nil && cfg.Backends.Route {
		router.SetChooser(e.opt.BackendChooser(e.backendCandidates()))
	}
	if cfg.Trace {
		e.obs = obs.New(clock.Now, obs.NewRegistry())
		mgr.SetObs(e.obs)
	}
	if cfg.PlanCacheSize >= 0 {
		e.plans = newPlanCache(cfg.PlanCacheSize)
	}
	if cfg.StorePath != "" {
		st, err := store.Open(cfg.StorePath)
		if err != nil {
			return nil, fmt.Errorf("core: open store: %v", err)
		}
		// Replay before anything can submit work, then stream every new
		// learned artifact back to the WAL.
		st.View(func(s *store.State) { e.warm = mgr.Restore(s) })
		mgr.SetJournal(st)
		e.store = st
	}
	go clock.Run(e.stopped)
	return e, nil
}

// backendCandidates describes the configured backends to ChooseBackend:
// the simulated crowd at the default policy price and the optimizer's
// assumed worker accuracy, the LLM crowd at its quoted price with its
// per-kind quality priors (a kind absent from a non-nil Quality map is
// not offered), and the HTTP service at its quoted price.
func (e *Engine) backendCandidates() []optimizer.BackendCandidate {
	bc := e.cfg.Backends
	pol := taskmgr.DefaultPolicy()
	cands := []optimizer.BackendCandidate{
		{Name: "sim", PriceCents: pol.PriceCents, Quality: e.opt.WorkerAccuracy},
	}
	if bc.LLM.Model != nil {
		price := bc.LLM.PriceCents
		if price <= 0 {
			price = pol.PriceCents
		}
		if len(bc.LLM.Quality) == 0 {
			cands = append(cands, optimizer.BackendCandidate{
				Name: "llm", PriceCents: price, Quality: e.opt.WorkerAccuracy,
			})
		} else {
			kinds := make([]qlang.TaskType, 0, len(bc.LLM.Quality))
			for k := range bc.LLM.Quality {
				kinds = append(kinds, k)
			}
			sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
			for _, k := range kinds {
				cands = append(cands, optimizer.BackendCandidate{
					Name: "llm", PriceCents: price,
					Quality: bc.LLM.Quality[k], Kinds: []qlang.TaskType{k},
				})
			}
		}
	}
	if bc.HTTP.BaseURL != "" {
		price := bc.HTTP.PriceCents
		if price <= 0 {
			price = pol.PriceCents
		}
		cands = append(cands, optimizer.BackendCandidate{
			Name: "http", PriceCents: price, Quality: e.opt.WorkerAccuracy,
		})
	}
	return cands
}

func (e *Engine) stopped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Close shuts the engine down. In-flight queries are canceled (their
// Rows streams end with ErrCanceled, open HITs are expired and unspent
// budget released), so no operator or watcher goroutine outlives Close.
// With a store configured, buffered knowledge records are drained and
// synced before Close returns, so the next engine replays everything
// this one learned.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	queries := append([]*QueryHandle(nil), e.queries...)
	e.mu.Unlock()
	for _, h := range queries {
		h.Exec.Cancel(fmt.Errorf("%w: engine closed", qerr.ErrCanceled))
	}
	for _, h := range queries {
		<-h.Exec.Done()
	}
	e.clock.Close()
	if e.httpBE != nil {
		e.httpBE.Close()
	}
	if e.store != nil {
		e.store.Close()
	}
}

// Catalog exposes table registration.
func (e *Engine) Catalog() *relation.Catalog { return e.catalog }

// Manager exposes the task manager (policies, cache, models, budget).
func (e *Engine) Manager() *taskmgr.Manager { return e.mgr }

// Marketplace exposes the simulated MTurk (dashboard, audience tasks).
func (e *Engine) Marketplace() *mturk.Marketplace { return e.market }

// Optimizer exposes the tuning component.
func (e *Engine) Optimizer() *optimizer.Optimizer { return e.opt }

// Router exposes the worker-backend router (nil when the engine runs on
// the plain simulated marketplace without Config.Backends).
func (e *Engine) Router() *backend.Router { return e.router }

// Clock exposes virtual time.
func (e *Engine) Clock() *mturk.Clock { return e.clock }

// Pool returns the simulated crowd, or nil when a custom pool is used.
func (e *Engine) Pool() *crowd.Pool { return e.pool }

// Register adds a table to the catalog. Registering bumps the plan-cache
// epoch: cached Scan nodes pin table identities, so a new table under a
// previously missing (or differently shaped) name must not resolve
// through a stale plan.
func (e *Engine) Register(t *relation.Table) error {
	if err := e.catalog.Register(t); err != nil {
		return err
	}
	atomic.AddInt64(&e.planEpoch, 1)
	return nil
}

// LoadCSV registers a table parsed from CSV.
func (e *Engine) LoadCSV(name string, r io.Reader) (*relation.Table, error) {
	t, err := relation.LoadCSV(name, r)
	if err != nil {
		return nil, err
	}
	if err := e.Register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Define parses TASK definitions (and ignores any queries) and registers
// them with the engine, applying auto-tuning and model attachment.
func (e *Engine) Define(src string) error {
	script, err := qlang.Parse(src)
	if err != nil {
		return err
	}
	return e.defineTasks(script.Tasks)
}

func (e *Engine) defineTasks(defs []*qlang.TaskDef) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(defs) > 0 {
		// New tasks change what the planner can resolve; orphan every
		// cached plan keyed under the old environment.
		atomic.AddInt64(&e.planEpoch, 1)
	}
	for _, def := range defs {
		if _, dup := e.script.Task(def.Name); dup {
			return fmt.Errorf("core: task %q already defined", def.Name)
		}
		if def.Backend != "" {
			if e.router == nil {
				return fmt.Errorf("core: task %q pins backend %q but no backend router is configured", def.Name, def.Backend)
			}
			if err := e.router.Pin(def.Name, def.Backend); err != nil {
				return fmt.Errorf("core: task %q: %v", def.Name, err)
			}
		}
		e.script.Tasks = append(e.script.Tasks, def)
		if e.cfg.AutoTune {
			e.mgr.SetPolicy(def.Name, e.opt.PolicyFor(def))
		}
		if e.cfg.AttachModels && isBoolean(def) {
			minEx := e.cfg.ModelMinExamples
			if minEx == 0 {
				minEx = 30
			}
			minConf := e.cfg.ModelMinConfidence
			if minConf == 0 {
				minConf = 0.85
			}
			e.mgr.Models().Attach(model.NewTaskModel(def.Name, model.NewNaiveBayes(), minEx, minConf))
		}
	}
	return nil
}

func isBoolean(def *qlang.TaskDef) bool {
	return len(def.Returns) == 1 && def.Returns[0].Name == "" &&
		def.Returns[0].Kind == relation.KindBool
}

// Tasks returns the currently defined tasks.
func (e *Engine) Tasks() []*qlang.TaskDef {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*qlang.TaskDef(nil), e.script.Tasks...)
}

// Run parses, plans and starts one SELECT query, returning its handle.
//
// Deprecated: use Query — it takes a context, per-query options and
// returns a streaming cursor with typed errors. Run remains as a shim
// (no cancellation context, engine-default options).
func (e *Engine) Run(sql string) (*QueryHandle, error) {
	stmt, err := qlang.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return e.runStmt(sql, stmt)
}

// RunScript executes a full script: TASK definitions first, then every
// query, returning one handle per query.
func (e *Engine) RunScript(src string) ([]*QueryHandle, error) {
	script, err := qlang.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := e.defineTasks(script.Tasks); err != nil {
		return nil, err
	}
	var handles []*QueryHandle
	for _, stmt := range script.Queries {
		h, err := e.runStmt(stmt.String(), stmt)
		if err != nil {
			return handles, err
		}
		handles = append(handles, h)
	}
	return handles, nil
}

func (e *Engine) runStmt(sql string, stmt *qlang.SelectStmt) (*QueryHandle, error) {
	return e.startQuery(context.Background(), sql, stmt, queryOptions{})
}

// startQuery plans and launches one SELECT under a context and
// per-query options; every public query entry point funnels through it.
func (e *Engine) startQuery(ctx context.Context, sql string, stmt *qlang.SelectStmt, o queryOptions) (*QueryHandle, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: engine closed")
	}
	script := e.script
	e.mu.Unlock()

	cfg := e.cfg.Exec
	cfg.Mgr = e.mgr
	cfg.Script = script
	cfg.Now = e.clock.Now
	if cfg.RankStrategy == nil {
		// Human-powered sorts run under the cost-chosen strategy:
		// compare vs rate vs hybrid, priced from policies and live
		// (or store-replayed) statistics.
		cfg.RankStrategy = e.opt.RankChooser()
	}

	// The scope carries this query's overrides and is what cancellation
	// propagates through: exec → taskmgr → marketplace.
	scope := e.mgr.NewScope()
	if o.budgetCents > 0 {
		scope.SetBudget(o.budgetCents)
	}
	for task, pol := range o.policies {
		scope.SetPolicy(task, pol)
	}
	if o.priority != 0 {
		scope.SetPriority(o.priority)
	}
	if o.shared {
		scope.SetShared(true)
	}
	if o.weight > 0 {
		scope.SetWeight(o.weight)
	}
	if o.label != "" {
		scope.SetLabel(o.label)
	}
	cfg.Scope = scope

	// Tracing: one root span per query; the scope carries it so
	// cancellation can close the whole tree, operators and HITs hang
	// their children off it via cfg.Trace and Request.Trace.
	var root *obs.Span
	if tr := e.obs; tr != nil {
		root = tr.StartRoot(obs.KindQuery, sql)
		scope.SetSpan(root)
		cfg.Trace = root
		tr.Registry().Counter(obs.MetricQueries).Add(1)
	}
	abandonTrace := func() {
		if root != nil {
			root.CloseTree()
			e.obs.Release(root)
		}
	}

	if e.cfg.AdaptiveFilters && cfg.FilterOrder == nil {
		cfg.FilterOrder = e.opt.FilterOrder(script)
	}
	adaptive := e.cfg.AdaptiveJoins
	if o.adaptive != nil {
		adaptive = *o.adaptive
	}
	var decide plan.PreFilterDecider
	if adaptive {
		decide = e.opt.PreFilterDeciderFor(cfg)
		if cfg.PreFilterKeep == nil {
			cfg.PreFilterKeep = e.opt.PreFilterKeepFor(cfg)
		}
	}
	var planSpan *obs.Span
	if root != nil {
		planSpan = root.Child(obs.KindPlan, "plan")
	}
	node, outcome, err := e.buildPlan(sql, stmt, script, adaptive, decide, !o.noPlanCache)
	if err != nil {
		abandonTrace()
		return nil, err
	}
	if planSpan != nil {
		planSpan.Annotate("plan_cache", outcome)
		planSpan.End()
		reg := e.obs.Registry()
		switch outcome {
		case planOutcomeHit:
			reg.Counter(obs.MetricPlanCacheHits).Add(1)
		case planOutcomeMiss, planOutcomeInvalidated:
			reg.Counter(obs.MetricPlanCacheMiss).Add(1)
		}
	}
	q, err := exec.StartContext(ctx, node, cfg)
	if err != nil {
		abandonTrace()
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		// Close raced the start; terminate the fresh query the way Close
		// would have.
		e.mu.Unlock()
		q.Cancel(fmt.Errorf("%w: engine closed", qerr.ErrCanceled))
		return nil, fmt.Errorf("core: engine closed")
	}
	e.nextID++
	h := &QueryHandle{
		ID: e.nextID, SQL: sql, Plan: node, Exec: q,
		StartedAt: e.clock.Now(), engine: e, scope: scope, span: root,
	}
	e.queries = append(e.queries, h)
	e.mu.Unlock()
	if o.deadline > 0 {
		// Virtual-time deadline: the clock fires it at simulated
		// now+deadline, deterministic under the event pump.
		e.clock.Schedule(o.deadline, func() { q.Cancel(qerr.ErrDeadline) })
	}
	return h, nil
}

// QueryAndWait runs one query to completion and returns its rows. A
// failure mid-query returns the completed prefix alongside the typed
// error (ErrBudgetExhausted, ErrCanceled, … — the first operator error
// is never silently dropped).
//
// Deprecated: use Query — it adds a context, per-query options and
// streaming results. QueryAndWait remains as a shim over it.
func (e *Engine) QueryAndWait(sql string) ([]relation.Tuple, error) {
	rows, err := e.Query(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []relation.Tuple
	for rows.Next() {
		out = append(out, rows.Tuple())
	}
	return out, rows.Err()
}

// Queries lists submitted query handles.
func (e *Engine) Queries() []*QueryHandle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*QueryHandle(nil), e.queries...)
}

// addJoinSavings folds every query's cross-product reduction into the
// savings panel: pairs the pre-filter stages kept away from workers,
// priced at the join task's per-pair share of a grid HIT.
func (e *Engine) addJoinSavings(s *dashboard.Savings, policyFor func(string) taskmgr.Policy) {
	lb, rb := e.cfg.Exec.JoinLeftBlock, e.cfg.Exec.JoinRightBlock
	if lb <= 0 {
		lb = 5
	}
	if rb <= 0 {
		rb = 5
	}
	e.mu.Lock()
	queries := append([]*QueryHandle(nil), e.queries...)
	e.mu.Unlock()
	for _, h := range queries {
		for _, red := range h.Exec.JoinReductions() {
			s.JoinPairsAvoided += red.PairsAvoided
			pol := policyFor(red.Task)
			perPair := float64(pol.PriceCents) * float64(pol.Assignments) / float64(lb*rb)
			s.JoinSavedCents += budget.Cents(float64(red.PairsAvoided) * perPair)
		}
	}
}

// addRankSavings folds every query's sort report into the savings
// panel: the comparison HITs the chosen strategy paid versus the
// all-pairs compare baseline for the same input, priced at the
// comparison (or, lacking one, the rating) task's policy.
func (e *Engine) addRankSavings(s *dashboard.Savings, policyFor func(string) taskmgr.Policy) {
	e.mu.Lock()
	queries := append([]*QueryHandle(nil), e.queries...)
	e.mu.Unlock()
	for _, h := range queries {
		for _, rs := range h.Exec.RankStats() {
			rk, ok := h.rankNodeFor(rs.Op)
			if !ok {
				continue
			}
			taskName := rk.Task.Name
			if rk.Compare != nil {
				taskName = rk.Compare.Name
			}
			pol := policyFor(taskName).Clamped()
			perHIT := budget.Cents(pol.PriceCents * int64(pol.Assignments))
			baseline := int64(rank.CompareHITCount(rs.Items, rs.GroupSize, 0))
			s.SortCompareHITs += int64(rs.CompareHITs)
			if rs.RateAsks > 0 {
				ratePol := policyFor(rk.Task.Name).Clamped()
				s.SortRateHITs += int64(rank.RateHITCount(rs.RateAsks, ratePol.BatchSize))
			}
			if avoided := baseline - int64(rs.CompareHITs); avoided > 0 && rk.Compare != nil {
				s.SortSavedCents += budget.Cents(avoided) * perHIT
			}
		}
	}
}

// rankNodeFor finds the query's Rank node with the given operator label.
func (h *QueryHandle) rankNodeFor(label string) (*plan.Rank, bool) {
	var found *plan.Rank
	plan.Walk(h.Plan, func(n plan.Node) {
		if rk, ok := n.(*plan.Rank); ok && found == nil && rk.Label() == label {
			found = rk
		}
	})
	return found, found != nil
}

// SaveCache persists the Task Cache to one standalone file in the
// knowledge store's record format, so a future engine (or process) can
// reuse paid-for answers — the paper's cross-query caching, extended
// across restarts. Engines with Config.StorePath set persist the cache
// continuously; SaveCache remains for explicit exports.
func (e *Engine) SaveCache(path string) error {
	return store.WriteRecordsFile(path, store.CacheRecords(e.mgr.Cache()))
}

// LoadCache merges a previously saved Task Cache (or a store snapshot)
// into the live cache: saved keys overwrite, other keys are kept. A
// missing file is not an error — a cold cache is valid.
func (e *Engine) LoadCache(path string) error {
	recs, err := store.ReadRecordsFile(path)
	if err != nil {
		return err
	}
	store.MergeCacheRecords(e.mgr.Cache(), recs)
	return nil
}

// PlanCacheStats reports the normalized-SQL plan cache's counters.
// All-zero when the cache is disabled.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return e.plans.stats()
}

// Store returns the durable knowledge store, or nil when none is
// configured.
func (e *Engine) Store() *store.Store { return e.store }

// Tracer returns the engine's span tracer, or nil when Config.Trace is
// off.
func (e *Engine) Tracer() *obs.Tracer { return e.obs }

// Metrics returns the engine's metrics registry, or nil when
// Config.Trace is off. The registry renders deterministically via
// WritePrometheus.
func (e *Engine) Metrics() *obs.Registry { return e.obs.Registry() }

// QueryTrace returns the root span of the query with the given ID, or
// nil when tracing is off or no such query was submitted.
func (e *Engine) QueryTrace(id int) *obs.Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, h := range e.queries {
		if h.ID == id {
			return h.span
		}
	}
	return nil
}

// WarmStart reports what the store replayed at engine start.
func (e *Engine) WarmStart() taskmgr.RestoreSummary { return e.warm }

// Snapshot builds the dashboard view (Figure 2).
func (e *Engine) Snapshot() dashboard.Snapshot {
	tasks := e.mgr.Stats()
	account := e.mgr.Account()
	snap := dashboard.Snapshot{
		NowMinutes: e.clock.Now().Minutes(),
		Budget: dashboard.BudgetInfo{
			Limit:     account.Limit(),
			Spent:     account.Spent(),
			Remaining: account.Remaining(),
		},
		Market: e.market.Stats(),
		Tasks:  tasks,
		Cache:  e.mgr.Cache().Stats(),
	}
	if e.router != nil {
		counts, saved := e.router.Counts()
		for _, name := range e.router.Members() {
			snap.Backends.Counts = append(snap.Backends.Counts,
				dashboard.BackendCount{Name: name, HITs: counts[name]})
		}
		snap.Backends.SavedCents = saved
	}
	if is := e.mgr.InferenceStats(); is.AdaptiveHITs > 0 || is.Method != "majority" {
		snap.Inference = dashboard.InferenceInfo{
			Method:          is.Method,
			AdaptiveHITs:    is.AdaptiveHITs,
			Extensions:      is.Extensions,
			ExtendFailures:  is.ExtendFailures,
			AssignmentsUsed: is.AssignmentsUsed,
			AssignmentsCap:  is.AssignmentsCap,
			SavedCents:      is.SavedCents,
		}
	}
	if e.plans != nil {
		pc := e.plans.stats()
		snap.PlanCache = dashboard.PlanCacheInfo{
			Hits:          pc.Hits,
			Misses:        pc.Misses,
			Invalidations: pc.Invalidations,
			SavedMs:       pc.SavedMs,
		}
	}
	for _, m := range e.mgr.Models().All() {
		snap.Models = append(snap.Models, m.Stats())
	}
	if quals := e.mgr.WorkerQualities(); len(quals) > 0 {
		if len(quals) > 8 {
			quals = quals[:8]
		}
		snap.Workers = quals
	}
	policyFor := func(task string) taskmgr.Policy {
		e.mu.Lock()
		def, ok := e.script.Task(task)
		e.mu.Unlock()
		if !ok {
			return taskmgr.DefaultPolicy()
		}
		return e.mgr.PolicyFor(def)
	}
	snap.Savings = dashboard.ComputeSavings(tasks, policyFor)
	e.addJoinSavings(&snap.Savings, policyFor)
	e.addRankSavings(&snap.Savings, policyFor)
	if sh := e.mgr.Sharing(); sh.SharedHITs > 0 {
		snap.Savings.SharedHITs = sh.SharedHITs
		snap.Savings.SharedItems = sh.CoBatchedItems
		snap.Savings.SharedSavedCents = sh.SavedCents
	}
	if e.store != nil {
		snap.Warmstart = dashboard.WarmstartInfo{
			Answers:      e.warm.CacheAnswers,
			Entries:      e.warm.CacheEntries,
			Observations: e.warm.Observations,
		}
		// Price each replayed entry at its task's policy: one batched
		// redundant question that did not have to be re-asked. Join
		// predicates are bought as grid HITs, so a cached pair costs a
		// per-pair share of the grid (mirroring addJoinSavings), not a
		// whole batched question.
		lb, rb := e.cfg.Exec.JoinLeftBlock, e.cfg.Exec.JoinRightBlock
		if lb <= 0 {
			lb = 5
		}
		if rb <= 0 {
			rb = 5
		}
		for task, entries := range e.warm.EntriesByTask {
			e.mu.Lock()
			def, ok := e.script.Task(task)
			e.mu.Unlock()
			pol := taskmgr.DefaultPolicy()
			if ok {
				pol = e.mgr.PolicyFor(def)
			}
			pol = pol.Clamped()
			perEntry := float64(pol.PriceCents) * float64(pol.Assignments) / float64(pol.BatchSize)
			if ok && def.Type == qlang.TaskJoinPredicate {
				perEntry = float64(pol.PriceCents) * float64(pol.Assignments) / float64(lb*rb)
			}
			snap.Warmstart.SavedCents += budget.Cents(float64(entries) * perEntry)
		}
	}
	// Remaining-work estimate: pending batched questions plus open
	// assignments, at one (price × assignment) unit each.
	snap.EstimatedRemainingCents = budget.Cents(e.mgr.Pending() + e.mgr.Inflight())
	e.mu.Lock()
	queries := append([]*QueryHandle(nil), e.queries...)
	e.mu.Unlock()
	now := e.clock.Now()
	for _, h := range queries {
		done := h.Exec.Result().Closed()
		snap.Queries = append(snap.Queries, dashboard.QueryInfo{
			ID:          h.ID,
			SQL:         h.SQL,
			PlanExplain: plan.Explain(h.Plan),
			Ops:         h.Exec.OpStats(),
			Done:        done,
			Canceled:    h.Exec.Canceled(),
			SunkCents:   h.scope.Spent(),
			Results:     h.Exec.Result().Len(),
			ElapsedMin:  (now - h.StartedAt).Minutes(),
			Errors:      int(h.Exec.ErrorCount()),
		})
	}
	return snap
}
