package core

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/qerr"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// Typed query errors. They surface (wrapped — test with errors.Is /
// errors.As) from Rows.Err, QueryHandle.Err and QueryAndWait.
var (
	// ErrCanceled reports the query's context was canceled, its Rows
	// closed early, or the engine shut down under it.
	ErrCanceled = qerr.ErrCanceled
	// ErrDeadline reports the query's WithDeadline virtual-time budget
	// (or its context deadline) expired first.
	ErrDeadline = qerr.ErrDeadline
	// ErrBudgetExhausted reports a budget — the engine account or a
	// per-query WithBudget cap — could not cover a HIT.
	ErrBudgetExhausted = qerr.ErrBudgetExhausted
)

// ParseError is a query-text error with line/column position.
type ParseError = qerr.ParseError

// queryOptions collects per-query overrides of the engine defaults.
type queryOptions struct {
	budgetCents budget.Cents
	deadline    time.Duration
	policies    map[string]taskmgr.Policy
	priority    int
	weight      int
	shared      bool
	adaptive    *bool
	noPlanCache bool
	label       string
}

// QueryOption customizes a single Query call, overriding the engine's
// global configuration for that query only.
type QueryOption func(*queryOptions)

// WithBudget caps this query's total spend. HITs beyond the cap fail
// with ErrBudgetExhausted; the engine-wide budget still applies on top.
func WithBudget(limit budget.Cents) QueryOption {
	return func(o *queryOptions) { o.budgetCents = limit }
}

// WithDeadline cancels the query with ErrDeadline after d of *virtual*
// time — the simulated marketplace minutes the dashboard reports, not
// wall time (use a context deadline for wall time).
func WithDeadline(d time.Duration) QueryOption {
	return func(o *queryOptions) { o.deadline = d }
}

// WithPolicy overrides the named task's policy (price, redundancy,
// batching, cache use) for this query only. TASK-definition clauses
// still win, exactly as they do over engine-level policies.
func WithPolicy(task string, p taskmgr.Policy) QueryOption {
	return func(o *queryOptions) {
		if o.policies == nil {
			o.policies = make(map[string]taskmgr.Policy)
		}
		o.policies[task] = p
	}
}

// WithAdaptiveJoins enables or disables cost-based join pre-filtering
// for this query, overriding Config.AdaptiveJoins.
func WithAdaptiveJoins(on bool) QueryOption {
	return func(o *queryOptions) { o.adaptive = &on }
}

// WithPlanCache enables or disables the normalized-SQL plan cache for
// this query only (default on when the engine's cache is enabled).
// Bypassing the cache plans from scratch and leaves the cache untouched
// — useful for A/B-verifying that cached and uncached plans agree.
func WithPlanCache(on bool) QueryOption {
	return func(o *queryOptions) { o.noPlanCache = !on }
}

// WithPriority orders this query's pending work ahead of (positive) or
// behind (negative) other queries when HIT batches are cut. Default 0.
func WithPriority(p int) QueryOption {
	return func(o *queryOptions) { o.priority = p }
}

// WithSharedBatching opts this query into cross-query HIT sharing: its
// task applications may fill one HIT together with those of other
// sharing queries whose effective posting policy matches, with the HIT
// cost split across the queries by item count (integer cents,
// deterministic rounding) so per-query budgets and the dashboard's
// per-query spend stay exact. Canceling a sharing query detaches its
// items from shared HITs — refunding its share of the unconsumed cost
// — rather than expiring the HIT under the other participants. Tasks
// defined with "Share: Yes" co-batch regardless of this option.
func WithSharedBatching(on bool) QueryOption {
	return func(o *queryOptions) { o.shared = on }
}

// WithWeight sets this query's fair-share weight (default 1) for the
// admission scheduler: at equal priority, a weight-2 query is granted
// HIT slots twice as often as a weight-1 query while both have batches
// queued. Only meaningful with Config.MaxInflightHITs set.
func WithWeight(w int) QueryOption {
	return func(o *queryOptions) { o.weight = w }
}

// WithLabel tags this query's scope for observability: with
// Config.Trace on, the query's HIT and cost metrics get an extra
// per-scope series under scope="label". Unlabeled queries (the
// default) only feed the aggregate series, keeping cardinality
// bounded. No effect when tracing is off.
func WithLabel(label string) QueryOption {
	return func(o *queryOptions) { o.label = label }
}

// Rows is a streaming cursor over one query's results, in the style of
// database/sql: tuples become visible as the executor's root operator
// emits them, while later HITs are still in flight, so callers see
// first rows long before the query completes.
//
//	rows, err := eng.Query(ctx, sql)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Tuple())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Next/Tuple are for a single consumer goroutine; Close (like
// database/sql's) may be called concurrently with Next to abort a
// blocked cursor — canceling the query unblocks it.
type Rows struct {
	h      *QueryHandle
	cursor int64
	buf    []relation.Tuple
	cur    relation.Tuple
	closed atomic.Bool
}

// Next blocks until the next tuple is available and reports whether it
// got one. It returns false when the stream ends — normally, by
// cancellation, or after Close; consult Err to distinguish.
func (r *Rows) Next() bool {
	if r.closed.Load() {
		return false
	}
	for len(r.buf) == 0 {
		fresh, cursor := r.h.Exec.Result().Wait(r.cursor)
		r.buf, r.cursor = fresh, cursor
		if len(fresh) == 0 {
			return false // closed and drained
		}
	}
	r.cur = r.buf[0]
	r.buf = r.buf[1:]
	return true
}

// Tuple returns the tuple the last successful Next positioned on.
func (r *Rows) Tuple() relation.Tuple { return r.cur }

// Err returns the query's terminal error through the typed taxonomy:
// nil for a clean run, ErrCanceled / ErrDeadline for terminated
// queries, ErrBudgetExhausted when a budget ran dry mid-query, or the
// first operator error otherwise. Meaningful once Next returned false,
// callable any time.
func (r *Rows) Err() error { return r.h.Err() }

// Close cancels whatever work the query still has outstanding — open
// HITs are expired and unspent budget released — and ends the stream.
// Closing an already-finished query is a no-op, so the usual
// defer rows.Close() never discards anything a full iteration read.
func (r *Rows) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.h.Cancel()
	return nil
}

// Handle exposes the underlying query handle (dashboard inspection,
// plan explain, sunk cost).
func (r *Rows) Handle() *QueryHandle { return r.h }

// Explain renders the query's EXPLAIN ANALYZE table from its trace —
// per operator: rows in/out, HITs, assignments, cost and virtual
// latency. Empty when the engine runs without Config.Trace.
func (r *Rows) Explain() string { return r.h.Explain() }

// Query parses, plans and starts one SELECT query under ctx, returning
// a streaming Rows cursor. Canceling ctx (or hitting its deadline, or a
// WithDeadline virtual deadline) cancels the query end to end: the
// executor stops, the query's open HITs are expired at the marketplace,
// unspent budget is released, and the dashboard shows the query as
// canceled with its sunk cost. Errors are typed: *ParseError for bad
// query text, and Rows.Err reports ErrCanceled / ErrDeadline /
// ErrBudgetExhausted / the first operator error.
func (e *Engine) Query(ctx context.Context, sql string, opts ...QueryOption) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o queryOptions
	for _, opt := range opts {
		opt(&o)
	}
	stmt, err := qlang.ParseQuery(sql)
	if err != nil {
		return nil, qerr.Classify(err)
	}
	h, err := e.startQuery(ctx, sql, stmt, o)
	if err != nil {
		return nil, qerr.Classify(err)
	}
	return &Rows{h: h}, nil
}
