package backend

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mturk"
)

// httpRig is one sandboxed HTTP-driver test environment: an in-process
// MTurk-shaped server wrapping a real simulated marketplace, and a
// driver pointed at it with no-wait pacing and recorded sleeps.
type httpRig struct {
	srv    *Server
	ts     *httptest.Server
	client *HTTP

	sleepMu sync.Mutex
	sleeps  []time.Duration
}

func (r *httpRig) recordedSleeps() []time.Duration {
	r.sleepMu.Lock()
	defer r.sleepMu.Unlock()
	return append([]time.Duration(nil), r.sleeps...)
}

func newHTTPRig(t *testing.T, pool mturk.WorkerPool, cfg HTTPConfig) *httpRig {
	t.Helper()
	serverClock := mturk.NewClock()
	market := mturk.NewMarketplace(serverClock, pool)
	r := &httpRig{srv: NewServer(market, serverClock)}
	r.ts = httptest.NewServer(r.srv)
	t.Cleanup(r.ts.Close)
	cfg.BaseURL = r.ts.URL
	if cfg.Clock == nil {
		cfg.Clock = mturk.NewClock()
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Millisecond
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(d time.Duration) {
			r.sleepMu.Lock()
			r.sleeps = append(r.sleeps, d)
			r.sleepMu.Unlock()
		}
	}
	client, err := NewHTTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	r.client = client
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHTTPPostAndPoll(t *testing.T) {
	r := newHTTPRig(t, perfectPool{}, HTTPConfig{})
	var got collect
	h := filterHIT(r.client.NewHITID(), "isCat", 2)
	if err := r.client.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "assignments", func() bool { return got.len() == 2 })
	got.mu.Lock()
	for _, res := range got.results {
		if !res.Answers.Values["k1"].Truthy() {
			t.Error("answer did not round-trip the wire")
		}
	}
	got.mu.Unlock()
	stats := r.client.Stats()
	if stats.HITsPosted != 1 || stats.AssignmentsCompleted != 2 || stats.SpentCents != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	st, ok := r.client.Status(h.ID)
	if !ok || st.Completed != 2 || st.Spent != 4 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
	st, ok = r.client.Dispose(h.ID)
	if !ok || st.Completed != 2 || st.Spent != 4 {
		t.Fatalf("dispose = %+v ok=%v", st, ok)
	}
}

// TestHTTPTornPostRetriesIdempotently injects the dangerous failure: the
// server processes the POST, then the response dies mid-body. The client
// must retry — and because the HIT ID rides as the Idempotency-Key, the
// retry is answered from the server's idempotency cache instead of
// posting (and paying for) the HIT a second time.
func TestHTTPTornPostRetriesIdempotently(t *testing.T) {
	r := newHTTPRig(t, perfectPool{}, HTTPConfig{})
	r.srv.TearNext(1)
	var got collect
	h := filterHIT(r.client.NewHITID(), "isCat", 2)
	if err := r.client.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "assignments", func() bool { return got.len() == 2 })
	if n := r.srv.Posted(); n != 1 {
		t.Fatalf("server posted %d HITs, want 1 (retry must dedupe)", n)
	}
	if reqs := r.srv.Requests(); reqs < 3 {
		t.Fatalf("requests = %d, want torn POST + retry + polls", reqs)
	}
	// The marketplace charged for exactly one HIT's assignments.
	st, ok := r.client.Dispose(h.ID)
	if !ok || st.Completed != 2 || st.Spent != 4 {
		t.Fatalf("dispose = %+v ok=%v (double spend?)", st, ok)
	}
	if got.len() != 2 {
		t.Fatalf("assignments delivered = %d, want exactly 2", got.len())
	}
}

// TestHTTPBackoffSchedule pins the retry pacing: 5xx responses back off
// exponentially with bounded seeded jitter.
func TestHTTPBackoffSchedule(t *testing.T) {
	r := newHTTPRig(t, perfectPool{}, HTTPConfig{Seed: 7})
	r.srv.FailNext(3)
	var got collect
	h := filterHIT(r.client.NewHITID(), "isCat", 1)
	if err := r.client.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "assignments", func() bool { return got.len() == 1 })
	if reqs := r.srv.Requests(); reqs < 4 {
		t.Fatalf("requests = %d, want 3 failures + success + polls", reqs)
	}
	sleeps := r.recordedSleeps()
	if len(sleeps) < 3 {
		t.Fatalf("sleeps = %v, want three backoffs", sleeps)
	}
	base := 100 * time.Millisecond
	for i := 0; i < 3; i++ {
		d := base << uint(i)
		lo, hi := d, d+d/4 // exponential step + at most 25% jitter
		if sleeps[i] < lo || sleeps[i] > hi {
			t.Errorf("backoff %d = %v, want in [%v, %v]", i, sleeps[i], lo, hi)
		}
	}
}

// TestHTTPDuplicateDeliveryDedupes makes the server repeat every entry of
// an assignment page; the client dedupes by assignment ID so completions
// are delivered (and counted) exactly once.
func TestHTTPDuplicateDeliveryDedupes(t *testing.T) {
	r := newHTTPRig(t, perfectPool{}, HTTPConfig{})
	r.srv.DuplicateNext(1)
	var got collect
	h := filterHIT(r.client.NewHITID(), "isCat", 2)
	if err := r.client.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "assignments", func() bool { return got.len() >= 2 })
	time.Sleep(10 * time.Millisecond) // would-be duplicates land here
	if got.len() != 2 {
		t.Fatalf("assignments delivered = %d, want exactly 2", got.len())
	}
	stats := r.client.Stats()
	if stats.AssignmentsCompleted != 2 || stats.SpentCents != 4 {
		t.Fatalf("stats double-counted: %+v", stats)
	}
}

// gateTransport wedges matching requests open until release is closed
// (or their context dies), simulating a network that stops delivering
// poll responses without erroring instantly.
type gateTransport struct {
	base    http.RoundTripper
	match   func(*http.Request) bool
	release chan struct{}
}

func (g *gateTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if g.match(req) {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-g.release:
		}
	}
	return g.base.RoundTrip(req)
}

// TestHTTPCloseCancelsStuckPollers proves context cancellation: a poller
// wedged in a request is torn down by Close, and a later Dispose reports
// only what the client actually received — the Task Manager's refund
// basis when the network is gone.
func TestHTTPCloseCancelsStuckPollers(t *testing.T) {
	gate := &gateTransport{
		base:    http.DefaultTransport,
		match:   func(req *http.Request) bool { return strings.Contains(req.URL.Path, "/assignments") },
		release: make(chan struct{}),
	}
	defer close(gate.release)
	r := newHTTPRig(t, perfectPool{}, HTTPConfig{Client: &http.Client{Transport: gate}})
	var got collect
	h := filterHIT(r.client.NewHITID(), "isCat", 2)
	if err := r.client.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.client.Close() // must cancel the wedged poll and return
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the stuck poller")
	}
	if got.len() != 0 {
		t.Fatalf("assignments delivered after close = %d", got.len())
	}
	st, ok := r.client.Dispose(h.ID)
	if !ok || st.Completed != 0 || st.Spent != 0 {
		t.Fatalf("dispose after close = %+v ok=%v, want nothing received", st, ok)
	}
}

// TestHTTPUnreachableServiceFailsOutstanding cuts polling off at the
// transport: once retries exhaust, the driver reports one failure per
// outstanding assignment so the Task Manager can finalize short, and
// lifecycle calls fall back to client-known state.
func TestHTTPUnreachableServiceFailsOutstanding(t *testing.T) {
	down := errors.New("network down")
	gate := &failingTransport{base: http.DefaultTransport, err: down,
		match: func(req *http.Request) bool { return req.Method == http.MethodGet }}
	r := newHTTPRig(t, perfectPool{}, HTTPConfig{
		Client: &http.Client{Transport: gate}, MaxRetries: 1, Backoff: time.Millisecond})
	var mu sync.Mutex
	var failures []string
	r.client.SetErrorHandler(func(hitID string, err error) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf("%s: %v", hitID, err))
		mu.Unlock()
	})
	var got collect
	h := filterHIT(r.client.NewHITID(), "isCat", 2)
	if err := r.client.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure reports", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(failures) == 2
	})
	mu.Lock()
	for _, f := range failures {
		if !strings.Contains(f, h.ID) || !strings.Contains(f, "retries exhausted") {
			t.Errorf("failure = %q", f)
		}
	}
	mu.Unlock()
	if got.len() != 0 {
		t.Fatalf("assignments delivered = %d", got.len())
	}
	// Status can't reach the service either: client-known state only.
	st, ok := r.client.Status(h.ID)
	if !ok || st.Completed != 0 || st.Spent != 0 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
}

// failingTransport fails matching requests with a fixed error.
type failingTransport struct {
	base  http.RoundTripper
	match func(*http.Request) bool
	err   error
}

func (f *failingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.match(req) {
		return nil, f.err
	}
	return f.base.RoundTrip(req)
}
