package backend

import (
	"errors"

	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
)

// Backend is what the Task Manager posts HITs to. Its method set is the
// exact seam the manager used against the simulated marketplace; see the
// package documentation for the semantic contract each method carries.
type Backend interface {
	// Name identifies the backend in stats, journals, and dashboards
	// ("sim", "http", "llm", "router").
	Name() string
	// Clock is the clock the Task Manager should stamp and schedule on.
	Clock() *mturk.Clock
	// NewHITID mints a fresh, unique HIT identifier.
	NewHITID() string
	// Post registers the HIT and arranges for h.Assignments assignment
	// callbacks (or error-handler notifications for the shortfall).
	Post(h *hit.HIT, onAssignment func(mturk.AssignmentResult)) error
	// SubmitExternal injects one extra answer into an open HIT.
	SubmitExternal(hitID string, ans hit.Answers) error
	// Dispose closes the HIT and returns its final status; ok is false
	// for an unknown ID.
	Dispose(hitID string) (mturk.HITStatus, bool)
	// Status reports a HIT's current status; ok is false for an unknown
	// ID.
	Status(hitID string) (mturk.HITStatus, bool)
	// SetErrorHandler installs the terminal-assignment-failure hook. Safe
	// to call before or after posting begins; in-flight work observes the
	// new handler on its next failure.
	SetErrorHandler(fn func(hitID string, err error))
	// SetWorkerFilter installs a per-worker eligibility predicate (nil
	// admits everyone). Same late-install semantics as SetErrorHandler.
	SetWorkerFilter(fn func(workerID string) bool)
	// Stats returns cumulative counters.
	Stats() mturk.Stats
}

// ErrExtendUnsupported reports a backend that cannot add assignments to
// a posted HIT; the adaptive redundancy loop falls back to posting at
// the full assignment cap.
var ErrExtendUnsupported = errors.New("backend: extending posted HITs unsupported")

// Extender is implemented by backends that can add assignment slots to
// an open HIT after posting (MTurk's CreateAdditionalAssignmentsForHIT).
// The adaptive redundancy loop posts at a HIT's minimum and extends one
// assignment at a time while the answer posterior stays unsure.
type Extender interface {
	// ExtendAssignments adds extra assignment slots to the open HIT,
	// arranging that many additional assignment callbacks. It fails on
	// unknown or already completed HITs.
	ExtendAssignments(hitID string, extra int) error
}

// SupportsExtend reports whether b can add assignments to posted HITs.
func SupportsExtend(b Backend) bool {
	_, ok := b.(Extender)
	return ok
}

// Extend adds assignment slots via b's Extender, or reports
// ErrExtendUnsupported for backends without one.
func Extend(b Backend, hitID string, extra int) error {
	if e, ok := b.(Extender); ok {
		return e.ExtendAssignments(hitID, extra)
	}
	return ErrExtendUnsupported
}

// Pricer is implemented by backends whose per-assignment price differs
// from the posting policy's. The Task Manager quotes before charging:
// the quoted price becomes the HIT's RewardCents and the basis of every
// refund, so cheap backends genuinely cost less end to end.
type Pricer interface {
	// QuoteCents returns the per-assignment reward this backend charges
	// for one question of the given task, given the policy's price.
	QuoteCents(task string, tt qlang.TaskType, policyCents int64) int64
}

// TaskRouter is implemented by backends that delegate per task: the Task
// Manager asks where a task's HITs will land so observations are
// attributed to the serving backend, not the front.
type TaskRouter interface {
	// RouteFor names the backend that will serve the task's next HIT.
	RouteFor(task string, tt qlang.TaskType) string
}

// ServingName reports which backend will answer for the given task:
// routers are asked, everything else serves under its own name.
func ServingName(b Backend, task string, tt qlang.TaskType) string {
	if r, ok := b.(TaskRouter); ok {
		return r.RouteFor(task, tt)
	}
	return b.Name()
}

// Quote returns the per-assignment price b charges for the task, falling
// back to the policy price for backends without their own pricing.
func Quote(b Backend, task string, tt qlang.TaskType, policyCents int64) int64 {
	if p, ok := b.(Pricer); ok {
		return p.QuoteCents(task, tt, policyCents)
	}
	return policyCents
}
