package backend

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// ModelFunc answers one HIT question: given the task, its kind, and the
// item's argument values, return the answer value a worker would type.
// For Order responses the returned value is a score — the backend sorts
// scores into rank positions exactly as the simulated crowd does. The
// function must be deterministic for the verify harness to pin runs.
type ModelFunc func(task string, tt qlang.TaskType, args []relation.Value) relation.Value

// LLMConfig configures an LLM worker crowd.
type LLMConfig struct {
	// Model answers every question. Required.
	Model ModelFunc
	// PriceCents is the per-assignment quote (what one model call
	// costs, in the engine's ledger). Zero quotes the policy price.
	PriceCents int64
	// Latency is the virtual-clock delay before each assignment lands;
	// assignment i of a HIT arrives after (i+1)×Latency so completions
	// stay distinct and ordered. Zero means one virtual second.
	Latency time.Duration
	// Quality maps task kinds to the prior answer accuracy the
	// optimizer should assume before live observations accumulate. The
	// backend itself never reads it; ChooseBackend does. A kind absent
	// from a non-nil map is one this crowd should not be routed.
	Quality map[qlang.TaskType]float64
}

// llmHIT is one posted HIT's collection state.
type llmHIT struct {
	status   mturk.HITStatus
	callback func(mturk.AssignmentResult)
	disposed bool
}

// LLM is a worker backend where a model-call function answers HITs.
// Completions are scheduled on the shared virtual clock, so a run mixing
// LLM and simulated-crowd backends replays deterministically.
type LLM struct {
	clock  *mturk.Clock
	cfg    LLMConfig
	nextID atomic.Int64

	mu   sync.Mutex
	hits map[string]*llmHIT

	cfgMu   sync.RWMutex
	onError func(hitID string, err error)

	hitsPosted           atomic.Int64
	assignmentsCompleted atomic.Int64
	questionsAnswered    atomic.Int64
	spentCents           atomic.Int64
	externalSubmissions  atomic.Int64
}

// NewLLM builds an LLM worker backend on the given clock.
func NewLLM(clock *mturk.Clock, cfg LLMConfig) *LLM {
	if cfg.Latency <= 0 {
		cfg.Latency = time.Second
	}
	return &LLM{clock: clock, cfg: cfg, hits: make(map[string]*llmHIT)}
}

// Name implements Backend.
func (l *LLM) Name() string { return "llm" }

// Clock implements Backend.
func (l *LLM) Clock() *mturk.Clock { return l.clock }

// NewHITID implements Backend.
func (l *LLM) NewHITID() string { return mturk.PaddedID("LHIT-", l.nextID.Add(1)) }

// QuoteCents implements Pricer: the model-call price when configured.
func (l *LLM) QuoteCents(task string, tt qlang.TaskType, policyCents int64) int64 {
	if l.cfg.PriceCents > 0 {
		return l.cfg.PriceCents
	}
	return policyCents
}

// SetErrorHandler implements Backend; safe before or after posting.
func (l *LLM) SetErrorHandler(fn func(hitID string, err error)) {
	l.cfgMu.Lock()
	l.onError = fn
	l.cfgMu.Unlock()
}

// SetWorkerFilter implements Backend. LLM workers have no identities a
// reputation blocklist could exclude, so the filter is accepted and
// ignored.
func (l *LLM) SetWorkerFilter(fn func(workerID string) bool) {}

// Post implements Backend: each of the HIT's assignments is answered by
// one model pass, scheduled on the virtual clock.
func (l *LLM) Post(h *hit.HIT, onAssignment func(mturk.AssignmentResult)) error {
	if l.cfg.Model == nil {
		return fmt.Errorf("backend: llm: no model function configured")
	}
	if err := h.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	if _, dup := l.hits[h.ID]; dup {
		l.mu.Unlock()
		return fmt.Errorf("backend: llm: duplicate HIT %s", h.ID)
	}
	l.hits[h.ID] = &llmHIT{
		status:   mturk.HITStatus{HIT: h, PostedAt: l.clock.Now()},
		callback: onAssignment,
	}
	l.mu.Unlock()
	l.hitsPosted.Add(1)
	for i := 0; i < h.Assignments; i++ {
		worker := fmt.Sprintf("llm-%d", i+1)
		l.clock.Schedule(l.cfg.Latency*time.Duration(i+1), func() {
			l.complete(h.ID, hit.Answers{WorkerID: worker, Values: l.answer(h)}, false)
		})
	}
	return nil
}

// answer runs the model over every question of the HIT, mirroring the
// simulated crowd's wire shapes (pair keys for join grids, rank
// positions for Order responses).
func (l *LLM) answer(h *hit.HIT) map[string]relation.Value {
	vals := make(map[string]relation.Value, h.QuestionCount())
	if h.Response.Kind == qlang.ResponseJoinColumns {
		for _, lt := range h.Left {
			for _, rt := range h.Right {
				args := append(append([]relation.Value{}, lt.Args...), rt.Args...)
				vals[hit.PairKey(lt.Key, rt.Key)] = l.cfg.Model(h.Task, h.Type, args)
			}
		}
		return vals
	}
	for _, it := range h.Items {
		vals[it.Key] = l.cfg.Model(h.EffectiveTask(it), h.Type, it.Args)
	}
	if h.Response.Kind == qlang.ResponseOrder {
		// Scores become rank positions 0..n-1 (ascending, stable), as
		// the Order form requires and the crowd simulator produces.
		keys := make([]string, 0, len(h.Items))
		for _, it := range h.Items {
			keys = append(keys, it.Key)
		}
		sort.SliceStable(keys, func(i, j int) bool { return vals[keys[i]].Float() < vals[keys[j]].Float() })
		for rank, key := range keys {
			vals[key] = relation.NewInt(int64(rank))
		}
	}
	return vals
}

// complete fills one assignment slot, paying the reward, and delivers
// the result. Late completions on a disposed or already-full HIT are
// discarded unpaid, exactly like the marketplace.
func (l *LLM) complete(hitID string, ans hit.Answers, external bool) {
	l.mu.Lock()
	ph, ok := l.hits[hitID]
	if !ok || ph.disposed || !ph.status.Open() {
		l.mu.Unlock()
		return
	}
	ph.status.Completed++
	ph.status.Spent += budget.Cents(ph.status.HIT.RewardCents)
	now := l.clock.Now()
	if !ph.status.Open() {
		ph.status.DoneAt = now
	}
	cb := ph.callback
	questions := ph.status.HIT.QuestionCount()
	reward := ph.status.HIT.RewardCents
	l.mu.Unlock()
	l.assignmentsCompleted.Add(1)
	l.questionsAnswered.Add(int64(questions))
	l.spentCents.Add(reward)
	if external {
		l.externalSubmissions.Add(1)
	}
	if cb != nil {
		cb(mturk.AssignmentResult{HITID: hitID, Answers: ans, SubmittedAt: now, External: external})
	}
}

// SubmitExternal implements Backend: the answer fills a paid slot like
// any assignment, marked external.
func (l *LLM) SubmitExternal(hitID string, ans hit.Answers) error {
	l.mu.Lock()
	ph, ok := l.hits[hitID]
	open := ok && !ph.disposed && ph.status.Open()
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("backend: llm: unknown HIT %s", hitID)
	}
	if !open {
		return fmt.Errorf("backend: llm: HIT %s has no open assignments", hitID)
	}
	l.complete(hitID, ans, true)
	return nil
}

// Dispose implements Backend.
func (l *LLM) Dispose(hitID string) (mturk.HITStatus, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ph, ok := l.hits[hitID]
	if !ok {
		return mturk.HITStatus{}, false
	}
	ph.disposed = true
	delete(l.hits, hitID)
	return ph.status, true
}

// Status implements Backend.
func (l *LLM) Status(hitID string) (mturk.HITStatus, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ph, ok := l.hits[hitID]
	if !ok {
		return mturk.HITStatus{}, false
	}
	return ph.status, true
}

// Stats implements Backend.
func (l *LLM) Stats() mturk.Stats {
	return mturk.Stats{
		HITsPosted:           int(l.hitsPosted.Load()),
		AssignmentsCompleted: int(l.assignmentsCompleted.Load()),
		QuestionsAnswered:    int(l.questionsAnswered.Load()),
		SpentCents:           budget.Cents(l.spentCents.Load()),
		ExternalSubmissions:  int(l.externalSubmissions.Load()),
	}
}
