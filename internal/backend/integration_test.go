package backend_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/taskmgr"
)

// These tests drive the full Task Manager over the HTTP driver against
// the sandboxed server, with faults injected on the wire. They live in
// an external test package because taskmgr itself imports backend.

// truePool answers every question true after one virtual minute.
type truePool struct{}

func (truePool) Claim(h *hit.HIT, now mturk.VirtualTime) (mturk.Claim, bool) {
	return mturk.Claim{
		WorkerID: "w1",
		Delay:    time.Minute,
		Answer: func() (hit.Answers, error) {
			vals := make(map[string]relation.Value)
			for _, k := range h.Keys() {
				vals[k] = relation.NewBool(true)
			}
			return hit.Answers{Values: vals}, nil
		},
	}, true
}

// emptyPool never produces a worker.
type emptyPool struct{}

func (emptyPool) Claim(h *hit.HIT, now mturk.VirtualTime) (mturk.Claim, bool) {
	return mturk.Claim{}, false
}

// blockTransport wedges matching requests until release closes or the
// request context dies.
type blockTransport struct {
	match   func(*http.Request) bool
	release chan struct{}
}

func (g *blockTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if g.match(req) {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-g.release:
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

const integrationScript = `
TASK isCat(Image photo)
RETURNS Bool:
  TaskType: Filter
  Text: "Is this a cat? %s", photo
  Response: YesNo
`

type wireRig struct {
	market  *mturk.Marketplace
	srv     *backend.Server
	client  *backend.HTTP
	mgr     *taskmgr.Manager
	def     *qlang.TaskDef
	account *budget.Account
}

func newWireRig(t *testing.T, pool mturk.WorkerPool, transport http.RoundTripper) *wireRig {
	t.Helper()
	serverClock := mturk.NewClock()
	market := mturk.NewMarketplace(serverClock, pool)
	srv := backend.NewServer(market, serverClock)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	engineClock := mturk.NewClock()
	httpClient := &http.Client{}
	if transport != nil {
		httpClient.Transport = transport
	}
	client, err := backend.NewHTTP(backend.HTTPConfig{
		BaseURL:      ts.URL,
		Client:       httpClient,
		Clock:        engineClock,
		PollInterval: time.Millisecond,
		Backoff:      time.Millisecond,
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	script, err := qlang.Parse(integrationScript)
	if err != nil {
		t.Fatal(err)
	}
	def, _ := script.Task("isCat")
	account := budget.NewAccount(0)
	mgr := taskmgr.NewWithBackend(client, nil, nil, account)

	stop := make(chan struct{})
	go engineClock.Run(func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	})
	t.Cleanup(func() { close(stop); engineClock.Close() })
	return &wireRig{market: market, srv: srv, client: client, mgr: mgr, def: def, account: account}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTaskmgrOverTornWire tears the POST response and several poll pages
// while the Task Manager runs real work over the wire. Every item must
// resolve exactly once, the in-flight table must drain, the server must
// have seen exactly one HIT per batch (no re-posts), and the account
// must have spent exactly what the marketplace charged.
func TestTaskmgrOverTornWire(t *testing.T) {
	r := newWireRig(t, truePool{}, nil)
	r.srv.TearNext(3)

	const items = 3
	outcomes := make(chan taskmgr.Outcome, items)
	for i := 0; i < items; i++ {
		r.mgr.Submit(taskmgr.Request{
			Def:  r.def,
			Args: []relation.Value{relation.NewImage(fmt.Sprintf("cat-%d.png", i))},
			Done: func(o taskmgr.Outcome) { outcomes <- o },
		})
	}
	for i := 0; i < items; i++ {
		select {
		case o := <-outcomes:
			if o.Err != nil {
				t.Fatalf("outcome error: %v", o.Err)
			}
			if !o.Value.Truthy() {
				t.Errorf("outcome = %v, want true", o.Value)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("item %d never resolved; inflight=%d", i, r.mgr.Inflight())
		}
	}
	waitUntil(t, "inflight drain", func() bool { return r.mgr.Inflight() == 0 })
	if n := r.srv.Posted(); n != items {
		t.Fatalf("server posted %d HITs, want %d (torn responses must not re-post)", n, items)
	}
	if spent := r.market.Stats().SpentCents; r.account.Spent() != spent {
		t.Fatalf("account spent %v, marketplace charged %v", r.account.Spent(), spent)
	}
}

// TestTaskmgrScopeCancelRefundsOverWire cancels a query scope while its
// HIT is outstanding on the wire. The dispose travels to the server and
// the uncompleted assignments are refunded in full — no money leaks into
// a HIT whose results will never arrive.
func TestTaskmgrScopeCancelRefundsOverWire(t *testing.T) {
	gate := &blockTransport{
		match:   func(req *http.Request) bool { return strings.Contains(req.URL.Path, "/assignments") },
		release: make(chan struct{}),
	}
	defer close(gate.release)
	// The server's pool never produces a worker, so nothing is ever
	// paid server-side; the gate keeps the failure pages from reaching
	// the client, leaving the HIT genuinely outstanding.
	r := newWireRig(t, emptyPool{}, gate)

	scope := r.mgr.NewScope()
	outcome := make(chan taskmgr.Outcome, 1)
	r.mgr.Submit(taskmgr.Request{
		Def:   r.def,
		Args:  []relation.Value{relation.NewImage("cat.png")},
		Scope: scope,
		Done:  func(o taskmgr.Outcome) { outcome <- o },
	})
	waitUntil(t, "HIT posted", func() bool { return r.srv.Posted() == 1 })
	if charged := r.account.Spent(); charged <= 0 {
		t.Fatalf("account charged %v, want > 0", charged)
	}

	scope.Cancel(errors.New("query canceled"))
	select {
	case o := <-outcome:
		if o.Err == nil {
			t.Fatal("canceled item resolved without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled item never resolved")
	}
	waitUntil(t, "refund", func() bool { return r.account.Spent() == 0 })
	waitUntil(t, "inflight drain", func() bool { return r.mgr.Inflight() == 0 })
}
