package backend

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// HTTPConfig configures the MTurk-shaped HTTP driver.
type HTTPConfig struct {
	// BaseURL is the service root (e.g. an httptest server URL).
	BaseURL string
	// Client is the HTTP client; nil uses a fresh default client.
	Client *http.Client
	// Clock is the engine clock the Task Manager stamps and schedules
	// on. The driver itself paces on wall time; it never steps this.
	Clock *mturk.Clock
	// PriceCents is the per-assignment quote; zero quotes the policy
	// price.
	PriceCents int64
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// PollInterval paces assignment polling (default 500ms).
	PollInterval time.Duration
	// MaxRetries bounds per-request retries (default 6).
	MaxRetries int
	// Backoff is the first retry delay (default 100ms); each retry
	// doubles it, plus up to 25% seeded jitter.
	Backoff time.Duration
	// Seed fixes the jitter sequence for reproducible tests.
	Seed int64
	// Sleep, when set, replaces time.Sleep for backoff and poll pacing
	// (tests pass a recorder that returns immediately).
	Sleep func(time.Duration)
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 6
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// HTTP is a worker backend speaking an MTurk-shaped REST API over a real
// network: wall-clock pacing, context-aware timeouts, exponential
// backoff with jitter, and idempotent re-posting — the HIT ID rides
// every POST as the Idempotency-Key, so a retry after a timeout, 5xx, or
// torn response lands at most once server-side and can never
// double-spend. Completed assignments arrive by polling with a cursor
// and are deduplicated by assignment ID, so duplicate delivery is safe
// too.
type HTTP struct {
	cfg    HTTPConfig
	nextID atomic.Int64
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand

	cfgMu   sync.RWMutex
	onError func(hitID string, err error)

	mu   sync.Mutex
	hits map[string]*httpHIT

	hitsPosted           atomic.Int64
	assignmentsCompleted atomic.Int64
	questionsAnswered    atomic.Int64
	spentCents           atomic.Int64
	externalSubmissions  atomic.Int64
}

// httpHIT is the client-side view of one posted HIT.
type httpHIT struct {
	hit      *hit.HIT
	postedAt mturk.VirtualTime
	cancel   context.CancelFunc
	seen     map[string]bool // assignment IDs already delivered
	failures int             // failure records already reported
	received int             // non-external assignments delivered
	extended int             // assignment slots added after posting
	extSeq   int             // extension requests issued (idempotency keys)
	disposed bool
}

// NewHTTP builds the driver. cfg.Clock is required.
func NewHTTP(cfg HTTPConfig) (*HTTP, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("backend: http: BaseURL required")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("backend: http: Clock required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &HTTP{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		hits:   make(map[string]*httpHIT),
	}, nil
}

// Close cancels every in-flight request and poller and waits for them.
func (c *HTTP) Close() {
	c.cancel()
	c.wg.Wait()
}

// Name implements Backend.
func (c *HTTP) Name() string { return "http" }

// Clock implements Backend.
func (c *HTTP) Clock() *mturk.Clock { return c.cfg.Clock }

// NewHITID implements Backend.
func (c *HTTP) NewHITID() string { return mturk.PaddedID("HHIT-", c.nextID.Add(1)) }

// QuoteCents implements Pricer.
func (c *HTTP) QuoteCents(task string, tt qlang.TaskType, policyCents int64) int64 {
	if c.cfg.PriceCents > 0 {
		return c.cfg.PriceCents
	}
	return policyCents
}

// SetErrorHandler implements Backend; safe before or after posting.
func (c *HTTP) SetErrorHandler(fn func(hitID string, err error)) {
	c.cfgMu.Lock()
	c.onError = fn
	c.cfgMu.Unlock()
}

// SetWorkerFilter implements Backend. Worker eligibility lives on the
// remote service's side of the wire; the filter is accepted and ignored.
func (c *HTTP) SetWorkerFilter(fn func(workerID string) bool) {}

func (c *HTTP) reportError(hitID string, err error) {
	c.cfgMu.RLock()
	fn := c.onError
	c.cfgMu.RUnlock()
	if fn != nil {
		fn(hitID, err)
	}
}

// backoffDelay computes the attempt'th retry delay: exponential with up
// to 25% seeded jitter.
func (c *HTTP) backoffDelay(attempt int) time.Duration {
	d := c.cfg.Backoff << uint(attempt)
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return d + time.Duration(float64(d)*0.25*j)
}

// do runs one request with a per-attempt timeout, retrying 5xx and
// transport errors on the backoff schedule. idempotent requests carry
// the key so server-side retries land at most once.
func (c *HTTP) do(method, path, idemKey string, reqBody []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.cfg.Sleep(c.backoffDelay(attempt - 1))
		}
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(c.ctx, c.cfg.Timeout)
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(reqBody))
		if err != nil {
			cancel()
			return nil, err
		}
		if reqBody != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			cancel()
			if c.ctx.Err() != nil {
				return nil, c.ctx.Err()
			}
			lastErr = err // timeout or transport failure: retry
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("backend: http: torn response: %v", err)
			continue
		}
		switch {
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("backend: http: %s %s: %s", method, path, resp.Status)
			continue // retryable
		case resp.StatusCode >= 400:
			return nil, fmt.Errorf("backend: http: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(body))
		}
		return body, nil
	}
	return nil, fmt.Errorf("backend: http: %s %s: retries exhausted: %w", method, path, lastErr)
}

// Post implements Backend: serialize, POST with the HIT ID as the
// idempotency key, then start a poller that delivers assignments.
func (c *HTTP) Post(h *hit.HIT, onAssignment func(mturk.AssignmentResult)) error {
	if err := h.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	if _, dup := c.hits[h.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("backend: http: duplicate HIT %s", h.ID)
	}
	c.mu.Unlock()

	wh := wireHIT{
		ID: h.ID, Task: h.Task, Type: int(h.Type), Title: h.Title,
		Question: h.Question, Response: h.Response,
		RewardCents: h.RewardCents, Assignments: h.Assignments, GroupKeys: h.GroupKeys,
	}
	for _, it := range h.Items {
		wh.Items = append(wh.Items, wireItem{Key: it.Key, Task: it.Task, Prompt: it.Prompt, Args: encodeArgs(it.Args)})
	}
	for _, it := range h.Left {
		wh.Left = append(wh.Left, wireItem{Key: it.Key, Args: encodeArgs(it.Args)})
	}
	for _, it := range h.Right {
		wh.Right = append(wh.Right, wireItem{Key: it.Key, Args: encodeArgs(it.Args)})
	}
	body, err := json.Marshal(wh)
	if err != nil {
		return err
	}
	if _, err := c.do(http.MethodPost, "/hits", h.ID, body); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(c.ctx)
	ph := &httpHIT{hit: h, postedAt: c.cfg.Clock.Now(), cancel: cancel, seen: make(map[string]bool)}
	c.mu.Lock()
	c.hits[h.ID] = ph
	c.mu.Unlock()
	c.hitsPosted.Add(1)
	c.wg.Add(1)
	go c.poll(ctx, ph, onAssignment)
	return nil
}

// poll pages through the HIT's assignments until all expected work has
// settled, the HIT is disposed, or the driver closes.
func (c *HTTP) poll(ctx context.Context, ph *httpHIT, onAssignment func(mturk.AssignmentResult)) {
	defer c.wg.Done()
	h := ph.hit
	since := 0
	for {
		if ctx.Err() != nil {
			return
		}
		body, err := c.do(http.MethodGet, fmt.Sprintf("/hits/%s/assignments?since=%d", h.ID, since), "", nil)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// The service is unreachable beyond all retries: every
			// outstanding assignment is reported failed so the Task
			// Manager can finalize short and refund.
			c.mu.Lock()
			outstanding := h.Assignments + ph.extended - ph.received
			ph.disposed = true
			c.mu.Unlock()
			for i := 0; i < outstanding; i++ {
				c.reportError(h.ID, err)
			}
			return
		}
		var page wirePage
		if err := json.Unmarshal(body, &page); err != nil {
			continue // torn page: re-poll with the same cursor
		}
		since = page.Next
		done := false
		for _, wa := range page.Assignments {
			c.mu.Lock()
			if ph.disposed || ph.seen[wa.ID] {
				c.mu.Unlock()
				continue // duplicate delivery or late arrival
			}
			ph.seen[wa.ID] = true
			if !wa.External {
				ph.received++
			}
			c.mu.Unlock()
			ans := hit.Answers{WorkerID: wa.WorkerID, Values: make(map[string]relation.Value, len(wa.Values))}
			bad := false
			for k, enc := range wa.Values {
				v, derr := decodeWireValue(enc)
				if derr != nil {
					bad = true
					break
				}
				ans.Values[k] = v
			}
			if bad {
				c.reportError(h.ID, fmt.Errorf("backend: http: undecodable assignment %s", wa.ID))
				continue
			}
			c.assignmentsCompleted.Add(1)
			c.questionsAnswered.Add(int64(h.QuestionCount()))
			if !wa.External {
				c.spentCents.Add(h.RewardCents)
			} else {
				c.externalSubmissions.Add(1)
			}
			onAssignment(mturk.AssignmentResult{
				HITID: h.ID, Answers: ans,
				SubmittedAt: mturk.VirtualTime(wa.SubmittedAt), External: wa.External,
			})
		}
		c.mu.Lock()
		for ph.failures < len(page.Failures) {
			ph.failures++
			ferr := fmt.Errorf("backend: http: %s", page.Failures[ph.failures-1].Error)
			c.mu.Unlock()
			c.reportError(h.ID, ferr)
			c.mu.Lock()
		}
		done = page.Done && ph.received+ph.failures >= h.Assignments+ph.extended
		c.mu.Unlock()
		if done {
			return
		}
		c.cfg.Sleep(c.cfg.PollInterval)
	}
}

// SubmitExternal implements Backend.
func (c *HTTP) SubmitExternal(hitID string, ans hit.Answers) error {
	wa := wireAssignment{WorkerID: ans.WorkerID, Values: make(map[string]string, len(ans.Values))}
	for k, v := range ans.Values {
		wa.Values[k] = encodeValue(v)
	}
	body, err := json.Marshal(wa)
	if err != nil {
		return err
	}
	_, err = c.do(http.MethodPost, "/hits/"+hitID+"/external", "", body)
	return err
}

// ExtendAssignments implements Extender: POST the extension under its
// own idempotency key (a retry after a timeout or 5xx lands at most
// once), then raise the poller's expectation so it keeps paging until
// the extra assignments arrive. When the adaptive loop extends from
// inside an assignment callback, the poller is blocked in that callback,
// so the raised expectation is always visible before its next done
// check.
func (c *HTTP) ExtendAssignments(hitID string, extra int) error {
	if extra <= 0 {
		return fmt.Errorf("backend: http: extend HIT %s by %d assignments", hitID, extra)
	}
	c.mu.Lock()
	ph, ok := c.hits[hitID]
	if !ok || ph.disposed {
		c.mu.Unlock()
		return fmt.Errorf("backend: http: unknown HIT %s", hitID)
	}
	ph.extSeq++
	key := fmt.Sprintf("%s-ext-%d", hitID, ph.extSeq)
	c.mu.Unlock()
	body, err := json.Marshal(wireExtend{Extra: extra})
	if err != nil {
		return err
	}
	if _, err := c.do(http.MethodPost, "/hits/"+hitID+"/extend", key, body); err != nil {
		return err
	}
	c.mu.Lock()
	ph.extended += extra
	c.mu.Unlock()
	return nil
}

// Dispose implements Backend: the poller stops first, so a completion
// racing the dispose is never delivered after it.
func (c *HTTP) Dispose(hitID string) (mturk.HITStatus, bool) {
	c.mu.Lock()
	ph, ok := c.hits[hitID]
	if ok {
		ph.disposed = true
		ph.cancel()
		delete(c.hits, hitID)
	}
	c.mu.Unlock()
	if !ok {
		return mturk.HITStatus{}, false
	}
	body, err := c.do(http.MethodDelete, "/hits/"+hitID, "", nil)
	st := mturk.HITStatus{HIT: ph.hit, PostedAt: ph.postedAt}
	if err != nil {
		// The service is unreachable: report what the client knows —
		// received assignments were paid, nothing else can arrive.
		st.Completed = ph.received
		st.Spent = budget.Cents(ph.hit.RewardCents * int64(ph.received))
		return st, true
	}
	var ws wireStatus
	if err := json.Unmarshal(body, &ws); err != nil {
		st.Completed = ph.received
		st.Spent = budget.Cents(ph.hit.RewardCents * int64(ph.received))
		return st, true
	}
	st.Completed = ws.Completed
	st.Spent = budget.Cents(ws.SpentCents)
	return st, true
}

// Status implements Backend.
func (c *HTTP) Status(hitID string) (mturk.HITStatus, bool) {
	c.mu.Lock()
	ph, ok := c.hits[hitID]
	c.mu.Unlock()
	if !ok {
		return mturk.HITStatus{}, false
	}
	body, err := c.do(http.MethodGet, "/hits/"+hitID, "", nil)
	st := mturk.HITStatus{HIT: ph.hit, PostedAt: ph.postedAt}
	if err != nil {
		st.Completed = ph.received
		st.Spent = budget.Cents(ph.hit.RewardCents * int64(ph.received))
		return st, true
	}
	var ws wireStatus
	if err := json.Unmarshal(body, &ws); err == nil {
		st.Completed = ws.Completed
		st.Spent = budget.Cents(ws.SpentCents)
	}
	return st, true
}

// Stats implements Backend.
func (c *HTTP) Stats() mturk.Stats {
	return mturk.Stats{
		HITsPosted:           int(c.hitsPosted.Load()),
		AssignmentsCompleted: int(c.assignmentsCompleted.Load()),
		QuestionsAnswered:    int(c.questionsAnswered.Load()),
		SpentCents:           budget.Cents(c.spentCents.Load()),
		ExternalSubmissions:  int(c.externalSubmissions.Load()),
	}
}
