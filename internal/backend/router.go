package backend

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
)

// Router multiplexes per-task backend decisions: each HIT is posted to
// the backend a task pin, an installed chooser, or the default selects.
// Quoting and posting route identically (both go through RouteFor), so
// the price the Task Manager charges is the price the serving backend
// collects. All member backends must share one clock — the router's
// determinism is exactly its members'.
type Router struct {
	def      string
	backends map[string]Backend
	nextID   atomic.Int64

	mu      sync.Mutex
	pins    map[string]string // task name → backend name
	byHIT   map[string]*routedHIT
	quotes  map[string]quote // task name → last quote, for savings
	hitsBy  map[string]int64 // HITs posted per backend name
	savedC  int64            // cents saved vs the policy price
	chooser func(task string, tt qlang.TaskType) string
}

// routedHIT remembers where a HIT landed and how many assignments are
// still expected, so completions can retire the entry.
type routedHIT struct {
	backend string
	left    int
}

// quote is one task's last (policy, quoted) price pair.
type quote struct {
	policy, quoted int64
}

// NewRouter builds a router over named backends. Every backend must
// share the first one's clock; dflt names the backend unrouted tasks
// use and must be a member.
func NewRouter(dflt string, backends ...Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("backend: router needs at least one backend")
	}
	r := &Router{
		def:      dflt,
		backends: make(map[string]Backend, len(backends)),
		pins:     make(map[string]string),
		byHIT:    make(map[string]*routedHIT),
		quotes:   make(map[string]quote),
		hitsBy:   make(map[string]int64),
	}
	clock := backends[0].Clock()
	for _, b := range backends {
		if _, dup := r.backends[b.Name()]; dup {
			return nil, fmt.Errorf("backend: router: duplicate backend %q", b.Name())
		}
		if b.Clock() != clock {
			return nil, fmt.Errorf("backend: router: backend %q is on a different clock", b.Name())
		}
		r.backends[b.Name()] = b
	}
	if _, ok := r.backends[dflt]; !ok {
		return nil, fmt.Errorf("backend: router: unknown default backend %q", dflt)
	}
	return r, nil
}

// Pin routes every HIT of the named task to one backend (the qlang
// `Backend:` property lands here).
func (r *Router) Pin(task, backendName string) error {
	if _, ok := r.backends[backendName]; !ok {
		return fmt.Errorf("backend: router: unknown backend %q for task %s", backendName, task)
	}
	r.mu.Lock()
	r.pins[task] = backendName
	r.mu.Unlock()
	return nil
}

// SetChooser installs the per-task decision function consulted for
// unpinned tasks (the optimizer's ChooseBackend lands here). A chooser
// returning an unknown name falls back to the default backend.
func (r *Router) SetChooser(fn func(task string, tt qlang.TaskType) string) {
	r.mu.Lock()
	r.chooser = fn
	r.mu.Unlock()
}

// RouteFor implements TaskRouter: pin, then chooser, then default.
func (r *Router) RouteFor(task string, tt qlang.TaskType) string {
	r.mu.Lock()
	pinned, ok := r.pins[task]
	chooser := r.chooser
	r.mu.Unlock()
	if ok {
		return pinned
	}
	if chooser != nil {
		if name := chooser(task, tt); name != "" {
			if _, known := r.backends[name]; known {
				return name
			}
		}
	}
	return r.def
}

// target resolves a task's serving backend.
func (r *Router) target(task string, tt qlang.TaskType) Backend {
	return r.backends[r.RouteFor(task, tt)]
}

// QuoteCents implements Pricer by quoting the serving backend, and
// remembers the (policy, quote) pair so Post can account the savings.
func (r *Router) QuoteCents(task string, tt qlang.TaskType, policyCents int64) int64 {
	quoted := Quote(r.target(task, tt), task, tt, policyCents)
	r.mu.Lock()
	r.quotes[task] = quote{policy: policyCents, quoted: quoted}
	r.mu.Unlock()
	return quoted
}

// Name implements Backend.
func (r *Router) Name() string { return "router" }

// Clock implements Backend: the shared member clock.
func (r *Router) Clock() *mturk.Clock { return r.backends[r.def].Clock() }

// NewHITID implements Backend. The router mints its own namespace so
// IDs stay unique across members.
func (r *Router) NewHITID() string { return mturk.PaddedID("RHIT-", r.nextID.Add(1)) }

// Post implements Backend: the HIT goes to the serving backend, and the
// routing table retires the entry after its last expected assignment.
func (r *Router) Post(h *hit.HIT, onAssignment func(mturk.AssignmentResult)) error {
	name := r.RouteFor(h.Task, h.Type)
	b := r.backends[name]
	r.mu.Lock()
	if _, dup := r.byHIT[h.ID]; dup {
		r.mu.Unlock()
		return fmt.Errorf("backend: router: duplicate HIT %s", h.ID)
	}
	r.byHIT[h.ID] = &routedHIT{backend: name, left: h.Assignments}
	r.mu.Unlock()
	wrapped := func(res mturk.AssignmentResult) {
		if !res.External {
			r.mu.Lock()
			if rh, ok := r.byHIT[res.HITID]; ok {
				rh.left--
				if rh.left <= 0 {
					delete(r.byHIT, res.HITID)
				}
			}
			r.mu.Unlock()
		}
		onAssignment(res)
	}
	if err := b.Post(h, wrapped); err != nil {
		r.mu.Lock()
		delete(r.byHIT, h.ID)
		r.mu.Unlock()
		return err
	}
	r.mu.Lock()
	r.hitsBy[name]++
	if q, ok := r.quotes[h.Task]; ok && q.quoted == h.RewardCents && q.policy > q.quoted {
		r.savedC += (q.policy - q.quoted) * int64(h.Assignments)
	}
	r.mu.Unlock()
	return nil
}

// resolve finds the backend serving an already-posted HIT.
func (r *Router) resolve(hitID string) (Backend, bool) {
	r.mu.Lock()
	rh, ok := r.byHIT[hitID]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return r.backends[rh.backend], true
}

// ExtendAssignments implements Extender: the extension goes to the
// serving backend, and the routing entry expects the extra completions.
// Serving backends without an Extender report ErrExtendUnsupported.
func (r *Router) ExtendAssignments(hitID string, extra int) error {
	b, ok := r.resolve(hitID)
	if !ok {
		return fmt.Errorf("backend: router: unknown HIT %s", hitID)
	}
	r.mu.Lock()
	rh, ok := r.byHIT[hitID]
	if !ok {
		// The last expected assignment retired the entry between
		// resolve and here; a completed HIT cannot be extended.
		r.mu.Unlock()
		return fmt.Errorf("backend: router: HIT %s already completed", hitID)
	}
	rh.left += extra
	r.mu.Unlock()
	if err := Extend(b, hitID, extra); err != nil {
		r.mu.Lock()
		if rh, ok := r.byHIT[hitID]; ok {
			rh.left -= extra
			if rh.left <= 0 {
				delete(r.byHIT, hitID)
			}
		}
		r.mu.Unlock()
		return err
	}
	return nil
}

// SubmitExternal implements Backend.
func (r *Router) SubmitExternal(hitID string, ans hit.Answers) error {
	b, ok := r.resolve(hitID)
	if !ok {
		return fmt.Errorf("backend: router: unknown HIT %s", hitID)
	}
	return b.SubmitExternal(hitID, ans)
}

// Dispose implements Backend and retires the routing entry.
func (r *Router) Dispose(hitID string) (mturk.HITStatus, bool) {
	b, ok := r.resolve(hitID)
	if !ok {
		return mturk.HITStatus{}, false
	}
	st, ok := b.Dispose(hitID)
	r.mu.Lock()
	delete(r.byHIT, hitID)
	r.mu.Unlock()
	return st, ok
}

// Status implements Backend.
func (r *Router) Status(hitID string) (mturk.HITStatus, bool) {
	b, ok := r.resolve(hitID)
	if !ok {
		return mturk.HITStatus{}, false
	}
	return b.Status(hitID)
}

// SetErrorHandler implements Backend, forwarding to every member. The
// handler is wrapped so terminally failed assignments also retire the
// routing entry — a HIT that will never complete must not leak it.
func (r *Router) SetErrorHandler(fn func(hitID string, err error)) {
	wrapped := func(hitID string, err error) {
		r.mu.Lock()
		if rh, ok := r.byHIT[hitID]; ok {
			rh.left--
			if rh.left <= 0 {
				delete(r.byHIT, hitID)
			}
		}
		r.mu.Unlock()
		if fn != nil {
			fn(hitID, err)
		}
	}
	for _, b := range r.backends {
		b.SetErrorHandler(wrapped)
	}
}

// SetWorkerFilter implements Backend, forwarding to every member.
func (r *Router) SetWorkerFilter(fn func(workerID string) bool) {
	for _, b := range r.backends {
		b.SetWorkerFilter(fn)
	}
}

// Stats implements Backend: the sum over members.
func (r *Router) Stats() mturk.Stats {
	var out mturk.Stats
	for _, b := range r.backends {
		st := b.Stats()
		out.HITsPosted += st.HITsPosted
		out.AssignmentsCompleted += st.AssignmentsCompleted
		out.QuestionsAnswered += st.QuestionsAnswered
		out.SpentCents += st.SpentCents
		out.ExternalSubmissions += st.ExternalSubmissions
	}
	return out
}

// Counts returns HITs posted per backend name (a copy) and the cents
// routing saved versus the policy price — the dashboard's backends line.
func (r *Router) Counts() (map[string]int64, budget.Cents) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.hitsBy))
	for name, n := range r.hitsBy {
		out[name] = n
	}
	return out, budget.Cents(r.savedC)
}

// Members lists the member backend names, default first, then sorted.
func (r *Router) Members() []string {
	out := []string{r.def}
	var rest []string
	for name := range r.backends {
		if name != r.def {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
