package backend

import "repro/internal/mturk"

// Sim is the reference backend: the sharded in-process simulated
// marketplace, unchanged. Every method forwards to the embedded
// marketplace, so the sim path is byte-for-byte the pre-extraction
// engine — virtual-clock determinism and verify fingerprints included.
type Sim struct {
	*mturk.Marketplace
}

// NewSim wraps a simulated marketplace as a Backend.
func NewSim(m *mturk.Marketplace) *Sim { return &Sim{Marketplace: m} }

// Name implements Backend.
func (s *Sim) Name() string { return "sim" }
