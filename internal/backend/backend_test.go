package backend

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// filterHIT builds a one-item yes/no HIT (the cat-filter shape the mturk
// package's own tests use).
func filterHIT(id, task string, assignments int) *hit.HIT {
	return &hit.HIT{
		ID: id, Task: task, Type: qlang.TaskFilter,
		Question: "cat?", Response: qlang.Response{Kind: qlang.ResponseYesNo},
		Items:       []hit.Item{{Key: "k1", Args: []relation.Value{relation.NewImage("x.png")}}},
		RewardCents: 2, Assignments: assignments,
	}
}

func orderHIT(id string, keys ...string) *hit.HIT {
	h := &hit.HIT{
		ID: id, Task: "rankSquares", Type: qlang.TaskRank,
		Question: "order by size", Response: qlang.Response{Kind: qlang.ResponseOrder},
		RewardCents: 3, Assignments: 1,
	}
	for _, k := range keys {
		h.Items = append(h.Items, hit.Item{Key: k, Args: []relation.Value{relation.NewString(k)}})
	}
	return h
}

func joinHIT(id string) *hit.HIT {
	return &hit.HIT{
		ID: id, Task: "sameCeleb", Type: qlang.TaskJoinPredicate,
		Question: "same person?",
		Response: qlang.Response{Kind: qlang.ResponseJoinColumns},
		Left: []hit.Item{
			{Key: "l1", Args: []relation.Value{relation.NewString("a")}},
			{Key: "l2", Args: []relation.Value{relation.NewString("b")}},
		},
		Right: []hit.Item{
			{Key: "r1", Args: []relation.Value{relation.NewString("a")}},
		},
		RewardCents: 4, Assignments: 1,
	}
}

// collect gathers assignment results thread-safely.
type collect struct {
	mu      sync.Mutex
	results []mturk.AssignmentResult
}

func (c *collect) add(r mturk.AssignmentResult) {
	c.mu.Lock()
	c.results = append(c.results, r)
	c.mu.Unlock()
}

func (c *collect) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}

// yesModel answers true to everything.
func yesModel(task string, tt qlang.TaskType, args []relation.Value) relation.Value {
	return relation.NewBool(true)
}

func drain(c *mturk.Clock) {
	for c.Step() {
	}
}

func TestLLMAnswersFilterHIT(t *testing.T) {
	clock := mturk.NewClock()
	l := NewLLM(clock, LLMConfig{Model: yesModel, PriceCents: 1})
	var got collect
	h := filterHIT(l.NewHITID(), "isCat", 3)
	h.RewardCents = 1
	if err := l.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if got.len() != 3 {
		t.Fatalf("assignments = %d, want 3", got.len())
	}
	got.mu.Lock()
	for i, r := range got.results {
		if !r.Answers.Values["k1"].Truthy() {
			t.Errorf("assignment %d answered false", i)
		}
		if r.External {
			t.Errorf("assignment %d marked external", i)
		}
	}
	// Completions land at distinct, increasing virtual times.
	if got.results[0].SubmittedAt >= got.results[1].SubmittedAt {
		t.Error("assignment times not strictly increasing")
	}
	got.mu.Unlock()
	st, ok := l.Status(h.ID)
	if !ok || st.Completed != 3 || st.Spent != 3 || st.Open() {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
	stats := l.Stats()
	if stats.HITsPosted != 1 || stats.AssignmentsCompleted != 3 || stats.SpentCents != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLLMOrderScoresBecomeRanks(t *testing.T) {
	clock := mturk.NewClock()
	// The model scores items by name length: "bb" < "ccc" < "dddd".
	model := func(task string, tt qlang.TaskType, args []relation.Value) relation.Value {
		return relation.NewInt(int64(len(args[0].Str())))
	}
	l := NewLLM(clock, LLMConfig{Model: model})
	var got collect
	h := orderHIT(l.NewHITID(), "ccc", "bb", "dddd")
	if err := l.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if got.len() != 1 {
		t.Fatalf("assignments = %d", got.len())
	}
	vals := got.results[0].Answers.Values
	want := map[string]int64{"bb": 0, "ccc": 1, "dddd": 2}
	for k, rank := range want {
		if vals[k].Int() != rank {
			t.Errorf("rank[%s] = %v, want %d", k, vals[k], rank)
		}
	}
}

func TestLLMAnswersJoinGrid(t *testing.T) {
	clock := mturk.NewClock()
	// Same text on both sides → true.
	model := func(task string, tt qlang.TaskType, args []relation.Value) relation.Value {
		return relation.NewBool(args[0].Str() == args[1].Str())
	}
	l := NewLLM(clock, LLMConfig{Model: model})
	var got collect
	h := joinHIT(l.NewHITID())
	if err := l.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if got.len() != 1 {
		t.Fatalf("assignments = %d", got.len())
	}
	vals := got.results[0].Answers.Values
	if len(vals) != 2 {
		t.Fatalf("answers = %v, want one per pair", vals)
	}
	if !vals[hit.PairKey("l1", "r1")].Truthy() {
		t.Error("matching pair answered false")
	}
	if vals[hit.PairKey("l2", "r1")].Truthy() {
		t.Error("mismatched pair answered true")
	}
}

func TestLLMDuplicateAndDispose(t *testing.T) {
	clock := mturk.NewClock()
	l := NewLLM(clock, LLMConfig{Model: yesModel, Latency: time.Minute})
	h := filterHIT("LHIT-X", "isCat", 2)
	var got collect
	if err := l.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	if err := l.Post(filterHIT("LHIT-X", "isCat", 2), got.add); err == nil {
		t.Error("duplicate HIT id accepted")
	}
	// Step one completion through, then dispose; the second scheduled
	// completion must be discarded unpaid.
	clock.Step()
	st, ok := l.Dispose(h.ID)
	if !ok || st.Completed != 1 || st.Spent != 2 {
		t.Fatalf("dispose status = %+v ok=%v", st, ok)
	}
	drain(clock)
	if got.len() != 1 {
		t.Fatalf("assignments after dispose = %d, want 1", got.len())
	}
	if l.Stats().SpentCents != 2 {
		t.Fatalf("spent = %v, want 2", l.Stats().SpentCents)
	}
	if _, ok := l.Status(h.ID); ok {
		t.Error("disposed HIT still has status")
	}
}

func TestLLMSubmitExternalFillsPaidSlot(t *testing.T) {
	clock := mturk.NewClock()
	l := NewLLM(clock, LLMConfig{Model: yesModel, Latency: time.Minute})
	h := filterHIT(l.NewHITID(), "isCat", 1)
	var got collect
	if err := l.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	ans := hit.Answers{WorkerID: "human-1", Values: map[string]relation.Value{"k1": relation.NewBool(false)}}
	if err := l.SubmitExternal(h.ID, ans); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	// The external answer filled the only slot; the scheduled model
	// completion was discarded.
	if got.len() != 1 || !got.results[0].External {
		t.Fatalf("results = %+v", got.results)
	}
	st, _ := l.Status(h.ID)
	if st.Completed != 1 || st.Spent != 2 {
		t.Fatalf("status = %+v", st)
	}
	if err := l.SubmitExternal(h.ID, ans); err == nil {
		t.Error("external submission on full HIT accepted")
	}
}

func TestSimWrapsMarketplace(t *testing.T) {
	clock := mturk.NewClock()
	market := mturk.NewMarketplace(clock, perfectPool{})
	s := NewSim(market)
	if s.Name() != "sim" {
		t.Fatalf("name = %q", s.Name())
	}
	if s.Clock() != clock {
		t.Fatal("clock not passed through")
	}
	var got collect
	h := filterHIT(s.NewHITID(), "isCat", 2)
	if err := s.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if got.len() != 2 {
		t.Fatalf("assignments = %d", got.len())
	}
	if st, ok := s.Status(h.ID); !ok || st.Completed != 2 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
}

// perfectPool answers every question true after one virtual minute.
type perfectPool struct{}

func (perfectPool) Claim(h *hit.HIT, now mturk.VirtualTime) (mturk.Claim, bool) {
	return mturk.Claim{
		WorkerID: "w1",
		Delay:    time.Minute,
		Answer: func() (hit.Answers, error) {
			vals := make(map[string]relation.Value)
			for _, k := range h.Keys() {
				vals[k] = relation.NewBool(true)
			}
			return hit.Answers{Values: vals}, nil
		},
	}, true
}

func newTestRouter(t *testing.T) (*Router, *mturk.Clock, *LLM) {
	t.Helper()
	clock := mturk.NewClock()
	market := mturk.NewMarketplace(clock, perfectPool{})
	llm := NewLLM(clock, LLMConfig{Model: yesModel, PriceCents: 1})
	r, err := NewRouter("sim", NewSim(market), llm)
	if err != nil {
		t.Fatal(err)
	}
	return r, clock, llm
}

func TestRouterValidation(t *testing.T) {
	clock := mturk.NewClock()
	sim := NewSim(mturk.NewMarketplace(clock, perfectPool{}))
	if _, err := NewRouter("sim"); err == nil {
		t.Error("empty router accepted")
	}
	if _, err := NewRouter("nope", sim); err == nil {
		t.Error("unknown default accepted")
	}
	if _, err := NewRouter("sim", sim, NewSim(mturk.NewMarketplace(clock, perfectPool{}))); err == nil {
		t.Error("duplicate backend name accepted")
	}
	other := mturk.NewClock()
	if _, err := NewRouter("sim", sim, NewLLM(other, LLMConfig{Model: yesModel})); err == nil ||
		!strings.Contains(err.Error(), "different clock") {
		t.Errorf("mismatched clocks accepted: %v", err)
	}
}

func TestRouterPinAndDefault(t *testing.T) {
	r, clock, llm := newTestRouter(t)
	if err := r.Pin("isCat", "llm"); err != nil {
		t.Fatal(err)
	}
	if err := r.Pin("x", "nope"); err == nil {
		t.Error("pin to unknown backend accepted")
	}
	var got collect
	pinned := filterHIT(r.NewHITID(), "isCat", 1)
	free := filterHIT(r.NewHITID(), "isDog", 1)
	if err := r.Post(pinned, got.add); err != nil {
		t.Fatal(err)
	}
	if err := r.Post(free, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if got.len() != 2 {
		t.Fatalf("assignments = %d", got.len())
	}
	if llm.Stats().HITsPosted != 1 {
		t.Fatalf("llm HITs = %d, want the pinned one", llm.Stats().HITsPosted)
	}
	counts, _ := r.Counts()
	if counts["llm"] != 1 || counts["sim"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "sim" || got[1] != "llm" {
		t.Fatalf("members = %v", got)
	}
}

func TestRouterChooserAndFallback(t *testing.T) {
	r, clock, llm := newTestRouter(t)
	r.SetChooser(func(task string, tt qlang.TaskType) string {
		if tt == qlang.TaskFilter {
			return "llm"
		}
		return "not-a-backend" // must fall back to the default
	})
	var got collect
	f := filterHIT(r.NewHITID(), "isCat", 1)
	o := orderHIT(r.NewHITID(), "a", "bb")
	if err := r.Post(f, got.add); err != nil {
		t.Fatal(err)
	}
	if err := r.Post(o, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if llm.Stats().HITsPosted != 1 {
		t.Fatalf("llm HITs = %d, want only the filter HIT", llm.Stats().HITsPosted)
	}
	counts, _ := r.Counts()
	if counts["sim"] != 1 {
		t.Fatalf("counts = %v, want rank HIT routed to default", counts)
	}
	// Pins outrank the chooser.
	if err := r.Pin("isCat", "sim"); err != nil {
		t.Fatal(err)
	}
	if name := r.RouteFor("isCat", qlang.TaskFilter); name != "sim" {
		t.Fatalf("RouteFor pinned task = %q", name)
	}
}

func TestRouterSavingsAccounting(t *testing.T) {
	r, clock, _ := newTestRouter(t)
	if err := r.Pin("isCat", "llm"); err != nil {
		t.Fatal(err)
	}
	// Policy says 2¢; the LLM quotes 1¢. Quoting then posting at the
	// quote books the difference per assignment.
	price := r.QuoteCents("isCat", qlang.TaskFilter, 2)
	if price != 1 {
		t.Fatalf("quote = %d", price)
	}
	h := filterHIT(r.NewHITID(), "isCat", 3)
	h.RewardCents = price
	var got collect
	if err := r.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	_, saved := r.Counts()
	if saved != 3 {
		t.Fatalf("saved = %v cents, want (2-1)×3 = 3", saved)
	}
	// A sim-routed task quotes the policy price: no savings.
	price = r.QuoteCents("isDog", qlang.TaskFilter, 2)
	h2 := filterHIT(r.NewHITID(), "isDog", 1)
	h2.RewardCents = price
	if err := r.Post(h2, got.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if _, saved := r.Counts(); saved != 3 {
		t.Fatalf("saved moved to %v on a policy-priced post", saved)
	}
}

func TestRouterRoutesLifecycleCalls(t *testing.T) {
	r, clock, llm := newTestRouter(t)
	if err := r.Pin("isCat", "llm"); err != nil {
		t.Fatal(err)
	}
	var got collect
	h := filterHIT(r.NewHITID(), "isCat", 2)
	if err := r.Post(h, got.add); err != nil {
		t.Fatal(err)
	}
	if err := r.Post(filterHIT(h.ID, "isCat", 2), got.add); err == nil {
		t.Error("duplicate HIT id accepted")
	}
	// Status resolves through the routing table to the llm backend.
	if st, ok := r.Status(h.ID); !ok || st.Completed != 0 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
	ext := hit.Answers{WorkerID: "human-1", Values: map[string]relation.Value{"k1": relation.NewBool(true)}}
	if err := r.SubmitExternal(h.ID, ext); err != nil {
		t.Fatal(err)
	}
	st, ok := r.Dispose(h.ID)
	if !ok || st.Completed != 1 {
		t.Fatalf("dispose = %+v ok=%v", st, ok)
	}
	if llm.Stats().ExternalSubmissions != 1 {
		t.Fatalf("external submissions = %d", llm.Stats().ExternalSubmissions)
	}
	// The entry is retired: later lifecycle calls miss.
	if _, ok := r.Status(h.ID); ok {
		t.Error("disposed HIT still resolves")
	}
	if err := r.SubmitExternal(h.ID, ext); err == nil {
		t.Error("external submission on disposed HIT accepted")
	}
	drain(clock)
}

func TestRouterRetiresEntriesOnCompletionAndFailure(t *testing.T) {
	clock := mturk.NewClock()
	market := mturk.NewMarketplace(clock, &failingPool{})
	llm := NewLLM(clock, LLMConfig{Model: yesModel})
	r, err := NewRouter("llm", NewSim(market), llm)
	if err != nil {
		t.Fatal(err)
	}
	var failures collect
	var mu sync.Mutex
	var failed []string
	r.SetErrorHandler(func(hitID string, err error) {
		mu.Lock()
		failed = append(failed, hitID)
		mu.Unlock()
	})

	// Completion path: after the last assignment the entry is gone.
	done := filterHIT(r.NewHITID(), "isCat", 1)
	if err := r.Post(done, failures.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	if _, ok := r.Status(done.ID); ok {
		t.Error("completed HIT entry not retired")
	}

	// Failure path: a sim HIT whose pool never produces a worker fails
	// terminally; the wrapped error handler must retire the entry too.
	if err := r.Pin("isCat", "sim"); err != nil {
		t.Fatal(err)
	}
	dead := filterHIT(r.NewHITID(), "isCat", 1)
	if err := r.Post(dead, failures.add); err != nil {
		t.Fatal(err)
	}
	drain(clock)
	mu.Lock()
	nFailed := len(failed)
	mu.Unlock()
	if nFailed != 1 || failed[0] != dead.ID {
		t.Fatalf("failures = %v", failed)
	}
	if _, ok := r.Status(dead.ID); ok {
		t.Error("failed HIT entry not retired")
	}
}

// failingPool never has a worker available.
type failingPool struct{}

func (*failingPool) Claim(h *hit.HIT, now mturk.VirtualTime) (mturk.Claim, bool) {
	return mturk.Claim{}, false
}

func TestQuoteAndServingNameHelpers(t *testing.T) {
	clock := mturk.NewClock()
	llm := NewLLM(clock, LLMConfig{Model: yesModel, PriceCents: 1})
	sim := NewSim(mturk.NewMarketplace(clock, perfectPool{}))
	// Plain backends quote through Pricer (or echo the policy) and
	// serve under their own name.
	if got := Quote(llm, "t", qlang.TaskFilter, 5); got != 1 {
		t.Fatalf("llm quote = %d", got)
	}
	if got := Quote(sim, "t", qlang.TaskFilter, 5); got != 5 {
		t.Fatalf("sim quote = %d", got)
	}
	if got := ServingName(sim, "t", qlang.TaskFilter); got != "sim" {
		t.Fatalf("sim serving name = %q", got)
	}
	// A router resolves both per task.
	r, err := NewRouter("sim", sim, llm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Pin("t", "llm"); err != nil {
		t.Fatal(err)
	}
	if got := ServingName(r, "t", qlang.TaskFilter); got != "llm" {
		t.Fatalf("routed serving name = %q", got)
	}
	if got := Quote(r, "t", qlang.TaskFilter, 5); got != 1 {
		t.Fatalf("routed quote = %d", got)
	}
	if got := ServingName(r, "u", qlang.TaskFilter); got != "sim" {
		t.Fatalf("default serving name = %q", got)
	}
}
