package backend

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Wire types: the MTurk-shaped REST surface both sides of the HTTP
// driver speak. Values travel as base64 of the relation binary codec so
// every Kind round-trips exactly.

type wireItem struct {
	Key    string   `json:"key"`
	Task   string   `json:"task,omitempty"`
	Prompt string   `json:"prompt,omitempty"`
	Args   []string `json:"args,omitempty"`
}

type wireHIT struct {
	ID          string         `json:"id"`
	Task        string         `json:"task"`
	Type        int            `json:"type"`
	Title       string         `json:"title,omitempty"`
	Question    string         `json:"question,omitempty"`
	Response    qlang.Response `json:"response"`
	Items       []wireItem     `json:"items,omitempty"`
	Left        []wireItem     `json:"left,omitempty"`
	Right       []wireItem     `json:"right,omitempty"`
	RewardCents int64          `json:"rewardCents"`
	Assignments int            `json:"assignments"`
	GroupKeys   []string       `json:"groupKeys,omitempty"`
}

type wireAssignment struct {
	ID          string            `json:"id"`
	WorkerID    string            `json:"workerId"`
	Values      map[string]string `json:"values"`
	SubmittedAt int64             `json:"submittedAt"`
	External    bool              `json:"external"`
}

type wireFailure struct {
	Error string `json:"error"`
}

type wirePage struct {
	Assignments []wireAssignment `json:"assignments"`
	Failures    []wireFailure    `json:"failures,omitempty"`
	Next        int              `json:"next"`
	Done        bool             `json:"done"`
}

type wireExtend struct {
	Extra int `json:"extra"`
}

type wireStatus struct {
	ID         string `json:"id"`
	Completed  int    `json:"completed"`
	SpentCents int64  `json:"spentCents"`
	Open       bool   `json:"open"`
}

func encodeValue(v relation.Value) string {
	return base64.StdEncoding.EncodeToString(v.Encode(nil))
}

func decodeWireValue(s string) (relation.Value, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return relation.Value{}, err
	}
	v, rest, err := relation.DecodeValue(raw)
	if err != nil || len(rest) != 0 {
		return relation.Value{}, fmt.Errorf("backend: bad value encoding: %v", err)
	}
	return v, nil
}

func encodeArgs(args []relation.Value) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = encodeValue(a)
	}
	return out
}

func decodeWireItem(w wireItem) (hit.Item, error) {
	it := hit.Item{Key: w.Key, Task: w.Task, Prompt: w.Prompt}
	for _, s := range w.Args {
		v, err := decodeWireValue(s)
		if err != nil {
			return it, err
		}
		it.Args = append(it.Args, v)
	}
	return it, nil
}

// serverHIT is one posted HIT's server-side collection log: every
// assignment (and terminal failure) in arrival order, so clients page
// through with a cursor and dedupe by assignment ID.
type serverHIT struct {
	assignments []wireAssignment
	failures    []wireFailure
	expected    int
	settled     int // assignments + failures
}

// Server is an in-repo MTurk-shaped HTTP service: the sandbox the HTTP
// driver is developed and tested against. It wraps a real simulated
// marketplace (with its own clock and worker pool) and drains the clock
// after every mutation, so posted work completes before the response —
// the client's polling, retry, and idempotency machinery sees fully
// realistic payloads without wall-clock waits.
//
// Fault injection: FailNext serves 500s, TearNext truncates response
// bodies mid-write (after the marketplace has processed the request —
// the dangerous kind), DuplicateNext repeats assignment page entries.
type Server struct {
	market *mturk.Marketplace
	clock  *mturk.Clock

	mu     sync.Mutex
	hits   map[string]*serverHIT
	idem   map[string][]byte // Idempotency-Key → response body already sent
	fail   int
	tear   int
	dup    int
	reqs   int64
	posted int64
}

// NewServer wraps a marketplace and its clock as an HTTP service. The
// server installs itself as the marketplace's error handler; callers
// must not overwrite it.
func NewServer(market *mturk.Marketplace, clock *mturk.Clock) *Server {
	s := &Server{
		market: market,
		clock:  clock,
		hits:   make(map[string]*serverHIT),
		idem:   make(map[string][]byte),
	}
	market.SetErrorHandler(func(hitID string, err error) {
		s.mu.Lock()
		if sh, ok := s.hits[hitID]; ok {
			sh.failures = append(sh.failures, wireFailure{Error: err.Error()})
			sh.settled++
		}
		s.mu.Unlock()
	})
	return s
}

// FailNext makes the next n requests fail with 500 before processing.
func (s *Server) FailNext(n int) {
	s.mu.Lock()
	s.fail = n
	s.mu.Unlock()
}

// TearNext makes the next n responses truncate mid-body after the
// request has been fully processed.
func (s *Server) TearNext(n int) {
	s.mu.Lock()
	s.tear = n
	s.mu.Unlock()
}

// DuplicateNext makes the next n assignment pages deliver every entry
// twice, exercising client-side dedupe.
func (s *Server) DuplicateNext(n int) {
	s.mu.Lock()
	s.dup = n
	s.mu.Unlock()
}

// Requests returns how many requests the server has seen (including
// injected failures), for backoff-schedule assertions.
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reqs
}

// Posted returns how many HITs reached the marketplace — the
// no-double-spend assertions pin this.
func (s *Server) Posted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.posted
}

// drain steps the server's clock until no scheduled work remains, so
// every completion lands before the next response is served.
func (s *Server) drain() {
	for s.clock.Step() {
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.reqs++
	if s.fail > 0 {
		s.fail--
		s.mu.Unlock()
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	s.mu.Unlock()

	var body []byte
	status := http.StatusOK
	var err error
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/hits":
		body, status, err = s.handlePost(r)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/hits/") && strings.HasSuffix(r.URL.Path, "/assignments"):
		id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/hits/"), "/assignments")
		body, status, err = s.handleAssignments(id, r.URL.Query().Get("since"))
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/hits/") && strings.HasSuffix(r.URL.Path, "/external"):
		id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/hits/"), "/external")
		body, status, err = s.handleExternal(id, r)
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/hits/") && strings.HasSuffix(r.URL.Path, "/extend"):
		id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/hits/"), "/extend")
		body, status, err = s.handleExtend(id, r)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/hits/"):
		body, status, err = s.handleStatus(strings.TrimPrefix(r.URL.Path, "/hits/"))
	case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/hits/"):
		body, status, err = s.handleDispose(strings.TrimPrefix(r.URL.Path, "/hits/"))
	default:
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}

	s.mu.Lock()
	torn := s.tear > 0
	if torn {
		s.tear--
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if torn && len(body) > 1 {
		_, _ = w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, herr := hj.Hijack(); herr == nil {
				_ = conn.Close() // cut the connection mid-body
			}
		}
		return
	}
	_, _ = w.Write(body)
}

func (s *Server) handlePost(r *http.Request) ([]byte, int, error) {
	key := r.Header.Get("Idempotency-Key")
	s.mu.Lock()
	if key != "" {
		if prev, ok := s.idem[key]; ok {
			s.mu.Unlock()
			return prev, http.StatusOK, nil
		}
	}
	s.mu.Unlock()

	var wh wireHIT
	if err := json.NewDecoder(r.Body).Decode(&wh); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad HIT body: %v", err)
	}
	h := &hit.HIT{
		ID:          wh.ID,
		Task:        wh.Task,
		Type:        qlang.TaskType(wh.Type),
		Title:       wh.Title,
		Question:    wh.Question,
		Response:    wh.Response,
		RewardCents: wh.RewardCents,
		Assignments: wh.Assignments,
		GroupKeys:   wh.GroupKeys,
	}
	for _, wi := range wh.Items {
		it, err := decodeWireItem(wi)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		h.Items = append(h.Items, it)
	}
	for _, wi := range wh.Left {
		it, err := decodeWireItem(wi)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		h.Left = append(h.Left, it)
	}
	for _, wi := range wh.Right {
		it, err := decodeWireItem(wi)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		h.Right = append(h.Right, it)
	}

	s.mu.Lock()
	s.hits[h.ID] = &serverHIT{expected: h.Assignments}
	s.mu.Unlock()
	if err := s.market.Post(h, func(res mturk.AssignmentResult) {
		s.mu.Lock()
		defer s.mu.Unlock()
		sh, ok := s.hits[res.HITID]
		if !ok {
			return
		}
		wa := wireAssignment{
			ID:          fmt.Sprintf("%s-a%03d", res.HITID, len(sh.assignments)+1),
			WorkerID:    res.Answers.WorkerID,
			Values:      make(map[string]string, len(res.Answers.Values)),
			SubmittedAt: int64(res.SubmittedAt),
			External:    res.External,
		}
		for k, v := range res.Answers.Values {
			wa.Values[k] = encodeValue(v)
		}
		sh.assignments = append(sh.assignments, wa)
		if !res.External {
			sh.settled++
		}
	}); err != nil {
		s.mu.Lock()
		delete(s.hits, h.ID)
		s.mu.Unlock()
		return nil, http.StatusConflict, err
	}
	s.mu.Lock()
	s.posted++
	s.mu.Unlock()
	s.drain()

	body, _ := json.Marshal(map[string]string{"id": h.ID})
	if key != "" {
		s.mu.Lock()
		s.idem[key] = body
		s.mu.Unlock()
	}
	return body, http.StatusCreated, nil
}

func (s *Server) handleAssignments(id, sinceStr string) ([]byte, int, error) {
	since, _ := strconv.Atoi(sinceStr)
	s.mu.Lock()
	sh, ok := s.hits[id]
	if !ok {
		s.mu.Unlock()
		return nil, http.StatusNotFound, fmt.Errorf("unknown HIT %s", id)
	}
	page := wirePage{Next: len(sh.assignments), Done: sh.settled >= sh.expected}
	if since < len(sh.assignments) {
		page.Assignments = append(page.Assignments, sh.assignments[since:]...)
	}
	page.Failures = append(page.Failures, sh.failures...)
	dup := s.dup > 0
	if dup && len(page.Assignments) > 0 {
		s.dup--
		page.Assignments = append(page.Assignments, page.Assignments...)
	}
	s.mu.Unlock()
	body, _ := json.Marshal(page)
	return body, http.StatusOK, nil
}

func (s *Server) handleExternal(id string, r *http.Request) ([]byte, int, error) {
	var wa wireAssignment
	if err := json.NewDecoder(r.Body).Decode(&wa); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad assignment body: %v", err)
	}
	ans := hit.Answers{WorkerID: wa.WorkerID, Values: make(map[string]relation.Value, len(wa.Values))}
	for k, enc := range wa.Values {
		v, err := decodeWireValue(enc)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		ans.Values[k] = v
	}
	if err := s.market.SubmitExternal(id, ans); err != nil {
		return nil, http.StatusConflict, err
	}
	s.drain()
	body, _ := json.Marshal(map[string]bool{"ok": true})
	return body, http.StatusOK, nil
}

func (s *Server) handleExtend(id string, r *http.Request) ([]byte, int, error) {
	key := r.Header.Get("Idempotency-Key")
	s.mu.Lock()
	if key != "" {
		if prev, ok := s.idem[key]; ok {
			s.mu.Unlock()
			return prev, http.StatusOK, nil
		}
	}
	s.mu.Unlock()

	var we wireExtend
	if err := json.NewDecoder(r.Body).Decode(&we); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad extend body: %v", err)
	}
	if we.Extra <= 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("extend by %d", we.Extra)
	}
	if err := s.market.ExtendAssignments(id, we.Extra); err != nil {
		return nil, http.StatusConflict, err
	}
	s.mu.Lock()
	if sh, ok := s.hits[id]; ok {
		sh.expected += we.Extra
	}
	s.mu.Unlock()
	s.drain()

	body, _ := json.Marshal(map[string]bool{"ok": true})
	if key != "" {
		s.mu.Lock()
		s.idem[key] = body
		s.mu.Unlock()
	}
	return body, http.StatusOK, nil
}

func (s *Server) handleStatus(id string) ([]byte, int, error) {
	st, ok := s.market.Status(id)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown HIT %s", id)
	}
	body, _ := json.Marshal(wireStatus{
		ID: id, Completed: st.Completed, SpentCents: int64(st.Spent), Open: st.Open(),
	})
	return body, http.StatusOK, nil
}

func (s *Server) handleDispose(id string) ([]byte, int, error) {
	st, ok := s.market.Dispose(id)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown HIT %s", id)
	}
	body, _ := json.Marshal(wireStatus{
		ID: id, Completed: st.Completed, SpentCents: int64(st.Spent), Open: false,
	})
	return body, http.StatusOK, nil
}
