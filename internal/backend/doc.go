// Package backend defines the worker-backend contract: the narrow seam
// between the Task Manager (internal/taskmgr) and whatever actually
// answers HITs. The paper's engine posts to Amazon Mechanical Turk; this
// repo grew up against an in-process simulator. Extracting the seam lets
// the same Task Manager drive the simulator, a real MTurk-shaped HTTP
// service, an LLM worker crowd, or a per-task mix of all three — and
// lets the optimizer choose *where* work runs the same way it already
// chooses sort strategy and join pre-filters.
//
// # Contract
//
// A Backend must honor the semantics the Task Manager was built against
// (they are exactly the simulated marketplace's):
//
//   - Post registers the HIT and eventually delivers h.Assignments
//     assignment callbacks, each carrying one worker's answers for every
//     item key in the HIT. Callbacks may arrive on any goroutine, but
//     never before Post returns its nil error, and never again after the
//     HIT has been disposed. An assignment that can never complete must
//     be reported through the error handler instead — the Task Manager
//     uses those to finalize with fewer votes and refund the remainder.
//   - Post must reject a duplicate HIT ID. IDs come from NewHITID and
//     must be unique per backend instance for its lifetime.
//   - Dispose closes the HIT to further assignments and returns its
//     final status. status.Spent must equal RewardCents × completed
//     assignments at that instant: the Task Manager refunds
//     cost − Spent, so a backend that over- or under-reports Spent
//     corrupts the ledger.
//   - SubmitExternal injects one extra answer for an open HIT (the REPL
//     and tests use it); it does not count toward the posted assignment
//     plan.
//   - Clock returns the clock the backend schedules against. The Task
//     Manager stamps postedAt, measures latency, and schedules linger
//     flushes on this clock, so a backend must return a live clock even
//     if (like the HTTP driver) its own completions ride wall time.
//
// # Idempotency
//
// Backends that cross a network must make re-posting safe: the HTTP
// driver sends the HIT ID as an idempotency token so a POST retried
// after a timeout or 5xx lands at most once server-side — a retry can
// never double-spend the account.
//
// # Determinism
//
// The reference Sim backend wraps the sharded in-process marketplace
// unchanged: all completions are scheduled on the discrete-event virtual
// clock, so a seeded run replays identically and every qurk-load -verify
// fingerprint is a pure function of the workload. The LLM backend keeps
// the same property by scheduling its model answers on the shared
// virtual clock. Only the HTTP driver introduces wall-clock time, and it
// is excluded from the deterministic verify paths for that reason.
package backend
