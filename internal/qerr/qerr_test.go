package qerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/qlang"
)

func TestClassifyBudget(t *testing.T) {
	err := Classify(fmt.Errorf("taskmgr: isCat: %w", budget.ErrExhausted))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestClassifyContext(t *testing.T) {
	if err := Classify(context.Canceled); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if err := Classify(context.DeadlineExceeded); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestClassifyParse(t *testing.T) {
	_, perr := qlang.ParseQuery("SELECT FROM")
	if perr == nil {
		t.Fatal("expected a parse error")
	}
	err := Classify(perr)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 1 || pe.Col <= 0 {
		t.Fatalf("want line 1 and a column, got line %d col %d", pe.Line, pe.Col)
	}
	if !strings.Contains(pe.Error(), "line 1") {
		t.Fatalf("Error() lacks position: %q", pe.Error())
	}
}

func TestClassifyIdempotent(t *testing.T) {
	wrapped := fmt.Errorf("query 3: %w", ErrDeadline)
	if got := Classify(wrapped); !errors.Is(got, ErrDeadline) {
		t.Fatalf("want ErrDeadline preserved, got %v", got)
	}
	plain := errors.New("something else")
	if got := Classify(plain); got != plain {
		t.Fatalf("unclassifiable error must pass through, got %v", got)
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(context.DeadlineExceeded) != ErrDeadline {
		t.Fatal("deadline not mapped")
	}
	if FromContext(context.Canceled) != ErrCanceled {
		t.Fatal("cancel not mapped")
	}
}
