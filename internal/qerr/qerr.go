// Package qerr defines the typed error taxonomy of the query API.
// Every terminal query failure surfaced through Rows.Err, QueryAndWait
// or a task Outcome wraps one of these sentinels (or *ParseError), so
// callers branch with errors.Is / errors.As instead of string matching —
// the contract production database drivers converged on.
package qerr

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/qlang"
)

// Sentinel errors. They are returned wrapped (with task / query
// context); always test with errors.Is.
var (
	// ErrCanceled reports that the query's context was canceled (or the
	// query was closed / the engine shut down) before it finished.
	ErrCanceled = errors.New("qurk: query canceled")
	// ErrDeadline reports that the query's virtual-time deadline
	// (WithDeadline) expired before it finished.
	ErrDeadline = errors.New("qurk: query deadline exceeded")
	// ErrBudgetExhausted reports that a budget — the engine account or a
	// per-query WithBudget cap — could not cover a HIT.
	ErrBudgetExhausted = errors.New("qurk: budget exhausted")
)

// ParseError is a query-text error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("qurk: parse error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Classify maps a low-level error onto the taxonomy: budget failures
// gain ErrBudgetExhausted, qlang position errors become *ParseError,
// context errors become ErrCanceled / ErrDeadline. Errors already in
// the taxonomy and unclassifiable errors pass through unchanged.
func Classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrBudgetExhausted):
		return err
	case errors.Is(err, budget.ErrExhausted):
		return fmt.Errorf("%w: %v", ErrBudgetExhausted, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrDeadline, err)
	}
	var qe *qlang.Error
	if errors.As(err, &qe) {
		return &ParseError{Line: qe.Line, Col: qe.Col, Msg: qe.Msg}
	}
	var pe *ParseError
	if errors.As(err, &pe) {
		return pe
	}
	return err
}

// FromContext converts a context's termination cause into the taxonomy
// (ErrDeadline for deadline expiry, ErrCanceled otherwise).
func FromContext(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}
