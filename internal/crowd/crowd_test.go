package crowd

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// boolOracle says an image is a cat iff its name contains "cat".
var boolOracle = OracleFunc(func(task string, args []relation.Value) relation.Value {
	return relation.NewBool(strings.Contains(args[0].Str(), "cat"))
})

func ynHIT(id string, keys ...string) *hit.HIT {
	h := &hit.HIT{
		ID: id, Task: "isCat", Type: qlang.TaskFilter,
		Question: "cat?", Response: qlang.Response{Kind: qlang.ResponseYesNo},
		RewardCents: 1, Assignments: 1,
	}
	for _, k := range keys {
		h.Items = append(h.Items, hit.Item{Key: k, Args: []relation.Value{relation.NewImage(k + ".png")}})
	}
	return h
}

func mustAnswer(t *testing.T, p *Pool, h *hit.HIT) hit.Answers {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		claim, ok := p.Claim(h, 0)
		if !ok {
			t.Fatal("no worker")
		}
		ans, err := claim.Answer()
		if err != nil {
			continue // abandoned; try another claim
		}
		return ans
	}
	t.Fatal("all claims abandoned")
	return hit.Answers{}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(Config{}, boolOracle)
	if p.Size() != 100 {
		t.Fatalf("size = %d", p.Size())
	}
	stats := p.Stats()
	spammers := 0
	for _, s := range stats {
		if s.Skill < 0.55 || s.Skill > 1.0 {
			t.Errorf("skill out of range: %v", s.Skill)
		}
		if s.Spammer {
			spammers++
		}
	}
	if spammers == 0 || spammers > 20 {
		t.Errorf("spammers = %d of 100", spammers)
	}
}

func TestPoolDeterminism(t *testing.T) {
	run := func() []relation.Value {
		p := NewPool(Config{Seed: 42, AbandonRate: 1e-12}, boolOracle)
		var out []relation.Value
		for i := 0; i < 20; i++ {
			ans := mustAnswer(t, p, ynHIT("h", "cat1", "dog1"))
			out = append(out, ans.Values["cat1"], ans.Values["dog1"])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAnswerAccuracyTracksSkill(t *testing.T) {
	p := NewPool(Config{Seed: 7, Workers: 200, MeanSkill: 0.9, SpamFraction: 1e-9, AbandonRate: 1e-12}, boolOracle)
	correct, total := 0, 0
	for i := 0; i < 300; i++ {
		h := ynHIT("h", "cat-x", "dog-y")
		ans := mustAnswer(t, p, h)
		if ans.Values["cat-x"].Bool() {
			correct++
		}
		if !ans.Values["dog-y"].Bool() {
			correct++
		}
		total += 2
	}
	acc := float64(correct) / float64(total)
	if acc < 0.82 || acc > 0.97 {
		t.Fatalf("observed accuracy %.3f, want ≈0.90", acc)
	}
}

func TestBatchPenaltyDegradesAccuracy(t *testing.T) {
	accFor := func(batch int) float64 {
		p := NewPool(Config{Seed: 3, Workers: 300, MeanSkill: 0.9, BatchPenalty: 0.04,
			SpamFraction: 1e-9, AbandonRate: 1e-12}, boolOracle)
		keys := make([]string, batch)
		for i := range keys {
			keys[i] = "cat" + strings.Repeat("x", i+1)
		}
		correct, total := 0, 0
		for r := 0; r < 120; r++ {
			ans := mustAnswer(t, p, ynHIT("h", keys...))
			for _, k := range keys {
				if ans.Values[k].Bool() {
					correct++
				}
				total++
			}
		}
		return float64(correct) / float64(total)
	}
	small, large := accFor(1), accFor(10)
	if large >= small {
		t.Fatalf("batching should reduce accuracy: batch1=%.3f batch10=%.3f", small, large)
	}
	if small-large < 0.05 {
		t.Fatalf("penalty too weak: batch1=%.3f batch10=%.3f", small, large)
	}
}

func TestClaimLatencyGrowsWithBatch(t *testing.T) {
	p1 := NewPool(Config{Seed: 5, Workers: 1, AbandonRate: 1e-12}, boolOracle)
	p2 := NewPool(Config{Seed: 5, Workers: 1, AbandonRate: 1e-12}, boolOracle)
	small, _ := p1.Claim(ynHIT("h", "a"), 0)
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = strings.Repeat("k", i+1)
	}
	large, _ := p2.Claim(ynHIT("h", keys...), 0)
	if large.Delay <= small.Delay {
		t.Fatalf("20-question HIT (%v) should take longer than 1-question (%v)", large.Delay, small.Delay)
	}
}

func TestWorkerSerializesAssignments(t *testing.T) {
	// One worker, two HITs: the second must start after the first ends.
	p := NewPool(Config{Seed: 5, Workers: 1, AbandonRate: 1e-12}, boolOracle)
	c1, _ := p.Claim(ynHIT("h1", "a"), 0)
	c2, _ := p.Claim(ynHIT("h2", "b"), 0)
	if c2.Delay <= c1.Delay {
		t.Fatalf("second assignment (%v) should finish after first (%v)", c2.Delay, c1.Delay)
	}
}

func TestManyWorkersParallelize(t *testing.T) {
	p := NewPool(Config{Seed: 5, Workers: 50, AbandonRate: 1e-12}, boolOracle)
	var maxDelay time.Duration
	for i := 0; i < 10; i++ {
		c, ok := p.Claim(ynHIT("h", "a"), 0)
		if !ok {
			t.Fatal("no worker")
		}
		if c.Delay > maxDelay {
			maxDelay = c.Delay
		}
	}
	// With 50 workers, 10 one-question HITs run in parallel: the slowest
	// should still be far under 10 sequential service times.
	if maxDelay > 5*time.Minute {
		t.Fatalf("maxDelay = %v; expected parallel dispatch", maxDelay)
	}
}

func TestEmptyPool(t *testing.T) {
	p := NewPool(Config{Workers: -1}, boolOracle)
	_ = p // Workers<=0 defaults to 100, so build a truly empty pool:
	p2 := &Pool{cfg: Config{}.withDefaults()}
	if _, ok := p2.Claim(ynHIT("h", "a"), 0); ok {
		t.Fatal("empty pool must refuse claims")
	}
}

func TestAbandonment(t *testing.T) {
	p := NewPool(Config{Seed: 11, AbandonRate: 0.9999999}, boolOracle)
	c, ok := p.Claim(ynHIT("h", "a"), 0)
	if !ok {
		t.Fatal("no worker")
	}
	if _, err := c.Answer(); err == nil {
		t.Fatal("expected abandonment error")
	}
}

func TestJoinColumnsAnswers(t *testing.T) {
	// Truth: match iff both args share the same prefix before '-'.
	oracle := OracleFunc(func(task string, args []relation.Value) relation.Value {
		a := strings.SplitN(args[0].Str(), "-", 2)[0]
		b := strings.SplitN(args[1].Str(), "-", 2)[0]
		return relation.NewBool(a == b)
	})
	p := NewPool(Config{Seed: 2, Workers: 300, MeanSkill: 0.95, SpamFraction: 1e-9, AbandonRate: 1e-12}, oracle)
	h := &hit.HIT{
		ID: "j", Task: "samePerson", Type: qlang.TaskJoinPredicate,
		Question: "match", RewardCents: 1, Assignments: 1,
		Response: qlang.Response{Kind: qlang.ResponseJoinColumns,
			LeftLabel: "L", RightLabel: "R", LeftParam: "a", RightParam: "b"},
		Left: []hit.Item{{Key: "l1", Args: []relation.Value{relation.NewString("ann-1")}}},
		Right: []hit.Item{{Key: "r1", Args: []relation.Value{relation.NewString("ann-2")}},
			{Key: "r2", Args: []relation.Value{relation.NewString("bob-1")}}},
	}
	match, nomatch := 0, 0
	for i := 0; i < 100; i++ {
		ans := mustAnswer(t, p, h)
		if ans.Values[hit.PairKey("l1", "r1")].Bool() {
			match++
		}
		if ans.Values[hit.PairKey("l1", "r2")].Bool() {
			nomatch++
		}
	}
	if match < 80 {
		t.Errorf("true pair matched only %d/100", match)
	}
	if nomatch > 20 {
		t.Errorf("false pair matched %d/100", nomatch)
	}
}

func TestRatingAnswersStayInScale(t *testing.T) {
	oracle := OracleFunc(func(task string, args []relation.Value) relation.Value {
		return relation.NewInt(4)
	})
	p := NewPool(Config{Seed: 9, AbandonRate: 1e-12}, oracle)
	h := &hit.HIT{
		ID: "r", Task: "score", Type: qlang.TaskRating,
		Question: "rate", RewardCents: 1, Assignments: 1,
		Response: qlang.Response{Kind: qlang.ResponseRating, ScaleMin: 1, ScaleMax: 5},
		Items:    []hit.Item{{Key: "a", Args: []relation.Value{relation.NewImage("a.png")}}},
	}
	for i := 0; i < 200; i++ {
		ans := mustAnswer(t, p, h)
		v := ans.Values["a"].Int()
		if v < 1 || v > 5 {
			t.Fatalf("rating %d out of scale", v)
		}
	}
}

func TestOrderAnswersArePermutation(t *testing.T) {
	oracle := OracleFunc(func(task string, args []relation.Value) relation.Value {
		return relation.NewFloat(float64(len(args[0].Str())))
	})
	p := NewPool(Config{Seed: 13, AbandonRate: 1e-12}, oracle)
	h := &hit.HIT{
		ID: "o", Task: "rank", Type: qlang.TaskRank,
		Question: "order", RewardCents: 1, Assignments: 1,
		Response: qlang.Response{Kind: qlang.ResponseOrder},
		Items: []hit.Item{
			{Key: "a", Args: []relation.Value{relation.NewString("x")}},
			{Key: "b", Args: []relation.Value{relation.NewString("xxx")}},
			{Key: "c", Args: []relation.Value{relation.NewString("xx")}},
		},
	}
	ans := mustAnswer(t, p, h)
	seen := map[int64]bool{}
	for _, k := range []string{"a", "b", "c"} {
		seen[ans.Values[k].Int()] = true
	}
	if len(seen) != 3 || !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("ranks not a permutation: %v", ans.Values)
	}
}

func TestChoiceAnswers(t *testing.T) {
	oracle := OracleFunc(func(task string, args []relation.Value) relation.Value {
		return relation.NewString("pos")
	})
	p := NewPool(Config{Seed: 21, Workers: 100, MeanSkill: 0.9, AbandonRate: 1e-12}, oracle)
	h := &hit.HIT{
		ID: "c", Task: "sentiment", Type: qlang.TaskQuestion,
		Question: "sentiment?", RewardCents: 1, Assignments: 1,
		Response: qlang.Response{Kind: qlang.ResponseChoice, Options: []string{"pos", "neg", "neutral"}},
		Items:    []hit.Item{{Key: "s", Args: []relation.Value{relation.NewString("great")}}},
	}
	pos := 0
	for i := 0; i < 100; i++ {
		ans := mustAnswer(t, p, h)
		got := ans.Values["s"].Str()
		valid := false
		for _, o := range h.Response.Options {
			if got == o {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("invalid choice %q", got)
		}
		if got == "pos" {
			pos++
		}
	}
	if pos < 70 {
		t.Errorf("correct choice only %d/100", pos)
	}
}

func TestFormCorruption(t *testing.T) {
	truth := relation.NewTuple(
		relation.Field{Name: "CEO", Value: relation.NewString("Ada")},
		relation.Field{Name: "Phone", Value: relation.NewString("555")},
	)
	oracle := OracleFunc(func(task string, args []relation.Value) relation.Value { return truth })
	// All-spammer pool: answers must be corrupted, never the truth.
	p := NewPool(Config{Seed: 4, SpamFraction: 0.9999999, AbandonRate: 1e-12}, oracle)
	h := &hit.HIT{
		ID: "f", Task: "findCEO", Type: qlang.TaskQuestion,
		Question: "find", RewardCents: 1, Assignments: 1,
		Response: qlang.Response{Kind: qlang.ResponseForm, Fields: []qlang.FormField{
			{Label: "CEO", Kind: relation.KindString}, {Label: "Phone", Kind: relation.KindString}}},
		Items: []hit.Item{{Key: "k", Args: []relation.Value{relation.NewString("Acme")}}},
	}
	ans := mustAnswer(t, p, h)
	if ans.Values["k"].Equal(truth) {
		t.Fatal("spammer returned the exact truth")
	}
	if ans.Values["k"].Kind() != relation.KindTuple {
		t.Fatalf("corrupted answer should stay a tuple: %v", ans.Values["k"])
	}
}

func TestPoolWorksWithMarketplace(t *testing.T) {
	clock := mturk.NewClock()
	p := NewPool(Config{Seed: 6, AbandonRate: 1e-12}, boolOracle)
	m := mturk.NewMarketplace(clock, p)
	h := ynHIT(m.NewHITID(), "cat-a")
	h.Assignments = 5
	got := 0
	_ = m.Post(h, func(r mturk.AssignmentResult) { got++ })
	for clock.Step() {
	}
	if got != 5 {
		t.Fatalf("assignments = %d", got)
	}
	stats := p.Stats()
	answered := 0
	for _, s := range stats {
		answered += s.Answered
	}
	if answered != 5 {
		t.Fatalf("pool answered = %d", answered)
	}
}
