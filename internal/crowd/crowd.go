// Package crowd simulates the turker population. Workers have
// heterogeneous skill, speed and reliability; their answers are derived
// from a ground-truth Oracle with noise, so Qurk's redundancy, batching
// and model-training machinery faces the same phenomena as on the real
// MTurk: wrong answers, spammers, abandonment, and minutes-scale latency.
package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/hit"
	"repro/internal/mturk"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Oracle supplies ground truth for simulated answers. The workload
// generator implements it; Qurk itself never sees it.
type Oracle interface {
	// Truth returns the correct answer for a task applied to args.
	// For Rank/Rating tasks it returns the item's latent numeric score.
	Truth(task string, args []relation.Value) relation.Value
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(task string, args []relation.Value) relation.Value

// Truth implements Oracle.
func (f OracleFunc) Truth(task string, args []relation.Value) relation.Value {
	return f(task, args)
}

// Config parameterizes the synthetic population. Zero values take the
// documented defaults.
type Config struct {
	// Workers is the population size (default 100).
	Workers int
	// Seed makes the simulation reproducible (default 1).
	Seed int64
	// MeanSkill is the mean per-question accuracy of honest workers
	// (default 0.85); SkillStd its spread (default 0.08).
	MeanSkill, SkillStd float64
	// SpamFraction of workers answer without reading (default 0.05).
	SpamFraction float64
	// AbandonRate is the chance an accepted assignment is abandoned
	// and must be reposted (default 0.02).
	AbandonRate float64
	// Overhead is the fixed virtual time to accept and read a HIT
	// (default 30s); PerQuestion the marginal time per batched
	// question (default 15s).
	Overhead    time.Duration
	PerQuestion time.Duration
	// BatchPenalty is the per-extra-question multiplicative accuracy
	// decay (default 0.015): acc = skill * (1 - p*(q-1)), floored at
	// 0.55 * skill.
	BatchPenalty float64
	// Shards partitions the population into independently locked claim
	// stripes: a claim scans only the stripe its HIT hashes to, so the
	// claim path is O(Workers/Shards) and concurrent claims on
	// different stripes never contend. Default 1, which reproduces the
	// unsharded pool's random sequence exactly.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanSkill == 0 {
		c.MeanSkill = 0.85
	}
	if c.SkillStd == 0 {
		c.SkillStd = 0.08
	}
	if c.SpamFraction == 0 {
		c.SpamFraction = 0.05
	}
	if c.AbandonRate == 0 {
		c.AbandonRate = 0.02
	}
	if c.Overhead == 0 {
		c.Overhead = 30 * time.Second
	}
	if c.PerQuestion == 0 {
		c.PerQuestion = 15 * time.Second
	}
	if c.BatchPenalty == 0 {
		c.BatchPenalty = 0.015
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	return c
}

type worker struct {
	id       string
	skill    float64 // per-question accuracy before batch decay
	speed    float64 // multiplier on service time
	spammer  bool
	nextFree mturk.VirtualTime
	answered int
	correct  int
}

// Pool is a synthetic worker pool implementing mturk.WorkerPool. The
// population is partitioned into Config.Shards claim stripes, each with
// its own lock and noise source; a HIT's claims always land on the
// stripe its ID hashes to, so claim scans stay O(Workers/Shards) and
// stripes never contend with each other.
type Pool struct {
	cfg     Config
	oracle  Oracle
	stripes []*stripe
}

// stripe is one independently locked slice of the population.
type stripe struct {
	mu      sync.Mutex
	rng     *rand.Rand
	workers []*worker
}

// NewPool builds a population from cfg and a ground-truth oracle. The
// population itself is identical for every shard count (attributes are
// drawn from one sequence before partitioning).
func NewPool(cfg Config, oracle Oracle) *Pool {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Pool{cfg: cfg, oracle: oracle}
	for i := 0; i < cfg.Shards; i++ {
		// Offset by (i+1): stripe seeds must never collide with
		// cfg.Seed itself, or a stripe's noise stream would replay the
		// population-attribute draws above and correlate with them.
		p.stripes = append(p.stripes, &stripe{rng: rand.New(rand.NewSource(cfg.Seed + int64(i+1)*7919))})
	}
	if cfg.Shards == 1 {
		// Single-stripe claims continue the population sequence,
		// matching the historical unsharded pool draw for draw.
		p.stripes[0].rng = rng
	}
	for i := 0; i < cfg.Workers; i++ {
		// The ceiling admits effectively-perfect reference crowds
		// (MeanSkill 1, tiny SkillStd): harnesses that run concurrent
		// queries need answers independent of claim interleaving, which
		// any per-answer error rate would break across reruns.
		skill := clamp(rng.NormFloat64()*cfg.SkillStd+cfg.MeanSkill, 0.55, 1.0)
		w := &worker{
			id:      fmt.Sprintf("worker-%03d", i+1),
			skill:   skill,
			speed:   clamp(rng.NormFloat64()*0.3+1.0, 0.4, 2.5),
			spammer: rng.Float64() < cfg.SpamFraction,
		}
		s := p.stripes[i%len(p.stripes)]
		s.workers = append(s.workers, w)
	}
	return p
}

// stripeFor routes a HIT ID to its claim stripe.
func (p *Pool) stripeFor(id string) *stripe {
	return p.stripes[mturk.ShardIndex(id, len(p.stripes))]
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}

// Claim implements mturk.WorkerPool: it picks the soonest-free worker
// of the HIT's stripe, reserves their time, and returns a claim whose
// Answer callback produces (possibly noisy) answers for every question
// in the HIT.
func (p *Pool) Claim(h *hit.HIT, now mturk.VirtualTime) (mturk.Claim, bool) {
	if len(p.stripes) == 0 {
		return mturk.Claim{}, false
	}
	s := p.stripeFor(h.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.pickLocked(now)
	if w == nil {
		return mturk.Claim{}, false
	}
	q := effortOf(h)
	service := time.Duration(float64(p.cfg.Overhead+time.Duration(q)*p.cfg.PerQuestion) * w.speed)
	// Jitter ±20% so parallel workers desynchronize.
	service = time.Duration(float64(service) * (0.8 + 0.4*s.rng.Float64()))
	start := w.nextFree
	if now > start {
		start = now
	}
	finish := start + mturk.VirtualTime(service)
	w.nextFree = finish
	abandon := s.rng.Float64() < p.cfg.AbandonRate
	// Pre-draw the per-question noise decisions under the lock so the
	// Answer closure is pure and race-free.
	answer := p.prepareAnswersLocked(s, w, h, abandon)
	return mturk.Claim{
		WorkerID: w.id,
		Delay:    (finish - now).Duration(),
		Answer:   answer,
	}, true
}

// pickLocked returns the stripe worker who can start soonest; among
// equally free workers it picks uniformly at random. Returns nil only
// for an empty stripe.
func (s *stripe) pickLocked(now mturk.VirtualTime) *worker {
	if len(s.workers) == 0 {
		return nil
	}
	best := s.workers[0]
	ties := 1
	for _, w := range s.workers[1:] {
		switch {
		case w.nextFree < best.nextFree:
			best, ties = w, 1
		case w.nextFree == best.nextFree:
			ties++
			if s.rng.Intn(ties) == 0 {
				best = w
			}
		}
	}
	return best
}

// effortOf measures how much work a HIT demands of one worker. For the
// two-column join interface the worker scans len(Left)+len(Right) items
// to mark matches — not all L×R pairs — which is exactly why the
// interface batches so well (Figure 3); other HITs cost one unit per
// batched question.
func effortOf(h *hit.HIT) int {
	if h.Response.Kind == qlang.ResponseJoinColumns {
		return len(h.Left) + len(h.Right)
	}
	return h.QuestionCount()
}

// effectiveAccuracy applies the batch-size decay to a worker's skill.
func (p *Pool) effectiveAccuracy(w *worker, questions int) float64 {
	m := 1 - p.cfg.BatchPenalty*float64(questions-1)
	if m < 0.55 {
		m = 0.55
	}
	return w.skill * m
}

// prepareAnswersLocked draws all randomness now (from the stripe's
// source, under its lock) and returns a pure closure that materializes
// the answers.
func (p *Pool) prepareAnswersLocked(s *stripe, w *worker, h *hit.HIT, abandon bool) func() (hit.Answers, error) {
	if abandon {
		return func() (hit.Answers, error) {
			return hit.Answers{}, fmt.Errorf("crowd: %s abandoned the assignment", w.id)
		}
	}
	acc := p.effectiveAccuracy(w, effortOf(h))
	var plans []answerPlan
	addPlan := func(key, task string, args []relation.Value) {
		correct := !w.spammer && s.rng.Float64() < acc
		plans = append(plans, answerPlan{key: key, task: task, args: args, correct: correct,
			u1: s.rng.Float64(), u2: s.rng.NormFloat64()})
	}
	if h.Response.Kind == qlang.ResponseJoinColumns {
		for _, l := range h.Left {
			for _, r := range h.Right {
				addPlan(hit.PairKey(l.Key, r.Key), h.Task, append(append([]relation.Value{}, l.Args...), r.Args...))
			}
		}
	} else {
		for _, it := range h.Items {
			addPlan(it.Key, h.EffectiveTask(it), it.Args)
		}
	}
	spammer := w.spammer
	resp := h.Response
	nItems := len(h.Items)
	return func() (hit.Answers, error) {
		vals := make(map[string]relation.Value, len(plans))
		for _, pl := range plans {
			truth := p.oracle.Truth(pl.task, pl.args)
			vals[pl.key] = noisyAnswer(resp, truth, pl.correct, spammer, pl.u1, pl.u2)
		}
		if resp.Kind == qlang.ResponseOrder {
			rerank(vals, plans, nItems)
		}
		s.mu.Lock()
		w.answered += len(plans)
		for _, pl := range plans {
			if pl.correct {
				w.correct++
			}
		}
		s.mu.Unlock()
		return hit.Answers{WorkerID: w.id, Values: vals}, nil
	}
}

// noisyAnswer produces the worker's answer for one question.
func noisyAnswer(resp qlang.Response, truth relation.Value, correct, spammer bool, u1, u2 float64) relation.Value {
	switch resp.Kind {
	case qlang.ResponseYesNo, qlang.ResponseJoinColumns:
		t := truth.Truthy()
		if spammer {
			// Spammers click through without reading: biased toward
			// "no" but not perfectly correlated with each other, so
			// they cannot reliably swing majorities in unison.
			return relation.NewBool(u1 < 0.3)
		}
		if correct {
			return relation.NewBool(t)
		}
		return relation.NewBool(!t)
	case qlang.ResponseRating:
		lo, hi := resp.ScaleMin, resp.ScaleMax
		t := int(truth.Float())
		if spammer {
			return relation.NewInt(int64(lo + int(u1*float64(hi-lo+1)))) // uniform junk
		}
		if correct {
			return relation.NewInt(int64(clampInt(t, lo, hi)))
		}
		off := 1 + int(math.Abs(u2))
		if u1 < 0.5 {
			off = -off
		}
		return relation.NewInt(int64(clampInt(t+off, lo, hi)))
	case qlang.ResponseChoice:
		if correct && !spammer {
			return truth
		}
		idx := int(u1 * float64(len(resp.Options)))
		if idx >= len(resp.Options) {
			idx = len(resp.Options) - 1
		}
		return relation.NewString(resp.Options[idx])
	case qlang.ResponseOrder:
		// Return the noisy latent score; rerank() converts to ranks.
		score := truth.Float()
		if spammer {
			// Spammers order without looking: a fresh uniform fake score
			// per item decouples their ranking from the truth entirely,
			// inverting pairs at random — exactly the failure mode the
			// win-ratio aggregation has to outvote.
			return relation.NewFloat(u1 * 100)
		}
		if !correct {
			// Honest mistakes are local: a perturbation on the order of
			// one scale step swaps an item with its neighbours
			// (adjacent-pair inversions), not across the whole list —
			// workers confuse close items, not obvious ones.
			score += u2 * 1.5
		}
		return relation.NewFloat(score)
	default: // ResponseForm: free text / tuples
		if correct && !spammer {
			return truth
		}
		return corruptText(truth, u1)
	}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// corruptText produces a plausibly wrong free-text answer: empty (lazy)
// or a corrupted variant, recursing through tuples.
func corruptText(truth relation.Value, u float64) relation.Value {
	switch truth.Kind() {
	case relation.KindTuple:
		fields := truth.Fields()
		out := make([]relation.Field, len(fields))
		for i, f := range fields {
			out[i] = relation.Field{Name: f.Name, Value: corruptText(f.Value, u)}
		}
		return relation.NewTuple(out...)
	case relation.KindInt:
		return relation.NewInt(truth.Int() + 1 + int64(u*5))
	case relation.KindFloat:
		return relation.NewFloat(truth.Float() * (1.1 + u))
	case relation.KindBool:
		return relation.NewBool(!truth.Bool())
	default:
		if u < 0.3 {
			return relation.NewString("") // left blank
		}
		return relation.NewString("(unknown)")
	}
}

// answerPlan pre-draws one question's noise decisions under the pool
// lock so the Answer closure is pure.
type answerPlan struct {
	key     string
	task    string
	args    []relation.Value
	correct bool
	u1, u2  float64 // noise draws for wrong answers
}

// rerank converts latent noisy scores into rank positions 0..n-1
// (ascending score = rank 0), as the Order form requires.
func rerank(vals map[string]relation.Value, plans []answerPlan, n int) {
	type kv struct {
		key   string
		score float64
	}
	items := make([]kv, 0, n)
	for _, pl := range plans {
		items = append(items, kv{pl.key, vals[pl.key].Float()})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].score < items[j].score })
	for rank, it := range items {
		vals[it.key] = relation.NewInt(int64(rank))
	}
}

// WorkerStats is the simulator-side truth about one worker, used by
// experiment harnesses (Qurk itself never sees it).
type WorkerStats struct {
	ID       string
	Skill    float64
	Spammer  bool
	Answered int
	Correct  int
}

// Stats returns per-worker simulation statistics sorted by ID.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, 0, p.Size())
	for _, s := range p.stripes {
		s.mu.Lock()
		for _, w := range s.workers {
			out = append(out, WorkerStats{ID: w.id, Skill: w.skill, Spammer: w.spammer,
				Answered: w.answered, Correct: w.correct})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Size returns the population size.
func (p *Pool) Size() int {
	n := 0
	for _, s := range p.stripes {
		n += len(s.workers)
	}
	return n
}

// Shards returns the number of claim stripes.
func (p *Pool) Shards() int { return len(p.stripes) }
