package crowd

import (
	"fmt"
	"testing"

	"repro/internal/hit"
	"repro/internal/qlang"
	"repro/internal/relation"
)

func shardHIT(id string) *hit.HIT {
	return &hit.HIT{
		ID: id, Task: "isCat", Type: qlang.TaskFilter,
		Question: "cat?", Response: qlang.Response{Kind: qlang.ResponseYesNo},
		Items:       []hit.Item{{Key: "k", Args: []relation.Value{relation.NewImage("cat.png")}}},
		RewardCents: 1, Assignments: 1,
	}
}

// TestShardedPopulationIdentical: the worker population (ids, skills,
// spammer flags) must not depend on the shard count — attributes are
// drawn before partitioning.
func TestShardedPopulationIdentical(t *testing.T) {
	one := NewPool(Config{Workers: 64, Seed: 3, Shards: 1}, boolOracle).Stats()
	many := NewPool(Config{Workers: 64, Seed: 3, Shards: 8}, boolOracle).Stats()
	if len(one) != len(many) {
		t.Fatalf("population sizes differ: %d vs %d", len(one), len(many))
	}
	for i := range one {
		if one[i].ID != many[i].ID || one[i].Skill != many[i].Skill || one[i].Spammer != many[i].Spammer {
			t.Fatalf("worker %d differs across shard counts: %+v vs %+v", i, one[i], many[i])
		}
	}
}

// TestShardedClaimsDeterministic: two pools with identical config must
// produce identical claim sequences (worker, delay) for the same HITs.
func TestShardedClaimsDeterministic(t *testing.T) {
	cfg := Config{Workers: 48, Seed: 9, Shards: 6}
	a := NewPool(cfg, boolOracle)
	b := NewPool(cfg, boolOracle)
	for i := 0; i < 200; i++ {
		h := shardHIT(fmt.Sprintf("HIT-%06d", i+1))
		ca, oka := a.Claim(h, 0)
		cb, okb := b.Claim(h, 0)
		if oka != okb || ca.WorkerID != cb.WorkerID || ca.Delay != cb.Delay {
			t.Fatalf("claim %d diverged: (%s %v %v) vs (%s %v %v)",
				i, ca.WorkerID, ca.Delay, oka, cb.WorkerID, cb.Delay, okb)
		}
	}
}

// TestShardedClaimsRouteByHIT: claims for one HIT id always land on the
// same stripe, so a HIT's retries see a consistent sub-population.
func TestShardedClaimsRouteByHIT(t *testing.T) {
	p := NewPool(Config{Workers: 40, Seed: 5, Shards: 4}, boolOracle)
	h := shardHIT("HIT-000042")
	first, ok := p.Claim(h, 0)
	if !ok {
		t.Fatal("no claim")
	}
	stripe := p.stripeFor(h.ID)
	for i := 0; i < 20; i++ {
		c, ok := p.Claim(h, 0)
		if !ok {
			t.Fatal("no claim")
		}
		found := false
		for _, w := range stripe.workers {
			if w.id == c.WorkerID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("claim %d by %s escaped the HIT's stripe (first was %s)", i, c.WorkerID, first.WorkerID)
		}
	}
	if got := p.Shards(); got != 4 {
		t.Fatalf("Shards() = %d", got)
	}
	if got := p.Size(); got != 40 {
		t.Fatalf("Size() = %d", got)
	}
}
