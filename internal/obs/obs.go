package obs

import (
	"sync"
	"sync/atomic"

	"repro/internal/mturk"
)

// Kind classifies a span in the query → plan → operator → batch → HIT →
// assignment hierarchy.
type Kind string

const (
	KindQuery      Kind = "query"
	KindPlan       Kind = "plan"
	KindOperator   Kind = "operator"
	KindBatch      Kind = "batch"
	KindHIT        Kind = "hit"
	KindAssignment Kind = "assignment"
)

// Attr is one ordered key/value annotation on a span. Attrs keep
// insertion order so renders are deterministic.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed node in a query's trace tree. All methods are
// nil-receiver safe so instrumented code can call through unconditionally;
// the counter fields are atomics so concurrent producers (operator
// goroutines, the dispatcher, assignment callbacks) never contend on the
// span mutex for the hot counters.
type Span struct {
	ID     int64
	Parent int64
	Kind   Kind
	Name   string
	Start  mturk.VirtualTime

	end   atomic.Int64 // VirtualTime; valid when ended is true
	ended atomic.Bool

	RowsIn      atomic.Int64
	RowsOut     atomic.Int64
	HITs        atomic.Int64
	Assignments atomic.Int64
	CostCents   atomic.Int64
	RefundCents atomic.Int64
	CacheHits   atomic.Int64
	ModelHits   atomic.Int64
	Extensions  atomic.Int64

	mu       sync.Mutex
	attrs    []Attr
	children []*Span

	tracer *Tracer
	open   *atomic.Int64 // the tree root's count of not-yet-ended spans
}

// Child opens a sub-span under s, stamped at the tracer's current
// virtual time. Returns nil when s is nil, so call chains degrade to
// no-ops when tracing is off.
func (s *Span) Child(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.newSpan(kind, name)
	c.Parent = s.ID
	c.open = s.open
	c.open.Add(1)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span at the tracer's current virtual time. Idempotent;
// later calls keep the first end stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.ended.CompareAndSwap(false, true) {
		s.end.Store(int64(s.tracer.now()))
		s.open.Add(-1)
	}
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool { return s != nil && s.ended.Load() }

// EndTime returns the end stamp (zero until ended).
func (s *Span) EndTime() mturk.VirtualTime {
	if s == nil {
		return 0
	}
	return mturk.VirtualTime(s.end.Load())
}

// CloseTree ends every still-open span in s's subtree (post-order, so
// parents outlive children in the stamps). Used by cancellation to
// guarantee a canceled query leaves no orphan spans.
func (s *Span) CloseTree() {
	if s == nil {
		return
	}
	for _, c := range s.Children() {
		c.CloseTree()
	}
	s.End()
}

// Annotate appends an ordered key/value annotation.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Attrs returns a copy of the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the first annotation with the given key.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Children returns a copy of the span's child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits s and every descendant pre-order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// Nil-safe counter helpers. Each is a single atomic add when tracing is
// on and a predictable branch when the span is nil.

func (s *Span) AddRowsIn(n int64) {
	if s != nil {
		s.RowsIn.Add(n)
	}
}
func (s *Span) AddRowsOut(n int64) {
	if s != nil {
		s.RowsOut.Add(n)
	}
}
func (s *Span) AddHITs(n int64) {
	if s != nil {
		s.HITs.Add(n)
	}
}
func (s *Span) AddAssignments(n int64) {
	if s != nil {
		s.Assignments.Add(n)
	}
}
func (s *Span) AddCost(cents int64) {
	if s != nil {
		s.CostCents.Add(cents)
	}
}
func (s *Span) AddRefund(cents int64) {
	if s != nil {
		s.RefundCents.Add(cents)
	}
}
func (s *Span) AddCacheHits(n int64) {
	if s != nil {
		s.CacheHits.Add(n)
	}
}
func (s *Span) AddModelHits(n int64) {
	if s != nil {
		s.ModelHits.Add(n)
	}
}
func (s *Span) AddExtensions(n int64) {
	if s != nil {
		s.Extensions.Add(n)
	}
}

// Tracer mints spans on the virtual clock. Span IDs come from a single
// atomic counter, so identical runs produce identical trees; timestamps
// come from the caller-supplied clock and never consume clock events,
// so tracing cannot perturb the discrete-event simulation.
type Tracer struct {
	now    func() mturk.VirtualTime
	reg    *Registry
	nextID atomic.Int64
	pool   sync.Pool

	mu    sync.Mutex
	roots []*Span
}

// New builds a tracer. now supplies virtual timestamps (required); reg
// receives derived metrics and may be nil.
func New(now func() mturk.VirtualTime, reg *Registry) *Tracer {
	t := &Tracer{now: now, reg: reg}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Registry returns the metrics registry wired at construction (may be
// nil). Nil-receiver safe.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// newSpan draws a span from the pool and stamps it.
func (t *Tracer) newSpan(kind Kind, name string) *Span {
	s := t.pool.Get().(*Span)
	*s = Span{
		ID:     t.nextID.Add(1),
		Kind:   kind,
		Name:   name,
		Start:  t.now(),
		tracer: t,
	}
	return s
}

// StartRoot opens a parentless span (a query root, or a synthetic root
// for manager-level tracing without an engine) and records it so Roots
// and JSONL export can find the whole forest. Nil-receiver safe.
func (t *Tracer) StartRoot(kind Kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := t.newSpan(kind, name)
	s.open = new(atomic.Int64)
	s.open.Add(1)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns every root span started so far, in creation order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// OpenSpans reports how many spans in root's tree have not ended.
func (t *Tracer) OpenSpans(root *Span) int64 {
	if root == nil {
		return 0
	}
	return root.open.Load()
}

// Release recycles a fully-ended trace tree back into the span pool and
// forgets its root. The caller asserts exclusive ownership — nothing may
// touch the tree afterwards. Trees with open spans are refused (false)
// because a live writer could still reach them.
func (t *Tracer) Release(root *Span) bool {
	if t == nil || root == nil {
		return false
	}
	if root.open.Load() != 0 {
		return false
	}
	t.mu.Lock()
	for i, r := range t.roots {
		if r == root {
			t.roots = append(t.roots[:i], t.roots[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	t.recycle(root)
	return true
}

func (t *Tracer) recycle(s *Span) {
	s.mu.Lock()
	kids := s.children
	s.children = nil
	s.attrs = nil
	s.mu.Unlock()
	for _, c := range kids {
		t.recycle(c)
	}
	t.pool.Put(s)
}
