package obs

import (
	"encoding/json"
	"io"
)

// SpanRecord is the JSONL wire form of one span.
type SpanRecord struct {
	ID          int64             `json:"id"`
	Parent      int64             `json:"parent,omitempty"`
	Kind        Kind              `json:"kind"`
	Name        string            `json:"name,omitempty"`
	StartMs     int64             `json:"start_ms"`
	EndMs       int64             `json:"end_ms"`
	Open        bool              `json:"open,omitempty"`
	RowsIn      int64             `json:"rows_in,omitempty"`
	RowsOut     int64             `json:"rows_out,omitempty"`
	HITs        int64             `json:"hits,omitempty"`
	Assignments int64             `json:"assignments,omitempty"`
	CostCents   int64             `json:"cost_cents,omitempty"`
	RefundCents int64             `json:"refund_cents,omitempty"`
	CacheHits   int64             `json:"cache_hits,omitempty"`
	ModelHits   int64             `json:"model_hits,omitempty"`
	Extensions  int64             `json:"extensions,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []SpanRecord      `json:"children,omitempty"`
}

// record converts a span (and, when deep, its subtree) to wire form.
func record(s *Span, deep bool) SpanRecord {
	r := SpanRecord{
		ID:          s.ID,
		Parent:      s.Parent,
		Kind:        s.Kind,
		Name:        s.Name,
		StartMs:     s.Start.Duration().Milliseconds(),
		EndMs:       s.EndTime().Duration().Milliseconds(),
		Open:        !s.Ended(),
		RowsIn:      s.RowsIn.Load(),
		RowsOut:     s.RowsOut.Load(),
		HITs:        s.HITs.Load(),
		Assignments: s.Assignments.Load(),
		CostCents:   s.CostCents.Load(),
		RefundCents: s.RefundCents.Load(),
		CacheHits:   s.CacheHits.Load(),
		ModelHits:   s.ModelHits.Load(),
		Extensions:  s.Extensions.Load(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		r.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			if _, dup := r.Attrs[a.Key]; !dup {
				r.Attrs[a.Key] = a.Value
			}
		}
	}
	if deep {
		for _, c := range s.Children() {
			r.Children = append(r.Children, record(c, true))
		}
	}
	return r
}

// MarshalTree renders one trace tree as nested JSON (the /trace/{id}
// response body).
func MarshalTree(root *Span) ([]byte, error) {
	if root == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(record(root, true), "", "  ")
}

// jsonlHeader is the first line of every trace file: a schema note so a
// replayer knows what it is reading without out-of-band docs.
type jsonlHeader struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	Spans  int    `json:"spans"`
}

// WriteJSONL emits the given trace forest as JSON Lines: one header
// object, then one flat span record per line in pre-order per tree
// (parents always precede children, so a replayer can stream-build the
// forest in one pass; virtual-clock start_ms/end_ms replay the original
// schedule).
func WriteJSONL(w io.Writer, roots []*Span) error {
	total := 0
	for _, r := range roots {
		r.Walk(func(*Span) { total++ })
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonlHeader{
		Schema: "qurk-trace/v1",
		Note: "one span per line, pre-order per tree; parent=0 marks roots; " +
			"start_ms/end_ms are virtual-clock milliseconds (replay by sorting on start_ms)",
		Spans: total,
	}); err != nil {
		return err
	}
	for _, root := range roots {
		var err error
		root.Walk(func(s *Span) {
			if err == nil {
				err = enc.Encode(record(s, false))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
