package obs

import (
	"fmt"
	"strings"
)

// explainRow is one operator line in the EXPLAIN ANALYZE table.
type explainRow struct {
	depth int
	span  *Span
}

// ExplainAnalyze renders a finished query trace as a per-operator table:
// rows in/out, HITs, assignments, spend and virtual elapsed time, with
// plan-stage and cache/model annotations folded in. The input is the
// query's root span (Kind query).
func ExplainAnalyze(root *Span) string {
	if root == nil {
		return "no trace recorded (tracing disabled)"
	}
	var rows []explainRow
	var collect func(s *Span, depth int)
	collect = func(s *Span, depth int) {
		rows = append(rows, explainRow{depth: depth, span: s})
		for _, c := range s.Children() {
			if c.Kind == KindOperator || c.Kind == KindPlan {
				collect(c, depth+1)
			}
		}
	}
	collect(root, 0)

	headers := []string{"operator", "rows", "hits", "assign", "cost", "ms"}
	table := [][]string{headers}
	for _, r := range rows {
		s := r.span
		name := strings.Repeat("  ", r.depth) + string(s.Kind)
		if s.Name != "" {
			name += " " + s.Name
		}
		if s.Kind == KindPlan {
			if v, ok := s.Attr("cache"); ok {
				name += " [cache " + v + "]"
			}
		}
		end := s.EndTime()
		if !s.Ended() {
			end = s.Start
		}
		ms := (end - s.Start).Duration().Milliseconds()
		rowCount := s.RowsOut.Load()
		rowCell := fmt.Sprintf("%d", rowCount)
		if in := s.RowsIn.Load(); in != rowCount && in > 0 {
			rowCell = fmt.Sprintf("%d/%d", in, rowCount)
		}
		extras := ""
		if n := s.CacheHits.Load(); n > 0 {
			extras += fmt.Sprintf(" cache=%d", n)
		}
		if n := s.ModelHits.Load(); n > 0 {
			extras += fmt.Sprintf(" model=%d", n)
		}
		if n := s.Extensions.Load(); n > 0 {
			extras += fmt.Sprintf(" ext=%d", n)
		}
		if n := s.RefundCents.Load(); n > 0 {
			extras += fmt.Sprintf(" refund=%d¢", n)
		}
		table = append(table, []string{
			name + extras,
			rowCell,
			fmt.Sprintf("%d", s.HITs.Load()),
			fmt.Sprintf("%d", s.Assignments.Load()),
			fmt.Sprintf("%d¢", s.CostCents.Load()),
			fmt.Sprintf("%d", ms),
		})
	}

	widths := make([]int, len(headers))
	for _, row := range table {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	for ri, row := range table {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(cell))
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
