package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/mturk"
)

// fakeClock is a hand-advanced virtual clock for span stamps.
type fakeClock struct{ now mturk.VirtualTime }

func (f *fakeClock) Now() mturk.VirtualTime { return f.now }

func TestSpanTreeDeterministicIDs(t *testing.T) {
	build := func() []int64 {
		clk := &fakeClock{}
		tr := New(clk.Now, nil)
		q := tr.StartRoot(KindQuery, "q1")
		p := q.Child(KindPlan, "plan")
		p.End()
		op := q.Child(KindOperator, "Filter")
		b := op.Child(KindBatch, "isCat")
		h := b.Child(KindHIT, "h000001")
		h.Child(KindAssignment, "w1").End()
		h.End()
		b.End()
		op.End()
		q.End()
		var ids []int64
		q.Walk(func(s *Span) { ids = append(ids, s.ID) })
		return ids
	}
	a, b := build(), build()
	if len(a) != 6 {
		t.Fatalf("want 6 spans, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ids diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSpanEndIdempotentAndOpenCount(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, nil)
	q := tr.StartRoot(KindQuery, "q")
	op := q.Child(KindOperator, "Scan")
	if got := tr.OpenSpans(q); got != 2 {
		t.Fatalf("open = %d, want 2", got)
	}
	clk.now = mturk.VirtualTime(5 * 60 * 1e9)
	op.End()
	op.End() // idempotent
	if got := tr.OpenSpans(q); got != 1 {
		t.Fatalf("open after child end = %d, want 1", got)
	}
	if op.EndTime() != clk.now {
		t.Fatalf("end stamp = %v, want %v", op.EndTime(), clk.now)
	}
	q.End()
	if got := tr.OpenSpans(q); got != 0 {
		t.Fatalf("open after all ends = %d, want 0", got)
	}
}

func TestCloseTreeClosesOrphans(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, nil)
	q := tr.StartRoot(KindQuery, "q")
	op := q.Child(KindOperator, "Filter")
	b := op.Child(KindBatch, "t")
	h := b.Child(KindHIT, "h1")
	_ = h
	q.CloseTree()
	if got := tr.OpenSpans(q); got != 0 {
		t.Fatalf("open after CloseTree = %d, want 0", got)
	}
	q.Walk(func(s *Span) {
		if !s.Ended() {
			t.Fatalf("span %s %q left open", s.Kind, s.Name)
		}
	})
}

func TestReleaseRecyclesOnlyEndedTrees(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, nil)
	q := tr.StartRoot(KindQuery, "q")
	q.Child(KindOperator, "Scan") // left open
	if tr.Release(q) {
		t.Fatal("Release accepted a tree with open spans")
	}
	q.CloseTree()
	if !tr.Release(q) {
		t.Fatal("Release refused a fully ended tree")
	}
	if len(tr.Roots()) != 0 {
		t.Fatalf("root not forgotten: %d roots", len(tr.Roots()))
	}
}

func TestNilSafetyZeroAllocs(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.StartRoot(KindQuery, "q")
		c := s.Child(KindOperator, "op")
		c.AddRowsIn(1)
		c.AddRowsOut(1)
		c.AddHITs(1)
		c.AddCost(5)
		c.Annotate("k", "v")
		c.End()
		s.End()
		s.CloseTree()
		reg.Counter(MetricHITsPosted).Add(1)
		reg.Gauge(MetricInflightHITs).Set(3)
		reg.Histogram(MetricHITRoundTrip, MinuteBuckets).Observe(2.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

func TestRegistryPrometheusDeterministic(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		reg.Counter(MetricHITsPosted, L("task", "isCat"), L("backend", "sim")).Add(3)
		reg.Counter(MetricHITsPosted, L("task", "isDog"), L("backend", "sim")).Add(1)
		reg.Gauge(MetricInflightHITs).Set(2)
		h := reg.Histogram(MetricHITRoundTrip, MinuteBuckets, L("task", "isCat"))
		h.Observe(0.4)
		h.Observe(3)
		h.Observe(999)
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("non-deterministic render:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		`# TYPE qurk_hits_posted_total counter`,
		`qurk_hits_posted_total{backend="sim",task="isCat"} 3`,
		`# TYPE qurk_inflight_hits gauge`,
		`qurk_inflight_hits 2`,
		`# TYPE qurk_hit_roundtrip_minutes histogram`,
		`qurk_hit_roundtrip_minutes_bucket{le="0.5",task="isCat"} 1`,
		`qurk_hit_roundtrip_minutes_bucket{le="5",task="isCat"} 2`,
		`qurk_hit_roundtrip_minutes_bucket{le="+Inf",task="isCat"} 3`,
		`qurk_hit_roundtrip_minutes_count{task="isCat"} 3`,
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
}

func TestWriteJSONLSchema(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, nil)
	q := tr.StartRoot(KindQuery, "q1")
	op := q.Child(KindOperator, "Filter")
	op.AddRowsOut(7)
	clk.now = mturk.VirtualTime(60 * 1e9)
	op.End()
	q.End()

	var b strings.Builder
	if err := WriteJSONL(&b, tr.Roots()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 spans, got %d lines", len(lines))
	}
	var hdr jsonlHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != "qurk-trace/v1" || hdr.Spans != 2 || hdr.Note == "" {
		t.Fatalf("bad header: %+v", hdr)
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindOperator || rec.RowsOut != 7 || rec.EndMs != 60000 {
		t.Fatalf("bad operator record: %+v", rec)
	}
	if rec.Parent == 0 {
		t.Fatal("operator record lost its parent")
	}
}

func TestExplainAnalyzeTable(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, nil)
	q := tr.StartRoot(KindQuery, "#1")
	p := q.Child(KindPlan, "")
	p.Annotate("cache", "hit")
	p.End()
	filt := q.Child(KindOperator, "Filter(isCat)")
	scan := filt.Child(KindOperator, "Scan(animals)")
	scan.AddRowsOut(100)
	filt.AddRowsIn(100)
	filt.AddRowsOut(40)
	filt.AddHITs(10)
	filt.AddAssignments(30)
	filt.AddCost(30)
	filt.AddCacheHits(12)
	clk.now = mturk.VirtualTime(90 * 60 * 1e9)
	q.CloseTree()

	out := ExplainAnalyze(q)
	for _, want := range []string{
		"operator", "plan [cache hit]", "Filter(isCat)", "Scan(animals)",
		"100/40", "cache=12", "30¢",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	if ExplainAnalyze(nil) == "" {
		t.Fatal("nil explain should describe disabled tracing")
	}
}

func TestMarshalTreeNests(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, nil)
	q := tr.StartRoot(KindQuery, "q")
	q.Child(KindOperator, "Scan").End()
	q.End()
	data, err := MarshalTree(q)
	if err != nil {
		t.Fatal(err)
	}
	var rec SpanRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Children) != 1 || rec.Children[0].Name != "Scan" {
		t.Fatalf("tree lost nesting: %+v", rec)
	}
}
