package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (task, backend, scope, ...).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Nil-receiver safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter. Nil-receiver safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-add metric whose last value is exported.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. Nil-receiver safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge. Nil-receiver safe.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge. Nil-receiver safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histScale fixes the sum's fixed-point resolution (micro-units), so
// Observe never needs floating-point atomics.
const histScale = 1e6

// Histogram is a fixed-bucket distribution over float64 observations
// (virtual minutes, fill ratios). Buckets are cumulative at render time
// (Prometheus `le` semantics); storage is per-bucket atomics.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound, plus the +Inf overflow at the end
	count   atomic.Int64
	sum     atomic.Int64 // observation * histScale
}

// Observe records one sample. Nil-receiver safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * histScale))
}

// Count reports the number of samples. Nil-receiver safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all samples. Nil-receiver safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / histScale
}

// MinuteBuckets is the default latency bucket layout, in virtual
// minutes: sub-minute admission waits up through multi-hour HIT tails.
var MinuteBuckets = []float64{0.5, 1, 2, 5, 10, 15, 30, 60, 120, 240}

// RatioBuckets is the default layout for 0..1 ratios (batch fill).
var RatioBuckets = []float64{0.25, 0.5, 0.75, 0.9, 1}

// DepthBuckets is the default layout for small integer depths
// (extension counts per HIT).
var DepthBuckets = []float64{0, 1, 2, 3, 5, 8}

// Registry holds named, labeled metric families. Lookup interns the
// (name, labels) series so hot paths pay one map probe; the instruments
// themselves are lock-free atomics.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

func (r *Registry) lookup(name string, labels []Label) *series {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = &series{name: name, labels: append([]Label(nil), labels...)}
		r.series[key] = s
	}
	return s
}

// Counter returns (creating on first use) the counter series for
// name+labels. Nil-receiver safe: a nil registry returns a nil counter,
// whose Add is a no-op.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// Histogram returns (creating on first use) the histogram series for
// name+labels with the given bucket bounds. The bounds of the first
// creation win; later calls reuse the existing series.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	}
	return s.h
}

// labelString renders {k="v",...} with keys sorted, or "" without labels.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every series in the text exposition format,
// families sorted by name and series by label string, so identical
// registries render byte-identically. Nil-receiver safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()

	type family struct {
		kind   string
		series []*series
	}
	fams := map[string]*family{}
	names := []string{}
	for _, s := range all {
		f, ok := fams[s.name]
		if !ok {
			kind := "counter"
			switch {
			case s.g != nil:
				kind = "gauge"
			case s.h != nil:
				kind = "histogram"
			}
			f = &family{kind: kind}
			fams[s.name] = f
			names = append(names, s.name)
		}
		f.series = append(f.series, s)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool {
			return labelString(f.series[i].labels) < labelString(f.series[j].labels)
		})
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		for _, s := range f.series {
			switch {
			case s.h != nil:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
						labelString(s.labels, L("le", trimFloat(bound))), cum)
				}
				cum += s.h.buckets[len(s.h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, labelString(s.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, labelString(s.labels), trimFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, labelString(s.labels), s.h.Count())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", name, labelString(s.labels), s.g.Value())
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", name, labelString(s.labels), s.c.Value())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Metric names shared by the instrumented layers. Centralized so the
// dashboard, tests and docs agree on spelling.
const (
	MetricQueries        = "qurk_queries_total"
	MetricPlanCacheHits  = "qurk_plan_cache_hits_total"
	MetricPlanCacheMiss  = "qurk_plan_cache_misses_total"
	MetricBatchesPosted  = "qurk_batches_posted_total"
	MetricHITsPosted     = "qurk_hits_posted_total"
	MetricAssignments    = "qurk_assignments_total"
	MetricCostCents      = "qurk_cost_cents_total"
	MetricRefundCents    = "qurk_refund_cents_total"
	MetricCacheHits      = "qurk_cache_hits_total"
	MetricModelAnswers   = "qurk_model_answers_total"
	MetricExtensions     = "qurk_extensions_total"
	MetricInflightHITs   = "qurk_inflight_hits"
	MetricHITRoundTrip   = "qurk_hit_roundtrip_minutes"
	MetricAdmissionWait  = "qurk_admission_wait_minutes"
	MetricBatchFillRatio = "qurk_batch_fill_ratio"
	MetricExtensionDepth = "qurk_extension_depth"
)
