// Package obs is the engine's observability layer: virtual-clock span
// traces, a labeled metrics registry, and the renderers (EXPLAIN
// ANALYZE, Prometheus text, JSONL) the rest of the system exposes them
// through.
//
// # Spans
//
// A trace is a tree of Spans following the life of one query:
//
//	query                     one SELECT, root of the tree
//	└─ plan                   planning, annotated cache hit/miss
//	└─ operator ...           one per executor operator, nested like the plan
//	└─ batch                  one cut batch: cut → admission queue → post
//	   └─ hit                 one posted HIT: post → assignments → finalize
//	      ├─ assignment ...   one per received assignment
//	      └─ extend ...       one per adaptive extension
//
// Span IDs come from a single atomic counter and timestamps from the
// discrete-event virtual clock, never from wall time or randomness, so
// the same seed yields byte-identical traces. Creating or ending a span
// never schedules clock events — tracing cannot perturb a simulation,
// which is what keeps `-verify` fingerprints identical with tracing on
// or off.
//
// # Zero overhead when disabled
//
// Everything is nil-receiver safe: a nil *Tracer mints nil *Spans, and
// every Span/Counter/Histogram method on a nil receiver is a no-op
// branch with zero allocations. Instrumented layers hold the tracer in
// an atomic pointer and skip label/span construction entirely when it
// is unset, so the disabled path costs one atomic load per event site.
// When enabled, spans come from a sync.Pool (recycled via
// Tracer.Release once a tree is fully ended and owned) and all counters
// are atomics.
//
// # Surfaces
//
//   - ExplainAnalyze renders a finished tree as the per-operator table
//     behind Rows.Explain() and the REPL's EXPLAIN ANALYZE.
//   - Registry.WritePrometheus serves text-format /metrics.
//   - MarshalTree serves JSON /trace/{id}; WriteJSONL streams a whole
//     run's forest for qurk-load -trace.
package obs
