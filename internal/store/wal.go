package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. A store directory holds one snapshot plus numbered WAL
// segments:
//
//	snapshot.qks     QKSNAP1\n + coveredSeq (8B LE) + frames
//	wal-00000007.log QKWAL01\n + frames
//
// Every frame is [len uint32 LE][crc32c uint32 LE][payload]; the payload
// is one Record (kind byte first). Replay walks frames in order and
// stops at the first frame whose header, length, CRC or payload decode
// fails — a torn tail write therefore loses at most the torn record,
// never anything before it. The snapshot's coveredSeq says which
// segments its aggregates already include, so a crash between snapshot
// rename and segment deletion can never double-apply a record.
const (
	segMagic  = "QKWAL01\n"
	snapMagic = "QKSNAP1\n"
	frameHdr  = 8
	segPrefix = "wal-"
	segSuffix = ".log"
	snapName  = "snapshot.qks"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps one encoded payload in a length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// replayFrames applies every valid leading frame of data, stopping at
// the first torn or corrupt one. It returns how many records were
// applied and whether the whole input was consumed cleanly.
func replayFrames(data []byte, apply func(Record)) (applied int, clean bool) {
	for len(data) > 0 {
		if len(data) < frameHdr {
			return applied, false // torn header
		}
		n := binary.LittleEndian.Uint32(data[:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || n > maxRecordBytes || uint64(n) > uint64(len(data)-frameHdr) {
			return applied, false // torn or corrupt length
		}
		payload := data[frameHdr : frameHdr+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			return applied, false
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return applied, false
		}
		apply(rec)
		applied++
		data = data[frameHdr+int(n):]
	}
	return applied, true
}

// replaySegmentFile folds one segment's valid prefix into apply. A
// missing, empty or headerless file applies nothing; clean reports
// whether the file ended without corruption.
func replaySegmentFile(path string, apply func(Record)) (applied int, clean bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	if len(data) == 0 {
		return 0, true // a crash before the header was written loses nothing
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, false
	}
	return replayFrames(data[len(segMagic):], apply)
}

// segFileName formats a segment's file name from its sequence number.
func segFileName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, perr := strconv.ParseUint(mid, 10, 64)
		if perr != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// encodeRecordsFile renders a full snapshot-format file: magic,
// coveredSeq, then one frame per record.
func encodeRecordsFile(coveredSeq uint64, recs []Record) []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, coveredSeq)
	var payload []byte
	for _, rec := range recs {
		payload = rec.encode(payload[:0])
		buf = appendFrame(buf, payload)
	}
	return buf
}

// writeFileAtomic writes data to path via a temp file + rename, syncing
// the file first so the rename publishes complete contents.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// replaySnapshotFile folds the snapshot's valid prefix into apply and
// returns the segment sequence it covers. A missing snapshot is an
// empty one.
func replaySnapshotFile(path string, apply func(Record)) (coveredSeq uint64, applied int, clean bool) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, true
	}
	if err != nil {
		return 0, 0, false
	}
	hdr := len(snapMagic) + 8
	if len(data) < hdr || string(data[:len(snapMagic)]) != snapMagic {
		return 0, 0, false
	}
	coveredSeq = binary.LittleEndian.Uint64(data[len(snapMagic) : len(snapMagic)+8])
	applied, clean = replayFrames(data[hdr:], apply)
	return coveredSeq, applied, clean
}

// WriteRecordsFile writes records to a standalone snapshot-format file
// (atomic via rename) — the format Engine.SaveCache uses.
func WriteRecordsFile(path string, recs []Record) error {
	return writeFileAtomic(path, encodeRecordsFile(0, recs))
}

// ReadRecordsFile reads a file written by WriteRecordsFile (or a store
// snapshot). Unlike WAL replay it is strict: any torn or corrupt frame
// is an error, because standalone files are written atomically and a
// bad one should be surfaced, not silently truncated.
func ReadRecordsFile(path string) ([]Record, error) {
	var recs []Record
	_, _, clean := replaySnapshotFile(path, func(r Record) { recs = append(recs, r) })
	if !clean {
		return nil, fmt.Errorf("store: %s: corrupt records file", filepath.Base(path))
	}
	return recs, nil
}
