package store

import (
	"testing"
)

// TestRankPairRecordsFoldAndSnapshot: live KindRankPair observations
// fold into the per-task comparison-agreement EWMA, survive the
// snapshot round-trip as KindRankPairSum, and keep the state
// fingerprint stable across replay.
func TestRankPairRecordsFoldAndSnapshot(t *testing.T) {
	s := NewState()
	s.apply(Record{Kind: KindRankPair, Task: "orderit", X: 0.9, N: 10})
	s.apply(Record{Kind: KindRankPair, Task: "orderit", X: 1.0, N: 6})
	ra := s.RankAgreement("orderit")
	if ra.N != 2 {
		t.Fatalf("N = %d, want 2 observations", ra.N)
	}
	if ra.Value <= 0.9 || ra.Value > 1 {
		t.Fatalf("value = %v", ra.Value)
	}
	if got := s.RankAgreement("other"); got.N != 0 {
		t.Fatalf("unknown task state = %+v", got)
	}

	// Snapshot → replay reproduces the same estimator state.
	s2 := NewState()
	for _, rec := range s.snapshotRecords() {
		payload := rec.encode(nil)
		dec, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", rec.Kind, err)
		}
		s2.apply(dec)
	}
	if got := s2.RankAgreement("orderit"); got != ra {
		t.Fatalf("replayed state = %+v, want %+v", got, ra)
	}
	if s.Fingerprint() == NewState().Fingerprint() {
		t.Fatal("fingerprint ignores rank records")
	}

	// Tasks carrying only rank evidence still appear in StatTasks, so
	// Manager.Restore visits them.
	found := false
	for _, task := range s.StatTasks() {
		if task == "orderit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("StatTasks = %v, missing orderit", s.StatTasks())
	}
}
