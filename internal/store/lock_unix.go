//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the store directory so
// two processes can never interleave segments or compact each other's
// WAL away. The kernel releases flock locks when the process exits, so
// a crash never leaves a stale lock behind — which matters for a store
// whose whole job is surviving crashes.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "store.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another process", dir)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
