// Package store implements Qurk's durable knowledge store: an embedded,
// append-only, WAL-backed log of everything the engine learns from the
// crowd — Task Cache entries, Statistics Manager selectivity/latency/
// agreement observations (keyed per join side), Task Model training
// examples, and worker reputation events.
//
// Every record is CRC-framed; replay recovers the longest valid prefix,
// so a torn write (crash mid-append) loses at most the torn record.
// Appending is asynchronous through a bounded buffer: producers (the
// task manager's finalization paths) never block — when the buffer is
// full the record is dropped and counted, trading completeness for
// latency, which is the right trade for advisory knowledge that only
// tunes future decisions.
//
// Growth is bounded by snapshot + segment compaction: the store folds
// every record into an in-memory State; when enough sealed segments
// accumulate it writes the State as aggregate records to snapshot.qks
// (atomic rename) and deletes the segments. The snapshot carries the
// highest segment sequence it covers, so a crash between rename and
// deletion can never double-apply.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
)

// Options tunes a store; zero values take the documented defaults.
type Options struct {
	// BufferRecords is the async append buffer (default 65536). A full
	// buffer drops records (counted in Stats.Dropped) instead of
	// blocking the caller.
	BufferRecords int
	// SegmentBytes rotates the active segment when it grows past this
	// size (default 1 MiB).
	SegmentBytes int64
	// CompactSegments triggers snapshot compaction once this many sealed
	// segments exist (default 4).
	CompactSegments int
}

func (o Options) withDefaults() Options {
	if o.BufferRecords <= 0 {
		o.BufferRecords = 1 << 16
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = 4
	}
	return o
}

// Stats counts store activity.
type Stats struct {
	// Appended / Dropped count records accepted into / rejected from the
	// async buffer; Written counts records durably framed to a segment.
	Appended, Dropped, Written int64
	Compactions                int64
}

// ReplayInfo summarizes what Open recovered, for the dashboard's
// warm-start panel.
type ReplayInfo struct {
	// Records is how many records (including snapshot aggregates) were
	// applied.
	Records int64
	// CacheEntries / CacheAnswers are the replayed Task Cache contents.
	CacheEntries, CacheAnswers int64
	// Observations totals the statistics evidence restored: selectivity
	// trials plus latency and agreement observation counts.
	Observations int64
	// Examples counts replayed model training examples; Workers and
	// Votes the replayed reputation.
	Examples, Workers, Votes int64
	// CorruptTail is true when replay stopped early at a torn or corrupt
	// frame (everything before it was recovered).
	CorruptTail bool
}

// Store is an open knowledge store. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	lock *os.File // exclusive flock on the directory (nil on non-unix)

	// mu guards state and the active segment; taken by the writer
	// goroutine per batch, by View, and by Compact.
	mu       sync.Mutex
	state    *State
	seg      *os.File
	bw       *bufio.Writer
	segSeq   uint64
	segBytes int64
	sealed   []uint64 // sealed segment seqs awaiting compaction

	ch        chan Record
	quit      chan struct{}
	wdone     chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	appended, dropped, written, compactions atomic.Int64
	replay                                  ReplayInfo
}

// Open opens (creating if needed) the store rooted at dir with default
// options and replays its contents into memory.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit tuning.
func OpenOptions(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		lock:  lock,
		state: NewState(),
		ch:    make(chan Record, opts.BufferRecords),
		quit:  make(chan struct{}),
		wdone: make(chan struct{}),
	}

	covered, _, snapClean := replaySnapshotFile(filepath.Join(dir, snapName), s.state.apply)
	if !snapClean {
		s.replay.CorruptTail = true
	}
	seqs, err := listSegments(dir)
	if err != nil {
		unlockDir(lock)
		return nil, fmt.Errorf("store: %v", err)
	}
	maxSeq := covered
	for _, seq := range seqs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= covered {
			// Already folded into the snapshot: a crash interrupted a
			// previous compaction between rename and delete. Deleting it
			// (instead of replaying) is what prevents double-apply.
			os.Remove(filepath.Join(dir, segFileName(seq)))
			continue
		}
		// Each segment contributes its longest valid prefix; a torn or
		// corrupt tail loses at most that segment's damaged suffix.
		// Later segments still replay: records are independent
		// observations appended by a store that had already accepted the
		// truncation, so applying them never depends on the lost tail.
		_, clean := replaySegmentFile(filepath.Join(dir, segFileName(seq)), s.state.apply)
		if !clean {
			s.replay.CorruptTail = true
		}
	}
	s.summarizeReplay()

	// Old segments (replayed or not) stay on disk until compaction; the
	// store only ever appends to a fresh segment, so a torn tail in an
	// old segment can never be extended into confusion.
	s.segSeq = maxSeq + 1
	if err := s.openSegmentLocked(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	go s.writer()
	return s, nil
}

// summarizeReplay derives ReplayInfo counts from the replayed state.
func (s *Store) summarizeReplay() {
	st := s.state
	s.replay.Records = st.records
	s.replay.CacheEntries = int64(len(st.cache))
	for _, answers := range st.cache {
		s.replay.CacheAnswers += int64(len(answers))
	}
	for _, sides := range st.sel {
		// Each (task, side) entry holds distinct observations: the
		// combined estimator is reconstituted at Restore as their sum,
		// so summing here counts every observation exactly once.
		for _, c := range sides {
			s.replay.Observations += int64(c.Trials)
		}
	}
	for _, e := range st.lat {
		s.replay.Observations += int64(e.Count())
	}
	for _, e := range st.agr {
		s.replay.Observations += int64(e.Count())
	}
	for _, exs := range st.examples {
		s.replay.Examples += int64(len(exs))
	}
	s.replay.Workers = int64(len(st.reput))
	for _, c := range st.reput {
		s.replay.Votes += c.Votes
	}
}

// openSegmentLocked creates the next active segment and writes its
// header. Callers hold mu or have exclusive access.
func (s *Store) openSegmentLocked() error {
	f, err := os.Create(filepath.Join(s.dir, segFileName(s.segSeq)))
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	s.seg = f
	s.bw = bufio.NewWriterSize(f, 1<<18)
	if _, err := s.bw.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("store: %v", err)
	}
	s.segBytes = int64(len(segMagic))
	return nil
}

// Append enqueues one record for asynchronous durability. It never
// blocks: a full buffer (or a closed store) drops the record and
// increments Stats.Dropped.
func (s *Store) Append(rec Record) {
	if s.closed.Load() {
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- rec:
		s.appended.Add(1)
	default:
		s.dropped.Add(1)
	}
}

// writer is the single goroutine that frames records to the active
// segment, folds them into the state, rotates segments and compacts.
func (s *Store) writer() {
	defer close(s.wdone)
	var buf []byte
	for {
		select {
		case rec := <-s.ch:
			buf = s.handle(rec, buf)
			buf = s.drainBacklog(buf)
			// No flush here: bufio publishes to the OS as its (large)
			// buffer fills, rotation and Close flush the rest. Keeping
			// the writer syscall-light is what lets it outpace the
			// finalization paths, so the bounded buffer never drops in
			// steady state.
			s.maybeCompact()
		case <-s.quit:
			buf = s.drainBacklog(buf)
			s.flush()
			return
		}
	}
}

// drainBacklog handles whatever is already buffered without blocking.
func (s *Store) drainBacklog(buf []byte) []byte {
	for {
		select {
		case rec := <-s.ch:
			buf = s.handle(rec, buf)
		default:
			return buf
		}
	}
}

func (s *Store) handle(rec Record, buf []byte) []byte {
	buf = rec.encode(buf[:0])
	frame := appendFrame(nil, buf)
	s.mu.Lock()
	// A record that cannot be framed to disk (no active segment after a
	// failed rotation, or a write error) is dropped — counted, and kept
	// out of the in-memory state too, so Stats.Dropped is the one honest
	// signal of what the next engine will not see.
	if s.bw == nil {
		s.dropped.Add(1)
		s.mu.Unlock()
		return buf
	}
	if _, err := s.bw.Write(frame); err != nil {
		s.dropped.Add(1)
		s.mu.Unlock()
		return buf
	}
	s.segBytes += int64(len(frame))
	s.written.Add(1)
	s.state.apply(rec)
	if s.segBytes >= s.opts.SegmentBytes {
		s.rotateLocked()
	}
	s.mu.Unlock()
	return buf
}

func (s *Store) flush() {
	s.mu.Lock()
	if s.bw != nil {
		s.bw.Flush()
	}
	s.mu.Unlock()
}

// rotateLocked seals the active segment and opens the next one.
func (s *Store) rotateLocked() {
	s.bw.Flush()
	s.seg.Close()
	s.sealed = append(s.sealed, s.segSeq)
	s.segSeq++
	if err := s.openSegmentLocked(); err != nil {
		s.seg, s.bw = nil, nil
	}
}

func (s *Store) maybeCompact() {
	s.mu.Lock()
	n := len(s.sealed)
	s.mu.Unlock()
	if n >= s.opts.CompactSegments {
		s.Compact()
	}
}

// Compact seals the active segment, writes the whole state as the new
// snapshot (atomic rename), deletes every segment the snapshot covers,
// and starts a fresh segment.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return fmt.Errorf("store: no active segment")
	}
	s.bw.Flush()
	s.seg.Close()
	covered := s.segSeq
	data := encodeRecordsFile(covered, s.state.snapshotRecords())
	if err := writeFileAtomic(filepath.Join(s.dir, snapName), data); err != nil {
		// Reopen a fresh segment so appends keep flowing; the sealed
		// segments (including the one just closed) remain replayable and
		// eligible for the next compaction attempt.
		s.sealed = append(s.sealed, covered)
		s.segSeq++
		if oerr := s.openSegmentLocked(); oerr != nil {
			s.seg, s.bw = nil, nil
		}
		return err
	}
	for _, seq := range s.sealed {
		os.Remove(filepath.Join(s.dir, segFileName(seq)))
	}
	os.Remove(filepath.Join(s.dir, segFileName(covered)))
	s.sealed = nil
	s.segSeq = covered + 1
	s.compactions.Add(1)
	if err := s.openSegmentLocked(); err != nil {
		s.seg, s.bw = nil, nil
		return err
	}
	return nil
}

// View runs f with the store's materialized state under the store lock.
// The state must not be retained or mutated; copy what you need.
func (s *Store) View(f func(*State)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s.state)
}

// Replay reports what Open recovered.
func (s *Store) Replay() ReplayInfo { return s.replay }

// Stats reports activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Appended:    s.appended.Load(),
		Dropped:     s.dropped.Load(),
		Written:     s.written.Load(),
		Compactions: s.compactions.Load(),
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close drains the append buffer, flushes and syncs the active segment,
// and shuts the writer down. Records appended after Close are dropped.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.quit)
		<-s.wdone
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.bw != nil {
			err := s.bw.Flush()
			serr := s.seg.Sync()
			cerr := s.seg.Close()
			s.closeErr = errors.Join(err, serr, cerr)
			s.seg, s.bw = nil, nil
		}
		unlockDir(s.lock)
		s.lock = nil
	})
	return s.closeErr
}

// CacheRecords renders a cache's full contents as records — the bridge
// Engine.SaveCache uses to persist through the store's format.
func CacheRecords(c *cache.Cache) []Record {
	exported := c.Export()
	recs := make([]Record, 0, len(exported))
	for _, e := range exported {
		recs = append(recs, Record{Kind: KindCacheEntry, Task: e.Key.Task, Args: e.Key.Args, Answers: e.Answers})
	}
	return recs
}

// MergeCacheRecords applies every cache-entry record to c (overwriting
// existing keys, leaving other keys intact) and returns how many were
// applied. Non-cache kinds are ignored, so a full store snapshot is a
// valid cache file.
func MergeCacheRecords(c *cache.Cache, recs []Record) int {
	n := 0
	for _, rec := range recs {
		if rec.Kind != KindCacheEntry {
			continue
		}
		c.Put(cache.Key{Task: rec.Task, Args: rec.Args}, cache.Entry{Answers: rec.Answers})
		n++
	}
	return n
}
