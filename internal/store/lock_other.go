//go:build !unix

package store

import "os"

// lockDir is a no-op on platforms without flock; single-process use is
// the documented contract there.
func lockDir(string) (*os.File, error) { return nil, nil }

func unlockDir(*os.File) {}
