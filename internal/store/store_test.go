package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/relation"
)

// waitWritten polls until the writer has durably framed n records (the
// append path is asynchronous by design).
func waitWritten(t *testing.T, s *Store, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Written < n {
		if time.Now().After(deadline) {
			t.Fatalf("writer stuck: written %d of %d", s.Stats().Written, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func boolVals(bs ...bool) []relation.Value {
	out := make([]relation.Value, len(bs))
	for i, b := range bs {
		out[i] = relation.NewBool(b)
	}
	return out
}

func sampleRecords() []Record {
	return []Record{
		{Kind: KindCacheEntry, Task: "isCat", Args: "k1", Answers: boolVals(true, true, false)},
		{Kind: KindCacheEntry, Task: "isCat", Args: "k2", Answers: boolVals(false)},
		{Kind: KindSelectivity, Task: "isCeleb", Side: "right", Pass: true},
		{Kind: KindSelectivity, Task: "isCeleb", Side: "right", Pass: false},
		{Kind: KindSelectivity, Task: "isCeleb", Pass: true},
		{Kind: KindLatency, Task: "isCat", X: 4.5},
		{Kind: KindAgreement, Task: "isCat", X: 0.9},
		{Kind: KindModelExample, Task: "isCat", Args: string(relation.NewString("tabby").Encode(nil)), Pass: true},
		{Kind: KindReputation, Worker: "w1", Pass: true},
		{Kind: KindReputation, Worker: "w1", Pass: false},
		{Kind: KindReputation, Worker: "w2", Pass: true},
	}
}

func appendAll(t *testing.T, s *Store, recs []Record) {
	t.Helper()
	for _, r := range recs {
		s.Append(r)
	}
	waitWritten(t, s, int64(len(recs)))
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	appendAll(t, s, recs)
	var before uint64
	s.View(func(st *State) { before = st.Fingerprint() })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Replay().CorruptTail {
		t.Fatal("clean close replayed as corrupt")
	}
	var after uint64
	var entries []CacheEntry
	var sel map[string]struct{ P, T float64 }
	s2.View(func(st *State) {
		after = st.Fingerprint()
		entries = st.CacheEntries()
		sel = map[string]struct{ P, T float64 }{}
		for side, c := range st.Selectivities("isCeleb") {
			sel[side] = struct{ P, T float64 }{c.Passes, c.Trials}
		}
	})
	if before != after {
		t.Fatalf("fingerprint changed across restart: %x vs %x", before, after)
	}
	if len(entries) != 2 || entries[0].Key.Args != "k1" || len(entries[0].Answers) != 3 {
		t.Fatalf("cache entries = %+v", entries)
	}
	if sel["right"].T != 2 || sel["right"].P != 1 || sel[""].T != 1 {
		t.Fatalf("selectivities = %+v", sel)
	}
	info := s2.Replay()
	if info.CacheEntries != 2 || info.CacheAnswers != 4 || info.Workers != 2 || info.Votes != 3 {
		t.Fatalf("replay info = %+v", info)
	}
	// 3 selectivity trials + 1 latency + 1 agreement.
	if info.Observations != 5 {
		t.Fatalf("observations = %d, want 5", info.Observations)
	}
	if info.Examples != 1 {
		t.Fatalf("examples = %d", info.Examples)
	}
}

// TestTornWriteRecoversPrefix is the crash-safety acceptance test:
// truncating the WAL mid-record loses at most the torn record — replay
// recovers every earlier record and the store opens cleanly.
func TestTornWriteRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	appendAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v err = %v", segs, err)
	}
	path := filepath.Join(dir, segFileName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Find where the last record's frame starts by re-walking frames,
	// then tear the file at points inside that record; replay must
	// recover exactly the earlier records each time.
	offsets := frameOffsets(t, data)
	if len(offsets) != len(recs) {
		t.Fatalf("frames = %d, want %d", len(offsets), len(recs))
	}
	lastStart := offsets[len(offsets)-1]
	for _, cut := range []int{lastStart + 1, lastStart + frameHdr, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("open after torn write at %d: %v", cut, err)
		}
		var n int64
		s2.View(func(st *State) { n = st.Records() })
		if n != int64(len(recs)-1) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, len(recs)-1)
		}
		if !s2.Replay().CorruptTail {
			t.Fatalf("cut %d: corrupt tail not reported", cut)
		}
		// The store must keep working after recovery: append + reopen.
		s2.Append(Record{Kind: KindSelectivity, Task: "t", Pass: true})
		waitWritten(t, s2, 1)
		s2.Close()
		s3, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var n3 int64
		s3.View(func(st *State) { n3 = st.Records() })
		if n3 != int64(len(recs)) { // len(recs)-1 recovered + 1 new
			t.Fatalf("cut %d: after recovery append, %d records, want %d", cut, n3, len(recs))
		}
		s3.Close()
		// Restore the full segment bytes for the next truncation point.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Remove segments created by the recovery stores so the next
		// iteration replays only the original one.
		segs, _ := listSegments(dir)
		for _, seq := range segs {
			if seq != segs[0] {
				os.Remove(filepath.Join(dir, segFileName(seq)))
			}
		}
	}
}

// frameOffsets returns the byte offset (within the file) where each
// frame starts.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		t.Fatal("bad segment magic")
	}
	var offs []int
	pos := len(segMagic)
	for pos < len(data) {
		offs = append(offs, pos)
		n := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
		pos += frameHdr + n
	}
	return offs
}

func TestCompactionFoldsSegmentsIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; low threshold forces compaction.
	s, err := OpenOptions(dir, Options{SegmentBytes: 256, CompactSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 200; i++ {
		s.Append(Record{Kind: KindSelectivity, Task: "isCat", Pass: i%3 == 0})
		want++
	}
	waitWritten(t, s, want)
	var before uint64
	s.View(func(st *State) { before = st.Fingerprint() })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var after uint64
	var counts map[string]float64
	s2.View(func(st *State) {
		after = st.Fingerprint()
		counts = map[string]float64{}
		for side, c := range st.Selectivities("isCat") {
			counts[side] = c.Trials
		}
	})
	if before != after {
		t.Fatalf("compaction changed state: %x vs %x", before, after)
	}
	if counts[""] != 200 {
		t.Fatalf("trials = %v, want 200", counts)
	}
}

// TestCrashedCompactionNeverDoubleApplies simulates a crash between the
// snapshot rename and the segment deletion: reopening must skip (and
// clean up) segments the snapshot already covers.
func TestCrashedCompactionNeverDoubleApplies(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Append(Record{Kind: KindSelectivity, Task: "t", Pass: true})
	}
	waitWritten(t, s, 50)
	activeSeq := s.segSeq
	segPath := filepath.Join(dir, segFileName(activeSeq))
	s.flush()
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Resurrect the covered segment, as if deletion never happened.
	if err := os.WriteFile(segPath, segData, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var trials float64
	s2.View(func(st *State) { trials = st.Selectivities("t")[""].Trials })
	if trials != 50 {
		t.Fatalf("trials = %v, want 50 (double-apply?)", trials)
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatal("covered segment not cleaned up")
	}
}

func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.lock != nil { // platforms without flock skip the contention check
		if _, err := Open(dir); err == nil {
			t.Fatal("second Open on a locked store must fail")
		}
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}

func TestAppendAfterCloseDrops(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Append(Record{Kind: KindSelectivity, Task: "t"})
	if st := s.Stats(); st.Dropped != 1 || st.Appended != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecordsFileRoundTripAndCacheBridge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.qks")

	c := cache.New()
	k1 := cache.NewKey("isCat", []relation.Value{relation.NewString("a")})
	k2 := cache.NewKey("isCat", []relation.Value{relation.NewString("b")})
	c.Put(k1, cache.Entry{Answers: boolVals(true, false)})
	c.Put(k2, cache.Entry{Answers: boolVals(true)})
	if err := WriteRecordsFile(path, CacheRecords(c)); err != nil {
		t.Fatal(err)
	}

	// Merge over a non-empty cache: saved keys overwrite, others stay.
	c2 := cache.New()
	c2.Put(k1, cache.Entry{Answers: boolVals(false, false, false)}) // will be overwritten
	k3 := cache.NewKey("isDog", []relation.Value{relation.NewString("z")})
	c2.Put(k3, cache.Entry{Answers: boolVals(true)}) // must survive
	recs, err := ReadRecordsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := MergeCacheRecords(c2, recs); n != 2 {
		t.Fatalf("merged %d records, want 2", n)
	}
	if c2.Len() != 3 {
		t.Fatalf("len = %d, want 3", c2.Len())
	}
	if e, _ := c2.Peek(k1); len(e.Answers) != 2 || !e.Answers[0].Truthy() {
		t.Fatalf("k1 not overwritten: %+v", e)
	}
	if e, ok := c2.Peek(k3); !ok || len(e.Answers) != 1 {
		t.Fatalf("unrelated key lost: %+v ok=%v", e, ok)
	}

	// Missing file reads as empty; corrupt file errors.
	if recs, err := ReadRecordsFile(filepath.Join(dir, "missing.qks")); err != nil || len(recs) != 0 {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecordsFile(path); err == nil {
		t.Fatal("corrupt records file must error")
	}
}

func TestDecodeArgsRoundTrip(t *testing.T) {
	vals := []relation.Value{relation.NewString("x"), relation.NewInt(42), relation.NewBool(true)}
	var enc []byte
	for _, v := range vals {
		enc = v.Encode(enc)
	}
	got, err := DecodeArgs(string(enc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Str() != "x" || got[1].Int() != 42 || !got[2].Truthy() {
		t.Fatalf("decoded = %v", got)
	}
}
