package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/model"
	"repro/internal/relation"
	"repro/internal/stats"
)

// Kind identifies what a record means. The store is modular in its
// record kinds: every learning layer appends its own kind and the store
// needs no knowledge of the layers beyond this enum.
type Kind byte

const (
	// KindCacheEntry is one complete Task Cache entry: Task + Args (the
	// cache key) and the per-assignment Answers. Latest entry for a key
	// wins, matching cache.Put's overwrite semantics.
	KindCacheEntry Kind = 1
	// KindSelectivity is one boolean outcome observed by the Statistics
	// Manager: Task, the join Side it was observed on ("" when untagged),
	// and Pass.
	KindSelectivity Kind = 2
	// KindLatency is one HIT post-to-done latency observation in virtual
	// minutes (X).
	KindLatency Kind = 3
	// KindAgreement is one majority-agreement share observation (X).
	KindAgreement Kind = 4
	// KindModelExample is one labelled Task Model training example:
	// Task, Args (canonical argument encoding) and the Pass label.
	// Persisting examples instead of weights keeps the store independent
	// of any one learner's internals; replay retrains whatever model is
	// attached.
	KindModelExample Kind = 5
	// KindReputation is one worker vote: Worker and whether it agreed
	// with the majority (Pass).
	KindReputation Kind = 6

	// Aggregate kinds appear in snapshots, folding many observations of
	// the same key into one record so compaction keeps files small.

	// KindSelectivitySum is a (Task, Side) estimator's counts: X passes
	// over Y trials.
	KindSelectivitySum Kind = 7
	// KindLatencySum is a task's latency EWMA state: value X over N
	// observations.
	KindLatencySum Kind = 8
	// KindAgreementSum is a task's agreement EWMA state: value X over N
	// observations.
	KindAgreementSum Kind = 9
	// KindReputationSum is a worker's totals: N votes, M agreed.
	KindReputationSum Kind = 10

	// KindRankPair is one finalized comparison (Order) HIT's pairwise
	// agreement: Task, X = mean majority share across its item pairs
	// (1 − X is the inversion rate), N = pairs observed. Replay seeds
	// ChooseRankStrategy's hybrid window model with real evidence.
	KindRankPair Kind = 11
	// KindRankPairSum is a task's comparison-agreement EWMA state in
	// snapshots: value X over N observations.
	KindRankPairSum Kind = 12

	// KindBackendObs is one finalized HIT observed on a worker backend:
	// Task is the backend name, Side the task kind, X the latency in
	// virtual minutes, Y the mean majority-agreement quality, M the
	// per-assignment price in cents. Replay seeds ChooseBackend with
	// real evidence of what each backend charges and delivers.
	KindBackendObs Kind = 13
	// KindBackendSum is a (backend, task kind) cell's EWMA states in
	// snapshots: latency value X, quality value Y, price value M
	// (rounded cents), over N observations.
	KindBackendSum Kind = 14

	// KindWorkerQuality is one EM-fitted per-worker accuracy estimate
	// from a finalized adaptive HIT: Worker, X the fitted accuracy,
	// N the votes that supported the fit. Replay seeds the answer
	// aggregator's worker priors with real evidence.
	KindWorkerQuality Kind = 15
	// KindWorkerQualitySum is a worker's quality EWMA state in
	// snapshots: value X over N observations.
	KindWorkerQualitySum Kind = 16
)

// Record is the store's unit of appending and replay: a tagged union
// whose populated fields depend on Kind (see the Kind constants). One
// flat struct keeps the wire codec trivial and the fuzz surface small.
type Record struct {
	Kind   Kind
	Task   string
	Side   string // join side for selectivity kinds: "", "left", "right"
	Worker string
	// Args is the canonical relation encoding of the argument values
	// (cache key / model example input), exactly cache.Key.Args.
	Args    string
	Answers []relation.Value
	Pass    bool
	X, Y    float64
	N, M    int64
}

// maxRecordBytes bounds one record's encoded payload; anything larger
// during replay is treated as corruption.
const maxRecordBytes = 16 << 20

// encode appends the record's payload (kind byte first) to dst.
func (r Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Kind))
	dst = appendStr(dst, r.Task)
	dst = appendStr(dst, r.Side)
	dst = appendStr(dst, r.Worker)
	dst = appendStr(dst, r.Args)
	dst = binary.AppendUvarint(dst, uint64(len(r.Answers)))
	for _, v := range r.Answers {
		dst = appendStr(dst, string(v.Encode(nil)))
	}
	if r.Pass {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Y))
	dst = binary.AppendVarint(dst, r.N)
	dst = binary.AppendVarint(dst, r.M)
	return dst
}

// decodeRecord parses one payload produced by encode. Every length is
// validated against the remaining input so corrupted payloads fail
// instead of allocating absurd amounts.
func decodeRecord(data []byte) (Record, error) {
	var r Record
	if len(data) == 0 {
		return r, fmt.Errorf("store: empty record")
	}
	r.Kind = Kind(data[0])
	if r.Kind < KindCacheEntry || r.Kind > KindWorkerQualitySum {
		return r, fmt.Errorf("store: unknown record kind %d", data[0])
	}
	rest := data[1:]
	var err error
	if r.Task, rest, err = takeStr(rest); err != nil {
		return r, err
	}
	if r.Side, rest, err = takeStr(rest); err != nil {
		return r, err
	}
	if r.Worker, rest, err = takeStr(rest); err != nil {
		return r, err
	}
	if r.Args, rest, err = takeStr(rest); err != nil {
		return r, err
	}
	n, used := binary.Uvarint(rest)
	if used <= 0 || n > uint64(len(rest)) {
		return r, fmt.Errorf("store: bad answer count")
	}
	rest = rest[used:]
	for i := uint64(0); i < n; i++ {
		var enc string
		if enc, rest, err = takeStr(rest); err != nil {
			return r, err
		}
		v, trailing, derr := relation.DecodeValue([]byte(enc))
		if derr != nil || len(trailing) != 0 {
			return r, fmt.Errorf("store: bad answer encoding: %v", derr)
		}
		r.Answers = append(r.Answers, v)
	}
	if len(rest) < 1+8+8 {
		return r, fmt.Errorf("store: truncated record tail")
	}
	r.Pass = rest[0] == 1
	r.X = math.Float64frombits(binary.LittleEndian.Uint64(rest[1:9]))
	r.Y = math.Float64frombits(binary.LittleEndian.Uint64(rest[9:17]))
	rest = rest[17:]
	var used2 int
	if r.N, used2 = binary.Varint(rest); used2 <= 0 {
		return r, fmt.Errorf("store: bad varint")
	}
	rest = rest[used2:]
	if r.M, used2 = binary.Varint(rest); used2 <= 0 {
		return r, fmt.Errorf("store: bad varint")
	}
	return r, nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func takeStr(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > uint64(len(data)-used) {
		return "", nil, fmt.Errorf("store: bad string length")
	}
	return string(data[used : used+int(n)]), data[used+int(n):], nil
}

// DecodeArgs splits a canonical argument encoding (cache.Key.Args /
// Record.Args) back into its values.
func DecodeArgs(args string) ([]relation.Value, error) {
	var out []relation.Value
	rest := []byte(args)
	for len(rest) > 0 {
		v, r, err := relation.DecodeValue(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		rest = r
	}
	return out, nil
}

// --- materialized state ---------------------------------------------------

// RepCounts is one worker's reputation totals.
type RepCounts struct {
	Votes, Agreed int64
}

// modelExampleCap bounds the training examples kept per task: enough to
// warm any attached model while keeping snapshots and memory bounded.
// When exceeded, only the most recent cap examples survive compaction.
const modelExampleCap = 10000

// State is the store's materialized view of everything it has seen:
// replay folds records into it at Open, the writer folds appended
// records into it live, and compaction serializes it back out as the
// snapshot. Access is synchronized by the owning Store (see Store.View).
type State struct {
	cacheOrder []cache.Key
	cache      map[cache.Key][]relation.Value
	sel        map[string]map[string]stats.SelectivityState // task → side
	lat        map[string]*stats.EWMA
	agr        map[string]*stats.EWMA
	rank       map[string]*stats.EWMA
	backends   map[string]map[string]*backendAgg // backend → task kind
	examples   map[string][]model.Example
	reput      map[string]RepCounts
	quality    map[string]*stats.EWMA
	records    int64
}

// backendAgg folds one (backend, task kind) cell's observations; its
// three EWMAs are always observed together, so their counts match.
type backendAgg struct {
	lat, qual, price *stats.EWMA
}

func newBackendAgg() *backendAgg {
	return &backendAgg{
		lat:   stats.NewEWMA(stats.TaskEWMAAlpha),
		qual:  stats.NewEWMA(stats.TaskEWMAAlpha),
		price: stats.NewEWMA(stats.TaskEWMAAlpha),
	}
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		cache:    make(map[cache.Key][]relation.Value),
		sel:      make(map[string]map[string]stats.SelectivityState),
		lat:      make(map[string]*stats.EWMA),
		agr:      make(map[string]*stats.EWMA),
		rank:     make(map[string]*stats.EWMA),
		backends: make(map[string]map[string]*backendAgg),
		examples: make(map[string][]model.Example),
		reput:    make(map[string]RepCounts),
		quality:  make(map[string]*stats.EWMA),
	}
}

// apply folds one decoded record into the state. It never fails: any
// record that survived frame CRC + decode is applicable.
func (s *State) apply(r Record) {
	s.records++
	switch r.Kind {
	case KindCacheEntry:
		key := cache.Key{Task: r.Task, Args: r.Args}
		if _, ok := s.cache[key]; !ok {
			s.cacheOrder = append(s.cacheOrder, key)
		}
		s.cache[key] = r.Answers
	case KindSelectivity:
		c := s.selCounts(r.Task, r.Side)
		c.Trials++
		if r.Pass {
			c.Passes++
		}
		s.sel[r.Task][r.Side] = *c
	case KindSelectivitySum:
		c := s.selCounts(r.Task, r.Side)
		c.Passes += r.X
		c.Trials += r.Y
		s.sel[r.Task][r.Side] = *c
	case KindLatency:
		s.ewma(s.lat, r.Task).Observe(r.X)
	case KindLatencySum:
		s.ewma(s.lat, r.Task).SetState(stats.EWMAState{Value: r.X, N: int(r.N)})
	case KindAgreement:
		s.ewma(s.agr, r.Task).Observe(r.X)
	case KindAgreementSum:
		s.ewma(s.agr, r.Task).SetState(stats.EWMAState{Value: r.X, N: int(r.N)})
	case KindRankPair:
		s.ewma(s.rank, r.Task).Observe(r.X)
	case KindRankPairSum:
		s.ewma(s.rank, r.Task).SetState(stats.EWMAState{Value: r.X, N: int(r.N)})
	case KindBackendObs:
		a := s.backendAgg(r.Task, r.Side)
		a.lat.Observe(r.X)
		a.qual.Observe(r.Y)
		a.price.Observe(float64(r.M))
	case KindBackendSum:
		a := s.backendAgg(r.Task, r.Side)
		a.lat.SetState(stats.EWMAState{Value: r.X, N: int(r.N)})
		a.qual.SetState(stats.EWMAState{Value: r.Y, N: int(r.N)})
		a.price.SetState(stats.EWMAState{Value: float64(r.M), N: int(r.N)})
	case KindModelExample:
		args, err := DecodeArgs(r.Args)
		if err != nil {
			return
		}
		exs := append(s.examples[r.Task], model.Example{Args: args, Label: r.Pass})
		if len(exs) > 2*modelExampleCap {
			exs = append(exs[:0], exs[len(exs)-modelExampleCap:]...)
		}
		s.examples[r.Task] = exs
	case KindReputation:
		c := s.reput[r.Worker]
		c.Votes++
		if r.Pass {
			c.Agreed++
		}
		s.reput[r.Worker] = c
	case KindReputationSum:
		c := s.reput[r.Worker]
		c.Votes += r.N
		c.Agreed += r.M
		s.reput[r.Worker] = c
	case KindWorkerQuality:
		s.ewma(s.quality, r.Worker).Observe(r.X)
	case KindWorkerQualitySum:
		s.ewma(s.quality, r.Worker).SetState(stats.EWMAState{Value: r.X, N: int(r.N)})
	}
}

func (s *State) selCounts(task, side string) *stats.SelectivityState {
	m := s.sel[task]
	if m == nil {
		m = make(map[string]stats.SelectivityState)
		s.sel[task] = m
	}
	c := m[side]
	return &c
}

func (s *State) backendAgg(backend, kind string) *backendAgg {
	kinds := s.backends[backend]
	if kinds == nil {
		kinds = make(map[string]*backendAgg)
		s.backends[backend] = kinds
	}
	a := kinds[kind]
	if a == nil {
		a = newBackendAgg()
		kinds[kind] = a
	}
	return a
}

func (s *State) ewma(m map[string]*stats.EWMA, task string) *stats.EWMA {
	e := m[task]
	if e == nil {
		e = stats.NewEWMA(stats.TaskEWMAAlpha)
		m[task] = e
	}
	return e
}

// snapshotRecords serializes the state as aggregate records in a
// deterministic order (cache insertion order, then sorted tasks and
// workers), so two identical states produce byte-identical snapshots.
func (s *State) snapshotRecords() []Record {
	var out []Record
	for _, key := range s.cacheOrder {
		out = append(out, Record{Kind: KindCacheEntry, Task: key.Task, Args: key.Args, Answers: s.cache[key]})
	}
	for _, task := range sortedKeys(s.sel) {
		sides := s.sel[task]
		for _, side := range sortedKeys(sides) {
			c := sides[side]
			out = append(out, Record{Kind: KindSelectivitySum, Task: task, Side: side, X: c.Passes, Y: c.Trials})
		}
	}
	for _, task := range sortedKeys(s.lat) {
		st := s.lat[task].State()
		out = append(out, Record{Kind: KindLatencySum, Task: task, X: st.Value, N: int64(st.N)})
	}
	for _, task := range sortedKeys(s.agr) {
		st := s.agr[task].State()
		out = append(out, Record{Kind: KindAgreementSum, Task: task, X: st.Value, N: int64(st.N)})
	}
	for _, task := range sortedKeys(s.rank) {
		st := s.rank[task].State()
		out = append(out, Record{Kind: KindRankPairSum, Task: task, X: st.Value, N: int64(st.N)})
	}
	for _, be := range sortedKeys(s.backends) {
		kinds := s.backends[be]
		for _, kind := range sortedKeys(kinds) {
			a := kinds[kind]
			lat, qual, price := a.lat.State(), a.qual.State(), a.price.State()
			out = append(out, Record{
				Kind: KindBackendSum, Task: be, Side: kind,
				X: lat.Value, Y: qual.Value, M: int64(math.Round(price.Value)), N: int64(lat.N),
			})
		}
	}
	for _, task := range sortedKeys(s.examples) {
		exs := s.examples[task]
		if len(exs) > modelExampleCap {
			exs = exs[len(exs)-modelExampleCap:]
		}
		for _, ex := range exs {
			var enc []byte
			for _, a := range ex.Args {
				enc = a.Encode(enc)
			}
			out = append(out, Record{Kind: KindModelExample, Task: task, Args: string(enc), Pass: ex.Label})
		}
	}
	for _, w := range sortedKeys(s.reput) {
		c := s.reput[w]
		out = append(out, Record{Kind: KindReputationSum, Worker: w, N: c.Votes, M: c.Agreed})
	}
	for _, w := range sortedKeys(s.quality) {
		st := s.quality[w].State()
		out = append(out, Record{Kind: KindWorkerQualitySum, Worker: w, X: st.Value, N: int64(st.N)})
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CacheEntry is one replayed cache entry.
type CacheEntry struct {
	Key     cache.Key
	Answers []relation.Value
}

// CacheEntries returns the replayed cache contents in first-seen order.
func (s *State) CacheEntries() []CacheEntry {
	out := make([]CacheEntry, 0, len(s.cacheOrder))
	for _, key := range s.cacheOrder {
		out = append(out, CacheEntry{Key: key, Answers: s.cache[key]})
	}
	return out
}

// StatTasks returns every task with replayed statistics, sorted.
func (s *State) StatTasks() []string {
	set := make(map[string]bool)
	for t := range s.sel {
		set[t] = true
	}
	for t := range s.lat {
		set[t] = true
	}
	for t := range s.agr {
		set[t] = true
	}
	for t := range s.rank {
		set[t] = true
	}
	return sortedKeys(set)
}

// Selectivities returns one task's per-side estimator counts ("" is the
// untagged side). The returned map is a copy.
func (s *State) Selectivities(task string) map[string]stats.SelectivityState {
	out := make(map[string]stats.SelectivityState, len(s.sel[task]))
	for side, c := range s.sel[task] {
		out[side] = c
	}
	return out
}

// Latency returns one task's replayed latency EWMA state.
func (s *State) Latency(task string) stats.EWMAState {
	if e := s.lat[task]; e != nil {
		return e.State()
	}
	return stats.EWMAState{}
}

// Agreement returns one task's replayed agreement EWMA state.
func (s *State) Agreement(task string) stats.EWMAState {
	if e := s.agr[task]; e != nil {
		return e.State()
	}
	return stats.EWMAState{}
}

// RankAgreement returns one task's replayed comparison-agreement EWMA
// state (pairwise majority share across its Order HITs).
func (s *State) RankAgreement(task string) stats.EWMAState {
	if e := s.rank[task]; e != nil {
		return e.State()
	}
	return stats.EWMAState{}
}

// BackendObservations returns the replayed per-(backend, task kind)
// price/latency/quality states, keyed backend → kind.
func (s *State) BackendObservations() map[string]map[string]stats.BackendObsState {
	out := make(map[string]map[string]stats.BackendObsState, len(s.backends))
	for be, kinds := range s.backends {
		m := make(map[string]stats.BackendObsState, len(kinds))
		for kind, a := range kinds {
			m[kind] = stats.BackendObsState{
				Price:   a.price.State(),
				Latency: a.lat.State(),
				Quality: a.qual.State(),
			}
		}
		out[be] = m
	}
	return out
}

// ModelExamples returns the replayed training examples per task.
func (s *State) ModelExamples() map[string][]model.Example {
	out := make(map[string][]model.Example, len(s.examples))
	for task, exs := range s.examples {
		out[task] = append([]model.Example(nil), exs...)
	}
	return out
}

// Reputations returns the replayed per-worker vote totals.
func (s *State) Reputations() map[string]RepCounts {
	out := make(map[string]RepCounts, len(s.reput))
	for w, c := range s.reput {
		out[w] = c
	}
	return out
}

// WorkerQualityStates returns the replayed per-worker EM-quality EWMA
// states.
func (s *State) WorkerQualityStates() map[string]stats.EWMAState {
	out := make(map[string]stats.EWMAState, len(s.quality))
	for w, e := range s.quality {
		out[w] = e.State()
	}
	return out
}

// Records returns how many records have been folded into the state.
func (s *State) Records() int64 { return s.records }

// Fingerprint hashes the entire state in deterministic order; replaying
// the same bytes must always yield the same fingerprint (the fuzz
// target's no-double-apply check).
func (s *State) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, rec := range s.snapshotRecords() {
		_, _ = h.Write(rec.encode(nil))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
