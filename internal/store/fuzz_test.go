package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
)

// FuzzWALReplay feeds arbitrary bytes to the store as a WAL segment (and
// again as a snapshot) and opens the store over them. Replay must never
// panic, must apply at most the longest valid record prefix, and must be
// deterministic — replaying the same bytes twice yields bit-identical
// state, which is what rules out double-apply on corrupted, truncated or
// bit-flipped logs.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed segment plus mutations replay must survive.
	var valid []byte
	valid = append(valid, segMagic...)
	var payload []byte
	for _, rec := range []Record{
		{Kind: KindCacheEntry, Task: "isCat", Args: "k", Answers: []relation.Value{relation.NewBool(true)}},
		{Kind: KindSelectivity, Task: "isCeleb", Side: "right", Pass: true},
		{Kind: KindLatency, Task: "isCat", X: 3.25},
		{Kind: KindModelExample, Task: "isCat", Args: string(relation.NewString("x").Encode(nil)), Pass: false},
		{Kind: KindReputation, Worker: "w", Pass: true},
		{Kind: KindReputationSum, Worker: "w", N: 10, M: 4},
	} {
		payload = rec.encode(payload[:0])
		valid = appendFrame(valid, payload)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])        // torn tail
	f.Add(valid[:len(segMagic)])       // header only
	f.Add([]byte{})                    // empty file
	f.Add([]byte("QKWAL01\n\x00\x00")) // torn frame header
	f.Add([]byte("garbage not a wal")) // bad magic
	flipped := append([]byte(nil), valid...)
	flipped[len(valid)/2] ^= 0x40
	f.Add(flipped) // bit flip mid-file

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segFileName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Also drop the same bytes in as a snapshot: its replay path must
		// be equally bulletproof.
		if err := os.WriteFile(filepath.Join(dir, snapName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s1, err := Open(dir)
		if err != nil {
			// Open only errors on filesystem problems, never on content.
			t.Fatalf("open: %v", err)
		}
		var fp1 uint64
		var n1 int64
		s1.View(func(st *State) { fp1, n1 = st.Fingerprint(), st.Records() })
		s1.Close()

		// Reopening over the same inputs must reproduce the state
		// exactly: every valid record applied once, nothing twice.
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, segFileName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, snapName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir2)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		var fp2 uint64
		var n2 int64
		s2.View(func(st *State) { fp2, n2 = st.Fingerprint(), st.Records() })
		s2.Close()
		if fp1 != fp2 || n1 != n2 {
			t.Fatalf("replay nondeterministic: %d records (%016x) vs %d (%016x)", n1, fp1, n2, fp2)
		}
	})
}
