package taskmgr

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/budget"
	"repro/internal/qerr"
)

// Scope groups the task applications of one query so they can be
// governed — and canceled — together. A scope carries the per-query
// knobs of the context-first API: an optional budget cap layered under
// the engine account, per-task policy overrides, and a batching
// priority. Cancel resolves every pending item with the cause, expires
// the scope's open HITs at the marketplace (late submissions are
// discarded unpaid, like MTurk's DeleteHIT) and refunds the money those
// HITs had charged for assignments that never completed, so only the
// query's true sunk cost stays spent.
//
// Items of different scopes never share a HIT: a HIT belongs to exactly
// one scope (or none), which is what makes whole-HIT expiry sound.
type Scope struct {
	mgr *Manager

	mu       sync.Mutex
	err      error // cancellation cause; nil while live
	budget   *budget.Account
	policies map[string]Policy
	priority int
	spent    budget.Cents
	hits     map[string]bool // open HIT IDs posted for this scope
}

// NewScope creates a live scope bound to the manager.
func (m *Manager) NewScope() *Scope {
	return &Scope{mgr: m, hits: make(map[string]bool)}
}

// SetBudget caps this scope's total spend (0 removes the cap). The
// engine-wide account still applies on top.
func (s *Scope) SetBudget(limit budget.Cents) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit <= 0 {
		s.budget = nil
		return
	}
	s.budget = budget.NewAccount(limit)
}

// SetPolicy overrides the named task's policy for this scope only.
// TASK-definition overrides (Price/Assignments/Batch clauses) still win,
// exactly as they do over engine-level policies.
func (s *Scope) SetPolicy(task string, p Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.policies == nil {
		s.policies = make(map[string]Policy)
	}
	s.policies[strings.ToLower(task)] = p
}

// SetPriority orders this scope's pending items ahead of (positive) or
// behind (negative) other scopes when batches are cut. Default 0.
func (s *Scope) SetPriority(p int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.priority = p
}

func (s *Scope) policyFor(task string) (Policy, bool) {
	if s == nil {
		return Policy{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.policies[task]
	return p, ok
}

func (s *Scope) priorityNow() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priority
}

// Err returns the cancellation cause, or nil while the scope is live.
func (s *Scope) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RemainingBudget reports the scope's unspent budget headroom. ok is
// false when the scope is nil or uncapped (unlimited headroom); the
// sort subsystem uses it to size hybrid comparison refinement.
func (s *Scope) RemainingBudget() (budget.Cents, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget == nil {
		return 0, false
	}
	return s.budget.Remaining(), true
}

// Spent reports the scope's sunk cost: money charged for its HITs minus
// refunds for assignments expired by cancellation.
func (s *Scope) Spent() budget.Cents {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spent
}

// spend charges the scope's own budget (when capped) and records the
// sunk cost. It fails without side effects when the cap cannot cover
// the charge.
func (s *Scope) spend(cost budget.Cents) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget != nil {
		if err := s.budget.Spend(cost); err != nil {
			return err
		}
	}
	s.spent += cost
	return nil
}

// refund returns money to the scope (cap headroom and sunk-cost line).
func (s *Scope) refund(amount budget.Cents) {
	if s == nil || amount <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget != nil {
		s.budget.Refund(amount)
	}
	s.spent -= amount
	if s.spent < 0 {
		s.spent = 0
	}
}

// registerHIT records an open HIT as belonging to this scope. It fails
// with the cancellation cause when the scope was canceled while the HIT
// was being posted — the caller must then expire the HIT itself.
func (s *Scope) registerHIT(hitID string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.hits == nil {
		s.hits = make(map[string]bool)
	}
	s.hits[hitID] = true
	return nil
}

// unregisterHIT forgets a HIT that resolved through the normal paths.
func (s *Scope) unregisterHIT(hitID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.hits, hitID)
}

// Cancel terminates the scope with cause (ErrCanceled when nil):
// pending items resolve with the cause, open HITs are expired and their
// uncompleted assignments refunded, and every later Submit for this
// scope fails fast without posting. Idempotent; the first cause wins.
func (s *Scope) Cancel(cause error) {
	if s == nil {
		return
	}
	if cause == nil {
		cause = qerr.ErrCanceled
	}
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	s.err = cause
	open := make([]string, 0, len(s.hits))
	for id := range s.hits {
		open = append(open, id)
	}
	s.hits = nil
	s.mu.Unlock()
	s.mgr.sweepCanceledPending(s, cause)
	for _, id := range open {
		s.mgr.cancelInflightHIT(id, cause)
	}
}

// sweepCanceledPending removes the scope's queued-but-unposted items
// from every task state and resolves them with the cause.
func (m *Manager) sweepCanceledPending(s *Scope, cause error) {
	m.mu.Lock()
	states := make([]*taskState, 0, len(m.tasks))
	for _, st := range m.tasks {
		states = append(states, st)
	}
	m.mu.Unlock()
	var dropped []pendingItem
	for _, st := range states {
		st.mu.Lock()
		kept := st.pending[:0]
		for _, it := range st.pending {
			if it.scope == s {
				dropped = append(dropped, it)
			} else {
				kept = append(kept, it)
			}
		}
		st.pending = kept
		st.mu.Unlock()
	}
	for _, it := range dropped {
		it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", it.def.Name, cause)})
	}
}

// cancelInflightHIT expires one posted HIT: it is removed from the
// in-flight table (so a racing completion finalizes nothing), disposed
// at the marketplace, its uncompleted assignments refunded, and every
// outstanding item resolved with the cause. The stripe lock arbitrates
// against finalization, so each item still resolves exactly once.
func (m *Manager) cancelInflightHIT(hitID string, cause error) {
	str := m.flights.stripeFor(hitID)
	str.mu.Lock()
	if fl, ok := str.hits[hitID]; ok {
		delete(str.hits, hitID)
		str.mu.Unlock()
		m.expireHIT(hitID, fl.scope, fl.cost)
		for _, hi := range fl.hit.Items {
			if item, ok := fl.byKey[hi.Key]; ok {
				item.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", item.def.Name, cause)})
			}
		}
		return
	}
	if fl, ok := str.joins[hitID]; ok {
		delete(str.joins, hitID)
		str.mu.Unlock()
		m.expireHIT(hitID, fl.scope, fl.cost)
		for _, key := range fl.order {
			if fl.need[key] {
				fl.done(key, Outcome{Err: fmt.Errorf("taskmgr: %s: %w", fl.def.Name, cause)})
			}
		}
		return
	}
	if fl, ok := str.ranks[hitID]; ok {
		delete(str.ranks, hitID)
		str.mu.Unlock()
		m.expireHIT(hitID, fl.scope, fl.cost)
		fl.done(nil, fmt.Errorf("taskmgr: %s: %w", fl.def.Name, cause))
		return
	}
	str.mu.Unlock()
}

// expireHIT disposes a HIT at the marketplace and refunds whatever its
// uncompleted assignments had charged, to both the engine account and
// the scope.
func (m *Manager) expireHIT(hitID string, s *Scope, cost budget.Cents) {
	refund := budget.Cents(0)
	if status, ok := m.market.Dispose(hitID); ok {
		refund = cost - status.Spent
	}
	if refund <= 0 {
		return
	}
	m.account.Refund(refund)
	s.refund(refund)
}
