package taskmgr

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/qerr"
)

// Scope groups the task applications of one query so they can be
// governed — and canceled — together. A scope carries the per-query
// knobs of the context-first API: an optional budget cap layered under
// the engine account, per-task policy overrides, and a batching
// priority. Cancel resolves every pending item with the cause, expires
// the scope's open HITs at the marketplace (late submissions are
// discarded unpaid, like MTurk's DeleteHIT) and refunds the money those
// HITs had charged for assignments that never completed, so only the
// query's true sunk cost stays spent.
//
// By default items of different scopes never share a HIT: a HIT
// belongs to exactly one scope (or none), which is what makes whole-HIT
// expiry sound. Scopes that opt in via SetShared (or a task's Share:
// property) may instead co-batch with other sharing scopes whose
// effective posting policy matches; each participant then holds a
// hitShare — its slice of the HIT cost, split by item count — and
// cancellation detaches just that share rather than expiring the HIT.
type Scope struct {
	mgr *Manager

	mu       sync.Mutex
	err      error // cancellation cause; nil while live
	budget   *budget.Account
	policies map[string]Policy
	priority int
	shared   bool
	weight   int // fair-share weight; <1 reads as 1
	spent    budget.Cents
	queued   budget.Cents    // provisional cost of admission-queued batches
	hits     map[string]bool // open HIT IDs posted for this scope
	label    string          // optional metrics label (per-scope series)

	// span is the owning query's trace span (SetSpan); read on posting
	// paths without mu, hence atomic.
	span atomic.Pointer[obs.Span]
}

// NewScope creates a live scope bound to the manager.
func (m *Manager) NewScope() *Scope {
	return &Scope{mgr: m, hits: make(map[string]bool)}
}

// SetBudget caps this scope's total spend (0 removes the cap). The
// engine-wide account still applies on top.
func (s *Scope) SetBudget(limit budget.Cents) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit <= 0 {
		s.budget = nil
		return
	}
	s.budget = budget.NewAccount(limit)
}

// SetPolicy overrides the named task's policy for this scope only.
// TASK-definition overrides (Price/Assignments/Batch clauses) still win,
// exactly as they do over engine-level policies.
func (s *Scope) SetPolicy(task string, p Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.policies == nil {
		s.policies = make(map[string]Policy)
	}
	s.policies[strings.ToLower(task)] = p
}

// SetPriority orders this scope's pending items ahead of (positive) or
// behind (negative) other scopes when batches are cut. Default 0.
func (s *Scope) SetPriority(p int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.priority = p
}

func (s *Scope) policyFor(task string) (Policy, bool) {
	if s == nil {
		return Policy{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.policies[task]
	return p, ok
}

func (s *Scope) priorityNow() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priority
}

// SetShared opts this scope's submissions into cross-query HIT
// sharing: its items may fill one HIT together with items from other
// sharing scopes whose effective posting policy for the task matches.
// Canceling the scope then detaches its items from shared HITs —
// refunding its share of the unconsumed cost — instead of expiring the
// whole HIT under the other participants.
func (s *Scope) SetShared(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shared = on
}

func (s *Scope) sharedNow() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shared
}

// SetWeight sets this scope's fair-share weight (default 1): under an
// admission gate, a weight-2 scope is offered batch slots twice as
// often as a weight-1 scope at equal priority. Values below 1 read
// as 1.
func (s *Scope) SetWeight(w int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.weight = w
}

func (s *Scope) weightNow() int {
	if s == nil {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.weight < 1 {
		return 1
	}
	return s.weight
}

// SetLabel names this scope for metrics: when set, cost counters gain a
// per-scope labeled series (tenant, workload, ...) alongside the
// per-task ones. Leave empty (the default) to keep series cardinality
// bounded by task and backend alone.
func (s *Scope) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.label = label
}

func (s *Scope) labelNow() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.label
}

// addQueuedCost tracks the provisional cost of this scope's batches
// sitting in the admission queue (positive at enqueue, negative at
// admission or sweep), so RemainingBudget does not over-report
// headroom while work is queued but not yet charged.
func (s *Scope) addQueuedCost(c budget.Cents) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queued += c
	if s.queued < 0 {
		s.queued = 0
	}
}

// Err returns the cancellation cause, or nil while the scope is live.
func (s *Scope) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RemainingBudget reports the scope's unspent budget headroom. ok is
// false when the scope is nil or uncapped (unlimited headroom); the
// sort subsystem uses it to size hybrid comparison refinement. The
// headroom is net of batches sitting in the admission queue — they
// have not been charged yet, but they will be, so planners sizing
// future work against a concurrently-charged scope see a conservative
// snapshot rather than a stale one.
func (s *Scope) RemainingBudget() (budget.Cents, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget == nil {
		return 0, false
	}
	rem := s.budget.Remaining() - s.queued
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// Spent reports the scope's sunk cost: money charged for its HITs minus
// refunds for assignments expired by cancellation.
func (s *Scope) Spent() budget.Cents {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spent
}

// spend charges the scope's own budget (when capped) and records the
// sunk cost. It fails without side effects when the cap cannot cover
// the charge.
func (s *Scope) spend(cost budget.Cents) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget != nil {
		if err := s.budget.Spend(cost); err != nil {
			return err
		}
	}
	s.spent += cost
	return nil
}

// refund returns money to the scope (cap headroom and sunk-cost line).
func (s *Scope) refund(amount budget.Cents) {
	if s == nil || amount <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget != nil {
		s.budget.Refund(amount)
	}
	s.spent -= amount
	if s.spent < 0 {
		s.spent = 0
	}
}

// registerHIT records an open HIT as belonging to this scope. It fails
// with the cancellation cause when the scope was canceled while the HIT
// was being posted — the caller must then expire the HIT itself.
func (s *Scope) registerHIT(hitID string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.hits == nil {
		s.hits = make(map[string]bool)
	}
	s.hits[hitID] = true
	return nil
}

// unregisterHIT forgets a HIT that resolved through the normal paths.
func (s *Scope) unregisterHIT(hitID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.hits, hitID)
}

// Cancel terminates the scope with cause (ErrCanceled when nil):
// pending items resolve with the cause, open HITs are expired and their
// uncompleted assignments refunded, and every later Submit for this
// scope fails fast without posting. Idempotent; the first cause wins.
func (s *Scope) Cancel(cause error) {
	if s == nil {
		return
	}
	if cause == nil {
		cause = qerr.ErrCanceled
	}
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	s.err = cause
	open := make([]string, 0, len(s.hits))
	for id := range s.hits {
		open = append(open, id)
	}
	s.hits = nil
	s.mu.Unlock()
	s.mgr.sweepCanceledPending(s, cause)
	s.mgr.sweepScheduler(s, cause)
	for _, id := range open {
		s.mgr.cancelScopeHIT(id, s, cause)
	}
	// Close the query's whole span tree: cancellation must leave no
	// orphan spans, whatever state each batch or HIT was in. (A shared
	// HIT surviving under other scopes keeps its own span; it was
	// parented under the first share's scope, and counters on an ended
	// span are harmless.)
	s.Span().CloseTree()
}

// sweepCanceledPending removes the scope's queued-but-unposted items
// from every task state and resolves them with the cause.
func (m *Manager) sweepCanceledPending(s *Scope, cause error) {
	m.mu.Lock()
	states := make([]*taskState, 0, len(m.tasks))
	for _, st := range m.tasks {
		states = append(states, st)
	}
	m.mu.Unlock()
	var dropped []pendingItem
	for _, st := range states {
		st.mu.Lock()
		kept := st.pending[:0]
		for _, it := range st.pending {
			if it.scope == s {
				dropped = append(dropped, it)
			} else {
				kept = append(kept, it)
			}
		}
		st.pending = kept
		st.mu.Unlock()
	}
	for _, it := range dropped {
		it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", it.def.Name, cause)})
	}
}

// cancelScopeHIT withdraws one scope's stake from a posted HIT. For a
// HIT the scope holds alone — the default, and every join/rank HIT —
// that is full expiry: the HIT is removed from the in-flight table (so
// a racing completion finalizes nothing), disposed at the marketplace,
// its uncompleted assignments refunded, and every outstanding item
// resolved with the cause. For a HIT shared with other live scopes the
// stake merely detaches: the scope's items resolve with the cause, its
// share of the cost covering assignments not yet completed refunds,
// and the HIT keeps running for the remaining participants. The stripe
// lock arbitrates against finalization, so each item still resolves
// exactly once.
func (m *Manager) cancelScopeHIT(hitID string, sc *Scope, cause error) {
	str := m.flights.stripeFor(hitID)
	str.mu.Lock()
	if fl, ok := str.hits[hitID]; ok {
		idx, live := -1, 0
		for i := range fl.shares {
			if fl.shares[i].detached {
				continue
			}
			live++
			if fl.shares[i].scope == sc {
				idx = i
			}
		}
		if idx < 0 {
			// The scope's share already detached (or was never here);
			// nothing left to withdraw.
			str.mu.Unlock()
			return
		}
		sh := &fl.shares[idx]
		if live > 1 {
			// Detach: the HIT survives for the other participants. The
			// scope's items leave byKey so finalization skips them, and
			// its share of the not-yet-completed assignments refunds;
			// the consumed remainder stays on sh.cost so a later full
			// expiry cannot refund it again.
			sh.detached = true
			items := make([]pendingItem, 0, len(sh.keys))
			for _, key := range sh.keys {
				if it, ok := fl.byKey[key]; ok {
					items = append(items, it)
					delete(fl.byKey, key)
				}
			}
			refund := unconsumed(sh.cost, fl.assign, fl.received)
			sh.cost -= refund
			m.traceHITCanceled(fl, refund, false)
			str.mu.Unlock()
			if refund > 0 {
				m.account.Refund(refund)
				sc.refund(refund)
			}
			for _, it := range items {
				it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", it.def.Name, cause)})
			}
			return
		}
		// Sole live participant: full expiry. The refund and its trace
		// record are computed under the stripe lock (a racing extension
		// could otherwise append to extSpans mid-read); the marketplace
		// and ledgers are only touched after release.
		delete(str.hits, hitID)
		refund := unconsumed(sh.cost, fl.assign, fl.received)
		m.traceHITCanceled(fl, refund, true)
		str.mu.Unlock()
		m.market.Dispose(hitID)
		if refund > 0 {
			m.account.Refund(refund)
			sc.refund(refund)
		}
		for _, hi := range fl.hit.Items {
			if item, ok := fl.byKey[hi.Key]; ok {
				item.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", item.def.Name, cause)})
			}
		}
		m.hitRetired(fl)
		return
	}
	if fl, ok := str.joins[hitID]; ok {
		delete(str.joins, hitID)
		str.mu.Unlock()
		m.traceDirectGone(fl.span, cause.Error())
		m.expireHIT(hitID, fl.scope, fl.cost)
		for _, key := range fl.order {
			if fl.need[key] {
				fl.done(key, Outcome{Err: fmt.Errorf("taskmgr: %s: %w", fl.def.Name, cause)})
			}
		}
		return
	}
	if fl, ok := str.ranks[hitID]; ok {
		delete(str.ranks, hitID)
		str.mu.Unlock()
		m.traceDirectGone(fl.span, cause.Error())
		m.expireHIT(hitID, fl.scope, fl.cost)
		fl.done(nil, fmt.Errorf("taskmgr: %s: %w", fl.def.Name, cause))
		return
	}
	str.mu.Unlock()
}

// expireHIT disposes a HIT at the marketplace and refunds whatever its
// uncompleted assignments had charged, to both the engine account and
// the scope.
func (m *Manager) expireHIT(hitID string, s *Scope, cost budget.Cents) {
	refund := budget.Cents(0)
	if status, ok := m.market.Dispose(hitID); ok {
		refund = cost - status.Spent
	}
	if refund <= 0 {
		return
	}
	m.account.Refund(refund)
	s.refund(refund)
}

// unconsumed is the slice of a share's cost covering assignments that
// have not completed: cost × (assignments − received) ∕ assignments,
// floored. Account and scope both refund exactly this, so the two
// ledgers move in lockstep and a share can never refund more than it
// was charged.
func unconsumed(cost budget.Cents, assignments, received int) budget.Cents {
	if assignments <= 0 || received >= assignments {
		return 0
	}
	if received <= 0 {
		return cost
	}
	return cost * budget.Cents(assignments-received) / budget.Cents(assignments)
}
