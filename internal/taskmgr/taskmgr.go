// Package taskmgr implements Qurk's Task Manager (paper §2): it keeps the
// global queue of tasks enqueued by all operators, batches tasks into
// HITs (tuple batching and operator grouping), prices and posts them via
// the marketplace, consults the Task Cache before spending money, lets a
// confidence-gated Task Model answer in place of humans, reduces the
// multi-answer lists redundancy produces, and feeds the Statistics
// Manager's estimators.
//
// Concurrency: the manager has no global lock on its hot paths. Each
// task's batching state carries its own mutex, in-flight HIT collection
// state is striped by HIT ID (flightTable), and the manager-level mutex
// guards only the task registry and base policy. Assignment completions
// for different HITs therefore never contend, matching the sharded
// marketplace underneath (see internal/mturk's package comment).
//
// Determinism: every finalization resolves its batched items in the
// HIT's item order (never map order), so a completed HIT triggers
// downstream work in the same order on every run.
package taskmgr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/hit"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/store"
)

// Policy tunes how one task's applications become HITs. The optimizer
// sets it; TASK-definition overrides (Price/Assignments/Batch) win.
type Policy struct {
	// Assignments is the redundancy per HIT (default 3).
	Assignments int
	// MinAssignments, when positive and below Assignments, opts HITs
	// into adaptive redundancy under an EM aggregator: they post with
	// this many assignments and extend one at a time (up to
	// Assignments) while the answer posterior stays unsure. Zero posts
	// at Assignments directly — the fixed-redundancy default.
	MinAssignments int
	// BatchSize is how many tuples share one HIT (default 1).
	BatchSize int
	// PriceCents is the reward per HIT (default 1).
	PriceCents int64
	// Linger is how long (virtual) a partial batch waits before being
	// flushed anyway (default 1 minute).
	Linger time.Duration
	// UseCache consults/updates the Task Cache (default true; zero
	// value of the struct disables nothing — see DefaultPolicy).
	UseCache bool
	// UseModel lets an attached Task Model answer boolean tasks.
	UseModel bool
	// TrainModel feeds human answers to the attached model.
	TrainModel bool
}

// DefaultPolicy is the engine-wide starting point.
func DefaultPolicy() Policy {
	return Policy{
		Assignments: 3,
		BatchSize:   1,
		PriceCents:  1,
		Linger:      time.Minute,
		UseCache:    true,
		UseModel:    true,
		TrainModel:  true,
	}
}

// Clamped floors the posting knobs (assignments, batch and price are
// all at least 1) the way the manager does before using a policy. The
// optimizer's cost arithmetic applies the same clamp so its divisions
// and estimates always match actual posting behavior.
func (p Policy) Clamped() Policy {
	if p.Assignments < 1 {
		p.Assignments = 1
	}
	if p.MinAssignments < 0 {
		p.MinAssignments = 0
	}
	if p.BatchSize < 1 {
		p.BatchSize = 1
	}
	if p.PriceCents < 1 {
		p.PriceCents = 1
	}
	return p
}

// merged applies TASK-definition overrides to the policy.
func (p Policy) merged(def *qlang.TaskDef) Policy {
	if def.Assignments > 0 {
		p.Assignments = def.Assignments
	}
	if def.MinAssignments > 0 {
		p.MinAssignments = def.MinAssignments
	}
	if def.BatchSize > 0 {
		p.BatchSize = def.BatchSize
	}
	if def.PriceCents > 0 {
		p.PriceCents = def.PriceCents
	}
	if p.Assignments < 1 {
		p.Assignments = 1
	}
	if p.BatchSize < 1 {
		p.BatchSize = 1
	}
	return p
}

// Outcome is the resolved result of one submitted task application.
type Outcome struct {
	// Value is the reduced answer (majority vote / mean, by task type).
	Value relation.Value
	// Answers are the raw per-assignment answers (paper §3's list).
	Answers []relation.Value
	// Agreement is the majority share across assignments.
	Agreement float64
	// FromCache and FromModel mark answers that cost no HIT.
	FromCache bool
	FromModel bool
	// Err is set when the task could not be completed (budget/market).
	Err error
}

// Join-side tags for Request.StatSide: a pre-filter stage says which
// input of its join it protects, so the Statistics Manager can keep a
// selectivity estimate per (task, side) — the resolution the planner
// needs to wrap only the profitable side.
const (
	SideLeft  = "left"
	SideRight = "right"
)

// Request is one logical task application submitted by an operator.
type Request struct {
	Def  *qlang.TaskDef
	Args []relation.Value
	// Prompt overrides the rendered instruction (used by grouped HITs);
	// empty means render from the task definition.
	Prompt string
	// Assignments overrides the policy's redundancy for this request
	// (0 = use policy). POSSIBLY predicates use 1.
	Assignments int
	// StatSide tags a boolean outcome with the join side it was observed
	// on (SideLeft/SideRight, "" = untagged): the observation feeds both
	// the task's combined selectivity estimator and the per-side one.
	StatSide string
	// Scope binds the request to one query's cancellation scope (nil =
	// unscoped). A canceled scope resolves the request immediately with
	// the cause; items of different scopes never share a HIT.
	Scope *Scope
	// Done receives the outcome; it is called exactly once, possibly
	// synchronously (cache/model hits) and possibly from the clock
	// goroutine.
	Done func(Outcome)
	// Trace, when tracing is enabled, is the submitting operator's span:
	// cache/model short-circuits and batch/HIT lifecycle counters
	// accumulate onto it. Nil (the default, and always when tracing is
	// off) costs nothing.
	Trace *obs.Span
}

// TaskStats aggregates one task's activity for the optimizer and
// dashboard.
type TaskStats struct {
	Task           string
	Submitted      int64
	HITsPosted     int64
	QuestionsAsked int64 // questions sent to humans (≥ HITs when batching)
	CacheHits      int64
	ModelAnswers   int64
	SpentCents     budget.Cents
	Selectivity    float64 // boolean tasks: pass rate estimate
	SelTrials      int
	MeanLatencyMin float64 // EWMA of HIT completion latency
	MeanAgreement  float64
}

// taskState is one task's batching and accounting state. mu guards the
// plain fields; the stats estimators are internally synchronized and may
// be observed without it.
type taskState struct {
	mu           sync.Mutex
	name         string // registry key (lowercased task name)
	def          *qlang.TaskDef
	policy       Policy
	hasOwnPolicy bool

	pending     []pendingItem // waiting to fill a batch
	lingerArmed bool

	submitted      int64
	hitsPosted     int64
	questionsAsked int64
	cacheHits      int64
	modelAnswers   int64
	spent          budget.Cents

	selectivity stats.Selectivity
	// sideSel holds per-join-side selectivity estimators keyed by
	// SideLeft/SideRight; created lazily, guarded by mu (the estimators
	// themselves are internally synchronized).
	sideSel   map[string]*stats.Selectivity
	latency   *stats.EWMA
	agreement *stats.EWMA
	// rankAgr tracks mean pairwise agreement across this task's
	// comparison (Order) HITs; created lazily, guarded by mu like
	// sideSel (the estimator itself is internally synchronized).
	rankAgr *stats.EWMA
}

// rankAgreementEstimator lazily creates the comparison-agreement EWMA.
func (st *taskState) rankAgreementEstimator() *stats.EWMA {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.rankAgr == nil {
		st.rankAgr = stats.NewEWMA(stats.TaskEWMAAlpha)
	}
	return st.rankAgr
}

// observeSelectivity records one boolean outcome into the task's
// combined estimator and, when side is tagged, the per-side estimator.
func (st *taskState) observeSelectivity(pass bool, side string) {
	st.selectivity.Observe(pass)
	if side == "" {
		return
	}
	st.sideEstimator(side).Observe(pass)
}

func (st *taskState) sideEstimator(side string) *stats.Selectivity {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.sideSel == nil {
		st.sideSel = make(map[string]*stats.Selectivity)
	}
	est := st.sideSel[side]
	if est == nil {
		est = &stats.Selectivity{}
		st.sideSel[side] = est
	}
	return est
}

type pendingItem struct {
	key         string
	args        []relation.Value
	prompt      string
	def         *qlang.TaskDef
	assignments int    // 0 = policy default
	side        string // join-side tag for selectivity observations
	scope       *Scope // owning query scope (nil = unscoped)
	priority    int    // scope priority at submission time
	shared      bool   // may co-batch with other sharing scopes
	done        func(Outcome)
	addedAt     mturk.VirtualTime
	span        *obs.Span // submitting operator's trace span (nil = tracing off)
}

// flightStripes is the number of lock stripes for in-flight HIT state.
const flightStripes = 16

// flightStripe holds the in-flight HITs whose IDs hash to it.
type flightStripe struct {
	mu    sync.Mutex
	hits  map[string]*inflightHIT
	joins map[string]*joinInflight
	ranks map[string]*rankInflight
}

// flightTable stripes in-flight collection state by HIT ID, mirroring
// the marketplace's shards: completions of different HITs take
// different locks.
type flightTable struct {
	stripes [flightStripes]flightStripe
}

func (t *flightTable) stripeFor(hitID string) *flightStripe {
	return &t.stripes[mturk.ShardIndex(hitID, flightStripes)]
}

// Manager routes task applications to the cache, the model, or batched
// HITs on the marketplace.
type Manager struct {
	market  backend.Backend
	cache   *cache.Cache
	models  *model.Registry
	account *budget.Account

	// book aggregates per-(backend, task kind) price/latency/quality
	// observations from finalized HITs; the optimizer's ChooseBackend
	// reads it to route work where the evidence says it is cheapest.
	book *stats.BackendBook

	// mu guards tasks and base only; it is never held across calls into
	// the marketplace, cache, or per-task state.
	mu    sync.Mutex
	tasks map[string]*taskState
	base  Policy

	nextKey atomic.Int64
	flights flightTable

	// sched orders batch posting across scopes (priority, then weighted
	// fair share) behind an optional max-in-flight admission gate.
	sched scheduler

	// postHook, when set (by tests), can fail a post before it reaches
	// the marketplace, exercising the refund paths deterministically.
	postHook atomic.Pointer[func(h *hit.HIT) error]

	// Cross-query sharing counters (see Sharing).
	sharedHITs  atomic.Int64
	sharedItems atomic.Int64
	sharedSaved atomic.Int64 // HITs avoided (scopes−1 per shared HIT)
	savedCents  atomic.Int64 // those HITs priced at their actual cost

	// journal, when set, receives a durable record for every learned
	// artifact produced on the paid (human) paths: cache entries,
	// selectivity/latency/agreement observations, model training
	// examples and reputation votes. Appends are asynchronous inside the
	// store and the pointer is read atomically, so finalizations never
	// block on persistence.
	journal atomic.Pointer[Journal]

	// tracer, when set (SetObs), receives span trees and metrics for
	// every batching, posting and finalization event. Read atomically
	// like the journal: the disabled path costs one load per site.
	tracer atomic.Pointer[obs.Tracer]

	// workers tracks agreement-based reputation and quality the
	// per-worker EM-accuracy EWMAs, both guarded by repMu — not m.mu —
	// because the marketplace's worker filter reads them from inside
	// marketplace calls (reputation.go, adaptive.go).
	repMu   sync.Mutex
	workers map[string]*workerRecord
	quality map[string]*stats.EWMA

	// inference is the engine-wide answer-inference configuration
	// (SetInference); nil means majority voting, the seed default.
	// extendBroken flips once a backend rejects ExtendAssignments —
	// adaptive-eligible batches then post at the full cap instead of
	// buying assignments the backend cannot deliver.
	inference    atomic.Pointer[inferConfig]
	extendBroken atomic.Bool

	// Adaptive redundancy counters (see InferenceStats).
	adaptiveHITs   atomic.Int64
	adaptiveExt    atomic.Int64
	extendFailures atomic.Int64
	adaptiveAssign atomic.Int64
	adaptiveCapSum atomic.Int64
	inferSaved     atomic.Int64
}

// Journal receives the records the manager emits on its learning paths;
// *store.Store implements it. Append must not block.
type Journal interface {
	Append(rec store.Record)
}

// SetJournal installs (or, with nil, removes) the record sink.
func (m *Manager) SetJournal(j Journal) {
	if j == nil {
		m.journal.Store(nil)
		return
	}
	m.journal.Store(&j)
}

func (m *Manager) getJournal() Journal {
	if p := m.journal.Load(); p != nil {
		return *p
	}
	return nil
}

// hitShare is one scope's stake in a (possibly shared) HIT: the item
// keys it contributed and the slice of the HIT cost it was charged.
// cost is maintained as charged-and-not-yet-refunded, so detach and
// expiry refunds can never double-pay; mutations after posting happen
// under the HIT's stripe lock.
type hitShare struct {
	scope    *Scope
	keys     []string
	cost     budget.Cents
	detached bool
}

type inflightHIT struct {
	hit      *hit.HIT
	state    *taskState
	shares   []hitShare   // per-scope stakes; one entry for unshared HITs
	cost     budget.Cents // total charged at post time (sum of shares)
	byKey    map[string]pendingItem
	answers  map[string][]relation.Value
	byWorker []hit.Answers
	received int
	needed   int
	assign   int  // assignments at post time; basis for pro-rata refunds
	admitted bool // holds an admission-scheduler slot until retired
	postedAt mturk.VirtualTime
	backend  string // serving backend name, recorded at post time
	group    bool   // finalize with per-item task attribution

	// Adaptive redundancy (adaptive.go). agg is non-nil only when an EM
	// aggregator resolves this HIT's answers; adaptive marks HITs posted
	// below capA whose completions may buy further assignments.
	agg      infer.Aggregator
	adaptive bool
	boolTask bool    // boolean vs categorical EM model
	target   float64 // posterior confidence that stops extending
	capA     int     // policy assignment cap for this batch

	// Tracing (obs.go): span is the HIT's trace span (nil when tracing
	// was off at post time), opSpans the distinct submitting operator
	// spans (HIT/cost attribution), extSpans the adaptive extension
	// spans in purchase order. span and opSpans are fixed before the
	// HIT becomes visible to completions; extSpans appends take the
	// stripe lock.
	span     *obs.Span
	opSpans  []*obs.Span
	extSpans []*obs.Span
}

// unregister forgets the HIT at every participating scope.
func (fl *inflightHIT) unregister(hitID string) {
	for i := range fl.shares {
		fl.shares[i].scope.unregisterHIT(hitID)
	}
}

// New wires a manager to the simulated marketplace. models may be nil
// (no automation); account may be nil (unlimited budget).
func New(market *mturk.Marketplace, c *cache.Cache, models *model.Registry, account *budget.Account) *Manager {
	return NewWithBackend(backend.NewSim(market), c, models, account)
}

// NewWithBackend wires a manager to any worker backend — the simulator,
// the HTTP driver, the LLM crowd, or a router mixing them per task.
func NewWithBackend(be backend.Backend, c *cache.Cache, models *model.Registry, account *budget.Account) *Manager {
	if c == nil {
		c = cache.New()
	}
	if models == nil {
		models = model.NewRegistry()
	}
	if account == nil {
		account = budget.NewAccount(0)
	}
	m := &Manager{
		market:  be,
		cache:   c,
		models:  models,
		account: account,
		book:    stats.NewBackendBook(),
		tasks:   make(map[string]*taskState),
		base:    DefaultPolicy(),
	}
	// Assignments can fail terminally (no eligible worker after all
	// retries, e.g. a blocklist starving a small pool). The manager
	// must still resolve the affected items: with fewer votes if some
	// arrived, or with an error if none ever will.
	be.SetErrorHandler(m.onAssignmentFailed)
	return m
}

// Backend returns the worker backend the manager posts to.
func (m *Manager) Backend() backend.Backend { return m.market }

// BackendBook returns the per-(backend, task kind) observation book.
func (m *Manager) BackendBook() *stats.BackendBook { return m.book }

// priceFor returns the per-assignment reward one HIT of def will pay
// under pol: the policy price unless the serving backend quotes its own.
func (m *Manager) priceFor(def *qlang.TaskDef, pol Policy) int64 {
	return backend.Quote(m.market, def.Name, def.Type, pol.PriceCents)
}

// servingBackend names the backend that will answer def's next HIT.
func (m *Manager) servingBackend(def *qlang.TaskDef) string {
	return backend.ServingName(m.market, def.Name, def.Type)
}

// observeBackend folds one finalized HIT into the backend book and the
// journal: per-assignment price, post-to-done latency, and mean
// majority-agreement quality across the HIT's items.
func (m *Manager) observeBackend(name string, tt qlang.TaskType, rewardCents int64, latencyMin, quality float64) {
	if name == "" {
		return
	}
	m.book.Observe(name, tt.String(), float64(rewardCents), latencyMin, quality)
	if j := m.getJournal(); j != nil {
		j.Append(store.Record{
			Kind: store.KindBackendObs, Task: name, Side: tt.String(),
			X: latencyMin, Y: quality, M: rewardCents,
		})
	}
}

// onAssignmentFailed reduces an inflight HIT's expected assignment count;
// when nothing more can arrive the HIT finalizes with whatever it has.
func (m *Manager) onAssignmentFailed(hitID string, err error) {
	s := m.flights.stripeFor(hitID)
	s.mu.Lock()
	if fl, ok := s.hits[hitID]; ok {
		fl.needed--
		if fl.received < fl.needed {
			s.mu.Unlock()
			return
		}
		delete(s.hits, hitID)
		s.mu.Unlock()
		fl.unregister(hitID)
		m.hitRetired(fl)
		if fl.received == 0 {
			m.traceHITAbandoned(fl, err)
			for _, it := range fl.hit.Items {
				if item, ok := fl.byKey[it.Key]; ok {
					item.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %v", fl.hit.Task, err)})
				}
			}
			return
		}
		m.finalizeInflight(fl)
		return
	}
	if fl, ok := s.joins[hitID]; ok {
		fl.needed--
		if fl.received < fl.needed {
			s.mu.Unlock()
			return
		}
		delete(s.joins, hitID)
		s.mu.Unlock()
		fl.scope.unregisterHIT(hitID)
		if fl.received == 0 {
			m.traceDirectGone(fl.span, err.Error())
			for _, key := range fl.order {
				if fl.need[key] {
					fl.done(key, Outcome{Err: fmt.Errorf("taskmgr: %s: %v", fl.def.Name, err)})
				}
			}
			return
		}
		m.finalizeJoin(fl)
		return
	}
	if fl, ok := s.ranks[hitID]; ok {
		fl.needed--
		if fl.received < fl.needed {
			s.mu.Unlock()
			return
		}
		delete(s.ranks, hitID)
		s.mu.Unlock()
		fl.scope.unregisterHIT(hitID)
		if fl.received == 0 {
			m.traceDirectGone(fl.span, err.Error())
			fl.done(nil, fmt.Errorf("taskmgr: %s: %v", fl.def.Name, err))
			return
		}
		m.finalizeRank(fl)
		return
	}
	s.mu.Unlock()
}

// Cache returns the manager's task cache.
func (m *Manager) Cache() *cache.Cache { return m.cache }

// Models returns the manager's model registry.
func (m *Manager) Models() *model.Registry { return m.models }

// Account returns the budget account.
func (m *Manager) Account() *budget.Account { return m.account }

// SetBasePolicy replaces the default policy for tasks without their own.
func (m *Manager) SetBasePolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.base = p
}

func (m *Manager) basePolicy() Policy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base
}

// SetPolicy pins a task-specific policy (the optimizer's knob).
func (m *Manager) SetPolicy(task string, p Policy) {
	st := m.state(task, nil)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.policy = p
	st.hasOwnPolicy = true
}

// PolicyFor reports the effective policy for a task definition.
func (m *Manager) PolicyFor(def *qlang.TaskDef) Policy {
	st := m.state(def.Name, def)
	base := m.basePolicy()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.effectivePolicyLocked(base)
}

// effectivePolicyLocked resolves the policy for this task; st.mu held.
func (st *taskState) effectivePolicyLocked(base Policy) Policy {
	return st.scopedPolicyLocked(base, nil)
}

// scopedPolicyLocked resolves the policy for this task as seen by one
// query scope: a per-query override (WithPolicy) replaces the engine /
// task policy, TASK-definition clauses still win on top, exactly as
// they do everywhere else. st.mu held; the scope lock is taken after
// it (st.mu → scope.mu is the global lock order).
func (st *taskState) scopedPolicyLocked(base Policy, scope *Scope) Policy {
	p := base
	if st.hasOwnPolicy {
		p = st.policy
	}
	if sp, ok := scope.policyFor(st.name); ok {
		p = sp
	}
	if st.def != nil {
		p = p.merged(st.def)
	}
	return p.Clamped()
}

// state returns (creating if needed) the named task's state.
func (m *Manager) state(name string, def *qlang.TaskDef) *taskState {
	key := strings.ToLower(name)
	m.mu.Lock()
	st, ok := m.tasks[key]
	if !ok {
		st = &taskState{name: key, latency: stats.NewEWMA(stats.TaskEWMAAlpha), agreement: stats.NewEWMA(stats.TaskEWMAAlpha)}
		m.tasks[key] = st
	}
	m.mu.Unlock()
	st.mu.Lock()
	if st.def == nil && def != nil {
		st.def = def
	}
	st.mu.Unlock()
	return st
}

// defOf reads the task's definition (immutable once set).
func (st *taskState) defOf() *qlang.TaskDef {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.def
}

func (m *Manager) newKey() string {
	return mturk.PaddedID("t", m.nextKey.Add(1))
}

// Submit enqueues one task application. The Done callback fires exactly
// once with the outcome.
func (m *Manager) Submit(req Request) {
	if req.Def == nil || req.Done == nil {
		panic("taskmgr: Submit needs a task definition and Done callback")
	}
	if cause := req.Scope.Err(); cause != nil {
		req.Done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", req.Def.Name, cause)})
		return
	}
	st := m.state(req.Def.Name, req.Def)
	base := m.basePolicy()
	st.mu.Lock()
	st.submitted++
	pol := st.scopedPolicyLocked(base, req.Scope)
	st.mu.Unlock()

	// 1. Task Cache: a prior answer costs nothing.
	if pol.UseCache {
		if entry, ok := m.cache.Get(cache.NewKey(req.Def.Name, req.Args)); ok && len(entry.Answers) > 0 {
			st.mu.Lock()
			st.cacheHits++
			st.mu.Unlock()
			req.Trace.AddCacheHits(1)
			if reg := m.obsRegistry(); reg != nil {
				reg.Counter(obs.MetricCacheHits, obs.L("task", req.Def.Name)).Add(1)
			}
			out := reduce(req.Def, entry.Answers)
			out.FromCache = true
			if isBooleanTask(req.Def) {
				st.observeSelectivity(out.Value.Truthy(), req.StatSide)
			}
			req.Done(out)
			return
		}
	}

	// 2. Task Model: a confident classifier answers boolean tasks.
	if pol.UseModel && isBooleanTask(req.Def) {
		if tm, ok := m.models.For(req.Def.Name); ok {
			if v, _, ok := tm.TryAnswer(req.Args); ok {
				st.mu.Lock()
				st.modelAnswers++
				st.mu.Unlock()
				req.Trace.AddModelHits(1)
				if reg := m.obsRegistry(); reg != nil {
					reg.Counter(obs.MetricModelAnswers, obs.L("task", req.Def.Name)).Add(1)
				}
				st.observeSelectivity(v.Truthy(), req.StatSide)
				req.Done(Outcome{Value: v, Answers: []relation.Value{v}, Agreement: 1, FromModel: true})
				return
			}
		}
	}

	// 3. Queue for humans; batch with other applications of this task.
	item := pendingItem{
		key:         m.newKey(),
		args:        req.Args,
		prompt:      req.Prompt,
		def:         req.Def,
		assignments: req.Assignments,
		side:        req.StatSide,
		scope:       req.Scope,
		priority:    req.Scope.priorityNow(),
		shared:      req.Scope.sharedNow() || req.Def.Share,
		done:        req.Done,
		addedAt:     m.market.Clock().Now(),
		span:        req.Trace,
	}
	var batches [][]pendingItem
	st.mu.Lock()
	// Re-check the scope under st.mu: Cancel's pending sweep also takes
	// st.mu, so either it already ran (we must resolve here, or the item
	// would be stranded) or it will run after us and sweep this item.
	if cause := req.Scope.Err(); cause != nil {
		st.mu.Unlock()
		req.Done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", req.Def.Name, cause)})
		return
	}
	st.pending = append(st.pending, item)
	if len(st.pending) >= pol.BatchSize {
		batches = st.cutBatchesLocked(base, false)
		if len(batches) == 0 && !st.lingerArmed && len(st.pending) >= pol.BatchSize {
			// Threshold reached but every batch group is still partial —
			// mixed groups sharing one task — and no linger timer is
			// armed to flush them later. Cut the partials rather than
			// strand them: their Done callbacks must make progress. (With
			// a linger armed the timer will flush, giving the groups a
			// chance to fill first.)
			batches = st.cutBatchesLocked(base, true)
		} else if len(batches) > 0 && !st.armLingerLocked(m, base) {
			// A cut fired but left other groups' partials behind with no
			// timer to flush them (lingerArmed is cleared by flushes, not
			// re-armed): without this, a leftover whose group never fills
			// again would starve. Arm a linger when any leftover's policy
			// provides one; force-cut them otherwise.
			batches = append(batches, st.cutBatchesLocked(base, true)...)
		}
	} else if !st.lingerArmed && pol.Linger > 0 {
		// Arm a linger timer so partial batches cannot starve.
		st.lingerArmed = true
		taskName := req.Def.Name
		m.market.Clock().Schedule(pol.Linger, func() { m.lingerFlush(taskName) })
	}
	st.mu.Unlock()
	m.postBatches(st, batches)
}

// armLingerLocked arms a linger timer covering the current pending
// leftovers, using the smallest positive Linger among their scopes'
// effective policies. It reports false when items are pending but no
// policy provides a timer (Linger ≤ 0 everywhere) — the caller must
// then flush the leftovers itself or they starve. st.mu held.
func (st *taskState) armLingerLocked(m *Manager, base Policy) bool {
	if st.lingerArmed || len(st.pending) == 0 {
		return true
	}
	linger := time.Duration(0)
	for _, it := range st.pending {
		if l := st.scopedPolicyLocked(base, it.scope).Linger; l > 0 && (linger == 0 || l < linger) {
			linger = l
		}
	}
	if linger <= 0 {
		return false
	}
	st.lingerArmed = true
	task := st.name
	m.market.Clock().Schedule(linger, func() { m.lingerFlush(task) })
	return true
}

// lingerFlush flushes whatever is pending for a task when its linger
// timer fires.
func (m *Manager) lingerFlush(task string) {
	st := m.state(task, nil)
	base := m.basePolicy()
	st.mu.Lock()
	st.lingerArmed = false
	batches := st.cutBatchesLocked(base, true)
	st.mu.Unlock()
	m.postBatches(st, batches)
}

// Flush posts any partial batch for the named task immediately.
func (m *Manager) Flush(task string) {
	m.flushState(m.state(task, nil))
}

// FlushScope posts the named task's partial batches on behalf of one
// query scope. The scope's own non-shared partials force-cut exactly
// like Flush — they have no other query to wait for. Sharing-opted
// partials (the scope's included) stay pooled so other queries can
// still fill them; only full batches cut, with a linger timer armed —
// or an immediate force-cut when no pending policy provides one — so
// the pool cannot starve. A nil scope behaves like Flush.
func (m *Manager) FlushScope(task string, sc *Scope) {
	if sc == nil {
		m.Flush(task)
		return
	}
	st := m.state(task, nil)
	base := m.basePolicy()
	st.mu.Lock()
	batches := st.cutBatchesLocked(base, false)
	var mine []pendingItem
	kept := st.pending[:0]
	for _, it := range st.pending {
		if it.scope == sc && !it.shared {
			mine = append(mine, it)
		} else {
			kept = append(kept, it)
		}
	}
	st.pending = mine
	batches = append(batches, st.cutBatchesLocked(base, true)...)
	st.pending = append(st.pending, kept...)
	if !st.armLingerLocked(m, base) {
		batches = append(batches, st.cutBatchesLocked(base, true)...)
	}
	st.mu.Unlock()
	m.postBatches(st, batches)
}

// FlushAll posts every partial batch, in task-name order so the posting
// sequence is deterministic.
func (m *Manager) FlushAll() {
	m.mu.Lock()
	names := make([]string, 0, len(m.tasks))
	for name := range m.tasks {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		m.flushState(m.state(name, nil))
	}
}

func (m *Manager) flushState(st *taskState) {
	base := m.basePolicy()
	st.mu.Lock()
	batches := st.cutBatchesLocked(base, true)
	st.mu.Unlock()
	m.postBatches(st, batches)
}

// batchGroup keys one batchable family of pending items: items with
// different assignment overrides never share a HIT (their redundancy
// differs), and by default items of different query scopes never share
// a HIT (so a canceled query can expire whole HITs and per-scope
// budgets/policies apply cleanly). Sharing-opted items group by their
// effective posting policy instead of their scope: any two scopes
// whose clamped policies agree may fill one HIT together (same task is
// implicit — pending is per task).
type batchGroup struct {
	assignments int
	scope       *Scope // nil for shared groups (items may span scopes)
	shared      bool
	pol         Policy // shared groups: the common effective policy
}

// cutBatchesLocked partitions the pending items into HIT-sized batches
// per batch group, each under its group's effective policy. force cuts
// everything (flush/linger); otherwise only full batches are cut and
// remainders stay pending for the linger timer. Higher-priority scopes
// cut first (stable, so FIFO order is preserved within a priority
// level). st.mu held; posting happens after release.
func (st *taskState) cutBatchesLocked(base Policy, force bool) [][]pendingItem {
	if len(st.pending) == 0 {
		return nil
	}
	mixed := false
	for _, it := range st.pending[1:] {
		if it.priority != st.pending[0].priority {
			mixed = true
			break
		}
	}
	if mixed {
		sort.SliceStable(st.pending, func(i, j int) bool {
			return st.pending[i].priority > st.pending[j].priority
		})
	}
	byGroup := make(map[batchGroup][]pendingItem)
	var order []batchGroup
	for _, it := range st.pending {
		g := batchGroup{assignments: it.assignments, scope: it.scope}
		if it.shared {
			g = batchGroup{assignments: it.assignments, shared: true,
				pol: st.scopedPolicyLocked(base, it.scope)}
		}
		if _, seen := byGroup[g]; !seen {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], it)
	}
	st.pending = st.pending[:0]
	var batches [][]pendingItem
	for _, g := range order {
		items := byGroup[g]
		size := g.pol.BatchSize
		if !g.shared {
			size = st.scopedPolicyLocked(base, g.scope).BatchSize
		}
		for len(items) >= size || (force && len(items) > 0) {
			n := size
			if n > len(items) {
				n = len(items)
			}
			batches = append(batches, items[:n:n])
			items = items[n:]
		}
		st.pending = append(st.pending, items...)
	}
	return batches
}

// postBatches hands cut batches to the admission scheduler, which
// posts them immediately when the gate has room and queues them in
// priority / weighted-fair-share order otherwise.
func (m *Manager) postBatches(st *taskState, batches [][]pendingItem) {
	if len(batches) == 0 {
		return
	}
	for _, batch := range batches {
		m.enqueueBatch(st, batch)
	}
	m.dispatch()
}

// splitCost divides a HIT's cost across scopes proportionally to their
// item counts, in integer cents, with largest-remainder rounding so
// the parts always sum exactly to the total. Ties break toward earlier
// shares (batch first-appearance order), keeping the split
// deterministic.
func splitCost(total budget.Cents, counts []int) []budget.Cents {
	sum := 0
	for _, c := range counts {
		sum += c
	}
	out := make([]budget.Cents, len(counts))
	if sum == 0 {
		return out
	}
	assigned := budget.Cents(0)
	rems := make([]int64, len(counts))
	for i, c := range counts {
		num := int64(total) * int64(c)
		out[i] = budget.Cents(num / int64(sum))
		rems[i] = num % int64(sum)
		assigned += out[i]
	}
	for extra := total - assigned; extra > 0; extra-- {
		best := 0
		for i, r := range rems {
			if r > rems[best] {
				best = i
			}
		}
		out[best]++
		rems[best] = -1
	}
	return out
}

// shareOut groups a batch's items by scope in first-appearance order
// and splits the HIT cost across the groups by item count.
func shareOut(items []pendingItem, cost budget.Cents) []hitShare {
	var shares []hitShare
	idx := make(map[*Scope]int)
	for _, it := range items {
		i, ok := idx[it.scope]
		if !ok {
			i = len(shares)
			idx[it.scope] = i
			shares = append(shares, hitShare{scope: it.scope})
		}
		shares[i].keys = append(shares[i].keys, it.key)
	}
	counts := make([]int, len(shares))
	for i := range shares {
		counts[i] = len(shares[i].keys)
	}
	for i, c := range splitCost(cost, counts) {
		shares[i].cost = c
	}
	return shares
}

// post sends a HIT to the marketplace, via the test hook when one is
// installed.
func (m *Manager) post(h *hit.HIT) error {
	if hook := m.postHook.Load(); hook != nil {
		if err := (*hook)(h); err != nil {
			return err
		}
	}
	return m.market.Post(h, m.onAssignment)
}

// batchPolicy resolves the posting policy for one batch: the first
// item's scoped policy (identical across the batch by group
// construction) with the batch's assignments override applied.
func (m *Manager) batchPolicy(st *taskState, batch []pendingItem) Policy {
	base := m.basePolicy()
	st.mu.Lock()
	pol := st.scopedPolicyLocked(base, batch[0].scope)
	st.mu.Unlock()
	if batch[0].assignments > 0 {
		pol.Assignments = batch[0].assignments
	}
	return pol
}

// postBatch compiles one batch into a HIT and posts it, reporting
// whether a HIT actually reached the marketplace (the admission
// scheduler releases the slot otherwise). Items in a batch share one
// assignments override and either one scope or — for sharing-opted
// items — one effective posting policy across several scopes; the HIT
// cost is split across the participating scopes by item count (integer
// cents, largest-remainder rounding) so per-scope budgets and refunds
// stay exact. No locks are held: posting calls into the marketplace
// and, on synchronous failure, back into user callbacks. queuedAt is
// the admission-scheduler enqueue time (zero for paths that bypass
// it); tracing reports the difference as admission wait.
func (m *Manager) postBatch(st *taskState, batch []pendingItem, queuedAt mturk.VirtualTime) bool {
	pol := m.batchPolicy(st, batch)
	def := st.defOf()

	// Adaptive redundancy: under an EM aggregator, eligible batches post
	// at the MinAssignments floor and buy further assignments only while
	// the posterior stays unsure. Shared batches stay fixed-redundancy
	// (extensions charge one scope; co-batched items span several), as
	// does everything once a backend has rejected an extension.
	agg, target, minA := m.inferencePlan(def, pol)
	postAssign := pol.Assignments
	adaptive := agg != nil && minA > 0 && minA < pol.Assignments &&
		!batch[0].shared && !m.extendBroken.Load()
	if adaptive {
		postAssign = minA
	}

	// Drop items whose scope was canceled between cut and post: a
	// linger flush or the admission queue may still carry them, and in
	// a shared batch the other scopes' items must run regardless —
	// without paying for the canceled ones.
	live := make([]pendingItem, 0, len(batch))
	for _, it := range batch {
		if cause := it.scope.Err(); cause != nil {
			it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", it.def.Name, cause)})
			continue
		}
		live = append(live, it)
	}

	// Charge each participating scope its share. When one scope's
	// budget cannot cover its slice, refund the scopes already charged,
	// fail that scope's items, and retry with the rest — the HIT price
	// does not depend on how many scopes fill it, so the loop strictly
	// shrinks the scope set and terminates.
	price := m.priceFor(def, pol)
	cost := budget.Cents(price * int64(postAssign))
	var shares []hitShare
	for len(live) > 0 {
		shares = shareOut(live, cost)
		failed := -1
		var ferr error
		for i := range shares {
			if err := shares[i].scope.spend(shares[i].cost); err != nil {
				failed, ferr = i, err
				break
			}
		}
		if failed < 0 {
			break
		}
		for i := 0; i < failed; i++ {
			shares[i].scope.refund(shares[i].cost)
		}
		bad := shares[failed].scope
		kept := live[:0]
		for _, it := range live {
			if it.scope == bad {
				it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", def.Name, ferr)})
			} else {
				kept = append(kept, it)
			}
		}
		live = kept
	}
	if len(live) == 0 {
		return false
	}
	if err := m.account.Spend(cost); err != nil {
		for i := range shares {
			shares[i].scope.refund(shares[i].cost)
		}
		for _, it := range live {
			it.done(Outcome{Err: fmt.Errorf("taskmgr: %s: %w", def.Name, err)})
		}
		return false
	}

	h := &hit.HIT{
		ID:          m.market.NewHITID(),
		Task:        def.Name,
		Type:        def.Type,
		Title:       def.Name,
		Question:    batchQuestion(def, live),
		Response:    responseFor(def),
		RewardCents: price,
		Assignments: postAssign,
	}
	byKey := make(map[string]pendingItem, len(live))
	for _, it := range live {
		prompt := it.prompt
		if prompt == "" && len(live) > 1 {
			prompt = hit.RenderText(it.def.Text, it.def.TextArgs, it.def.Params, it.args)
		}
		h.Items = append(h.Items, hit.Item{Key: it.key, Args: it.args, Prompt: prompt})
		byKey[it.key] = it
	}

	st.mu.Lock()
	st.spent += cost
	st.hitsPosted++
	st.questionsAsked += int64(len(live))
	st.mu.Unlock()
	if len(shares) > 1 {
		m.sharedHITs.Add(1)
		m.sharedItems.Add(int64(len(live)))
		m.sharedSaved.Add(int64(len(shares) - 1))
		m.savedCents.Add(int64(cost) * int64(len(shares)-1))
	}

	fl := &inflightHIT{
		hit:      h,
		state:    st,
		shares:   shares,
		cost:     cost,
		byKey:    byKey,
		answers:  make(map[string][]relation.Value, len(live)),
		needed:   postAssign,
		assign:   postAssign,
		admitted: true,
		postedAt: m.market.Clock().Now(),
		backend:  m.servingBackend(def),
		agg:      agg,
		adaptive: adaptive,
		boolTask: isBooleanTask(def),
		target:   target,
		capA:     pol.Assignments,
	}
	m.traceBatchSpans(fl, live, pol, queuedAt)
	s := m.flights.stripeFor(h.ID)
	s.mu.Lock()
	if s.hits == nil {
		s.hits = make(map[string]*inflightHIT)
	}
	s.hits[h.ID] = fl
	s.mu.Unlock()
	if err := m.post(h); err != nil {
		s.mu.Lock()
		delete(s.hits, h.ID)
		s.mu.Unlock()
		m.traceHITPostFailed(fl, err)
		// Refund with the same split attribution as the charge: each
		// scope gets back exactly its share, once, and the account the
		// exact total — a batch spanning scopes cannot double-refund.
		for i := range shares {
			m.account.Refund(shares[i].cost)
			shares[i].scope.refund(shares[i].cost)
		}
		for _, it := range live {
			it.done(Outcome{Err: fmt.Errorf("taskmgr: post %s: %v", def.Name, err)})
		}
		return false
	}
	m.traceBatchMetrics(fl, live, pol, queuedAt)
	for i := range shares {
		if cause := shares[i].scope.registerHIT(h.ID); cause != nil {
			// The scope was canceled while the HIT was being posted;
			// withdraw its stake ourselves — cancellation never saw it.
			m.cancelScopeHIT(h.ID, shares[i].scope, cause)
		}
	}
	return true
}

// onAssignment collects one completed assignment; when the HIT has all
// of them, every batched item resolves. Only one goroutine can observe
// received == needed under the stripe lock, so finalization runs exactly
// once, outside all locks.
func (m *Manager) onAssignment(res mturk.AssignmentResult) {
	s := m.flights.stripeFor(res.HITID)
	s.mu.Lock()
	fl, ok := s.hits[res.HITID]
	if !ok {
		s.mu.Unlock()
		return
	}
	for key, v := range res.Answers.Values {
		fl.answers[key] = append(fl.answers[key], v)
	}
	fl.byWorker = append(fl.byWorker, res.Answers)
	fl.received++
	m.traceAssignment(fl, res.Answers.WorkerID)
	if fl.received < fl.needed {
		s.mu.Unlock()
		return
	}
	if fl.adaptive && fl.needed < fl.capA && !m.itemsConfident(fl) {
		// Posterior still unsure below the cap: keep the HIT in flight
		// and buy one more assignment. No other completion can race in —
		// every posted slot has reported — so this goroutine alone
		// decides extend-or-finalize.
		s.mu.Unlock()
		m.extendInflight(s, res.HITID, fl)
		return
	}
	delete(s.hits, res.HITID)
	s.mu.Unlock()
	fl.unregister(res.HITID)
	m.hitRetired(fl)
	m.finalizeInflight(fl)
}

// finalizeInflight resolves every batched item of a completed (or
// partially failed) HIT, in the HIT's item order so reruns resolve
// identically. It must not hold any manager lock: the Done callbacks may
// reenter Submit.
func (m *Manager) finalizeInflight(fl *inflightHIT) {
	if fl.group {
		m.finalizeGroup(fl)
		return
	}
	st := fl.state
	latencyMin := (m.market.Clock().Now() - fl.postedAt).Minutes()
	st.latency.Observe(latencyMin)
	j := m.getJournal()
	if j != nil {
		j.Append(store.Record{Kind: store.KindLatency, Task: fl.hit.Task, X: latencyMin})
	}
	if fl.adaptive {
		m.adaptiveHITs.Add(1)
		m.adaptiveAssign.Add(int64(fl.assign))
		m.adaptiveCapSum.Add(int64(fl.capA))
		if saved := int64(fl.capA-fl.assign) * fl.hit.RewardCents; saved > 0 {
			m.inferSaved.Add(saved)
		}
	}

	// Under an EM aggregator, resolve answers from one joint fit over
	// the whole HIT — worker accuracies and item posteriors estimated
	// together — and feed the fitted accuracies back as quality
	// evidence. The fit reads the same votes in the same order as the
	// adaptive loop's confidence checks, so the finalized answer is the
	// posterior that stopped the extensions.
	var posts map[string]infer.Posterior
	if em, ok := fl.agg.(*infer.EM); ok {
		items, keys := fl.votesByItem()
		ps, accs := em.Fit(items, fl.boolTask)
		posts = make(map[string]infer.Posterior, len(keys))
		for i, key := range keys {
			posts[key] = ps[i]
		}
		m.noteWorkerQuality(accs)
	}
	m.traceHITDone(fl, latencyMin, posts)

	type resolution struct {
		done func(Outcome)
		out  Outcome
	}
	var resolved []resolution
	base := m.basePolicy()
	st.mu.Lock()
	pol := st.effectivePolicyLocked(base)
	st.mu.Unlock()
	var agreeSum float64
	var agreeN int
	for _, hi := range fl.hit.Items {
		item, ok := fl.byKey[hi.Key]
		if !ok {
			continue
		}
		answers := fl.answers[hi.Key]
		out := reduce(item.def, answers)
		if p, ok := posts[hi.Key]; ok && len(answers) > 0 {
			out.Value = p.Value
			out.Agreement = p.Confidence
		}
		st.agreement.Observe(out.Agreement)
		agreeSum += out.Agreement
		agreeN++
		if isBooleanTask(item.def) {
			st.observeSelectivity(out.Value.Truthy(), item.side)
			m.noteWorkerVotes(fl.byWorker, hi.Key, out.Value.Truthy())
		}
		if pol.UseCache {
			m.cache.Put(cache.NewKey(item.def.Name, item.args), cache.Entry{Answers: answers})
		}
		if pol.TrainModel && isBooleanTask(item.def) {
			if tm, ok := m.models.For(item.def.Name); ok {
				tm.Train(item.args, out.Value.Truthy())
			}
		}
		if j != nil {
			m.journalItem(j, pol, item.def, item.args, item.side, answers, out)
		}
		resolved = append(resolved, resolution{done: item.done, out: out})
	}
	if agreeN > 0 {
		m.observeBackend(fl.backend, fl.hit.Type, fl.hit.RewardCents, latencyMin, agreeSum/float64(agreeN))
	}
	for _, r := range resolved {
		r.done(r.out)
	}
}

// journalItem streams one finalized item's learned artifacts to the
// journal: the cache entry, the selectivity/agreement observations and
// the model training example. Answer slices are copied because done
// callbacks receive (and may mutate) the originals while the store
// encodes asynchronously.
func (m *Manager) journalItem(j Journal, pol Policy, def *qlang.TaskDef,
	args []relation.Value, side string, answers []relation.Value, out Outcome) {
	key := cache.NewKey(def.Name, args)
	if pol.UseCache {
		j.Append(store.Record{
			Kind: store.KindCacheEntry, Task: key.Task, Args: key.Args,
			Answers: append([]relation.Value(nil), answers...),
		})
	}
	j.Append(store.Record{Kind: store.KindAgreement, Task: def.Name, X: out.Agreement})
	if !isBooleanTask(def) {
		return
	}
	pass := out.Value.Truthy()
	j.Append(store.Record{Kind: store.KindSelectivity, Task: def.Name, Side: side, Pass: pass})
	if pol.TrainModel {
		j.Append(store.Record{Kind: store.KindModelExample, Task: def.Name, Args: key.Args, Pass: pass})
	}
}

// reduce collapses redundant answers by the task's natural aggregate
// (paper §3: lists reduced by user-defined aggregates).
func reduce(def *qlang.TaskDef, answers []relation.Value) Outcome {
	out := Outcome{Answers: answers}
	switch {
	case isBooleanTask(def):
		b, conf := stats.MajorityBool(answers)
		out.Value = relation.NewBool(b)
		out.Agreement = conf
	case def.Type == qlang.TaskRating:
		out.Value = relation.NewFloat(stats.MeanRating(answers))
		out.Agreement = stats.Agreement(answers)
	default:
		v, conf := stats.MajorityValue(answers)
		out.Value = v
		out.Agreement = conf
	}
	return out
}

func isBooleanTask(def *qlang.TaskDef) bool {
	return def.Type == qlang.TaskFilter || def.Type == qlang.TaskJoinPredicate ||
		(len(def.Returns) == 1 && def.Returns[0].Kind == relation.KindBool)
}

// batchQuestion renders the HIT-level instruction: for singleton batches
// it is the task text with substitutions, for larger batches a generic
// header (per-item prompts carry the specifics).
func batchQuestion(def *qlang.TaskDef, batch []pendingItem) string {
	if len(batch) == 1 {
		if batch[0].prompt != "" {
			return batch[0].prompt
		}
		return hit.RenderText(def.Text, def.TextArgs, def.Params, batch[0].args)
	}
	return fmt.Sprintf("Answer the following %d questions. %s", len(batch), def.Text)
}

// responseFor derives the response spec for *item-wise* HITs, defaulting
// by task type when a definition omits it. A JoinColumns task submitted
// pairwise (one pair per item) degrades to YesNo questions.
func responseFor(def *qlang.TaskDef) qlang.Response {
	r := def.Response
	if r.Kind == qlang.ResponseJoinColumns {
		return qlang.Response{Kind: qlang.ResponseYesNo}
	}
	if r.Kind == qlang.ResponseForm && len(r.Fields) == 0 {
		switch def.Type {
		case qlang.TaskFilter, qlang.TaskJoinPredicate:
			return qlang.Response{Kind: qlang.ResponseYesNo}
		case qlang.TaskRating:
			return qlang.Response{Kind: qlang.ResponseRating, ScaleMin: 1, ScaleMax: 7}
		default:
			fields := make([]qlang.FormField, 0, len(def.Returns))
			for _, ret := range def.Returns {
				label := ret.Name
				if label == "" {
					label = "Answer"
				}
				fields = append(fields, qlang.FormField{Label: label, Kind: ret.Kind})
			}
			return qlang.Response{Kind: qlang.ResponseForm, Fields: fields}
		}
	}
	return r
}

// Stats returns per-task statistics, sorted by task name.
func (m *Manager) Stats() []TaskStats {
	m.mu.Lock()
	type named struct {
		name string
		st   *taskState
	}
	states := make([]named, 0, len(m.tasks))
	for name, st := range m.tasks {
		states = append(states, named{name, st})
	}
	m.mu.Unlock()
	out := make([]TaskStats, 0, len(states))
	for _, n := range states {
		st := n.st
		st.mu.Lock()
		ts := TaskStats{
			Task:           n.name,
			Submitted:      st.submitted,
			HITsPosted:     st.hitsPosted,
			QuestionsAsked: st.questionsAsked,
			CacheHits:      st.cacheHits,
			ModelAnswers:   st.modelAnswers,
			SpentCents:     st.spent,
		}
		st.mu.Unlock()
		ts.Selectivity = st.selectivity.Estimate()
		ts.SelTrials = st.selectivity.Trials()
		ts.MeanLatencyMin = st.latency.Value()
		ts.MeanAgreement = st.agreement.Value()
		out = append(out, ts)
	}
	sortTaskStats(out)
	return out
}

// SideSelectivity reports the selectivity estimate and trial count for
// one join side of a task (SideLeft/SideRight). While the side has no
// observations of its own it falls back to the task's combined
// estimator, so early decisions keep the old one-estimate behavior.
func (m *Manager) SideSelectivity(task, side string) (estimate float64, trials int) {
	st := m.state(task, nil)
	st.mu.Lock()
	est := st.sideSel[side]
	st.mu.Unlock()
	if est != nil && est.Trials() > 0 {
		return est.Estimate(), est.Trials()
	}
	return st.selectivity.Estimate(), st.selectivity.Trials()
}

// HasSideEvidence reports whether any join-side-tagged selectivity
// observations exist for a task. The planner only trusts the per-side
// cost model once the sides have actually been measured (or replayed
// from the knowledge store); before that, per-side estimates are just
// the shared prior and cannot distinguish the sides.
func (m *Manager) HasSideEvidence(task string) bool {
	st := m.state(task, nil)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, est := range st.sideSel {
		if est.Trials() > 0 {
			return true
		}
	}
	return false
}

// StatsFor returns one task's statistics.
func (m *Manager) StatsFor(task string) TaskStats {
	all := m.Stats()
	key := strings.ToLower(task)
	for _, s := range all {
		if s.Task == key {
			return s
		}
	}
	return TaskStats{Task: key}
}

func sortTaskStats(ss []TaskStats) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Task < ss[j].Task })
}

// Pending reports queued-but-unposted items across all tasks,
// including items cut into batches still waiting in the admission
// queue.
func (m *Manager) Pending() int {
	m.mu.Lock()
	states := make([]*taskState, 0, len(m.tasks))
	for _, st := range m.tasks {
		states = append(states, st)
	}
	m.mu.Unlock()
	n := 0
	for _, st := range states {
		st.mu.Lock()
		n += len(st.pending)
		st.mu.Unlock()
	}
	return n + m.sched.queuedItems()
}

// SharingStats aggregates cross-query co-batching activity.
type SharingStats struct {
	// SharedHITs counts posted HITs whose items came from two or more
	// scopes; CoBatchedItems counts the items inside them.
	SharedHITs     int64
	CoBatchedItems int64
	// HITsSaved estimates the HITs sharing avoided — each shared HIT
	// replaced one partial batch per extra participating scope — and
	// SavedCents prices those HITs at their actual posted cost.
	HITsSaved  int64
	SavedCents budget.Cents
}

// Sharing reports cross-query co-batching counters.
func (m *Manager) Sharing() SharingStats {
	return SharingStats{
		SharedHITs:     m.sharedHITs.Load(),
		CoBatchedItems: m.sharedItems.Load(),
		HITsSaved:      m.sharedSaved.Load(),
		SavedCents:     budget.Cents(m.savedCents.Load()),
	}
}

// Inflight reports posted HITs that have not collected all assignments.
func (m *Manager) Inflight() int {
	n := 0
	for i := range m.flights.stripes {
		s := &m.flights.stripes[i]
		s.mu.Lock()
		n += len(s.hits)
		s.mu.Unlock()
	}
	return n
}
