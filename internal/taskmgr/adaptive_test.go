package taskmgr

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/crowd"
	"repro/internal/hit"
	"repro/internal/model"
	"repro/internal/mturk"
	"repro/internal/relation"
)

// submitMany submits n distinct filter items and pumps until all resolve,
// returning the outcomes in submission order.
func submitMany(t *testing.T, m *Manager, clock *mturk.Clock, n int) []Outcome {
	t.Helper()
	def := filterDef()
	outs := make([]Outcome, n)
	var mu sync.Mutex
	done := 0
	for i := 0; i < n; i++ {
		i := i
		img := fmt.Sprintf("cat-%03d.png", i)
		m.Submit(Request{Def: def, Args: []relation.Value{relation.NewImage(img)},
			Done: func(o Outcome) { mu.Lock(); outs[i] = o; done++; mu.Unlock() }})
	}
	m.FlushAll()
	runUntil(t, clock, func() bool { mu.Lock(); defer mu.Unlock(); return done == n })
	return outs
}

// A confident crowd answering through the EM aggregator stops at the
// posting floor: two agreeing strangers under the default prior reach a
// 0.9 posterior, past the 0.85 stopping target, so the third assignment
// of the default policy is never bought.
func TestAdaptiveStopsAtFloorWhenConfident(t *testing.T) {
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.9999, SkillStd: 1e-9}, 0)
	m.SetInference("em", 2, 0)
	out := submitAndWait(t, m, clock, filterDef(), relation.NewImage("cat-1.png"))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.Value.Truthy() {
		t.Fatalf("cat not recognized: %+v", out)
	}
	if len(out.Answers) != 2 {
		t.Fatalf("answers = %d, want 2 (adaptive floor)", len(out.Answers))
	}
	if spent := m.Account().Spent(); spent != 2 {
		t.Fatalf("spent = %v, want 2 (floor × 1¢)", spent)
	}
	is := m.InferenceStats()
	if is.Method != "em" || is.AdaptiveHITs != 1 || is.Extensions != 0 {
		t.Fatalf("inference stats = %+v", is)
	}
	if is.AssignmentsUsed != 2 || is.AssignmentsCap != 3 || is.SavedCents != 1 {
		t.Fatalf("inference stats = %+v (want 2 used of cap 3, 1¢ saved)", is)
	}
}

// A coin-flip crowd leaves split votes unsure, so the adaptive loop buys
// extensions — never past the policy cap — and every assignment actually
// bought is paid for exactly once (cost == reward × assignments holds
// through every extension).
func TestAdaptiveExtendsWhileUnsure(t *testing.T) {
	const n = 12
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.5, SkillStd: 1e-9}, 0)
	m.SetInference("em", 2, 0)
	outs := submitMany(t, m, clock, n)
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("item %d: %v", i, out.Err)
		}
	}
	is := m.InferenceStats()
	if is.AdaptiveHITs != n {
		t.Fatalf("adaptive HITs = %d, want %d", is.AdaptiveHITs, n)
	}
	if is.Extensions == 0 {
		t.Fatal("coin-flip crowd never forced an extension; pick another seed")
	}
	if is.AssignmentsUsed != 2*n+is.Extensions {
		t.Fatalf("assignments used = %d, want floor %d + %d extensions",
			is.AssignmentsUsed, 2*n, is.Extensions)
	}
	if is.AssignmentsUsed > 3*n {
		t.Fatalf("assignments used = %d exceeds cap %d", is.AssignmentsUsed, 3*n)
	}
	if spent := m.Account().Spent(); spent != budget.Cents(is.AssignmentsUsed) {
		t.Fatalf("spent %v ≠ %d assignments bought", spent, is.AssignmentsUsed)
	}
}

// Satellite: budget exhausted mid-extension. The account covers exactly
// the posting floors, so every extension attempt fails at the account —
// each unsure HIT must finalize at its current posterior (not error, not
// deadlock) and the ledger must stop exactly at the limit.
func TestAdaptiveBudgetExhaustedFinalizesAtPosterior(t *testing.T) {
	const n = 12
	m, clock := newRig(t, catOracle, crowd.Config{MeanSkill: 0.5, SkillStd: 1e-9}, 2*n)
	m.SetInference("em", 2, 0)
	outs := submitMany(t, m, clock, n)
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("item %d: exhausted budget must finalize, not error: %v", i, out.Err)
		}
	}
	is := m.InferenceStats()
	if is.Extensions != 0 {
		t.Fatalf("extensions = %d with an exhausted account", is.Extensions)
	}
	if is.AssignmentsUsed != 2*n {
		t.Fatalf("assignments used = %d, want exactly the floors (%d)", is.AssignmentsUsed, 2*n)
	}
	if spent := m.Account().Spent(); spent != 2*n {
		t.Fatalf("spent = %v, want the full %d¢ limit and not a cent more", spent, 2*n)
	}
}

// noExtend hides the sim backend's Extender so backend.Extend reports
// ErrExtendUnsupported, like the LLM worker crowd.
type noExtend struct {
	backend.Backend
}

// Satellite: a backend that rejects extensions. The first unsure HIT's
// failed extension must roll its charge back, finalize at the current
// posterior, and flip the manager to full-cap posting for everything
// after.
func TestAdaptiveExtendUnsupportedFallsBackToCap(t *testing.T) {
	clock := mturk.NewClock()
	pool := crowd.NewPool(crowd.Config{
		MeanSkill: 0.5, SkillStd: 1e-9, Seed: 1,
		SpamFraction: 1e-12, AbandonRate: 1e-12,
	}, catOracle)
	market := mturk.NewMarketplace(clock, pool)
	m := NewWithBackend(noExtend{backend.NewSim(market)}, cache.New(), model.NewRegistry(), budget.NewAccount(0))
	m.SetInference("em", 2, 0)

	outs := submitMany(t, m, clock, 12)
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("item %d: rejected extension must finalize, not error: %v", i, out.Err)
		}
	}
	is := m.InferenceStats()
	if is.ExtendFailures == 0 {
		t.Fatal("no extension was ever attempted; pick another seed")
	}
	if is.Extensions != 0 {
		t.Fatalf("extensions = %d through a backend without an Extender", is.Extensions)
	}
	if !m.extendBroken.Load() {
		t.Fatal("extend failure should flip the manager to full-cap posting")
	}
	// Everything submitted after the flip posts at the full cap again —
	// the seed majority path, three answers per item.
	out := submitAndWait(t, m, clock, filterDef(), relation.NewImage("late-cat.png"))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Answers) != 3 {
		t.Fatalf("post-failure answers = %d, want the full cap 3", len(out.Answers))
	}
}

// Satellite: an extension racing a scope cancel. When the cancel retires
// the HIT before the extension's bookkeeping commits, the whole charge
// comes straight back to both ledgers; when the cancel lands after the
// commit, the adaptive invariant cost == reward × assignments makes the
// normal pro-rata path refund exactly the one unconsumed extension slot.
func TestAdaptiveExtendChargeRefundedWhenCancelRaces(t *testing.T) {
	m, _ := newRig(t, catOracle, crowd.Config{MeanSkill: 0.9999}, 0)
	def := filterDef()
	sc := m.NewScope()
	sc.SetBudget(50)

	// The HIT is absent from its stripe: the cancel already retired it.
	fl := &inflightHIT{
		hit:      &hit.HIT{ID: "hit-gone", RewardCents: 1},
		state:    m.state(def.Name, def),
		shares:   []hitShare{{scope: sc}},
		cost:     2,
		assign:   2,
		needed:   2,
		received: 2,
		adaptive: true,
		capA:     3,
	}
	s := m.flights.stripeFor("hit-gone")
	m.extendInflight(s, "hit-gone", fl)
	if spent := m.Account().Spent(); spent != 0 {
		t.Fatalf("account spent = %v after a raced extension; charge must come back in full", spent)
	}
	if spent := sc.Spent(); spent != 0 {
		t.Fatalf("scope spent = %v after a raced extension; charge must come back in full", spent)
	}
	if fl.assign != 2 || fl.cost != 2 {
		t.Fatalf("raced extension mutated the retired HIT: assign=%d cost=%v", fl.assign, fl.cost)
	}

	// Cancel after the commit: received 2 of 3 slots consumed, cost 3¢ —
	// the pro-rata refund is exactly the 1¢ extension slot.
	if got := unconsumed(3, 3, 2); got != 1 {
		t.Fatalf("unconsumed(3¢, 3 slots, 2 done) = %v, want exactly the 1¢ extension slot", got)
	}
}
