package taskmgr

import (
	"strings"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/infer"
	"repro/internal/qlang"
	"repro/internal/stats"
	"repro/internal/store"
)

// Answer-inference defaults (SetInference zero values).
const (
	// DefaultTargetConfidence is the posterior confidence at which the
	// adaptive loop stops buying assignments.
	DefaultTargetConfidence = 0.85
	// DefaultMinAssignments is the adaptive posting floor used when EM
	// is enabled without choosing one.
	DefaultMinAssignments = 2
)

// inferConfig is the engine-wide answer-inference configuration,
// swapped atomically so posting paths read it without a lock.
type inferConfig struct {
	method string
	min    int
	target float64
}

// SetInference selects the engine-wide answer-inference method:
// "majority" (or "") keeps seed-identical majority voting; "em" turns
// on joint worker-quality/answer inference with adaptive redundancy —
// eligible HITs post with minAssignments assignments
// (DefaultMinAssignments when 0) and extend one at a time up to the
// policy's Assignments cap until every item's posterior reaches target
// (DefaultTargetConfidence when 0). A task's Infer: property overrides
// the method per task; its MinAssignments: property overrides the
// floor.
func (m *Manager) SetInference(method string, minAssignments int, target float64) {
	method = strings.ToLower(strings.TrimSpace(method))
	if method == "" {
		method = "majority"
	}
	if minAssignments <= 0 {
		minAssignments = DefaultMinAssignments
	}
	if target <= 0 {
		target = DefaultTargetConfidence
	}
	m.inference.Store(&inferConfig{method: method, min: minAssignments, target: target})
}

// InferenceMethod reports the engine-wide inference method ("majority"
// until SetInference says otherwise).
func (m *Manager) InferenceMethod() string {
	if cfg := m.inference.Load(); cfg != nil {
		return cfg.method
	}
	return "majority"
}

// inferencePlan resolves one batch's effective aggregator, stopping
// target, and adaptive posting floor. The task's Infer: property wins
// over the engine-wide method. A nil aggregator is the majority path —
// byte-identical to the seed. Rating tasks always reduce by mean and
// never get an aggregator.
func (m *Manager) inferencePlan(def *qlang.TaskDef, pol Policy) (agg infer.Aggregator, target float64, minAssignments int) {
	cfg := m.inference.Load()
	method := ""
	target = DefaultTargetConfidence
	minAssignments = pol.MinAssignments
	if cfg != nil {
		method = cfg.method
		target = cfg.target
		if minAssignments == 0 {
			minAssignments = cfg.min
		}
	}
	if def != nil {
		if def.Infer != "" {
			method = def.Infer
		}
		if def.Type == qlang.TaskRating {
			return nil, 0, 0
		}
	}
	if method != "em" {
		return nil, 0, 0
	}
	return &infer.EM{Prior: m.workerPrior}, target, minAssignments
}

// workerPrior blends a worker's prior accuracy from every evidence
// stream: the default prior's pseudo-observations, the live
// majority-agreement record (reputation.go), and the EM-quality EWMA
// (journaled fits plus replayed store evidence). The weight is the
// total pseudo-observation count, so two agreeing strangers still need
// refinement to reach the stopping target while a proven-good worker's
// vote counts for more from the first round.
func (m *Manager) workerPrior(worker string) (acc, weight float64) {
	num := infer.DefaultPriorAcc * infer.DefaultPriorWeight
	weight = infer.DefaultPriorWeight
	if worker == "" {
		return num / weight, weight
	}
	m.repMu.Lock()
	if rec := m.workers[worker]; rec != nil && rec.votes > 0 {
		num += float64(rec.agreed)
		weight += float64(rec.votes)
	}
	if e := m.quality[worker]; e != nil && e.Count() > 0 {
		w := float64(e.Count())
		num += e.Value() * w
		weight += w
	}
	m.repMu.Unlock()
	return num / weight, weight
}

// votesByItem rebuilds per-item vote lists (in HIT item order, so fits
// are deterministic) from the collected per-worker answer sheets,
// skipping items whose share detached. Called under the stripe lock or
// after the HIT left the in-flight table.
func (fl *inflightHIT) votesByItem() (items [][]infer.Vote, keys []string) {
	items = make([][]infer.Vote, 0, len(fl.hit.Items))
	keys = make([]string, 0, len(fl.hit.Items))
	for _, hi := range fl.hit.Items {
		if _, ok := fl.byKey[hi.Key]; !ok {
			continue
		}
		var votes []infer.Vote
		for _, wa := range fl.byWorker {
			if v, ok := wa.Values[hi.Key]; ok {
				votes = append(votes, infer.Vote{Worker: wa.WorkerID, Value: v})
			}
		}
		items = append(items, votes)
		keys = append(keys, hi.Key)
	}
	return items, keys
}

// itemsConfident reports whether every live item's posterior has
// reached the stopping target under the HIT's aggregator. Stripe lock
// held; the EM fit takes repMu inside (stripe → repMu never inverts:
// reputation paths take repMu alone).
func (m *Manager) itemsConfident(fl *inflightHIT) bool {
	em, ok := fl.agg.(*infer.EM)
	if !ok {
		return true
	}
	items, _ := fl.votesByItem()
	ps, _ := em.Fit(items, fl.boolTask)
	for _, p := range ps {
		if p.Confidence < fl.target {
			return false
		}
	}
	return true
}

// extendInflight buys one more assignment for an unsure adaptive HIT.
// Money first, bookkeeping second, backend last: the scope and account
// are charged with no stripe lock held (cancellation's scope.mu →
// stripe order), the in-flight counters commit only if the HIT is
// still live — a cancel that raced the charge gets the money straight
// back — and a backend that rejects the extension rolls everything
// back, finalizes the HIT at its current posterior, and flips the
// manager to full-cap posting (extendBroken). Because every adaptive
// HIT keeps cost == reward × assign, a cancel landing after the commit
// refunds exactly the one unconsumed extension slot through the normal
// unconsumed() pro-rata path.
func (m *Manager) extendInflight(s *flightStripe, hitID string, fl *inflightHIT) {
	price := budget.Cents(fl.hit.RewardCents)
	sc := fl.shares[0].scope
	if err := sc.spend(price); err != nil {
		// Scope budget exhausted mid-extension: stop here and finalize
		// with the posterior the paid-for assignments bought.
		m.finalizeAdaptive(s, hitID, fl)
		return
	}
	if err := m.account.Spend(price); err != nil {
		sc.refund(price)
		m.finalizeAdaptive(s, hitID, fl)
		return
	}
	s.mu.Lock()
	if _, live := s.hits[hitID]; !live {
		// Cancellation raced the charge; its refund was computed against
		// the pre-extension assignment count, so this charge comes back
		// here, in full.
		s.mu.Unlock()
		m.account.Refund(price)
		sc.refund(price)
		return
	}
	fl.needed++
	fl.assign++
	fl.cost += price
	fl.shares[0].cost += price
	s.mu.Unlock()
	st := fl.state
	st.mu.Lock()
	st.spent += price
	st.mu.Unlock()
	if err := backend.Extend(m.market, hitID, 1); err != nil {
		m.extendFailures.Add(1)
		m.extendBroken.Store(true)
		rolledBack := false
		s.mu.Lock()
		if _, live := s.hits[hitID]; live {
			fl.needed--
			fl.assign--
			fl.cost -= price
			fl.shares[0].cost -= price
			rolledBack = true
		}
		s.mu.Unlock()
		if !rolledBack {
			// The HIT was canceled between the commit and the backend
			// call; cancellation's pro-rata refund already covered the
			// unconsumed extension slot, so the ledgers balance without
			// another refund here.
			return
		}
		st.mu.Lock()
		st.spent -= price
		st.mu.Unlock()
		m.account.Refund(price)
		sc.refund(price)
		m.finalizeAdaptive(s, hitID, fl)
		return
	}
	m.adaptiveExt.Add(1)
	m.traceExtension(s, hitID, fl, price)
}

// finalizeAdaptive retires an adaptive HIT that stops below its cap —
// budget exhausted or extension rejected — and finalizes it with the
// assignments it already holds. A concurrent cancel may have retired it
// first; then there is nothing left to do.
func (m *Manager) finalizeAdaptive(s *flightStripe, hitID string, fl *inflightHIT) {
	s.mu.Lock()
	if _, live := s.hits[hitID]; !live {
		s.mu.Unlock()
		return
	}
	delete(s.hits, hitID)
	s.mu.Unlock()
	fl.unregister(hitID)
	m.hitRetired(fl)
	m.finalizeInflight(fl)
}

// noteWorkerQuality folds one fit's per-worker accuracies into the
// quality EWMAs and journals them (KindWorkerQuality), so the next
// engine run's priors start from today's evidence. Journaling happens
// outside repMu, like noteWorkerVotes: the marketplace's worker filter
// takes repMu from inside marketplace calls and must never wait on
// persistence.
func (m *Manager) noteWorkerQuality(accs []infer.WorkerAccuracy) {
	j := m.getJournal()
	m.repMu.Lock()
	if m.quality == nil {
		m.quality = make(map[string]*stats.EWMA)
	}
	for _, a := range accs {
		if a.Worker == "" {
			continue
		}
		e := m.quality[a.Worker]
		if e == nil {
			e = stats.NewEWMA(stats.TaskEWMAAlpha)
			m.quality[a.Worker] = e
		}
		e.Observe(a.Accuracy)
	}
	m.repMu.Unlock()
	if j == nil {
		return
	}
	for _, a := range accs {
		if a.Worker == "" {
			continue
		}
		j.Append(store.Record{Kind: store.KindWorkerQuality, Worker: a.Worker, X: a.Accuracy, N: int64(a.Votes)})
	}
}

// RestoreWorkerQuality folds a replayed quality EWMA state into the
// worker's prior evidence (Restore calls it per store worker).
func (m *Manager) RestoreWorkerQuality(worker string, st stats.EWMAState) {
	if worker == "" || st.N <= 0 {
		return
	}
	m.repMu.Lock()
	defer m.repMu.Unlock()
	if m.quality == nil {
		m.quality = make(map[string]*stats.EWMA)
	}
	e := m.quality[worker]
	if e == nil {
		e = stats.NewEWMA(stats.TaskEWMAAlpha)
		m.quality[worker] = e
	}
	e.SetState(st)
}

// InferenceStats aggregates the adaptive redundancy loop's activity for
// the dashboard and the load harness.
type InferenceStats struct {
	// Method is the engine-wide inference method ("majority", "em").
	Method string
	// AdaptiveHITs counts finalized HITs that posted below their cap;
	// Extensions the assignments bought one at a time afterward;
	// ExtendFailures the extensions a backend rejected.
	AdaptiveHITs   int64
	Extensions     int64
	ExtendFailures int64
	// AssignmentsUsed and AssignmentsCap sum those HITs' actual and
	// fixed-redundancy assignment counts: Cap − Used is the assignments
	// the posterior made unnecessary, and SavedCents prices them at
	// each HIT's actual reward.
	AssignmentsUsed int64
	AssignmentsCap  int64
	SavedCents      budget.Cents
}

// InferenceStats reports the adaptive redundancy counters.
func (m *Manager) InferenceStats() InferenceStats {
	return InferenceStats{
		Method:          m.InferenceMethod(),
		AdaptiveHITs:    m.adaptiveHITs.Load(),
		Extensions:      m.adaptiveExt.Load(),
		ExtendFailures:  m.extendFailures.Load(),
		AssignmentsUsed: m.adaptiveAssign.Load(),
		AssignmentsCap:  m.adaptiveCapSum.Load(),
		SavedCents:      budget.Cents(m.inferSaved.Load()),
	}
}
