package taskmgr

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/crowd"
	"repro/internal/qerr"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/store"
)

func rankDef() *qlang.TaskDef {
	def, err := qlang.ParseTaskDef(`
TASK orderPics(Image img)
RETURNS Int:
  TaskType: Rank
  Text: "Order these pictures."
  Response: Order
`)
	if err != nil {
		panic(err)
	}
	return def
}

// scoreOracle ranks items by the numeric id embedded in the key.
var scoreOracle = crowd.OracleFunc(func(task string, args []relation.Value) relation.Value {
	var n int
	if _, err := fmt.Sscanf(args[0].Str(), "item%d.png", &n); err != nil {
		return relation.Null
	}
	return relation.NewFloat(float64(n))
})

func rankItemsN(n int) []RankItem {
	items := make([]RankItem, n)
	for i := range items {
		key := fmt.Sprintf("item%02d.png", n-i) // reverse latent order
		items[i] = RankItem{Key: key, Args: []relation.Value{relation.NewImage(key)}}
	}
	return items
}

func rankAndWait(t *testing.T, m *Manager, clock interface{ Run(func() bool) }, scope *Scope, items []RankItem) ([]Ranking, error) {
	t.Helper()
	var mu sync.Mutex
	var rankings []Ranking
	var rerr error
	done := false
	m.RankBlockIn(scope, rankDef(), items, func(rs []Ranking, err error) {
		mu.Lock()
		rankings, rerr, done = rs, err, true
		mu.Unlock()
	})
	clock.Run(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	})
	return rankings, rerr
}

func TestRankBlockCollectsFullRankings(t *testing.T) {
	m, clock := newRig(t, scoreOracle, crowd.Config{MeanSkill: 0.99, SkillStd: 1e-9, BatchPenalty: 1e-9}, 0)
	items := rankItemsN(5)
	rankings, err := rankAndWait(t, m, clock, nil, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(rankings) != 3 { // default policy redundancy
		t.Fatalf("rankings = %d, want 3 assignments", len(rankings))
	}
	for _, r := range rankings {
		if len(r.Rank) != 5 {
			t.Fatalf("ranking covers %d items, want 5", len(r.Rank))
		}
		// Input is reverse latent order: item05 … item01, so position 0
		// belongs to the last input item.
		if r.Rank["item01.png"] != 0 || r.Rank["item05.png"] != 4 {
			t.Fatalf("unexpected ranking %v", r.Rank)
		}
	}
	st := m.StatsFor("orderpics")
	if st.HITsPosted != 1 || st.QuestionsAsked != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRankBlockFeedsAgreementEstimator(t *testing.T) {
	m, clock := newRig(t, scoreOracle, crowd.Config{MeanSkill: 0.99, SkillStd: 1e-9, BatchPenalty: 1e-9}, 0)
	if _, n := m.RankAgreement("orderPics"); n != 0 {
		t.Fatal("fresh estimator should have no evidence")
	}
	if _, err := rankAndWait(t, m, clock, nil, rankItemsN(5)); err != nil {
		t.Fatal(err)
	}
	est, n := m.RankAgreement("orderPics")
	if n != 1 {
		t.Fatalf("observations = %d, want 1 per finalized HIT", n)
	}
	if est < 0.9 {
		t.Fatalf("agreement = %.2f under a near-perfect crowd", est)
	}
}

// captureJournal records appended records for assertions.
type captureJournal struct {
	mu   sync.Mutex
	recs []store.Record
}

func (c *captureJournal) Append(rec store.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, rec)
}

func (c *captureJournal) byKind(k store.Kind) []store.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []store.Record
	for _, r := range c.recs {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

func TestRankBlockJournalsPairStats(t *testing.T) {
	m, clock := newRig(t, scoreOracle, crowd.Config{MeanSkill: 0.99, SkillStd: 1e-9, BatchPenalty: 1e-9}, 0)
	j := &captureJournal{}
	m.SetJournal(j)
	if _, err := rankAndWait(t, m, clock, nil, rankItemsN(4)); err != nil {
		t.Fatal(err)
	}
	pairs := j.byKind(store.KindRankPair)
	if len(pairs) != 1 {
		t.Fatalf("KindRankPair records = %d, want 1 per HIT", len(pairs))
	}
	rec := pairs[0]
	if rec.Task != "orderPics" || rec.N != 6 { // C(4,2) pairs
		t.Fatalf("record = %+v", rec)
	}
	if rec.X < 0.9 {
		t.Fatalf("agreement share %.2f under a near-perfect crowd", rec.X)
	}
	if lat := j.byKind(store.KindLatency); len(lat) != 1 {
		t.Fatalf("latency records = %d", len(lat))
	}
}

func TestRankBlockCanceledScope(t *testing.T) {
	m, _ := newRig(t, scoreOracle, crowd.Config{}, 0)
	scope := m.NewScope()
	scope.Cancel(nil)
	called := false
	m.RankBlockIn(scope, rankDef(), rankItemsN(3), func(rs []Ranking, err error) {
		called = true
		if err == nil {
			t.Error("want cancellation error")
		}
	})
	if !called {
		t.Fatal("done not called synchronously on a canceled scope")
	}
}

func TestRankBlockCancelMidFlight(t *testing.T) {
	m, clock := newRig(t, scoreOracle, crowd.Config{}, 0)
	scope := m.NewScope()
	var mu sync.Mutex
	var rerr error
	done := false
	m.RankBlockIn(scope, rankDef(), rankItemsN(4), func(rs []Ranking, err error) {
		mu.Lock()
		rerr, done = err, true
		mu.Unlock()
	})
	// Cancel before pumping: the HIT is posted but no assignment has
	// completed, so the full cost must come back.
	spentBefore := scope.Spent()
	if spentBefore == 0 {
		t.Fatal("posting should have charged the scope")
	}
	scope.Cancel(nil)
	mu.Lock()
	defer mu.Unlock()
	if !done {
		t.Fatal("cancel must resolve the block")
	}
	if !errors.Is(rerr, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", rerr)
	}
	if got := scope.Spent(); got != 0 {
		t.Fatalf("sunk cost = %v after full expiry, want 0", got)
	}
	_ = clock
}

func TestRankBlockEmptyItems(t *testing.T) {
	m, _ := newRig(t, scoreOracle, crowd.Config{}, 0)
	called := false
	m.RankBlockIn(nil, rankDef(), nil, func(rs []Ranking, err error) {
		called = true
		if err == nil {
			t.Error("want error for empty group")
		}
	})
	if !called {
		t.Fatal("done not called")
	}
}
